// Package dxml is a Go implementation of the theory of distributed XML
// design of S. Abiteboul, G. Gottlob and M. Manna (“Distributed XML
// Design”, PODS 2009; extended version arXiv:1012.2648).
//
// A distributed XML document is a kernel document T[f1,…,fn] whose
// function-labeled leaves are docking points for external resources. This
// package answers the design questions the paper studies:
//
// Bottom-up: given local types τ1…τn for the resources, what is the global
// type of all possible materializations — and is it expressible as a DTD,
// a single-type EDTD (XML Schema), or an EDTD (Relax NG)? See Compose,
// ConsDTD, ConsSDTD, ConsEDTD.
//
// Top-down: given a global type τ, can it be enforced purely locally?
// The package decides whether a given typing is sound, local, maximal
// local or perfect, and whether such typings exist, constructing them when
// they do. See DTDDesign, SDTDDesign, EDTDDesign, WordDesign and the
// perfect-automaton machinery.
//
// Validation is push-based and incremental end to end: an EDTD compiles
// once into a streaming machine (CompileStream) whose push-parser
// front-end (Feeder) accepts a document's bytes in arbitrary chunks as a
// network delivers them and holds O(chunk + depth) memory regardless of
// document size. The io.Reader front-ends are thin adapters over it, and
// the federation (Network) ships fragments between peers in fixed-budget
// frames fed straight into the receiving validator, so invalid fragments
// are rejected mid-transfer and the saved bytes are accounted in its
// Stats. The chunk budget (Network.ChunkSize) trades peer memory against
// framing overhead; verdicts and message counts are invariant under it.
//
// The federation's wire is a pluggable transport (internal/transport):
// in-process by default, or real TCP — Network.ServeTCP hosts resource
// peers on a socket and Network.DialTCP joins them as the kernel peer,
// speaking a length-prefixed binary frame protocol (session hello with
// a design digest, per-fragment open/chunk/ack/close frames, and a
// reject frame that halts a sender mid-transfer). Transfers flow under
// credit-based sliding-window control: the hello requests a window of
// chunk credits (Network.Window, DefaultWindow), the host grants up to
// its own cap, and the sender pipelines up to that many chunks past
// the receiver's last cumulative ack — window 1 degenerates to the old
// stop-and-wait wire, wider windows hide the per-chunk round trip, and
// backpressure and mid-transfer rejection still bound the sender
// within one window of the receiver's consumption. The TCP hot path
// recycles frame buffers through a sync.Pool and writes header and
// payload in one vectored syscall, so steady-state chunk flow does not
// allocate. Verdicts, frame counts and byte totals are identical
// across transports and window widths — pinned by differential tests —
// and the `dxml serve` / `dxml join` subcommands run a federation
// across processes from a design file.
//
// Federations can outlive the validation round. The edit subsystem
// (internal/live) gives every resource peer a versioned fragment whose
// nodes carry prefix-based labels — stable subtree addresses that
// survive sibling inserts and deletes — and an ordered log of subtree
// edits (replace / insert / delete) that any number of subscribers
// drain. Network.AttachEditor makes a peer editable; Network.OpenLive
// turns the kernel peer into a live session: it pulls each fragment's
// keyed snapshot, subscribes to the edit logs over either transport
// (edit / ack / verdict-update frames — edits stay stop-and-wait; only
// chunked fragment transfers pipeline under the credit window), and
// maintains the global verdict by *incremental
// revalidation* — a checkpointed result tree of per-node content-DFA
// summaries (Incremental) re-checks only the edited subtree plus the
// ancestor chain whose summaries change, O(edit + depth) instead of
// O(document), while staying byte-identical to from-scratch validation
// (pinned by a differential mutation corpus). Each applied edit's
// verdict flows back to the editing site, and `dxml serve -watch` /
// `dxml join -watch` run the whole loop from the command line,
// re-serving document-file changes as deltas.
//
// The federation assumes peers that answer — so the wire defends
// against the ones that don't. Every TCP frame exchange carries a
// read/write deadline (DefaultTimeout), clients heartbeat through idle
// stretches with ping/pong frames (DefaultHeartbeat), and a missed
// deadline fails the session with a typed TimeoutError (unwrapping to
// ErrTimeout) instead of hanging. A live session under a
// ReconnectPolicy (Network.Reconnect) survives outages: a dropped feed
// marks the verdict stale (LiveUpdate.Health), resubscribes with
// jittered exponential backoff from the replica's last-applied version,
// and catches up by replaying just the edit-log suffix — or by a fresh
// snapshot cut when the editor compacted past it (LiveEditor.Compact /
// CutSince) — converging to a verdict byte-identical to a never-faulted
// run. The chaos seam (internal/transport/chaos, surfaced as
// NewChaosListener and `dxml serve -chaos seed`) makes that claim
// testable: a deterministic, seed-driven fault injector wraps any
// Session or listener and drops, delays, truncates, stalls, or
// duplicates deliveries on a replayable schedule, and the differential
// chaos corpus asserts every faulted run ends in the fault-free
// verdict, traffic totals, and edit-log state — or a clean typed error,
// never a panic, hang, or wrong verdict.
//
// One process can host many federations. The multi-tenant host
// (internal/host, surfaced as NewHostRegistry / NewHostServer) keeps a
// registry of compiled designs keyed by the digest a session hello
// carries, routes every inbound session — validation, live, resume —
// to its tenant, and shares one immutable streaming validator among
// all of a design's sessions. Admission control is enforced at the
// hello: caps on concurrent sessions and open transfers (per tenant
// and global) and a resident-memory budget refuse over-budget hellos
// with a typed RefusedError unwrapping to ErrOverCapacity (an
// unregistered digest unwraps to ErrUnknownDesign) — never a hang.
// Idle designs are evicted LRU under residency pressure and rebuilt
// from their registered builder on the next hello; per-tenant and
// global counters mirror the client-visible Stats exactly and are
// served over HTTP (/healthz, /metrics), with /register accepting new
// designs at runtime. `dxml host` runs it from the command line and
// `dxml register` posts new tenants to it; `dxml join` needs no new
// flags — joining a multi-tenant host looks exactly like joining a
// serve, and answers byte-identically.
//
// The whole stack is observable without being taxed for it. A single
// telemetry collector (Obs, from internal/obs) threads through every
// layer — frame encode/decode timing and chunk-ack round trips on the
// wire, credit-window occupancy at each send, per-fragment lifecycle
// spans, validation latency and event throughput in the streaming
// engine, edit-apply and health transitions in live sessions, and
// admission latency and evictions in the multi-tenant host. The
// substrate is allocation-free — atomic counters and fixed
// power-of-two-bucket histograms — and a nil collector is the no-op
// sink: every hook degrades to a nil check, so an uninstrumented run
// pays nothing (pinned by a zero-alloc CI gate on the chunk hot path).
// Read it back three ways: Prometheus text exposition (WritePrometheus;
// the host's /metrics content-negotiates it against the original JSON),
// pprof and expvar (ObsDebugServer, or `dxml host -debug-http`), and
// structured JSONL trace spans (OpenTrace, the CLI's -trace flag). A
// trace ID minted at each session's hello rides the wire, so the spans
// of one fragment transfer — hello, open, chunks, verdict — stitch into
// a single cross-process timeline from the two sides' trace files.
//
// When telemetry is not enough, the flight recorder (internal/flight,
// surfaced as NewFlightRecorder) is the federation's black box. A Tap
// on the transport seam (Network.Tap, HostConfig.Tap) observes every
// frame every session writes or reads as raw wire bytes — nil tap, like
// the nil collector, is a single nil check on the hot path — and the
// recorder keeps a bounded ring of recent frames plus, optionally, a
// full length-prefixed binary capture file. On any typed wire failure
// (ErrTimeout, a RefusedError, a chaos-injected fault, ErrCodec on
// garbage bytes) the OnWireError hook dumps a postmortem bundle: frame
// ring, trace-span ring, and metrics snapshot in one self-contained
// JSON artifact, rate-limited so a flapping peer cannot fill a disk.
// The CLI closes the loop: `-capture dir` on serve, join, and host
// records everything; `dxml inspect` renders a capture or bundle as a
// frame timeline with per-stream flow and credit-window occupancy;
// `dxml replay` reassembles the captured fragments and re-validates
// them offline against the recorded verdicts (divergence is an error);
// a host's /debug/flight serves the live ring; and `dxml top` is a
// terminal dashboard over a host's /metrics. DecodeFrame decodes a
// single captured frame for external tooling, truncated ring entries
// included.
//
// The underlying substrates (finite automata with the Brüggemann-Klein/
// Wood one-unambiguity theory, unranked tree automata, XML schema
// abstractions, kernels and typings) live in internal packages and are
// re-exported here as type aliases, so the whole system is usable through
// this single import. The automaton kernel interns all symbols into dense
// integer ids and runs on bitset state sets and compact integer transition
// rows (see internal/strlang); the string-based API here is a thin facade
// over that representation, so facade users pay the interning cost once
// per distinct symbol, not once per operation:
//
//	tau := dxml.MustParseW3CDTD(dxml.KindNRE, figure3)
//	kernel := dxml.MustParseKernel("eurostat(f0 f1 f2 f3)")
//	design := &dxml.DTDDesign{Type: tau, Kernel: kernel}
//	typing, ok := design.ExistsPerfect() // Figure 4's typing
package dxml
