package main

import "testing"

// TestExperimentsRun smoke-tests the fast experiments end to end (the
// heavy ones — table2/table3 — are exercised by `dxmlbench -exp all` and
// the root benchmarks).
func TestExperimentsRun(t *testing.T) {
	table1()
	fig4()
	fig6()
	fig8()
}
