// Command dxmlbench regenerates the paper's tables and figures on
// parameterized instance families. It does not match the authors'
// absolute constants (the paper reports asymptotic complexity, not wall
// times); what it reproduces is the shape: which problems/classes are
// easy, where the exponential cliffs are, and the concrete answers of
// every worked example.
//
// Usage: dxmlbench -exp all|table1|table2|table3|fig4|fig5|fig6|fig7|fig8
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dxml"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run")
	flag.Parse()
	experiments := map[string]func(){
		"table1": table1,
		"table2": table2,
		"table3": table3,
		"fig4":   fig4,
		"fig5":   fig5,
		"fig6":   fig6,
		"fig7":   fig7,
		"fig8":   fig8,
	}
	if *exp == "all" {
		for _, name := range []string{"table1", "table2", "table3", "fig4", "fig5", "fig6", "fig7", "fig8"} {
			fmt.Printf("######## %s ########\n", name)
			experiments[name]()
			fmt.Println()
		}
		return
	}
	f, ok := experiments[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	f()
}

// table1 exhibits the expressiveness hierarchy of the schema abstractions
// (paper Table 1): dRE-DTDs ⊊ local tree languages = R-DTDs ⊊ single-type
// ⊊ regular.
func table1() {
	fmt.Println("Table 1 — expressiveness separations (machine-checked witnesses)")

	// (1) dRE-DTD < nRE-DTD: a local tree language whose content model is
	// not one-unambiguous.
	lang := dxml.RegexNFA(dxml.MustParseRegex("(a|b)* a (a|b)"))
	fmt.Printf("  content (a|b)*a(a|b): one-unambiguous=%v → expressible as nRE-DTD but NOT dRE-DTD\n",
		dxml.OneUnambiguous(lang))

	// (2) DTD < SDTD: context-dependent content (x under a vs under b).
	sdtd := dxml.MustParseEDTD(dxml.KindNRE, `
		root s
		s -> a1, b1
		a1 : a -> x1
		x1 : x -> y
		b1 : b -> x2
		x2 : x -> z
	`)
	k := dxml.MustParseKernel("s(a(f1) b(f2))")
	typing := dxml.DTDTyping(
		dxml.MustParseDTD(dxml.KindNRE, "root s1\ns1 -> x*\nx -> y"),
		dxml.MustParseDTD(dxml.KindNRE, "root s2\ns2 -> x*\nx -> z"),
	)
	dres, _ := dxml.ConsDTD(k, typing, dxml.KindNFA)
	sres, _ := dxml.ConsSDTD(k, typing, dxml.KindNFA)
	fmt.Printf("  context-dependent x-content: cons[SDTD]=%v, cons[DTD]=%v → SDTDs ⊋ DTDs\n",
		sres.Consistent, dres.Consistent)
	_ = sdtd

	// (3) SDTD < EDTD: position-dependent content (first a vs second a).
	k2 := dxml.MustParseKernel("s0(a(f1) a(f2))")
	typing2 := dxml.DTDTyping(
		dxml.MustParseDTD(dxml.KindNRE, "root s1\ns1 -> b"),
		dxml.MustParseDTD(dxml.KindNRE, "root s2\ns2 -> c"),
	)
	sres2, _ := dxml.ConsSDTD(k2, typing2, dxml.KindNFA)
	fmt.Printf("  position-dependent a-content: cons[EDTD]=true (always), cons[SDTD]=%v → EDTDs ⊋ SDTDs\n",
		sres2.Consistent)
}

// table2 measures cons[S] outcomes and typeT(τn) sizes across the R×S
// grid on size families — reproducing the Θ(m), Θ(m²), Θ(2^m) size rows.
func table2() {
	fmt.Println("Table 2 — cons[S] and worst-case |typeT(τn)| vs m (input size)")
	fmt.Println("family: [τ1]=(a|b)*a, [τ2]=(a|b)^m over T=s0(f1 f2)  (dFA concat blow-up)")
	fmt.Printf("  %-4s %10s %10s %10s %14s\n", "m", "|input|", "nFA", "dFA", "dFA/2^m")
	for m := 2; m <= 9; m++ {
		re2 := strings.TrimSuffix(strings.Repeat("(a|b) ", m), " ")
		k := dxml.MustParseKernel("s0(f1 f2)")
		ty := dxml.DTDTyping(
			dxml.MustParseDTD(dxml.KindDFA, "root s1\ns1 -> (a|b)* a"),
			dxml.MustParseDTD(dxml.KindDFA, "root s2\ns2 -> "+re2),
		)
		inSize := ty[0].Size() + ty[1].Size()
		nres, err := dxml.ConsDTD(k, ty, dxml.KindNFA)
		must(err)
		dres, err := dxml.ConsDTD(k, ty, dxml.KindDFA)
		must(err)
		nSize := nres.DTD.Size()
		dSize := dres.DTD.Size()
		fmt.Printf("  %-4d %10d %10d %10d %14.2f\n", m, inSize, nSize, dSize,
			float64(dSize)/float64(int(1)<<m))
	}
	fmt.Println("  → nFA column grows linearly (Θ(m)); dFA column doubles per step (Θ(2^m))")

	fmt.Println("\nfamily: dRE typing (b*, d*) over T=s0(a f1 c f2) scaled by alphabet width")
	fmt.Printf("  %-4s %10s %12s %12s\n", "w", "|input|", "consistent", "|typeT| dRE")
	for w := 1; w <= 5; w++ {
		var syms []string
		for i := 0; i < w; i++ {
			syms = append(syms, fmt.Sprintf("b%d", i))
		}
		re := "(" + strings.Join(syms, " | ") + ")*"
		k := dxml.MustParseKernel("s0(a f1 c f2)")
		ty := dxml.DTDTyping(
			dxml.MustParseDTD(dxml.KindDRE, "root s1\ns1 -> "+re),
			dxml.MustParseDTD(dxml.KindDRE, "root s2\ns2 -> d*"),
		)
		res, err := dxml.ConsDTD(k, ty, dxml.KindDRE)
		must(err)
		size := 0
		if res.Consistent {
			size = res.DTD.Size()
		}
		fmt.Printf("  %-4d %10d %12v %12d\n", w, ty[0].Size()+ty[1].Size(), res.Consistent, size)
	}
	fmt.Println("  → the dRE rows stay linear when contents do not interleave (Cor. 3.3 shape)")

	fmt.Println("\nEDTD column: cons[R-EDTD] is constant-time 'yes' (Cor. 3.3); dFA-EDTD typeT is ≤ quadratic:")
	for m := 2; m <= 6; m++ {
		re2 := strings.TrimSuffix(strings.Repeat("(a|b) ", m), " ")
		k := dxml.MustParseKernel("s0(f1 f2)")
		ty := dxml.DTDTyping(
			dxml.MustParseDTD(dxml.KindDFA, "root s1\ns1 -> (a|b)* a"),
			dxml.MustParseDTD(dxml.KindDFA, "root s2\ns2 -> "+re2),
		)
		e, err := dxml.ConsEDTD(k, ty, dxml.KindDFA)
		must(err)
		fmt.Printf("  m=%d: |typeT| as dFA-EDTD = %d\n", m, e.Size())
	}
	fmt.Println("  → the EDTD representation avoids the DTD/SDTD dFA blow-up (per-name contents never concatenate)")
}

// table3 times the top-down decision problems across schema classes,
// reproducing the complexity table's shape: the EDTD column explodes
// relative to the word/DTD/SDTD column, and the ∃-problems dominate the
// verification problems.
func table3() {
	fmt.Println("Table 3 — top-down problems: time vs instance size")
	fmt.Println("(absolute times are ours; the paper's content is the complexity shape)")

	timeIt := func(f func()) time.Duration {
		start := time.Now()
		f()
		return time.Since(start)
	}

	fmt.Println("\nwords (nFA column), τ = (a b)+ scaled by repetition, w = f1 f2:")
	fmt.Printf("  %-4s %12s %12s %12s %12s %12s\n", "k", "loc", "ml", "perf", "∃-perf", "∃-ml")
	for k := 1; k <= 3; k++ {
		target := strings.TrimSuffix(strings.Repeat("(a b)+ ", k), " ")
		d := dxml.MustWordDesign(target, "f1 f2")
		typing, okT := d.LocalTyping()
		if !okT {
			typing = dxml.MustWordTyping("(a b)*", "(a b)*")
		}
		tLoc := timeIt(func() { d.Local(typing) })
		tMl := timeIt(func() { _, _ = d.MaximalLocal(typing) })
		tPerf := timeIt(func() { d.IsPerfect(typing) })
		tEPerf := timeIt(func() { _, _ = d.PerfectTyping() })
		tEMl := timeIt(func() { d.MaximalLocalTypings() })
		fmt.Printf("  %-4d %12s %12s %12s %12s %12s\n", k, tLoc, tMl, tPerf, tEPerf, tEMl)
	}

	fmt.Println("\ntrees: DTD/SDTD (per-node word problems) vs EDTD (normalize + κ):")
	fmt.Printf("  %-10s %14s %14s\n", "class", "∃-perfect", "∃-ml")
	dtdDesign := &dxml.DTDDesign{
		Type: dxml.MustParseDTD(dxml.KindNRE, `
			root eurostat
			eurostat -> averages, nationalIndex*
			averages -> (Good, index+)+
			nationalIndex -> country, Good, (index | value, year)
			index -> value, year`),
		Kernel: dxml.MustParseKernel("eurostat(f0 f1 f2 f3)"),
	}
	tP := timeIt(func() { dtdDesign.ExistsPerfect() })
	tM := timeIt(func() { dtdDesign.ExistsMaximalLocal() })
	fmt.Printf("  %-10s %14s %14s\n", "DTD", tP, tM)

	sdtdDesign := &dxml.SDTDDesign{
		Type: dxml.MustParseEDTD(dxml.KindNRE, `
			root s
			s -> a1, b1
			a1 : a -> x*
			b1 : b -> a2
			a2 : a -> y?`),
		Kernel: dxml.MustParseKernel("s(a(f1) b(a(f2)))"),
	}
	tP = timeIt(func() { sdtdDesign.ExistsPerfect() })
	tM = timeIt(func() { sdtdDesign.ExistsMaximalLocal() })
	fmt.Printf("  %-10s %14s %14s\n", "SDTD", tP, tM)

	edtdDesign := &dxml.EDTDDesign{
		Type: dxml.MustParseEDTD(dxml.KindNRE, `
			root eurostat
			eurostat -> averages, (natIndA, natIndB)+
			averages -> (Good, index+)+
			natIndA : nationalIndex -> country, Good, index
			natIndB : nationalIndex -> country, Good, value, year
			index -> value, year`),
		Kernel: dxml.MustParseKernel("eurostat(f1 nationalIndex(f2) f3)"),
	}
	tP = timeIt(func() { _, _, _ = edtdDesign.ExistsPerfect() })
	tM = timeIt(func() { _, _ = edtdDesign.MaximalLocalTypings() })
	fmt.Printf("  %-10s %14s %14s\n", "EDTD(τ″)", tP, tM)

	fmt.Println("\nEDTD κ-route blow-up: ∃-ml time vs number s of same-element specializations")
	fmt.Printf("  %-4s %8s %14s\n", "s", "κ space", "∃-ml time")
	for s := 1; s <= 4; s++ {
		var grammar strings.Builder
		grammar.WriteString("root s0\ns0 -> ")
		for i := 1; i <= s; i++ {
			if i > 1 {
				grammar.WriteString(" | ")
			}
			fmt.Fprintf(&grammar, "x%d", i)
		}
		grammar.WriteString("\n")
		for i := 1; i <= s; i++ {
			fmt.Fprintf(&grammar, "x%d : x -> y%d\n", i, i)
		}
		e := dxml.MustParseEDTD(dxml.KindNRE, grammar.String())
		design := &dxml.EDTDDesign{Type: e, Kernel: dxml.MustParseKernel("s0(x(f1))")}
		dur := timeIt(func() { _, _ = design.MaximalLocalTypings() })
		fmt.Printf("  %-4d %8d %14s\n", s, (1<<s)-1, dur)
	}
	fmt.Println("  → the κ space (nonempty subsets of Σ̃(x)) doubles per specialization —")
	fmt.Println("    the NP^C oracle structure of Cor. 4.14; DTD/SDTD rows have no such factor")
}

func fig4() {
	fmt.Println("Figure 4 — perfect typing of ⟨τ, T0⟩ (see examples/eurostat for the full tour)")
	tau := dxml.MustParseDTD(dxml.KindNRE, `
		root eurostat
		eurostat -> averages, nationalIndex*
		averages -> (Good, index+)+
		nationalIndex -> country, Good, (index | value, year)
		index -> value, year`)
	design := &dxml.DTDDesign{Type: tau, Kernel: dxml.MustParseKernel("eurostat(f0 f1 f2 f3)")}
	typing, ok := design.ExistsPerfect()
	fmt.Printf("  perfect typing exists: %v\n", ok)
	if ok {
		for i, t := range typing {
			fmt.Printf("  f%d: %s -> %s\n", i, t.Starts[0], dxml.DisplayRegex(dxml.RootContent(t)))
		}
	}
}

func fig5() {
	fmt.Println("Figure 5 — τ′ admits no local typing")
	tauPrime := dxml.MustParseDTD(dxml.KindNRE, `
		root eurostat
		eurostat -> averages, (natIndA* | natIndB*)
		averages -> (Good, index+)+
		natIndA -> country, Good, index
		natIndB -> country, Good, value, year
		index -> value, year`)
	design := &dxml.DTDDesign{Type: tauPrime, Kernel: dxml.MustParseKernel("eurostat(f0 f1 f2 f3)")}
	_, ok := design.ExistsLocal()
	fmt.Printf("  ∃-loc[⟨τ′, T0⟩] = %v (paper: no local typing)\n", ok)
}

func fig6() {
	fmt.Println("Figure 6 — τ″ over T1: no perfect, exactly two maximal local typings")
	tau := dxml.MustParseEDTD(dxml.KindNRE, `
		root eurostat
		eurostat -> averages, (natIndA, natIndB)+
		averages -> (Good, index+)+
		natIndA : nationalIndex -> country, Good, index
		natIndB : nationalIndex -> country, Good, value, year
		index -> value, year`)
	design := &dxml.EDTDDesign{Type: tau, Kernel: dxml.MustParseKernel("eurostat(f1 nationalIndex(f2) f3)")}
	_, ok, err := design.ExistsPerfect()
	must(err)
	fmt.Printf("  ∃-perf = %v\n", ok)
	typings, err := design.MaximalLocalTypings()
	must(err)
	fmt.Printf("  maximal local typings: %d\n", len(typings))
	for i, ty := range typings {
		fmt.Printf("  typing %d:\n", i+1)
		for j, t := range ty {
			fmt.Printf("    f%d: -> %s\n", j+1, dxml.DisplayRegex(dxml.RootContent(t)))
		}
	}
}

// fig7 measures the perfect-automaton construction: Lemma 6.6 bounds the
// size of Ω by O(n·k³) for k states and n functions.
func fig7() {
	fmt.Println("Figure 7 / Lemma 6.6 — perfect automaton size vs k (states) and n (functions)")
	fmt.Printf("  %-4s %-4s %10s %12s %14s\n", "k", "n", "|Ω| states", "build time", "|Ω|/(n·k³)")
	for _, k := range []int{4, 8, 12} {
		for _, n := range []int{1, 2, 4} {
			// Target: the k-state cycle automaton a0 a1 … a(k−1) repeated;
			// the kernel is n adjacent functions, so every state pair
			// yields a legal local automaton.
			re := ""
			for i := 0; i < k; i++ {
				re += fmt.Sprintf("a%d ", i)
			}
			target := "(" + strings.TrimSpace(re) + ")*"
			kernelStr := ""
			for i := 1; i <= n; i++ {
				kernelStr += fmt.Sprintf("f%d ", i)
			}
			d := dxml.MustWordDesign(target, strings.TrimSpace(kernelStr))
			start := time.Now()
			p := d.Perfect()
			omega := p.OmegaNFA()
			dur := time.Since(start)
			states := omega.NumStates()
			fmt.Printf("  %-4d %-4d %10d %12s %14.3f\n", k, n, states, dur,
				float64(states)/float64(n*k*k*k))
		}
	}
	fmt.Println("  → the normalized column stays bounded: |Ω| = O(n·k³) as Lemma 6.6 states")
}

func fig8() {
	fmt.Println("Figure 8 — Dec decomposition of overlapping automata into disjoint cells")
	autos := []*dxml.NFA{
		dxml.RegexNFA(dxml.MustParseRegex("a*")),
		dxml.RegexNFA(dxml.MustParseRegex("a+")),
		dxml.RegexNFA(dxml.MustParseRegex("a a | a a a")),
	}
	cells := dxml.DecomposeCells(autos)
	fmt.Printf("  three automata (a*, a+, aa|aaa) → %d nonempty cells of ≤ 2³−1 = 7:\n", len(cells))
	for _, c := range cells {
		fmt.Printf("    members %v: %s\n", c.Members.Sorted(), dxml.DisplayRegex(c.Lang))
	}
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dxmlbench:", err)
		os.Exit(1)
	}
}
