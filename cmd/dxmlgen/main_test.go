package main

import (
	"strings"
	"testing"

	"dxml"
)

func TestParseTypeW3CAndArrow(t *testing.T) {
	w3c := `<!ELEMENT s (a*)> <!ELEMENT a (#PCDATA)>`
	e, err := parseType(w3c)
	if err != nil {
		t.Fatal(err)
	}
	if e.Elem(e.Starts[0]) != "s" {
		t.Errorf("root = %s", e.Starts[0])
	}
	arrow := "s -> a*\n"
	e, err = parseType(arrow)
	if err != nil {
		t.Fatal(err)
	}
	if e.Starts[0] != "s" {
		t.Errorf("ensureRoot failed: %v", e.Starts)
	}
	withRoot := "root s\ns -> a*"
	if _, err := parseType(withRoot); err != nil {
		t.Fatal(err)
	}
}

func TestEnsureRootSpecialized(t *testing.T) {
	src := "x1 : x -> y\n"
	out := ensureRoot(src)
	if !strings.HasPrefix(out, "root x1\n") {
		t.Errorf("ensureRoot = %q", out)
	}
}

func TestSampledOutputsValidate(t *testing.T) {
	e, err := parseType("root s\ns -> a+ b?\na -> c*")
	if err != nil {
		t.Fatal(err)
	}
	sampler, err := dxml.NewSampler(e, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		doc, err := sampler.Document()
		if err != nil {
			t.Fatal(err)
		}
		if vErr := e.Validate(doc); vErr != nil {
			t.Fatalf("sample invalid: %v", vErr)
		}
	}
}
