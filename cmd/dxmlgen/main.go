// Command dxmlgen samples random documents valid for a schema type —
// useful for seeding federations, fuzzing validators and generating
// benchmark workloads.
//
// Usage:
//
//	dxmlgen [-n 3] [-seed 1] [-depth 12] [-budget 6] [-format term|xml] <type-file>
//
// The type file holds either W3C <!ELEMENT …> declarations or the
// arrow-grammar notation (with "name : element -> regex" specializations
// for EDTDs; the root rule's head is the document root).
//
// -format xml emits each document as real XML on stdout, so generated
// workloads pipe straight into the streaming validator end to end
// (-budget widens nodes for larger documents):
//
//	dxmlgen -n 1 -depth 20 -budget 40 -format xml type.grammar |
//	    dxml -problem validate file.design -
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dxml"
)

func main() {
	n := flag.Int("n", 3, "number of documents to sample")
	seed := flag.Int64("seed", 1, "random seed")
	depth := flag.Int("depth", 12, "maximum tree height")
	budget := flag.Int("budget", 6, "soft bound on children sampled per node (width)")
	format := flag.String("format", "term", "output format: term or xml")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dxmlgen [-n N] [-seed S] [-depth D] [-budget W] [-format term|xml] <type-file>")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	e, err := parseType(string(src))
	if err != nil {
		fatal(err)
	}
	sampler, err := dxml.NewSampler(e, *seed)
	if err != nil {
		fatal(err)
	}
	sampler.MaxDepth = *depth
	sampler.WordBudget = *budget
	for i := 0; i < *n; i++ {
		doc, err := sampler.Document()
		if err != nil {
			fatal(err)
		}
		switch *format {
		case "xml":
			fmt.Print(doc.XMLString())
		default:
			fmt.Println(doc)
		}
	}
}

func parseType(src string) (*dxml.EDTD, error) {
	if strings.Contains(src, "<!ELEMENT") {
		d, err := dxml.ParseW3CDTD(dxml.KindNRE, src)
		if err != nil {
			return nil, err
		}
		return d.ToEDTD(), nil
	}
	return dxml.ParseEDTD(dxml.KindNRE, ensureRoot(src))
}

// ensureRoot adds a root declaration for the first rule head when the
// grammar has none (matching ParseDTD's convenience).
func ensureRoot(src string) string {
	for _, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "root ") {
			return src
		}
		head, _, ok := strings.Cut(line, "->")
		if !ok {
			return src
		}
		name := strings.TrimSpace(head)
		if before, _, hasColon := strings.Cut(name, ":"); hasColon {
			name = strings.TrimSpace(before)
		}
		return "root " + name + "\n" + src
	}
	return src
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dxmlgen:", err)
	os.Exit(1)
}
