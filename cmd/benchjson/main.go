// Command benchjson converts `go test -bench` text output into a JSON
// document, so CI can publish benchmark results as a machine-readable
// artifact and the performance trajectory stays diffable across PRs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x ./... | benchjson -out BENCH.json
//
// Every benchmark line becomes one record with its name, iteration
// count, and every reported metric (ns/op, B/op, allocs/op, MB/s, and
// custom b.ReportMetric units like wire-bytes/op) keyed by unit.
// Non-benchmark lines are ignored, so raw `go test` output pipes in
// unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// parseLine parses one `go test -bench` output line, reporting ok=false
// for lines that are not benchmark results.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// The rest are value-unit pairs: "123 ns/op", "45.2 MB/s", ...
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return Result{}, false
	}
	return r, true
}

// convert reads bench text from in and writes the JSON artifact to out.
func convert(in io.Reader, out io.Writer) error {
	var results []Result
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Benchmarks []Result `json:"benchmarks"`
	}{results})
}

func main() {
	outPath := flag.String("out", "", "output file (default stdout)")
	flag.Parse()
	out := io.Writer(os.Stdout)
	var file *os.File
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		file = f
		out = f
	}
	err := convert(os.Stdin, out)
	if file != nil {
		// A failed flush must fail the run, or CI publishes a truncated
		// artifact while staying green.
		if cerr := file.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
