// Command benchjson converts `go test -bench` text output into a JSON
// document, so CI can publish benchmark results as a machine-readable
// artifact and the performance trajectory stays diffable across PRs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x ./... | benchjson -out BENCH.json
//
// Every benchmark line becomes one record with its name, iteration
// count, and every reported metric (ns/op, B/op, allocs/op, MB/s, and
// custom b.ReportMetric units like wire-bytes/op) keyed by unit.
// Non-benchmark lines are ignored, so raw `go test` output pipes in
// unfiltered.
//
// Repeatable -min 'substring:unit:threshold' flags turn the run into a
// regression gate: every benchmark whose name contains the substring
// must report the unit at or above the threshold, or benchjson exits 1
// (after writing the artifact, so the regressing numbers are still
// published). A spec matching no benchmark also fails — renaming a
// benchmark must not silently disarm its gate. Example:
//
//	... | benchjson -out BENCH.json -min 'TCPWindowSweep/window=1:MB/s:90.9'
//
// Repeatable -max flags are the mirror-image ceiling gate, for metrics
// where more is worse — allocation gates pin the hot path at zero:
//
//	... | benchjson -out BENCH.json -max 'ObsOverhead:allocs/op:0'
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// parseLine parses one `go test -bench` output line, reporting ok=false
// for lines that are not benchmark results.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// The rest are value-unit pairs: "123 ns/op", "45.2 MB/s", ...
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return Result{}, false
	}
	return r, true
}

// convert reads bench text from in and writes the JSON artifact to out,
// returning the parsed results for threshold checks.
func convert(in io.Reader, out io.Writer) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return results, enc.Encode(struct {
		Benchmarks []Result `json:"benchmarks"`
	}{results})
}

// minSpec is one -min threshold: every benchmark whose name contains
// the substring must report the unit at or above the floor.
type minSpec struct {
	substr string
	unit   string
	floor  float64
}

// parseGate splits one 'substring:unit:threshold' spec (the substring
// may itself contain colons; the last two fields are the unit and the
// number).
func parseGate(v string) (substr, unit string, threshold float64, err error) {
	i := strings.LastIndex(v, ":")
	if i < 0 {
		return "", "", 0, fmt.Errorf("want substring:unit:threshold, got %q", v)
	}
	threshold, err = strconv.ParseFloat(v[i+1:], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("threshold in %q: %w", v, err)
	}
	rest := v[:i]
	j := strings.LastIndex(rest, ":")
	if j < 0 {
		return "", "", 0, fmt.Errorf("want substring:unit:threshold, got %q", v)
	}
	return rest[:j], rest[j+1:], threshold, nil
}

// minFlags collects repeated -min 'substring:unit:threshold' specs.
type minFlags []minSpec

func (m *minFlags) String() string {
	var parts []string
	for _, s := range *m {
		parts = append(parts, fmt.Sprintf("%s:%s:%g", s.substr, s.unit, s.floor))
	}
	return strings.Join(parts, ",")
}

func (m *minFlags) Set(v string) error {
	substr, unit, floor, err := parseGate(v)
	if err != nil {
		return err
	}
	*m = append(*m, minSpec{substr: substr, unit: unit, floor: floor})
	return nil
}

// maxSpec is one -max ceiling: every benchmark whose name contains the
// substring must report the unit at or below the ceiling — the gate for
// metrics where more is worse (allocs/op, B/op, ns/op).
type maxSpec struct {
	substr string
	unit   string
	ceil   float64
}

// maxFlags collects repeated -max 'substring:unit:threshold' specs.
type maxFlags []maxSpec

func (m *maxFlags) String() string {
	var parts []string
	for _, s := range *m {
		parts = append(parts, fmt.Sprintf("%s:%s:%g", s.substr, s.unit, s.ceil))
	}
	return strings.Join(parts, ",")
}

func (m *maxFlags) Set(v string) error {
	substr, unit, ceil, err := parseGate(v)
	if err != nil {
		return err
	}
	*m = append(*m, maxSpec{substr: substr, unit: unit, ceil: ceil})
	return nil
}

// checkMins enforces every -min spec against the parsed results: a spec
// that matches no benchmark fails too (a renamed or deleted benchmark
// must not silently disarm its regression gate).
func checkMins(results []Result, mins minFlags) error {
	for _, spec := range mins {
		matched := false
		for _, r := range results {
			if !strings.Contains(r.Name, spec.substr) {
				continue
			}
			got, ok := r.Metrics[spec.unit]
			if !ok {
				continue
			}
			matched = true
			if got < spec.floor {
				return fmt.Errorf("regression: %s reported %g %s, floor is %g",
					r.Name, got, spec.unit, spec.floor)
			}
		}
		if !matched {
			return fmt.Errorf("-min %s:%s:%g matched no benchmark", spec.substr, spec.unit, spec.floor)
		}
	}
	return nil
}

// checkMaxs enforces every -max spec, with the same no-silent-disarm
// rule as checkMins: a spec matching no benchmark fails the run.
func checkMaxs(results []Result, maxs maxFlags) error {
	for _, spec := range maxs {
		matched := false
		for _, r := range results {
			if !strings.Contains(r.Name, spec.substr) {
				continue
			}
			got, ok := r.Metrics[spec.unit]
			if !ok {
				continue
			}
			matched = true
			if got > spec.ceil {
				return fmt.Errorf("regression: %s reported %g %s, ceiling is %g",
					r.Name, got, spec.unit, spec.ceil)
			}
		}
		if !matched {
			return fmt.Errorf("-max %s:%s:%g matched no benchmark", spec.substr, spec.unit, spec.ceil)
		}
	}
	return nil
}

func main() {
	outPath := flag.String("out", "", "output file (default stdout)")
	var mins minFlags
	flag.Var(&mins, "min", "regression floor 'substring:unit:threshold' (repeatable): every matching benchmark must report the unit at or above the threshold, or exit 1")
	var maxs maxFlags
	flag.Var(&maxs, "max", "regression ceiling 'substring:unit:threshold' (repeatable): every matching benchmark must report the unit at or below the threshold, or exit 1")
	flag.Parse()
	out := io.Writer(os.Stdout)
	var file *os.File
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		file = f
		out = f
	}
	results, err := convert(os.Stdin, out)
	if file != nil {
		// A failed flush must fail the run, or CI publishes a truncated
		// artifact while staying green.
		if cerr := file.Close(); err == nil {
			err = cerr
		}
	}
	if err == nil {
		// Thresholds are checked after the artifact is written: a
		// regression still publishes the numbers that show it.
		err = checkMins(results, mins)
	}
	if err == nil {
		err = checkMaxs(results, maxs)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
