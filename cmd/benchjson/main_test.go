package main

import (
	"encoding/json"
	"io"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: dxml/internal/p2p
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCentralizedChunkSweep/chunk=4096         	       2	  25477297 ns/op	       368.0 frames/op	   1480239 wire-bytes/op	 3299752 B/op	  200846 allocs/op
BenchmarkFeederScaling/n=1000000            	       2	 101590006 ns/op	 193.59 MB/s	     904 B/op	      20 allocs/op
PASS
ok  	dxml/internal/p2p	3.714s
`

func TestConvert(t *testing.T) {
	var out strings.Builder
	parsed, err := convert(strings.NewReader(sample), &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 2 {
		t.Fatalf("convert returned %d results, want 2", len(parsed))
	}
	var doc struct {
		Benchmarks []Result `json:"benchmarks"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkCentralizedChunkSweep/chunk=4096" || b.Iterations != 2 {
		t.Errorf("first record: %+v", b)
	}
	if b.Metrics["wire-bytes/op"] != 1480239 || b.Metrics["allocs/op"] != 200846 {
		t.Errorf("metrics: %v", b.Metrics)
	}
	if doc.Benchmarks[1].Metrics["MB/s"] != 193.59 {
		t.Errorf("custom unit lost: %v", doc.Benchmarks[1].Metrics)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"", "PASS", "ok  	dxml	0.5s", "goos: linux",
		"BenchmarkBroken abc def", "Benchmark 12",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted noise", line)
		}
	}
}

// TestMinFlag pins the regression gate: specs parse (including colons
// in the benchmark substring), floors pass at or above and fail below,
// and a spec matching nothing fails rather than silently disarming.
func TestMinFlag(t *testing.T) {
	var mins minFlags
	if err := mins.Set("FeederScaling:MB/s:190"); err != nil {
		t.Fatal(err)
	}
	if err := mins.Set("ChunkSweep/chunk=4096:allocs/op:0"); err != nil {
		t.Fatal(err)
	}
	if mins[0].substr != "FeederScaling" || mins[0].unit != "MB/s" || mins[0].floor != 190 {
		t.Fatalf("parsed spec: %+v", mins[0])
	}
	for _, bad := range []string{"", "nounit", "a:b:notanumber"} {
		var m minFlags
		if err := m.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted a malformed spec", bad)
		}
	}

	results, err := convert(strings.NewReader(sample), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := checkMins(results, mins); err != nil {
		t.Errorf("floors at the reported values should pass: %v", err)
	}
	if err := checkMins(results, minFlags{{substr: "FeederScaling", unit: "MB/s", floor: 200}}); err == nil {
		t.Error("a floor above the reported MB/s should fail")
	}
	if err := checkMins(results, minFlags{{substr: "NoSuchBench", unit: "MB/s", floor: 1}}); err == nil {
		t.Error("a spec matching no benchmark should fail")
	}
	if err := checkMins(results, minFlags{{substr: "FeederScaling", unit: "no/unit", floor: 1}}); err == nil {
		t.Error("a spec matching no unit should fail")
	}
}

// TestMaxFlag pins the ceiling gate: the mirror image of -min, for
// metrics where more is worse. Ceilings pass at or below, fail above,
// and an unmatched spec fails rather than silently disarming.
func TestMaxFlag(t *testing.T) {
	var maxs maxFlags
	if err := maxs.Set("FeederScaling:allocs/op:20"); err != nil {
		t.Fatal(err)
	}
	if err := maxs.Set("ChunkSweep/chunk=4096:wire-bytes/op:1480239"); err != nil {
		t.Fatal(err)
	}
	if maxs[0].substr != "FeederScaling" || maxs[0].unit != "allocs/op" || maxs[0].ceil != 20 {
		t.Fatalf("parsed spec: %+v", maxs[0])
	}
	for _, bad := range []string{"", "nounit", "a:b:notanumber"} {
		var m maxFlags
		if err := m.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted a malformed spec", bad)
		}
	}

	results, err := convert(strings.NewReader(sample), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := checkMaxs(results, maxs); err != nil {
		t.Errorf("ceilings at the reported values should pass: %v", err)
	}
	if err := checkMaxs(results, maxFlags{{substr: "FeederScaling", unit: "allocs/op", ceil: 19}}); err == nil {
		t.Error("a ceiling below the reported allocs/op should fail")
	}
	if err := checkMaxs(results, maxFlags{{substr: "FeederScaling", unit: "allocs/op", ceil: 0}}); err == nil {
		t.Error("a zero-alloc gate over an allocating benchmark should fail")
	}
	if err := checkMaxs(results, maxFlags{{substr: "NoSuchBench", unit: "allocs/op", ceil: 1}}); err == nil {
		t.Error("a spec matching no benchmark should fail")
	}
	if err := checkMaxs(results, maxFlags{{substr: "FeederScaling", unit: "no/unit", ceil: 1}}); err == nil {
		t.Error("a spec matching no unit should fail")
	}
}
