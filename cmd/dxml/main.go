// Command dxml decides distributed XML design problems on a design file
// and runs real federations over TCP.
//
// Usage:
//
//	dxml -problem <problem> <design-file>
//	dxml -problem validate <design-file> <document.term|document.xml>
//	dxml -problem validate <design-file> -        # stream XML from stdin
//	dxml -problem validate -distributed [-stats] [-chunk N] <design-file> <doc>...
//	dxml serve [-listen addr] [-watch] [-chaos seed] <design-file> <fn=document>...
//	dxml join [-connect addr] [-peer fn=addr]... [-stats] [-chunk N] [-watch [-reconnect N]] <design-file>
//	dxml host [-listen addr] [-http addr] [caps...] [<design-file>,<fn=document>,... ...]
//	dxml register -http addr [-name tenant] <design-file> <fn=document>...
//	dxml inspect <capture.dxfr | postmortem.json>
//	dxml replay -design <design-file> <capture.dxfr | postmortem.json>
//	dxml top -http addr [-interval d] [-n count]
//
// Problems: exists-local, exists-ml, exists-perfect (top-down existence);
// loc, ml, perf (verification of the typing given in the file);
// cons (bottom-up consistency for the file's class); validate.
//
// The serve and join subcommands run the federation over real sockets:
// serve hosts the documents behind named docking points (one serve per
// site, each hosting any subset), and join connects as the kernel peer,
// streams the fragments over a length-prefixed binary frame protocol,
// and prints the verdict of both validation protocols — with traffic
// identical, message for message and byte for byte, to the in-process
// wire on the same documents. The session hello carries a digest of the
// design, so a join against hosts serving a different design fails
// before any fragment moves.
//
// The host subcommand is the multi-tenant form of serve: one process,
// one port, many designs. Each tenant is a design file plus its
// documents; incoming sessions are routed by the design digest their
// hello carries, one compiled validator is shared by every session of a
// design, and admission caps (sessions, open transfers, resident
// memory) refuse over-budget hellos with a typed error instead of
// hanging them. -http serves /healthz, /metrics (per-tenant and global
// counters), and /register — the endpoint `dxml register` posts a new
// design to at runtime. `dxml join` needs no new flags: joining a
// multi-tenant host looks exactly like joining a serve.
//
// The flight recorder closes the loop: serve, join, and host take
// -capture dir, which records every wire frame into dir/capture.dxfr
// and dumps a postmortem bundle (frames, trace spans, metrics) on any
// typed failure — a refused hello, a liveness timeout, a malformed
// frame, or a chaos-injected drop. `dxml inspect` prints a capture or
// bundle as a frame timeline with per-stream flow and credit-window
// occupancy; `dxml replay` re-validates the captured fragments offline
// and cross-checks the recorded verdicts; `dxml top` is a live
// per-tenant dashboard over a multi-tenant host's /metrics.
//
// Validation runs on the streaming engine: one pass, memory proportional
// to the document's depth. With "-" the document is fed to the push
// parser in chunks as stdin delivers them and is never held in memory,
// so generated workloads pipe straight in:
//
//	dxmlgen -n 1 -format xml type.grammar | dxml -problem validate file.design -
//
// With -distributed the design file's typing blocks become the local
// types of a simulated federation (one document argument per docking
// point, in kernel order) and both protocols run over the chunked wire:
// distributed validation ships only verdicts, centralized validation
// pulls every fragment in -chunk-byte frames and rejects invalid
// documents mid-transfer. -stats prints the traffic of each, including
// the bytes such a rejection saved.
//
// Design file format (see testdata/ for examples):
//
//	class dtd | sdtd | edtd | word
//	kind nFA | dFA | nRE | dRE
//	kernel eurostat(f0 f1 f2)      # or, for class word:
//	kernelstring a f1 c f2 e
//	type:
//	  root eurostat
//	  eurostat -> averages, nationalIndex*
//	end
//	typing f1:                      # optional; word class: typing f1: regex
//	  root root1
//	  root1 -> nationalIndex*
//	end
//
// Lines starting with # are comments.
package main

import (
	"flag"
	"fmt"
	"os"

	"dxml"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			runServe(os.Args[2:])
			return
		case "join":
			runJoin(os.Args[2:])
			return
		case "host":
			runHost(os.Args[2:])
			return
		case "register":
			runRegister(os.Args[2:])
			return
		case "inspect":
			runInspect(os.Args[2:])
			return
		case "replay":
			runReplay(os.Args[2:])
			return
		case "top":
			runTop(os.Args[2:])
			return
		}
	}
	problem := flag.String("problem", "exists-perfect", "problem to decide")
	trivial := flag.Bool("allow-trivial", false, "allow {ε} as a resource type (literal Definition 12; see DESIGN.md E4)")
	distributed := flag.Bool("distributed", false, "validate: run the p2p federation over the design file's typing (one document per docking point)")
	stats := flag.Bool("stats", false, "validate: print wire traffic (messages, frames, bytes, bytes saved)")
	chunk := flag.Int("chunk", 0, "distributed runs: fragment frame budget in bytes (0 = default 4096; -chunk -1 = unchunked, the only valid negative); stdin validation: read-chunk size (0 or -1 = 32 KiB)")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: dxml -problem <problem> <design-file> [document...]")
		fmt.Fprintln(os.Stderr, "       dxml serve|join ... (see dxml serve -h, dxml join -h)")
		os.Exit(2)
	}
	if err := validateChunkFlag(*chunk); err != nil {
		fatal(err)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	df, err := ParseDesignFile(string(src))
	if err != nil {
		fatal(err)
	}
	df.AllowTrivial = *trivial
	if *problem == "validate" && *distributed {
		docs := make([]*dxml.Tree, 0, flag.NArg()-1)
		for _, arg := range flag.Args()[1:] {
			b, err := os.ReadFile(arg)
			if err != nil {
				fatal(err)
			}
			doc, err := parseDocArg(string(b))
			if err != nil {
				fatal(fmt.Errorf("%s: %w", arg, err))
			}
			docs = append(docs, doc)
		}
		out, err := RunValidateDistributed(df, docs, *chunk, *stats)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}
	var doc string
	if flag.NArg() > 1 {
		if arg := flag.Arg(1); arg == "-" && *problem == "validate" {
			// One streaming pass over stdin; the document is never
			// materialized.
			out, err := RunValidateStream(df, os.Stdin, *chunk)
			if err != nil {
				fatal(err)
			}
			fmt.Print(out)
			return
		}
		b, err := os.ReadFile(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		doc = string(b)
	}
	out, err := Run(df, *problem, doc)
	if err != nil {
		fatal(err)
	}
	fmt.Print(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dxml:", err)
	os.Exit(1)
}
