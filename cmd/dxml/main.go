// Command dxml decides distributed XML design problems on a design file.
//
// Usage:
//
//	dxml -problem <problem> <design-file>
//	dxml -problem validate <design-file> <document.term|document.xml>
//	dxml -problem validate <design-file> -        # stream XML from stdin
//
// Problems: exists-local, exists-ml, exists-perfect (top-down existence);
// loc, ml, perf (verification of the typing given in the file);
// cons (bottom-up consistency for the file's class); validate.
//
// Validation runs on the streaming engine: one pass, memory proportional
// to the document's depth. With "-" the document is never held in memory
// at all, so generated workloads pipe straight in:
//
//	dxmlgen -n 1 -format xml type.grammar | dxml -problem validate file.design -
//
// Design file format (see testdata/ for examples):
//
//	class dtd | sdtd | edtd | word
//	kind nFA | dFA | nRE | dRE
//	kernel eurostat(f0 f1 f2)      # or, for class word:
//	kernelstring a f1 c f2 e
//	type:
//	  root eurostat
//	  eurostat -> averages, nationalIndex*
//	end
//	typing f1:                      # optional; word class: typing f1: regex
//	  root root1
//	  root1 -> nationalIndex*
//	end
//
// Lines starting with # are comments.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	problem := flag.String("problem", "exists-perfect", "problem to decide")
	trivial := flag.Bool("allow-trivial", false, "allow {ε} as a resource type (literal Definition 12; see DESIGN.md E4)")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: dxml -problem <problem> <design-file> [document]")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	df, err := ParseDesignFile(string(src))
	if err != nil {
		fatal(err)
	}
	df.AllowTrivial = *trivial
	var doc string
	if flag.NArg() > 1 {
		if arg := flag.Arg(1); arg == "-" && *problem == "validate" {
			// One streaming pass over stdin; the document is never
			// materialized.
			out, err := RunValidateStream(df, os.Stdin)
			if err != nil {
				fatal(err)
			}
			fmt.Print(out)
			return
		}
		b, err := os.ReadFile(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		doc = string(b)
	}
	out, err := Run(df, *problem, doc)
	if err != nil {
		fatal(err)
	}
	fmt.Print(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dxml:", err)
	os.Exit(1)
}
