package main

import (
	"fmt"
	"os"

	"dxml"
)

// obsFromFlags builds the CLI's telemetry collector from the shared
// -trace and -debug-http flags. With neither flag set it returns a nil
// collector — the no-op sink — so an uninstrumented run pays nothing.
// The returned cleanup flushes and closes the trace log (call it on the
// way out; spans are buffered).
func obsFromFlags(trace, debugAddr string) (*dxml.Obs, func(), error) {
	if trace == "" && debugAddr == "" {
		return nil, func() {}, nil
	}
	c := dxml.NewObs()
	cleanup := func() {}
	if trace != "" {
		tl, err := dxml.OpenTrace(trace)
		if err != nil {
			return nil, nil, err
		}
		c.SetTrace(tl)
		cleanup = func() { tl.Close() }
	}
	if debugAddr != "" {
		_, errc := dxml.ObsDebugServer(debugAddr, c)
		// A bad -debug-http address should fail loudly, not vanish into
		// a goroutine; surface the listen error asynchronously.
		go func() {
			if err := <-errc; err != nil {
				fmt.Fprintln(os.Stderr, "dxml: debug server:", err)
			}
		}()
	}
	return c, cleanup, nil
}
