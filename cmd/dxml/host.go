package main

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"dxml"
)

// runHost implements `dxml host`: one server process serving many
// designs on one port. Each positional argument registers one tenant
// (a design file plus its documents); more tenants can be registered at
// runtime through the HTTP /register endpoint (`dxml register`).
// Sessions are routed by the design digest their hello carries, and
// admission control refuses over-budget hellos with a typed error.
func runHost(args []string) {
	fs := flag.NewFlagSet("dxml host", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:9400", "TCP address for federation sessions (use :0 for an ephemeral port)")
	httpAddr := fs.String("http", "", "HTTP address for /healthz, /metrics, /register (empty: no HTTP endpoint)")
	maxSessions := fs.Int("max-sessions", 0, "cap on concurrent sessions across all tenants (0 = unlimited)")
	maxTenantSessions := fs.Int("max-tenant-sessions", 0, "cap on concurrent sessions per tenant (0 = unlimited)")
	maxStreams := fs.Int("max-streams", 0, "cap on concurrent open transfers across all tenants (0 = unlimited)")
	maxTenantStreams := fs.Int("max-tenant-streams", 0, "cap on concurrent open transfers per tenant (0 = unlimited)")
	maxResidentBytes := fs.Int64("max-resident-bytes", 0, "resident-memory budget over materialized designs; idle designs are evicted LRU to fit (0 = unlimited)")
	maxResidentDesigns := fs.Int("max-resident-designs", 0, "cap on concurrently materialized designs (0 = unlimited)")
	window := fs.Int("window", dxml.DefaultWindow, "credit window cap in chunks granted to any transfer (bounds per-stream sender memory to window x chunk)")
	chaosSeed := fs.Int64("chaos", 0, "fault-injection seed: accepted connections are deterministically doomed to drop (0 = off)")
	traceFile := fs.String("trace", "", "append JSONL trace spans (session hello, per-fragment open/chunks/verdict) to this file")
	debugHTTP := fs.Bool("debug-http", false, "mount net/http/pprof and expvar under /debug/ on the -http mux")
	capture := fs.String("capture", "", "flight-record every wire frame into this directory (capture.dxfr plus postmortem bundles on typed failures); the live ring is served at /debug/flight on the -http mux")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dxml host [-listen addr] [-http addr] [caps...] [<design-file>,<fn=document>,... ...]")
		fmt.Fprintln(os.Stderr, "hosts many designs on one port; sessions are routed by design digest.")
		fmt.Fprintln(os.Stderr, "each argument is one tenant: a design file and its documents, comma-separated,")
		fmt.Fprintln(os.Stderr, "e.g.  dxml host eurostat.design,f0=avg.term,f1=fr.term library.design,f1=books.xml")
		fmt.Fprintln(os.Stderr, "register further designs at runtime: dxml register -http addr <design-file> <fn=document>...")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() == 0 && *httpAddr == "" {
		fmt.Fprintln(os.Stderr, "dxml: host needs at least one tenant spec, or -http to register tenants at runtime")
		fs.Usage()
		os.Exit(2)
	}
	if err := validateWindowFlag(*window); err != nil {
		fatal(err)
	}
	if *debugHTTP && *httpAddr == "" {
		fatal(fmt.Errorf("-debug-http needs -http (the debug endpoints mount on the HTTP mux)"))
	}
	c, obsCleanup, err := obsFromFlags(*traceFile, "")
	if err != nil {
		fatal(err)
	}
	defer obsCleanup()
	if c == nil && (*httpAddr != "" || *debugHTTP) {
		// The HTTP endpoint is on: collect telemetry so /metrics can
		// serve the Prometheus exposition and /debug/vars has data.
		c = dxml.NewObs()
	}
	rig, err := newCaptureRig(*capture, c)
	if err != nil {
		fatal(err)
	}
	cfg := dxml.HostConfig{
		MaxSessions:        *maxSessions,
		MaxTenantSessions:  *maxTenantSessions,
		MaxStreams:         *maxStreams,
		MaxTenantStreams:   *maxTenantStreams,
		MaxResidentBytes:   *maxResidentBytes,
		MaxResidentDesigns: *maxResidentDesigns,
		Window:             *window,
		Obs:                c,
	}
	if rig != nil {
		cfg.Flight = rig.rec
		cfg.OnWireError = rig.onError
	}
	srv, reg, err := startHost(cfg, fs.Args(), *listen, *httpAddr, *chaosSeed, rig)
	if err != nil {
		fatal(err)
	}
	if *debugHTTP {
		srv.EnableDebug()
	}
	ctx, stop := signalContext()
	defer stop()
	if *chaosSeed != 0 {
		fmt.Printf("dxml: chaos listener armed (seed %d): sessions will drop deterministically\n", *chaosSeed)
	}
	fmt.Printf("dxml: hosting %d designs on %s\n", reg.Len(), srv.Addr())
	if a := srv.HTTPAddr(); a != nil {
		fmt.Printf("dxml: metrics on http://%s/metrics (register via /register)\n", a)
	}
	<-ctx.Done()
	stop()
	fmt.Println("dxml: signal received, closing sessions")
	srv.Close()
	rig.close()
}

// startHost builds the registry from tenant specs and starts the
// multi-tenant server; split from runHost so tests can drive it in
// process. A nonzero chaosSeed wraps the federation listener (not the
// HTTP one) in the deterministic fault injector; the rig (nil: no
// flight recording) receives the injector's fault notifications so a
// chaos drop dumps a postmortem like any other typed failure.
func startHost(cfg dxml.HostConfig, specs []string, listen, httpAddr string, chaosSeed int64, rig *captureRig) (*dxml.HostServer, *dxml.HostRegistry, error) {
	reg := dxml.NewHostRegistry(cfg)
	for _, spec := range specs {
		bundle, err := bundleFromSpec(spec)
		if err != nil {
			return nil, nil, err
		}
		d, _, err := bundleDesign(bundle)
		if err != nil {
			return nil, nil, err
		}
		if err := reg.Register(d); err != nil {
			return nil, nil, err
		}
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, nil, err
	}
	if chaosSeed != 0 {
		cl := dxml.NewChaosListener(ln, chaosSeed)
		if rig != nil {
			cl.SetOnFault(rig.onError)
		}
		ln = cl
	}
	var httpLn net.Listener
	if httpAddr != "" {
		httpLn, err = net.Listen("tcp", httpAddr)
		if err != nil {
			ln.Close()
			return nil, nil, err
		}
	}
	srv := dxml.NewHostServer(reg, ln, httpLn)
	srv.Handle("/register", registerHandler(reg))
	return srv, reg, nil
}

// tenantBundle is one design's registration payload: the design file's
// text plus each hosted docking point's document text. It is what `dxml
// register` POSTs to /register, and what a CLI tenant spec is read
// into — registration is content-based, so the host never touches the
// client's filesystem.
type tenantBundle struct {
	Name   string            `json:"name"`
	Design string            `json:"design"`
	Docs   map[string]string `json:"docs"`
}

// bundleFromSpec parses one CLI tenant spec — a design file and its
// fn=docfile assignments, comma-separated — reading every file now so a
// bad spec fails at startup, not at first session.
func bundleFromSpec(spec string) (tenantBundle, error) {
	parts := strings.Split(spec, ",")
	src, err := os.ReadFile(parts[0])
	if err != nil {
		return tenantBundle{}, err
	}
	b := tenantBundle{
		Name:   strings.TrimSuffix(filepath.Base(parts[0]), filepath.Ext(parts[0])),
		Design: string(src),
		Docs:   map[string]string{},
	}
	for _, a := range parts[1:] {
		fn, path, ok := strings.Cut(a, "=")
		if !ok {
			return tenantBundle{}, fmt.Errorf("tenant %s: assignment %q: want fn=documentfile", parts[0], a)
		}
		doc, err := os.ReadFile(path)
		if err != nil {
			return tenantBundle{}, err
		}
		b.Docs[fn] = string(doc)
	}
	if len(b.Docs) == 0 {
		return tenantBundle{}, fmt.Errorf("tenant %s: no documents (spec is design-file,fn=doc,...)", parts[0])
	}
	return b, nil
}

// bundleDesign compiles a bundle into a registrable design: the bundle
// is parsed once up front (a broken design or document is a
// registration error, not a routing surprise) and again by Build each
// time the design is materialized after an eviction.
func bundleDesign(b tenantBundle) (dxml.HostDesign, []byte, error) {
	if b.Name == "" {
		return dxml.HostDesign{}, nil, fmt.Errorf("tenant bundle needs a name")
	}
	n, _, err := bundleNetwork(b)
	if err != nil {
		return dxml.HostDesign{}, nil, fmt.Errorf("tenant %s: %w", b.Name, err)
	}
	digest := n.Digest()
	return dxml.HostDesign{
		Name:   b.Name,
		Digest: digest,
		Build: func() (map[string]dxml.TransportSource, int64, error) {
			n, _, err := bundleNetwork(b)
			if err != nil {
				return nil, 0, err
			}
			return n.HostSources(), n.ResidentEstimate(), nil
		},
	}, digest, nil
}

// bundleNetwork materializes a bundle's hosting network.
func bundleNetwork(b tenantBundle) (*dxml.Network, []string, error) {
	df, err := ParseDesignFile(b.Design)
	if err != nil {
		return nil, nil, err
	}
	return buildNetwork(df, b.Docs)
}

// registerError is the structured body every /register failure carries:
// a machine-readable code (stable across releases, switch on it) plus
// the human-readable detail. The status code mirrors the failure class:
// 405 wrong method, 400 malformed JSON, 422 a well-formed bundle whose
// design or documents do not compile, 409 an already-taken digest or
// name.
type registerError struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

func writeRegisterError(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(registerError{Code: code, Error: err.Error()})
}

// registerHandler is the /register endpoint: POST a tenantBundle, get
// the design's routing digest back. Failures return a registerError
// body. Registration races with live traffic, so all it touches is the
// registry's own lock.
func registerHandler(reg *dxml.HostRegistry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeRegisterError(w, http.StatusMethodNotAllowed, "method_not_allowed",
				fmt.Errorf("%s not allowed: POST a tenant bundle {name, design, docs}", req.Method))
			return
		}
		var b tenantBundle
		if err := json.NewDecoder(io.LimitReader(req.Body, 16<<20)).Decode(&b); err != nil {
			writeRegisterError(w, http.StatusBadRequest, "malformed_bundle", fmt.Errorf("bad bundle: %w", err))
			return
		}
		d, digest, err := bundleDesign(b)
		if err != nil {
			// Well-formed JSON, uncompilable content: 422, not 400.
			writeRegisterError(w, http.StatusUnprocessableEntity, "invalid_design", err)
			return
		}
		if err := reg.Register(d); err != nil {
			switch {
			case errors.Is(err, dxml.ErrDuplicateDesign):
				writeRegisterError(w, http.StatusConflict, "duplicate_digest", err)
			case errors.Is(err, dxml.ErrDuplicateName):
				writeRegisterError(w, http.StatusConflict, "duplicate_name", err)
			default:
				writeRegisterError(w, http.StatusBadRequest, "rejected", err)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{
			"name":   d.Name,
			"digest": hex.EncodeToString(digest),
		})
	})
}

// runRegister implements `dxml register`: bundle a design file and its
// documents and POST them to a running host's /register endpoint. After
// it succeeds, `dxml join -connect <host>` with the same design file
// routes to the new tenant.
func runRegister(args []string) {
	fs := flag.NewFlagSet("dxml register", flag.ExitOnError)
	httpAddr := fs.String("http", "", "host's HTTP address (the -http a running `dxml host` printed)")
	name := fs.String("name", "", "tenant name for metrics (default: the design file's base name)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dxml register -http addr [-name tenant] <design-file> <fn=document>...")
		fmt.Fprintln(os.Stderr, "registers a design (and its documents) with a running multi-tenant host")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if *httpAddr == "" || fs.NArg() < 2 {
		fs.Usage()
		os.Exit(2)
	}
	spec := strings.Join(fs.Args(), ",")
	bundle, err := bundleFromSpec(spec)
	if err != nil {
		fatal(err)
	}
	if *name != "" {
		bundle.Name = *name
	}
	digest, err := postRegister(*httpAddr, bundle)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dxml: registered %s (digest %s)\n", bundle.Name, digest)
}

// postRegister ships a bundle to a host's /register endpoint and
// returns the digest the host will route by.
func postRegister(httpAddr string, b tenantBundle) (string, error) {
	body, err := json.Marshal(b)
	if err != nil {
		return "", err
	}
	resp, err := http.Post("http://"+httpAddr+"/register", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		var re registerError
		if json.Unmarshal(out, &re) == nil && re.Error != "" {
			return "", fmt.Errorf("register: %s (%s): %s", resp.Status, re.Code, re.Error)
		}
		return "", fmt.Errorf("register: %s: %s", resp.Status, strings.TrimSpace(string(out)))
	}
	var ack struct {
		Digest string `json:"digest"`
	}
	if err := json.Unmarshal(out, &ack); err != nil {
		return "", fmt.Errorf("register: bad response: %w", err)
	}
	return ack.Digest, nil
}
