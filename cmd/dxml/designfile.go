package main

import (
	"fmt"
	"io"
	"strings"

	"dxml"
)

// DesignFile is a parsed design description.
type DesignFile struct {
	Class        string // dtd | sdtd | edtd | word
	Kind         dxml.Kind
	Kernel       *dxml.Kernel
	KernelString *dxml.KernelString
	TypeSrc      string
	TypingSrc    map[string]string // function → grammar or regex source
	AllowTrivial bool
}

// ParseDesignFile parses the design file format documented on the
// command.
func ParseDesignFile(src string) (*DesignFile, error) {
	df := &DesignFile{Class: "dtd", Kind: dxml.KindNRE, TypingSrc: map[string]string{}}
	lines := strings.Split(src, "\n")
	i := 0
	readBlock := func() (string, error) {
		var b strings.Builder
		for ; i < len(lines); i++ {
			line := strings.TrimSpace(lines[i])
			if line == "end" {
				i++
				return b.String(), nil
			}
			b.WriteString(lines[i])
			b.WriteByte('\n')
		}
		return "", fmt.Errorf("unterminated block (missing 'end')")
	}
	for i < len(lines) {
		line := strings.TrimSpace(lines[i])
		i++
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
		case strings.HasPrefix(line, "class "):
			df.Class = strings.TrimSpace(strings.TrimPrefix(line, "class "))
		case strings.HasPrefix(line, "kind "):
			switch strings.TrimSpace(strings.TrimPrefix(line, "kind ")) {
			case "nFA":
				df.Kind = dxml.KindNFA
			case "dFA":
				df.Kind = dxml.KindDFA
			case "nRE":
				df.Kind = dxml.KindNRE
			case "dRE":
				df.Kind = dxml.KindDRE
			default:
				return nil, fmt.Errorf("unknown kind in %q", line)
			}
		case strings.HasPrefix(line, "kernelstring "):
			ks, err := dxml.ParseKernelString(strings.TrimPrefix(line, "kernelstring "))
			if err != nil {
				return nil, err
			}
			df.KernelString = ks
		case strings.HasPrefix(line, "kernel "):
			k, err := dxml.ParseKernel(strings.TrimSpace(strings.TrimPrefix(line, "kernel ")))
			if err != nil {
				return nil, err
			}
			df.Kernel = k
		case line == "type:":
			block, err := readBlock()
			if err != nil {
				return nil, err
			}
			df.TypeSrc = block
		case strings.HasPrefix(line, "type "): // single-line type (word class)
			df.TypeSrc = strings.TrimSpace(strings.TrimPrefix(line, "type "))
		case strings.HasPrefix(line, "typing ") && strings.HasSuffix(line, ":"):
			fn := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(line, "typing ")), ":")
			block, err := readBlock()
			if err != nil {
				return nil, err
			}
			df.TypingSrc[fn] = block
		case strings.HasPrefix(line, "typing "): // single-line: typing f1 = regex
			rest := strings.TrimSpace(strings.TrimPrefix(line, "typing "))
			fn, re, ok := strings.Cut(rest, "=")
			if !ok {
				return nil, fmt.Errorf("typing line %q needs 'typing f = regex' or a block", line)
			}
			df.TypingSrc[strings.TrimSpace(fn)] = strings.TrimSpace(re)
		default:
			return nil, fmt.Errorf("unrecognized line %q", line)
		}
	}
	if df.TypeSrc == "" {
		return nil, fmt.Errorf("design file has no type")
	}
	if df.Class == "word" {
		if df.KernelString == nil {
			return nil, fmt.Errorf("class word needs a kernelstring")
		}
	} else if df.Kernel == nil {
		return nil, fmt.Errorf("class %s needs a kernel", df.Class)
	}
	return df, nil
}

// typing assembles the file's typing blocks in kernel function order.
func (df *DesignFile) typing() (dxml.Typing, error) {
	funcs := df.Kernel.Funcs()
	out := make(dxml.Typing, len(funcs))
	for i, f := range funcs {
		src, ok := df.TypingSrc[f]
		if !ok {
			return nil, fmt.Errorf("no typing block for %s", f)
		}
		e, err := dxml.ParseEDTD(df.Kind, src)
		if err != nil {
			return nil, fmt.Errorf("typing %s: %w", f, err)
		}
		out[i] = e
	}
	return out, nil
}

func (df *DesignFile) wordTyping() (dxml.WordTyping, error) {
	funcs := df.KernelString.Funcs
	out := make(dxml.WordTyping, len(funcs))
	for i, f := range funcs {
		src, ok := df.TypingSrc[f]
		if !ok {
			return nil, fmt.Errorf("no typing for %s", f)
		}
		re, err := dxml.ParseRegex(strings.TrimSpace(src))
		if err != nil {
			return nil, fmt.Errorf("typing %s: %w", f, err)
		}
		out[i] = dxml.RegexNFA(re)
	}
	return out, nil
}

func formatTyping(funcs []string, typing dxml.Typing) string {
	var b strings.Builder
	for i, f := range funcs {
		fmt.Fprintf(&b, "  %s: %s -> %s\n", f, typing[i].Starts[0],
			dxml.DisplayRegex(dxml.RootContent(typing[i])))
	}
	return b.String()
}

func formatWordTyping(funcs []string, typing dxml.WordTyping) string {
	var b strings.Builder
	for i, f := range funcs {
		fmt.Fprintf(&b, "  %s: %s\n", f, dxml.DisplayRegex(typing[i]))
	}
	return b.String()
}

// Run decides the requested problem and renders the answer.
func Run(df *DesignFile, problem, doc string) (string, error) {
	if df.Class == "word" {
		return runWord(df, problem)
	}
	switch problem {
	case "validate":
		return runValidate(df, doc)
	case "cons":
		return runCons(df)
	}
	return runTree(df, problem)
}

func runWord(df *DesignFile, problem string) (string, error) {
	re, err := dxml.ParseRegex(strings.TrimSpace(df.TypeSrc))
	if err != nil {
		return "", err
	}
	d := dxml.NewWordDesign(dxml.RegexNFA(re), df.KernelString)
	d.AllowTrivialTypes = df.AllowTrivial
	funcs := df.KernelString.Funcs
	switch problem {
	case "exists-local":
		if t, ok := d.LocalTyping(); ok {
			return "local typing exists:\n" + formatWordTyping(funcs, t), nil
		}
		return "no local typing exists\n", nil
	case "exists-ml":
		ts := d.MaximalLocalTypings()
		if len(ts) == 0 {
			return "no maximal local typing exists\n", nil
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%d maximal local typing(s):\n", len(ts))
		for _, t := range ts {
			b.WriteString(formatWordTyping(funcs, t))
			b.WriteString("\n")
		}
		return b.String(), nil
	case "exists-perfect":
		if t, ok := d.PerfectTyping(); ok {
			return "perfect typing exists:\n" + formatWordTyping(funcs, t), nil
		}
		return "no perfect typing exists\n", nil
	case "quasi-perfect":
		if t, ok := d.QuasiPerfectTyping(); ok {
			suffix := " (and local, hence perfect)"
			if !d.Local(t) {
				suffix = " (not local — Remark 2's fallback)"
			}
			return "quasi-perfect typing exists" + suffix + ":\n" + formatWordTyping(funcs, t), nil
		}
		return "no quasi-perfect typing exists\n", nil
	case "loc", "ml", "perf":
		typing, err := df.wordTyping()
		if err != nil {
			return "", err
		}
		switch problem {
		case "loc":
			return fmt.Sprintf("local: %v\n", d.Local(typing)), nil
		case "ml":
			ok, err := d.MaximalLocal(typing)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("maximal local: %v\n", ok), nil
		default:
			return fmt.Sprintf("perfect: %v\n", d.IsPerfect(typing)), nil
		}
	}
	return "", fmt.Errorf("unknown problem %q for class word", problem)
}

func parseTreeType(df *DesignFile) (*dxml.DTD, *dxml.EDTD, error) {
	switch df.Class {
	case "dtd":
		if strings.Contains(df.TypeSrc, "<!ELEMENT") {
			d, err := dxml.ParseW3CDTD(df.Kind, df.TypeSrc)
			return d, nil, err
		}
		d, err := dxml.ParseDTD(df.Kind, df.TypeSrc)
		return d, nil, err
	case "sdtd", "edtd":
		e, err := dxml.ParseEDTD(df.Kind, df.TypeSrc)
		return nil, e, err
	}
	return nil, nil, fmt.Errorf("unknown class %q", df.Class)
}

func runTree(df *DesignFile, problem string) (string, error) {
	dtd, edtd, err := parseTreeType(df)
	if err != nil {
		return "", err
	}
	funcs := df.Kernel.Funcs()
	existsOut := func(t dxml.Typing, ok bool, what string) string {
		if !ok {
			return "no " + what + " typing exists\n"
		}
		return what + " typing exists:\n" + formatTyping(funcs, t)
	}
	verifyTyping := func() (dxml.Typing, error) { return df.typing() }

	switch df.Class {
	case "dtd":
		d := &dxml.DTDDesign{Type: dtd, Kernel: df.Kernel, AllowTrivialTypes: df.AllowTrivial}
		switch problem {
		case "exists-local":
			t, ok := d.ExistsLocal()
			return existsOut(t, ok, "local"), nil
		case "exists-ml":
			t, ok := d.ExistsMaximalLocal()
			return existsOut(t, ok, "maximal local"), nil
		case "exists-perfect":
			t, ok := d.ExistsPerfect()
			return existsOut(t, ok, "perfect"), nil
		case "loc", "ml", "perf":
			typing, err := verifyTyping()
			if err != nil {
				return "", err
			}
			var ok bool
			switch problem {
			case "loc":
				ok, err = d.IsLocal(typing)
			case "ml":
				ok, err = d.IsMaximalLocal(typing)
			default:
				ok, err = d.IsPerfect(typing)
			}
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%s: %v\n", problem, ok), nil
		}
	case "sdtd":
		d := &dxml.SDTDDesign{Type: edtd, Kernel: df.Kernel, AllowTrivialTypes: df.AllowTrivial}
		switch problem {
		case "exists-local":
			t, ok := d.ExistsLocal()
			return existsOut(t, ok, "local"), nil
		case "exists-ml":
			t, ok := d.ExistsMaximalLocal()
			return existsOut(t, ok, "maximal local"), nil
		case "exists-perfect":
			t, ok := d.ExistsPerfect()
			return existsOut(t, ok, "perfect"), nil
		case "loc", "ml", "perf":
			typing, err := verifyTyping()
			if err != nil {
				return "", err
			}
			var ok bool
			switch problem {
			case "loc":
				ok, err = d.IsLocal(typing)
			case "ml":
				ok, err = d.IsMaximalLocal(typing)
			default:
				ok, err = d.IsPerfect(typing)
			}
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%s: %v\n", problem, ok), nil
		}
	case "edtd":
		d := &dxml.EDTDDesign{Type: edtd, Kernel: df.Kernel, AllowTrivialTypes: df.AllowTrivial}
		switch problem {
		case "exists-local":
			t, ok, err := d.ExistsLocal()
			if err != nil {
				return "", err
			}
			return existsOut(t, ok, "local"), nil
		case "exists-ml":
			ts, err := d.MaximalLocalTypings()
			if err != nil {
				return "", err
			}
			if len(ts) == 0 {
				return "no maximal local typing exists\n", nil
			}
			var b strings.Builder
			fmt.Fprintf(&b, "%d maximal local typing(s):\n", len(ts))
			for _, t := range ts {
				b.WriteString(formatTyping(funcs, t))
				b.WriteString("\n")
			}
			return b.String(), nil
		case "exists-perfect":
			t, ok, err := d.ExistsPerfect()
			if err != nil {
				return "", err
			}
			return existsOut(t, ok, "perfect"), nil
		case "loc", "ml", "perf":
			typing, err := verifyTyping()
			if err != nil {
				return "", err
			}
			var ok bool
			switch problem {
			case "loc":
				ok, err = d.IsLocal(typing)
			case "ml":
				ok, err = d.IsMaximalLocal(typing)
			default:
				ok, err = d.IsPerfect(typing)
			}
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%s: %v\n", problem, ok), nil
		}
	}
	return "", fmt.Errorf("unknown problem %q for class %s", problem, df.Class)
}

func runCons(df *DesignFile) (string, error) {
	typing, err := df.typing()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	e, err := dxml.ConsEDTD(df.Kernel, typing, df.Kind)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "cons[%s-EDTD]: yes (always); typeT has %d specialized names\n",
		df.Kind, len(e.SpecializedNames()))
	sres, err := dxml.ConsSDTD(df.Kernel, typing, df.Kind)
	if err != nil {
		return "", err
	}
	if sres.Consistent {
		fmt.Fprintf(&b, "cons[%s-SDTD]: yes\n", df.Kind)
	} else {
		fmt.Fprintf(&b, "cons[%s-SDTD]: no (%s)\n", df.Kind, sres.Reason)
	}
	dres, err := dxml.ConsDTD(df.Kernel, typing, df.Kind)
	if err != nil {
		return "", err
	}
	if dres.Consistent {
		fmt.Fprintf(&b, "cons[%s-DTD]: yes; typeT:\n%s", df.Kind, dres.DTD)
	} else {
		fmt.Fprintf(&b, "cons[%s-DTD]: no (%s)\n", df.Kind, dres.Reason)
	}
	return b.String(), nil
}

// designEDTD resolves the design file's type to an EDTD (lifting DTDs),
// the form both validation modes run on.
func designEDTD(df *DesignFile) (*dxml.EDTD, error) {
	dtd, edtd, err := parseTreeType(df)
	if err != nil {
		return nil, err
	}
	if dtd != nil {
		edtd = dtd.ToEDTD()
	}
	return edtd, nil
}

// validateMachine compiles the design file's type for streaming
// validation.
func validateMachine(df *DesignFile) (*dxml.StreamMachine, error) {
	edtd, err := designEDTD(df)
	if err != nil {
		return nil, err
	}
	return dxml.CompileStream(edtd), nil
}

func runValidate(df *DesignFile, doc string) (string, error) {
	if strings.TrimSpace(doc) == "" {
		return "", fmt.Errorf("validate needs a document argument (or - for stdin)")
	}
	m, err := validateMachine(df)
	if err != nil {
		return "", err
	}
	// XML documents stream; the term syntax parses to a tree first and
	// streams its events through the same machine.
	if strings.HasPrefix(strings.TrimSpace(doc), "<") {
		return verdict(m.ValidateReader(strings.NewReader(doc))), nil
	}
	tree, err := dxml.ParseTree(strings.TrimSpace(doc))
	if err != nil {
		return "", err
	}
	return verdict(m.ValidateTree(tree)), nil
}

// RunValidateStream validates one XML document from r against the design
// file's type by feeding it to the push parser in chunks as they arrive:
// memory stays proportional to the chunk budget plus the document's
// depth, so arbitrarily large documents pipe through stdin. Used by
// `dxml -problem validate <design-file> -`; chunk <= 0 uses a default
// read budget.
func RunValidateStream(df *DesignFile, r io.Reader, chunk int) (string, error) {
	m, err := validateMachine(df)
	if err != nil {
		return "", err
	}
	return verdict(dxml.FeedReader(m.NewFeeder(), r, chunk)), nil
}

// RunValidateDistributed validates a federation over the simulated p2p
// wire: the design file's typing blocks are the peers' local types, and
// the i-th document is the peer document behind the i-th docking point.
// It runs both protocols the paper compares — distributed (each peer
// checks its own document against its local type and ships a verdict)
// and centralized (the kernel peer pulls every fragment in chunk-budget
// frames and validates the extension as one stream) — and, with
// showStats, reports the wire traffic of each, including the bytes a
// mid-transfer rejection saved.
func RunValidateDistributed(df *DesignFile, docs []*dxml.Tree, chunk int, showStats bool) (string, error) {
	if df.Class == "word" {
		return "", fmt.Errorf("distributed validation needs a tree class, not word")
	}
	edtd, err := designEDTD(df)
	if err != nil {
		return "", err
	}
	typing, err := df.typing()
	if err != nil {
		return "", err
	}
	funcs := df.Kernel.Funcs()
	if len(docs) != len(funcs) {
		return "", fmt.Errorf("distributed validation needs %d documents (one per docking point %v), got %d",
			len(funcs), funcs, len(docs))
	}
	build := func() (*dxml.Network, error) {
		n := dxml.NewNetwork(df.Kernel, edtd)
		n.ChunkSize = chunk
		for i, f := range funcs {
			if err := n.AddPeer(f, docs[i], typing[i]); err != nil {
				return nil, err
			}
		}
		return n, nil
	}
	var b strings.Builder
	report := func(name string, run func(n *dxml.Network) (bool, error)) error {
		n, err := build()
		if err != nil {
			return err
		}
		ok, err := run(n)
		if err != nil {
			return err
		}
		v := "valid"
		if !ok {
			v = "invalid"
		}
		fmt.Fprintf(&b, "%s: %s\n", name, v)
		if showStats {
			writeWireLine(&b, n.Stats.Totals())
		}
		return nil
	}
	if err := report("distributed", (*dxml.Network).ValidateDistributed); err != nil {
		return "", err
	}
	if err := report("centralized", (*dxml.Network).ValidateCentralized); err != nil {
		return "", err
	}
	return b.String(), nil
}

// parseDocArg parses one peer document: XML if it looks like markup,
// otherwise the paper's term syntax.
func parseDocArg(src string) (*dxml.Tree, error) {
	if strings.HasPrefix(strings.TrimSpace(src), "<") {
		return dxml.ParseXML(src)
	}
	return dxml.ParseTree(strings.TrimSpace(src))
}

func verdict(err error) string {
	if err != nil {
		return fmt.Sprintf("invalid: %v\n", err)
	}
	return "valid\n"
}
