package main

import (
	"os"
	"strings"
	"testing"

	"dxml"
)

func load(t *testing.T, name string) *DesignFile {
	t.Helper()
	src, err := os.ReadFile("testdata/" + name)
	if err != nil {
		t.Fatal(err)
	}
	df, err := ParseDesignFile(string(src))
	if err != nil {
		t.Fatal(err)
	}
	return df
}

func TestEurostatDesignFile(t *testing.T) {
	df := load(t, "eurostat.design")
	out, err := Run(df, "exists-perfect", "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "perfect typing exists") || !strings.Contains(out, "nationalIndex*") {
		t.Errorf("unexpected output:\n%s", out)
	}
	for _, problem := range []string{"loc", "ml", "perf"} {
		out, err = Run(df, problem, "")
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "true") {
			t.Errorf("%s should verify Figure 4's typing, got %q", problem, out)
		}
	}
	out, err = Run(df, "cons", "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cons[nRE-DTD]: yes") {
		t.Errorf("cons output:\n%s", out)
	}
	out, err = Run(df, "validate",
		"eurostat(averages(Good index(value year)) nationalIndex(country Good value year))")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "valid") || strings.Contains(out, "invalid") {
		t.Errorf("validate output: %q", out)
	}
	out, _ = Run(df, "validate", "eurostat(nationalIndex(country))")
	if !strings.Contains(out, "invalid") {
		t.Errorf("validate should reject, got %q", out)
	}
}

// TestValidateStreaming exercises the streaming validate path: XML via
// Run (string) and via RunValidateStream (reader, the stdin path).
func TestValidateStreaming(t *testing.T) {
	df := load(t, "eurostat.design")
	xmlDoc := `<eurostat><averages><Good/><index><value/><year/></index></averages>` +
		`<nationalIndex><country/><Good/><value/><year/></nationalIndex></eurostat>`
	out, err := Run(df, "validate", xmlDoc)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "invalid") {
		t.Errorf("valid XML document rejected: %q", out)
	}
	out, err = RunValidateStream(df, strings.NewReader(xmlDoc), 0)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "invalid") {
		t.Errorf("streamed document rejected: %q", out)
	}
	out, err = RunValidateStream(df, strings.NewReader("<eurostat><zz/></eurostat>"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "invalid") {
		t.Errorf("invalid streamed document accepted: %q", out)
	}
	out, err = RunValidateStream(df, strings.NewReader(""), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "invalid") {
		t.Errorf("empty stream should be invalid, got %q", out)
	}
}

func TestExample3DesignFile(t *testing.T) {
	df := load(t, "example3.design")
	out, err := Run(df, "exists-perfect", "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "perfect typing exists") {
		t.Errorf("output:\n%s", out)
	}
	out, err = Run(df, "perf", "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "perfect: true") {
		t.Errorf("output: %q", out)
	}
}

func TestTauPrimePrimeDesignFile(t *testing.T) {
	df := load(t, "tauprimeprime.design")
	out, err := Run(df, "exists-perfect", "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no perfect typing") {
		t.Errorf("output:\n%s", out)
	}
	out, err = Run(df, "exists-ml", "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2 maximal local typing(s)") {
		t.Errorf("output:\n%s", out)
	}
}

func TestWordProblemsViaCLI(t *testing.T) {
	df := load(t, "example3.design")
	for _, c := range []struct {
		problem, want string
	}{
		{"exists-local", "local typing exists"},
		{"exists-ml", "1 maximal local typing(s)"},
		{"loc", "local: true"},
		{"ml", "maximal local: true"},
		{"perf", "perfect: true"},
	} {
		out, err := Run(df, c.problem, "")
		if err != nil {
			t.Fatalf("%s: %v", c.problem, err)
		}
		if !strings.Contains(out, c.want) {
			t.Errorf("%s: output %q does not contain %q", c.problem, out, c.want)
		}
	}
	if _, err := Run(df, "nonsense", ""); err == nil {
		t.Error("unknown problem should fail")
	}
}

func TestQuasiPerfectViaCLI(t *testing.T) {
	df, err := ParseDesignFile(`
class word
kernelstring a f1
type a b* | d
`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(df, "quasi-perfect", "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "quasi-perfect typing exists") ||
		!strings.Contains(out, "not local") {
		t.Errorf("output: %q", out)
	}
}

func TestWordNoLocalViaCLI(t *testing.T) {
	df, err := ParseDesignFile(`
class word
kernelstring f1 f2
type a b | b a
`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(df, "exists-local", "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no local typing") {
		t.Errorf("output: %q", out)
	}
	out, err = Run(df, "exists-ml", "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no maximal local typing") {
		t.Errorf("output: %q", out)
	}
}

func TestSDTDClassViaCLI(t *testing.T) {
	df, err := ParseDesignFile(`
class sdtd
kind nRE
kernel s(a(f1) b(a(f2)))
type:
  root s
  s -> a1, b1
  a1 : a -> x*
  b1 : b -> a2
  a2 : a -> y?
end
`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(df, "exists-perfect", "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "perfect typing exists") {
		t.Errorf("output: %q", out)
	}
}

func TestParseDesignFileErrors(t *testing.T) {
	cases := []string{
		"",                                   // no type
		"class word\ntype a b",               // no kernelstring
		"kernel s(f1)\ntype:\nroot s",        // unterminated block
		"kind zz\nkernel s(f1)\ntype s -> a", // bad kind
		"garbage line",
	}
	for _, src := range cases {
		if _, err := ParseDesignFile(src); err == nil {
			t.Errorf("ParseDesignFile(%q) should fail", src)
		}
	}
}

// TestValidateDistributedCLI runs both p2p protocols from the design
// file's typing blocks and checks verdicts and the -stats traffic report,
// including bytes saved by mid-transfer rejection.
func TestValidateDistributedCLI(t *testing.T) {
	df := load(t, "eurostat.design")
	valid := []string{
		"root1(averages(Good index(value year)))",
		"root2(nationalIndex(country Good value year))",
		"root3(nationalIndex(country Good index(value year)))",
		"root4",
	}
	docs := make([]*dxml.Tree, len(valid))
	for i, src := range valid {
		docs[i] = dxml.MustParseTree(src)
	}
	out, err := RunValidateDistributed(df, docs, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "distributed: valid") || !strings.Contains(out, "centralized: valid") {
		t.Errorf("valid federation output:\n%s", out)
	}
	if !strings.Contains(out, "messages") || !strings.Contains(out, "bytes") {
		t.Errorf("-stats output missing traffic report:\n%s", out)
	}
	if strings.Contains(out, "saved") {
		t.Errorf("valid federation should save nothing:\n%s", out)
	}

	// An invalid document at f1 with a fat f3: the centralized kernel
	// peer rejects mid-transfer and never pulls the rest.
	fat := dxml.MustParseTree("root4")
	for i := 0; i < 200; i++ {
		fat.Children = append(fat.Children,
			dxml.MustParseTree("nationalIndex(country Good value year)"))
	}
	bad := []*dxml.Tree{
		docs[0],
		dxml.MustParseTree("root2(nationalIndex(country))"),
		docs[2],
		fat,
	}
	out, err = RunValidateDistributed(df, bad, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "distributed: invalid") || !strings.Contains(out, "centralized: invalid") {
		t.Errorf("invalid federation output:\n%s", out)
	}
	if !strings.Contains(out, "saved by mid-transfer rejection") {
		t.Errorf("expected bytes saved in stats:\n%s", out)
	}

	// Wrong document count is a usage error.
	if _, err := RunValidateDistributed(df, docs[:2], 0, false); err == nil {
		t.Error("mismatched document count should fail")
	}
}
