package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dxml"
)

// startEurostatServe hosts the Figure 1 federation's documents from
// temp files on an ephemeral loopback port — the `dxml serve` half of
// the walkthrough, driven in process.
func startEurostatServe(t *testing.T, docs []string) (*DesignFile, *serveInstance) {
	t.Helper()
	df := load(t, "eurostat.design")
	dir := t.TempDir()
	funcs := df.Kernel.Funcs()
	if len(docs) != len(funcs) {
		t.Fatalf("need %d documents, got %d", len(funcs), len(docs))
	}
	assigns := make([]string, len(funcs))
	for i, fn := range funcs {
		path := filepath.Join(dir, fn+".term")
		if err := os.WriteFile(path, []byte(docs[i]), 0o600); err != nil {
			t.Fatal(err)
		}
		assigns[i] = fn + "=" + path
	}
	srv, err := startServe(df, assigns, "127.0.0.1:0", dxml.DefaultWindow, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(srv.funcs) != len(funcs) {
		t.Fatalf("hosted %v, want all of %v", srv.funcs, funcs)
	}
	t.Cleanup(func() { srv.host.Close() })
	return df, srv
}

var eurostatValidDocs = []string{
	"root1(averages(Good index(value year)))",
	"root2(nationalIndex(country Good value year))",
	"root3(nationalIndex(country Good index(value year)))",
	"root4",
}

// TestServeJoinLoopback is the CLI half of the acceptance criterion:
// `dxml join` against a loopback `dxml serve` prints the same verdicts
// and the same per-protocol wire report as the in-process run on the
// same documents.
func TestServeJoinLoopback(t *testing.T) {
	df, srv := startEurostatServe(t, eurostatValidDocs)
	out, err := RunJoin(df, srv.host.Addr().String(), nil, 16, dxml.DefaultWindow, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "distributed: valid") || !strings.Contains(out, "centralized: valid") {
		t.Fatalf("join output:\n%s", out)
	}
	// The in-process reference on the same corpus must report the exact
	// same traffic, line for line.
	docs := make([]*dxml.Tree, len(eurostatValidDocs))
	for i, src := range eurostatValidDocs {
		docs[i] = dxml.MustParseTree(src)
	}
	want, err := RunValidateDistributed(df, docs, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	if out != want {
		t.Errorf("TCP join and in-process reports differ:\n--- join ---\n%s--- in-process ---\n%s", out, want)
	}
}

// TestServeJoinRejection: an invalid hosted document is rejected over
// the wire mid-transfer, with the saved bytes reported.
func TestServeJoinRejection(t *testing.T) {
	bad := make([]string, len(eurostatValidDocs))
	copy(bad, eurostatValidDocs)
	bad[1] = "root2(nationalIndex(country))"
	// A fat valid document behind the failure: its bytes must be saved.
	var fat strings.Builder
	fat.WriteString("root4(")
	for i := 0; i < 200; i++ {
		fat.WriteString("nationalIndex(country Good value year) ")
	}
	fat.WriteString(")")
	bad[3] = fat.String()
	df, srv := startEurostatServe(t, bad)
	out, err := RunJoin(df, srv.host.Addr().String(), nil, 16, dxml.DefaultWindow, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "distributed: invalid") || !strings.Contains(out, "centralized: invalid") {
		t.Fatalf("join output:\n%s", out)
	}
	if !strings.Contains(out, "saved by mid-transfer rejection") {
		t.Fatalf("expected bytes saved over the wire:\n%s", out)
	}
}

// TestJoinPeerFlagRouting splits the federation across two hosts: -peer
// mappings override -connect per docking point.
func TestJoinPeerFlagRouting(t *testing.T) {
	df, srvA := startEurostatServe(t, eurostatValidDocs)
	_, srvB := startEurostatServe(t, eurostatValidDocs)
	out, err := RunJoin(df, srvA.host.Addr().String(),
		map[string]string{"f2": srvB.host.Addr().String()}, 0, dxml.DefaultWindow, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "distributed: valid") || !strings.Contains(out, "centralized: valid") {
		t.Fatalf("split-host join output:\n%s", out)
	}
}

func TestJoinErrors(t *testing.T) {
	df, srv := startEurostatServe(t, eurostatValidDocs)
	addr := srv.host.Addr().String()

	// A join running a different design is refused at the hello.
	other, err := ParseDesignFile(`
class dtd
kernel eurostat(f0 f1)
type:
  root eurostat
  eurostat -> averages, nationalIndex*
end
typing f0:
  root root1
  root1 -> averages
end
typing f1:
  root root2
  root2 -> nationalIndex*
end
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunJoin(other, addr, nil, 0, dxml.DefaultWindow, false); err == nil ||
		!strings.Contains(err.Error(), "digest mismatch") {
		t.Errorf("mismatched design should fail the hello, got %v", err)
	}

	// Missing addresses and bad chunk budgets fail fast.
	if _, err := RunJoin(df, "", nil, 0, dxml.DefaultWindow, false); err == nil {
		t.Error("join with no addresses should fail")
	}
	if _, err := RunJoin(df, addr, nil, -5, dxml.DefaultWindow, false); err == nil ||
		!strings.Contains(err.Error(), "-chunk") {
		t.Errorf("-chunk -5 should be rejected, got %v", err)
	}
}

// TestServeChaosDrill drives `dxml join` against a `dxml serve -chaos`
// host: the fault injector dooms roughly half the accepted sessions, so
// each attempt must either report the true verdicts or fail with a
// clean error — and with the injector's acceptance odds, a bounded
// number of retries reaches a fault-free verdict.
func TestServeChaosDrill(t *testing.T) {
	df := load(t, "eurostat.design")
	dir := t.TempDir()
	funcs := df.Kernel.Funcs()
	assigns := make([]string, len(funcs))
	for i, fn := range funcs {
		path := filepath.Join(dir, fn+".term")
		if err := os.WriteFile(path, []byte(eurostatValidDocs[i]), 0o600); err != nil {
			t.Fatal(err)
		}
		assigns[i] = fn + "=" + path
	}
	srv, err := startServe(df, assigns, "127.0.0.1:0", dxml.DefaultWindow, 99, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.host.Close()
	for attempt := 0; attempt < 12; attempt++ {
		out, err := RunJoin(df, srv.host.Addr().String(), nil, 16, dxml.DefaultWindow, false)
		if err != nil {
			continue // a doomed session: clean error, try again
		}
		if !strings.Contains(out, "distributed: valid") || !strings.Contains(out, "centralized: valid") {
			t.Fatalf("chaos must never corrupt a verdict:\n%s", out)
		}
		return
	}
	t.Fatal("no join attempt survived 12 tries against the chaos listener")
}

func TestServeErrors(t *testing.T) {
	df := load(t, "eurostat.design")
	if _, err := serveNetwork(df, []string{"nonsense"}); err == nil {
		t.Error("malformed assignment should fail")
	}
	if _, err := serveNetwork(df, []string{"f9=/dev/null"}); err == nil {
		t.Error("unknown docking point should fail")
	}
	if _, err := serveNetwork(df, nil); err == nil {
		t.Error("empty serve should fail")
	}
}

// TestValidateChunkFlag pins the CLI input-validation fix: budgets
// below -1 were silently treated as unchunked; now they error.
func TestValidateChunkFlag(t *testing.T) {
	for _, ok := range []int{-1, 0, 1, 16, 4096} {
		if err := validateChunkFlag(ok); err != nil {
			t.Errorf("chunk %d should be accepted: %v", ok, err)
		}
	}
	for _, bad := range []int{-2, -5, -4096} {
		if err := validateChunkFlag(bad); err == nil {
			t.Errorf("chunk %d should be rejected", bad)
		}
	}
}

// TestValidateWindowFlag: a credit window is a positive chunk count;
// zero and negatives are refused at flag time with the typed sentinel,
// never passed on to stall a transfer before its first chunk.
func TestValidateWindowFlag(t *testing.T) {
	for _, ok := range []int{1, 2, dxml.DefaultWindow, 4096} {
		if err := validateWindowFlag(ok); err != nil {
			t.Errorf("window %d should be accepted: %v", ok, err)
		}
	}
	for _, bad := range []int{0, -1, -32} {
		err := validateWindowFlag(bad)
		if err == nil {
			t.Errorf("window %d should be rejected", bad)
			continue
		}
		if !errors.Is(err, dxml.ErrInvalidWindow) {
			t.Errorf("window %d: rejection is not the typed sentinel: %v", bad, err)
		}
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: JoinLive writes from its
// own goroutine while the test polls String.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestServeWatchJoinLive is the CLI walkthrough of the live mode: a
// serve watching its document files re-serves a file change as subtree
// edits, and a joined -watch kernel peer prints the verdict transition
// those edits cause — then shuts down cleanly when its context is
// canceled (the SIGINT path).
func TestServeWatchJoinLive(t *testing.T) {
	df, srv := startEurostatServe(t, eurostatValidDocs)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv.watch(ctx, 5*time.Millisecond, func(string, ...any) {})

	buf := &syncBuffer{}
	done := make(chan error, 1)
	go func() { done <- JoinLive(ctx, df, srv.host.Addr().String(), nil, 0, dxml.DefaultWindow, 8, true, buf) }()

	// Wait for the subscription to come up, then break f1's document
	// on disk; the watcher should re-serve it as edits and the join
	// should report the transition to invalid.
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(buf.String(), "initial verdict valid") {
		if time.Now().After(deadline) {
			t.Fatalf("join never reported the initial verdict:\n%s", buf.String())
		}
		time.Sleep(time.Millisecond)
	}
	// Bump mtime into the future so the 5ms poller can't miss it on
	// coarse filesystem clocks.
	path := srv.files["f1"]
	if err := os.WriteFile(path, []byte("root2(nationalIndex(country))"), 0o600); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	for !strings.Contains(buf.String(), "transition to invalid") {
		if time.Now().After(deadline) {
			t.Fatalf("join never saw the verdict transition:\n%s", buf.String())
		}
		time.Sleep(time.Millisecond)
	}
	if !strings.Contains(buf.String(), "revalidated") {
		t.Fatalf("-stats recheck line missing:\n%s", buf.String())
	}
	// The SIGINT path: canceling the context ends JoinLive cleanly.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("JoinLive: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("JoinLive did not shut down on cancel")
	}
	if !strings.Contains(buf.String(), "closing sessions") {
		t.Fatalf("shutdown line missing:\n%s", buf.String())
	}
}
