package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"dxml"
)

// runInspect implements `dxml inspect`: decode a flight capture file
// (capture.dxfr) or a postmortem bundle (postmortem-*.json) and print
// the frame timeline, the per-stream flow summary, and the credit
// window occupancy each transfer reached.
func runInspect(args []string) {
	fs := flag.NewFlagSet("dxml inspect", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dxml inspect <capture.dxfr | postmortem.json>")
		fmt.Fprintln(os.Stderr, "decodes a flight recording: frame timeline, per-stream flow, window occupancy")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	out, err := RunInspect(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	fmt.Print(out)
}

// loadRecords reads a flight artifact by content, not extension: a
// leading '{' is a postmortem bundle (JSON with the capture embedded),
// anything else must carry the capture magic. The bundle, when the
// artifact is one, rides along for its header fields.
func loadRecords(path string) ([]dxml.FlightRecord, *dxml.FlightBundle, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if len(b) > 0 && b[0] == '{' {
		bundle, err := dxml.ReadBundle(path)
		if err != nil {
			return nil, nil, err
		}
		recs, err := bundle.Records()
		if err != nil {
			return nil, nil, err
		}
		return recs, bundle, nil
	}
	recs, err := dxml.ReadCapture(bytes.NewReader(b))
	if err != nil {
		return nil, nil, err
	}
	return recs, nil, nil
}

// streamFlow accumulates one transfer's life from its frames: the
// docking point it carries, chunk volume, completion, and how full its
// credit window ran (chunks in flight beyond the last cumulative ack).
type streamFlow struct {
	sess       uint64
	id         uint32
	fn         string
	chunks     int
	bytes      int
	acked      uint64
	peakInUse  int
	win        uint32
	ended      bool
	rejected   bool
	firstIndex int
}

// RunInspect renders a flight artifact as text; split from runInspect
// so tests can diff the report against a scripted session.
func RunInspect(path string) (string, error) {
	recs, bundle, err := loadRecords(path)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	if bundle != nil {
		fmt.Fprintf(&b, "postmortem bundle: kind=%s frames=%d spans=%d\n", bundle.Kind, bundle.Frames, len(bundle.Spans))
		if bundle.Err != "" {
			fmt.Fprintf(&b, "  err: %s\n", bundle.Err)
		}
		if m := bundle.Metrics; m != nil {
			fmt.Fprintf(&b, "  metrics: %d counters, %d histograms\n", len(m.Counters), len(m.Hists))
		}
	} else {
		fmt.Fprintf(&b, "capture: %d frames\n", len(recs))
	}
	if len(recs) == 0 {
		return b.String(), nil
	}

	flows := map[[2]uint64]*streamFlow{}
	flow := func(sess uint64, id uint32, idx int) *streamFlow {
		k := [2]uint64{sess, uint64(id)}
		f := flows[k]
		if f == nil {
			f = &streamFlow{sess: sess, id: id, firstIndex: idx}
			flows[k] = f
		}
		return f
	}

	b.WriteString("timeline:\n")
	epoch := recs[0].MonoNs
	for i, r := range recs {
		ms := float64(r.MonoNs-epoch) / 1e6
		fmt.Fprintf(&b, "  t+%9.3fms %-3s %016x", ms, r.Dir.String(), r.Sess)
		info, derr := dxml.DecodeFrame(r.Wire)
		if derr != nil {
			fmt.Fprintf(&b, " undecodable len=%d (%v)\n", r.Orig, derr)
			continue
		}
		fmt.Fprintf(&b, " %-14s len=%d", info.Type, r.Orig)
		switch info.Type {
		case "verdict_req", "open", "subscribe", "resume":
			fmt.Fprintf(&b, " fn=%s", info.Str)
		case "verdict":
			fmt.Fprintf(&b, " %s", verdictWord(info.Flag == 1))
		case "begin":
			fmt.Fprintf(&b, " size=%d win=%d", info.Size, info.Win)
		case "ack":
			fmt.Fprintf(&b, " acked=%d", info.Ver)
		case "reject", "stream_err", "error", "refuse":
			if info.Str != "" {
				fmt.Fprintf(&b, " msg=%q", info.Str)
			}
		}
		if info.Truncated {
			b.WriteString(" (ring-truncated)")
		}
		b.WriteString("\n")

		// Flow accounting: streams are born by open, fed by chunks,
		// drained by cumulative acks, and closed by end or reject.
		switch info.Type {
		case "open":
			flow(r.Sess, info.Stream, i).fn = info.Str
		case "begin":
			flow(r.Sess, info.Stream, i).win = info.Win
		case "chunk":
			f := flow(r.Sess, info.Stream, i)
			f.chunks++
			f.bytes += len(info.Data)
			if info.Truncated {
				// The ring kept only a prefix; size the chunk by its
				// wire length instead (header + stream id overhead).
				f.bytes += info.WireLen - len(info.Data) - 9
			}
			if inUse := f.chunks - int(f.acked); inUse > f.peakInUse {
				f.peakInUse = inUse
			}
		case "ack":
			f := flow(r.Sess, info.Stream, i)
			if info.Ver > f.acked {
				f.acked = info.Ver
			}
		case "end":
			flow(r.Sess, info.Stream, i).ended = true
		case "reject":
			flow(r.Sess, info.Stream, i).rejected = true
		}
	}

	if len(flows) > 0 {
		ordered := make([]*streamFlow, 0, len(flows))
		for _, f := range flows {
			ordered = append(ordered, f)
		}
		sort.Slice(ordered, func(i, j int) bool { return ordered[i].firstIndex < ordered[j].firstIndex })
		b.WriteString("streams:\n")
		for _, f := range ordered {
			state := "open"
			switch {
			case f.rejected:
				state = "rejected"
			case f.ended:
				state = "complete"
			}
			fmt.Fprintf(&b, "  sess %016x stream %d", f.sess, f.id)
			if f.fn != "" {
				fmt.Fprintf(&b, " (%s)", f.fn)
			}
			fmt.Fprintf(&b, ": %d chunks, %d bytes, %s", f.chunks, f.bytes, state)
			if f.win > 0 {
				fmt.Fprintf(&b, ", peak window %d/%d", f.peakInUse, f.win)
			}
			b.WriteString("\n")
		}
	}
	return b.String(), nil
}
