package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dxml"
)

// runReplay implements `dxml replay`: re-run a captured session's
// validation offline. The capture's chunk frames carry the fragments
// exactly as they crossed the wire, so the fragments are reassembled,
// re-fed through the same validators the live run used, and the
// recomputed verdicts are checked against the verdict frames the
// capture recorded. Output matches `dxml join` line for line; any
// divergence between the replay and the recording exits nonzero.
func runReplay(args []string) {
	fs := flag.NewFlagSet("dxml replay", flag.ExitOnError)
	design := fs.String("design", "", "design file the capture was recorded against (required)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dxml replay -design <design-file> <capture.dxfr | postmortem.json>")
		fmt.Fprintln(os.Stderr, "re-validates a captured session offline and checks it against the recorded verdicts")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if *design == "" || fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*design)
	if err != nil {
		fatal(err)
	}
	df, err := ParseDesignFile(string(src))
	if err != nil {
		fatal(err)
	}
	recs, _, err := loadRecords(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	out, diverged, err := RunReplay(df, recs)
	if err != nil {
		fatal(err)
	}
	fmt.Print(out)
	if len(diverged) > 0 {
		for _, d := range diverged {
			fmt.Fprintln(os.Stderr, "dxml: replay divergence:", d)
		}
		os.Exit(1)
	}
}

// replaySession is a captured session's validation-relevant state,
// folded out of the frame stream: which docking point each verdict
// request and each transfer carried, the verdict flags that came back,
// and the reassembled fragment bytes.
type replaySession struct {
	verdicts map[string]bool             // fn -> captured verdict flag
	docs     map[string]*strings.Builder // fn -> reassembled fragment (complete transfers only)
	rejected bool                        // a mid-transfer rejection was recorded
}

// foldReplay walks the capture once and groups it by session/stream.
// Ring-truncated chunk frames poison their transfer (the payload bytes
// are gone), so only full captures replay fragments; verdict frames are
// tiny and always survive.
func foldReplay(recs []dxml.FlightRecord) (*replaySession, error) {
	s := &replaySession{
		verdicts: map[string]bool{},
		docs:     map[string]*strings.Builder{},
	}
	type key struct {
		sess uint64
		id   uint32
	}
	reqFn := map[key]string{}  // verdict_req id -> fn
	openFn := map[key]string{} // open stream id -> fn
	bufs := map[key]*strings.Builder{}
	poisoned := map[key]bool{}
	for _, r := range recs {
		info, err := dxml.DecodeFrame(r.Wire)
		if err != nil {
			return nil, fmt.Errorf("replay: undecodable frame: %w", err)
		}
		k := key{r.Sess, info.Stream}
		switch info.Type {
		case "verdict_req":
			reqFn[k] = info.Str
		case "verdict":
			if fn, ok := reqFn[k]; ok {
				s.verdicts[fn] = info.Flag == 1
			}
		case "open":
			openFn[k] = info.Str
			bufs[k] = &strings.Builder{}
		case "chunk":
			if b := bufs[k]; b != nil {
				if info.Truncated {
					poisoned[k] = true
				} else {
					b.Write(info.Data)
				}
			}
		case "end":
			if fn, ok := openFn[k]; ok && !poisoned[k] {
				s.docs[fn] = bufs[k]
			}
		case "reject":
			if _, ok := openFn[k]; ok {
				s.rejected = true
			}
		}
	}
	return s, nil
}

// RunReplay re-validates a captured session offline. The distributed
// verdict is recomputed by validating each reassembled fragment against
// its docking point's local type — the exact check the remote peer ran
// — and each recomputed verdict is diffed against the captured verdict
// frame. The centralized verdict is recomputed by rebuilding the
// federation in process from the reassembled fragments and pulling them
// through the kernel validator again. The output matches `dxml join`;
// the returned divergences name every disagreement between replay and
// recording.
func RunReplay(df *DesignFile, recs []dxml.FlightRecord) (string, []string, error) {
	if df.Class == "word" {
		return "", nil, fmt.Errorf("replay needs a tree class, not word")
	}
	edtd, err := designEDTD(df)
	if err != nil {
		return "", nil, err
	}
	typing, err := df.typing()
	if err != nil {
		return "", nil, err
	}
	s, err := foldReplay(recs)
	if err != nil {
		return "", nil, err
	}
	funcs := df.Kernel.Funcs()

	var diverged []string
	distributed := true
	complete := true
	trees := map[string]*dxml.Tree{}
	for i, fn := range funcs {
		doc, ok := s.docs[fn]
		if !ok {
			// No completed transfer for this docking point: fall back to
			// the captured verdict for the distributed line; the
			// centralized protocol cannot be re-fed.
			complete = false
			if v, seen := s.verdicts[fn]; seen {
				distributed = distributed && v
			} else {
				return "", nil, fmt.Errorf("replay: no verdict or fragment captured for docking point %s", fn)
			}
			continue
		}
		m := dxml.CompileStream(typing[i])
		valid := m.ValidateReader(strings.NewReader(doc.String())) == nil
		distributed = distributed && valid
		if captured, seen := s.verdicts[fn]; seen && captured != valid {
			diverged = append(diverged, fmt.Sprintf("%s: captured verdict %s, replay computed %s",
				fn, verdictWord(captured), verdictWord(valid)))
		}
		tree, err := dxml.ParseXML(doc.String())
		if err != nil {
			return "", nil, fmt.Errorf("replay: %s: reassembled fragment does not parse: %w", fn, err)
		}
		trees[fn] = tree
	}

	var b strings.Builder
	fmt.Fprintf(&b, "distributed: %s\n", verdictWord(distributed))
	switch {
	case !complete || s.rejected:
		// The live centralized run never finished pulling fragments —
		// either the recording caught a mid-transfer rejection or the
		// session died first. Both verdicts are "invalid" on the live
		// side; nothing completes offline either.
		fmt.Fprintf(&b, "centralized: %s\n", verdictWord(false))
	default:
		n := dxml.NewNetwork(df.Kernel, edtd)
		for i, fn := range funcs {
			if err := n.AddPeer(fn, trees[fn], typing[i]); err != nil {
				return "", nil, err
			}
		}
		ok, err := n.ValidateCentralized()
		if err != nil {
			return "", nil, err
		}
		fmt.Fprintf(&b, "centralized: %s\n", verdictWord(ok))
	}
	return b.String(), diverged, nil
}
