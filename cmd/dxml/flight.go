package main

import (
	"fmt"
	"os"
	"path/filepath"

	"dxml"
)

// captureFileName is the full binary capture the -capture flag writes
// under its directory; postmortem bundles land beside it.
const captureFileName = "capture.dxfr"

// captureRig wires the -capture flag into a running command: a flight
// recorder whose ring backs postmortem bundles, a full binary capture
// file under the chosen directory, and a dumper that writes one bundle
// per typed wire failure. Every method is safe on the nil rig, so call
// sites stay unconditional.
type captureRig struct {
	rec  *dxml.FlightRecorder
	dump *dxml.FlightDumper
	path string
}

// newCaptureRig builds the rig under dir (empty dir: no rig — the
// nil return is the no-op form). The collector c, when non-nil, has
// its trace ring and metrics snapshotted into every bundle.
func newCaptureRig(dir string, c *dxml.Obs) (*captureRig, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	rec := dxml.NewFlightRecorder(dxml.FlightOptions{})
	path := filepath.Join(dir, captureFileName)
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := rec.CaptureTo(f); err != nil {
		f.Close()
		return nil, err
	}
	return &captureRig{
		rec:  rec,
		dump: &dxml.FlightDumper{Dir: dir, Rec: rec, Obs: c},
		path: path,
	}, nil
}

// tap is the rig's transport tap, nil (the transports' no-op) when the
// rig itself is nil — returning the interface here keeps a typed-nil
// recorder out of Network.Tap.
func (r *captureRig) tap() dxml.TransportTap {
	if r == nil {
		return nil
	}
	return r.rec
}

// onError writes a postmortem bundle for a typed wire failure and says
// where it landed. Safe concurrently and on the nil rig, so it plugs
// straight into OnWireError callbacks and the chaos listener's fault
// hook.
func (r *captureRig) onError(err error) {
	if r == nil {
		return
	}
	path, derr := r.dump.Dump(err)
	if derr != nil {
		fmt.Fprintln(os.Stderr, "dxml: postmortem:", derr)
		return
	}
	if path != "" {
		fmt.Fprintf(os.Stderr, "dxml: %s failure: wrote postmortem %s\n", dxml.ClassifyFailure(err), path)
	}
}

// close flushes and closes the capture file. Call it on every exit
// path that saw traffic; buffered records are lost otherwise.
func (r *captureRig) close() {
	if r == nil {
		return
	}
	if err := r.rec.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "dxml: capture:", err)
	}
}
