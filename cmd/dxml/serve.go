package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"

	"dxml"
)

// runServe implements `dxml serve`: host resource peers from a design
// file on a TCP socket, so remote kernel peers can join and validate
// the federation over the real wire.
func runServe(args []string) {
	fs := flag.NewFlagSet("dxml serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:9400", "TCP address to listen on (use :0 for an ephemeral port)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dxml serve [-listen addr] <design-file> <fn=document>...")
		fmt.Fprintln(os.Stderr, "hosts the documents behind the named docking points; a host may serve")
		fmt.Fprintln(os.Stderr, "any subset of the design's functions (run one serve per site)")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() < 2 {
		fs.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	df, err := ParseDesignFile(string(src))
	if err != nil {
		fatal(err)
	}
	host, funcs, err := startServe(df, fs.Args()[1:], *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dxml: serving %s on %s\n", strings.Join(funcs, ","), host.Addr())
	select {} // serve until killed
}

// startServe builds the hosting network from fn=docfile assignments and
// starts serving it; split from runServe so tests can drive a loopback
// federation in process.
func startServe(df *DesignFile, assigns []string, listen string) (*dxml.PeerHost, []string, error) {
	n, funcs, err := serveNetwork(df, assigns)
	if err != nil {
		return nil, nil, err
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, nil, err
	}
	return n.ServeTCP(ln), funcs, nil
}

// serveNetwork attaches one peer per fn=docfile assignment, typed by
// the design file's typing block for that function.
func serveNetwork(df *DesignFile, assigns []string) (*dxml.Network, []string, error) {
	if df.Class == "word" {
		return nil, nil, fmt.Errorf("serve needs a tree class, not word")
	}
	edtd, err := designEDTD(df)
	if err != nil {
		return nil, nil, err
	}
	typing, err := df.typing()
	if err != nil {
		return nil, nil, err
	}
	funcs := df.Kernel.Funcs()
	n := dxml.NewNetwork(df.Kernel, edtd)
	var hosted []string
	for _, a := range assigns {
		fn, path, ok := strings.Cut(a, "=")
		if !ok {
			return nil, nil, fmt.Errorf("assignment %q: want fn=documentfile", a)
		}
		i := -1
		for j, f := range funcs {
			if f == fn {
				i = j
				break
			}
		}
		if i < 0 {
			return nil, nil, fmt.Errorf("design has no docking point %s (functions: %v)", fn, funcs)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		doc, err := parseDocArg(string(b))
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		if err := n.AddPeer(fn, doc, typing[i]); err != nil {
			return nil, nil, err
		}
		hosted = append(hosted, fn)
	}
	if len(hosted) == 0 {
		return nil, nil, fmt.Errorf("no documents to serve (pass fn=documentfile assignments)")
	}
	return n, hosted, nil
}

// peerAddrFlags collects repeated -peer fn=addr mappings.
type peerAddrFlags map[string]string

func (p peerAddrFlags) String() string {
	var parts []string
	for fn, addr := range p {
		parts = append(parts, fn+"="+addr)
	}
	return strings.Join(parts, ",")
}

func (p peerAddrFlags) Set(v string) error {
	fn, addr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want fn=host:port, got %q", v)
	}
	p[fn] = addr
	return nil
}

// runJoin implements `dxml join`: connect to the hosts serving a
// design's docking points, run both validation protocols over the wire,
// and print verdicts (and, with -stats, the traffic of each).
func runJoin(args []string) {
	fs := flag.NewFlagSet("dxml join", flag.ExitOnError)
	connect := fs.String("connect", "", "host address serving every docking point not mapped by -peer")
	peers := peerAddrFlags{}
	fs.Var(peers, "peer", "fn=host:port mapping for one docking point (repeatable)")
	stats := fs.Bool("stats", false, "print wire traffic (messages, frames, bytes, bytes saved)")
	chunk := fs.Int("chunk", 0, "fragment frame budget in bytes (0 = default 4096; -chunk -1 = unchunked, the only valid negative)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dxml join [-connect addr] [-peer fn=addr]... [-stats] [-chunk N] <design-file>")
		fmt.Fprintln(os.Stderr, "joins a served federation as the kernel peer and validates it over TCP")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	df, err := ParseDesignFile(string(src))
	if err != nil {
		fatal(err)
	}
	out, err := RunJoin(df, *connect, peers, *chunk, *stats)
	if err != nil {
		fatal(err)
	}
	fmt.Print(out)
}

// RunJoin dials the federation and runs both protocols the paper
// compares over the TCP wire, reporting verdicts and per-protocol
// traffic. The session hello carries the design digest, so joining a
// host that serves a different design fails before any fragment moves.
func RunJoin(df *DesignFile, connect string, peers map[string]string, chunk int, showStats bool) (string, error) {
	if err := validateChunkFlag(chunk); err != nil {
		return "", err
	}
	if df.Class == "word" {
		return "", fmt.Errorf("join needs a tree class, not word")
	}
	edtd, err := designEDTD(df)
	if err != nil {
		return "", err
	}
	n := dxml.NewNetwork(df.Kernel, edtd)
	n.ChunkSize = chunk
	addrs := map[string]string{}
	for _, fn := range df.Kernel.Funcs() {
		switch {
		case peers[fn] != "":
			addrs[fn] = peers[fn]
		case connect != "":
			addrs[fn] = connect
		default:
			return "", fmt.Errorf("no host address for docking point %s (use -connect or -peer %s=host:port)", fn, fn)
		}
	}
	sess, err := n.DialTCP(addrs)
	if err != nil {
		return "", err
	}
	defer sess.Close()
	n.Transport = sess

	var b strings.Builder
	report := func(name string, run func() (bool, error)) error {
		pre := n.Stats.Totals()
		ok, err := run()
		if err != nil {
			return err
		}
		v := "valid"
		if !ok {
			v = "invalid"
		}
		fmt.Fprintf(&b, "%s: %s\n", name, v)
		if showStats {
			t := n.Stats.Totals()
			writeWireLine(&b, dxml.Totals{
				Messages:   t.Messages - pre.Messages,
				Frames:     t.Frames - pre.Frames,
				Bytes:      t.Bytes - pre.Bytes,
				BytesSaved: t.BytesSaved - pre.BytesSaved,
			})
		}
		return nil
	}
	if err := report("distributed", n.ValidateDistributed); err != nil {
		return "", err
	}
	if err := report("centralized", n.ValidateCentralized); err != nil {
		return "", err
	}
	return b.String(), nil
}

// writeWireLine renders one protocol's traffic, in the same format the
// in-process -stats report uses — the loopback walkthrough in the
// README diffs the two outputs directly.
func writeWireLine(b *strings.Builder, t dxml.Totals) {
	fmt.Fprintf(b, "  wire: %d messages, %d frames, %d bytes", t.Messages, t.Frames, t.Bytes)
	if t.BytesSaved > 0 {
		fmt.Fprintf(b, " (%d bytes saved by mid-transfer rejection)", t.BytesSaved)
	}
	b.WriteString("\n")
}

// validateChunkFlag rejects nonsense chunk budgets: positive budgets
// and the Unchunked sentinel (-1) are meaningful; anything below -1 is
// a typo that previously fell through as "unchunked" silently.
func validateChunkFlag(chunk int) error {
	if chunk < dxml.Unchunked {
		return fmt.Errorf("invalid -chunk %d: the budget is a positive byte count, 0 (default %d), or -1 (unchunked)",
			chunk, dxml.DefaultChunkSize)
	}
	return nil
}
