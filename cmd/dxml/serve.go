package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dxml"
)

// signalContext is a context canceled by SIGINT or SIGTERM, so both
// subcommands tear their sessions down cleanly (close frames on the
// wire) instead of dying mid-frame and leaving the remote side blocked
// on a read until TCP teardown.
func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// runServe implements `dxml serve`: host resource peers from a design
// file on a TCP socket, so remote kernel peers can join and validate
// the federation over the real wire. With -watch, document files are
// polled and changes are re-served to live subscribers as subtree
// edits rather than whole documents.
func runServe(args []string) {
	fs := flag.NewFlagSet("dxml serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:9400", "TCP address to listen on (use :0 for an ephemeral port)")
	watch := fs.Bool("watch", false, "watch the document files and publish changes as subtree edits (live mode)")
	window := fs.Int("window", dxml.DefaultWindow, "credit window cap in chunks: the most unacked chunks granted to any transfer (joiners asking for less get less)")
	chaosSeed := fs.Int64("chaos", 0, "fault-injection seed: accepted connections are deterministically doomed to drop (0 = off; for resilience drills against a joining kernel peer)")
	traceFile := fs.String("trace", "", "append JSONL trace spans (session hello, per-fragment open/chunks/verdict) to this file")
	debugHTTP := fs.String("debug-http", "", "serve net/http/pprof and expvar on this address (empty: off)")
	capture := fs.String("capture", "", "flight-record every wire frame into this directory (capture.dxfr plus postmortem bundles on typed failures)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dxml serve [-listen addr] [-watch] [-window N] [-chaos seed] [-trace file] [-debug-http addr] [-capture dir] <design-file> <fn=document>...")
		fmt.Fprintln(os.Stderr, "hosts the documents behind the named docking points; a host may serve")
		fmt.Fprintln(os.Stderr, "any subset of the design's functions (run one serve per site)")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() < 2 {
		fs.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	df, err := ParseDesignFile(string(src))
	if err != nil {
		fatal(err)
	}
	if err := validateWindowFlag(*window); err != nil {
		fatal(err)
	}
	c, obsCleanup, err := obsFromFlags(*traceFile, *debugHTTP)
	if err != nil {
		fatal(err)
	}
	defer obsCleanup()
	rig, err := newCaptureRig(*capture, c)
	if err != nil {
		fatal(err)
	}
	srv, err := startServe(df, fs.Args()[1:], *listen, *window, *chaosSeed, c, rig)
	if err != nil {
		fatal(err)
	}
	ctx, stop := signalContext()
	defer stop()
	if *chaosSeed != 0 {
		fmt.Printf("dxml: chaos listener armed (seed %d): sessions will drop deterministically\n", *chaosSeed)
	}
	if *watch {
		srv.watch(ctx, 250*time.Millisecond, func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		})
		fmt.Printf("dxml: watching %d document files for edits\n", len(srv.files))
	}
	fmt.Printf("dxml: serving %s on %s\n", strings.Join(srv.funcs, ","), srv.host.Addr())
	<-ctx.Done()
	stop()
	fmt.Println("dxml: signal received, closing sessions")
	srv.host.Close()
	rig.close()
}

// serveInstance is a running `dxml serve`: the TCP host, the hosting
// network (peers carry live editors), and the document file behind each
// hosted docking point.
type serveInstance struct {
	host  *dxml.PeerHost
	net   *dxml.Network
	funcs []string
	files map[string]string
}

// startServe builds the hosting network from fn=docfile assignments and
// starts serving it; split from runServe so tests can drive a loopback
// federation in process. The window caps the credit grant of every
// transfer this serve hosts. A nonzero chaosSeed wraps the listener in
// the deterministic fault injector: accepted sessions are doomed to
// drop after a seed-derived byte budget, so a joining peer's reconnect
// path can be drilled against a real serve. The collector c (nil: no
// telemetry) receives the host side's wire and validation metrics and,
// when it carries a trace sink, per-fragment lifecycle spans. The rig
// (nil: no flight recording) taps every frame this serve moves and
// dumps a postmortem bundle on typed wire failures, including the
// chaos injector's drops.
func startServe(df *DesignFile, assigns []string, listen string, window int, chaosSeed int64, c *dxml.Obs, rig *captureRig) (*serveInstance, error) {
	srv, err := serveNetwork(df, assigns)
	if err != nil {
		return nil, err
	}
	srv.net.Window = window
	srv.net.Obs = c
	srv.net.Tap = rig.tap()
	if rig != nil {
		srv.net.OnWireError = rig.onError
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, err
	}
	if chaosSeed != 0 {
		cl := dxml.NewChaosListener(ln, chaosSeed)
		if rig != nil {
			cl.SetOnFault(rig.onError)
		}
		ln = cl
	}
	srv.host = srv.net.ServeTCP(ln)
	return srv, nil
}

// serveNetwork attaches one peer per fn=docfile assignment, typed by
// the design file's typing block for that function. Every hosted peer
// gets a live editor, so kernel peers can subscribe (`dxml join
// -watch`) whether or not this serve watches its files.
func serveNetwork(df *DesignFile, assigns []string) (*serveInstance, error) {
	docs := map[string]string{}
	files := map[string]string{}
	for _, a := range assigns {
		fn, path, ok := strings.Cut(a, "=")
		if !ok {
			return nil, fmt.Errorf("assignment %q: want fn=documentfile", a)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		docs[fn] = string(b)
		files[fn] = path
	}
	n, funcs, err := buildNetwork(df, docs)
	if err != nil {
		return nil, err
	}
	return &serveInstance{net: n, funcs: funcs, files: files}, nil
}

// buildNetwork builds a hosting network from document *contents* — the
// shared core of `dxml serve` (contents read from files) and the
// multi-tenant host's design bundles (contents shipped by `dxml
// register`). Each provided docking point is attached with the design's
// typing and a live editor; a host may serve any subset of the design's
// functions. The returned funcs are the attached ones in kernel order.
func buildNetwork(df *DesignFile, docs map[string]string) (*dxml.Network, []string, error) {
	if df.Class == "word" {
		return nil, nil, fmt.Errorf("serve needs a tree class, not word")
	}
	edtd, err := designEDTD(df)
	if err != nil {
		return nil, nil, err
	}
	typing, err := df.typing()
	if err != nil {
		return nil, nil, err
	}
	funcs := df.Kernel.Funcs()
	known := map[string]bool{}
	for _, f := range funcs {
		known[f] = true
	}
	for fn := range docs {
		if !known[fn] {
			return nil, nil, fmt.Errorf("design has no docking point %s (functions: %v)", fn, funcs)
		}
	}
	n := dxml.NewNetwork(df.Kernel, edtd)
	var attached []string
	for i, fn := range funcs {
		text, ok := docs[fn]
		if !ok {
			continue
		}
		doc, err := parseDocArg(text)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", fn, err)
		}
		if err := n.AddPeer(fn, doc, typing[i]); err != nil {
			return nil, nil, err
		}
		if _, err := n.AttachEditor(fn); err != nil {
			return nil, nil, err
		}
		attached = append(attached, fn)
	}
	if len(attached) == 0 {
		return nil, nil, fmt.Errorf("no documents to serve (pass fn=documentfile assignments)")
	}
	return n, attached, nil
}

// watch polls each hosted document file and re-serves changes as
// deltas: the editor diffs the old and new trees and publishes subtree
// edits, which flow to every live subscriber.
func (srv *serveInstance) watch(ctx context.Context, interval time.Duration, logf func(format string, args ...any)) {
	for fn, path := range srv.files {
		go func(fn, path string) {
			var lastMod time.Time
			if fi, err := os.Stat(path); err == nil {
				lastMod = fi.ModTime()
			}
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
				fi, err := os.Stat(path)
				if err != nil || !fi.ModTime().After(lastMod) {
					continue
				}
				lastMod = fi.ModTime()
				b, err := os.ReadFile(path)
				if err != nil {
					logf("dxml: %s: %v", path, err)
					continue
				}
				doc, err := parseDocArg(string(b))
				if err != nil {
					logf("dxml: %s: %v", path, err)
					continue
				}
				ed := srv.net.Peers[fn].Live
				edits, err := ed.SetTree(doc)
				if err != nil {
					logf("dxml: %s: %v", fn, err)
					continue
				}
				if len(edits) > 0 {
					logf("dxml: %s: re-served %d edits (now v%d)", fn, len(edits), ed.Version())
				}
			}
		}(fn, path)
	}
}

// peerAddrFlags collects repeated -peer fn=addr mappings.
type peerAddrFlags map[string]string

func (p peerAddrFlags) String() string {
	var parts []string
	for fn, addr := range p {
		parts = append(parts, fn+"="+addr)
	}
	return strings.Join(parts, ",")
}

func (p peerAddrFlags) Set(v string) error {
	fn, addr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want fn=host:port, got %q", v)
	}
	p[fn] = addr
	return nil
}

// runJoin implements `dxml join`: connect to the hosts serving a
// design's docking points, run both validation protocols over the wire,
// and print verdicts (and, with -stats, the traffic of each). With
// -watch it then subscribes to every docking point's edit log and
// prints verdict transitions as edits arrive, until interrupted.
func runJoin(args []string) {
	fs := flag.NewFlagSet("dxml join", flag.ExitOnError)
	connect := fs.String("connect", "", "host address serving every docking point not mapped by -peer")
	peers := peerAddrFlags{}
	fs.Var(peers, "peer", "fn=host:port mapping for one docking point (repeatable)")
	stats := fs.Bool("stats", false, "print wire traffic (messages, frames, bytes, bytes saved)")
	chunk := fs.Int("chunk", 0, "fragment frame budget in bytes (0 = default 4096; -chunk -1 = unchunked, the only valid negative)")
	window := fs.Int("window", dxml.DefaultWindow, "credit window in chunks: how many unacked chunks each transfer may pipeline (1 = stop-and-wait; hosts may grant less)")
	watch := fs.Bool("watch", false, "stay joined: subscribe to the hosts' edit logs and print verdict transitions (live mode)")
	reconnect := fs.Int("reconnect", 8, "live mode: resubscription attempts per feed outage, with exponential backoff (0 = a feed error is terminal)")
	traceFile := fs.String("trace", "", "append JSONL trace spans (session hello, per-fragment open/chunks/verdict) to this file")
	debugHTTP := fs.String("debug-http", "", "serve net/http/pprof and expvar on this address (empty: off)")
	capture := fs.String("capture", "", "flight-record every wire frame into this directory (capture.dxfr plus a postmortem bundle if the join fails)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dxml join [-connect addr] [-peer fn=addr]... [-stats] [-chunk N] [-window N] [-watch [-reconnect N]] [-trace file] [-debug-http addr] [-capture dir] <design-file>")
		fmt.Fprintln(os.Stderr, "joins a served federation as the kernel peer and validates it over TCP")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	df, err := ParseDesignFile(string(src))
	if err != nil {
		fatal(err)
	}
	ctx, stop := signalContext()
	defer stop()
	c, obsCleanup, err := obsFromFlags(*traceFile, *debugHTTP)
	if err != nil {
		fatal(err)
	}
	defer obsCleanup()
	rig, err := newCaptureRig(*capture, c)
	if err != nil {
		fatal(err)
	}
	if *watch {
		err := JoinLiveObs(ctx, df, *connect, peers, *chunk, *window, *reconnect, *stats, os.Stdout, c, rig)
		if err != nil {
			rig.onError(err)
		}
		rig.close()
		if err != nil {
			fatal(err)
		}
		return
	}
	out, err := runJoinObs(ctx, df, *connect, peers, *chunk, *window, *stats, c, rig)
	// A failed join dumps its postmortem before the capture file is
	// sealed — fatal exits without running defers.
	if err != nil {
		rig.onError(err)
	}
	rig.close()
	if err != nil {
		fatal(err)
	}
	fmt.Print(out)
}

// dialJoin builds the kernel-peer network and dials the federation's
// hosts; the caller owns the returned session. An interrupt (canceled
// ctx) closes the session so in-flight operations end with clean
// close frames instead of a mid-frame kill.
func dialJoin(ctx context.Context, df *DesignFile, connect string, peers map[string]string, chunk, window int, c *dxml.Obs, rig *captureRig) (*dxml.Network, dxml.TransportSession, error) {
	if err := validateChunkFlag(chunk); err != nil {
		return nil, nil, err
	}
	if err := validateWindowFlag(window); err != nil {
		return nil, nil, err
	}
	if df.Class == "word" {
		return nil, nil, fmt.Errorf("join needs a tree class, not word")
	}
	edtd, err := designEDTD(df)
	if err != nil {
		return nil, nil, err
	}
	n := dxml.NewNetwork(df.Kernel, edtd)
	n.ChunkSize = chunk
	n.Window = window
	n.Obs = c
	n.Tap = rig.tap()
	addrs := map[string]string{}
	for _, fn := range df.Kernel.Funcs() {
		switch {
		case peers[fn] != "":
			addrs[fn] = peers[fn]
		case connect != "":
			addrs[fn] = connect
		default:
			return nil, nil, fmt.Errorf("no host address for docking point %s (use -connect or -peer %s=host:port)", fn, fn)
		}
	}
	sess, err := n.DialTCP(addrs)
	if err != nil {
		return nil, nil, err
	}
	context.AfterFunc(ctx, func() { sess.Close() })
	n.Transport = sess
	return n, sess, nil
}

// RunJoin dials the federation and runs both protocols the paper
// compares over the TCP wire, reporting verdicts and per-protocol
// traffic. The session hello carries the design digest, so joining a
// host that serves a different design fails before any fragment moves.
func RunJoin(df *DesignFile, connect string, peers map[string]string, chunk, window int, showStats bool) (string, error) {
	return RunJoinContext(context.Background(), df, connect, peers, chunk, window, showStats)
}

// RunJoinContext is RunJoin under a context: cancellation closes the
// session cleanly mid-round.
func RunJoinContext(ctx context.Context, df *DesignFile, connect string, peers map[string]string, chunk, window int, showStats bool) (string, error) {
	return runJoinObs(ctx, df, connect, peers, chunk, window, showStats, nil, nil)
}

// runJoinObs is RunJoinContext with a telemetry collector (nil: none)
// and a capture rig (nil: no flight recording) — the form `dxml join
// -trace/-debug-http/-capture` drives.
func runJoinObs(ctx context.Context, df *DesignFile, connect string, peers map[string]string, chunk, window int, showStats bool, c *dxml.Obs, rig *captureRig) (string, error) {
	n, sess, err := dialJoin(ctx, df, connect, peers, chunk, window, c, rig)
	if err != nil {
		return "", err
	}
	defer sess.Close()

	var b strings.Builder
	report := func(name string, run func() (bool, error)) error {
		pre := n.Stats.Totals()
		ok, err := run()
		if err != nil {
			return err
		}
		v := "valid"
		if !ok {
			v = "invalid"
		}
		fmt.Fprintf(&b, "%s: %s\n", name, v)
		if showStats {
			t := n.Stats.Totals()
			writeWireLine(&b, dxml.Totals{
				Messages:   t.Messages - pre.Messages,
				Frames:     t.Frames - pre.Frames,
				Bytes:      t.Bytes - pre.Bytes,
				BytesSaved: t.BytesSaved - pre.BytesSaved,
			})
		}
		return nil
	}
	// The context-aware variants propagate an interrupt into in-flight
	// fragment transfers: the splice loop aborts the open streams, so
	// remote senders halt at their next chunk instead of lingering.
	if err := report("distributed", func() (bool, error) { return n.ValidateDistributedContext(ctx) }); err != nil {
		return "", err
	}
	if err := report("centralized", func() (bool, error) { return n.ValidateCentralizedContext(ctx) }); err != nil {
		return "", err
	}
	return b.String(), nil
}

// JoinLive is `dxml join -watch`: subscribe to every docking point's
// edit log and keep the global verdict live, printing one line per
// applied edit and flagging verdict and health transitions, until ctx
// ends (the interrupt path) or every feed terminates. With reconnect
// attempts > 0, a dropped feed is resubscribed with exponential backoff
// — the verdict goes stale during the outage and recovers by log-suffix
// replay (or a snapshot rebuild when the host compacted past us).
func JoinLive(ctx context.Context, df *DesignFile, connect string, peers map[string]string, chunk, window, reconnect int, showStats bool, w io.Writer) error {
	return JoinLiveObs(ctx, df, connect, peers, chunk, window, reconnect, showStats, w, nil, nil)
}

// JoinLiveObs is JoinLive with a telemetry collector and capture rig
// (nil: none).
func JoinLiveObs(ctx context.Context, df *DesignFile, connect string, peers map[string]string, chunk, window, reconnect int, showStats bool, w io.Writer, c *dxml.Obs, rig *captureRig) error {
	n, sess, err := dialJoin(ctx, df, connect, peers, chunk, window, c, rig)
	if err != nil {
		return err
	}
	defer sess.Close()
	n.Reconnect = dxml.ReconnectPolicy{MaxAttempts: reconnect}
	lv, err := n.OpenLive(ctx)
	if err != nil {
		return err
	}
	defer lv.Close()
	fmt.Fprintf(w, "live: joined %d docking points, initial verdict %s\n",
		df.Kernel.NumFuncs(), verdictWord(lv.Valid()))
	for {
		select {
		case up, ok := <-lv.Updates():
			if !ok {
				return nil
			}
			switch up.Health {
			case dxml.HealthStale:
				fmt.Fprintf(w, "live: %s: feed lost at v%d; reconnecting (verdict %s is stale)\n",
					up.Fn, up.Version, verdictWord(up.Valid))
				continue
			case dxml.HealthRecovered:
				how := "snapshot rebuild"
				if up.Resumed {
					how = "log-suffix replay"
				}
				fmt.Fprintf(w, "live: %s: recovered at v%d by %s, verdict %s\n",
					up.Fn, up.Version, how, verdictWord(up.Valid))
				continue
			case dxml.HealthDown:
				fmt.Fprintf(w, "live: %s: down: %v\n", up.Fn, up.Err)
				continue
			}
			if up.Err != nil {
				fmt.Fprintf(w, "live: %s: feed error: %v\n", up.Fn, up.Err)
				continue
			}
			fmt.Fprintf(w, "live: %s v%d %s: verdict %s", up.Fn, up.Version, up.Op, verdictWord(up.Valid))
			if up.Changed {
				fmt.Fprintf(w, " (transition to %s)", verdictWord(up.Valid))
			}
			fmt.Fprintln(w)
			if showStats {
				fmt.Fprintf(w, "  recheck: %d bytes revalidated, %d skipped; %d bytes on the wire\n",
					up.Revalidated, up.Skipped, up.WireBytes)
			}
		case <-ctx.Done():
			fmt.Fprintln(w, "live: signal received, closing sessions")
			return nil
		}
	}
}

func verdictWord(valid bool) string {
	if valid {
		return "valid"
	}
	return "invalid"
}

// writeWireLine renders one protocol's traffic, in the same format the
// in-process -stats report uses — the loopback walkthrough in the
// README diffs the two outputs directly.
func writeWireLine(b *strings.Builder, t dxml.Totals) {
	fmt.Fprintf(b, "  wire: %d messages, %d frames, %d bytes", t.Messages, t.Frames, t.Bytes)
	if t.BytesSaved > 0 {
		fmt.Fprintf(b, " (%d bytes saved by mid-transfer rejection)", t.BytesSaved)
	}
	b.WriteString("\n")
}

// validateChunkFlag rejects nonsense chunk budgets: positive budgets
// and the Unchunked sentinel (-1) are meaningful; anything below -1 is
// a typo that previously fell through as "unchunked" silently.
func validateChunkFlag(chunk int) error {
	if chunk < dxml.Unchunked {
		return fmt.Errorf("invalid -chunk %d: the budget is a positive byte count, 0 (default %d), or -1 (unchunked)",
			chunk, dxml.DefaultChunkSize)
	}
	return nil
}

// validateWindowFlag rejects nonsense credit windows at flag time with
// the library's typed sentinel: a window is a positive chunk count;
// zero and negatives would stall every transfer before its first
// chunk, so they are refused before anything dials.
func validateWindowFlag(window int) error {
	if window <= 0 {
		return fmt.Errorf("invalid -window %d: the credit window is a positive chunk count (default %d): %w",
			window, dxml.DefaultWindow, dxml.ErrInvalidWindow)
	}
	return nil
}
