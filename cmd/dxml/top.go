package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"dxml"
)

// runTop implements `dxml top`: a terminal dashboard over a running
// multi-tenant host. It polls the host's /metrics JSON body and renders
// per-tenant session/stream gauges and counter rates (deltas between
// polls), refreshing in place until interrupted.
func runTop(args []string) {
	fs := flag.NewFlagSet("dxml top", flag.ExitOnError)
	httpAddr := fs.String("http", "", "host's HTTP address (the -http a running `dxml host` printed; required)")
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	iters := fs.Int("n", 0, "number of refreshes before exiting (0 = until interrupted)")
	plain := fs.Bool("plain", false, "append refreshes instead of clearing the screen (for logs and pipes)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dxml top -http addr [-interval d] [-n count] [-plain]")
		fmt.Fprintln(os.Stderr, "live per-tenant dashboard over a multi-tenant host's /metrics")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if *httpAddr == "" {
		fs.Usage()
		os.Exit(2)
	}
	if *interval <= 0 {
		fatal(fmt.Errorf("invalid -interval %v: the poll interval is a positive duration", *interval))
	}
	ctx, stop := signalContext()
	defer stop()
	var prev *dxml.HostMetrics
	lastPoll := time.Now()
	for i := 0; *iters == 0 || i < *iters; i++ {
		if i > 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(*interval):
			}
		}
		cur, err := fetchHostMetrics(*httpAddr)
		if err != nil {
			fatal(err)
		}
		now := time.Now()
		if !*plain {
			// Clear and home: redraw the dashboard in place.
			fmt.Print("\x1b[2J\x1b[H")
		}
		renderTop(os.Stdout, prev, cur, now.Sub(lastPoll))
		prev, lastPoll = &cur, now
	}
}

// fetchHostMetrics pulls the host's JSON metrics body (the default
// content when no Accept header asks for the Prometheus exposition).
func fetchHostMetrics(httpAddr string) (dxml.HostMetrics, error) {
	var m dxml.HostMetrics
	resp, err := http.Get("http://" + httpAddr + "/metrics")
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return m, fmt.Errorf("top: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&m); err != nil {
		return m, fmt.Errorf("top: bad /metrics body: %w", err)
	}
	return m, nil
}

// renderTop writes one dashboard refresh: the host-wide gauge line and
// a per-tenant table whose rate columns are deltas against the previous
// snapshot over dt (the first refresh has no baseline and shows 0
// rates). Pure over its inputs, so tests drive it with fixed snapshots.
func renderTop(w io.Writer, prev *dxml.HostMetrics, cur dxml.HostMetrics, dt time.Duration) {
	fmt.Fprintf(w, "dxml top — %d designs (%d resident, %s), %d sessions, %d streams\n",
		cur.Designs, cur.Resident, fmtBytes(cur.ResidentBytes), cur.ActiveSessions, cur.ActiveStreams)
	names := make([]string, 0, len(cur.Tenants))
	for name := range cur.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-20s %5s %5s %9s %9s %9s %11s %8s\n",
		"TENANT", "SESS", "STRM", "RESIDENT", "MSG/S", "FRM/S", "B/S", "VERD/S")
	secs := dt.Seconds()
	rate := func(cur, prev int64) float64 {
		if secs <= 0 {
			return 0
		}
		if d := cur - prev; d > 0 {
			return float64(d) / secs
		}
		return 0
	}
	for _, name := range names {
		t := cur.Tenants[name]
		var base dxml.HostCounters
		if prev != nil {
			base = prev.Tenants[name].Counters
		} else {
			// No baseline yet: rates start at zero rather than counting
			// the host's whole history as one interval.
			base = t.Counters
		}
		res := "-"
		if t.Resident {
			res = fmtBytes(t.ResidentBytes)
		}
		fmt.Fprintf(w, "%-20s %5d %5d %9s %9.1f %9.1f %11.0f %8.1f\n",
			name, t.ActiveSessions, t.ActiveStreams, res,
			rate(t.Counters.Messages, base.Messages),
			rate(t.Counters.Frames, base.Frames),
			rate(t.Counters.Bytes, base.Bytes),
			rate(t.Counters.Verdicts, base.Verdicts))
	}
	var gbase dxml.HostCounters
	if prev != nil {
		gbase = prev.Global
	} else {
		gbase = cur.Global
	}
	fmt.Fprintf(w, "%-20s %5d %5d %9s %9.1f %9.1f %11.0f %8.1f\n",
		"TOTAL", cur.ActiveSessions, cur.ActiveStreams, fmtBytes(cur.ResidentBytes),
		rate(cur.Global.Messages, gbase.Messages),
		rate(cur.Global.Frames, gbase.Frames),
		rate(cur.Global.Bytes, gbase.Bytes),
		rate(cur.Global.Verdicts, gbase.Verdicts))
}

// fmtBytes renders a byte count with a binary unit, compact enough for
// a table cell.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
