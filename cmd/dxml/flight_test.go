package main

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dxml"
)

// TestKillDrillRefusedJoinDumpsBundle is the acceptance kill-drill: a
// join against a host serving a different design dies with a typed
// refusal, the capture rig dumps a postmortem bundle, and `dxml
// inspect` decodes that bundle end to end — header, frame timeline,
// and the refusal's message.
func TestKillDrillRefusedJoinDumpsBundle(t *testing.T) {
	_, srv := startEurostatServe(t, eurostatValidDocs)
	other, err := ParseDesignFile(`
class dtd
kernel eurostat(f0 f1)
type:
  root eurostat
  eurostat -> averages, nationalIndex*
end
typing f0:
  root root1
  root1 -> averages
end
typing f1:
  root root2
  root2 -> nationalIndex*
end
`)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	rig, err := newCaptureRig(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, jerr := runJoinObs(context.Background(), other, srv.host.Addr().String(),
		nil, 0, dxml.DefaultWindow, false, nil, rig)
	if jerr == nil {
		t.Fatal("mismatched design must fail the join")
	}
	// The CLI's error path: dump the postmortem, then seal the capture.
	rig.onError(jerr)
	rig.close()

	if got := dxml.ClassifyFailure(jerr); got != "refused" {
		t.Fatalf("failure classified %q, want refused (%v)", got, jerr)
	}
	bundles, err := filepath.Glob(filepath.Join(dir, "postmortem-refused-*.json"))
	if err != nil || len(bundles) != 1 {
		t.Fatalf("want exactly one refused postmortem, got %v (%v)", bundles, err)
	}

	out, err := RunInspect(bundles[0])
	if err != nil {
		t.Fatalf("inspect cannot decode the bundle: %v", err)
	}
	for _, want := range []string{
		"postmortem bundle: kind=refused",
		"err: ",
		"timeline:",
		"hello",
		"refuse",
		"msg=",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("inspect output missing %q:\n%s", want, out)
		}
	}

	// The full capture file survives alongside the bundle and decodes
	// with the same tooling.
	if _, err := RunInspect(filepath.Join(dir, captureFileName)); err != nil {
		t.Fatalf("capture file: %v", err)
	}
}

// TestReplayReproducesLiveVerdicts is the replay acceptance criterion:
// a captured join session, re-fed offline through the same validators,
// prints byte-for-byte the verdict report the live run printed, with
// no divergence between recomputed and recorded verdicts.
func TestReplayReproducesLiveVerdicts(t *testing.T) {
	for _, tc := range []struct {
		name string
		docs []string
	}{
		{"valid", eurostatValidDocs},
		{"invalid", func() []string {
			bad := make([]string, len(eurostatValidDocs))
			copy(bad, eurostatValidDocs)
			bad[1] = "root2(nationalIndex(country))"
			return bad
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			df, srv := startEurostatServe(t, tc.docs)
			dir := t.TempDir()
			rig, err := newCaptureRig(dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			live, err := runJoinObs(context.Background(), df, srv.host.Addr().String(),
				nil, 16, dxml.DefaultWindow, false, nil, rig)
			if err != nil {
				t.Fatal(err)
			}
			rig.close()

			recs, bundle, err := loadRecords(filepath.Join(dir, captureFileName))
			if err != nil {
				t.Fatal(err)
			}
			if bundle != nil {
				t.Fatal("a capture file is not a bundle")
			}
			if len(recs) == 0 {
				t.Fatal("capture recorded nothing")
			}
			replayed, diverged, err := RunReplay(df, recs)
			if err != nil {
				t.Fatal(err)
			}
			if len(diverged) != 0 {
				t.Fatalf("replay diverged from the recording: %v", diverged)
			}
			if replayed != live {
				t.Fatalf("replay output differs from the live run:\n--- live ---\n%s--- replay ---\n%s", live, replayed)
			}
		})
	}
}

// TestInspectCaptureFlow smokes the inspect report over a real capture:
// the timeline carries the session lifecycle and the streams section
// accounts every transfer as complete with a plausible window peak.
func TestInspectCaptureFlow(t *testing.T) {
	df, srv := startEurostatServe(t, eurostatValidDocs)
	dir := t.TempDir()
	rig, err := newCaptureRig(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runJoinObs(context.Background(), df, srv.host.Addr().String(),
		nil, 16, dxml.DefaultWindow, false, nil, rig); err != nil {
		t.Fatal(err)
	}
	rig.close()

	out, err := RunInspect(filepath.Join(dir, captureFileName))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"capture: ",
		"timeline:",
		"hello",
		"verdict_req",
		"fn=",
		"open",
		"begin",
		"chunk",
		"end",
		"streams:",
		"complete, peak window ",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("inspect output missing %q:\n%s", want, out)
		}
	}
	// Every docking point's transfer appears in the flow summary.
	for _, fn := range df.Kernel.Funcs() {
		if !strings.Contains(out, "("+fn+")") {
			t.Fatalf("streams section missing %s:\n%s", fn, out)
		}
	}
}

// TestRenderTop drives the dashboard renderer with fixed snapshots: the
// first refresh has no baseline (zero rates), the second shows deltas
// over the poll interval, and tenants render sorted with the TOTAL row
// from the global counters.
func TestRenderTop(t *testing.T) {
	mk := func(msgA, msgB int64) dxml.HostMetrics {
		return dxml.HostMetrics{
			Designs: 2, Resident: 1, ResidentBytes: 2048,
			ActiveSessions: 3, ActiveStreams: 4,
			Global: dxml.HostCounters{Messages: msgA + msgB, Frames: 2 * (msgA + msgB), Bytes: 100 * (msgA + msgB)},
			Tenants: map[string]dxml.HostTenantMetrics{
				"zeta": {Name: "zeta", ActiveSessions: 1,
					Counters: dxml.HostCounters{Messages: msgB}},
				"alpha": {Name: "alpha", Resident: true, ResidentBytes: 2048, ActiveSessions: 2, ActiveStreams: 4,
					Counters: dxml.HostCounters{Messages: msgA}},
			},
		}
	}

	var first strings.Builder
	renderTop(&first, nil, mk(100, 50), 2*time.Second)
	out := first.String()
	if !strings.Contains(out, "dxml top — 2 designs (1 resident, 2.0KiB), 3 sessions, 4 streams") {
		t.Fatalf("header:\n%s", out)
	}
	ia, iz := strings.Index(out, "alpha"), strings.Index(out, "zeta")
	if ia < 0 || iz < 0 || ia > iz {
		t.Fatalf("tenants not sorted:\n%s", out)
	}
	if !strings.Contains(out, "TOTAL") {
		t.Fatalf("TOTAL row missing:\n%s", out)
	}
	// No baseline: every rate column renders 0.0.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "alpha") && !strings.Contains(line, "0.0") {
			t.Fatalf("first refresh should show zero rates:\n%s", out)
		}
	}

	// Second refresh: alpha gained 20 messages over 2s → 10.0/s.
	prev := mk(100, 50)
	var second strings.Builder
	renderTop(&second, &prev, mk(120, 50), 2*time.Second)
	var alphaLine, zetaLine string
	for _, line := range strings.Split(second.String(), "\n") {
		if strings.HasPrefix(line, "alpha") {
			alphaLine = line
		}
		if strings.HasPrefix(line, "zeta") {
			zetaLine = line
		}
	}
	if !strings.Contains(alphaLine, "10.0") {
		t.Fatalf("alpha rate: %q", alphaLine)
	}
	if !strings.Contains(zetaLine, "0.0") || strings.Contains(zetaLine, "10.0") {
		t.Fatalf("zeta rate: %q", zetaLine)
	}
}

func TestFmtBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{0, "0B"}, {512, "512B"}, {2048, "2.0KiB"},
		{3 << 20, "3.0MiB"}, {5 << 30, "5.0GiB"},
	}
	for _, c := range cases {
		if got := fmtBytes(c.n); got != c.want {
			t.Errorf("fmtBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}
