package main

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dxml"
)

// miniDesignText builds a tiny one-peer design whose digest is unique
// per id: the kernel's docking point is named f<id>, and the digest
// covers the specialized names. items only varies the hosted document,
// not the design.
func miniDesignText(id int) string {
	return fmt.Sprintf(`class dtd
kind nRE
kernel s(f%d)
type:
root s
s -> a*
end
typing f%d:
root r
r -> a*
end
`, id, id)
}

// miniDocText is a flat local document with items leaves — fragment
// size (and so wire traffic) scales with items.
func miniDocText(items int) string {
	if items == 0 {
		return "r"
	}
	return "r(" + strings.TrimSpace(strings.Repeat("a ", items)) + ")"
}

// writeTenant writes design id's file and document under dir and
// returns the parsed design, the host tenant spec, and the serve-style
// assignment list for the same corpus.
func writeTenant(t *testing.T, dir string, id, items int) (*DesignFile, string, []string) {
	t.Helper()
	df, err := ParseDesignFile(miniDesignText(id))
	if err != nil {
		t.Fatal(err)
	}
	dfPath := filepath.Join(dir, fmt.Sprintf("mini-%d.design", id))
	docPath := filepath.Join(dir, fmt.Sprintf("mini-%d.term", id))
	if err := os.WriteFile(dfPath, []byte(miniDesignText(id)), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(docPath, []byte(miniDocText(items)), 0o600); err != nil {
		t.Fatal(err)
	}
	assign := fmt.Sprintf("f%d=%s", id, docPath)
	return df, dfPath + "," + assign, []string{assign}
}

// TestHostScaleFanIn is the tentpole acceptance test: one host process
// serving 100 designs on one port, 1000 concurrent join sessions fanned
// in across them, every output byte-identical to a dedicated
// single-design `dxml serve` of the same corpus.
func TestHostScaleFanIn(t *testing.T) {
	const (
		designs = 100
		joins   = 10 // concurrent joins per design
	)
	dir := t.TempDir()
	dfs := make([]*DesignFile, designs)
	specs := make([]string, designs)
	want := make([]string, designs)
	for i := 0; i < designs; i++ {
		df, spec, assigns := writeTenant(t, dir, i, i%17)
		dfs[i], specs[i] = df, spec
		// The reference: the same design behind a plain single-design
		// serve. The host must match it byte for byte, stats included.
		ref, err := startServe(df, assigns, "127.0.0.1:0", dxml.DefaultWindow, 0, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		out, err := RunJoin(df, ref.host.Addr().String(), nil, 16, dxml.DefaultWindow, true)
		ref.host.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "distributed: valid") {
			t.Fatalf("reference serve for design %d:\n%s", i, out)
		}
		want[i] = out
	}

	srv, reg, err := startHost(dxml.HostConfig{}, specs, "127.0.0.1:0", "", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if reg.Len() != designs {
		t.Fatalf("registered %d designs, want %d", reg.Len(), designs)
	}
	addr := srv.Addr().String()

	var wg sync.WaitGroup
	for i := 0; i < designs; i++ {
		for k := 0; k < joins; k++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				out, err := RunJoin(dfs[i], addr, nil, 16, dxml.DefaultWindow, true)
				if err != nil {
					t.Errorf("design %d: %v", i, err)
					return
				}
				if out != want[i] {
					t.Errorf("design %d: host and serve outputs differ:\n--- host ---\n%s--- serve ---\n%s", i, out, want[i])
				}
			}(i)
		}
	}
	wg.Wait()

	m := reg.Metrics()
	if m.Designs != designs {
		t.Errorf("metrics report %d designs, want %d", m.Designs, designs)
	}
	if got := m.Global.Sessions; got != designs*joins {
		t.Errorf("global sessions = %d, want %d", got, designs*joins)
	}
	if m.Global.Rejections != 0 {
		t.Errorf("unexpected rejections: %d", m.Global.Rejections)
	}
	// The server observes a client's close asynchronously (EOF on the
	// session's read loop), so drain rather than assert instantly.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Metrics().ActiveSessions != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d sessions leaked", reg.Metrics().ActiveSessions)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHostServesEurostat: a multi-peer tenant (the paper's Figure 1
// federation, four docking points) behind the multi-tenant host answers
// `dxml join` byte-identically to the dedicated serve.
func TestHostServesEurostat(t *testing.T) {
	df, ref := startEurostatServe(t, eurostatValidDocs)
	want, err := RunJoin(df, ref.host.Addr().String(), nil, 16, dxml.DefaultWindow, true)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	spec := filepath.Join(dir, "eurostat.design")
	src, err := os.ReadFile(filepath.Join("testdata", "eurostat.design"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(spec, src, 0o600); err != nil {
		t.Fatal(err)
	}
	for i, fn := range df.Kernel.Funcs() {
		path := filepath.Join(dir, fn+".term")
		if err := os.WriteFile(path, []byte(eurostatValidDocs[i]), 0o600); err != nil {
			t.Fatal(err)
		}
		spec += "," + fn + "=" + path
	}
	srv, _, err := startHost(dxml.HostConfig{}, []string{spec}, "127.0.0.1:0", "", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	out, err := RunJoin(df, srv.Addr().String(), nil, 16, dxml.DefaultWindow, true)
	if err != nil {
		t.Fatal(err)
	}
	if out != want {
		t.Errorf("host and serve outputs differ:\n--- host ---\n%s--- serve ---\n%s", out, want)
	}
}

// TestHostListenEphemeral: satellite 1 — both serve and host accept
// ":0"-style listen addresses and report the actual bound port.
func TestHostListenEphemeral(t *testing.T) {
	dir := t.TempDir()
	df, spec, assigns := writeTenant(t, dir, 1, 3)

	srv, _, err := startHost(dxml.HostConfig{}, []string{spec}, "127.0.0.1:0", "127.0.0.1:0", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for what, addr := range map[string]string{
		"federation": srv.Addr().String(),
		"http":       srv.HTTPAddr().String(),
	} {
		if strings.HasSuffix(addr, ":0") {
			t.Errorf("host %s address %q still reports port 0", what, addr)
		}
	}

	serveSrv, err := startServe(df, assigns, "127.0.0.1:0", dxml.DefaultWindow, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer serveSrv.host.Close()
	if addr := serveSrv.host.Addr().String(); strings.HasSuffix(addr, ":0") {
		t.Errorf("serve address %q still reports port 0", addr)
	}
}

// TestHostRegisterRuntime drives the full registration loop: a host
// started empty, a design POSTed through /register (the `dxml register`
// path), then joined over the federation port. Before registration the
// join is refused with the typed unknown-design error; a duplicate
// registration is a clean conflict.
func TestHostRegisterRuntime(t *testing.T) {
	dir := t.TempDir()
	df, spec, _ := writeTenant(t, dir, 5, 4)

	srv, reg, err := startHost(dxml.HostConfig{}, nil, "127.0.0.1:0", "127.0.0.1:0", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if reg.Len() != 0 {
		t.Fatalf("empty host has %d designs", reg.Len())
	}
	addr := srv.Addr().String()
	httpAddr := srv.HTTPAddr().String()

	// Not registered yet: the hello is refused, typed, never hung.
	if _, err := RunJoin(df, addr, nil, 16, dxml.DefaultWindow, false); !errors.Is(err, dxml.ErrUnknownDesign) {
		t.Fatalf("join before register: got %v, want ErrUnknownDesign", err)
	}

	bundle, err := bundleFromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	digest, err := postRegister(httpAddr, bundle)
	if err != nil {
		t.Fatal(err)
	}
	if digest == "" {
		t.Fatal("register returned an empty digest")
	}
	out, err := RunJoin(df, addr, nil, 16, dxml.DefaultWindow, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "distributed: valid") || !strings.Contains(out, "centralized: valid") {
		t.Fatalf("join after register:\n%s", out)
	}

	// Same digest again: a conflict, not a second tenant.
	if _, err := postRegister(httpAddr, bundle); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate register: got %v, want an already-registered conflict", err)
	}
	// A broken design is a registration error, not a routing surprise.
	bad := bundle
	bad.Name = "broken"
	bad.Design = "class dtd\nkind nRE\n"
	if _, err := postRegister(httpAddr, bad); err == nil {
		t.Error("broken design registered without error")
	}

	// The tenant shows up on the metrics endpoint, and health is served.
	for path, needle := range map[string]string{
		"/metrics": `"mini-5"`,
		"/healthz": `"ok"`,
	} {
		resp, err := http.Get("http://" + httpAddr + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), needle) {
			t.Errorf("GET %s = %s, body %s (want %s)", path, resp.Status, body, needle)
		}
	}
}

// TestHostChaosDrill is the serve chaos drill against the multi-tenant
// host: the seeded fault injector sits in front of the host's listener,
// so sessions drop deterministically — every attempt must either report
// the true verdicts or fail with a clean error, and a bounded number of
// retries must get through.
func TestHostChaosDrill(t *testing.T) {
	dir := t.TempDir()
	df, spec, _ := writeTenant(t, dir, 9, 40)
	srv, _, err := startHost(dxml.HostConfig{}, []string{spec}, "127.0.0.1:0", "", 99, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for attempt := 0; attempt < 12; attempt++ {
		out, err := RunJoin(df, srv.Addr().String(), nil, 16, dxml.DefaultWindow, false)
		if err != nil {
			continue // a doomed session: clean error, try again
		}
		if !strings.Contains(out, "distributed: valid") || !strings.Contains(out, "centralized: valid") {
			t.Fatalf("chaos must never corrupt a verdict:\n%s", out)
		}
		return
	}
	t.Fatal("no join attempt survived 12 tries against the chaos listener")
}

// TestHostCapsOverWire: an over-capacity hello is refused with the
// typed capacity error end to end — CLI design file, TCP wire, typed
// sentinel on the client.
func TestHostCapsOverWire(t *testing.T) {
	dir := t.TempDir()
	df, spec, _ := writeTenant(t, dir, 3, 2)
	srv, reg, err := startHost(dxml.HostConfig{MaxSessions: 1}, []string{spec}, "127.0.0.1:0", "", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Occupy the host's only session slot in process, then watch a wire
	// join get the typed refusal — deterministically, no racing joins.
	bundle, err := bundleFromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	n, _, err := bundleNetwork(bundle)
	if err != nil {
		t.Fatal(err)
	}
	s, err := reg.Session(n.Digest(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunJoin(df, srv.Addr().String(), nil, 16, dxml.DefaultWindow, false); !errors.Is(err, dxml.ErrOverCapacity) {
		t.Fatalf("over-capacity join: got %v, want ErrOverCapacity", err)
	}
	s.Close()
	// Slot released: the same join now succeeds.
	out, err := RunJoin(df, srv.Addr().String(), nil, 16, dxml.DefaultWindow, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "distributed: valid") {
		t.Fatalf("join after slot release:\n%s", out)
	}
}
