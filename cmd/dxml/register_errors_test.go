package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"dxml"
)

// postRaw POSTs (or sends method) a raw body to a host's /register and
// returns the status code plus the decoded registerError (zero-valued
// on 200).
func postRaw(t *testing.T, httpAddr, method, body string) (int, registerError) {
	t.Helper()
	req, err := http.NewRequest(method, "http://"+httpAddr+"/register", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var re registerError
	if resp.StatusCode != http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&re); err != nil {
			t.Fatalf("%s /register (%d): error body is not JSON: %v", method, resp.StatusCode, err)
		}
	}
	return resp.StatusCode, re
}

// TestRegisterErrorPaths pins the /register error contract: every
// failure returns a structured JSON body {code, error} under the status
// its class demands — 405 wrong method, 400 malformed JSON, 422
// uncompilable content, 409 duplicates — so clients can switch on the
// stable code instead of scraping prose.
func TestRegisterErrorPaths(t *testing.T) {
	dir := t.TempDir()
	_, spec, _ := writeTenant(t, dir, 1, 3)
	srv, _, err := startHost(dxml.HostConfig{}, nil, "127.0.0.1:0", "127.0.0.1:0", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	httpAddr := srv.HTTPAddr().String()

	goodBundle, err := bundleFromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	goodBody, _ := json.Marshal(goodBundle)

	// Wrong method: 405 with the Allow header.
	if code, re := postRaw(t, httpAddr, http.MethodGet, ""); code != http.StatusMethodNotAllowed || re.Code != "method_not_allowed" {
		t.Fatalf("GET: %d %+v", code, re)
	}

	// Malformed JSON: 400.
	if code, re := postRaw(t, httpAddr, http.MethodPost, "{not json"); code != http.StatusBadRequest || re.Code != "malformed_bundle" {
		t.Fatalf("malformed: %d %+v", code, re)
	}

	// Well-formed JSON, uncompilable design: 422, and the detail names
	// the failing tenant.
	bad := tenantBundle{Name: "broken", Design: "class dtd\nthis is not a design", Docs: map[string]string{"f1": "r"}}
	badBody, _ := json.Marshal(bad)
	if code, re := postRaw(t, httpAddr, http.MethodPost, string(badBody)); code != http.StatusUnprocessableEntity || re.Code != "invalid_design" {
		t.Fatalf("invalid design: %d %+v", code, re)
	} else if !strings.Contains(re.Error, "broken") {
		t.Fatalf("detail does not name the tenant: %q", re.Error)
	}

	// A document for a docking point the design lacks is also content:
	// 422, not 400.
	phantom := goodBundle
	phantom.Name = "phantom"
	phantom.Docs = map[string]string{"f99": "r"}
	phantomBody, _ := json.Marshal(phantom)
	if code, re := postRaw(t, httpAddr, http.MethodPost, string(phantomBody)); code != http.StatusUnprocessableEntity || re.Code != "invalid_design" {
		t.Fatalf("phantom docking point: %d %+v", code, re)
	}

	// First registration succeeds...
	if code, re := postRaw(t, httpAddr, http.MethodPost, string(goodBody)); code != http.StatusOK {
		t.Fatalf("register: %d %+v", code, re)
	}
	// ...the same digest again is 409 duplicate_digest.
	if code, re := postRaw(t, httpAddr, http.MethodPost, string(goodBody)); code != http.StatusConflict || re.Code != "duplicate_digest" {
		t.Fatalf("duplicate digest: %d %+v", code, re)
	}
	// A different design under the taken name is 409 duplicate_name.
	other, err := bundleFromSpec(func() string {
		_, spec2, _ := writeTenant(t, dir, 2, 3)
		return spec2
	}())
	if err != nil {
		t.Fatal(err)
	}
	other.Name = goodBundle.Name
	otherBody, _ := json.Marshal(other)
	if code, re := postRaw(t, httpAddr, http.MethodPost, string(otherBody)); code != http.StatusConflict || re.Code != "duplicate_name" {
		t.Fatalf("duplicate name: %d %+v", code, re)
	}

	// The CLI client surfaces the structured code, not raw prose.
	if _, err := postRegister(httpAddr, goodBundle); err == nil || !strings.Contains(err.Error(), "duplicate_digest") {
		t.Fatalf("postRegister error does not carry the code: %v", err)
	}
}

// TestRegisterErrorAllowHeader pins the 405's Allow header.
func TestRegisterErrorAllowHeader(t *testing.T) {
	srv, _, err := startHost(dxml.HostConfig{}, nil, "127.0.0.1:0", "127.0.0.1:0", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/register", srv.HTTPAddr()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("Allow"); got != http.MethodPost {
		t.Fatalf("Allow = %q, want POST", got)
	}
}
