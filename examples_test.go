package dxml_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun builds and runs every example program, asserting key
// lines of their output (the paper's headline claims). Skipped with
// -short since each `go run` pays a build.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test skipped in -short mode")
	}
	cases := []struct {
		dir  string
		want []string
	}{
		{"./examples/quickstart", []string{"perfect typing found", "globally valid: true", "rogue reviews rejected locally: true"}},
		{"./examples/eurostat", []string{"nationalIndex*", "NO local typing", "exactly 2 maximal local typings"}},
		{"./examples/wordtypings", []string{"perfect typing: (a*,  c*)", "no local typing exists"}},
		{"./examples/bottomup", []string{"cons[dRE-DTD] = true", "cons[SDTD] = true, cons[DTD] = false"}},
		{"./examples/dynamic", []string{"reachable(a b a b a) = true", "one-step(a b a b a)  = false"}},
		{"./examples/distvalidate", []string{"verdicts agree=true", "admitted=false"}},
		{"./examples/tcpfederation", []string{"over TCP: distributed=true centralized=true", "wire parity with in-process: true", "saved by mid-transfer rejection", "identical totals across windows: true"}},
		{"./examples/livefederation", []string{"initial verdict valid=true", "** verdict true -> false", "** verdict false -> true", "editing site learned via verdict-update: v4 valid=true", "incremental revalidation skipped"}},
		{"./examples/streamvalidate", []string{"single-type fast path = true", "agree: true", "one shared machine: all valid = true"}},
		{"./examples/multitenant", []string{"all 8 tenants valid over one port: true", "unknown design refused with typed error: true", "third concurrent session refused: true", "resident designs capped: true, evictions occurred: true", "/metrics agrees with registry: true"}},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.TrimPrefix(c.dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", c.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s: %v\n%s", c.dir, err, out)
			}
			for _, want := range c.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("%s output missing %q:\n%s", c.dir, want, out)
				}
			}
		})
	}
}
