module dxml

go 1.24
