// Bottomup: the bottom-up design problems of Section 3 — given local
// types, derive and classify the global type typeT(τn).
//
//   - Example 1's design is DTD-consistent with typeT = s0 → a b* c d*;
//   - a context-dependent design is SDTD- but not DTD-consistent;
//   - a position-dependent design is EDTD- but not SDTD-consistent;
//   - Table 2's dFA size blow-up is shown on the concatenation family.
//
// Run with: go run ./examples/bottomup
package main

import (
	"fmt"
	"strings"

	"dxml"
)

func main() {
	fmt.Println("== Example 1: a DTD-consistent bottom-up design ==")
	kernel := dxml.MustParseKernel("s0(a f1 c f2)")
	typing := dxml.DTDTyping(
		dxml.MustParseDTD(dxml.KindDRE, "root s1\ns1 -> b*"),
		dxml.MustParseDTD(dxml.KindDRE, "root s2\ns2 -> d*"),
	)
	fmt.Printf("kernel T = %s,  [τ1] = s1(b*),  [τ2] = s2(d*)\n", kernel)
	res, err := dxml.ConsDTD(kernel, typing, dxml.KindDRE)
	if err != nil {
		panic(err)
	}
	fmt.Printf("cons[dRE-DTD] = %v; typeT(τn):\n%s", res.Consistent, indent(res.DTD.String()))

	fmt.Println("\n== Context-dependence: SDTD yes, DTD no ==")
	kernel = dxml.MustParseKernel("s0(a(f1) b(f2))")
	typing = dxml.DTDTyping(
		dxml.MustParseDTD(dxml.KindNRE, "root s1\ns1 -> x*\nx -> y"),
		dxml.MustParseDTD(dxml.KindNRE, "root s2\ns2 -> x*\nx -> z"),
	)
	fmt.Printf("kernel T = %s: x holds y under a, but z under b\n", kernel)
	sres, err := dxml.ConsSDTD(kernel, typing, dxml.KindNFA)
	if err != nil {
		panic(err)
	}
	dres, err := dxml.ConsDTD(kernel, typing, dxml.KindNFA)
	if err != nil {
		panic(err)
	}
	fmt.Printf("cons[SDTD] = %v, cons[DTD] = %v\n", sres.Consistent, dres.Consistent)
	fmt.Printf("  (%s)\n", dres.Reason)

	fmt.Println("\n== Position-dependence: EDTD yes, SDTD no ==")
	kernel = dxml.MustParseKernel("s0(a(f1) a(f2))")
	typing = dxml.DTDTyping(
		dxml.MustParseDTD(dxml.KindNRE, "root s1\ns1 -> b"),
		dxml.MustParseDTD(dxml.KindNRE, "root s2\ns2 -> c"),
	)
	fmt.Printf("kernel T = %s: first a holds b, second a holds c\n", kernel)
	edtd, err := dxml.ConsEDTD(kernel, typing, dxml.KindNFA)
	if err != nil {
		panic(err)
	}
	fmt.Printf("cons[EDTD] = true (always, Cor. 3.3); typeT has %d specialized names\n",
		len(edtd.SpecializedNames()))
	sres, err = dxml.ConsSDTD(kernel, typing, dxml.KindNFA)
	if err != nil {
		panic(err)
	}
	fmt.Printf("cons[SDTD] = %v\n  (%s)\n", sres.Consistent, sres.Reason)

	fmt.Println("\n== Table 2: the dFA-DTD size blow-up ==")
	fmt.Println("[τ1] = (a|b)* a, [τ2] = (a|b)^m  ⇒  dFA typeT needs ~2^m states:")
	for m := 2; m <= 7; m++ {
		re2 := strings.TrimSuffix(strings.Repeat("(a|b) ", m), " ")
		k := dxml.MustParseKernel("s0(f1 f2)")
		ty := dxml.DTDTyping(
			dxml.MustParseDTD(dxml.KindDFA, "root s1\ns1 -> (a|b)* a"),
			dxml.MustParseDTD(dxml.KindDFA, "root s2\ns2 -> "+re2),
		)
		nfaRes, err := dxml.ConsDTD(k, ty, dxml.KindNFA)
		if err != nil {
			panic(err)
		}
		dfaRes, err := dxml.ConsDTD(k, ty, dxml.KindDFA)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  m=%d:  nFA typeT size %4d   dFA typeT size %5d\n",
			m, nfaRes.DTD.Rule("s0").Size(), dfaRes.DTD.Rule("s0").Size())
	}
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "  " + strings.Join(lines, "\n  ") + "\n"
}
