// Distvalidate: distributed vs centralized validation of the NCPI
// federation (the paper's motivating scenario, Remark 4).
//
// With a local typing, validity can be checked where the data lives: each
// bureau validates against its local type and ships a one-bit verdict.
// Without locality, the kernel peer must pull every document and validate
// the materialized tree. The example measures the simulated traffic of
// both protocols as the federation grows.
//
// Run with: go run ./examples/distvalidate
package main

import (
	"fmt"

	"dxml"
)

func countryDoc(root string, indexes int) *dxml.Tree {
	doc := dxml.MustParseTree(root + "()")
	for i := 0; i < indexes; i++ {
		ni := dxml.MustParseTree("nationalIndex(country Good index(value year))")
		doc.Children = append(doc.Children, ni)
	}
	return doc
}

func main() {
	global := dxml.MustParseW3CDTD(dxml.KindNRE, `
		<!ELEMENT eurostat (averages, nationalIndex*)>
		<!ELEMENT averages (Good, index+)+>
		<!ELEMENT nationalIndex (country, Good, (index | value, year))>
		<!ELEMENT index (value, year)>
		<!ELEMENT country (#PCDATA)>
		<!ELEMENT Good (#PCDATA)>
		<!ELEMENT value (#PCDATA)>
		<!ELEMENT year (#PCDATA)>
	`)

	for _, countries := range []int{2, 4, 8} {
		// Kernel with one averages provider and `countries` bureaus.
		kernelSrc := "eurostat(f0"
		for i := 1; i <= countries; i++ {
			kernelSrc += fmt.Sprintf(" f%d", i)
		}
		kernelSrc += ")"
		kernel := dxml.MustParseKernel(kernelSrc)

		design := &dxml.DTDDesign{Type: global, Kernel: kernel}
		typing, ok := design.ExistsPerfect()
		if !ok {
			fmt.Println("no perfect typing — unexpected")
			return
		}

		// Wire the federation: every bureau holds a 200-index document.
		net := dxml.NewNetwork(kernel, global.ToEDTD())
		for i, f := range kernel.Funcs() {
			root := typing[i].Starts[0]
			var doc *dxml.Tree
			if i == 0 {
				doc = dxml.MustParseTree(root + "(averages(Good index(value year)))")
			} else {
				doc = countryDoc(root, 200)
			}
			if err := net.AddPeer(f, doc, typing[i]); err != nil {
				panic(err)
			}
		}

		distOK, err := net.ValidateDistributed()
		if err != nil {
			panic(err)
		}
		distMsgs, distBytes := net.Stats.Snapshot()

		net2 := dxml.NewNetwork(kernel, global.ToEDTD())
		for i, f := range kernel.Funcs() {
			root := typing[i].Starts[0]
			var doc *dxml.Tree
			if i == 0 {
				doc = dxml.MustParseTree(root + "(averages(Good index(value year)))")
			} else {
				doc = countryDoc(root, 200)
			}
			if err := net2.AddPeer(f, doc, typing[i]); err != nil {
				panic(err)
			}
		}
		centOK, err := net2.ValidateCentralized()
		if err != nil {
			panic(err)
		}
		centMsgs, centBytes := net2.Stats.Snapshot()

		fmt.Printf("countries=%d  verdicts agree=%v\n", countries, distOK == centOK)
		fmt.Printf("  distributed:  %2d msgs, %8d bytes on the wire\n", distMsgs, distBytes)
		fmt.Printf("  centralized:  %2d msgs, %8d bytes on the wire  (%.0fx more)\n",
			centMsgs, centBytes, float64(centBytes)/float64(distBytes))
	}

	fmt.Println("\nlocal typings make validation a per-peer concern — the verdict")
	fmt.Println("bit is all that ever crosses the network (soundness+completeness).")

	// Collaborative editing (the introduction's WebDAV scenario): a bureau
	// edits its fragment; locality admits or rejects the edit without
	// touching any other peer.
	fmt.Println("\n== collaborative editing ==")
	kernel := dxml.MustParseKernel("eurostat(f0 f1 f2)")
	design := &dxml.DTDDesign{Type: global, Kernel: kernel}
	typing, _ := design.ExistsPerfect()
	net := dxml.NewNetwork(kernel, global.ToEDTD())
	for i, f := range kernel.Funcs() {
		root := typing[i].Starts[0]
		doc := dxml.MustParseTree(root + "(averages(Good index(value year)))")
		if i > 0 {
			doc = countryDoc(root, 3)
		}
		if err := net.AddPeer(f, doc, typing[i]); err != nil {
			panic(err)
		}
	}
	edit := countryDoc(typing[1].Starts[0], 5)
	admitted, _, err := net.UpdatePeer("f1", edit)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  INSEE grows its fragment to 5 indexes: admitted=%v (1 verdict message)\n", admitted)
	bad := dxml.MustParseTree(typing[1].Starts[0] + "(nationalIndex(country))")
	admitted, _, err = net.UpdatePeer("f1", bad)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  INSEE pushes a malformed fragment:     admitted=%v (rejected before any data moved)\n", admitted)
}
