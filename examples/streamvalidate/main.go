// Streamvalidate: one-pass, constant-memory validation with the
// streaming engine.
//
// The tree validators materialize a document before checking it, so
// memory grows with document size. Single-type EDTDs (the paper's
// R-SDTDs, Definition 6) are validatable in one top-down pass: the
// streaming machine compiles the type once and checks documents with
// memory proportional to their depth — the property that lets resource
// peers check million-node fragments locally. The example validates a
// large generated document through both engines, shows they agree, and
// shares one compiled machine across concurrent peers.
//
// Run with: go run ./examples/streamvalidate
package main

import (
	"fmt"
	"strings"
	"sync"

	"dxml"
)

func main() {
	global := dxml.MustParseDTD(dxml.KindNRE, `
		root eurostat
		eurostat -> averages, nationalIndex*
		averages -> (Good, index+)+
		nationalIndex -> country, Good, (index | value, year)
		index -> value, year`).ToEDTD()

	// One compile, any number of validations.
	machine := dxml.CompileStream(global)
	fmt.Printf("compiled machine: single-type fast path = %v\n", machine.SingleType())

	// A wide document: 20000 national indexes, ~100k nodes.
	doc := dxml.MustParseTree("eurostat(averages(Good index(value year)))")
	for i := 0; i < 20000; i++ {
		doc.Children = append(doc.Children,
			dxml.MustParseTree("nationalIndex(country Good index(value year))"))
	}
	fmt.Printf("document size: %d nodes\n", doc.Size())

	streamErr := machine.ValidateTree(doc)
	treeErr := global.Validate(doc)
	fmt.Printf("stream verdict: %v, tree verdict: %v, agree: %v\n",
		streamErr == nil, treeErr == nil, (streamErr == nil) == (treeErr == nil))

	// The XML front-end validates straight off a reader — stdin, a file,
	// a socket — without ever building the tree.
	xmlErr := machine.ValidateReader(strings.NewReader(doc.XMLString()))
	fmt.Printf("XML stream verdict: %v\n", xmlErr == nil)

	// Invalid documents fail with a streaming-position diagnosis.
	bad := doc.Clone()
	bad.Children[5000].Children = bad.Children[5000].Children[:1]
	fmt.Printf("mutated document: %v\n", machine.ValidateTree(bad))

	// Concurrent peers share the compiled machine; runners are pooled.
	var wg sync.WaitGroup
	verdicts := make([]bool, 8)
	for p := range verdicts {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			verdicts[p] = machine.ValidateTree(doc) == nil
		}(p)
	}
	wg.Wait()
	allOK := true
	for _, v := range verdicts {
		allOK = allOK && v
	}
	fmt.Printf("8 concurrent peers, one shared machine: all valid = %v\n", allOK)
}
