// Livefederation: a federation that outlives the validation round.
//
// Every earlier example validates a snapshot: ship fragments (or
// verdicts), decide, done. Here the federation stays up. Two sites on
// TCP loopback host the eurostat docking points with live editors
// attached; a kernel peer joins, pulls each fragment's keyed snapshot,
// and subscribes to the edit logs. One bureau then mutates its
// document — subtree inserts, an invalidating replace, the repairing
// delete — and each edit travels as a delta (operation + prefix-labeled
// address + payload subtree, O(edit + depth) bytes), not as a
// re-shipped fragment.
//
// The kernel peer maintains its verdict by incremental revalidation: a
// checkpointed result tree re-checks only the edited subtree and the
// ancestors whose summaries change, so each update line below shows a
// few hundred bytes revalidated against tens of kilobytes skipped —
// while staying byte-identical to from-scratch validation (that is the
// differential pin in internal/p2p's tests). After every edit the fresh
// verdict flows back to the editing site as a verdict-update frame.
//
// Run with: go run ./examples/livefederation
package main

import (
	"context"
	"fmt"
	"net"
	"time"

	"dxml"
)

func main() {
	tau := dxml.MustParseW3CDTD(dxml.KindNRE, `
		<!ELEMENT eurostat (averages, nationalIndex*)>
		<!ELEMENT averages (Good, index+)+>
		<!ELEMENT nationalIndex (country, Good, (index | value, year))>
		<!ELEMENT index (value, year)>
		<!ELEMENT country (#PCDATA)>
		<!ELEMENT Good (#PCDATA)>
		<!ELEMENT value (#PCDATA)>
		<!ELEMENT year (#PCDATA)>`)
	kernel := dxml.MustParseKernel("eurostat(f0 f1 f2 f3)")
	design := &dxml.DTDDesign{Type: tau, Kernel: kernel}
	typing, ok := design.ExistsPerfect()
	if !ok {
		panic("Figure 4 perfect typing should exist")
	}
	docs := map[string]*dxml.Tree{
		"f0": dxml.MustParseTree(typing[0].Starts[0] + "(averages(Good index(value year)))"),
		"f1": grow(typing[1].Starts[0], 120),
		"f2": grow(typing[2].Starts[0], 40),
		"f3": grow(typing[3].Starts[0], 40),
	}

	// Two editing sites plus the kernel peer: a 3-site loopback
	// federation, as `dxml serve -watch` + `dxml join -watch` would run
	// it. Site A hosts f0/f1, site B hosts f2/f3; every peer gets a
	// live editor.
	editors := map[string]*dxml.LiveEditor{}
	addrs := map[string]string{}
	for _, fns := range [][]string{{"f0", "f1"}, {"f2", "f3"}} {
		served := dxml.NewNetwork(kernel, tau.ToEDTD())
		for _, fn := range fns {
			if err := served.AddPeer(fn, docs[fn], typing[kernel.FuncIndex(fn)]); err != nil {
				panic(err)
			}
			ed, err := served.AttachEditor(fn)
			if err != nil {
				panic(err)
			}
			editors[fn] = ed
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		host := served.ServeTCP(ln)
		defer host.Close()
		for _, fn := range fns {
			addrs[fn] = host.Addr().String()
		}
		fmt.Printf("site %v serving live on %s\n", fns, host.Addr())
	}

	joined := dxml.NewNetwork(kernel, tau.ToEDTD())
	joined.ChunkSize = 512
	sess, err := joined.DialTCP(addrs)
	if err != nil {
		panic(err)
	}
	defer sess.Close()
	joined.Transport = sess
	lv, err := joined.OpenLive(context.Background())
	if err != nil {
		panic(err)
	}
	defer lv.Close()
	fmt.Printf("live: joined 4 docking points, initial verdict valid=%v\n", lv.Valid())

	// One peer mutates: f1's bureau publishes subtree edits. Each
	// arrives at the kernel peer as a delta and is revalidated
	// incrementally.
	ed := editors["f1"]
	apply := func(what string, f func() error) {
		if err := f(); err != nil {
			panic(err)
		}
		up := <-lv.Updates()
		if up.Err != nil {
			panic(up.Err)
		}
		transition := ""
		if up.Changed {
			transition = fmt.Sprintf("  ** verdict %v -> %v", !up.Valid, up.Valid)
		}
		fmt.Printf("%-28s v%d %-7s wire %4d B, revalidated %5d B, skipped %6d B, valid=%v%s\n",
			what, up.Version, up.Op, up.WireBytes, up.Revalidated, up.Skipped, up.Valid, transition)
	}
	entry := dxml.MustParseTree("nationalIndex(country Good index(value year))")
	apply("append a fresh entry:", func() error {
		_, err := ed.InsertChild(nil, 120, entry)
		return err
	})
	apply("replace one deep leaf:", func() error {
		_, err := ed.ReplaceSubtree([]int{60, 1}, dxml.MustParseTree("Good"))
		return err
	})
	apply("break entry 7 (bad content):", func() error {
		_, err := ed.ReplaceSubtree([]int{7}, dxml.MustParseTree("nationalIndex(country)"))
		return err
	})
	apply("repair it (delete the node):", func() error {
		_, err := ed.DeleteSubtree([]int{7})
		return err
	})

	// Verdict updates travel asynchronously; wait for the last one.
	version, valid, known := ed.KernelVerdict()
	for deadline := time.Now().Add(5 * time.Second); version < ed.Version() && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
		version, valid, known = ed.KernelVerdict()
	}
	fmt.Printf("editing site learned via verdict-update: v%d valid=%v (known=%v)\n", version, valid, known)
	t := joined.Stats.Totals()
	fmt.Printf("live wire total: %d messages, %d bytes; incremental revalidation skipped %d of %d bytes\n",
		t.Messages, t.Bytes, t.Skipped, t.Skipped+t.Revalidated)
}

// grow builds a national bureau document with k index entries.
func grow(root string, k int) *dxml.Tree {
	doc := dxml.MustParseTree(root)
	for i := 0; i < k; i++ {
		doc.Children = append(doc.Children, dxml.MustParseTree("nationalIndex(country Good index(value year))"))
	}
	return doc
}
