// Dynamic: the Section 8 outlook — kernel documents that keep evolving
// because a type mentions its own function symbol. Reproduces the paper's
// closing example: w = a f with τ_f = f? b a+ reaches exactly the
// documents a f? (ba+)+, not the one-step reading a f? b a+.
//
// Run with: go run ./examples/dynamic
package main

import (
	"fmt"

	"dxml"
)

func main() {
	ks := dxml.MustParseKernelString("a f1")
	tau := dxml.RegexNFA(dxml.MustParseRegex("f1? b a+"))
	fmt.Println("kernel w = a f1,  self-referential type τ_f = f1? b a+")

	res, err := dxml.DynamicExtensionLang(ks, tau)
	if err != nil {
		panic(err)
	}
	fmt.Printf("documents reachable by repeated extension: %s\n",
		dxml.DisplayRegex(res.Reachable))
	fmt.Printf("fully materialized documents:              %s\n",
		dxml.DisplayRegex(res.Materialized))
	fmt.Println()
	fmt.Println("the naive one-step type a f1? b a+ would miss a b a b a, which")
	fmt.Println("needs two extension rounds:")
	twoRounds := []dxml.Symbol{"a", "b", "a", "b", "a"}
	fmt.Printf("  reachable(a b a b a) = %v\n", res.Materialized.Accepts(twoRounds))
	oneStep := dxml.RegexNFA(dxml.MustParseRegex("a f1? b a+"))
	fmt.Printf("  one-step(a b a b a)  = %v\n", oneStep.Accepts(twoRounds))

	// Center recursion is context-free and refused honestly.
	_, err = dxml.SolveRecursiveTyping("f1", dxml.RegexNFA(dxml.MustParseRegex("a f1 b | c")))
	fmt.Printf("\ncenter-recursive τ_f = a f1 b | c: %v\n", err)
}
