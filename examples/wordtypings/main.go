// Wordtypings: a tour of the string-level typing theory (Sections 5–6) on
// the paper's Examples 2–5 and 9–11 — the perfect automaton Ω(A, w), the
// Dec(Ωi) cell decomposition, and the local/maximal/perfect hierarchy.
//
// Run with: go run ./examples/wordtypings
package main

import (
	"fmt"

	"dxml"
)

func show(name, target, kernel string) *dxml.WordDesign {
	fmt.Printf("\n== %s: τ = %s over w = %s ==\n", name, target, kernel)
	return dxml.MustWordDesign(target, kernel)
}

func printTyping(prefix string, t dxml.WordTyping) {
	fmt.Print(prefix, "(")
	for i, lang := range t {
		if i > 0 {
			fmt.Print(",  ")
		}
		fmt.Print(dxml.DisplayRegex(lang))
	}
	fmt.Println(")")
}

func main() {
	// Example 3: a perfect typing exists.
	d := show("Example 3", "a* b c*", "f1 b f2")
	if typing, ok := d.PerfectTyping(); ok {
		printTyping("  perfect typing: ", typing)
	}

	// Example 2: two maximal local typings, hence no perfect one.
	d = show("Example 2", "a* b c*", "f1 f2")
	if _, ok := d.PerfectTyping(); !ok {
		fmt.Println("  no perfect typing; the maximal local typings are:")
		for _, t := range d.MaximalLocalTypings() {
			printTyping("    ", t)
		}
	}

	// Example 4: unique maximal local, still not perfect — the sound
	// typing (a, b) is not below it.
	d = show("Example 4", "(a b)*", "f1 f2")
	for _, t := range d.MaximalLocalTypings() {
		printTyping("  unique maximal local: ", t)
	}
	sound := dxml.MustWordTyping("a", "b")
	if ok, _ := d.Sound(sound); ok {
		fmt.Println("  (a, b) is sound but incomparable — so no perfect typing")
	}

	// Example 5: three maximal local typings.
	d = show("Example 5", "(a b)+", "f1 f2")
	fmt.Println("  maximal local typings:")
	for _, t := range d.MaximalLocalTypings() {
		printTyping("    ", t)
	}

	// Example 9: the perfect-automaton typing (Ωn) overapproximates.
	d = show("Example 9", "a b c c d e", "a f1 c f2 e")
	omega := d.Perfect().TypingOmega()
	printTyping("  (Ω₂) = ", omega)
	if ok, w := d.Sound(omega); !ok {
		fmt.Printf("  (Ω₂) is not sound: it allows the extension %v\n", w)
	}
	local := dxml.MustWordTyping("b", "c d")
	if d.Local(local) {
		printTyping("  the local typing is ", local)
	}

	// Example 10: Aut(Ωi) members.
	d = show("Example 10", "a (b c)* d", "a f1 f2 d")
	p := d.Perfect()
	for i := 1; i <= 2; i++ {
		fmt.Printf("  Aut(Ω%d):", i)
		for _, la := range p.Aut(i) {
			fmt.Printf("  [%s]", dxml.DisplayRegex(la.Lang))
		}
		fmt.Println()
	}

	// Example 11: no local typing although Ω ≡ τ.
	d = show("Example 11", "a b | b a", "f1 f2")
	if _, ok := d.LocalTyping(); !ok {
		fmt.Println("  no local typing exists…")
	}
	if ok, _ := dxml.Equivalent(d.Perfect().OmegaNFA(), d.Target); ok {
		fmt.Println("  …and yet Ω ≡ τ — compatibility does not imply locality")
	}

	// The Dec(Ω) cells behind the searches (Figure 8).
	fmt.Println("\n== Dec cells of Example 2's Ω₁ ==")
	d = dxml.MustWordDesign("a* b c*", "f1 f2")
	for _, cell := range d.Cells()[0] {
		fmt.Printf("  members %v: %s\n", cell.Members.Sorted(), dxml.DisplayRegex(cell.Lang))
	}
}
