// Multitenant: one host process, many designs, admission control.
//
// Earlier examples run one federation per listener — `dxml serve` for
// one design. Here a single host serves many designs on one TCP port:
// each tenant registers its compiled design under the digest a joining
// peer's session hello carries, sessions are routed to their tenant,
// and every session of a design shares the same immutable validator.
//
// The host is also a budget enforcer. Caps on concurrent sessions and
// resident designs are enforced at the hello: an over-budget or
// unknown-design hello is refused with a typed error the client can
// unwrap (never a hang), and idle designs are evicted LRU when the
// residency cap is hit — their sources rebuilt on the next hello.
//
// Run with: go run ./examples/multitenant
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"

	"dxml"
)

// tenant builds design id: a one-docking-point federation whose digest
// is distinguished by the docking point's name (f<id> enters the
// kernel tree, which enters the digest) and whose hosted fragment
// holds items leaves.
func tenant(id, items int) dxml.HostDesign {
	build := func() (*dxml.Network, error) {
		global := dxml.MustParseDTD(dxml.KindNRE, "root s\ns -> a*")
		kernel := dxml.MustParseKernel(fmt.Sprintf("s(f%d)", id))
		local := dxml.MustParseDTD(dxml.KindNRE, "root r\nr -> a*").ToEDTD()
		doc := dxml.MustParseTree("r")
		for i := 0; i < items; i++ {
			doc.Children = append(doc.Children, dxml.MustParseTree("a"))
		}
		n := dxml.NewNetwork(kernel, global.ToEDTD())
		if err := n.AddPeer(fmt.Sprintf("f%d", id), doc, local); err != nil {
			return nil, err
		}
		return n, nil
	}
	n, err := build()
	if err != nil {
		panic(err)
	}
	return dxml.HostDesign{
		Name:   fmt.Sprintf("tenant-%d", id),
		Digest: n.Digest(),
		Build: func() (map[string]dxml.TransportSource, int64, error) {
			n, err := build()
			if err != nil {
				return nil, 0, err
			}
			return n.HostSources(), n.ResidentEstimate(), nil
		},
	}
}

// client is the joining kernel peer for design id — same kernel and
// global type, so the same digest in its hello.
func client(id int) *dxml.Network {
	global := dxml.MustParseDTD(dxml.KindNRE, "root s\ns -> a*")
	kernel := dxml.MustParseKernel(fmt.Sprintf("s(f%d)", id))
	return dxml.NewNetwork(kernel, global.ToEDTD())
}

func main() {
	const tenants = 8

	// Admission policy: at most 2 concurrent sessions per tenant, at
	// most 4 designs resident at once (the other 4 wait evicted, specs
	// retained, rebuilt on demand).
	reg := dxml.NewHostRegistry(dxml.HostConfig{
		MaxTenantSessions:  2,
		MaxResidentDesigns: 4,
	})
	for id := 0; id < tenants; id++ {
		if err := reg.Register(tenant(id, 8+4*id)); err != nil {
			panic(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	srv := dxml.NewHostServer(reg, ln, httpLn)
	defer srv.Close()
	addr := srv.Addr().String()
	fmt.Printf("one host, %d designs, one port (%s)\n", reg.Len(), addr)

	// Every tenant joins through the same address; the hello's digest
	// picks the design. All verdicts must come back valid.
	allValid := true
	for id := 0; id < tenants; id++ {
		n := client(id)
		sess, err := n.DialTCP(map[string]string{fmt.Sprintf("f%d", id): addr})
		if err != nil {
			panic(err)
		}
		n.Transport = sess
		dist, err := n.ValidateDistributed()
		if err != nil {
			panic(err)
		}
		cent, err := n.ValidateCentralized()
		if err != nil {
			panic(err)
		}
		sess.Close()
		allValid = allValid && dist && cent
	}
	fmt.Printf("all %d tenants valid over one port: %v\n", tenants, allValid)

	// An unregistered design's hello is refused before any fragment
	// moves — with a typed error, not a hang or a mystery string.
	_, err = client(99).DialTCP(map[string]string{"f99": addr})
	fmt.Printf("unknown design refused with typed error: %v\n",
		errors.Is(err, dxml.ErrUnknownDesign))

	// The per-tenant session cap: two sessions hold tenant 0's budget,
	// the third hello bounces with the capacity sentinel.
	hold1, err := client(0).DialTCP(map[string]string{"f0": addr})
	if err != nil {
		panic(err)
	}
	hold2, err := client(0).DialTCP(map[string]string{"f0": addr})
	if err != nil {
		panic(err)
	}
	_, err = client(0).DialTCP(map[string]string{"f0": addr})
	fmt.Printf("third concurrent session refused: %v\n",
		errors.Is(err, dxml.ErrOverCapacity))
	hold1.Close()
	hold2.Close()

	// Residency: 8 designs used, at most 4 resident — the rest were
	// evicted idle and rebuilt when their next session arrived.
	m := reg.Metrics()
	fmt.Printf("resident designs capped: %v, evictions occurred: %v\n",
		m.Resident <= 4, m.Global.Evictions > 0)

	// The HTTP endpoint serves the same counters the registry holds.
	resp, err := http.Get("http://" + srv.HTTPAddr().String() + "/metrics")
	if err != nil {
		panic(err)
	}
	var served dxml.HostMetrics
	if err := json.NewDecoder(resp.Body).Decode(&served); err != nil {
		panic(err)
	}
	resp.Body.Close()
	fmt.Printf("/metrics agrees with registry: %v (%d designs, %d verdicts, %d rejections)\n",
		served.Designs == m.Designs && served.Global.Verdicts == m.Global.Verdicts,
		served.Designs, served.Global.Verdicts, served.Global.Rejections)
}
