// Tcpfederation: the paper's eurostat federation on a real wire.
//
// Earlier examples simulate the federation in one address space. Here
// the resource peers live behind actual TCP sockets: three hosts on
// loopback each serve a slice of the docking points (as `dxml serve`
// would, one per site), and a kernel peer joins them (as `dxml join`),
// running both validation protocols over a length-prefixed binary
// frame protocol — session hello with a design digest, per-fragment
// open/chunk/ack/close frames, and a reject frame that halts a sender
// mid-transfer.
//
// The point demonstrated at the end: verdicts, message counts, frame
// counts and byte totals (including the bytes a mid-transfer rejection
// saves) are identical to the in-process wire on the same documents —
// the transport changes the sockets, not the protocol.
//
// Run with: go run ./examples/tcpfederation
package main

import (
	"fmt"
	"net"
	"time"

	"dxml"
)

func main() {
	tau := dxml.MustParseW3CDTD(dxml.KindNRE, `
		<!ELEMENT eurostat (averages, nationalIndex*)>
		<!ELEMENT averages (Good, index+)+>
		<!ELEMENT nationalIndex (country, Good, (index | value, year))>
		<!ELEMENT index (value, year)>
		<!ELEMENT country (#PCDATA)>
		<!ELEMENT Good (#PCDATA)>
		<!ELEMENT value (#PCDATA)>
		<!ELEMENT year (#PCDATA)>`)
	kernel := dxml.MustParseKernel("eurostat(f0 f1 f2 f3)")
	design := &dxml.DTDDesign{Type: tau, Kernel: kernel}
	typing, ok := design.ExistsPerfect()
	if !ok {
		panic("Figure 4 perfect typing should exist")
	}

	// Per-peer documents: one averages provider, three country bureaus.
	docs := map[string]*dxml.Tree{
		"f0": dxml.MustParseTree(typing[0].Starts[0] + "(averages(Good index(value year) Good index(value year)))"),
		"f1": grow(typing[1].Starts[0], 40, true),
		"f2": grow(typing[2].Starts[0], 60, false),
		"f3": grow(typing[3].Starts[0], 80, true),
	}

	// Three sites on loopback: each host serves a slice of the docking
	// points, exactly as three `dxml serve` processes would.
	sites := [][]string{{"f0", "f1"}, {"f2"}, {"f3"}}
	addrs := map[string]string{}
	for _, fns := range sites {
		served := dxml.NewNetwork(kernel, tau.ToEDTD())
		for _, fn := range fns {
			i := kernel.FuncIndex(fn)
			if err := served.AddPeer(fn, docs[fn], typing[i]); err != nil {
				panic(err)
			}
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		host := served.ServeTCP(ln)
		defer host.Close()
		for _, fn := range fns {
			addrs[fn] = host.Addr().String()
		}
		fmt.Printf("site %v serving on %s\n", fns, host.Addr())
	}

	// The kernel peer joins the three sites and validates over TCP.
	joined := dxml.NewNetwork(kernel, tau.ToEDTD())
	joined.ChunkSize = 512
	sess, err := joined.DialTCP(addrs)
	if err != nil {
		panic(err)
	}
	defer sess.Close()
	joined.Transport = sess

	dist, err := joined.ValidateDistributed()
	if err != nil {
		panic(err)
	}
	distStats := joined.Stats.Totals()
	cent, err := joined.ValidateCentralized()
	if err != nil {
		panic(err)
	}
	tcpStats := joined.Stats.Totals()
	fmt.Printf("over TCP: distributed=%v centralized=%v\n", dist, cent)
	fmt.Printf("  verdict round: %d messages, %d bytes\n", distStats.Messages, distStats.Bytes)
	fmt.Printf("  fragment round: %d frames, %d bytes\n",
		tcpStats.Frames-distStats.Frames, tcpStats.Bytes-distStats.Bytes)

	// The same federation in process: the numbers must agree exactly.
	local := dxml.NewNetwork(kernel, tau.ToEDTD())
	local.ChunkSize = 512
	for fn, doc := range docs {
		if err := local.AddPeer(fn, doc, typing[kernel.FuncIndex(fn)]); err != nil {
			panic(err)
		}
	}
	ldist, _ := local.ValidateDistributed()
	lcent, _ := local.ValidateCentralized()
	localStats := local.Stats.Totals()
	fmt.Printf("in process: distributed=%v centralized=%v\n", ldist, lcent)
	fmt.Printf("wire parity with in-process: %v\n",
		dist == ldist && cent == lcent && tcpStats == localStats)

	// Mid-transfer rejection over real sockets: corrupt one bureau and
	// re-join; the reject frame halts the sender and the unsent bytes
	// are accounted.
	docs["f1"].Children[0] = dxml.MustParseTree("nationalIndex(country)")
	rejoin := dxml.NewNetwork(kernel, tau.ToEDTD())
	rejoin.ChunkSize = 512
	sess2, err := rejoin.DialTCP(addrs)
	if err != nil {
		panic(err)
	}
	defer sess2.Close()
	rejoin.Transport = sess2
	cent2, err := rejoin.ValidateCentralized()
	if err != nil {
		panic(err)
	}
	t := rejoin.Stats.Totals()
	fmt.Printf("after corrupting f1: centralized=%v, %d bytes delivered, %d saved by mid-transfer rejection\n",
		cent2, t.Bytes, t.BytesSaved)

	// Credit-windowed wire: the same fat transfer at window 1 (the old
	// stop-and-wait wire — one chunk, one ack, one round trip, repeat)
	// and at the default window (dxml.DefaultWindow chunks pipelined
	// ahead of the cumulative ack). The verdicts and every traffic
	// counter are identical — the window is a latency knob, not a
	// protocol change — but the pipelined session keeps the pipe full
	// instead of idling one round trip per chunk.
	fatDocs := map[string]*dxml.Tree{
		"f0": docs["f0"], "f2": docs["f2"], "f3": docs["f3"],
		"f1": grow(typing[1].Starts[0], 20000, true),
	}
	fatServed := dxml.NewNetwork(kernel, tau.ToEDTD())
	for fn, doc := range fatDocs {
		if err := fatServed.AddPeer(fn, doc, typing[kernel.FuncIndex(fn)]); err != nil {
			panic(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	fatHost := fatServed.ServeTCP(ln)
	defer fatHost.Close()
	fatAddrs := map[string]string{}
	for _, fn := range kernel.Funcs() {
		fatAddrs[fn] = fatHost.Addr().String()
	}
	run := func(window int) (time.Duration, dxml.Totals) {
		j := dxml.NewNetwork(kernel, tau.ToEDTD())
		j.ChunkSize = 512
		j.Window = window
		s, err := j.DialTCP(fatAddrs)
		if err != nil {
			panic(err)
		}
		defer s.Close()
		j.Transport = s
		start := time.Now()
		if ok, err := j.ValidateCentralized(); err != nil || !ok {
			panic(fmt.Sprintf("windowed run (window=%d): ok=%v err=%v", window, ok, err))
		}
		return time.Since(start), j.Stats.Totals()
	}
	slow, slowTot := run(1)
	fast, fastTot := run(dxml.DefaultWindow)
	fmt.Printf("window=1 (stop-and-wait): %v; window=%d (pipelined): %v — %.1fx\n",
		slow.Round(time.Millisecond), dxml.DefaultWindow, fast.Round(time.Millisecond),
		float64(slow)/float64(fast))
	fmt.Printf("identical totals across windows: %v\n", slowTot == fastTot)
}

// grow builds a national bureau document with k index entries.
func grow(root string, k int, formatA bool) *dxml.Tree {
	doc := dxml.MustParseTree(root)
	entry := "nationalIndex(country Good value year)"
	if formatA {
		entry = "nationalIndex(country Good index(value year))"
	}
	for i := 0; i < k; i++ {
		doc.Children = append(doc.Children, dxml.MustParseTree(entry))
	}
	return doc
}
