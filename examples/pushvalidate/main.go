// Pushvalidate: the push-based incremental pipeline end to end.
//
// The pull front-ends (ValidateReader & co.) assume the whole document
// is behind an io.Reader. On a network that is backwards: bytes arrive
// when they arrive. The push parser inverts control — a Feeder accepts
// chunks as the wire delivers them and Close finalizes the verdict — so
// a peer validates a fragment *while* receiving it, holds only
// O(chunk + depth) memory, and rejects garbage mid-transfer without
// waiting for (or paying for) the rest of the bytes.
//
// The same machinery backs the p2p wire: centralized validation ships
// every fragment in chunk-budget frames spliced straight into the kernel
// peer's validator. This example shows both layers, including the bytes
// a mid-transfer rejection never ships.
//
// Run with: go run ./examples/pushvalidate
package main

import (
	"fmt"

	"dxml"
)

func main() {
	tau := dxml.MustParseDTD(dxml.KindNRE, `
		root eurostat
		eurostat -> averages, nationalIndex*
		averages -> (Good, index+)+
		nationalIndex -> country, Good, (index | value, year)
		index -> value, year`)
	machine := dxml.CompileStream(tau.ToEDTD())

	// A large document serialized once: the "network" below delivers its
	// bytes in small chunks, as TCP would.
	doc := dxml.MustParseTree("eurostat(averages(Good index(value year)))")
	for i := 0; i < 20000; i++ {
		doc.Children = append(doc.Children,
			dxml.MustParseTree("nationalIndex(country Good index(value year))"))
	}
	wire := []byte(doc.XMLString())
	fmt.Printf("document: %d nodes, %d bytes on the wire\n", doc.Size(), len(wire))

	// Push validation: feed 4 KiB frames as they "arrive".
	f := machine.NewFeeder()
	frames := 0
	for off := 0; off < len(wire); off += 4096 {
		end := min(off+4096, len(wire))
		if err := f.Feed(wire[off:end]); err != nil {
			panic(err)
		}
		frames++
	}
	fmt.Printf("push verdict after %d frames: valid = %v\n", frames, f.Close() == nil)

	// Mid-transfer rejection: corrupt a node early in the document and
	// feed again — the error surfaces long before the final frame, and
	// the remaining bytes never need to travel.
	bad := doc.Clone()
	bad.Children[40].Children = bad.Children[40].Children[:1]
	badWire := []byte(bad.XMLString())
	f = machine.NewFeeder()
	fed := 0
	var verdict error
	for off := 0; off < len(badWire) && verdict == nil; off += 4096 {
		end := min(off+4096, len(badWire))
		verdict = f.Feed(badWire[off:end])
		fed = end
	}
	f.Close()
	fmt.Printf("rejected after %d of %d bytes (%d saved): %v\n",
		fed, len(badWire), len(badWire)-fed, verdict)

	// The same pipeline drives the p2p wire. Build the paper's eurostat
	// federation and compare chunk budgets: verdicts and messages are
	// invariant, only framing and rejection savings move.
	kernel := dxml.MustParseKernel("eurostat(f0 f1)")
	design := &dxml.DTDDesign{Type: tau, Kernel: kernel}
	typing, ok := design.ExistsPerfect()
	if !ok {
		panic("no perfect typing")
	}
	docs := []*dxml.Tree{
		dxml.MustParseTree(typing[0].Starts[0] + "(averages(Good index(value year)))"),
		dxml.MustParseTree(typing[1].Starts[0] + "(nationalIndex(country))"), // invalid
	}
	for i := 0; i < 5000; i++ {
		docs[1].Children = append(docs[1].Children,
			dxml.MustParseTree("nationalIndex(country Good value year)"))
	}
	for _, chunk := range []int{64, 4096, -1} {
		n := dxml.NewNetwork(kernel, design.Type.ToEDTD())
		n.ChunkSize = chunk
		for i, fn := range kernel.Funcs() {
			if err := n.AddPeer(fn, docs[i], typing[i]); err != nil {
				panic(err)
			}
		}
		ok, err := n.ValidateCentralized()
		if err != nil {
			panic(err)
		}
		t := n.Stats.Totals()
		fmt.Printf("chunk %6d: valid=%v, %d messages, %d frames, %d bytes shipped, %d bytes saved\n",
			chunk, ok, t.Messages, t.Frames, t.Bytes, t.BytesSaved)
	}
}
