// Eurostat: the paper's running example (Figures 1–6) end to end.
//
//   - Figure 3's DTD τ over the reconstructed kernel T0 yields exactly
//     Figure 4's perfect typing;
//   - Figure 5's τ′ admits no local typing (the A-or-B format choice
//     cannot be controlled locally);
//   - Figure 6's τ″ over T1 = eurostat(f1, nationalIndex(f2), f3) has no
//     perfect typing and exactly two maximal local typings.
//
// Run with: go run ./examples/eurostat
package main

import (
	"fmt"

	"dxml"
)

const figure3 = `
<!ELEMENT eurostat (averages, nationalIndex*)>
<!ELEMENT averages (Good, index+)+>
<!ELEMENT nationalIndex (country, Good, (index | value, year))>
<!ELEMENT index (value, year)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT Good (#PCDATA)>
<!ELEMENT value (#PCDATA)>
<!ELEMENT year (#PCDATA)>
`

func main() {
	fmt.Println("== Figure 3: the global DTD τ ==")
	tau := dxml.MustParseW3CDTD(dxml.KindNRE, figure3)
	fmt.Print(tau)

	// T0: the NCPI kernel — one docking point for the EU-averages
	// provider and one per national statistics bureau (INSEE, Istat,
	// Statistik; see DESIGN.md erratum E1).
	kernel := dxml.MustParseKernel("eurostat(f0 f1 f2 f3)")
	fmt.Printf("\n== Kernel T0 ==\n%s\n  f0=EU averages, f1=INSEE(FR), f2=Istat(IT), f3=Statistik(AT)\n", kernel)

	fmt.Println("\n== Figure 4: the perfect typing of ⟨τ, T0⟩ ==")
	design := &dxml.DTDDesign{Type: tau, Kernel: kernel}
	typing, ok := design.ExistsPerfect()
	if !ok {
		fmt.Println("unexpected: no perfect typing")
		return
	}
	for i, t := range typing {
		fmt.Printf("  f%d: %s -> %s\n", i, t.Starts[0], dxml.DisplayRegex(dxml.RootContent(t)))
	}
	fmt.Println("  (plus τ's rules for nationalIndex, index, …, as in Figure 4)")

	// Figure 1/2: a concrete distributed document and its extension.
	fmt.Println("\n== Figure 2: one extension of T0 ==")
	ext := map[string]*dxml.Tree{
		"f0": dxml.MustParseTree(typing[0].Starts[0] +
			"(averages(Good index(value year) Good index(value year) index(value year)))"),
		"f1": dxml.MustParseTree(typing[1].Starts[0] +
			"(nationalIndex(country Good index(value year)))"),
		"f2": dxml.MustParseTree(typing[2].Starts[0] +
			"(nationalIndex(country Good value year))"),
		"f3": dxml.MustParseTree(typing[3].Starts[0] + "()"),
	}
	for i, f := range kernel.Funcs() {
		fmt.Printf("  %s document locally valid: %v\n", f, typing[i].Validate(ext[f]) == nil)
	}
	doc := kernel.MustExtend(ext)
	fmt.Printf("  extension: %s\n", doc)
	fmt.Printf("  globally valid (guaranteed by soundness): %v\n", tau.Validate(doc) == nil)

	fmt.Println("\n== Figure 5: the bad design τ′ ==")
	tauPrime := dxml.MustParseDTD(dxml.KindNRE, `
		root eurostat
		eurostat -> averages, (natIndA* | natIndB*)
		averages -> (Good, index+)+
		natIndA -> country, Good, index
		natIndB -> country, Good, value, year
		index -> value, year
	`)
	badDesign := &dxml.DTDDesign{Type: tauPrime, Kernel: kernel}
	if _, ok := badDesign.ExistsLocal(); ok {
		fmt.Println("unexpected: τ′ got a local typing")
	} else {
		fmt.Println("  ⟨τ′, T0⟩ admits NO local typing: whether all countries use")
		fmt.Println("  format A or all use format B cannot be controlled locally.")
	}

	fmt.Println("\n== Figure 6: τ″ over T1 = eurostat(f1, nationalIndex(f2), f3) ==")
	tauPP := dxml.MustParseEDTD(dxml.KindNRE, `
		root eurostat
		eurostat -> averages, (natIndA, natIndB)+
		averages -> (Good, index+)+
		natIndA : nationalIndex -> country, Good, index
		natIndB : nationalIndex -> country, Good, value, year
		index -> value, year
	`)
	t1 := dxml.MustParseKernel("eurostat(f1 nationalIndex(f2) f3)")
	edesign := &dxml.EDTDDesign{Type: tauPP, Kernel: t1}
	if _, ok, _ := edesign.ExistsPerfect(); !ok {
		fmt.Println("  no perfect typing (the explicit nationalIndex node may be A or B)")
	}
	typings, err := edesign.MaximalLocalTypings()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("  exactly %d maximal local typings:\n", len(typings))
	for k, ty := range typings {
		fmt.Printf("  typing %d:\n", k+1)
		for i, t := range ty {
			lang := dxml.RootContent(t)
			fmt.Printf("    f%d: root%d -> %s\n", i+1, i+1, dxml.DisplayRegex(lang))
		}
	}
	fmt.Println("  (cf. τ″1.1–τ″3.2 in Section 1; see DESIGN.md erratum E2 for τ″3.1)")
}
