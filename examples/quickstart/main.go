// Quickstart: the smallest end-to-end tour of the library — build a
// distributed design, derive its perfect typing, and validate documents
// locally.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"dxml"
)

func main() {
	// A global type in the paper's arrow-grammar notation: a store
	// document listing items, then a reviews section.
	global := dxml.MustParseDTD(dxml.KindNRE, `
		root store
		store -> item+, reviews
		reviews -> review*
		item -> name, price
		review -> name, stars
	`)

	// The kernel document: the store keeps only the skeleton; items come
	// from the catalog service (f1), reviews from the review service (f2).
	kernel := dxml.MustParseKernel("store(f1 reviews(f2))")

	// Top-down design: can the global type be enforced purely locally?
	design := &dxml.DTDDesign{Type: global, Kernel: kernel}
	typing, ok := design.ExistsPerfect()
	if !ok {
		fmt.Println("no perfect typing — the design is ambiguous at the boundaries")
		return
	}
	fmt.Println("perfect typing found:")
	for i, tau := range typing {
		content := dxml.RegexString(dxml.RegexFromNFA(dxml.RootContent(tau)))
		fmt.Printf("  f%d gets  %s -> %s\n", i+1, tau.Starts[0], content)
	}

	// Each service can now validate its own document in isolation.
	catalogDoc := dxml.MustParseTree("root1(item(name price) item(name price))")
	reviewDoc := dxml.MustParseTree("root2(review(name stars))")
	fmt.Printf("catalog valid locally: %v\n", typing[0].Validate(catalogDoc) == nil)
	fmt.Printf("reviews valid locally: %v\n", typing[1].Validate(reviewDoc) == nil)

	// Soundness: because the typing is local, the materialized document
	// is guaranteed valid — check it explicitly once.
	doc := kernel.MustExtend(map[string]*dxml.Tree{"f1": catalogDoc, "f2": reviewDoc})
	fmt.Printf("materialized document: %s\n", doc)
	fmt.Printf("globally valid: %v\n", global.Validate(doc) == nil)

	// A review service trying to sneak an item in fails locally — before
	// any data moves.
	rogue := dxml.MustParseTree("root2(item(name price))")
	fmt.Printf("rogue reviews rejected locally: %v\n", typing[1].Validate(rogue) != nil)
}
