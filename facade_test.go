package dxml_test

import (
	"testing"

	"dxml"
)

// TestPublicAPIEndToEnd exercises the whole pipeline through the public
// facade only: parse a global type, derive the perfect typing, validate
// documents, run a federation, and decide a bottom-up problem.
func TestPublicAPIEndToEnd(t *testing.T) {
	tau := dxml.MustParseW3CDTD(dxml.KindNRE, `
		<!ELEMENT eurostat (averages, nationalIndex*)>
		<!ELEMENT averages (Good, index+)+>
		<!ELEMENT nationalIndex (country, Good, (index | value, year))>
		<!ELEMENT index (value, year)>
		<!ELEMENT country (#PCDATA)>
		<!ELEMENT Good (#PCDATA)>
		<!ELEMENT value (#PCDATA)>
		<!ELEMENT year (#PCDATA)>`)
	kernel := dxml.MustParseKernel("eurostat(f0 f1)")
	design := &dxml.DTDDesign{Type: tau, Kernel: kernel}
	typing, ok := design.ExistsPerfect()
	if !ok {
		t.Fatal("perfect typing should exist")
	}

	// Local validation through the typing.
	doc := dxml.MustParseTree(typing[1].Starts[0] + "(nationalIndex(country Good value year))")
	if err := typing[1].Validate(doc); err != nil {
		t.Fatalf("local validation failed: %v", err)
	}

	// Federation.
	net := dxml.NewNetwork(kernel, tau.ToEDTD())
	if err := net.AddPeer("f0", dxml.MustParseTree(typing[0].Starts[0]+"(averages(Good index(value year)))"), typing[0]); err != nil {
		t.Fatal(err)
	}
	if err := net.AddPeer("f1", doc, typing[1]); err != nil {
		t.Fatal(err)
	}
	okDist, err := net.ValidateDistributed()
	if err != nil || !okDist {
		t.Fatalf("distributed validation: %v %v", okDist, err)
	}
	mat, err := net.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if err := tau.Validate(mat); err != nil {
		t.Fatalf("materialized doc invalid: %v", err)
	}

	// Bottom-up through the facade.
	res, err := dxml.ConsDTD(kernel, typing, dxml.KindNFA)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatalf("perfect typing should be DTD-consistent: %s", res.Reason)
	}
	if okEq, why := dxml.EquivalentDTD(res.DTD, tau); !okEq {
		t.Fatalf("typeT of the perfect typing should equal τ: %s", why)
	}

	// Word-level facade.
	wd := dxml.MustWordDesign("a* b c*", "f1 b f2")
	if _, ok := wd.PerfectTyping(); !ok {
		t.Fatal("Example 3 perfect typing missing")
	}
	cells := dxml.DecomposeCells([]*dxml.NFA{
		dxml.RegexNFA(dxml.MustParseRegex("a*")),
		dxml.RegexNFA(dxml.MustParseRegex("a+")),
	})
	if len(cells) != 2 {
		t.Fatalf("expected 2 cells, got %d", len(cells))
	}

	// Regex/dRE facade.
	if re, ok := dxml.BuildDRE(dxml.RegexNFA(dxml.MustParseRegex("(a|b)* a"))); !ok {
		t.Fatal("BuildDRE failed")
	} else if det, _ := dxml.RegexDeterministic(re); !det {
		t.Fatal("BuildDRE returned a nondeterministic regex")
	}
	if dxml.OneUnambiguous(dxml.RegexNFA(dxml.MustParseRegex("(a|b)* a (a|b)"))) {
		t.Fatal("OneUnambiguous wrong")
	}
}

// TestFacadeNormalize checks the Lemma 4.10 normalization via the facade.
func TestFacadeNormalize(t *testing.T) {
	e := dxml.MustParseEDTD(dxml.KindNRE, `
		root s0
		s0 -> b1 | b2
		b1 : b -> e | g
		b2 : b -> g | h
	`)
	n, err := dxml.Normalize(e, dxml.KindNFA)
	if err != nil {
		t.Fatal(err)
	}
	if ok, w := dxml.EquivalentEDTD(e, n); !ok {
		t.Fatalf("normalization changed the language on %s", w)
	}
	if got := len(n.Specializations("b")); got != 3 {
		t.Fatalf("expected 3 disjoint b-specializations, got %d", got)
	}
}
