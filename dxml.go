package dxml

import (
	"dxml/internal/axml"
	"dxml/internal/core"
	"dxml/internal/flight"
	"dxml/internal/gen"
	"dxml/internal/host"
	"dxml/internal/live"
	"dxml/internal/obs"
	"dxml/internal/p2p"
	"dxml/internal/schema"
	"dxml/internal/stream"
	"dxml/internal/strlang"
	"dxml/internal/transport"
	"dxml/internal/transport/chaos"
	"dxml/internal/uta"
	"dxml/internal/xmltree"
)

// Trees and documents (Section 2.1.1).
type (
	// Tree is a finite ordered unranked labeled tree.
	Tree = xmltree.Tree
)

// Regular string languages (Section 2.1.2).
type (
	// Symbol is an alphabet symbol (a plain string).
	Symbol = strlang.Symbol
	// NFA is a nondeterministic finite automaton with ε-transitions.
	NFA = strlang.NFA
	// DFA is a partial deterministic finite automaton.
	DFA = strlang.DFA
	// Regex is a regular expression AST (nRE).
	Regex = strlang.Regex
	// Box is a cartesian product of symbol sets.
	Box = strlang.Box
)

// Schema abstractions (Section 2.2).
type (
	// Kind is the content-model formalism R ∈ {nFA, dFA, nRE, dRE}.
	Kind = schema.Kind
	// Content is a content model in one of the four formalisms.
	Content = schema.Content
	// DTD is an R-DTD (Definition 3).
	DTD = schema.DTD
	// EDTD is an R-EDTD (Definition 7); single-type EDTDs are R-SDTDs
	// (Definition 6).
	EDTD = schema.EDTD
)

// The four content-model formalisms.
const (
	KindNFA = schema.KindNFA
	KindDFA = schema.KindDFA
	KindNRE = schema.KindNRE
	KindDRE = schema.KindDRE
)

// Distributed documents (Section 2.3).
type (
	// Kernel is a kernel document T[f1,…,fn].
	Kernel = axml.Kernel
	// KernelString is a kernel string w0 f1 w1 … fn wn.
	KernelString = axml.KernelString
	// KernelBox is a kernel box B0 f1 B1 … fn Bn (Section 7).
	KernelBox = axml.KernelBox
)

// Design problems (Sections 3–7).
type (
	// Typing maps a kernel's functions to types (Section 2.3).
	Typing = core.Typing
	// WordTyping types the functions of a kernel string.
	WordTyping = core.WordTyping
	// ConsResult is the outcome of a cons[S] decision (Definition 11).
	ConsResult = core.ConsResult
	// WordDesign is a top-down design over a kernel string (Section 5).
	WordDesign = core.WordDesign
	// DynamicResult holds the limit languages of a self-referential
	// typing (Section 8).
	DynamicResult = core.DynamicResult
	// BoxDesign is a top-down design over a kernel box (Section 7).
	BoxDesign = core.BoxDesign
	// DTDDesign is a top-down R-DTD design (Section 4.1).
	DTDDesign = core.DTDDesign
	// SDTDDesign is a top-down R-SDTD design (Section 4.2).
	SDTDDesign = core.SDTDDesign
	// EDTDDesign is a top-down R-EDTD design (Section 4.3).
	EDTDDesign = core.EDTDDesign
	// PerfectAutomaton is Ω(A, w) (Section 6, Algorithm 1).
	PerfectAutomaton = core.PerfectAutomaton
	// Cell is a nonempty cell of the Dec(Ωi) decomposition (Section 6.1).
	Cell = core.Cell
	// Kappa assigns specialized-name sets to kernel nodes (Definition 19).
	Kappa = core.Kappa
)

// Distributed validation substrate.
type (
	// Network is an Active XML federation (in-process peers by default;
	// see ServeTCP/DialTCP and Network.Transport for the real wire).
	Network = p2p.Network
	// ResourcePeer owns one docking point's document and local type.
	ResourcePeer = p2p.ResourcePeer
	// Totals is a consistent copy of a federation's traffic counters.
	Totals = p2p.Totals
	// Sampler draws random valid documents from a type.
	Sampler = gen.Sampler
)

// Streaming validation (one pass, memory proportional to document depth,
// not size; see internal/stream).
type (
	// StreamMachine is an EDTD compiled for streaming validation.
	StreamMachine = stream.Machine
	// StreamRunner consumes one document's SAX-style events.
	StreamRunner = stream.Runner
	// StreamHandler receives StartElement/Text/EndElement events.
	StreamHandler = stream.Handler
	// Feeder is the push-parser front-end: it accepts a document's bytes
	// in arbitrary chunks (Feed) as a network delivers them; Close
	// finalizes the verdict. Obtain one with StreamMachine.NewFeeder
	// (validating) or NewFeeder/NewInnerFeeder (custom handlers).
	Feeder = stream.Feeder
)

// Chunked fragment transport (the wire's frame budget).
const (
	// DefaultChunkSize is the fragment frame budget when
	// Network.ChunkSize is zero.
	DefaultChunkSize = p2p.DefaultChunkSize
	// Unchunked ships each fragment as a single frame (the monolithic
	// pre-chunking wire).
	Unchunked = p2p.Unchunked
	// DefaultWindow is the credit window when Network.Window is zero:
	// how many chunks a sender may have on the wire beyond the
	// receiver's cumulative ack. Window 1 degenerates to stop-and-wait;
	// the default keeps the pipe full across round trips.
	DefaultWindow = p2p.DefaultWindow
)

// Wire transport (internal/transport): the federation's verdicts and
// chunked fragment streams run over a Session — in-process by default,
// or real TCP between a hosting process (Network.ServeTCP) and a
// joining kernel peer (Network.DialTCP), as driven by `dxml serve` and
// `dxml join`.
type (
	// TransportSession is the kernel peer's connection to the peers
	// behind the docking points: verdict requests and fragment streams.
	// Assign one to Network.Transport to validate over it.
	TransportSession = transport.Session
	// TransportFragment is the receiver side of one chunked fragment
	// transfer (Next/Abort with synchronous backpressure).
	TransportFragment = transport.Fragment
	// TransportSource is the sender side of one hosted docking point:
	// verdicts and incremental serialization (see Network.HostSources).
	TransportSource = transport.Source
	// PeerHost serves resource peers over TCP (see Network.ServeTCP).
	PeerHost = transport.Host
	// TimeoutError is a liveness failure on the TCP session: which
	// operation missed the deadline and after how long. It unwraps to
	// ErrTimeout.
	TimeoutError = transport.TimeoutError
)

// Session liveness (deadlines + heartbeats on the TCP wire).
var (
	// ErrTimeout is the sentinel every liveness failure unwraps to: a
	// peer missed its deadline. errors.Is(err, ErrTimeout) distinguishes
	// a dead peer from a protocol error or a clean close.
	ErrTimeout = transport.ErrTimeout
	// ErrUnknownDesign is the sentinel a refused hello unwraps to when
	// the host does not serve the dialed design's digest.
	ErrUnknownDesign = transport.ErrUnknownDesign
	// ErrOverCapacity is the sentinel a refused hello (or stream) unwraps
	// to when the host's admission control rejects it: back off and
	// retry, the host is alive but full.
	ErrOverCapacity = transport.ErrOverCapacity
	// ErrInvalidWindow is the typed rejection of a nonsensical credit
	// window (negative Network.Window, or a non-positive -window flag):
	// configuration errors surface at dial/flag time, never as a wire
	// stall.
	ErrInvalidWindow = p2p.ErrInvalidWindow
)

// Multi-tenant federation hosting (internal/host): one server process
// keeps a registry of designs keyed by the digest every session hello
// carries, shares one compiled validator per design across all of its
// sessions, enforces admission caps and resident-memory budgets with
// typed refusals, evicts idle designs LRU, and reports per-tenant and
// global counters over HTTP — the machinery behind `dxml host` and
// `dxml register`.
type (
	// HostRegistry is the multi-tenant core: designs keyed by digest,
	// admission control, LRU residency, counters. It implements the
	// transport's Router, so one listener serves every registered design.
	HostRegistry = host.Registry
	// HostConfig is the admission-control and budget policy (zero caps
	// mean unlimited).
	HostConfig = host.Config
	// HostDesign is one registered tenant: name, digest, and the builder
	// that materializes its serving state on first use.
	HostDesign = host.Design
	// HostServer is the process-level host: the registry behind one TCP
	// federation listener plus the HTTP health/metrics endpoint.
	HostServer = host.Server
	// HostMetrics is the host-wide snapshot /metrics serves.
	HostMetrics = host.Metrics
	// HostTenantMetrics is one design's externally visible state.
	HostTenantMetrics = host.TenantMetrics
	// HostCounters is one scope's (tenant or global) traffic counters,
	// mirroring the protocol-level Stats clients keep.
	HostCounters = host.CounterSnapshot
	// RefusedError is a hello refused by the host: the machine-readable
	// code plus the reason; it unwraps to ErrUnknownDesign or
	// ErrOverCapacity.
	RefusedError = transport.RefusedError
)

var (
	// NewHostRegistry builds an empty design registry under a config's
	// caps.
	NewHostRegistry = host.NewRegistry
	// NewHostServer serves a registry's designs on a TCP listener, with
	// an optional HTTP listener for /healthz and /metrics.
	NewHostServer = host.NewServer
	// ErrDuplicateDesign is the sentinel Register's duplicate-digest
	// refusal unwraps to (the /register endpoint maps it to 409).
	ErrDuplicateDesign = host.ErrDuplicateDesign
	// ErrDuplicateName is the sentinel for a taken tenant name.
	ErrDuplicateName = host.ErrDuplicateName
)

// Telemetry (internal/obs): an allocation-free observability substrate —
// atomic counters, fixed-bucket latency/size histograms, and a
// ring-buffered structured trace — threaded through the transport, the
// federation, the live session, and the multi-tenant host. A nil *Obs is
// the no-op sink: every hook degrades to a nil check, so uninstrumented
// runs pay nothing. Assign one to Network.Obs / HostConfig.Obs and read
// it back as Prometheus text (WritePrometheus, or the host's /metrics
// with Accept: text/plain), expvar/pprof (ObsDebugServer), or JSONL
// trace spans (OpenTrace) whose trace IDs stitch one fragment's timeline
// across the two processes of a TCP session.
type (
	// Obs is the telemetry collector; nil is the no-op sink.
	Obs = obs.Collector
	// ObsTraceLog is a structured span sink: an in-memory ring plus an
	// optional JSONL writer. Attach with Obs.SetTrace.
	ObsTraceLog = obs.TraceLog
	// ObsSpan is one trace event: a named interval with the session's
	// trace ID, so sender and receiver spans stitch into one timeline.
	ObsSpan = obs.Span
	// ObsHistSnapshot is a histogram's consistent copy (count, sum,
	// power-of-two buckets, quantile estimates).
	ObsHistSnapshot = obs.HistSnapshot
)

var (
	// NewObs builds an active collector (use nil for the no-op sink).
	NewObs = obs.New
	// OpenTrace creates a JSONL span log at path; attach it with
	// Obs.SetTrace and Close it on shutdown (the CLI's -trace flag).
	OpenTrace = obs.OpenTrace
	// NewTraceLog builds a span log over any writer (tests use a buffer).
	NewTraceLog = obs.NewTraceLog
	// WritePrometheus renders a collector in Prometheus text exposition
	// format 0.0.4.
	WritePrometheus = obs.WritePrometheus
	// ObsDebugServer starts a standalone pprof+expvar HTTP server (the
	// CLI's -debug-http flag on serve and join).
	ObsDebugServer = obs.DebugServer
)

// BuildVersion reports the version string stamped at link time with
// -ldflags "-X dxml/internal/obs.Version=v1.2.3" ("dev" otherwise); the
// host's /healthz and the expvar dump carry it.
func BuildVersion() string { return obs.Version }

const (
	// DefaultHeartbeat is the client ping interval through idle
	// stretches (Config.Heartbeat zero value).
	DefaultHeartbeat = transport.DefaultHeartbeat
	// DefaultTimeout is the session liveness window (deadline on every
	// frame read and write).
	DefaultTimeout = transport.DefaultTimeout
)

// Fault injection (internal/transport/chaos): deterministic, seed-driven
// wrappers that inject connection drops, delays, truncation, stalled
// acks, and duplicate delivery — the chaos seam behind `dxml serve
// -chaos` and the differential fault corpus in the tests.
var (
	// NewChaosListener wraps a listener so accepted connections are
	// seed-deterministically doomed to die after a byte budget — the
	// host side of `dxml serve -chaos seed`.
	NewChaosListener = chaos.NewListener
)

// ChaosListener is the fault-injecting listener NewChaosListener
// returns; SetOnFault hooks its injected drops into the flight
// recorder's postmortem dumper.
type ChaosListener = chaos.Listener

// Flight recorder (internal/flight): the federation's black box. A
// FlightRecorder taps every wire frame (both transports) into a bounded
// ring and an optional full capture file; on any typed failure the
// process dumps a postmortem bundle — frames, trace spans, metrics —
// that `dxml inspect` decodes and `dxml replay` re-validates offline.
type (
	// TransportTap is the frame-observation seam both transports expose:
	// assign one to Network.Tap (the FlightRecorder implements it).
	TransportTap = transport.Tap
	// FlightRecorder is the bounded frame ring + capture sink; nil
	// records nothing.
	FlightRecorder = flight.Recorder
	// FlightOptions bounds a recorder (ring frames, per-frame bytes).
	FlightOptions = flight.Options
	// FlightFrame is one recorded frame: direction, session trace ID,
	// timestamps, and the (possibly cap-truncated) wire bytes.
	FlightFrame = flight.Frame
	// FlightRecord is one capture-file entry.
	FlightRecord = flight.Record
	// FlightBundle is a postmortem: frames + spans + metrics in one
	// self-contained JSON artifact.
	FlightBundle = flight.Bundle
	// FlightDumper writes postmortem bundles on typed failures, bounded
	// by a dump limit.
	FlightDumper = flight.Dumper
	// FrameInfo is one wire frame decoded for inspection.
	FrameInfo = transport.FrameInfo
	// ObsMetricsSnapshot is a collector's point-in-time export, the
	// metrics half of a postmortem bundle.
	ObsMetricsSnapshot = obs.MetricsSnapshot
)

var (
	// NewFlightRecorder builds a bounded flight recorder.
	NewFlightRecorder = flight.NewRecorder
	// ReadCaptureFile decodes a binary capture file from disk.
	ReadCaptureFile = flight.ReadCaptureFile
	// ReadCapture decodes a capture byte stream.
	ReadCapture = flight.ReadCapture
	// ReadBundle loads a postmortem bundle JSON from disk.
	ReadBundle = flight.ReadBundle
	// ClassifyFailure names a typed failure ("timeout", "refused",
	// "injected", "codec", or "error") for bundle kinds and filenames.
	ClassifyFailure = flight.Classify
	// DecodeFrame decodes one frame's wire bytes for inspection; it
	// handles capture-truncated frames gracefully and never panics.
	DecodeFrame = transport.DecodeFrame
	// FrameTypeName names a wire frame-type byte ("chunk", "ack", ...).
	FrameTypeName = transport.FrameTypeName
	// ErrCodec is the sentinel structural frame-decode failures unwrap
	// to: garbage on the wire, as opposed to truncation or timeout.
	ErrCodec = transport.ErrCodec
	// EscapeLabelValue escapes a string for a quoted Prometheus label
	// value (backslash, quote, newline — the 0.0.4 grammar's escapes).
	EscapeLabelValue = obs.EscapeLabelValue
)

// Live federation (internal/live + the live session mode): editing
// peers publish subtree edits over prefix-labeled node addresses, and
// the kernel peer maintains the global verdict by incremental
// revalidation instead of re-validating the extension from scratch.
type (
	// LiveEditor is a peer's edit publisher: a versioned, prefix-labeled
	// document plus the ordered edit log subscribers drain. Attach one
	// with Network.AttachEditor; then Network.OpenLive subscribes to it
	// over any transport.
	LiveEditor = live.Editor
	// LiveEdit is one entry of an edit log: a subtree replace, insert,
	// or delete at a stable prefix address.
	LiveEdit = live.Edit
	// LiveDoc is a versioned, prefix-labeled fragment replica.
	LiveDoc = live.Doc
	// LiveFederation is the kernel peer's live session: fragment
	// replicas plus the incrementally revalidated global verdict (see
	// Network.OpenLive).
	LiveFederation = p2p.LiveFederation
	// LiveUpdate reports one applied edit: the verdict after it, the
	// revalidated-vs-skipped byte split, and the wire cost. Its Health
	// field reports feed transitions (stale, recovered, down) during
	// outages.
	LiveUpdate = p2p.LiveUpdate
	// Health is a live feed's state transition: HealthLive for ordinary
	// per-edit updates, HealthStale while a dropped feed reconnects,
	// HealthRecovered after catch-up, HealthDown when recovery failed.
	Health = p2p.Health
	// ReconnectPolicy governs live-feed recovery: exponential backoff
	// with jitter between resubscription attempts (Network.Reconnect).
	// The zero value disables reconnection.
	ReconnectPolicy = p2p.ReconnectPolicy
	// Incremental is a checkpointed result tree: per-node content-DFA
	// summaries over a document or a kernel extension, updated in
	// O(edit + ancestor chain) per subtree edit (see
	// StreamMachine.NewIncremental and NewKernelIncremental).
	Incremental = stream.Incremental
)

// The live edit operations.
const (
	OpReplace = live.OpReplace
	OpInsert  = live.OpInsert
	OpDelete  = live.OpDelete
)

// The live feed health transitions.
const (
	HealthLive      = p2p.HealthLive
	HealthStale     = p2p.HealthStale
	HealthRecovered = p2p.HealthRecovered
	HealthDown      = p2p.HealthDown
)

// NewLiveEditor wraps a document in a fresh live editor.
var NewLiveEditor = live.NewEditor

// Unranked tree automata (Section 2.1.3).
type (
	// NUTA is a nondeterministic unranked tree automaton.
	NUTA = uta.NUTA
	// DUTA is its bottom-up determinization.
	DUTA = uta.DUTA
)

// Parsing and construction helpers.
var (
	// ParseTree parses the paper's term syntax, e.g. "s0(a f1 b(f2))".
	ParseTree = xmltree.Parse
	// MustParseTree panics on error.
	MustParseTree = xmltree.MustParse
	// ParseXML reads an XML document's element structure.
	ParseXML = xmltree.ParseXML

	// ParseRegex parses the concrete regex syntax ("a, b* | c?").
	ParseRegex = strlang.ParseRegex
	// MustParseRegex panics on error.
	MustParseRegex = strlang.MustParseRegex
	// RegexNFA is the Glushkov construction.
	RegexNFA = strlang.RegexNFA
	// RegexString renders a regex.
	RegexString = strlang.RegexString
	// RegexFromNFA recovers a regex by state elimination.
	RegexFromNFA = strlang.RegexFromNFA
	// DisplayRegex renders an automaton's language readably.
	DisplayRegex = strlang.DisplayRegex
	// Equivalent decides string-language equivalence with a witness.
	Equivalent = strlang.Equivalent
	// Included decides string-language inclusion with a witness.
	Included = strlang.Included
	// RegexDeterministic is the syntactic dRE test.
	RegexDeterministic = strlang.RegexDeterministic
	// OneUnambiguous decides one-unamb[R] (Definition 2).
	OneUnambiguous = strlang.OneUnambiguous
	// BuildDRE constructs a deterministic regular expression when one
	// exists (Proposition 3.6).
	BuildDRE = strlang.BuildDRE

	// ParseDTD parses the arrow-grammar notation of the paper's figures.
	ParseDTD = schema.ParseDTD
	// MustParseDTD panics on error.
	MustParseDTD = schema.MustParseDTD
	// ParseW3CDTD parses <!ELEMENT …> declarations (Figure 3).
	ParseW3CDTD = schema.ParseW3CDTD
	// MustParseW3CDTD panics on error.
	MustParseW3CDTD = schema.MustParseW3CDTD
	// ParseEDTD parses the arrow-grammar notation with specializations.
	ParseEDTD = schema.ParseEDTD
	// MustParseEDTD panics on error.
	MustParseEDTD = schema.MustParseEDTD
	// Normalize produces the normalized EDTD of Lemma 4.10.
	Normalize = schema.Normalize
	// EquivalentDTD decides equiv[R-DTD] (Proposition 4.1).
	EquivalentDTD = schema.EquivalentDTD
	// EquivalentSDTD decides equiv[R-SDTD].
	EquivalentSDTD = schema.EquivalentSDTD
	// EquivalentEDTD decides equiv[R-EDTD] (Theorem 4.7).
	EquivalentEDTD = schema.EquivalentEDTD

	// ParseKernel parses a kernel document ("eurostat(f0 f1)").
	ParseKernel = axml.ParseKernel
	// MustParseKernel panics on error.
	MustParseKernel = axml.MustParseKernel
	// ParseKernelString parses a kernel string ("a f1 c f2 e").
	ParseKernelString = axml.ParseKernelString
	// MustParseKernelString panics on error.
	MustParseKernelString = axml.MustParseKernelString

	// Compose builds T(τn) (Section 3.1, Theorem 3.2).
	Compose = core.Compose
	// ConsEDTD decides cons[R-EDTD] and builds typeT(τn) (Corollary 3.3).
	ConsEDTD = core.ConsEDTD
	// ConsSDTD decides cons[R-SDTD] (Theorem 3.10).
	ConsSDTD = core.ConsSDTD
	// ConsDTD decides cons[R-DTD] (Theorem 3.13).
	ConsDTD = core.ConsDTD
	// DTDTyping lifts DTD local types into a typing.
	DTDTyping = core.DTDTyping
	// RootContent returns the forest language a type allows its function
	// to contribute.
	RootContent = core.RootContent
	// MustWordTyping parses regexes into a word typing.
	MustWordTyping = core.MustWordTyping
	// MustWordDesign builds a word design from a regex and a kernel
	// string.
	MustWordDesign = core.MustWordDesign
	// NewWordDesign builds a word design.
	NewWordDesign = core.NewWordDesign
	// NewBoxDesign builds a box design.
	NewBoxDesign = core.NewBoxDesign
	// BuildPerfect constructs the perfect automaton Ω(A, B).
	BuildPerfect = core.BuildPerfect
	// DecomposeCells enumerates the nonempty Dec cells (Figure 8).
	DecomposeCells = core.DecomposeCells
	// SolveRecursiveTyping solves self-referential types (Section 8).
	SolveRecursiveTyping = core.SolveRecursiveTyping
	// DynamicExtensionLang computes the documents reachable by repeated
	// extension of a self-referential design (Section 8).
	DynamicExtensionLang = core.DynamicExtensionLang

	// NewNetwork builds a simulated federation.
	NewNetwork = p2p.NewNetwork
	// NewSampler builds a random-document sampler for a type.
	NewSampler = gen.New

	// CompileStream compiles an EDTD into a reusable streaming validator
	// (single-type EDTDs get the deterministic one-pass fast path).
	CompileStream = stream.Compile
	// NewFeeder builds a push parser forwarding events to a handler.
	NewFeeder = stream.NewFeeder
	// NewInnerFeeder builds a push parser that skips the root element's
	// own events (the forest a docking point contributes).
	NewInnerFeeder = stream.NewInnerFeeder
	// FeedReader pumps a reader through a Feeder in chunks and closes it.
	FeedReader = stream.FeedReader
	// StreamXML feeds one XML document's events from a reader into a
	// handler.
	StreamXML = stream.StreamXML
	// StreamXMLInner feeds the events inside a document's root (the forest
	// a docking point contributes).
	StreamXMLInner = stream.StreamXMLInner
	// StreamTree feeds a materialized tree's events into a handler.
	StreamTree = stream.StreamTree
	// StreamKernel streams a kernel document's extension, pausing at each
	// docking point for the caller to inject the fragment's events.
	StreamKernel = stream.StreamKernel
)
