package axml

import (
	"strings"
	"testing"

	"dxml/internal/strlang"
	"dxml/internal/xmltree"
)

func TestParseKernel(t *testing.T) {
	k := MustParseKernel("eurostat(f1 nationalIndex(f2) f3)")
	if got := strings.Join(k.Funcs(), " "); got != "f1 f2 f3" {
		t.Errorf("Funcs = %q", got)
	}
	if !k.IsFunc("f2") || k.IsFunc("nationalIndex") {
		t.Error("IsFunc wrong")
	}
	if k.FuncIndex("f3") != 2 || k.FuncIndex("zz") != -1 {
		t.Error("FuncIndex wrong")
	}
	if got := strings.Join(k.ElementLabels(), " "); got != "eurostat nationalIndex" {
		t.Errorf("ElementLabels = %q", got)
	}
}

func TestKernelWellFormedness(t *testing.T) {
	// Function as root.
	if _, err := NewKernel(xmltree.MustParse("f1(a)"), []string{"f1"}); err == nil {
		t.Error("function root accepted")
	}
	// Function with children.
	if _, err := NewKernel(xmltree.MustParse("s(f1(a))"), []string{"f1"}); err == nil {
		t.Error("non-leaf function accepted")
	}
	// Duplicate function: the paper's T1 = s(f f) example (condition iii).
	if _, err := NewKernel(xmltree.MustParse("s(f1 f1)"), []string{"f1"}); err == nil {
		t.Error("duplicate function accepted")
	}
}

func TestExtend(t *testing.T) {
	// Paper example (§2.3): T0 = s(a f1 b(f2)) with resources providing
	// s1(c(dd)) and s2(d(ef)) extends to s(a c(dd) b(d(ef))).
	k := MustParseKernel("s(a f1 b(f2))")
	ext := map[string]*xmltree.Tree{
		"f1": xmltree.MustParse("s1(c(d d))"),
		"f2": xmltree.MustParse("s2(d(e f))"),
	}
	got, err := k.Extend(ext)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "s(a c(d d) b(d(e f)))" {
		t.Errorf("Extend = %s", got)
	}
	// Forest semantics: a root with several children contributes them all.
	ext["f1"] = xmltree.MustParse("s1(c c c)")
	got = k.MustExtend(ext)
	if got.String() != "s(a c c c b(d(e f)))" {
		t.Errorf("forest Extend = %s", got)
	}
	// Empty forest: a root with no children erases the docking point.
	ext["f1"] = xmltree.MustParse("s1")
	got = k.MustExtend(ext)
	if got.String() != "s(a b(d(e f)))" {
		t.Errorf("empty Extend = %s", got)
	}
	// Missing function.
	if _, err := k.Extend(map[string]*xmltree.Tree{"f1": ext["f1"]}); err == nil {
		t.Error("missing extension accepted")
	}
	// Extension must not mutate the kernel.
	if k.Tree().String() != "s(a f1 b(f2))" {
		t.Error("kernel mutated by Extend")
	}
}

func TestKernelString(t *testing.T) {
	ks := MustParseKernelString("a f1 c f2 e")
	if ks.NumFuncs() != 2 {
		t.Fatalf("NumFuncs = %d", ks.NumFuncs())
	}
	if ks.String() != "a f1 c f2 e" {
		t.Errorf("String = %q", ks.String())
	}
	got, err := ks.Extend([][]strlang.Symbol{{"b"}, {"c", "d"}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, "") != "abccde" {
		t.Errorf("Extend = %v", got)
	}
	if _, err := ks.Extend([][]strlang.Symbol{{"b"}}); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := ParseKernelString("a f1 f1"); err == nil {
		t.Error("duplicate function accepted")
	}
	// Leading/trailing/empty words.
	ks2 := MustParseKernelString("f1 f2")
	if len(ks2.Words) != 3 || len(ks2.Words[0]) != 0 {
		t.Errorf("Words = %v", ks2.Words)
	}
}

func TestKernelBox(t *testing.T) {
	ks := MustParseKernelString("a f1 b")
	kb := ks.Box()
	if kb.NumFuncs() != 1 {
		t.Fatal("NumFuncs")
	}
	if kb.String() != "{a} f1 {b}" {
		t.Errorf("String = %q", kb.String())
	}
	if _, err := NewKernelBox([]strlang.Box{{}}, []string{"f1"}); err == nil {
		t.Error("wrong arity accepted")
	}
}
