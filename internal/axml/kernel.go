// Package axml implements distributed XML documents in the Active XML
// style used by the paper (Section 2.3): kernel documents T[f1,…,fn] whose
// function-labeled leaves are docking points for external resources, their
// extensions (materialization), kernel strings w0 f1 w1 … fn wn and kernel
// boxes B0 f1 B1 … fn Bn.
package axml

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"dxml/internal/strlang"
	"dxml/internal/xmltree"
)

// Kernel is a kernel document T[f1,…,fn]: a tree over element and function
// names where (i) the root is an element node, (ii) function nodes are
// leaves, and (iii) no function symbol occurs twice.
type Kernel struct {
	tree  *xmltree.Tree
	funcs []string // in document (left-to-right) order
	isFn  map[string]bool
}

// defaultFuncPattern matches the paper's f1, f2, … naming convention used
// by ParseKernel's auto-detection.
var defaultFuncPattern = regexp.MustCompile(`^f[0-9]+$`)

// NewKernel wraps a tree whose function nodes carry the given labels. The
// tree is not copied. It fails unless conditions (i)–(iii) hold.
func NewKernel(t *xmltree.Tree, funcNames []string) (*Kernel, error) {
	isFn := make(map[string]bool, len(funcNames))
	for _, f := range funcNames {
		isFn[f] = true
	}
	k := &Kernel{tree: t, isFn: isFn}
	if isFn[t.Label] {
		return nil, fmt.Errorf("axml: root %s is a function node", t.Label)
	}
	seen := map[string]bool{}
	var err error
	t.Walk(func(n *xmltree.Tree, anc []string) bool {
		if !isFn[n.Label] {
			return true
		}
		if !n.IsLeaf() {
			err = fmt.Errorf("axml: function node %s is not a leaf", n.Label)
			return false
		}
		if seen[n.Label] {
			err = fmt.Errorf("axml: function %s occurs twice", n.Label)
			return false
		}
		seen[n.Label] = true
		k.funcs = append(k.funcs, n.Label)
		return true
	})
	if err != nil {
		return nil, err
	}
	return k, nil
}

// ParseKernel parses the term syntax, treating labels matching f<digits>
// as function symbols (the paper's convention), e.g.
// "eurostat(f1 nationalIndex(f2) f3)".
func ParseKernel(src string) (*Kernel, error) {
	t, err := xmltree.Parse(src)
	if err != nil {
		return nil, err
	}
	var fns []string
	t.Walk(func(n *xmltree.Tree, _ []string) bool {
		if defaultFuncPattern.MatchString(n.Label) {
			fns = append(fns, n.Label)
		}
		return true
	})
	return NewKernel(t, fns)
}

// MustParseKernel is ParseKernel panicking on error.
func MustParseKernel(src string) *Kernel {
	k, err := ParseKernel(src)
	if err != nil {
		panic(err)
	}
	return k
}

// Tree returns the underlying tree (shared; treat as read-only).
func (k *Kernel) Tree() *xmltree.Tree { return k.tree }

// Funcs returns the function symbols f1,…,fn in document order.
func (k *Kernel) Funcs() []string { return append([]string(nil), k.funcs...) }

// NumFuncs returns n.
func (k *Kernel) NumFuncs() int { return len(k.funcs) }

// IsFunc reports whether label is one of the kernel's function symbols.
func (k *Kernel) IsFunc(label string) bool { return k.isFn[label] }

// FuncIndex returns the position (0-based) of the function symbol, or -1.
func (k *Kernel) FuncIndex(f string) int {
	for i, g := range k.funcs {
		if g == f {
			return i
		}
	}
	return -1
}

// ElementLabels returns the sorted element (non-function) labels of the
// kernel.
func (k *Kernel) ElementLabels() []string {
	set := map[string]struct{}{}
	k.tree.Walk(func(n *xmltree.Tree, _ []string) bool {
		if !k.isFn[n.Label] {
			set[n.Label] = struct{}{}
		}
		return true
	})
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// String renders the kernel in term syntax.
func (k *Kernel) String() string { return k.tree.String() }

// Extend materializes the kernel with the given extension: each function
// node fi is replaced by the forest of trees directly connected to the
// root of ext[fi] (Section 2.3). Every function must be mapped.
func (k *Kernel) Extend(ext map[string]*xmltree.Tree) (*xmltree.Tree, error) {
	for _, f := range k.funcs {
		if ext[f] == nil {
			return nil, fmt.Errorf("axml: no extension for function %s", f)
		}
	}
	var rec func(n *xmltree.Tree) []*xmltree.Tree
	rec = func(n *xmltree.Tree) []*xmltree.Tree {
		if k.isFn[n.Label] {
			forest := make([]*xmltree.Tree, 0, len(ext[n.Label].Children))
			for _, c := range ext[n.Label].Children {
				forest = append(forest, c.Clone())
			}
			return forest
		}
		out := &xmltree.Tree{Label: n.Label}
		for _, c := range n.Children {
			out.Children = append(out.Children, rec(c)...)
		}
		return []*xmltree.Tree{out}
	}
	res := rec(k.tree)
	return res[0], nil
}

// MustExtend is Extend panicking on error.
func (k *Kernel) MustExtend(ext map[string]*xmltree.Tree) *xmltree.Tree {
	t, err := k.Extend(ext)
	if err != nil {
		panic(err)
	}
	return t
}

// KernelString is a kernel string w0 f1 w1 … fn wn over symbols and
// function names (Section 2.3): Words has n+1 entries and Funcs n.
type KernelString struct {
	Words [][]strlang.Symbol
	Funcs []string
}

// ParseKernelString parses a whitespace-separated kernel string such as
// "a f1 c f2 e", using the f<digits> convention for functions.
func ParseKernelString(src string) (*KernelString, error) {
	ks := &KernelString{Words: [][]strlang.Symbol{nil}}
	seen := map[string]bool{}
	for _, tok := range strings.Fields(src) {
		if defaultFuncPattern.MatchString(tok) {
			if seen[tok] {
				return nil, fmt.Errorf("axml: function %s occurs twice", tok)
			}
			seen[tok] = true
			ks.Funcs = append(ks.Funcs, tok)
			ks.Words = append(ks.Words, nil)
		} else {
			ks.Words[len(ks.Words)-1] = append(ks.Words[len(ks.Words)-1], tok)
		}
	}
	return ks, nil
}

// MustParseKernelString is ParseKernelString panicking on error.
func MustParseKernelString(src string) *KernelString {
	ks, err := ParseKernelString(src)
	if err != nil {
		panic(err)
	}
	return ks
}

// NewKernelString builds a kernel string from explicit parts. len(words)
// must be len(funcs)+1.
func NewKernelString(words [][]strlang.Symbol, funcs []string) (*KernelString, error) {
	if len(words) != len(funcs)+1 {
		return nil, fmt.Errorf("axml: kernel string needs %d words for %d functions, got %d",
			len(funcs)+1, len(funcs), len(words))
	}
	return &KernelString{Words: words, Funcs: funcs}, nil
}

// NumFuncs returns n.
func (ks *KernelString) NumFuncs() int { return len(ks.Funcs) }

// String renders the kernel string.
func (ks *KernelString) String() string {
	var parts []string
	for i, w := range ks.Words {
		parts = append(parts, w...)
		if i < len(ks.Funcs) {
			parts = append(parts, ks.Funcs[i])
		}
	}
	return strings.Join(parts, " ")
}

// Extend returns the extension of the kernel string with the given strings
// substituted for the functions.
func (ks *KernelString) Extend(subs [][]strlang.Symbol) ([]strlang.Symbol, error) {
	if len(subs) != len(ks.Funcs) {
		return nil, fmt.Errorf("axml: %d substitutions for %d functions", len(subs), len(ks.Funcs))
	}
	var out []strlang.Symbol
	for i, w := range ks.Words {
		out = append(out, w...)
		if i < len(subs) {
			out = append(out, subs[i]...)
		}
	}
	return out, nil
}

// KernelBox is a kernel box B0 f1 B1 … fn Bn (Section 7): like a kernel
// string but each inter-function part is a box (a product of symbol sets).
type KernelBox struct {
	Boxes []strlang.Box
	Funcs []string
}

// NewKernelBox builds a kernel box. len(boxes) must be len(funcs)+1.
func NewKernelBox(boxes []strlang.Box, funcs []string) (*KernelBox, error) {
	if len(boxes) != len(funcs)+1 {
		return nil, fmt.Errorf("axml: kernel box needs %d boxes for %d functions, got %d",
			len(funcs)+1, len(funcs), len(boxes))
	}
	return &KernelBox{Boxes: boxes, Funcs: funcs}, nil
}

// FromString lifts a kernel string to the kernel box whose boxes are the
// singleton sets of its symbols.
func (ks *KernelString) Box() *KernelBox {
	boxes := make([]strlang.Box, len(ks.Words))
	for i, w := range ks.Words {
		box := make(strlang.Box, len(w))
		for j, s := range w {
			box[j] = []strlang.Symbol{s}
		}
		boxes[i] = box
	}
	return &KernelBox{Boxes: boxes, Funcs: ks.Funcs}
}

// NumFuncs returns n.
func (kb *KernelBox) NumFuncs() int { return len(kb.Funcs) }

// String renders the kernel box.
func (kb *KernelBox) String() string {
	var parts []string
	for i, b := range kb.Boxes {
		for _, set := range b {
			parts = append(parts, "{"+strings.Join(set, ",")+"}")
		}
		if i < len(kb.Funcs) {
			parts = append(parts, kb.Funcs[i])
		}
	}
	return strings.Join(parts, " ")
}
