package transport

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"strings"
	"testing"
)

// sampleFrames covers every frame type with representative payloads.
func sampleFrames() []frame {
	return []frame{
		{typ: frameHello, flag: protocolVersion, id: 4096, win: 32, data: Digest("design")},
		{typ: frameHello, flag: protocolVersion, id: 4096, win: math.MaxUint32, data: Digest("design")},
		{typ: frameHello, flag: protocolVersion, id: 4096, win: 0, data: Digest("design")},
		{typ: frameWelcome, flag: protocolVersion, data: Digest("design")},
		{typ: frameError, str: "boom"},
		{typ: frameError},
		{typ: frameVerdictReq, id: 7, str: "f1"},
		{typ: frameVerdict, id: 7, flag: 1},
		{typ: frameVerdictCancel, id: 7},
		{typ: frameVerdict, id: 8, flag: 0},
		{typ: frameOpen, id: 9, str: "f2"},
		{typ: frameBegin, id: 9, size: 1 << 40, win: 8},
		{typ: frameChunk, id: 9, data: []byte("<a>\n  <b/>\n</a>\n")},
		{typ: frameChunk, id: 9, data: nil},
		{typ: frameAck, id: 9, ver: 3},
		{typ: frameAck, id: 9, ver: math.MaxUint64},
		{typ: frameAck, id: 9},
		{typ: frameEnd, id: 9},
		{typ: frameReject, id: 9, str: "rejected by receiver"},
		{typ: frameStreamErr, id: 9, str: "no such docking point"},
		{typ: frameSubscribe, id: 11, str: "f1"},
		{typ: frameSubscribed, id: 11, ver: 42, size: 1 << 20, win: 1},
		{typ: frameEdit, id: 11, ver: 43, flag: 1, addr: []uint64{1 << 32, 3 << 31}, data: []byte("<p/>\n")},
		{typ: frameEdit, id: 11, ver: 44, flag: 3},
		{typ: frameEditAck, id: 11, ver: 43},
		{typ: frameVerdictUpdate, id: 11, ver: 43, flag: 1},
		{typ: framePing, id: 77},
		{typ: framePong, id: 77},
		{typ: frameResume, id: 12, ver: 40, str: "f1"},
		{typ: frameSubscribed, id: 12, ver: 42, flag: 1, win: 4096},
		{typ: frameRefuse, flag: uint8(RefuseOverCapacity), str: "session cap reached"},
		{typ: frameRefuse, flag: uint8(RefuseUnknownDesign)},
	}
}

func frameEqual(a, b frame) bool {
	if len(a.addr) != len(b.addr) {
		return false
	}
	for i := range a.addr {
		if a.addr[i] != b.addr[i] {
			return false
		}
	}
	return a.typ == b.typ && a.id == b.id && a.size == b.size && a.ver == b.ver &&
		a.flag == b.flag && a.win == b.win && a.str == b.str && bytes.Equal(a.data, b.data)
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := frameWriter{w: &buf}
	frames := sampleFrames()
	for _, f := range frames {
		if err := fw.write(f); err != nil {
			t.Fatalf("write %+v: %v", f, err)
		}
	}
	fr := newFrameReader(&buf)
	for i, want := range frames {
		got, err := fr.read()
		if err != nil {
			t.Fatalf("frame %d: read: %v", i, err)
		}
		// The reader reuses its buffer, so compare before the next read.
		if !frameEqual(got, want) {
			t.Fatalf("frame %d round trip: got %+v want %+v", i, got, want)
		}
	}
	if _, err := fr.read(); err != io.EOF {
		t.Fatalf("clean end of stream should be io.EOF, got %v", err)
	}
}

func TestFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	fw := frameWriter{w: &buf}
	for _, f := range sampleFrames() {
		if err := fw.write(f); err != nil {
			t.Fatal(err)
		}
	}
	wire := buf.Bytes()
	// Every proper prefix must decode to clean frames followed by either
	// io.EOF (prefix ends on a frame boundary) or a truncation error —
	// never a panic, never a spurious success.
	for cut := 0; cut < len(wire); cut++ {
		fr := newFrameReader(bytes.NewReader(wire[:cut]))
		for {
			_, err := fr.read()
			if err == nil {
				continue
			}
			if err != io.EOF && !strings.Contains(err.Error(), "truncated") {
				t.Fatalf("cut %d: unexpected error %v", cut, err)
			}
			break
		}
	}
}

func TestFrameRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty frame":  binary.BigEndian.AppendUint32(nil, 0),
		"unknown type": append(binary.BigEndian.AppendUint32(nil, 1), 0xEE),
		"zero type":    append(binary.BigEndian.AppendUint32(nil, 1), 0x00),
		"short begin":  append(binary.BigEndian.AppendUint32(nil, 3), byte(frameBegin), 1, 2),
		// A v3-shaped begin (id+size, no window echo) is short on the v4 wire.
		"v3 begin": append(binary.BigEndian.AppendUint32(nil, 13), byte(frameBegin), 0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0, 1),
		// A v3-shaped ack (bare id, no cumulative count) is short on the v4 wire.
		"v3 ack":   append(binary.BigEndian.AppendUint32(nil, 5), byte(frameAck), 0, 0, 0, 9),
		"ack tail": append(binary.BigEndian.AppendUint32(nil, 7), byte(frameAck), 0, 0, 0, 1, 'x', 'y'),
		// A v3-shaped hello (version+chunk, no window grant) is short on the v4 wire.
		"v3 hello":     append(binary.BigEndian.AppendUint32(nil, 6), byte(frameHello), protocolVersion, 0, 0, 16, 0),
		"oversized":    binary.BigEndian.AppendUint32(nil, math.MaxUint32),
		"short ping":   append(binary.BigEndian.AppendUint32(nil, 3), byte(framePing), 0, 1),
		"ping tail":    append(binary.BigEndian.AppendUint32(nil, 6), byte(framePing), 0, 0, 0, 1, 'x'),
		"pong tail":    append(binary.BigEndian.AppendUint32(nil, 6), byte(framePong), 0, 0, 0, 2, 'x'),
		"short resume": append(binary.BigEndian.AppendUint32(nil, 8), byte(frameResume), 0, 0, 0, 1, 0, 0, 0),
		"empty refuse": append(binary.BigEndian.AppendUint32(nil, 1), byte(frameRefuse)),
	}
	for name, wire := range cases {
		fr := newFrameReader(bytes.NewReader(wire))
		if _, err := fr.read(); err == nil || err == io.EOF {
			t.Errorf("%s: expected a decode error, got %v", name, err)
		}
	}
}

// TestFrameReaderBoundsAllocation: a hostile length prefix must error
// before allocating, not after reserving gigabytes.
func TestFrameReaderBoundsAllocation(t *testing.T) {
	wire := binary.BigEndian.AppendUint32(nil, 1<<31)
	allocs := testing.AllocsPerRun(5, func() {
		fr := newFrameReader(bytes.NewReader(wire))
		if _, err := fr.read(); err == nil {
			t.Fatal("oversized frame accepted")
		}
	})
	// A reader struct, a bufio buffer and an error — nothing proportional
	// to the claimed length.
	if allocs > 10 {
		t.Errorf("oversized frame cost %v allocations", allocs)
	}
}

// TestLivenessFramesHostile: the liveness and resume frames are the
// newest attack surface — hostile, truncated, or trailing-garbage ping,
// pong, and resume frames must yield a decode error with nothing
// allocated proportional to the claimed length (a reader, a bufio
// buffer and the error itself are the whole budget).
func TestLivenessFramesHostile(t *testing.T) {
	cases := map[string][]byte{
		"ping huge length":   append(binary.BigEndian.AppendUint32(nil, 1<<30), byte(framePing)),
		"pong huge length":   append(binary.BigEndian.AppendUint32(nil, 1<<30), byte(framePong)),
		"resume huge length": append(binary.BigEndian.AppendUint32(nil, 1<<30), byte(frameResume)),
		"ping truncated":     append(binary.BigEndian.AppendUint32(nil, 5), byte(framePing), 0, 0),
		"pong truncated":     append(binary.BigEndian.AppendUint32(nil, 5), byte(framePong), 0),
		"resume truncated":   append(binary.BigEndian.AppendUint32(nil, 13), byte(frameResume), 0, 0, 0, 1),
		"ping trailing":      append(binary.BigEndian.AppendUint32(nil, 7), byte(framePing), 0, 0, 0, 1, 'x', 'y'),
		"pong trailing":      append(binary.BigEndian.AppendUint32(nil, 7), byte(framePong), 0, 0, 0, 1, 'x', 'y'),
		"resume short fixed": append(binary.BigEndian.AppendUint32(nil, 9), byte(frameResume), 0, 0, 0, 1, 0, 0, 0, 1),
	}
	for name, wire := range cases {
		allocs := testing.AllocsPerRun(5, func() {
			fr := newFrameReader(bytes.NewReader(wire))
			if _, err := fr.read(); err == nil {
				t.Fatalf("%s: hostile frame accepted", name)
			}
		})
		if allocs > 10 {
			t.Errorf("%s: hostile frame cost %v allocations", name, allocs)
		}
	}
}

func TestFrameWriterRefusesOversize(t *testing.T) {
	fw := frameWriter{w: io.Discard}
	if err := fw.write(frame{typ: frameChunk, id: 1, data: make([]byte, maxFramePayload+1)}); err == nil {
		t.Error("oversized chunk frame accepted")
	}
}

// TestClampWindow pins the credit-window clamp: hostile or nonsensical
// grants (zero, negative after int conversion, absurdly large) always
// resolve to a usable window in [1, maxWindow] — a sender can neither
// be deadlocked by a zero grant nor buffer unboundedly from a huge one.
func TestClampWindow(t *testing.T) {
	cases := []struct{ req, cap, want int }{
		{0, 0, 1},
		{-5, 0, 1},
		{1, 0, 1},
		{32, 0, 32},
		{maxWindow, 0, maxWindow},
		{maxWindow + 1, 0, maxWindow},
		{1 << 31, 0, maxWindow},
		{64, 8, 8}, // host cap lowers the grant
		{4, 8, 4},  // cap never raises it
		{0, 8, 1},  // zero grant still yields a working window
		{-1, 8, 1}, // overflowed uint32→int grants clamp up, not down
		{1 << 31, 8, 8},
	}
	for _, c := range cases {
		if got := clampWindow(c.req, c.cap); got != c.want {
			t.Errorf("clampWindow(%d, %d) = %d, want %d", c.req, c.cap, got, c.want)
		}
	}
}

func TestWireChunkRoundTrip(t *testing.T) {
	for _, budget := range []int{1, 16, 4096, 1 << 20} {
		if got := budgetFromWire(wireChunk(budget)); got != budget {
			t.Errorf("budget %d round-tripped to %d", budget, got)
		}
	}
	if got := budgetFromWire(wireChunk(math.MaxInt)); got != math.MaxInt {
		t.Errorf("unchunked sentinel round-tripped to %d", got)
	}
	if got := budgetFromWire(wireChunk(0)); got != math.MaxInt {
		t.Errorf("zero budget should decode as unchunked, got %d", got)
	}
}
