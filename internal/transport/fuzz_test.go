package transport

import (
	"bytes"
	"testing"
)

// FuzzFrameCodec drives the frame reader with arbitrary bytes: it must
// decode or error — truncated, oversized and garbage frames included —
// and every frame it does accept must survive an encode/decode round
// trip bit-for-bit. It must never panic and never allocate proportional
// to a hostile length prefix (the reader refuses lengths beyond
// maxFramePayload before reading them).
func FuzzFrameCodec(f *testing.F) {
	var seed bytes.Buffer
	fw := frameWriter{w: &seed}
	for _, fr := range sampleFrames() {
		fw.write(fr)
	}
	f.Add(seed.Bytes())
	f.Add(seed.Bytes()[:7])
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	f.Add([]byte{0, 0, 0, 2, byte(frameError), 'x'})
	f.Add([]byte{0, 0, 0, 1, 0xEE})
	// Hostile credit fields: a zero window grant, an all-ones grant, a
	// cumulative ack of 2^64-1, and v3-shaped (windowless) hello/ack
	// frames that are short on the v4 wire. The codec must decode or
	// error without allocating for the claimed values — credits are
	// counters, never buffer sizes.
	f.Add([]byte{0, 0, 0, 10, byte(frameHello), protocolVersion, 0, 0, 16, 0, 0, 0, 0, 0xAB})
	f.Add([]byte{0, 0, 0, 10, byte(frameHello), protocolVersion, 0, 0, 16, 0, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0, 0, 0, 13, byte(frameAck), 0, 0, 0, 9, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0, 0, 0, 6, byte(frameHello), protocolVersion, 0, 0, 16, 0})
	f.Add([]byte{0, 0, 0, 5, byte(frameAck), 0, 0, 0, 9})
	f.Add([]byte{0, 0, 0, 17, byte(frameBegin), 0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 4, 0, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := newFrameReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			decoded, err := fr.read()
			if err != nil {
				return // any error is fine; panics and hangs are not
			}
			// Round trip: what the reader accepts, the writer must
			// reproduce and the reader must re-accept identically.
			var buf bytes.Buffer
			w := frameWriter{w: &buf}
			if werr := w.write(decoded); werr != nil {
				t.Fatalf("decoded frame %+v does not re-encode: %v", decoded, werr)
			}
			again, rerr := newFrameReader(&buf).read()
			if rerr != nil {
				t.Fatalf("re-encoded frame %+v does not decode: %v", decoded, rerr)
			}
			if !frameEqual(decoded, again) {
				t.Fatalf("round trip changed frame: %+v vs %+v", decoded, again)
			}
		}
	})
}

// FuzzChunker checks the chunking invariant the transports rely on:
// any write pattern reassembles to the same bytes, every chunk except
// the last is exactly the budget, and the chunk sequence depends only
// on the budget — not on how writes were sliced and not on the ring
// depth (the credit window changes how many chunk buffers cycle, never
// where chunks are cut).
func FuzzChunker(f *testing.F) {
	f.Add([]byte("<eurostat>\n  <averages/>\n</eurostat>\n"), uint8(4), uint8(3), uint8(2))
	f.Add(bytes.Repeat([]byte("ab"), 300), uint8(16), uint8(1), uint8(33))
	f.Add([]byte{}, uint8(1), uint8(5), uint8(0))

	f.Fuzz(func(t *testing.T, doc []byte, budgetRaw, sliceRaw, depthRaw uint8) {
		budget := int(budgetRaw)%64 + 1
		slice := int(sliceRaw)%17 + 1
		depth := int(depthRaw) % 66 // 0 and 1 exercise the raise-to-2 floor
		var chunks [][]byte
		cw := newChunkerDepth(budget, depth, func(c []byte) error {
			if len(c) == 0 || len(c) > budget {
				t.Fatalf("chunk of %d bytes under budget %d", len(c), budget)
			}
			chunks = append(chunks, append([]byte(nil), c...))
			return nil
		})
		for off := 0; off < len(doc); off += slice {
			if _, err := cw.Write(doc[off:min(off+slice, len(doc))]); err != nil {
				t.Fatal(err)
			}
		}
		if err := cw.flush(); err != nil {
			t.Fatal(err)
		}
		var got []byte
		for i, c := range chunks {
			if i < len(chunks)-1 && len(c) != budget {
				t.Fatalf("non-final chunk %d has %d bytes, budget %d", i, len(c), budget)
			}
			got = append(got, c...)
		}
		if !bytes.Equal(got, doc) {
			t.Fatalf("reassembly mismatch: %d bytes in, %d out", len(doc), len(got))
		}
		if cw.sent != len(doc) {
			t.Fatalf("sent = %d, want %d", cw.sent, len(doc))
		}
	})
}
