package transport

import (
	"context"
	"errors"
	"io"
	"math"
	"net"
	"testing"
	"time"
)

// rawClient speaks the frame protocol directly over a socket, so tests
// can observe exactly which frames the host emits and withhold acks at
// will — the conformance surface a well-behaved Conn never exposes.
type rawClient struct {
	nc net.Conn
	fw frameWriter
	fr *frameReader
}

func dialRaw(t *testing.T, addr string, digest []byte, chunk int, win uint32) *rawClient {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	c := &rawClient{nc: nc, fw: frameWriter{w: nc}, fr: newFrameReader(nc)}
	c.send(t, frame{typ: frameHello, flag: protocolVersion, id: wireChunk(chunk), win: win, data: digest})
	if f := c.read(t); f.typ != frameWelcome {
		t.Fatalf("hello answered with frame type %d", f.typ)
	}
	return c
}

func (c *rawClient) send(t *testing.T, f frame) {
	t.Helper()
	if err := c.fw.write(f); err != nil {
		t.Fatalf("raw send: %v", err)
	}
}

func (c *rawClient) read(t *testing.T) frame {
	t.Helper()
	c.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := c.fr.read()
	if err != nil {
		t.Fatalf("raw read: %v", err)
	}
	return f
}

// drainChunks reads frames until the wire goes quiet for `quiet`,
// returning how many chunk frames arrived (and whether End did). The
// quiet window is what turns "the host must NOT send more" into an
// observable: a host with credit left would have sent within it.
func (c *rawClient) drainChunks(t *testing.T, quiet time.Duration) (chunks int, ended bool) {
	t.Helper()
	for {
		c.nc.SetReadDeadline(time.Now().Add(quiet))
		f, err := c.fr.read()
		if err != nil {
			if isTimeout(err) {
				return chunks, ended
			}
			t.Fatalf("raw drain: %v", err)
		}
		switch f.typ {
		case frameChunk:
			chunks++
		case frameEnd:
			ended = true
		case framePing:
			c.send(t, frame{typ: framePong, id: f.id})
		default:
			t.Fatalf("unexpected frame type %d while draining", f.typ)
		}
	}
}

func windowHost(t *testing.T, sources map[string]Source, cap int) (*Host, []byte) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	digest := Digest("window-conformance")
	h := NewHost(ln, HostConfig{Digest: digest, Sources: sources, Window: cap})
	t.Cleanup(func() { h.Close() })
	return h, digest
}

// TestWindowPipelinesExactly pins the credit discipline on the wire:
// with a grant of W and no acks, the host ships exactly W chunks and
// parks; a cumulative ack of k releases exactly k more; re-sending the
// same cumulative ack releases nothing.
func TestWindowPipelinesExactly(t *testing.T) {
	const chunkBudget, win = 64, 4
	src := &fakeSource{blob: blob(chunkBudget * 20), verdict: true}
	h, digest := windowHost(t, map[string]Source{"f1": src}, 0)
	c := dialRaw(t, h.Addr().String(), digest, chunkBudget, win)

	c.send(t, frame{typ: frameOpen, id: 1, str: "f1"})
	begin := c.read(t)
	if begin.typ != frameBegin {
		t.Fatalf("open answered with frame type %d", begin.typ)
	}
	if begin.win != win {
		t.Fatalf("begin echoed window %d, granted %d", begin.win, win)
	}

	const quiet = 150 * time.Millisecond
	if n, ended := c.drainChunks(t, quiet); n != win || ended {
		t.Fatalf("unacked: host shipped %d chunks (ended=%v), window is %d", n, ended, win)
	}
	// Cumulative ack for 2 consumed chunks: exactly 2 credits.
	c.send(t, frame{typ: frameAck, id: 1, ver: 2})
	if n, _ := c.drainChunks(t, quiet); n != 2 {
		t.Fatalf("ack of 2 released %d chunks, want 2", n)
	}
	// The same cumulative ack again must grant nothing.
	c.send(t, frame{typ: frameAck, id: 1, ver: 2})
	if n, _ := c.drainChunks(t, quiet); n != 0 {
		t.Fatalf("duplicated cumulative ack released %d chunks, want 0", n)
	}
	// A stale (lower) ack must grant nothing either.
	c.send(t, frame{typ: frameAck, id: 1, ver: 1})
	if n, _ := c.drainChunks(t, quiet); n != 0 {
		t.Fatalf("stale ack released %d chunks, want 0", n)
	}
	// Ack everything: the remaining 14 chunks and End arrive.
	c.send(t, frame{typ: frameAck, id: 1, ver: 20})
	if n, ended := c.drainChunks(t, quiet); n != 14 || !ended {
		t.Fatalf("final ack: %d chunks (ended=%v), want 14 and End", n, ended)
	}
}

// TestWindowOneIsStopAndWait: a grant of 1 is byte-for-byte the classic
// stop-and-wait wire — one chunk per ack, never two in flight.
func TestWindowOneIsStopAndWait(t *testing.T) {
	const chunkBudget = 64
	src := &fakeSource{blob: blob(chunkBudget * 5), verdict: true}
	h, digest := windowHost(t, map[string]Source{"f1": src}, 0)
	c := dialRaw(t, h.Addr().String(), digest, chunkBudget, 1)

	c.send(t, frame{typ: frameOpen, id: 1, str: "f1"})
	if begin := c.read(t); begin.typ != frameBegin || begin.win != 1 {
		t.Fatalf("begin: type %d win %d, want begin with window 1", begin.typ, begin.win)
	}
	const quiet = 150 * time.Millisecond
	sawEnd := false
	for i := uint64(1); i <= 5; i++ {
		// End is not credit-gated: it rides right behind the final chunk,
		// so it may surface in the same drain.
		n, ended := c.drainChunks(t, quiet)
		sawEnd = sawEnd || ended
		if n != 1 {
			t.Fatalf("chunk %d: %d in flight, stop-and-wait allows 1", i, n)
		}
		c.send(t, frame{typ: frameAck, id: 1, ver: i})
	}
	if n, ended := c.drainChunks(t, quiet); n != 0 || !(sawEnd || ended) {
		t.Fatalf("after final ack: %d extra chunks (end seen=%v), want none and End", n, sawEnd || ended)
	}
}

// TestHostileWindowGrants: a zero grant and an all-ones grant are both
// clamped into [1, maxWindow] — the transfer completes (no deadlock)
// and the begin frame reports the window actually honored. Credits are
// counters, never allocation sizes, so the absurd grant costs nothing.
func TestHostileWindowGrants(t *testing.T) {
	const chunkBudget = 64
	src := &fakeSource{blob: blob(chunkBudget * 3), verdict: true}
	h, digest := windowHost(t, map[string]Source{"f1": src}, 0)

	for _, tc := range []struct {
		name  string
		grant uint32
		want  uint32
	}{
		{"zero", 0, 1},
		{"max", math.MaxUint32, maxWindow},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := dialRaw(t, h.Addr().String(), digest, chunkBudget, tc.grant)
			c.send(t, frame{typ: frameOpen, id: 1, str: "f1"})
			begin := c.read(t)
			if begin.typ != frameBegin || begin.win != tc.want {
				t.Fatalf("begin: type %d win %d, want window %d", begin.typ, begin.win, tc.want)
			}
			got, acked := 0, uint64(0)
			for got < 3 {
				if f := c.read(t); f.typ == frameChunk {
					got++
					acked++
					c.send(t, frame{typ: frameAck, id: 1, ver: acked})
				}
			}
			if f := c.read(t); f.typ != frameEnd {
				t.Fatalf("transfer under hostile grant did not end cleanly: frame type %d", f.typ)
			}
		})
	}
}

// TestHostWindowCap: the host's configured cap lowers every grant, and
// the begin frame reports the capped value.
func TestHostWindowCap(t *testing.T) {
	const chunkBudget = 64
	src := &fakeSource{blob: blob(chunkBudget * 10), verdict: true}
	h, digest := windowHost(t, map[string]Source{"f1": src}, 2)
	c := dialRaw(t, h.Addr().String(), digest, chunkBudget, 16)

	c.send(t, frame{typ: frameOpen, id: 1, str: "f1"})
	if begin := c.read(t); begin.typ != frameBegin || begin.win != 2 {
		t.Fatalf("begin: type %d win %d, want capped window 2", begin.typ, begin.win)
	}
	if n, _ := c.drainChunks(t, 150*time.Millisecond); n != 2 {
		t.Fatalf("capped host shipped %d unacked chunks, cap is 2", n)
	}
}

// TestDialRejectsNegativeWindow: a nonsensical window is a typed config
// error before any socket is opened.
func TestDialRejectsNegativeWindow(t *testing.T) {
	_, err := Dial("127.0.0.1:1", Config{Digest: Digest("x"), Chunk: 64, Window: -3})
	if !errors.Is(err, ErrInvalidWindow) {
		t.Fatalf("negative window should fail with ErrInvalidWindow, got %v", err)
	}
}

// TestInProcWindowBoundsSender: the in-process sender runs at most one
// credit window ahead of its receiver — serialized bytes never exceed
// consumed + (window+1 ring slots) of chunk budget.
func TestInProcWindowBoundsSender(t *testing.T) {
	const chunkBudget, win = 64, 4
	src := &fakeSource{blob: blob(chunkBudget * 100), verdict: true, slow: true}
	s := &InProc{Sources: map[string]Source{"f1": src}, Chunk: chunkBudget, Window: win}
	frag, err := s.Open(context.Background(), "f1")
	if err != nil {
		t.Fatal(err)
	}
	defer frag.Abort()
	consumed := 0
	check := func() {
		// The sender may fill the channel (win-1), the receiver handoff
		// (1), the in-progress ring slot (1), and its internal write can
		// land one more chunk boundary — allow one slack chunk.
		limit := int64(consumed + win + 2*chunkBudget)
		waitSettled(t, &src.serialized)
		if n := src.serialized.Load(); n > int64(consumed)+int64((win+2)*chunkBudget) {
			t.Fatalf("sender serialized %d bytes with %d consumed: ran past the %d-chunk window (limit ~%d)",
				n, consumed, win, limit)
		}
	}
	check()
	for i := 0; i < 3; i++ {
		chunk, err := frag.Next()
		if err != nil {
			t.Fatal(err)
		}
		consumed += len(chunk)
	}
	check()
}

// waitSettled waits until a counter stops moving — the sender has
// parked on backpressure, so the bound can be asserted race-free.
func waitSettled(t *testing.T, c interface{ Load() int64 }) {
	t.Helper()
	prev := int64(-1)
	for i := 0; i < 200; i++ {
		cur := c.Load()
		if cur == prev {
			return
		}
		prev = cur
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("sender never settled")
}

// TestTCPFragmentDuplicateAck: the exported duplicate-ack seam replays
// the last cumulative ack; the transfer still completes exactly once
// with the same bytes — the sender gained nothing from the replay.
func TestTCPFragmentDuplicateAck(t *testing.T) {
	const chunkBudget = 64
	doc := blob(chunkBudget * 6)
	src := &fakeSource{blob: doc, verdict: true}
	h, digest := windowHost(t, map[string]Source{"f1": src}, 0)
	c, err := Dial(h.Addr().String(), Config{Digest: digest, Chunk: chunkBudget, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	frag, err := c.Open(context.Background(), "f1")
	if err != nil {
		t.Fatal(err)
	}
	dup, ok := frag.(interface{ DuplicateAck() error })
	if !ok {
		t.Fatal("TCP fragment does not expose DuplicateAck")
	}
	var got []byte
	for i := 0; ; i++ {
		chunk, err := frag.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, chunk...)
		if i%2 == 0 {
			if err := dup.DuplicateAck(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(got) != len(doc) {
		t.Fatalf("reassembled %d bytes under duplicated acks, want %d", len(got), len(doc))
	}
	for i := range got {
		if got[i] != doc[i] {
			t.Fatalf("byte %d corrupted under duplicated acks", i)
		}
	}
}
