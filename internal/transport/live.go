package transport

import (
	"context"
	"fmt"
	"io"
)

// This file is the live half of the wire: a kernel peer *subscribes* to
// a docking point's edit log and receives, over either transport, an
// atomic cut of the peer's state — a keyed snapshot of the fragment at
// some version (credit-windowed like any fragment transfer), then every
// edit after that version, in order, with stop-and-wait backpressure —
// and reports its global verdict back after each applied edit. The
// frame types are subscribe / subscribed / chunk…end (the snapshot
// reuses the fragment chunk machinery, credits included) / edit /
// edit-ack / verdict-update.

// EditFrame is one edit of a fragment's log in wire form: the dense
// version it produces, the operation (the live package's Op values),
// the edited node's prefix address, and the serialized payload subtree
// (empty for deletes). The transports move EditFrames without
// interpreting them.
type EditFrame struct {
	Version uint64
	Op      uint8
	Addr    []uint64
	Doc     []byte
}

// WireSize is the edit's frame payload size on the binary wire (type
// byte included). Both transports account edits with it, which is what
// keeps live traffic stats transport-invariant: O(‖edit‖ + depth) —
// the payload plus one address component per ancestor.
func (e EditFrame) WireSize() int {
	return 16 + 8*len(e.Addr) + len(e.Doc)
}

// LiveSource is a Source whose document is editable: it can open an
// atomic cut of its state for a subscriber. Hosted docking points
// implement it to become subscribable.
type LiveSource interface {
	Source
	// OpenLive returns an atomic cut: a snapshot and the edit feed
	// continuing it. The context bounds the feed's lifetime.
	OpenLive(ctx context.Context) (LiveFeedSrc, error)
}

// LiveFeedSrc is the sender side of one subscription: a consistent
// snapshot (Version/Size/Serialize describe the same cut) plus the
// blocking edit log behind it.
type LiveFeedSrc interface {
	// Version is the snapshot's edit-log version.
	Version() uint64
	// Size is the snapshot's exact serialized size in bytes.
	Size() int
	// Serialize writes the snapshot.
	Serialize(w io.Writer) error
	// NextEdit blocks until the edit with version after+1 is published
	// and returns it.
	NextEdit(ctx context.Context, after uint64) (EditFrame, error)
	// NoteVerdict records the kernel peer's global verdict after it
	// applied the edit with the given version.
	NoteVerdict(version uint64, valid bool)
	// Close releases the subscription.
	Close()
}

// LiveSession is a Session that supports live subscriptions. Both
// transports implement it; a kernel peer type-asserts.
type LiveSession interface {
	Session
	Subscribe(ctx context.Context, fn string) (EditFeed, error)
}

// ResumableSession is a LiveSession whose subscriptions survive a
// disconnect: Resubscribe reopens fn's feed from the last edit version
// this peer applied. Both transports implement it.
type ResumableSession interface {
	LiveSession
	// Resubscribe reopens a subscription. When the source's log still
	// covers every edit after `after`, the returned feed is Resumed():
	// it ships no snapshot (SnapshotSize 0, NextChunk immediately EOF)
	// and its first edit carries after+1. When the log was compacted
	// past `after`, the feed is a fresh full cut, exactly like
	// Subscribe.
	Resubscribe(ctx context.Context, fn string, after uint64) (EditFeed, error)
}

// ResumableSource is a LiveSource whose edit log supports suffix
// resumption. Hosted docking points implement it to let dropped
// subscribers catch up without re-shipping the snapshot.
type ResumableSource interface {
	LiveSource
	// OpenLiveSince returns a feed continuing from `after`. If the log
	// still covers the suffix, the feed's Version() is `after`, its
	// Size() is 0 (no snapshot), and resumed is true. Otherwise it is a
	// fresh full cut (resumed false).
	OpenLiveSince(ctx context.Context, after uint64) (feed LiveFeedSrc, resumed bool, err error)
}

// EditFeed is the receiver side of one subscription. The protocol has
// two phases: first drain the snapshot with NextChunk until io.EOF,
// then loop on NextEdit. The snapshot phase is credit-windowed like a
// fragment transfer (the sender pipelines up to the negotiated window
// of unconsumed chunks); the edit phase is stop-and-wait — consuming an
// edit releases the sender to produce exactly one more, so a slow
// kernel peer backpressures the editing site end to end.
type EditFeed interface {
	// Base is the snapshot's version: the first edit delivered will
	// carry Base()+1.
	Base() uint64
	// SnapshotSize is the snapshot's announced size in bytes.
	SnapshotSize() int
	// NextChunk returns the snapshot's next chunk (valid until the
	// following call), io.EOF after the last.
	NextChunk() ([]byte, error)
	// NextEdit acknowledges the previous edit and blocks for the next.
	// The returned frame's Addr and Doc are valid until the following
	// call.
	NextEdit(ctx context.Context) (EditFrame, error)
	// SendVerdict reports the global verdict after applying version.
	SendVerdict(version uint64, valid bool) error
	// Resumed reports that this feed continues an earlier subscription
	// by log suffix: there is no snapshot to drain, and the first edit
	// carries Base()+1 where Base() is the version the resuming peer
	// announced. Always false for fresh subscriptions.
	Resumed() bool
	// Close unsubscribes. It does not unblock a concurrent NextEdit —
	// cancel that call's context first.
	Close() error
}

// Subscribe routes a live subscription to fn's session.
func (m Multi) Subscribe(ctx context.Context, fn string) (EditFeed, error) {
	s, err := m.session(fn)
	if err != nil {
		return nil, err
	}
	ls, ok := s.(LiveSession)
	if !ok {
		return nil, fmt.Errorf("transport: session for %s does not support live subscriptions", fn)
	}
	return ls.Subscribe(ctx, fn)
}

// Resubscribe routes a resumed subscription to fn's session.
func (m Multi) Resubscribe(ctx context.Context, fn string, after uint64) (EditFeed, error) {
	s, err := m.session(fn)
	if err != nil {
		return nil, err
	}
	rs, ok := s.(ResumableSession)
	if !ok {
		return nil, fmt.Errorf("transport: session for %s does not support resumed subscriptions", fn)
	}
	return rs.Resubscribe(ctx, fn, after)
}

// Subscribe opens an in-process subscription: the snapshot is chunked
// through the same budget and credit window as fragment transfers, and
// edits are pulled straight from the source's log.
func (s *InProc) Subscribe(ctx context.Context, fn string) (EditFeed, error) {
	src, err := s.source(fn)
	if err != nil {
		return nil, err
	}
	ls, ok := src.(LiveSource)
	if !ok {
		return nil, fmt.Errorf("transport: docking point %s is not live (no editor attached)", fn)
	}
	lf, err := ls.OpenLive(ctx)
	if err != nil {
		return nil, err
	}
	return s.feedOver(ctx, lf, false), nil
}

// Resubscribe reopens a subscription from the last applied version,
// exactly mirroring the TCP resume handshake: a suffix replay when the
// source's log still covers it, a fresh full cut otherwise.
func (s *InProc) Resubscribe(ctx context.Context, fn string, after uint64) (EditFeed, error) {
	src, err := s.source(fn)
	if err != nil {
		return nil, err
	}
	rs, ok := src.(ResumableSource)
	if !ok {
		return nil, fmt.Errorf("transport: docking point %s does not support resumed subscriptions", fn)
	}
	lf, resumed, err := rs.OpenLiveSince(ctx, after)
	if err != nil {
		return nil, err
	}
	return s.feedOver(ctx, lf, resumed), nil
}

// feedOver wraps a source feed in the in-process chunk handoff, with
// the same credit window as fragment transfers (channel buffered to
// window-1, ring of window+1 chunk buffers). Resumed feeds have an
// empty snapshot, so their chunk channel closes at once.
func (s *InProc) feedOver(ctx context.Context, lf LiveFeedSrc, resumed bool) EditFeed {
	win := s.window()
	fctx, cancel := context.WithCancel(ctx)
	ch := make(chan []byte, win-1)
	go func() {
		defer close(ch)
		w := newChunkerDepth(s.Chunk, win+1, func(chunk []byte) error {
			select {
			case ch <- chunk:
				return nil
			case <-fctx.Done():
				return fctx.Err()
			}
		})
		if lf.Serialize(w) == nil {
			w.flush()
		}
	}()
	return &inprocEditFeed{lf: lf, cancel: cancel, ch: ch, base: lf.Version(), size: lf.Size(), pos: lf.Version(), resumed: resumed}
}

type inprocEditFeed struct {
	lf      LiveFeedSrc
	cancel  context.CancelFunc
	ch      <-chan []byte
	base    uint64
	size    int
	pos     uint64
	resumed bool
}

func (f *inprocEditFeed) Base() uint64      { return f.base }
func (f *inprocEditFeed) SnapshotSize() int { return f.size }
func (f *inprocEditFeed) Resumed() bool     { return f.resumed }

func (f *inprocEditFeed) NextChunk() ([]byte, error) {
	chunk, ok := <-f.ch
	if !ok {
		return nil, io.EOF
	}
	return chunk, nil
}

func (f *inprocEditFeed) NextEdit(ctx context.Context) (EditFrame, error) {
	e, err := f.lf.NextEdit(ctx, f.pos)
	if err != nil {
		return EditFrame{}, err
	}
	f.pos = e.Version
	return e, nil
}

func (f *inprocEditFeed) SendVerdict(version uint64, valid bool) error {
	f.lf.NoteVerdict(version, valid)
	return nil
}

func (f *inprocEditFeed) Close() error {
	f.cancel()
	f.lf.Close()
	return nil
}
