package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"

	"dxml/internal/obs"
)

// The TCP wire speaks length-prefixed binary frames:
//
//	uint32 big-endian payload length | uint8 frame type | payload
//
// The payload length covers the type byte, so an empty frame is length
// 1. Frames larger than maxFramePayload are a protocol error — the
// reader refuses them before allocating, so a hostile or corrupt length
// prefix cannot balloon memory.
const (
	// protocolVersion is bumped on any incompatible frame change; the
	// hello exchange refuses mismatched versions. v2 added the liveness
	// frames (ping/pong) and the resume handshake (resume + the
	// subscribed frame's resumed flag); v3 added the typed refuse frame
	// (hello admission control); v4 added credit-window flow control
	// (the hello's window grant, its echo on begin/subscribed, and the
	// ack frame's cumulative consumed-chunk count); v5 widened the hello
	// with a trace ID, minted by the dialing peer so both processes'
	// telemetry spans for one session carry the same ID. None is
	// wire-compatible with its predecessor.
	protocolVersion = 5

	// maxFramePayload caps one frame's payload (type byte excluded).
	// Chunked transfers stay far below it; it exists so unchunked
	// transfers have a hard ceiling and garbage length prefixes error
	// out instead of allocating.
	maxFramePayload = 16 << 20

	// headerSize is the length prefix plus the type byte.
	headerSize = 5
)

// Credit-window bounds. The receiver grants the sender a per-stream
// window of chunk credits in its hello; the sender pipelines up to that
// many unacked chunks before parking.
const (
	// DefaultWindow is the per-stream credit window when a config
	// leaves it zero: deep enough to hide an ack round-trip per chunk
	// at the default budget, small enough that a rejection's overrun
	// (at most window·chunk bytes serialized past the failure) stays
	// a rounding error against whole-fragment shipping.
	DefaultWindow = 32

	// maxWindow caps the window a host will honor regardless of what a
	// hello asks for: a hostile 2³¹-chunk grant must never translate
	// into unbounded sender-side pipelining or receiver-side buffering.
	maxWindow = 4096
)

// clampWindow resolves a wire-requested window against a host-side cap
// into the effective per-stream credit window: always in [1, maxWindow]
// (a zero grant would deadlock the sender; an absurd one is a memory
// grant nobody made), and never above the cap when one is set.
func clampWindow(req, cap int) int {
	w := req
	if w < 1 {
		w = 1
	}
	if w > maxWindow {
		w = maxWindow
	}
	if cap > 0 && w > cap {
		w = cap
	}
	return w
}

// frameType discriminates the session protocol's frames.
type frameType uint8

const (
	frameInvalid frameType = iota
	// frameHello (client→server) opens a session: version, chunk
	// budget, design digest.
	frameHello
	// frameWelcome (server→client) accepts it: version, digest echo.
	frameWelcome
	// frameError (either direction) is session-fatal: a message.
	frameError
	// frameVerdictReq (client→server) asks the peer hosting fn to
	// validate its document: request id, fn.
	frameVerdictReq
	// frameVerdict (server→client) answers: request id, verdict.
	frameVerdict
	// frameOpen (client→server) requests fn's fragment as a chunked
	// stream: stream id, fn.
	frameOpen
	// frameBegin (server→client) accepts: stream id, total serialized
	// size. Chunks follow.
	frameBegin
	// frameChunk (server→client) carries one chunk: stream id, bytes.
	// The sender pipelines up to the stream's credit window of unacked
	// chunks, then parks until acks replenish its credits — sliding-
	// window backpressure (a window of 1 degenerates to stop-and-wait).
	frameChunk
	// frameAck (client→server) replenishes the sender's credits: stream
	// id plus the receiver's cumulative count of consumed chunks. Acks
	// are cumulative, so a duplicated or reordered ack is idempotent —
	// it can never grant credits twice.
	frameAck
	// frameEnd (server→client) closes a fully-sent stream: stream id.
	frameEnd
	// frameReject (client→server) halts a transfer mid-stream: stream
	// id, reason. The sender stops serializing immediately.
	frameReject
	// frameStreamErr (server→client) fails one stream without killing
	// the session: stream id, reason.
	frameStreamErr
	// frameVerdictCancel (client→server) withdraws a verdict request
	// whose round was short-circuited: request id. The host cancels the
	// in-flight validation so remote peers stop mid-document, exactly
	// as in-process peers do.
	frameVerdictCancel
	// frameSubscribe (client→server) opens a live subscription on fn's
	// edit log: stream id, fn. The host answers with frameSubscribed,
	// streams the keyed snapshot as chunk frames (acked like any
	// fragment transfer, ended by frameEnd), then ships edits.
	frameSubscribe
	// frameSubscribed (server→client) accepts a subscription: stream
	// id, snapshot version, snapshot size. Snapshot chunks follow.
	frameSubscribed
	// frameEdit (server→client) carries one edit of the subscribed
	// log: stream id, version, op, prefix address, payload document.
	// The sender waits for frameEditAck before shipping the next edit —
	// the same stop-and-wait backpressure fragment chunks get.
	frameEdit
	// frameEditAck (client→server) acknowledges an edit: stream id,
	// version.
	frameEditAck
	// frameVerdictUpdate (client→server) reports the kernel peer's
	// global verdict after it applied an edit: stream id, version,
	// verdict — how the editing site learns whether the federation
	// still accepts its fragment.
	frameVerdictUpdate
	// framePing (either direction) is the liveness probe: a token id.
	// The receiver answers framePong with the same token. The kernel
	// peer pings on its heartbeat interval whenever the session is
	// otherwise idle, so both ends always see traffic within one
	// heartbeat and a dead peer is detected within the liveness window.
	framePing
	// framePong (either direction) answers a ping: the echoed token.
	framePong
	// frameResume (client→server) reopens a live subscription after a
	// disconnect: stream id, the last edit version the kernel peer
	// applied, fn. The host answers frameSubscribed — with the resumed
	// flag set and no snapshot when its log still covers the suffix, or
	// with a fresh full snapshot when the log was compacted past it.
	frameResume
	// frameRefuse (server→client) answers a hello the host will not
	// serve: a RefuseCode plus a reason. Unlike frameError it names the
	// cause on the wire — unknown design digest, admission control — so
	// the dialing peer surfaces a typed error (ErrUnknownDesign,
	// ErrOverCapacity) instead of a generic session failure.
	frameRefuse
	frameTypeEnd // sentinel: first invalid type
)

// frame is the decoded form of every frame type; unused fields are
// zero. data aliases the reader's buffer and is valid until the next
// read.
type frame struct {
	typ  frameType
	id   uint32   // stream / request id; chunk budget rides here for hello
	size uint64   // announced fragment size (begin), snapshot size (subscribed)
	ver  uint64   // edit-log version (subscribed/edit/editAck/verdictUpdate/resume); cumulative consumed-chunk count (ack); trace ID (hello)
	win  uint32   // credit window: requested (hello), effective echo (begin/subscribed)
	flag byte     // verdict (verdict/verdictUpdate), version (hello/welcome), op (edit), resumed (subscribed)
	str  string   // fn (open/verdictReq/subscribe/resume), reason (reject/streamErr/error)
	addr []uint64 // prefix address (edit); decoded fresh per frame
	data []byte   // chunk payload (chunk), digest (hello/welcome), edit payload (edit)
}

// maxEditAddr caps an edit's address length (tree depth on the editing
// peer); 4096 is far beyond any real document and keeps a hostile count
// from forcing a large allocation.
const maxEditAddr = 4096

// fixedLen is the number of fixed payload bytes after the type byte,
// per frame type; variable-length tails (strings, chunk bytes, digests)
// follow them.
func (t frameType) fixedLen() (int, error) {
	switch t {
	case frameHello:
		return 17, nil // version + chunk budget + window grant + trace ID
	case frameWelcome:
		return 1, nil // version
	case frameError:
		return 0, nil
	case frameVerdictReq, frameOpen, frameEnd, frameReject, frameStreamErr, frameChunk, frameVerdictCancel, frameSubscribe, framePing, framePong:
		return 4, nil // id
	case frameVerdict:
		return 5, nil // id + verdict
	case frameRefuse:
		return 1, nil // refuse code
	case frameAck:
		return 12, nil // id + cumulative consumed-chunk count
	case frameBegin:
		return 16, nil // id + size + effective window
	case frameEditAck, frameResume:
		return 12, nil // id + version
	case frameVerdictUpdate:
		return 13, nil // id + version + verdict
	case frameEdit:
		return 15, nil // id + version + op + address length
	case frameSubscribed:
		return 25, nil // id + version + snapshot size + resumed flag + effective window
	}
	return 0, codecErrf("transport: unknown frame type %d", t)
}

// frameWriter encodes frames onto one stream; callers serialize access
// (the TCP conn holds a write mutex). The scratch buffer is reused, so
// steady-state encoding is allocation-free.
type frameWriter struct {
	w    io.Writer
	buf  []byte
	vec  [2][]byte            // reused net.Buffers backing for vectored chunk writes
	hdr  [headerSize + 4]byte // reused chunk-frame header (a local would escape via vec)
	bufs net.Buffers          // reused WriteTo cursor (it consumes the slice in place)
	tap  Tap                  // flight-recorder seam (nil: no-op)
	sess uint64               // session trace ID tagged onto tapped frames
}

// write encodes and writes one frame.
func (fw *frameWriter) write(f frame) error {
	fixed, err := f.typ.fixedLen()
	if err != nil {
		return err
	}
	if f.typ == frameEdit && len(f.addr) > maxEditAddr {
		return fmt.Errorf("transport: edit address of %d components exceeds the %d limit", len(f.addr), maxEditAddr)
	}
	payload := 1 + fixed + 8*len(f.addr) + len(f.str) + len(f.data)
	if payload-1 > maxFramePayload {
		return fmt.Errorf("transport: frame of %d bytes exceeds the %d-byte limit (chunk the transfer)",
			payload-1, maxFramePayload)
	}
	need := 4 + payload
	if cap(fw.buf) < need {
		fw.buf = make([]byte, 0, max(need, 4096))
	}
	b := fw.buf[:0]
	b = binary.BigEndian.AppendUint32(b, uint32(payload))
	b = append(b, byte(f.typ))
	switch f.typ {
	case frameHello:
		b = append(b, f.flag)
		b = binary.BigEndian.AppendUint32(b, f.id)
		b = binary.BigEndian.AppendUint32(b, f.win)
		b = binary.BigEndian.AppendUint64(b, f.ver)
	case frameWelcome:
		b = append(b, f.flag)
	case frameVerdict:
		b = binary.BigEndian.AppendUint32(b, f.id)
		b = append(b, f.flag)
	case frameRefuse:
		b = append(b, f.flag)
	case frameAck:
		b = binary.BigEndian.AppendUint32(b, f.id)
		b = binary.BigEndian.AppendUint64(b, f.ver)
	case frameBegin:
		b = binary.BigEndian.AppendUint32(b, f.id)
		b = binary.BigEndian.AppendUint64(b, f.size)
		b = binary.BigEndian.AppendUint32(b, f.win)
	case frameSubscribed:
		b = binary.BigEndian.AppendUint32(b, f.id)
		b = binary.BigEndian.AppendUint64(b, f.ver)
		b = binary.BigEndian.AppendUint64(b, f.size)
		b = append(b, f.flag)
		b = binary.BigEndian.AppendUint32(b, f.win)
	case frameEditAck, frameResume:
		b = binary.BigEndian.AppendUint32(b, f.id)
		b = binary.BigEndian.AppendUint64(b, f.ver)
	case frameVerdictUpdate:
		b = binary.BigEndian.AppendUint32(b, f.id)
		b = binary.BigEndian.AppendUint64(b, f.ver)
		b = append(b, f.flag)
	case frameEdit:
		b = binary.BigEndian.AppendUint32(b, f.id)
		b = binary.BigEndian.AppendUint64(b, f.ver)
		b = append(b, f.flag)
		b = binary.BigEndian.AppendUint16(b, uint16(len(f.addr)))
		for _, k := range f.addr {
			b = binary.BigEndian.AppendUint64(b, k)
		}
	case frameError:
	default:
		b = binary.BigEndian.AppendUint32(b, f.id)
	}
	b = append(b, f.str...)
	b = append(b, f.data...)
	fw.buf = b
	if _, err = fw.w.Write(b); err != nil {
		return err
	}
	if fw.tap != nil {
		fw.tap.TapFrame(TapOut, fw.sess, b, nil)
	}
	return nil
}

// writeChunk writes one chunk frame with a vectored write: the 9-byte
// header (length prefix, type, stream id) is assembled in a stack
// buffer and handed to the socket *together with* the caller's payload
// via net.Buffers — one writev on a TCP conn, no copy of the chunk
// bytes into the writer's scratch. This is the wire's hot path; every
// other frame type goes through the general write above.
func (fw *frameWriter) writeChunk(id uint32, data []byte) error {
	if len(data) > maxFramePayload-4 {
		return fmt.Errorf("transport: frame of %d bytes exceeds the %d-byte limit (chunk the transfer)",
			len(data)+4, maxFramePayload)
	}
	binary.BigEndian.PutUint32(fw.hdr[0:4], uint32(1+4+len(data)))
	fw.hdr[4] = byte(frameChunk)
	binary.BigEndian.PutUint32(fw.hdr[5:9], id)
	if len(data) == 0 {
		if _, err := fw.w.Write(fw.hdr[:]); err != nil {
			return err
		}
		if fw.tap != nil {
			fw.tap.TapFrame(TapOut, fw.sess, fw.hdr[:], nil)
		}
		return nil
	}
	fw.vec[0], fw.vec[1] = fw.hdr[:], data
	fw.bufs = net.Buffers(fw.vec[:])
	_, err := fw.bufs.WriteTo(fw.w)
	fw.vec[0], fw.vec[1] = nil, nil // do not pin the payload past the write
	fw.bufs = nil
	if err != nil {
		return err
	}
	if fw.tap != nil {
		fw.tap.TapFrame(TapOut, fw.sess, fw.hdr[:], data)
	}
	return nil
}

// frameReader decodes frames from one stream. The payload buffer is
// reused: a decoded frame's str/data alias it and are valid until the
// next read — the same lifetime contract Fragment.Next exposes.
type frameReader struct {
	r    *bufio.Reader
	buf  []byte
	obs  *obs.Collector // decode timing sink (nil: no-op)
	tap  Tap            // flight-recorder seam (nil: no-op)
	sess uint64         // session trace ID tagged onto tapped frames
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{r: bufio.NewReaderSize(r, 32<<10)}
}

// read decodes the next frame. Truncated input yields io.ErrUnexpectedEOF
// (clean EOF between frames yields io.EOF); oversized or malformed
// frames yield a descriptive error. It never panics on garbage.
func (fr *frameReader) read() (frame, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(fr.r, hdr[:4]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return frame{}, fmt.Errorf("transport: truncated frame header: %w", err)
		}
		return frame{}, err
	}
	// The decode timer starts once the length prefix has arrived: the
	// wait for it is idle time between frames, not decode cost.
	start := fr.obs.Nanos()
	length := binary.BigEndian.Uint32(hdr[:4])
	if length == 0 {
		return frame{}, codecErrf("transport: empty frame (missing type byte)")
	}
	if length-1 > maxFramePayload {
		return frame{}, codecErrf("transport: frame of %d bytes exceeds the %d-byte limit", length-1, maxFramePayload)
	}
	if _, err := io.ReadFull(fr.r, hdr[4:5]); err != nil {
		return frame{}, fmt.Errorf("transport: truncated frame: %w", unexpected(err))
	}
	f := frame{typ: frameType(hdr[4])}
	if f.typ == frameInvalid || f.typ >= frameTypeEnd {
		return frame{}, codecErrf("transport: unknown frame type %d", hdr[4])
	}
	fixed, err := f.typ.fixedLen()
	if err != nil {
		return frame{}, err
	}
	rest := int(length) - 1
	if rest < fixed {
		return frame{}, codecErrf("transport: %d-byte payload too short for frame type %d", rest, f.typ)
	}
	if cap(fr.buf) < rest {
		fr.buf = make([]byte, 0, max(rest, 4096))
	}
	p := fr.buf[:rest]
	fr.buf = p
	if _, err := io.ReadFull(fr.r, p); err != nil {
		return frame{}, fmt.Errorf("transport: truncated frame: %w", unexpected(err))
	}
	tail := p[fixed:]
	switch f.typ {
	case frameHello:
		f.flag = p[0]
		f.id = binary.BigEndian.Uint32(p[1:5])
		f.win = binary.BigEndian.Uint32(p[5:9])
		f.ver = binary.BigEndian.Uint64(p[9:17])
		f.data = tail
	case frameWelcome:
		f.flag = p[0]
		f.data = tail
	case frameError:
		f.str = string(tail)
	case frameRefuse:
		f.flag = p[0]
		f.str = string(tail)
	case frameVerdict:
		f.id = binary.BigEndian.Uint32(p[0:4])
		f.flag = p[4]
	case frameBegin:
		f.id = binary.BigEndian.Uint32(p[0:4])
		f.size = binary.BigEndian.Uint64(p[4:12])
		f.win = binary.BigEndian.Uint32(p[12:16])
	case frameChunk:
		f.id = binary.BigEndian.Uint32(p[0:4])
		f.data = tail
	case frameVerdictReq, frameOpen, frameSubscribe, frameResume:
		f.id = binary.BigEndian.Uint32(p[0:4])
		if f.typ == frameResume {
			f.ver = binary.BigEndian.Uint64(p[4:12])
		}
		f.str = string(tail)
	case frameEnd, frameVerdictCancel, framePing, framePong:
		f.id = binary.BigEndian.Uint32(p[0:4])
		if len(tail) != 0 {
			return frame{}, codecErrf("transport: unexpected %d-byte tail on frame type %d", len(tail), f.typ)
		}
	case frameAck:
		f.id = binary.BigEndian.Uint32(p[0:4])
		f.ver = binary.BigEndian.Uint64(p[4:12])
		if len(tail) != 0 {
			return frame{}, codecErrf("transport: unexpected %d-byte tail on frame type %d", len(tail), f.typ)
		}
	case frameSubscribed:
		f.id = binary.BigEndian.Uint32(p[0:4])
		f.ver = binary.BigEndian.Uint64(p[4:12])
		f.size = binary.BigEndian.Uint64(p[12:20])
		f.flag = p[20]
		f.win = binary.BigEndian.Uint32(p[21:25])
		if len(tail) != 0 {
			return frame{}, codecErrf("transport: unexpected %d-byte tail on frame type %d", len(tail), f.typ)
		}
	case frameEditAck:
		f.id = binary.BigEndian.Uint32(p[0:4])
		f.ver = binary.BigEndian.Uint64(p[4:12])
		if len(tail) != 0 {
			return frame{}, codecErrf("transport: unexpected %d-byte tail on frame type %d", len(tail), f.typ)
		}
	case frameVerdictUpdate:
		f.id = binary.BigEndian.Uint32(p[0:4])
		f.ver = binary.BigEndian.Uint64(p[4:12])
		f.flag = p[12]
		if len(tail) != 0 {
			return frame{}, codecErrf("transport: unexpected %d-byte tail on frame type %d", len(tail), f.typ)
		}
	case frameEdit:
		f.id = binary.BigEndian.Uint32(p[0:4])
		f.ver = binary.BigEndian.Uint64(p[4:12])
		f.flag = p[12]
		n := int(binary.BigEndian.Uint16(p[13:15]))
		if n > maxEditAddr {
			return frame{}, codecErrf("transport: edit address of %d components exceeds the %d limit", n, maxEditAddr)
		}
		if len(tail) < 8*n {
			return frame{}, codecErrf("transport: edit frame too short for a %d-component address", n)
		}
		if n > 0 {
			f.addr = make([]uint64, n)
			for i := range f.addr {
				f.addr[i] = binary.BigEndian.Uint64(tail[8*i:])
			}
		}
		f.data = tail[8*n:]
	case frameReject, frameStreamErr:
		f.id = binary.BigEndian.Uint32(p[0:4])
		f.str = string(tail)
	}
	if fr.tap != nil {
		fr.tap.TapFrame(TapIn, fr.sess, hdr[:], p)
	}
	fr.obs.Observe(obs.HFrameDecodeNs, fr.obs.Nanos()-start)
	fr.obs.Add(obs.CFramesDecoded, 1)
	return f, nil
}

// unexpected maps a clean EOF in the middle of a frame to
// io.ErrUnexpectedEOF, so truncation is always distinguishable from a
// clean close between frames.
func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// wireChunk encodes a chunk budget for the hello frame: budgets at or
// above the uint32 ceiling (notably the unchunked math.MaxInt sentinel)
// travel as MaxUint32.
func wireChunk(budget int) uint32 {
	if budget <= 0 || budget >= math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(budget)
}

// budgetFromWire decodes it.
func budgetFromWire(w uint32) int {
	if w == math.MaxUint32 {
		return math.MaxInt
	}
	return int(w)
}
