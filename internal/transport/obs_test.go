package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"

	"dxml/internal/obs"
)

// decodeSpans parses one side's JSONL trace stream.
func decodeSpans(t *testing.T, buf *bytes.Buffer) []obs.Span {
	t.Helper()
	var spans []obs.Span
	dec := json.NewDecoder(buf)
	for {
		var s obs.Span
		if err := dec.Decode(&s); err == io.EOF {
			return spans
		} else if err != nil {
			t.Fatalf("bad JSONL span: %v", err)
		}
		spans = append(spans, s)
	}
}

// TestStitchedTrace is the cross-process observability contract: the
// client mints a trace ID at Dial, the hello carries it to the host,
// and both sides' JSONL span streams tag every lifecycle span with it —
// so one fragment's timeline (hello → open → chunks → verdict) stitches
// across the two processes of a session from their two trace files.
func TestStitchedTrace(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	digest := Digest("stitched-trace")
	sources := map[string]Source{"f1": &fakeSource{blob: blob(4096), verdict: true}}

	var hostJSONL, clientJSONL bytes.Buffer
	hostObs, clientObs := obs.New(), obs.New()
	hostLog, clientLog := obs.NewTraceLog(&hostJSONL), obs.NewTraceLog(&clientJSONL)
	hostObs.SetTrace(hostLog)
	clientObs.SetTrace(clientLog)

	h := NewHost(ln, HostConfig{Digest: digest, Sources: sources, Obs: hostObs})
	c, err := Dial(h.Addr().String(), Config{Digest: digest, Chunk: 256, Obs: clientObs})
	if err != nil {
		t.Fatal(err)
	}
	tid := c.TraceID()
	if tid == 0 {
		t.Fatal("client minted a zero trace ID")
	}

	if ok, err := c.Verdict(context.Background(), "f1"); err != nil || !ok {
		t.Fatalf("Verdict = %v, %v", ok, err)
	}
	frag, err := c.Open(context.Background(), "f1")
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := frag.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	h.Close() // waits for the session goroutines, so every span is emitted
	hostLog.Flush()
	clientLog.Flush()

	want := []string{"hello", "open", "chunks", "verdict"}
	for side, buf := range map[string]*bytes.Buffer{"host": &hostJSONL, "client": &clientJSONL} {
		spans := decodeSpans(t, buf)
		names := map[string]bool{}
		for _, s := range spans {
			if s.Trace != tid {
				t.Fatalf("%s span %q has trace %#x, want the session's %#x", side, s.Name, s.Trace, tid)
			}
			if s.End < s.Start {
				t.Fatalf("%s span %q ends before it starts (%d < %d)", side, s.Name, s.End, s.Start)
			}
			names[s.Name] = true
		}
		for _, n := range want {
			if !names[n] {
				t.Fatalf("%s trace has no %q span (got %v)", side, n, names)
			}
		}
	}
}

// TestTraceIDRoundTrip pins the v5 hello wiring in isolation: the
// host's sessions adopt exactly the ID the client minted.
func TestTraceIDRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	digest := Digest("trace-id")
	hostObs := obs.New()
	hostObs.SetTrace(obs.NewTraceLog(nil))
	h := NewHost(ln, HostConfig{Digest: digest,
		Sources: map[string]Source{"f1": &fakeSource{blob: blob(64), verdict: true}},
		Obs:     hostObs})
	defer h.Close()
	c, err := Dial(h.Addr().String(), Config{Digest: digest})
	if err != nil {
		t.Fatal(err)
	}
	tid := c.TraceID()
	c.Close()
	h.Close()
	for _, s := range hostObs.Trace().Spans() {
		if s.Trace != tid {
			t.Fatalf("host adopted trace %#x, client minted %#x", s.Trace, tid)
		}
	}
	if hostObs.Trace().Total() == 0 {
		t.Fatal("host emitted no spans (hello span missing)")
	}
}

// ringTap is the bench's stand-in for the flight recorder's ring: it
// copies every tapped frame into a fixed set of reusable slots. It
// lives here because transport cannot import internal/flight (cycle),
// but it performs the same work — copy head+tail into a bounded buffer
// under a lock — so the "recording" bench variant prices the real seam.
type ringTap struct {
	mu    sync.Mutex
	slots [64][]byte
	n     uint64
}

func (r *ringTap) TapFrame(dir TapDir, sess uint64, head, tail []byte) {
	r.mu.Lock()
	i := r.n % uint64(len(r.slots))
	buf := r.slots[i][:0]
	buf = append(buf, head...)
	buf = append(buf, tail...)
	r.slots[i] = buf
	r.n++
	r.mu.Unlock()
}

// benchChunkPath drives the wire's per-chunk hot path — the vectored
// writeChunk onto a real TCP conn plus the exact telemetry sequence
// creditedSend performs around it — under a given collector and tap.
// With c == nil this is the no-op sink the overhead gate compares
// against; the nil-tap variants must stay at 0 allocs/op.
func benchChunkPath(b *testing.B, c *obs.Collector, tap Tap) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		io.Copy(io.Discard, conn)
		conn.Close()
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	fw := &frameWriter{w: conn, tap: tap}
	chunk := blob(4096)
	const win = 32
	var ring []atomic.Int64
	if c != nil {
		// Mirrors creditedSend: the RTT ring exists only when
		// instrumented.
		ring = make([]atomic.Int64, win)
	}
	var sent uint64
	b.SetBytes(int64(len(chunk)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ring != nil {
			c.Observe(obs.HWindowOccupancy, int64(sent%win))
			ring[sent%uint64(len(ring))].Store(c.Nanos())
		}
		if err := fw.writeChunk(1, chunk); err != nil {
			b.Fatal(err)
		}
		if ring != nil {
			c.Add(obs.CChunksSent, 1)
			c.Observe(obs.HChunkBytes, int64(len(chunk)))
		}
		sent++
	}
	b.StopTimer()
	conn.Close()
	<-drained
}

// BenchmarkObsOverhead is the telemetry overhead gate: the instrumented
// chunk path against the no-op sink, both allocation-free with a nil
// tap. CI compares the throughputs and fails the build if
// instrumentation costs more than a few percent, or if either nil-tap
// path allocates. The "recording" variant additionally prices the
// flight-recorder seam live — copying every frame into a bounded ring —
// and is reported for EXPERIMENTS.md, not gated.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("noop", func(b *testing.B) { benchChunkPath(b, nil, nil) })
	b.Run("instrumented", func(b *testing.B) { benchChunkPath(b, obs.New(), nil) })
	b.Run("recording", func(b *testing.B) { benchChunkPath(b, obs.New(), &ringTap{}) })
}
