package transport

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// dialPair spins up a one-source host and a dialed client with explicit
// liveness settings.
func dialPair(t *testing.T, src Source, hostTimeout, heartbeat, timeout time.Duration) (*Conn, *Host) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	digest := Digest("liveness")
	h := NewHost(ln, HostConfig{Digest: digest, Sources: map[string]Source{"f1": src}, Timeout: hostTimeout})
	c, err := Dial(h.Addr().String(), Config{Digest: digest, Chunk: 64, Heartbeat: heartbeat, Timeout: timeout})
	if err != nil {
		h.Close()
		t.Fatal(err)
	}
	return c, h
}

// TestHeartbeatKeepsIdleSessionAlive: a session idle far longer than
// the host's liveness window stays up, because the client pings through
// the silence and the host's pongs refresh both deadlines.
func TestHeartbeatKeepsIdleSessionAlive(t *testing.T) {
	src := &fakeSource{blob: blob(10), verdict: true}
	c, h := dialPair(t, src, 200*time.Millisecond, 50*time.Millisecond, time.Second)
	defer h.Close()
	defer c.Close()
	time.Sleep(700 * time.Millisecond) // 3.5 host windows of application silence
	v, err := c.Verdict(context.Background(), "f1")
	if err != nil || !v {
		t.Fatalf("session died through heartbeated idle: v=%v err=%v", v, err)
	}
}

// TestClientTimeoutIsTyped: with the heartbeat disabled and a silent
// host, the client's read deadline fires within one timeout and every
// call fails with the typed timeout error — bounded dead-peer
// detection instead of an unbounded hang.
func TestClientTimeoutIsTyped(t *testing.T) {
	src := &fakeSource{blob: blob(10), verdict: true}
	// Host deadline disabled so it outlives the client and stays silent.
	c, h := dialPair(t, src, -1, -1, 150*time.Millisecond)
	defer h.Close()
	defer c.Close()
	select {
	case <-c.done:
	case <-time.After(5 * time.Second):
		t.Fatal("client read deadline never fired on a silent session")
	}
	_, err := c.Verdict(context.Background(), "f1")
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("expected a typed timeout, got %v", err)
	}
	var te *TimeoutError
	if !errors.As(err, &te) || te.Op != "read" {
		t.Fatalf("expected a read TimeoutError, got %#v", err)
	}
}

// TestHostDropsUnheardPeer: a client that never heartbeats is dropped
// by the host within its liveness window — the host does not hold dead
// sessions forever.
func TestHostDropsUnheardPeer(t *testing.T) {
	src := &fakeSource{blob: blob(10), verdict: true}
	c, h := dialPair(t, src, 150*time.Millisecond, -1, -1)
	defer h.Close()
	defer c.Close()
	select {
	case <-c.done: // host closed the socket; the client's read loop saw EOF
	case <-time.After(5 * time.Second):
		t.Fatal("host kept an unheard session past its liveness window")
	}
	if _, err := c.Verdict(context.Background(), "f1"); err == nil {
		t.Fatal("verdict on a host-dropped session should fail")
	}
}

// TestResumeConformance drives the resume handshake over both
// transports: a Resubscribe inside the log window is a suffix resume
// (no snapshot, Resumed true, first edit after+1), and one before the
// window falls back to a fresh full cut.
func TestResumeConformance(t *testing.T) {
	snapshot := blob(300)
	edits := []EditFrame{
		{Version: 8, Op: 1, Addr: []uint64{1 << 32}, Doc: []byte("<a/>\n")},
		{Version: 9, Op: 3, Addr: []uint64{1 << 32, 2 << 32}},
		{Version: 10, Op: 2, Addr: []uint64{7}, Doc: []byte("<b>\n  <c/>\n</b>\n")},
	}
	run := func(t *testing.T, s Session) {
		rs, ok := s.(ResumableSession)
		if !ok {
			t.Fatalf("%T does not implement ResumableSession", s)
		}
		src := currentLiveSource
		for _, e := range edits {
			src.publish(e)
		}
		// Inside the log window: suffix resume after version 8.
		feed, err := rs.Resubscribe(context.Background(), "f1", 8)
		if err != nil {
			t.Fatal(err)
		}
		if !feed.Resumed() {
			t.Fatal("resume inside the log window should be a suffix resume")
		}
		if feed.Base() != 8 || feed.SnapshotSize() != 0 {
			t.Fatalf("resumed cut: base %d size %d, want 8 0", feed.Base(), feed.SnapshotSize())
		}
		if _, err := feed.NextChunk(); err != io.EOF {
			t.Fatalf("resumed snapshot phase should be empty, got %v", err)
		}
		for _, want := range edits[1:] {
			e, err := feed.NextEdit(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if e.Version != want.Version || e.Op != want.Op || !bytes.Equal(e.Doc, want.Doc) {
				t.Fatalf("resumed edit: got %+v want %+v", e, want)
			}
		}
		if err := feed.Close(); err != nil {
			t.Fatal(err)
		}
		// Before the log window: fresh full cut.
		feed, err = rs.Resubscribe(context.Background(), "f1", 3)
		if err != nil {
			t.Fatal(err)
		}
		if feed.Resumed() {
			t.Fatal("resume before the log window must fall back to a full cut")
		}
		if feed.Base() != 7 || feed.SnapshotSize() != len(snapshot) {
			t.Fatalf("fallback cut: base %d size %d, want 7 %d", feed.Base(), feed.SnapshotSize(), len(snapshot))
		}
		var got bytes.Buffer
		for {
			chunk, err := feed.NextChunk()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			got.Write(chunk)
		}
		if !bytes.Equal(got.Bytes(), snapshot) {
			t.Fatalf("fallback snapshot corrupted: %d bytes vs %d", got.Len(), len(snapshot))
		}
		if e, err := feed.NextEdit(context.Background()); err != nil || e.Version != 8 {
			t.Fatalf("fallback first edit: %+v %v", e, err)
		}
		if err := feed.Close(); err != nil {
			t.Fatal(err)
		}
	}
	t.Run("inproc", func(t *testing.T) {
		currentLiveSource = newFakeLive(snapshot, 7)
		run(t, &InProc{Sources: map[string]Source{"f1": currentLiveSource}, Chunk: 64})
	})
	t.Run("tcp", func(t *testing.T) {
		currentLiveSource = newFakeLive(snapshot, 7)
		eachTCP(t, map[string]Source{"f1": currentLiveSource}, 64, run)
	})
}
