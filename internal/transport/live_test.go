package transport

import (
	"bytes"
	"context"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeLiveSource is a fakeSource with an edit log: a fixed snapshot
// plus edits published by the test.
type fakeLiveSource struct {
	fakeSource
	version uint64

	mu      sync.Mutex
	edits   []EditFrame
	changed chan struct{}

	verdictMu sync.Mutex
	verdicts  []bool
	opens     int
	closes    int
	verdictCh chan bool     // one send per NoteVerdict
	released  chan struct{} // closed when every open feed has closed
}

func newFakeLive(snapshot []byte, version uint64) *fakeLiveSource {
	return &fakeLiveSource{
		fakeSource: fakeSource{blob: snapshot, verdict: true},
		version:    version,
		changed:    make(chan struct{}),
		verdictCh:  make(chan bool, 64),
		released:   make(chan struct{}),
	}
}

func (s *fakeLiveSource) publish(e EditFrame) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.edits = append(s.edits, e)
	close(s.changed)
	s.changed = make(chan struct{})
}

func (s *fakeLiveSource) OpenLive(ctx context.Context) (LiveFeedSrc, error) {
	s.verdictMu.Lock()
	s.opens++
	s.verdictMu.Unlock()
	return &fakeLiveFeed{src: s, base: s.version, size: len(s.blob)}, nil
}

// OpenLiveSince implements ResumableSource: the fake's log always
// starts at its fixed base version, so a resume is possible iff `after`
// is not before it (and not ahead of what was published).
func (s *fakeLiveSource) OpenLiveSince(ctx context.Context, after uint64) (LiveFeedSrc, bool, error) {
	s.mu.Lock()
	covered := after >= s.version && after <= s.version+uint64(len(s.edits))
	s.mu.Unlock()
	if !covered {
		return s.openFull(ctx)
	}
	s.verdictMu.Lock()
	s.opens++
	s.verdictMu.Unlock()
	return &fakeLiveFeed{src: s, base: after, size: 0, empty: true}, true, nil
}

// OpenLive's two return values as a three-value resume fallback.
func (s *fakeLiveSource) openFull(ctx context.Context) (LiveFeedSrc, bool, error) {
	lf, err := s.OpenLive(ctx)
	return lf, false, err
}

type fakeLiveFeed struct {
	src   *fakeLiveSource
	base  uint64
	size  int
	empty bool // resumed: no snapshot bytes
}

func (f *fakeLiveFeed) Version() uint64 { return f.base }
func (f *fakeLiveFeed) Size() int       { return f.size }
func (f *fakeLiveFeed) Serialize(w io.Writer) error {
	if f.empty {
		return nil
	}
	return f.src.Serialize(w)
}

func (f *fakeLiveFeed) NextEdit(ctx context.Context, after uint64) (EditFrame, error) {
	idx := int(after - f.src.version)
	for {
		f.src.mu.Lock()
		if idx < len(f.src.edits) {
			e := f.src.edits[idx]
			f.src.mu.Unlock()
			return e, nil
		}
		ch := f.src.changed
		f.src.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return EditFrame{}, ctx.Err()
		}
	}
}

func (f *fakeLiveFeed) NoteVerdict(version uint64, valid bool) {
	f.src.verdictMu.Lock()
	f.src.verdicts = append(f.src.verdicts, valid)
	f.src.verdictMu.Unlock()
	f.src.verdictCh <- valid
}

func (f *fakeLiveFeed) Close() {
	f.src.verdictMu.Lock()
	defer f.src.verdictMu.Unlock()
	f.src.closes++
	if f.src.closes == f.src.opens {
		select {
		case <-f.src.released:
		default:
			close(f.src.released)
		}
	}
}

// TestSubscribeConformance drives a live subscription over both
// transports: the snapshot arrives chunked and intact, edits arrive in
// order with their addresses and payloads, verdict updates reach the
// source, and unsubscribing releases it.
func TestSubscribeConformance(t *testing.T) {
	snapshot := blob(300)
	edits := []EditFrame{
		{Version: 8, Op: 1, Addr: []uint64{1 << 32}, Doc: []byte("<a/>\n")},
		{Version: 9, Op: 3, Addr: []uint64{1 << 32, 2 << 32}},
		{Version: 10, Op: 2, Addr: []uint64{7}, Doc: []byte("<b>\n  <c/>\n</b>\n")},
	}
	run := func(t *testing.T, s Session) {
		ls, ok := s.(LiveSession)
		if !ok {
			t.Fatalf("%T does not implement LiveSession", s)
		}
		src := currentLiveSource
		feed, err := ls.Subscribe(context.Background(), "f1")
		if err != nil {
			t.Fatal(err)
		}
		if feed.Base() != 7 || feed.SnapshotSize() != len(snapshot) {
			t.Fatalf("cut: base %d size %d, want 7 %d", feed.Base(), feed.SnapshotSize(), len(snapshot))
		}
		var got bytes.Buffer
		for {
			chunk, err := feed.NextChunk()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(chunk) > 64 {
				t.Fatalf("chunk of %d bytes over budget 64", len(chunk))
			}
			got.Write(chunk)
		}
		if !bytes.Equal(got.Bytes(), snapshot) {
			t.Fatalf("snapshot corrupted: %d bytes vs %d", got.Len(), len(snapshot))
		}
		go func() {
			for _, e := range edits {
				src.publish(e)
			}
		}()
		for i, want := range edits {
			e, err := feed.NextEdit(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if e.Version != want.Version || e.Op != want.Op ||
				len(e.Addr) != len(want.Addr) || !bytes.Equal(e.Doc, want.Doc) {
				t.Fatalf("edit %d: got %+v want %+v", i, e, want)
			}
			for j := range want.Addr {
				if e.Addr[j] != want.Addr[j] {
					t.Fatalf("edit %d: addr %v want %v", i, e.Addr, want.Addr)
				}
			}
			if err := feed.SendVerdict(e.Version, i%2 == 0); err != nil {
				t.Fatal(err)
			}
		}
		// Verdict updates are asynchronous on TCP; wait for delivery.
		for i := 0; i < len(edits); i++ {
			select {
			case <-src.verdictCh:
			case <-time.After(2 * time.Second):
				t.Fatalf("verdict updates delivered: %d of %d", i, len(edits))
			}
		}
		if err := feed.Close(); err != nil {
			t.Fatal(err)
		}
		select {
		case <-src.released:
		case <-time.After(2 * time.Second):
			t.Fatal("unsubscribe never released the source feed")
		}
	}
	// Fresh source per transport (eachTransport builds both from the
	// same map, so swap the shared pointer per subtest).
	t.Run("inproc", func(t *testing.T) {
		currentLiveSource = newFakeLive(snapshot, 7)
		run(t, &InProc{Sources: map[string]Source{"f1": currentLiveSource}, Chunk: 64})
	})
	t.Run("tcp", func(t *testing.T) {
		currentLiveSource = newFakeLive(snapshot, 7)
		eachTCP(t, map[string]Source{"f1": currentLiveSource}, 64, run)
	})
}

var currentLiveSource *fakeLiveSource

// eachTCP dials a one-host TCP session around run.
func eachTCP(t *testing.T, sources map[string]Source, chunk int, run func(t *testing.T, s Session)) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	digest := Digest("live-conformance")
	h := NewHost(ln, HostConfig{Digest: digest, Sources: sources})
	defer h.Close()
	c, err := Dial(h.Addr().String(), Config{Digest: digest, Chunk: chunk})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	run(t, c)
}

// TestSubscribeNotLive: subscribing to a docking point without an
// editor fails cleanly on both transports.
func TestSubscribeNotLive(t *testing.T) {
	sources := map[string]Source{"f1": &fakeSource{blob: blob(10), verdict: true}}
	eachTransport(t, sources, 16, func(t *testing.T, s Session) {
		ls := s.(LiveSession)
		if _, err := ls.Subscribe(context.Background(), "f1"); err == nil || !strings.Contains(err.Error(), "not live") {
			t.Fatalf("expected a not-live error, got %v", err)
		}
		if _, err := ls.Subscribe(context.Background(), "f9"); err == nil {
			t.Fatal("expected an unknown docking point error")
		}
	})
}
