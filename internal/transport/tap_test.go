package transport

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// memTap records every tapped frame with copied bytes — the reference
// Tap implementation for tests (the real one lives in internal/flight).
type memTap struct {
	mu     sync.Mutex
	frames []tappedFrame
}

type tappedFrame struct {
	dir  TapDir
	sess uint64
	wire []byte
}

func (m *memTap) TapFrame(dir TapDir, sess uint64, head, tail []byte) {
	w := make([]byte, 0, len(head)+len(tail))
	w = append(append(w, head...), tail...)
	m.mu.Lock()
	m.frames = append(m.frames, tappedFrame{dir: dir, sess: sess, wire: w})
	m.mu.Unlock()
}

func (m *memTap) snapshot() []tappedFrame {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]tappedFrame(nil), m.frames...)
}

// types returns "dir:type" strings in tap order, the compact shape the
// assertions below grep.
func (m *memTap) types(t *testing.T) []string {
	t.Helper()
	var out []string
	for _, f := range m.snapshot() {
		info, err := DecodeFrame(f.wire)
		if err != nil {
			t.Fatalf("tapped frame does not decode: %v", err)
		}
		out = append(out, f.dir.String()+":"+info.Type)
	}
	return out
}

func hasSeq(got []string, want ...string) bool {
	i := 0
	for _, g := range got {
		if i < len(want) && g == want[i] {
			i++
		}
	}
	return i == len(want)
}

// TestTapTCPBothDirections is the flight-recorder seam's conformance
// test on the real wire: every frame a session writes or reads is
// tapped, in both processes, with wire bytes that decode back to the
// frames the protocol actually exchanged.
func TestTapTCPBothDirections(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	digest := Digest("tap-conformance")
	doc := blob(1000)
	sources := map[string]Source{"f1": &fakeSource{blob: doc, verdict: true}}
	hostTap, clientTap := &memTap{}, &memTap{}

	h := NewHost(ln, HostConfig{Digest: digest, Sources: sources, Tap: hostTap})
	defer h.Close()
	c, err := Dial(h.Addr().String(), Config{Digest: digest, Chunk: 256, Tap: clientTap})
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := c.Verdict(context.Background(), "f1"); err != nil || !ok {
		t.Fatalf("Verdict = %v, %v", ok, err)
	}
	frag, err := c.Open(context.Background(), "f1")
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	for {
		chunk, err := frag.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, chunk...)
	}
	c.Close()
	h.Close() // waits for session goroutines: every host-side tap has fired

	ct := clientTap.types(t)
	if !hasSeq(ct, "out:hello", "in:welcome", "out:verdict_req", "in:verdict", "out:open", "in:begin", "in:chunk", "in:end") {
		t.Fatalf("client tap missed the session lifecycle: %v", ct)
	}
	ht := hostTap.types(t)
	if !hasSeq(ht, "in:hello", "out:welcome", "in:verdict_req", "out:verdict", "in:open", "out:begin", "out:chunk", "out:end") {
		t.Fatalf("host tap missed the session lifecycle: %v", ht)
	}

	// The tapped chunk payloads reassemble to the exact document, and
	// both sides observed the same session trace ID once established.
	var rebuilt []byte
	tid := c.TraceID()
	for _, f := range clientTap.snapshot() {
		info, err := DecodeFrame(f.wire)
		if err != nil {
			t.Fatal(err)
		}
		if info.Type == "chunk" {
			rebuilt = append(rebuilt, info.Data...)
			if f.sess != tid {
				t.Fatalf("chunk tapped under session %#x, want %#x", f.sess, tid)
			}
		}
	}
	if !bytes.Equal(rebuilt, doc) {
		t.Fatalf("tapped chunks rebuild %d bytes, want %d", len(rebuilt), len(doc))
	}
	if !bytes.Equal(rebuilt, got) {
		t.Fatal("tap saw different bytes than the application")
	}
}

// TestTapInProc pins the in-process transport's synthesized frames: the
// loopback session fabricates the same wire the TCP transport would
// carry, so a flight recording of an InProc federation decodes with the
// same tooling.
func TestTapInProc(t *testing.T) {
	doc := blob(300)
	tap := &memTap{}
	s := &InProc{
		Sources: map[string]Source{"f1": &fakeSource{blob: doc, verdict: true}},
		Chunk:   128,
		Tap:     tap,
	}
	if ok, err := s.Verdict(context.Background(), "f1"); err != nil || !ok {
		t.Fatalf("Verdict = %v, %v", ok, err)
	}
	frag, err := s.Open(context.Background(), "f1")
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := frag.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	types := tap.types(t)
	if !hasSeq(types, "out:verdict_req", "in:verdict", "out:open", "in:begin", "in:chunk", "in:end") {
		t.Fatalf("inproc tap = %v", types)
	}
	var rebuilt []byte
	for _, f := range tap.snapshot() {
		info, _ := DecodeFrame(f.wire)
		if info.Type == "chunk" {
			rebuilt = append(rebuilt, info.Data...)
		}
		if f.sess == 0 {
			t.Fatal("inproc tap minted no session ID")
		}
	}
	if !bytes.Equal(rebuilt, doc) {
		t.Fatalf("tapped chunks rebuild %d bytes, want %d", len(rebuilt), len(doc))
	}
}

// TestDecodeFrameRoundTrip feeds every frame shape through the real
// encoder and back through DecodeFrame.
func TestDecodeFrameRoundTrip(t *testing.T) {
	frames := []frame{
		{typ: frameHello, flag: protocolVersion, id: 4096, win: 32, data: Digest("d")},
		{typ: frameVerdictReq, id: 7, str: "f1"},
		{typ: frameVerdict, id: 7, flag: 1},
		{typ: frameOpen, id: 3, str: "f2"},
		{typ: frameBegin, id: 3, size: 9999, win: 8},
		{typ: frameChunk, id: 3, data: []byte("payload")},
		{typ: frameAck, id: 3, ver: 12},
		{typ: frameEnd, id: 3},
		{typ: frameReject, id: 3, str: "no thanks"},
		{typ: frameRefuse, flag: uint8(RefuseOverCapacity), str: "full"},
	}
	for _, f := range frames {
		var buf bytes.Buffer
		fw := &frameWriter{w: &buf}
		if err := fw.write(f); err != nil {
			t.Fatal(err)
		}
		info, err := DecodeFrame(buf.Bytes())
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if info.Kind != byte(f.typ) || info.Type != FrameTypeName(byte(f.typ)) {
			t.Fatalf("decoded %q (%d), want %q", info.Type, info.Kind, FrameTypeName(byte(f.typ)))
		}
		if info.Stream != f.id || info.Size != f.size || info.Ver != f.ver ||
			info.Win != f.win || info.Flag != f.flag || info.Str != f.str {
			t.Fatalf("fields drifted: %+v vs %+v", info, f)
		}
		if !bytes.Equal(info.Data, f.data) {
			t.Fatalf("data drifted: %q vs %q", info.Data, f.data)
		}
		if info.WireLen != buf.Len() || info.Truncated {
			t.Fatalf("WireLen %d (of %d), truncated %v", info.WireLen, buf.Len(), info.Truncated)
		}
	}
}

func TestDecodeFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	fw := &frameWriter{w: &buf}
	if err := fw.write(frame{typ: frameChunk, id: 77, data: blob(1000)}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	info, err := DecodeFrame(full[:64])
	if err != nil {
		t.Fatal(err)
	}
	if !info.Truncated || info.Type != "chunk" || info.Stream != 77 {
		t.Fatalf("truncated decode = %+v", info)
	}
	if info.WireLen != len(full) {
		t.Fatalf("WireLen = %d, want %d", info.WireLen, len(full))
	}
}

func TestDecodeFrameGarbage(t *testing.T) {
	cases := map[string][]byte{
		"too short":    {1, 2},
		"zero length":  {0, 0, 0, 0, 0},
		"unknown type": {0, 0, 0, 1, 99},
		"oversize":     {0xff, 0xff, 0xff, 0xff, 8},
		"short fixed":  {0, 0, 0, 2, 8, 1}, // chunk needs a 4-byte id
	}
	for name, b := range cases {
		info, err := DecodeFrame(b)
		if err == nil {
			t.Fatalf("%s decoded: %+v", name, info)
		}
		if name != "too short" && !errors.Is(err, ErrCodec) {
			t.Fatalf("%s: error %v is not ErrCodec", name, err)
		}
	}
}

// TestHostOnErrorClassifies pins the failure seam the postmortem dumper
// hangs off: a refused hello and a garbage frame each reach OnError as
// a typed error, while a clean close reaches it not at all.
func TestHostOnErrorClassifies(t *testing.T) {
	newHost := func(t *testing.T, router Router) (*Host, chan error) {
		t.Helper()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		errs := make(chan error, 16)
		h := NewHost(ln, HostConfig{Router: router, OnError: func(e error) { errs <- e }})
		t.Cleanup(func() { h.Close() })
		return h, errs
	}
	digest := Digest("on-error")
	router := &mapRouter{designs: map[string]map[string]Source{
		string(digest): {"f1": &fakeSource{blob: blob(8), verdict: true}},
	}}

	t.Run("refused hello", func(t *testing.T) {
		h, errs := newHost(t, router)
		_, err := Dial(h.Addr().String(), Config{Digest: Digest("some-other-design")})
		var re *RefusedError
		if !errors.As(err, &re) {
			t.Fatalf("dial error %v is not a refusal", err)
		}
		select {
		case err := <-errs:
			if !errors.As(err, &re) {
				t.Fatalf("OnError got %v, want a RefusedError", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("refusal never reached OnError")
		}
	})

	t.Run("garbage hello", func(t *testing.T) {
		h, errs := newHost(t, router)
		conn, err := net.Dial("tcp", h.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conn.Write([]byte{0, 0, 0, 1, 99}) // unknown frame type
		select {
		case err := <-errs:
			if !errors.Is(err, ErrCodec) {
				t.Fatalf("OnError got %v, want ErrCodec", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("codec failure never reached OnError")
		}
		conn.Close()
	})

	t.Run("clean close is silent", func(t *testing.T) {
		h, errs := newHost(t, router)
		c, err := Dial(h.Addr().String(), Config{Digest: digest})
		if err != nil {
			t.Fatal(err)
		}
		c.Close()
		select {
		case err := <-errs:
			t.Fatalf("clean close reported %v", err)
		case <-time.After(200 * time.Millisecond):
		}
	})
}
