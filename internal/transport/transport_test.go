package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSource is a test Source: a fixed byte blob with a fixed verdict.
// serialized tracks how many bytes Serialize managed to write before
// the transport halted it — the observable effect of a reject frame.
type fakeSource struct {
	blob       []byte
	verdict    bool
	slow       bool // poll ctx awareness via many small writes
	serialized atomic.Int64
	done       chan struct{} // when set, closed once Serialize returns
}

func (s *fakeSource) Verdict(ctx context.Context) bool { return s.verdict }
func (s *fakeSource) Size() int                        { return len(s.blob) }

func (s *fakeSource) Serialize(w io.Writer) error {
	if s.done != nil {
		defer close(s.done)
	}
	step := len(s.blob)
	if s.slow {
		step = 8
	}
	for off := 0; off < len(s.blob); off += step {
		n, err := w.Write(s.blob[off:min(off+step, len(s.blob))])
		s.serialized.Add(int64(n))
		if err != nil {
			return err
		}
	}
	return nil
}

func blob(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + i%26)
	}
	return b
}

// eachTransport runs a conformance test against both implementations,
// so the in-process reference and the TCP wire cannot drift apart.
func eachTransport(t *testing.T, sources map[string]Source, chunk int, run func(t *testing.T, s Session)) {
	t.Helper()
	t.Run("inproc", func(t *testing.T) {
		run(t, &InProc{Sources: sources, Chunk: chunk})
	})
	t.Run("tcp", func(t *testing.T) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		digest := Digest("conformance")
		h := NewHost(ln, HostConfig{Digest: digest, Sources: sources})
		defer h.Close()
		c, err := Dial(h.Addr().String(), Config{Digest: digest, Chunk: chunk})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		run(t, c)
	})
}

func TestSessionStreamsFragment(t *testing.T) {
	doc := blob(1000)
	sources := map[string]Source{"f1": &fakeSource{blob: doc, verdict: true}}
	eachTransport(t, sources, 64, func(t *testing.T, s Session) {
		frag, err := s.Open(context.Background(), "f1")
		if err != nil {
			t.Fatal(err)
		}
		var got []byte
		frames := 0
		for {
			chunk, err := frag.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(chunk) > 64 {
				t.Fatalf("chunk of %d bytes exceeds the 64-byte budget", len(chunk))
			}
			frames++
			got = append(got, chunk...)
		}
		if !bytes.Equal(got, doc) {
			t.Fatalf("reassembled %d bytes, want %d", len(got), len(doc))
		}
		if want := (len(doc) + 63) / 64; frames != want {
			t.Fatalf("%d frames, want %d", frames, want)
		}
		if frag.Size() != len(doc) {
			t.Fatalf("Size = %d, want %d", frag.Size(), len(doc))
		}
	})
}

func TestSessionVerdicts(t *testing.T) {
	sources := map[string]Source{
		"good": &fakeSource{blob: blob(10), verdict: true},
		"bad":  &fakeSource{blob: blob(10), verdict: false},
	}
	eachTransport(t, sources, 64, func(t *testing.T, s Session) {
		// Concurrent verdicts multiplex over one session.
		var wg sync.WaitGroup
		errs := make(chan error, 16)
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if v, err := s.Verdict(context.Background(), "good"); err != nil || !v {
					errs <- fmt.Errorf("good: v=%v err=%v", v, err)
				}
				if v, err := s.Verdict(context.Background(), "bad"); err != nil || v {
					errs <- fmt.Errorf("bad: v=%v err=%v", v, err)
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
		if _, err := s.Verdict(context.Background(), "nope"); err == nil {
			t.Error("verdict for unknown docking point should fail")
		}
	})
}

// TestSessionAbortHaltsSender is the mid-transfer rejection guarantee:
// after Abort, the sender stops serializing — bytes past the failure
// point never exist, let alone travel.
func TestSessionAbortHaltsSender(t *testing.T) {
	const size = 100_000
	src := &fakeSource{blob: blob(size), verdict: true, slow: true}
	sources := map[string]Source{"f1": src}
	eachTransport(t, sources, 128, func(t *testing.T, s Session) {
		src.serialized.Store(0)
		src.done = make(chan struct{})
		frag, err := s.Open(context.Background(), "f1")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := frag.Next(); err != nil {
				t.Fatal(err)
			}
		}
		frag.Abort()
		// The sender learns about the reject asynchronously: wait for
		// Serialize to return, then check it stopped far short of the end.
		select {
		case <-src.done:
		case <-time.After(5 * time.Second):
			t.Fatal("sender still serializing long after the abort")
		}
		if n := src.serialized.Load(); n >= size/10 {
			t.Errorf("sender serialized %d of %d bytes after an abort at ~384", n, size)
		}
	})
}

// blockingSource parks in Verdict until its context dies, recording
// that the cancellation actually reached it.
type blockingSource struct {
	entered  chan struct{}
	canceled chan struct{}
}

func (s *blockingSource) Verdict(ctx context.Context) bool {
	close(s.entered)
	<-ctx.Done()
	close(s.canceled)
	return false
}
func (s *blockingSource) Size() int                   { return 0 }
func (s *blockingSource) Serialize(w io.Writer) error { return nil }

// TestVerdictCancelPropagates pins the short-circuit guarantee across
// the wire: canceling a Verdict call must stop the remote validation
// mid-document (a verdict-cancel frame over TCP, the shared context in
// process), not let it run to completion.
func TestVerdictCancelPropagates(t *testing.T) {
	src := &blockingSource{entered: make(chan struct{}), canceled: make(chan struct{})}
	sources := map[string]Source{"f1": src}
	eachTransport(t, sources, 64, func(t *testing.T, s Session) {
		if src.entered == nil || isClosed(src.entered) {
			// eachTransport runs twice; re-arm the source.
			src = &blockingSource{entered: make(chan struct{}), canceled: make(chan struct{})}
			sources["f1"] = src
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := s.Verdict(ctx, "f1")
			done <- err
		}()
		<-src.entered
		cancel()
		if err := <-done; err == nil {
			t.Fatal("canceled verdict returned nil error")
		}
		select {
		case <-src.canceled:
		case <-time.After(5 * time.Second):
			t.Fatal("cancellation never reached the hosted peer; it would validate to completion")
		}
	})
}

func isClosed(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

func TestSessionOpenUnknown(t *testing.T) {
	eachTransport(t, map[string]Source{}, 64, func(t *testing.T, s Session) {
		if _, err := s.Open(context.Background(), "ghost"); err == nil {
			t.Error("open of unknown docking point should fail")
		}
	})
}

func TestTCPHelloDigestMismatch(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h := NewHost(ln, HostConfig{Digest: Digest("design A"), Sources: map[string]Source{}})
	defer h.Close()
	_, err = Dial(h.Addr().String(), Config{Digest: Digest("design B"), Chunk: 64})
	if err == nil || !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("mismatched digests should fail the hello, got %v", err)
	}
	// The refusal is typed on the wire, not a generic session error: it
	// unwraps to ErrUnknownDesign (and not to ErrOverCapacity).
	if !errors.Is(err, ErrUnknownDesign) {
		t.Errorf("digest mismatch should unwrap to ErrUnknownDesign, got %v", err)
	}
	if errors.Is(err, ErrOverCapacity) {
		t.Errorf("digest mismatch must not read as a capacity refusal: %v", err)
	}
	// And a matching one succeeds on the same host.
	c, err := Dial(h.Addr().String(), Config{Digest: Digest("design A"), Chunk: 64})
	if err != nil {
		t.Fatalf("matching digest refused: %v", err)
	}
	c.Close()
}

// mapRouter is a test Router: a static digest→sources table with an
// optional session cap, counting routed sessions and refusals.
type mapRouter struct {
	mu      sync.Mutex
	designs map[string]map[string]Source
	cap     int
	active  int
	routed  int
	refused int
}

func (r *mapRouter) Route(digest []byte) (Route, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	srcs, ok := r.designs[string(digest)]
	if !ok {
		r.refused++
		return Route{}, &RefusedError{Code: RefuseUnknownDesign, Reason: "no such design registered"}
	}
	if r.cap > 0 && r.active >= r.cap {
		r.refused++
		return Route{}, &RefusedError{Code: RefuseOverCapacity, Reason: "session cap reached"}
	}
	r.active++
	r.routed++
	return Route{Sources: srcs, Close: func() {
		r.mu.Lock()
		r.active--
		r.mu.Unlock()
	}}, nil
}

// TestRoutingHostMultiTenant pins the multi-tenant seam at the
// transport level: one listener, two designs, sessions routed by their
// hello digest; an unknown digest and an over-capacity hello are
// refused with typed errors, never a hang.
func TestRoutingHostMultiTenant(t *testing.T) {
	dA, dB := Digest("tenant A"), Digest("tenant B")
	router := &mapRouter{designs: map[string]map[string]Source{
		string(dA): {"f1": &fakeSource{blob: []byte("AAAA"), verdict: true}},
		string(dB): {"f1": &fakeSource{blob: []byte("BBBBBBBB"), verdict: false}},
	}, cap: 2}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h := NewHost(ln, HostConfig{Router: router})
	defer h.Close()

	read := func(c *Conn) []byte {
		t.Helper()
		frag, err := c.Open(context.Background(), "f1")
		if err != nil {
			t.Fatal(err)
		}
		var got []byte
		for {
			chunk, err := frag.Next()
			if err == io.EOF {
				return got
			}
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, chunk...)
		}
	}

	cA, err := Dial(h.Addr().String(), Config{Digest: dA, Chunk: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer cA.Close()
	cB, err := Dial(h.Addr().String(), Config{Digest: dB, Chunk: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer cB.Close()

	// Each session sees its own tenant's document and verdict.
	if got := read(cA); string(got) != "AAAA" {
		t.Errorf("tenant A read %q", got)
	}
	if got := read(cB); string(got) != "BBBBBBBB" {
		t.Errorf("tenant B read %q", got)
	}
	if v, err := cA.Verdict(context.Background(), "f1"); err != nil || !v {
		t.Errorf("tenant A verdict: v=%v err=%v", v, err)
	}
	if v, err := cB.Verdict(context.Background(), "f1"); err != nil || v {
		t.Errorf("tenant B verdict: v=%v err=%v", v, err)
	}

	// A third concurrent session trips the cap with a typed refusal.
	if _, err := Dial(h.Addr().String(), Config{Digest: dA, Chunk: 64}); !errors.Is(err, ErrOverCapacity) {
		t.Errorf("over-capacity hello should unwrap to ErrOverCapacity, got %v", err)
	}
	// An unregistered design is refused with ErrUnknownDesign.
	if _, err := Dial(h.Addr().String(), Config{Digest: Digest("tenant C"), Chunk: 64}); !errors.Is(err, ErrUnknownDesign) {
		t.Errorf("unknown design should unwrap to ErrUnknownDesign, got %v", err)
	}

	// Closing a session releases its slot: the next hello is admitted.
	cB.Close()
	waitCond(t, func() bool { router.mu.Lock(); defer router.mu.Unlock(); return router.active == 1 })
	cC, err := Dial(h.Addr().String(), Config{Digest: dA, Chunk: 64})
	if err != nil {
		t.Fatalf("slot released by close still refused: %v", err)
	}
	cC.Close()
	router.mu.Lock()
	routed, refused := router.routed, router.refused
	router.mu.Unlock()
	if routed != 3 || refused != 2 {
		t.Errorf("routed=%d refused=%d, want 3 and 2", routed, refused)
	}
}

// waitCond polls a condition with a deadline — session teardown on the
// host side trails the client's Close by a scheduling beat.
func waitCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTCPHostCloseFailsSessions(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	digest := Digest("x")
	src := &fakeSource{blob: blob(10_000), verdict: true, slow: true}
	h := NewHost(ln, HostConfig{Digest: digest, Sources: map[string]Source{"f1": src}})
	c, err := Dial(h.Addr().String(), Config{Digest: digest, Chunk: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	frag, err := c.Open(context.Background(), "f1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := frag.Next(); err != nil {
		t.Fatal(err)
	}
	h.Close()
	for {
		if _, err := frag.Next(); err != nil {
			if err == io.EOF {
				t.Fatal("stream ended cleanly despite host shutdown")
			}
			break
		}
	}
}

func TestMultiRoutesAndCloses(t *testing.T) {
	a := &InProc{Sources: map[string]Source{"f1": &fakeSource{blob: blob(10), verdict: true}}, Chunk: 8}
	b := &InProc{Sources: map[string]Source{"f2": &fakeSource{blob: blob(10), verdict: false}}, Chunk: 8}
	m := Multi{"f1": a, "f2": b}
	if v, err := m.Verdict(context.Background(), "f1"); err != nil || !v {
		t.Fatalf("f1: v=%v err=%v", v, err)
	}
	if v, err := m.Verdict(context.Background(), "f2"); err != nil || v {
		t.Fatalf("f2: v=%v err=%v", v, err)
	}
	if _, err := m.Verdict(context.Background(), "f3"); err == nil {
		t.Error("unrouted docking point should fail")
	}
	if _, err := m.Open(context.Background(), "f3"); err == nil {
		t.Error("unrouted open should fail")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDigestDistinguishesParts(t *testing.T) {
	if bytes.Equal(Digest("ab", "c"), Digest("a", "bc")) {
		t.Error("digest must be injective over part boundaries")
	}
	if !bytes.Equal(Digest("a", "b"), Digest("a", "b")) {
		t.Error("digest must be deterministic")
	}
}
