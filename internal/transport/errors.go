package transport

import (
	"errors"
	"fmt"
	"time"
)

// ErrTimeout is the sentinel every liveness failure unwraps to: a peer
// missed its deadline — no frame (not even a heartbeat) arrived within
// the session's liveness window, or a frame write could not drain. Use
// errors.Is(err, ErrTimeout) to distinguish a dead peer from a protocol
// error or a clean close.
var ErrTimeout = errors.New("transport: peer deadline exceeded")

// TimeoutError is the concrete liveness failure: which operation timed
// out and after how long. It unwraps to ErrTimeout and implements the
// net.Error Timeout contract, so both errors.Is and the conventional
// interface probe detect it.
type TimeoutError struct {
	Op    string        // "read", "write", "hello"
	After time.Duration // the deadline that expired
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("transport: %s timed out after %v (peer presumed dead)", e.Op, e.After)
}

// Timeout reports true: a TimeoutError is always a deadline failure.
func (e *TimeoutError) Timeout() bool { return true }

// Unwrap lets errors.Is(err, ErrTimeout) match.
func (e *TimeoutError) Unwrap() error { return ErrTimeout }

// isTimeout reports whether err is a deadline failure from the net
// layer (net.Error with Timeout) or one of our own TimeoutErrors.
func isTimeout(err error) bool {
	var t interface{ Timeout() bool }
	return errors.As(err, &t) && t.Timeout()
}

// ErrCodec is the sentinel every structural frame-decode failure
// unwraps to: a length prefix, type byte, or payload layout the codec
// refuses — garbage on the wire, as opposed to a truncated read (an io
// error) or a timeout. Use errors.Is(err, ErrCodec) to trigger
// wire-corruption handling (the flight recorder dumps a postmortem on
// it) without matching message strings.
var ErrCodec = errors.New("transport: malformed frame")

// codecError is a structural decode failure with its descriptive
// message; it unwraps to ErrCodec.
type codecError struct{ msg string }

func (e *codecError) Error() string { return e.msg }
func (e *codecError) Unwrap() error { return ErrCodec }

// codecErrf builds a codecError; messages match the codec's historical
// fmt.Errorf texts exactly.
func codecErrf(format string, args ...any) error {
	return &codecError{msg: fmt.Sprintf(format, args...)}
}

// ErrInvalidWindow rejects a nonsensical credit-window configuration —
// a negative window — at session-build time, typed, instead of letting
// it surface as a hang or a protocol error at runtime. (Zero means "use
// the default"; oversized windows are clamped, not refused.)
var ErrInvalidWindow = errors.New("transport: invalid credit window (must be positive, or 0 for the default)")

// ErrUnknownDesign is the sentinel a refused hello unwraps to when the
// host does not serve the design the client's digest names — a
// single-design host serving a different design, or a multi-tenant
// registry with no tenant registered under that digest. Use
// errors.Is(err, ErrUnknownDesign) to distinguish "wrong host / not
// registered" from a capacity refusal or a transport failure.
var ErrUnknownDesign = errors.New("transport: unknown design digest (this host does not serve that design)")

// ErrOverCapacity is the sentinel a refused hello unwraps to when the
// host recognizes the design but will not admit the session: a
// concurrent-session cap, a per-tenant cap, or a resident-memory budget
// is exhausted. The refusal is immediate — an over-budget hello is
// answered with a refuse frame, never parked — so callers can back off
// and retry instead of hanging.
var ErrOverCapacity = errors.New("transport: host over capacity")

// RefuseCode discriminates hello refusals on the wire; it is the typed
// half of the refuse frame (the reason string is the human half).
type RefuseCode uint8

const (
	// RefuseGeneric is a refusal with no machine-readable cause.
	RefuseGeneric RefuseCode = iota
	// RefuseUnknownDesign: no such design behind this endpoint.
	RefuseUnknownDesign
	// RefuseOverCapacity: admission control rejected the session.
	RefuseOverCapacity
)

// RefusedError is a hello refused by the host: the machine-readable
// code plus the host's reason. It unwraps to ErrUnknownDesign or
// ErrOverCapacity by code, so both errors.Is probes and the message
// work. Hosts return it from a Router to refuse with a typed cause;
// Dial returns it when the host answers the hello with a refuse frame.
type RefusedError struct {
	Code   RefuseCode
	Reason string
}

func (e *RefusedError) Error() string {
	return "transport: session refused: " + e.Reason
}

// Unwrap maps the refusal code to its sentinel.
func (e *RefusedError) Unwrap() error {
	switch e.Code {
	case RefuseUnknownDesign:
		return ErrUnknownDesign
	case RefuseOverCapacity:
		return ErrOverCapacity
	}
	return nil
}
