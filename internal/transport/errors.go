package transport

import (
	"errors"
	"fmt"
	"time"
)

// ErrTimeout is the sentinel every liveness failure unwraps to: a peer
// missed its deadline — no frame (not even a heartbeat) arrived within
// the session's liveness window, or a frame write could not drain. Use
// errors.Is(err, ErrTimeout) to distinguish a dead peer from a protocol
// error or a clean close.
var ErrTimeout = errors.New("transport: peer deadline exceeded")

// TimeoutError is the concrete liveness failure: which operation timed
// out and after how long. It unwraps to ErrTimeout and implements the
// net.Error Timeout contract, so both errors.Is and the conventional
// interface probe detect it.
type TimeoutError struct {
	Op    string        // "read", "write", "hello"
	After time.Duration // the deadline that expired
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("transport: %s timed out after %v (peer presumed dead)", e.Op, e.After)
}

// Timeout reports true: a TimeoutError is always a deadline failure.
func (e *TimeoutError) Timeout() bool { return true }

// Unwrap lets errors.Is(err, ErrTimeout) match.
func (e *TimeoutError) Unwrap() error { return ErrTimeout }

// isTimeout reports whether err is a deadline failure from the net
// layer (net.Error with Timeout) or one of our own TimeoutErrors.
func isTimeout(err error) bool {
	var t interface{ Timeout() bool }
	return errors.As(err, &t) && t.Timeout()
}
