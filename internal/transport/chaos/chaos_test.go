package chaos

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"dxml/internal/transport"
)

// fakeSrc is a minimal transport.Source for wrapping tests.
type fakeSrc struct{ blob []byte }

func (s *fakeSrc) Verdict(ctx context.Context) bool  { return true }
func (s *fakeSrc) Size() int                         { return len(s.blob) }
func (s *fakeSrc) Serialize(w io.Writer) (err error) { _, err = w.Write(s.blob); return }

func inproc() *transport.InProc {
	return &transport.InProc{Sources: map[string]transport.Source{"f1": &fakeSrc{blob: make([]byte, 64)}}, Chunk: 16}
}

// TestScriptConsumesOnlyMatchingKinds: a scripted fault waits for an
// opportunity that can express it — a FaultDuplicate script entry must
// pass Verdict calls (which can only drop or delay) untouched, then
// fire at the first edit delivery. Verified here at the draw level.
func TestScriptConsumesOnlyMatchingKinds(t *testing.T) {
	s := Script(FaultDuplicate, FaultDrop)
	// Opportunities that cannot express a duplicate: script must not advance.
	for i := 0; i < 3; i++ {
		if f := s.draw(FaultDrop, FaultDelay); f != FaultNone {
			t.Fatalf("draw %d consumed %v at a non-matching opportunity", i, f)
		}
	}
	if f := s.draw(FaultDrop, FaultDuplicate); f != FaultDuplicate {
		t.Fatalf("matching opportunity drew %v, want duplicate", f)
	}
	if f := s.draw(FaultDrop, FaultDelay); f != FaultDrop {
		t.Fatalf("second entry drew %v, want drop", f)
	}
	// Script exhausted: everything passes.
	if f := s.draw(FaultDrop, FaultDelay, FaultDuplicate); f != FaultNone {
		t.Fatalf("exhausted script drew %v", f)
	}
}

// TestDisarmedScheduleDrawsNothing: Arm(false) passes deliveries
// through without consuming script entries, and re-arming resumes
// exactly where the script stood.
func TestDisarmedScheduleDrawsNothing(t *testing.T) {
	s := Script(FaultDrop).Arm(false)
	for i := 0; i < 5; i++ {
		if f := s.draw(FaultDrop); f != FaultNone {
			t.Fatalf("disarmed schedule drew %v", f)
		}
	}
	s.Arm(true)
	if f := s.draw(FaultDrop); f != FaultDrop {
		t.Fatalf("re-armed schedule drew %v, want drop", f)
	}
}

// TestSeededBudgetBounds: a seeded schedule injects at most maxFaults,
// and identical seeds replay the identical fault sequence.
func TestSeededBudgetBounds(t *testing.T) {
	run := func(seed int64) []Fault {
		s := Seeded(seed, 0.5, 3)
		var got []Fault
		for i := 0; i < 200; i++ {
			if f := s.draw(FaultDrop, FaultDelay, FaultStallAck); f != FaultNone {
				got = append(got, f)
			}
		}
		return got
	}
	a, b := run(42), run(42)
	if len(a) != 3 {
		t.Fatalf("budget of 3 injected %d faults", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at fault %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestDropIsSticky: an injected drop fails the faulted call and every
// later call on the session with ErrInjected — one fault, one clean
// persistent failure mode, no half-alive sessions.
func TestDropIsSticky(t *testing.T) {
	sess := Wrap(inproc(), Script(FaultDrop).SetDelay(0))
	if _, err := sess.Verdict(context.Background(), "f1"); !errors.Is(err, ErrInjected) {
		t.Fatalf("scripted drop surfaced %v", err)
	}
	if _, err := sess.Verdict(context.Background(), "f1"); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-drop call surfaced %v, want sticky ErrInjected", err)
	}
	if _, err := sess.Open(context.Background(), "f1"); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-drop open surfaced %v, want sticky ErrInjected", err)
	}
}

// TestFaultFreePassThrough: an exhausted or never-firing schedule is
// transparent — the wrapped session behaves exactly like the bare one.
func TestFaultFreePassThrough(t *testing.T) {
	sess := Wrap(inproc(), Script())
	v, err := sess.Verdict(context.Background(), "f1")
	if err != nil || !v {
		t.Fatalf("pass-through verdict: %v %v", v, err)
	}
	frag, err := sess.Open(context.Background(), "f1")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for {
		chunk, err := frag.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		total += len(chunk)
	}
	if total != 64 {
		t.Fatalf("pass-through transfer delivered %d bytes, want 64", total)
	}
}

// TestDelayDelivers: a delay fault slows a call down but the data
// arrives intact.
func TestDelayDelivers(t *testing.T) {
	sess := Wrap(inproc(), Script(FaultDelay).SetDelay(30*time.Millisecond))
	start := time.Now()
	v, err := sess.Verdict(context.Background(), "f1")
	if err != nil || !v {
		t.Fatalf("delayed verdict: %v %v", v, err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delay fault slept only %v", d)
	}
}
