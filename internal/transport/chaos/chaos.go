// Package chaos is the deterministic fault-injection seam for the
// transport layer: a Session wrapper that misdelivers frames on a
// seeded or scripted schedule, and a net.Listener wrapper that breaks
// accepted TCP connections the same way. Both are driven by a Schedule,
// so every run — including its failures — replays exactly from a seed.
//
// The wrapper injects at the receiver-facing seam (Fragment.Next,
// EditFeed.NextChunk/NextEdit, the session calls), which is what makes
// it transport-agnostic: the same schedule perturbs the in-process
// loopback and the TCP wire identically, and the differential chaos
// corpus can require both to converge to the fault-free run's verdict
// and accounting or fail with a clean typed error — never a panic,
// never a hang, never a wrong verdict.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"dxml/internal/transport"
)

// ErrInjected is the typed failure every injected connection drop
// surfaces as; errors.Is distinguishes it from organic transport
// errors in tests.
var ErrInjected = errors.New("chaos: injected connection drop")

// Fault enumerates the injectable misbehaviors.
type Fault uint8

const (
	// FaultNone: deliver normally.
	FaultNone Fault = iota
	// FaultDrop: the connection dies — this operation and every later
	// one on the session fails with ErrInjected, and a wrapped TCP
	// session's socket is really closed (the host sees the disconnect).
	FaultDrop
	// FaultDelay: the frame is delivered late.
	FaultDelay
	// FaultTruncate: the frame arrives cut short and the connection
	// dies — the receiver gets a prefix of the bytes, then ErrInjected.
	FaultTruncate
	// FaultStallAck: the receiver sits on its ack — once the sender
	// exhausts its credit window it parks (with a window of 1,
	// immediately; wider windows absorb the stall until their credits
	// run out) — then proceeds.
	FaultStallAck
	// FaultDuplicate: a frame is delivered twice. On an edit feed it is
	// the at-least-once redelivery a reconnecting subscriber must
	// tolerate, without the reconnect; on a fragment stream it is a
	// retransmitted cumulative ack, which must never grant the sender
	// extra credit (only fragments whose transport exposes ack
	// duplication — TCP — offer this opportunity).
	FaultDuplicate
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultTruncate:
		return "truncate"
	case FaultStallAck:
		return "stall-ack"
	case FaultDuplicate:
		return "duplicate"
	}
	return fmt.Sprintf("fault(%d)", uint8(f))
}

// Schedule decides, at each delivery opportunity, whether to inject a
// fault. It is either scripted (an explicit fault sequence, consumed as
// opportunities arise that can express it) or seeded-random (each
// opportunity injects with a fixed probability until a fault budget is
// exhausted — the budget is what guarantees a faulted run terminates).
// A Schedule is safe for concurrent use and may be shared across the
// sessions of one run, including sessions created by reconnects.
type Schedule struct {
	mu       sync.Mutex
	rng      *rand.Rand
	script   []Fault
	pos      int
	prob     float64
	left     int
	injected int
	delay    time.Duration
	disarmed bool
}

// Seeded builds a random schedule: each delivery opportunity draws a
// fault with probability prob, until maxFaults have been injected.
// Identical seeds replay identical runs.
func Seeded(seed int64, prob float64, maxFaults int) *Schedule {
	return &Schedule{rng: rand.New(rand.NewSource(seed)), prob: prob, left: maxFaults, delay: 2 * time.Millisecond}
}

// Script builds a scripted schedule: each listed fault fires at the
// first delivery opportunity that can express it, in order.
func Script(faults ...Fault) *Schedule {
	return &Schedule{script: faults, delay: 2 * time.Millisecond}
}

// SetDelay overrides the sleep used for delay and stall faults.
func (s *Schedule) SetDelay(d time.Duration) *Schedule {
	s.mu.Lock()
	s.delay = d
	s.mu.Unlock()
	return s
}

// Arm turns injection on or off without disturbing the schedule's
// state. A disarmed schedule passes every delivery through — tests use
// this to let a session establish itself (the initial subscriptions and
// snapshots, which have no recovery path) before the faults start.
func (s *Schedule) Arm(on bool) *Schedule {
	s.mu.Lock()
	s.disarmed = !on
	s.mu.Unlock()
	return s
}

// Consumed reports how many faults the schedule has injected so far.
// Tests use it to assert a corpus actually exercised its faults rather
// than passing vacuously.
func (s *Schedule) Consumed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.injected
}

// draw picks the fault to inject at an opportunity that can express
// `kinds`, or FaultNone.
func (s *Schedule) draw(kinds ...Fault) Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disarmed {
		return FaultNone
	}
	if s.script != nil {
		if s.pos >= len(s.script) {
			return FaultNone
		}
		next := s.script[s.pos]
		for _, k := range kinds {
			if k == next {
				s.pos++
				s.injected++
				return next
			}
		}
		return FaultNone
	}
	if s.rng == nil || s.left <= 0 || s.rng.Float64() >= s.prob {
		return FaultNone
	}
	s.left--
	s.injected++
	return kinds[s.rng.Intn(len(kinds))]
}

func (s *Schedule) sleep() {
	s.mu.Lock()
	d := s.delay
	s.mu.Unlock()
	time.Sleep(d)
}

// Session wraps a transport session with fault injection. It implements
// transport.Session, and forwards live subscriptions (Subscribe /
// Resubscribe) when the wrapped session supports them, so both
// transports run under the same chaos.
type Session struct {
	inner transport.Session
	sched *Schedule

	mu      sync.Mutex
	dropped bool
}

// Wrap puts sched's faults between a session and its consumer.
func Wrap(inner transport.Session, sched *Schedule) *Session {
	return &Session{inner: inner, sched: sched}
}

// alive fails every operation after an injected drop.
func (s *Session) alive() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dropped {
		return ErrInjected
	}
	return nil
}

// drop kills the session: later operations fail with ErrInjected, and
// the wrapped session is closed for real — a TCP host observes the
// disconnect exactly as it would a peer crash.
func (s *Session) drop() error {
	s.mu.Lock()
	already := s.dropped
	s.dropped = true
	s.mu.Unlock()
	if !already {
		s.inner.Close()
	}
	return ErrInjected
}

func (s *Session) Verdict(ctx context.Context, fn string) (bool, error) {
	if err := s.alive(); err != nil {
		return false, err
	}
	switch s.sched.draw(FaultDrop, FaultDelay) {
	case FaultDrop:
		return false, s.drop()
	case FaultDelay:
		s.sched.sleep()
	}
	return s.inner.Verdict(ctx, fn)
}

func (s *Session) Open(ctx context.Context, fn string) (transport.Fragment, error) {
	if err := s.alive(); err != nil {
		return nil, err
	}
	switch s.sched.draw(FaultDrop, FaultDelay) {
	case FaultDrop:
		return nil, s.drop()
	case FaultDelay:
		s.sched.sleep()
	}
	frag, err := s.inner.Open(ctx, fn)
	if err != nil {
		return nil, err
	}
	return &fragment{s: s, inner: frag}, nil
}

// Subscribe forwards a live subscription under chaos. The subscription
// handshake itself is only delayed, never dropped — drops hit the feed's
// deliveries (NextChunk/NextEdit), where the consumer has a recovery
// path scoped to that one subscription.
func (s *Session) Subscribe(ctx context.Context, fn string) (transport.EditFeed, error) {
	ls, ok := s.inner.(transport.LiveSession)
	if !ok {
		return nil, fmt.Errorf("chaos: wrapped session %T does not support live subscriptions", s.inner)
	}
	if err := s.alive(); err != nil {
		return nil, err
	}
	if s.sched.draw(FaultDelay) == FaultDelay {
		s.sched.sleep()
	}
	feed, err := ls.Subscribe(ctx, fn)
	if err != nil {
		return nil, err
	}
	return &editFeed{s: s, inner: feed}, nil
}

// Resubscribe forwards a resumed subscription under chaos.
func (s *Session) Resubscribe(ctx context.Context, fn string, after uint64) (transport.EditFeed, error) {
	rs, ok := s.inner.(transport.ResumableSession)
	if !ok {
		return nil, fmt.Errorf("chaos: wrapped session %T does not support resumed subscriptions", s.inner)
	}
	if err := s.alive(); err != nil {
		return nil, err
	}
	if s.sched.draw(FaultDelay) == FaultDelay {
		s.sched.sleep()
	}
	feed, err := rs.Resubscribe(ctx, fn, after)
	if err != nil {
		return nil, err
	}
	return &editFeed{s: s, inner: feed}, nil
}

func (s *Session) Close() error { return s.inner.Close() }

// fragment injects receive-side faults into one chunked transfer.
type fragment struct {
	s     *Session
	inner transport.Fragment
}

func (f *fragment) Size() int { return f.inner.Size() }
func (f *fragment) Abort()    { f.inner.Abort() }

// ackDuplicator is the optional seam a fragment exposes for replaying
// its last cumulative ack on the wire — the TCP fragment implements it;
// the in-process handoff has no acks to duplicate.
type ackDuplicator interface {
	DuplicateAck() error
}

// Next injects on the fragment stream. FaultTruncate is deliberately
// not drawn here: the length-prefixed codec never surfaces a torn frame
// as data (the hostile-input tests pin that), so above the codec a
// mid-frame death is indistinguishable from FaultDrop — and silently
// delivering a prefix would be corruption the validation protocol is
// *designed* to read as an invalid document, i.e. a wrong verdict by
// construction, not a bug. Truncated payloads are injected on the live
// snapshot path instead (NextChunk), where a decoder guards the result.
// FaultDuplicate is drawn only when the inner fragment can express it
// (an ack-carrying wire): the injected event is a retransmitted
// cumulative ack, which a credit-window sender must treat as a no-op.
func (f *fragment) Next() ([]byte, error) {
	if err := f.s.alive(); err != nil {
		return nil, err
	}
	kinds := []Fault{FaultDrop, FaultDelay, FaultStallAck}
	dup, canDup := f.inner.(ackDuplicator)
	if canDup {
		kinds = append(kinds, FaultDuplicate)
	}
	switch f.s.sched.draw(kinds...) {
	case FaultDrop:
		return nil, f.s.drop()
	case FaultStallAck:
		// The previous chunks' ack is sent inside Next: sleeping first
		// lets the sender run to the end of its credit and park.
		f.s.sched.sleep()
	case FaultDuplicate:
		// Replay the last cumulative ack before pulling the next chunk:
		// the sender sees the same count twice and must not move.
		if err := dup.DuplicateAck(); err != nil {
			return nil, err
		}
	case FaultDelay:
		chunk, err := f.inner.Next()
		if err != nil {
			return nil, err
		}
		f.s.sched.sleep()
		return chunk, nil
	}
	return f.inner.Next()
}

// editFeed injects receive-side faults into one live subscription.
// Drops here are scoped to the feed — the subscription dies, the
// session survives — which models a per-stream failure and exercises
// the consumer's cheap recovery path (resubscribe on the surviving
// session) rather than always forcing a full redial.
type editFeed struct {
	s     *Session
	inner transport.EditFeed

	mu      sync.Mutex
	dead    bool
	pending *transport.EditFrame // duplicate to re-deliver on the next NextEdit
}

func (f *editFeed) Base() uint64      { return f.inner.Base() }
func (f *editFeed) SnapshotSize() int { return f.inner.SnapshotSize() }
func (f *editFeed) Resumed() bool     { return f.inner.Resumed() }
func (f *editFeed) Close() error      { return f.inner.Close() }

// alive fails every delivery after an injected feed drop.
func (f *editFeed) alive() error {
	if err := f.s.alive(); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return ErrInjected
	}
	return nil
}

// drop kills this one subscription; the session stays usable.
func (f *editFeed) drop() error {
	f.mu.Lock()
	f.dead = true
	f.mu.Unlock()
	f.inner.Close()
	return ErrInjected
}

func (f *editFeed) SendVerdict(ver uint64, ok bool) error {
	if err := f.alive(); err != nil {
		return err
	}
	return f.inner.SendVerdict(ver, ok)
}

func (f *editFeed) NextChunk() ([]byte, error) {
	if err := f.alive(); err != nil {
		return nil, err
	}
	switch f.s.sched.draw(FaultDrop, FaultDelay, FaultTruncate, FaultStallAck) {
	case FaultDrop:
		return nil, f.drop()
	case FaultStallAck:
		f.s.sched.sleep()
	case FaultTruncate:
		chunk, err := f.inner.NextChunk()
		if err != nil {
			return nil, err
		}
		f.drop()
		return chunk[:len(chunk)/2], nil
	case FaultDelay:
		chunk, err := f.inner.NextChunk()
		if err != nil {
			return nil, err
		}
		f.s.sched.sleep()
		return chunk, nil
	}
	return f.inner.NextChunk()
}

func (f *editFeed) NextEdit(ctx context.Context) (transport.EditFrame, error) {
	if err := f.alive(); err != nil {
		return transport.EditFrame{}, err
	}
	f.mu.Lock()
	if dup := f.pending; dup != nil {
		f.pending = nil
		f.mu.Unlock()
		return *dup, nil // the injected redelivery
	}
	f.mu.Unlock()
	switch f.s.sched.draw(FaultDrop, FaultDelay, FaultDuplicate, FaultStallAck) {
	case FaultDrop:
		return transport.EditFrame{}, f.drop()
	case FaultDelay, FaultStallAck:
		f.s.sched.sleep()
	case FaultDuplicate:
		e, err := f.inner.NextEdit(ctx)
		if err != nil {
			return transport.EditFrame{}, err
		}
		cp := transport.EditFrame{Version: e.Version, Op: e.Op,
			Addr: append([]uint64(nil), e.Addr...), Doc: append([]byte(nil), e.Doc...)}
		f.mu.Lock()
		f.pending = &cp
		f.mu.Unlock()
		return e, nil
	}
	return f.inner.NextEdit(ctx)
}

// Listener wraps a net.Listener so a deterministic fraction of accepted
// connections read slowly and die after a byte budget — the `dxml serve
// -chaos seed` seam: a server that injects its own outages so clients'
// reconnect paths can be exercised against a real socket.
type Listener struct {
	net.Listener
	mu      sync.Mutex
	rng     *rand.Rand
	onFault func(error)
}

// NewListener wraps ln with seed-driven connection faults.
func NewListener(ln net.Listener, seed int64) *Listener {
	return &Listener{Listener: ln, rng: rand.New(rand.NewSource(seed))}
}

// SetOnFault installs a hook called once per doomed connection at the
// moment its byte budget trips (with the ErrInjected-wrapped fault) —
// the flight recorder's dump trigger for injected outages. The hook
// fires from connection goroutines and must be safe for concurrent
// use. Set it before serving; nil disables.
func (l *Listener) SetOnFault(fn func(error)) {
	l.mu.Lock()
	l.onFault = fn
	l.mu.Unlock()
}

// fault reports one tripped budget to the hook, if any.
func (l *Listener) fault(err error) {
	l.mu.Lock()
	fn := l.onFault
	l.mu.Unlock()
	if fn != nil {
		fn(err)
	}
}

// Accept hands out connections, roughly half of them doomed: a doomed
// connection delivers between 1KB and 32KB and then drops, with a
// small per-read delay. The sequence of dooms is a pure function of
// the listener's seed.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	doomed := l.rng.Intn(2) == 0
	budget := int64(1) << (10 + l.rng.Intn(6))
	delay := time.Duration(l.rng.Intn(2)) * time.Millisecond
	l.mu.Unlock()
	if !doomed {
		return c, nil
	}
	return &conn{Conn: c, ln: l, budget: budget, delay: delay}, nil
}

// conn is a doomed connection: it closes itself after its byte budget.
type conn struct {
	net.Conn
	ln     *Listener
	mu     sync.Mutex
	budget int64
	delay  time.Duration
	fired  bool
}

// spend burns n bytes of budget; false means the budget is gone and the
// connection has been closed.
func (c *conn) spend(n int) bool {
	c.mu.Lock()
	c.budget -= int64(n)
	dead := c.budget <= 0
	first := dead && !c.fired
	if first {
		c.fired = true
	}
	c.mu.Unlock()
	if dead {
		c.Conn.Close()
		if first {
			c.ln.fault(fmt.Errorf("chaos: %w", ErrInjected))
		}
	}
	return !dead
}

func (c *conn) Read(p []byte) (int, error) {
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	n, err := c.Conn.Read(p)
	if n > 0 && !c.spend(n) && err == nil {
		return n, fmt.Errorf("chaos: %w", ErrInjected)
	}
	return n, err
}

func (c *conn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 && !c.spend(n) && err == nil {
		return n, fmt.Errorf("chaos: %w", ErrInjected)
	}
	return n, err
}
