package transport

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"dxml/internal/obs"
)

// InProc is the in-process transport: the kernel peer and the resource
// peers share an address space, and chunks are handed over channels
// buffered to the credit window — a sender runs at most Window chunks
// ahead of its receiver, so the backpressure and rejection semantics
// are exactly those of the TCP transport without the sockets (a window
// of 1 is the unbuffered stop-and-wait handoff). This is the
// refactored form of the original p2p wire and the reference
// implementation the TCP transport is differentially tested against.
type InProc struct {
	// Sources maps each docking point to its hosted peer.
	Sources map[string]Source
	// Chunk is the resolved chunk budget in bytes (math.MaxInt for
	// unchunked); it must be positive.
	Chunk int
	// Window is the per-stream credit window in chunks: how far a
	// sender may run ahead of its receiver. Zero means DefaultWindow;
	// values are clamped into [1, the transport-wide maximum].
	Window int
	// Tap, when non-nil, observes the session's protocol events as
	// synthesized wire frames: in-process transfers exchange no bytes,
	// so the tap encodes the frame each event *would* put on the TCP
	// wire (open, begin, chunks, end, verdicts, rejects) and hands it
	// over — the same capture format both transports then share. The
	// session's tag is a trace ID minted at the first tapped frame.
	// Nil (the default) costs one nil check per event and nothing else.
	Tap Tap

	tapMu   sync.Mutex // serializes the lazily-built tap encoder
	tapEnc  *frameWriter
	tapDest tapSink
	nextID  atomic.Uint32
}

// tapSink adapts a Tap to the frame encoder: every encoded frame's
// bytes are handed to the tap as one head slice. The caller sets dir
// per frame under the InProc tap mutex.
type tapSink struct {
	tap  Tap
	dir  TapDir
	sess uint64
}

func (s *tapSink) Write(p []byte) (int, error) {
	s.tap.TapFrame(s.dir, s.sess, p, nil)
	return len(p), nil
}

// tapFrame encodes one synthesized frame into the tap; a no-op without
// a tap. Chunk frames go through the general encoder, not the vectored
// writeChunk — net.Buffers on a non-socket writer would split the
// header and payload into two tap events.
func (s *InProc) tapFrame(dir TapDir, f frame) {
	if s.Tap == nil {
		return
	}
	s.tapMu.Lock()
	defer s.tapMu.Unlock()
	if s.tapEnc == nil {
		s.tapDest = tapSink{tap: s.Tap, sess: obs.NewTraceID()}
		s.tapEnc = &frameWriter{w: &s.tapDest}
	}
	s.tapDest.dir = dir
	s.tapEnc.write(f)
}

// window resolves the effective credit window.
func (s *InProc) window() int {
	if s.Window == 0 {
		return DefaultWindow
	}
	return clampWindow(s.Window, 0)
}

func (s *InProc) source(fn string) (Source, error) {
	src, ok := s.Sources[fn]
	if !ok {
		return nil, fmt.Errorf("transport: no source for docking point %s", fn)
	}
	return src, nil
}

// Verdict validates fn's document against its local type in place.
func (s *InProc) Verdict(ctx context.Context, fn string) (bool, error) {
	src, err := s.source(fn)
	if err != nil {
		return false, err
	}
	id := s.nextID.Add(1)
	s.tapFrame(TapOut, frame{typ: frameVerdictReq, id: id, str: fn})
	v := src.Verdict(ctx)
	if err := ctx.Err(); err != nil {
		s.tapFrame(TapOut, frame{typ: frameVerdictCancel, id: id})
		return false, err
	}
	flag := byte(0)
	if v {
		flag = 1
	}
	s.tapFrame(TapIn, frame{typ: frameVerdict, id: id, flag: flag})
	return v, nil
}

// Open starts fn's transfer: a sender goroutine serializes the document
// into chunk-budget frames on a channel buffered to window-1 — the
// sender pipelines up to the credit window of unconsumed chunks, then
// blocks, and stops serializing the moment the fragment is aborted (or
// ctx ends): at most one window past the failure point is ever
// serialized. The chunker's ring holds window+1 buffers because chunks
// travel by reference: one held by the receiver, window-1 queued, one
// being filled.
func (s *InProc) Open(ctx context.Context, fn string) (Fragment, error) {
	src, err := s.source(fn)
	if err != nil {
		return nil, err
	}
	win := s.window()
	id := s.nextID.Add(1)
	s.tapFrame(TapOut, frame{typ: frameOpen, id: id, str: fn})
	if s.Tap != nil {
		// The begin frame announces the size; resolving it costs the
		// size walk accepted transfers normally skip, a price only paid
		// while recording.
		s.tapFrame(TapIn, frame{typ: frameBegin, id: id, size: uint64(src.Size()), win: uint32(win)})
	}
	ctx, cancel := context.WithCancel(ctx)
	ch := make(chan []byte, win-1)
	go func() {
		defer close(ch)
		w := newChunkerDepth(s.Chunk, win+1, func(chunk []byte) error {
			s.tapFrame(TapIn, frame{typ: frameChunk, id: id, data: chunk})
			select {
			case ch <- chunk:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		})
		if src.Serialize(w) == nil {
			if w.flush() == nil { // the final partial chunk
				s.tapFrame(TapIn, frame{typ: frameEnd, id: id})
			}
		}
	}()
	return &inprocFragment{sess: s, id: id, src: src, ch: ch, cancel: cancel}, nil
}

// Close is a no-op: in-process sessions hold no resources beyond their
// per-fragment senders, which die with their contexts.
func (s *InProc) Close() error { return nil }

type inprocFragment struct {
	sess    *InProc
	id      uint32
	src     Source
	ch      <-chan []byte
	cancel  context.CancelFunc
	aborted bool
}

// Size is resolved lazily from the source: only aborted transfers need
// it (for byte-savings accounting), so accepted transfers never pay the
// size walk.
func (f *inprocFragment) Size() int { return f.src.Size() }

func (f *inprocFragment) Next() ([]byte, error) {
	chunk, ok := <-f.ch
	if !ok {
		f.cancel() // transfer complete: release the sender's context
		return nil, io.EOF
	}
	return chunk, nil
}

func (f *inprocFragment) Abort() {
	if !f.aborted {
		f.aborted = true
		f.sess.tapFrame(TapOut, frame{typ: frameReject, id: f.id, str: "rejected by receiver"})
	}
	f.cancel()
}
