package transport

import (
	"context"
	"fmt"
	"io"
)

// InProc is the in-process transport: the kernel peer and the resource
// peers share an address space, and chunks are handed over unbuffered
// channels — delivery is synchronous, so the backpressure and rejection
// semantics are exactly those of the TCP transport without the sockets.
// This is the refactored form of the original p2p wire and the
// reference implementation the TCP transport is differentially tested
// against.
type InProc struct {
	// Sources maps each docking point to its hosted peer.
	Sources map[string]Source
	// Chunk is the resolved chunk budget in bytes (math.MaxInt for
	// unchunked); it must be positive.
	Chunk int
}

func (s *InProc) source(fn string) (Source, error) {
	src, ok := s.Sources[fn]
	if !ok {
		return nil, fmt.Errorf("transport: no source for docking point %s", fn)
	}
	return src, nil
}

// Verdict validates fn's document against its local type in place.
func (s *InProc) Verdict(ctx context.Context, fn string) (bool, error) {
	src, err := s.source(fn)
	if err != nil {
		return false, err
	}
	v := src.Verdict(ctx)
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return v, nil
}

// Open starts fn's transfer: a sender goroutine serializes the document
// into chunk-budget frames on an unbuffered channel. The sender blocks
// until each chunk is consumed and stops serializing the moment the
// fragment is aborted (or ctx ends).
func (s *InProc) Open(ctx context.Context, fn string) (Fragment, error) {
	src, err := s.source(fn)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	ch := make(chan []byte)
	go func() {
		defer close(ch)
		w := newChunker(s.Chunk, func(chunk []byte) error {
			select {
			case ch <- chunk:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		})
		if src.Serialize(w) == nil {
			w.flush() // the final partial chunk
		}
	}()
	return &inprocFragment{src: src, ch: ch, cancel: cancel}, nil
}

// Close is a no-op: in-process sessions hold no resources beyond their
// per-fragment senders, which die with their contexts.
func (s *InProc) Close() error { return nil }

type inprocFragment struct {
	src    Source
	ch     <-chan []byte
	cancel context.CancelFunc
}

// Size is resolved lazily from the source: only aborted transfers need
// it (for byte-savings accounting), so accepted transfers never pay the
// size walk.
func (f *inprocFragment) Size() int { return f.src.Size() }

func (f *inprocFragment) Next() ([]byte, error) {
	chunk, ok := <-f.ch
	if !ok {
		f.cancel() // transfer complete: release the sender's context
		return nil, io.EOF
	}
	return chunk, nil
}

func (f *inprocFragment) Abort() { f.cancel() }
