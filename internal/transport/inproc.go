package transport

import (
	"context"
	"fmt"
	"io"
)

// InProc is the in-process transport: the kernel peer and the resource
// peers share an address space, and chunks are handed over channels
// buffered to the credit window — a sender runs at most Window chunks
// ahead of its receiver, so the backpressure and rejection semantics
// are exactly those of the TCP transport without the sockets (a window
// of 1 is the unbuffered stop-and-wait handoff). This is the
// refactored form of the original p2p wire and the reference
// implementation the TCP transport is differentially tested against.
type InProc struct {
	// Sources maps each docking point to its hosted peer.
	Sources map[string]Source
	// Chunk is the resolved chunk budget in bytes (math.MaxInt for
	// unchunked); it must be positive.
	Chunk int
	// Window is the per-stream credit window in chunks: how far a
	// sender may run ahead of its receiver. Zero means DefaultWindow;
	// values are clamped into [1, the transport-wide maximum].
	Window int
}

// window resolves the effective credit window.
func (s *InProc) window() int {
	if s.Window == 0 {
		return DefaultWindow
	}
	return clampWindow(s.Window, 0)
}

func (s *InProc) source(fn string) (Source, error) {
	src, ok := s.Sources[fn]
	if !ok {
		return nil, fmt.Errorf("transport: no source for docking point %s", fn)
	}
	return src, nil
}

// Verdict validates fn's document against its local type in place.
func (s *InProc) Verdict(ctx context.Context, fn string) (bool, error) {
	src, err := s.source(fn)
	if err != nil {
		return false, err
	}
	v := src.Verdict(ctx)
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return v, nil
}

// Open starts fn's transfer: a sender goroutine serializes the document
// into chunk-budget frames on a channel buffered to window-1 — the
// sender pipelines up to the credit window of unconsumed chunks, then
// blocks, and stops serializing the moment the fragment is aborted (or
// ctx ends): at most one window past the failure point is ever
// serialized. The chunker's ring holds window+1 buffers because chunks
// travel by reference: one held by the receiver, window-1 queued, one
// being filled.
func (s *InProc) Open(ctx context.Context, fn string) (Fragment, error) {
	src, err := s.source(fn)
	if err != nil {
		return nil, err
	}
	win := s.window()
	ctx, cancel := context.WithCancel(ctx)
	ch := make(chan []byte, win-1)
	go func() {
		defer close(ch)
		w := newChunkerDepth(s.Chunk, win+1, func(chunk []byte) error {
			select {
			case ch <- chunk:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		})
		if src.Serialize(w) == nil {
			w.flush() // the final partial chunk
		}
	}()
	return &inprocFragment{src: src, ch: ch, cancel: cancel}, nil
}

// Close is a no-op: in-process sessions hold no resources beyond their
// per-fragment senders, which die with their contexts.
func (s *InProc) Close() error { return nil }

type inprocFragment struct {
	src    Source
	ch     <-chan []byte
	cancel context.CancelFunc
}

// Size is resolved lazily from the source: only aborted transfers need
// it (for byte-savings accounting), so accepted transfers never pay the
// size walk.
func (f *inprocFragment) Size() int { return f.src.Size() }

func (f *inprocFragment) Next() ([]byte, error) {
	chunk, ok := <-f.ch
	if !ok {
		f.cancel() // transfer complete: release the sender's context
		return nil, io.EOF
	}
	return chunk, nil
}

func (f *inprocFragment) Abort() { f.cancel() }
