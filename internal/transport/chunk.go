package transport

// chunker chops an incremental serialization into fixed-budget chunks
// and hands each to a blocking send callback — the transport-specific
// delivery (a channel handoff in process, a Chunk frame plus ack wait
// over TCP). Two swap buffers make the transfer allocation-steady:
// while the receiver consumes one chunk, the sender fills the other.
// Chunk boundaries depend only on the budget, never on the transport,
// which is what makes frame counts transport-invariant.
type chunker struct {
	send   func([]byte) error
	budget int
	buf    [2][]byte
	cur    int
	sent   int
}

func newChunker(budget int, send func([]byte) error) *chunker {
	return &chunker{send: send, budget: budget}
}

func (w *chunker) Write(p []byte) (int, error) {
	total := len(p)
	for len(p) > 0 {
		space := w.budget - len(w.buf[w.cur])
		if space == 0 {
			if err := w.flush(); err != nil {
				return total - len(p), err
			}
			continue
		}
		n := min(space, len(p))
		w.buf[w.cur] = append(w.buf[w.cur], p[:n]...)
		p = p[n:]
	}
	return total, nil
}

// flush ships the current chunk (a no-op when empty). The send callback
// blocks until the receiver consumes it — or fails, halting the sender.
func (w *chunker) flush() error {
	chunk := w.buf[w.cur]
	if len(chunk) == 0 {
		return nil
	}
	if err := w.send(chunk); err != nil {
		return err
	}
	w.sent += len(chunk)
	w.cur = 1 - w.cur
	w.buf[w.cur] = w.buf[w.cur][:0]
	return nil
}
