package transport

// chunker chops an incremental serialization into fixed-budget chunks
// and hands each to a blocking send callback — the transport-specific
// delivery (a channel handoff in process, a credit-gated Chunk frame
// over TCP). A ring of swap buffers makes the transfer
// allocation-steady: while the receiver consumes up to depth-1 earlier
// chunks, the sender fills the next ring slot. The TCP sender needs
// only two slots (the socket write returns the buffer synchronously);
// the in-process transport passes chunks by reference through a
// buffered channel, so its ring is sized window+1 — one chunk held by
// the receiver, window-1 queued, one being filled. Chunk boundaries
// depend only on the budget, never on the transport or the ring depth,
// which is what makes frame counts transport- and window-invariant.
type chunker struct {
	send   func([]byte) error
	budget int
	buf    [][]byte
	cur    int
	sent   int
}

func newChunker(budget int, send func([]byte) error) *chunker {
	return newChunkerDepth(budget, 2, send)
}

// newChunkerDepth builds a chunker whose ring holds depth buffers;
// depth below 2 is raised to 2 (a single buffer could be overwritten
// while the receiver still reads it).
func newChunkerDepth(budget, depth int, send func([]byte) error) *chunker {
	if depth < 2 {
		depth = 2
	}
	return &chunker{send: send, budget: budget, buf: make([][]byte, depth)}
}

func (w *chunker) Write(p []byte) (int, error) {
	total := len(p)
	for len(p) > 0 {
		space := w.budget - len(w.buf[w.cur])
		if space == 0 {
			if err := w.flush(); err != nil {
				return total - len(p), err
			}
			continue
		}
		n := min(space, len(p))
		w.buf[w.cur] = append(w.buf[w.cur], p[:n]...)
		p = p[n:]
	}
	return total, nil
}

// flush ships the current chunk (a no-op when empty). The send callback
// blocks while the receiver's credits are exhausted — or fails, halting
// the sender.
func (w *chunker) flush() error {
	chunk := w.buf[w.cur]
	if len(chunk) == 0 {
		return nil
	}
	if err := w.send(chunk); err != nil {
		return err
	}
	w.sent += len(chunk)
	w.cur = (w.cur + 1) % len(w.buf)
	w.buf[w.cur] = w.buf[w.cur][:0]
	return nil
}
