// Package transport is the wire layer of the p2p federation: it moves
// verdicts and chunked fragment streams between the kernel peer and the
// resource peers, behind one small interface with two implementations —
// an in-process loopback (the original channel-based delivery) and a
// real TCP transport speaking a length-prefixed binary frame protocol.
//
// The abstraction is asymmetric, matching the paper's model: resource
// peers are passive *sources* (they answer verdict requests and stream
// their document on demand), and the kernel peer drives a *session*
// against them. A fragment transfer is credit-windowed: the receiver
// grants a window of N chunk credits at session open (negotiated in the
// hello and echoed per stream in the begin frame), the sender
// serializes into fixed-budget chunks and pipelines up to N of them
// unacked (vectored writes over TCP, a window-buffered channel in
// process), and cumulative acks replenish credits as chunks are
// consumed. A window of 1 is exactly the classic stop-and-wait wire. A
// rejection reaches the sender while at most one window of chunks is in
// flight, so all bytes past sent+window are never serialized — the
// communication win recorded in the federation's Stats.BytesSaved is
// real on both transports, diminished by at most window·chunk bytes of
// in-flight credit.
//
// Protocol guarantees shared by both implementations, pinned by the
// differential tests in internal/p2p:
//
//   - chunk boundaries depend only on the configured budget, so frame
//     counts and delivered-byte totals are transport- and
//     window-invariant;
//   - Abort halts the sender mid-transfer; bytes past the failure point
//     plus at most one window of credit are never serialized, let alone
//     shipped;
//   - a duplicated or stale ack never grants credit twice: acks carry a
//     cumulative consumed-chunk count, so replaying one is a no-op;
//   - a session is bound to a design digest: the TCP hello refuses to
//     pair peers running different designs.
package transport

import (
	"context"
	"crypto/sha256"
	"fmt"
	"io"
)

// Source is one hosted docking point, the sender side of the transport:
// the resource peer's document and local type behind a minimal surface.
type Source interface {
	// Verdict validates the peer's document against its local type;
	// implementations should poll ctx so a short-circuited round stops
	// mid-document.
	Verdict(ctx context.Context) bool
	// Size is the exact serialized size of the document in bytes.
	Size() int
	// Serialize writes the document's serialization to w incrementally,
	// stopping at the first write error.
	Serialize(w io.Writer) error
}

// Session is the kernel peer's view of the federation: request a
// verdict from the peer behind a docking point, or open its fragment as
// a chunked stream. Implementations must support concurrent Verdict
// calls and concurrently open fragments.
type Session interface {
	Verdict(ctx context.Context, fn string) (bool, error)
	Open(ctx context.Context, fn string) (Fragment, error)
	Close() error
}

// Fragment is the receiver side of one fragment transfer. Next returns
// consecutive chunks (valid until the following call) and io.EOF after
// the last; consuming chunks replenishes the sender's credits, and a
// sender out of credit parks — windowed backpressure. Abort rejects the
// transfer mid-stream: the sender halts within its credit window and
// the remaining bytes never travel.
type Fragment interface {
	// Size is the announced total serialized size of the fragment.
	Size() int
	Next() ([]byte, error)
	Abort()
}

// Multi routes a session per docking point, so a kernel peer can
// federate hosts that each serve a subset of the docking points.
// Sessions may be shared between functions; Close closes each distinct
// session once.
type Multi map[string]Session

func (m Multi) session(fn string) (Session, error) {
	s, ok := m[fn]
	if !ok {
		return nil, fmt.Errorf("transport: no session for docking point %s", fn)
	}
	return s, nil
}

func (m Multi) Verdict(ctx context.Context, fn string) (bool, error) {
	s, err := m.session(fn)
	if err != nil {
		return false, err
	}
	return s.Verdict(ctx, fn)
}

func (m Multi) Open(ctx context.Context, fn string) (Fragment, error) {
	s, err := m.session(fn)
	if err != nil {
		return nil, err
	}
	return s.Open(ctx, fn)
}

func (m Multi) Close() error {
	closed := map[Session]bool{}
	var first error
	for _, s := range m {
		if closed[s] {
			continue
		}
		closed[s] = true
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Digest fingerprints a design from its canonical parts (kernel term,
// type sources, …): the TCP hello exchanges it so a serve and a join
// running different designs fail fast instead of producing a verdict
// about nothing.
func Digest(parts ...string) []byte {
	h := sha256.New()
	for _, p := range parts {
		// Length-prefix each part so ("ab","c") and ("a","bc") differ.
		fmt.Fprintf(h, "%d:", len(p))
		io.WriteString(h, p)
	}
	return h.Sum(nil)
}
