package transport

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// TapDir is the direction of a tapped frame relative to the tapping
// process: TapOut frames left it, TapIn frames arrived.
type TapDir uint8

const (
	TapOut TapDir = iota
	TapIn
)

func (d TapDir) String() string {
	if d == TapIn {
		return "in"
	}
	return "out"
}

// Tap observes every frame a session encodes or decodes, as raw wire
// bytes. It is the flight-recorder seam: a nil tap costs the hot paths
// one nil check and nothing else — the same discipline as a nil
// obs.Collector.
//
// head and tail together are the exact bytes on the wire (tail is
// non-empty only when the frame was assembled or decoded in two parts:
// the vectored chunk write's header+payload, or the reader's
// header+payload split). Both slices alias reused codec buffers and are
// valid only for the duration of the call — an implementation that
// retains the frame must copy. sess is the session's trace ID (zero
// before the hello established one). Implementations must be safe for
// concurrent use: one session taps from its read and write goroutines
// at once, and a host shares one tap across every session.
type Tap interface {
	TapFrame(dir TapDir, sess uint64, head, tail []byte)
}

// frameTypeNames maps wire frame types to the stable names DecodeFrame
// reports and `dxml inspect` prints.
var frameTypeNames = [frameTypeEnd]string{
	frameInvalid:       "invalid",
	frameHello:         "hello",
	frameWelcome:       "welcome",
	frameError:         "error",
	frameVerdictReq:    "verdict_req",
	frameVerdict:       "verdict",
	frameOpen:          "open",
	frameBegin:         "begin",
	frameChunk:         "chunk",
	frameAck:           "ack",
	frameEnd:           "end",
	frameReject:        "reject",
	frameStreamErr:     "stream_err",
	frameVerdictCancel: "verdict_cancel",
	frameSubscribe:     "subscribe",
	frameSubscribed:    "subscribed",
	frameEdit:          "edit",
	frameEditAck:       "edit_ack",
	frameVerdictUpdate: "verdict_update",
	framePing:          "ping",
	framePong:          "pong",
	frameResume:        "resume",
	frameRefuse:        "refuse",
}

// FrameTypeName names a wire frame-type byte ("chunk", "ack", ...);
// unknown types format as "type(N)".
func FrameTypeName(kind uint8) string {
	if int(kind) < len(frameTypeNames) && frameTypeNames[kind] != "" {
		return frameTypeNames[kind]
	}
	return fmt.Sprintf("type(%d)", kind)
}

// FrameInfo is one wire frame decoded for inspection: the stable type
// name plus every field the frame carries (unused fields are zero).
// Data aliases the input buffer. WireLen is the frame's full on-wire
// length (4-byte prefix included), which may exceed len(input) when the
// capture truncated the frame under a per-frame cap — then Truncated is
// set and only the header fields are populated.
type FrameInfo struct {
	Type      string // stable name ("hello", "chunk", ...)
	Kind      uint8  // raw frame-type byte
	Stream    uint32 // stream / request id (chunk budget for hello)
	Size      uint64
	Ver       uint64
	Win       uint32
	Flag      byte
	Str       string
	Data      []byte
	WireLen   int // full frame length on the wire, 4-byte prefix included
	Truncated bool
}

// streamIDFirst reports whether t's fixed payload begins with the
// 4-byte stream/request id (every type except the session-level hello,
// welcome, error, and refuse frames).
func streamIDFirst(t frameType) bool {
	switch t {
	case frameHello, frameWelcome, frameError, frameRefuse:
		return false
	}
	return true
}

// DecodeFrame decodes one frame's wire bytes (as a Tap observed them:
// length prefix, type byte, payload) for offline inspection. A complete
// frame decodes through the same reader the live wire (and the codec
// fuzzer) uses; a frame cut short by a capture's per-frame cap yields a
// Truncated FrameInfo with the type and — when enough bytes survive —
// the stream id. Garbage errors out; it never panics.
func DecodeFrame(wire []byte) (FrameInfo, error) {
	if len(wire) < headerSize {
		return FrameInfo{}, fmt.Errorf("transport: %d bytes is too short for a frame header", len(wire))
	}
	length := binary.BigEndian.Uint32(wire[:4])
	if length == 0 {
		return FrameInfo{}, codecErrf("transport: empty frame (missing type byte)")
	}
	if length-1 > maxFramePayload {
		return FrameInfo{}, codecErrf("transport: frame of %d bytes exceeds the %d-byte limit", length-1, maxFramePayload)
	}
	total := 4 + int(length)
	if len(wire) < total {
		// Truncated by the capture cap: report what the surviving prefix
		// pins down.
		t := frameType(wire[4])
		if t == frameInvalid || t >= frameTypeEnd {
			return FrameInfo{}, codecErrf("transport: unknown frame type %d", wire[4])
		}
		info := FrameInfo{Type: FrameTypeName(wire[4]), Kind: wire[4], WireLen: total, Truncated: true}
		if streamIDFirst(t) && len(wire) >= headerSize+4 {
			info.Stream = binary.BigEndian.Uint32(wire[headerSize : headerSize+4])
		}
		return info, nil
	}
	fr := newFrameReader(bytes.NewReader(wire[:total]))
	f, err := fr.read()
	if err != nil {
		return FrameInfo{}, err
	}
	return FrameInfo{
		Type: FrameTypeName(byte(f.typ)), Kind: byte(f.typ),
		Stream: f.id, Size: f.size, Ver: f.ver, Win: f.win, Flag: f.flag,
		Str: f.str, Data: f.data, WireLen: total,
	}, nil
}
