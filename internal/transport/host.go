package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dxml/internal/obs"
)

// Router resolves a session hello to the design it belongs to: a
// multi-tenant host keeps a registry of designs keyed by digest and
// routes every incoming session — validation, live, and resume alike —
// to its tenant's sources. Route is called once per accepted hello and
// must be safe for concurrent use.
type Router interface {
	// Route admits or refuses a session by its hello digest. A
	// *RefusedError refusal travels to the client as a typed refuse
	// frame (ErrUnknownDesign, ErrOverCapacity); any other error is a
	// generic session error. The returned route's Close is called
	// exactly once when the session ends.
	Route(digest []byte) (Route, error)
}

// Route is one admitted session's serving state: the tenant's sources,
// an optional gate for accounting and per-stream admission, and the
// release hook.
type Route struct {
	// Sources maps each docking point the session may address to its
	// peer.
	Sources map[string]Source
	// Gate, when non-nil, observes the session's protocol traffic and
	// mediates its stream admissions.
	Gate Gate
	// Close, when non-nil, is called exactly once when the session ends.
	Close func()
}

// Gate is a routed session's accounting and per-stream admission seam.
// The host calls it from the session's serving goroutines, so
// implementations must be safe for concurrent use; byte accounting
// mirrors the protocol-level Stats the kernel peer keeps (verdicts and
// fragment envelopes cost len(fn)+1, chunks cost their payload), so a
// tenant's counters and a client's Stats agree on fully delivered
// traffic.
type Gate interface {
	// OpenStream is called before a fragment or subscription stream is
	// served; a non-nil error refuses the stream (a stream error frame,
	// never a hang). CloseStream is called exactly once for every
	// admitted stream when it ends.
	OpenStream(fn string) error
	CloseStream(fn string)
	// VerdictServed records one answered (non-canceled) verdict request.
	VerdictServed(fn string)
	// ChunkShipped records one chunk frame's payload bytes (fragment or
	// snapshot).
	ChunkShipped(bytes int)
	// FragmentDelivered records one fully delivered fragment (its End
	// frame was sent).
	FragmentDelivered(fn string)
	// EditShipped records one edit frame's wire size.
	EditShipped(bytes int)
	// Resumed records one admitted resume subscription (a reconnecting
	// kernel peer catching up).
	Resumed(fn string)
}

// HostConfig parameterizes a peer host.
type HostConfig struct {
	// Digest is the hosted design's fingerprint; sessions presenting a
	// different digest are refused at hello with ErrUnknownDesign.
	// Ignored when Router is set.
	Digest []byte
	// Sources maps each hosted docking point to its peer. Ignored when
	// Router is set.
	Sources map[string]Source
	// Router, when non-nil, makes the host multi-tenant: each hello's
	// digest is resolved to its design's sources instead of being
	// checked against the single configured Digest.
	Router Router
	// Timeout is the liveness window per session: every frame read and
	// write carries a deadline this far out, and a session missing it is
	// torn down — clients heartbeat (ping) through idle stretches, so
	// only a dead or stalled peer ever trips it. Zero means
	// DefaultTimeout; negative disables deadlines.
	Timeout time.Duration
	// Window caps the per-stream credit window this host will honor,
	// whatever the client's hello grants: an open credited transfer can
	// hold up to window×chunk bytes in flight, so the cap bounds the
	// host's per-stream exposure. Zero means no cap beyond the
	// transport-wide maximum. The effective (clamped) window is echoed
	// in each stream's begin/subscribed frame.
	Window int
	// Obs, when non-nil, receives the host's telemetry: frame timing,
	// chunk ack RTT, credit-window occupancy, admission latency, and
	// per-session lifecycle spans tagged with the trace ID each hello
	// carries. Nil (the default) is the no-op sink.
	Obs *obs.Collector
	// Tap, when non-nil, observes every frame every session writes or
	// reads, as raw wire bytes tagged with the session's trace ID — the
	// flight-recorder seam. One tap is shared across all sessions, so
	// implementations must be safe for concurrent use. Nil (the
	// default) costs the hot paths one nil check and nothing else.
	Tap Tap
	// OnError, when non-nil, is called whenever a session dies
	// abnormally: a refused hello, a liveness timeout, a codec error on
	// garbage bytes, an injected fault. Clean closes (EOF between
	// frames, a torn-down listener) do not fire it. It is the host's
	// postmortem-dump trigger; it is called from session goroutines and
	// must be safe for concurrent use.
	OnError func(error)
}

// route resolves a hello digest against the config: the router when one
// is set, the single static design otherwise.
func (cfg *HostConfig) route(digest []byte) (Route, error) {
	if cfg.Router != nil {
		return cfg.Router.Route(digest)
	}
	if !bytes.Equal(digest, cfg.Digest) {
		return Route{}, &RefusedError{Code: RefuseUnknownDesign,
			Reason: "design digest mismatch (this host serves a different design)"}
	}
	return Route{Sources: cfg.Sources}, nil
}

// Host serves a set of resource peers over TCP: it accepts sessions
// from kernel peers and answers their verdict requests and fragment
// streams. One host may serve any subset of a federation's docking
// points; a kernel peer federates several hosts with Multi.
type Host struct {
	ln     net.Listener
	cfg    HostConfig
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// NewHost starts serving cfg's sources on ln; it returns immediately.
// Use net.Listen("tcp", "127.0.0.1:0") + Addr for an ephemeral port.
func NewHost(ln net.Listener, cfg HostConfig) *Host {
	h := &Host{ln: ln, cfg: cfg, conns: map[net.Conn]struct{}{}}
	h.ctx, h.cancel = context.WithCancel(context.Background())
	h.wg.Add(1)
	go h.acceptLoop()
	return h
}

// Addr is the listener's address (the port to join).
func (h *Host) Addr() net.Addr { return h.ln.Addr() }

// Close stops accepting, tears down every session, and waits for them.
func (h *Host) Close() error {
	err := h.ln.Close()
	h.cancel()
	h.mu.Lock()
	h.closed = true
	for c := range h.conns {
		c.Close()
	}
	h.mu.Unlock()
	h.wg.Wait()
	return err
}

func (h *Host) acceptLoop() {
	defer h.wg.Done()
	for {
		c, err := h.ln.Accept()
		if err != nil {
			return // listener closed
		}
		h.mu.Lock()
		// A dial can race Close: the listener hands us a conn after
		// Close swept the map. Close it here or nobody will, and
		// Close's Wait would hang on its session forever.
		if h.closed {
			h.mu.Unlock()
			c.Close()
			return
		}
		h.conns[c] = struct{}{}
		h.mu.Unlock()
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			h.serveSession(c)
			h.mu.Lock()
			delete(h.conns, c)
			h.mu.Unlock()
		}()
	}
}

// hostStream is one fragment transfer or subscription in progress at
// the host. Chunk flow control is credit-based: acked holds the highest
// cumulative consumed-chunk count the client has reported, and ackCh is
// a capacity-1 wakeup the read loop pulses whenever that count grows —
// a sender parked out of credit wakes, re-reads acked, and either
// proceeds or parks again. Because only forward-moving acks pulse the
// channel, a duplicated ack (same cumulative count) grants nothing.
// Edit delivery stays stop-and-wait on its own token channel.
type hostStream struct {
	acked   atomic.Uint64
	ackCh   chan struct{}
	editAck chan struct{}
	cancel  context.CancelFunc

	// sendNs, allocated only when the host is instrumented, is a ring of
	// send timestamps (collector nanos) indexed by chunk ordinal % win.
	// The sender goroutine stores each chunk's send time; the read loop
	// reads the newest-acked slot when a cumulative ack arrives and
	// observes the difference as chunk RTT. Atomics give the cross-
	// goroutine happens-before the plain ring would lack; a window can
	// recycle a slot before its ack is read only after the client acked
	// past it, so a raced slot yields a shorter (never negative) RTT
	// sample — acceptable for a histogram.
	sendNs []atomic.Int64

	// sentChunks/sentBytes are written only by the sender goroutine and
	// read by it at stream end for the chunks span.
	sentChunks uint64
	sentBytes  int64
}

func newHostStream(cancel context.CancelFunc) *hostStream {
	return &hostStream{ackCh: make(chan struct{}, 1), editAck: make(chan struct{}, 1), cancel: cancel}
}

// session is one kernel peer's connection.
type session struct {
	host    *Host
	c       net.Conn
	wmu     sync.Mutex
	fw      frameWriter
	timeout time.Duration // liveness window (0: no deadlines)
	sources map[string]Source
	gate    Gate           // nil: ungated
	obs     *obs.Collector // telemetry sink (nil: no-op)
	trace   uint64         // trace ID from the client's hello

	mu       sync.Mutex
	streams  map[uint32]*hostStream
	verdicts map[uint32]context.CancelFunc
	lives    map[uint32]LiveFeedSrc // open subscriptions, for verdict-update routing
	wg       sync.WaitGroup
}

// send writes one frame under the write lock, with the liveness
// deadline armed: a client that stops draining its socket fails the
// write in bounded time instead of parking a stream goroutine forever.
func (s *session) send(f frame) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.timeout > 0 {
		s.c.SetWriteDeadline(time.Now().Add(s.timeout))
	}
	start := s.obs.Nanos()
	if err := s.fw.write(f); err != nil {
		if isTimeout(err) {
			return &TimeoutError{Op: "write", After: s.timeout}
		}
		return err
	}
	s.obs.Observe(obs.HFrameEncodeNs, s.obs.Nanos()-start)
	s.obs.Add(obs.CFramesEncoded, 1)
	return nil
}

// armReadDeadline extends the session's liveness window by one timeout.
func (s *session) armReadDeadline() {
	if s.timeout > 0 {
		s.c.SetReadDeadline(time.Now().Add(s.timeout))
	}
}

// reportErr surfaces one session's abnormal death to the host's
// OnError hook. Clean closes are filtered here — EOF between frames
// and a closed listener are how every healthy session ends — so the
// hook only ever sees genuine failures: timeouts, codec errors on
// garbage bytes, refusals, injected faults, resets.
func (h *Host) reportErr(err error) {
	if err == nil || h.cfg.OnError == nil {
		return
	}
	if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
		return
	}
	h.cfg.OnError(err)
}

func (h *Host) serveSession(c net.Conn) {
	defer c.Close()
	s := &session{host: h, c: c, fw: frameWriter{w: c},
		timeout: resolveLiveness(h.cfg.Timeout, DefaultTimeout),
		streams: map[uint32]*hostStream{}, verdicts: map[uint32]context.CancelFunc{},
		lives: map[uint32]LiveFeedSrc{}, obs: h.cfg.Obs}
	s.fw.tap = h.cfg.Tap
	fr := newFrameReader(c)
	fr.obs = h.cfg.Obs
	fr.tap = h.cfg.Tap
	s.armReadDeadline()
	helloStart := spanClock(s.obs)
	hello, err := fr.read()
	if err != nil || hello.typ != frameHello {
		if err == nil {
			err = codecErrf("transport: expected hello, got frame type %d", hello.typ)
		}
		h.reportErr(err)
		s.send(frame{typ: frameError, str: "expected hello"})
		return
	}
	s.trace = hello.ver
	s.fw.sess, fr.sess = hello.ver, hello.ver
	if hello.flag != protocolVersion {
		s.send(frame{typ: frameError, str: fmt.Sprintf("protocol version mismatch: client speaks v%d, this host v%d", hello.flag, protocolVersion)})
		return
	}
	admitStart := s.obs.Nanos()
	route, rerr := h.cfg.route(hello.data)
	s.obs.Observe(obs.HAdmissionNs, s.obs.Nanos()-admitStart)
	if rerr != nil {
		h.reportErr(rerr)
		s.obs.Add(obs.CRefusals, 1)
		// A refusal is typed on the wire (unknown design, over
		// capacity) so the dialing peer can tell "back off and retry"
		// from "wrong host" — and it is always immediate: admission
		// control answers the hello, it never parks it.
		var ref *RefusedError
		if errors.As(rerr, &ref) {
			s.send(frame{typ: frameRefuse, flag: byte(ref.Code), str: ref.Reason})
		} else {
			s.send(frame{typ: frameError, str: rerr.Error()})
		}
		return
	}
	if route.Close != nil {
		defer route.Close()
	}
	s.sources, s.gate = route.Sources, route.Gate
	budget := budgetFromWire(hello.id)
	// The effective credit window: the client's hello grant clamped to
	// [1, maxWindow] and to the host's own cap. Hostile grants (zero, or
	// a count that overflows int) are clamped, never honored — credits
	// gate sending, they never size an allocation, so no grant can make
	// the host buffer unboundedly or deadlock.
	win := clampWindow(int(hello.win), h.cfg.Window)
	if err := s.send(frame{typ: frameWelcome, flag: protocolVersion, data: hello.data}); err != nil {
		return
	}
	s.obs.Add(obs.CAdmissions, 1)
	s.obs.Span(obs.Span{Trace: s.trace, Name: "hello", Start: helloStart, End: spanClock(s.obs)})
	ctx, cancel := context.WithCancel(h.ctx)
	defer cancel() // halts every in-flight verdict and stream
	for {
		s.armReadDeadline()
		f, err := fr.read()
		if err != nil {
			if isTimeout(err) {
				err = &TimeoutError{Op: "read", After: s.timeout}
			}
			h.reportErr(err)
			break
		}
		switch f.typ {
		case framePing:
			// Liveness probe: echo the token so the client's read
			// deadline refreshes. The ping's arrival refreshed ours.
			if s.send(frame{typ: framePong, id: f.id}) != nil {
				cancel()
				s.wg.Wait()
				return
			}

		case framePong:
			// Traffic is the point; nothing to route.

		case frameVerdictReq:
			src, ok := s.sources[f.str]
			if !ok {
				s.send(frame{typ: frameStreamErr, id: f.id, str: "no such docking point: " + f.str})
				continue
			}
			vctx, vcancel := context.WithCancel(ctx)
			s.mu.Lock()
			s.verdicts[f.id] = vcancel
			s.mu.Unlock()
			s.wg.Add(1)
			go func(id uint32, fn string) {
				defer s.wg.Done()
				start := spanClock(s.obs)
				v := byte(0)
				if src.Verdict(vctx) {
					v = 1
				}
				canceled := vctx.Err() != nil
				s.mu.Lock()
				delete(s.verdicts, id)
				s.mu.Unlock()
				vcancel()
				if !canceled && s.send(frame{typ: frameVerdict, id: id, flag: v}) == nil {
					if s.gate != nil {
						s.gate.VerdictServed(fn)
					}
					s.obs.Span(obs.Span{Trace: s.trace, Name: "verdict", Frag: fn, Start: start, End: spanClock(s.obs)})
				}
			}(f.id, f.str)

		case frameVerdictCancel:
			s.mu.Lock()
			vcancel := s.verdicts[f.id]
			delete(s.verdicts, f.id)
			s.mu.Unlock()
			if vcancel != nil {
				vcancel() // the round was decided: stop mid-document
			}

		case frameOpen:
			src, ok := s.sources[f.str]
			if !ok {
				s.send(frame{typ: frameStreamErr, id: f.id, str: "no such docking point: " + f.str})
				continue
			}
			if err := s.admitStream(f.str); err != nil {
				s.send(frame{typ: frameStreamErr, id: f.id, str: err.Error()})
				continue
			}
			sctx, scancel := context.WithCancel(ctx)
			st := newHostStream(scancel)
			s.mu.Lock()
			s.streams[f.id] = st
			s.mu.Unlock()
			s.wg.Add(1)
			go s.serveStream(sctx, f.id, st, src, budget, win, f.str)

		case frameSubscribe, frameResume:
			src, ok := s.sources[f.str]
			if !ok {
				s.send(frame{typ: frameStreamErr, id: f.id, str: "no such docking point: " + f.str})
				continue
			}
			if err := s.admitStream(f.str); err != nil {
				s.send(frame{typ: frameStreamErr, id: f.id, str: err.Error()})
				continue
			}
			var lf LiveFeedSrc
			var resumed bool
			var err error
			if f.typ == frameResume {
				rs, ok := src.(ResumableSource)
				if !ok {
					s.releaseStream(f.str)
					s.send(frame{typ: frameStreamErr, id: f.id, str: "docking point does not support resumed subscriptions: " + f.str})
					continue
				}
				sctx, scancel := context.WithCancel(ctx)
				lf, resumed, err = rs.OpenLiveSince(sctx, f.ver)
				if err != nil {
					scancel()
					s.releaseStream(f.str)
					s.send(frame{typ: frameStreamErr, id: f.id, str: err.Error()})
					continue
				}
				if s.gate != nil {
					s.gate.Resumed(f.str)
				}
				s.startLive(sctx, scancel, f.id, lf, budget, win, resumed, f.str)
				continue
			}
			ls, ok := src.(LiveSource)
			if !ok {
				s.releaseStream(f.str)
				s.send(frame{typ: frameStreamErr, id: f.id, str: "docking point is not live: " + f.str})
				continue
			}
			sctx, scancel := context.WithCancel(ctx)
			lf, err = ls.OpenLive(sctx)
			if err != nil {
				scancel()
				s.releaseStream(f.str)
				s.send(frame{typ: frameStreamErr, id: f.id, str: err.Error()})
				continue
			}
			s.startLive(sctx, scancel, f.id, lf, budget, win, false, f.str)

		case frameAck:
			s.mu.Lock()
			st := s.streams[f.id]
			s.mu.Unlock()
			if st != nil {
				// Cumulative credit replenishment. Only a forward-moving
				// count stores and pulses — a duplicated or stale ack
				// (chaos retransmission, broken client) changes nothing,
				// so it can never double-credit the sender. The read loop
				// is the sole writer of acked, so load-check-store is safe.
				if cum := f.ver; cum > st.acked.Load() {
					if ring := st.sendNs; ring != nil {
						// RTT of the newest chunk this ack covers: its send
						// time is still in the ring (the window bounds how
						// far sending can run ahead of acks).
						if t := ring[(cum-1)%uint64(len(ring))].Load(); t > 0 {
							s.obs.Observe(obs.HChunkRTTNs, s.obs.Nanos()-t)
						}
						s.obs.Add(obs.CChunksAcked, int64(cum-st.acked.Load()))
					}
					st.acked.Store(cum)
					select {
					case st.ackCh <- struct{}{}:
					default: // sender already has a wakeup pending
					}
				}
			}

		case frameEditAck:
			s.mu.Lock()
			st := s.streams[f.id]
			s.mu.Unlock()
			if st != nil {
				select {
				case st.editAck <- struct{}{}:
				default: // duplicate ack from a broken client: drop
				}
			}

		case frameVerdictUpdate:
			s.mu.Lock()
			lf := s.lives[f.id]
			s.mu.Unlock()
			if lf != nil {
				lf.NoteVerdict(f.ver, f.flag != 0)
			}

		case frameReject:
			s.mu.Lock()
			st := s.streams[f.id]
			delete(s.streams, f.id)
			s.mu.Unlock()
			if st != nil {
				st.cancel() // halt the sender mid-serialization
			}

		default:
			s.send(frame{typ: frameError, str: fmt.Sprintf("unexpected frame type %d", f.typ)})
			cancel()
			s.wg.Wait()
			return
		}
	}
	cancel()
	s.wg.Wait()
}

// admitStream asks the session's gate to admit one more open transfer;
// ungated sessions admit everything. A refusal is answered with a
// stream error frame by the caller — bounded, never a hang.
func (s *session) admitStream(fn string) error {
	if s.gate == nil {
		return nil
	}
	return s.gate.OpenStream(fn)
}

// releaseStream undoes an admitStream whose stream never started (or
// just ended).
func (s *session) releaseStream(fn string) {
	if s.gate != nil {
		s.gate.CloseStream(fn)
	}
}

// serveStream runs one fragment transfer: announce the size and the
// effective window, then ship chunk frames as long as the receiver's
// cumulative acks leave credit — up to win unacked chunks are
// pipelined, so the sender is never idle a full round trip per chunk.
// A reject (or a dead session) cancels sctx: a parked sender wakes at
// once, and a sender with credit left notices before its next chunk,
// so at most one window past the failure point is ever serialized.
func (s *session) serveStream(sctx context.Context, id uint32, st *hostStream, src Source, budget, win int, fn string) {
	defer s.wg.Done()
	defer st.cancel()
	defer s.releaseStream(fn)
	openStart := spanClock(s.obs)
	size := src.Size()
	if err := s.send(frame{typ: frameBegin, id: id, size: uint64(size), win: uint32(win)}); err != nil {
		return
	}
	s.obs.Span(obs.Span{Trace: s.trace, Name: "open", Frag: fn, Start: openStart, End: spanClock(s.obs), Bytes: int64(size)})
	chunksStart := spanClock(s.obs)
	cw := newChunker(budget, s.creditedSend(sctx, id, st, win))
	err := src.Serialize(cw)
	if err == nil {
		err = cw.flush() // the final partial chunk
	}
	s.mu.Lock()
	delete(s.streams, id)
	s.mu.Unlock()
	span := obs.Span{Trace: s.trace, Name: "chunks", Frag: fn,
		Start: chunksStart, Bytes: st.sentBytes, N: int64(st.sentChunks)}
	switch {
	case err == nil:
		if s.send(frame{typ: frameEnd, id: id}) == nil && s.gate != nil {
			s.gate.FragmentDelivered(fn)
		}
	case sctx.Err() != nil:
		// Rejected or torn down: the receiver is not listening.
		span.Err = "rejected"
	default:
		span.Err = err.Error()
		s.send(frame{typ: frameStreamErr, id: id, str: err.Error()})
	}
	span.End = spanClock(s.obs)
	s.obs.Span(span)
}

// creditedSend builds the chunker's send callback for a credit-windowed
// stream: park while the window is exhausted (sent − acked ≥ win), then
// ship the chunk with a vectored header+payload write. The chunk buffer
// is reused the moment the socket write returns, which is why the
// chunker's two-slot ring suffices on TCP.
func (s *session) creditedSend(sctx context.Context, id uint32, st *hostStream, win int) func([]byte) error {
	var sent uint64
	if s.obs != nil {
		// The RTT ring exists only when instrumented: one slot per
		// window credit, written at send, read by the read loop at ack.
		st.sendNs = make([]atomic.Int64, win)
	}
	return func(chunk []byte) error {
		var acked uint64
		for {
			// A hostile client can ack more chunks than were ever sent;
			// clamp to sent so the subtraction never wraps — an over-ack
			// grants at most a full window, it can never park the sender
			// forever or corrupt the credit arithmetic.
			acked = st.acked.Load()
			if acked > sent {
				acked = sent
			}
			if sent-acked < uint64(win) {
				break
			}
			select {
			case <-st.ackCh:
			case <-sctx.Done():
				return sctx.Err()
			}
		}
		if err := sctx.Err(); err != nil {
			return err
		}
		if ring := st.sendNs; ring != nil {
			// Occupancy is sampled before the send: how many credits were
			// already consumed when this chunk went out.
			s.obs.Observe(obs.HWindowOccupancy, int64(sent-acked))
			ring[sent%uint64(len(ring))].Store(s.obs.Nanos())
		}
		if err := s.sendChunk(id, chunk); err != nil {
			return err
		}
		if s.gate != nil {
			s.gate.ChunkShipped(len(chunk))
		}
		if st.sendNs != nil {
			s.obs.Add(obs.CChunksSent, 1)
			s.obs.Observe(obs.HChunkBytes, int64(len(chunk)))
			st.sentBytes += int64(len(chunk))
		}
		sent++
		st.sentChunks = sent
		return nil
	}
}

// sendChunk writes one chunk frame under the write lock with the
// liveness deadline armed, using the vectored header+payload path — the
// payload goes to the socket without an intermediate copy.
func (s *session) sendChunk(id uint32, chunk []byte) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.timeout > 0 {
		s.c.SetWriteDeadline(time.Now().Add(s.timeout))
	}
	if err := s.fw.writeChunk(id, chunk); err != nil {
		if isTimeout(err) {
			return &TimeoutError{Op: "write", After: s.timeout}
		}
		return err
	}
	return nil
}

// startLive registers a subscription's stream bookkeeping and launches
// its sender goroutine.
func (s *session) startLive(sctx context.Context, scancel context.CancelFunc, id uint32, lf LiveFeedSrc, budget, win int, resumed bool, fn string) {
	st := newHostStream(scancel)
	s.mu.Lock()
	s.streams[id] = st
	s.lives[id] = lf
	s.mu.Unlock()
	s.wg.Add(1)
	go s.serveLive(sctx, id, st, lf, budget, win, resumed, fn)
}

// serveLive runs one subscription: announce the snapshot cut, ship the
// snapshot in credit-windowed chunk frames (like any fragment), mark
// its end, then forward edits as they are published — each edit waits
// for its own ack before the next is pulled (edits stay stop-and-wait),
// so a slow subscriber backpressures the editor's log reader rather
// than flooding the socket. A reject (unsubscribe) or session teardown
// cancels sctx and the loop exits at the next handoff. A resumed
// subscription's snapshot is empty (the subscriber kept its replica),
// so the phase structure is unchanged: subscribed, zero chunks, end,
// edits from the announced version on.
func (s *session) serveLive(sctx context.Context, id uint32, st *hostStream, lf LiveFeedSrc, budget, win int, resumed bool, fn string) {
	defer s.wg.Done()
	defer st.cancel()
	defer s.releaseStream(fn)
	defer func() {
		s.mu.Lock()
		delete(s.streams, id)
		delete(s.lives, id)
		s.mu.Unlock()
		lf.Close()
	}()
	rflag := byte(0)
	if resumed {
		rflag = 1
	}
	if err := s.send(frame{typ: frameSubscribed, id: id, ver: lf.Version(), size: uint64(lf.Size()), flag: rflag, win: uint32(win)}); err != nil {
		return
	}
	cw := newChunker(budget, s.creditedSend(sctx, id, st, win))
	err := lf.Serialize(cw)
	if err == nil {
		err = cw.flush()
	}
	if err != nil {
		if sctx.Err() == nil {
			s.send(frame{typ: frameStreamErr, id: id, str: err.Error()})
		}
		return
	}
	if err := s.send(frame{typ: frameEnd, id: id}); err != nil {
		return
	}
	pos := lf.Version()
	for {
		e, err := lf.NextEdit(sctx, pos)
		if err != nil {
			if sctx.Err() == nil {
				s.send(frame{typ: frameStreamErr, id: id, str: err.Error()})
			}
			return
		}
		pos = e.Version
		if err := s.send(frame{typ: frameEdit, id: id, ver: e.Version, flag: e.Op, addr: e.Addr, data: e.Doc}); err != nil {
			return
		}
		if s.gate != nil {
			s.gate.EditShipped(e.WireSize())
		}
		select {
		case <-st.editAck:
		case <-sctx.Done():
			return
		}
	}
}
