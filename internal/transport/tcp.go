package transport

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dxml/internal/obs"
)

// Liveness defaults. The kernel peer pings after DefaultHeartbeat of
// write silence; both ends refuse to wait more than DefaultTimeout for
// the peer's next frame. Because every ping is answered with a pong,
// an idle but healthy session sees traffic in both directions within
// one heartbeat, and a dead peer is detected within one timeout — never
// the unbounded hang the pre-liveness wire allowed.
const (
	DefaultHeartbeat = 2 * time.Second
	DefaultTimeout   = 10 * time.Second
)

// resolveLiveness maps a config duration to its effective value: zero
// means the default, negative disables (returns 0).
func resolveLiveness(d, def time.Duration) time.Duration {
	switch {
	case d == 0:
		return def
	case d < 0:
		return 0
	}
	return d
}

// Config parameterizes a TCP session from the kernel peer's side.
type Config struct {
	// Digest is the design fingerprint exchanged in the hello; the
	// server refuses a mismatch. See Digest.
	Digest []byte
	// Chunk is the fragment chunk budget in bytes the server will
	// serialize with (math.MaxInt or <= 0 for unchunked).
	Chunk int
	// Window is the per-stream credit window this receiver grants in the
	// hello: the host may pipeline up to Window unacked chunks per
	// stream. Zero means DefaultWindow; negative is invalid
	// (ErrInvalidWindow); values above the transport-wide maximum are
	// clamped. The host may lower the grant (its own cap); the effective
	// window is echoed per stream in the begin/subscribed frame. Window 1
	// degenerates to stop-and-wait.
	Window int
	// Heartbeat is the ping interval: after this much write silence the
	// client sends a ping so the host sees traffic. Zero means
	// DefaultHeartbeat; negative disables the heartbeat.
	Heartbeat time.Duration
	// Timeout is the liveness window: every frame read and write
	// carries a deadline this far out, and missing it fails the session
	// with a TimeoutError. Zero means DefaultTimeout; negative disables
	// deadlines (the pre-liveness behavior). It should comfortably
	// exceed Heartbeat.
	Timeout time.Duration
	// Obs, when non-nil, receives this session's telemetry: frame
	// encode/decode timing and per-fragment lifecycle spans tagged with
	// the trace ID minted at the hello. Nil (the default) is the no-op
	// sink — the hot paths then pay one nil check and nothing else.
	Obs *obs.Collector
	// Tap, when non-nil, observes every frame this session writes or
	// reads, as raw wire bytes tagged with the session's trace ID — the
	// flight-recorder seam. Nil (the default) costs the hot paths one
	// nil check and nothing else.
	Tap Tap
}

// Conn is an established TCP session with one peer host, from the
// kernel peer's side. It multiplexes concurrent verdict requests and
// fragment streams over a single socket; methods are safe for
// concurrent use.
type Conn struct {
	c   net.Conn
	wmu sync.Mutex // serializes frame writes
	fw  frameWriter

	timeout   time.Duration // liveness window (0: no deadlines)
	heartbeat time.Duration // ping-after-idle interval (0: no pings)
	lastWrite atomic.Int64  // UnixNano of the most recent frame write
	pingID    atomic.Uint32

	window  int       // credit window granted per stream (chunks)
	bufPool sync.Pool // *[]byte chunk/edit payload buffers, reused across frames

	obs   *obs.Collector // telemetry sink (nil: no-op)
	trace uint64         // trace ID minted at the hello, shared with the host

	nextID  atomic.Uint32
	mu      sync.Mutex // guards pending and doneErr
	pending map[uint32]*waiter

	done    chan struct{} // closed when the read loop exits
	doneErr error         // why (valid after done)
}

// dispatch is one frame handed from the read loop to a waiter. Chunk
// and edit payloads are copied into a pooled buffer (buf), because the
// frame reader's decode buffer is overwritten by the next read; the
// consumer returns buf to the conn's pool when it picks up the stream's
// next frame, so a transfer of any length cycles through at most
// window+1 buffers instead of allocating per frame.
type dispatch struct {
	f   frame
	buf *[]byte
}

// waiter is one request's or stream's dispatch slot.
type waiter struct {
	ch chan dispatch
}

// Dial connects to a peer host, performs the hello exchange, and
// returns the session. The configured digest must match the host's.
func Dial(addr string, cfg Config) (*Conn, error) {
	win := cfg.Window
	if win == 0 {
		win = DefaultWindow
	}
	if win < 0 {
		return nil, fmt.Errorf("transport: dial: %w", ErrInvalidWindow)
	}
	win = clampWindow(win, 0)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Conn{
		c:         nc,
		fw:        frameWriter{w: nc},
		timeout:   resolveLiveness(cfg.Timeout, DefaultTimeout),
		heartbeat: resolveLiveness(cfg.Heartbeat, DefaultHeartbeat),
		window:    win,
		pending:   map[uint32]*waiter{},
		done:      make(chan struct{}),
		obs:       cfg.Obs,
		trace:     obs.NewTraceID(),
	}
	c.fw.tap, c.fw.sess = cfg.Tap, c.trace
	c.bufPool.New = func() any { return new([]byte) }
	helloStart := spanClock(cfg.Obs)
	if err := c.send(frame{
		typ:  frameHello,
		flag: protocolVersion,
		id:   wireChunk(cfg.Chunk),
		win:  uint32(win),
		ver:  c.trace,
		data: cfg.Digest,
	}); err != nil {
		nc.Close()
		return nil, fmt.Errorf("transport: hello: %w", err)
	}
	fr := newFrameReader(nc)
	fr.obs = cfg.Obs
	fr.tap, fr.sess = cfg.Tap, c.trace
	c.armReadDeadline()
	f, err := fr.read()
	if err != nil {
		nc.Close()
		if isTimeout(err) {
			return nil, &TimeoutError{Op: "hello", After: c.timeout}
		}
		return nil, fmt.Errorf("transport: hello: %w", err)
	}
	switch f.typ {
	case frameWelcome:
		if f.flag != protocolVersion {
			nc.Close()
			return nil, fmt.Errorf("transport: protocol version mismatch: host speaks v%d, this client v%d", f.flag, protocolVersion)
		}
		if !bytes.Equal(f.data, cfg.Digest) {
			nc.Close()
			return nil, fmt.Errorf("transport: design digest mismatch (the host serves a different design)")
		}
	case frameRefuse:
		// A typed refusal: the host named its cause on the wire, so the
		// error unwraps to ErrUnknownDesign or ErrOverCapacity and the
		// caller can tell "not registered here" from "back off and
		// retry".
		nc.Close()
		return nil, &RefusedError{Code: RefuseCode(f.flag), Reason: f.str}
	case frameError:
		nc.Close()
		return nil, fmt.Errorf("transport: host refused session: %s", f.str)
	default:
		nc.Close()
		return nil, fmt.Errorf("transport: unexpected hello response (frame type %d)", f.typ)
	}
	c.obs.Span(obs.Span{Trace: c.trace, Name: "hello", Start: helloStart, End: spanClock(cfg.Obs)})
	go c.readLoop(fr)
	if c.heartbeat > 0 {
		go c.heartbeatLoop()
	}
	return c, nil
}

// spanClock returns the wall-clock span timestamp, or 0 when no trace
// sink is attached: span boundaries are the only place the transport
// consults the wall clock, and only when someone is listening. Spans
// use wall-clock Unix nanos (not the collector's monotonic epoch) so
// the two processes' JSONL streams stitch onto one timeline.
func spanClock(c *obs.Collector) int64 {
	if c.Trace() == nil {
		return 0
	}
	return time.Now().UnixNano()
}

// armReadDeadline extends the liveness window by one timeout: the next
// frame (any frame — a pong counts) must arrive within it.
func (c *Conn) armReadDeadline() {
	if c.timeout > 0 {
		c.c.SetReadDeadline(time.Now().Add(c.timeout))
	}
}

// heartbeatLoop keeps an idle session visibly alive: after a heartbeat
// interval with no frame written, it sends a ping. The host answers
// with a pong, so both ends see traffic within one heartbeat whenever
// the path is healthy — the read deadlines then only ever fire on a
// genuinely dead peer.
func (c *Conn) heartbeatLoop() {
	t := time.NewTicker(c.heartbeat)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if time.Since(time.Unix(0, c.lastWrite.Load())) < c.heartbeat {
				continue // the session is writing on its own; no probe needed
			}
			if c.send(frame{typ: framePing, id: c.pingID.Add(1)}) != nil {
				return // the read loop surfaces the session failure
			}
		case <-c.done:
			return
		}
	}
}

// readLoop dispatches incoming frames to their waiting request or
// stream; frames for aborted or finished streams are dropped.
func (c *Conn) readLoop(fr *frameReader) {
	var err error
	for {
		var f frame
		c.armReadDeadline()
		f, err = fr.read()
		if err != nil {
			if isTimeout(err) {
				err = &TimeoutError{Op: "read", After: c.timeout}
			}
			break
		}
		if f.typ == frameError {
			err = fmt.Errorf("transport: host error: %s", f.str)
			break
		}
		// Liveness frames are handled before stream dispatch: their token
		// ids share nothing with stream ids and must not be routed.
		if f.typ == framePing {
			if c.send(frame{typ: framePong, id: f.id}) != nil {
				continue // the write path's failure surfaces on the next read
			}
			continue
		}
		if f.typ == framePong {
			continue // the arrival itself refreshed the read deadline
		}
		c.mu.Lock()
		w := c.pending[f.id]
		c.mu.Unlock()
		if w == nil {
			continue // late response for an aborted stream: drop
		}
		d := dispatch{f: f}
		if f.typ == frameChunk || f.typ == frameEdit {
			// The frame reader's decode buffer is overwritten by the
			// next read, so the payload is copied out — into a pooled
			// buffer the consumer returns when it picks up the stream's
			// next frame, keeping the hot path allocation-steady at any
			// window size.
			bp := c.bufPool.Get().(*[]byte)
			*bp = append((*bp)[:0], f.data...)
			d.f.data, d.buf = *bp, bp
		}
		select {
		case w.ch <- d:
		default:
			// A conforming host never has more frames in flight per
			// stream than the dispatch buffer holds (the credit window
			// bounds unacked chunks); overflow means the protocol is
			// broken, and dropping or blocking would hang the session in
			// harder-to-debug ways.
			err = fmt.Errorf("transport: host overran stream %d", f.id)
		}
		if err != nil {
			break
		}
	}
	if err == io.EOF {
		err = fmt.Errorf("transport: session closed by host")
	}
	c.mu.Lock()
	c.doneErr = err
	c.mu.Unlock()
	close(c.done)
}

// register allocates an id and its dispatch slot with the given
// capacity. Verdict requests use a small fixed slot; streams size
// theirs to the credit window (window unacked chunks can be in flight
// at once, plus the begin/end/error envelope and a trailing edit).
func (c *Conn) register(slots int) (uint32, *waiter) {
	id := c.nextID.Add(1)
	w := &waiter{ch: make(chan dispatch, slots)}
	c.mu.Lock()
	c.pending[id] = w
	c.mu.Unlock()
	return id, w
}

// streamSlots is the dispatch capacity for a credit-windowed stream:
// up to window unacked chunks, plus Begin/End/StreamErr and one edit
// frame interleaving at phase boundaries.
func (c *Conn) streamSlots() int { return c.window + 4 }

func (c *Conn) unregister(id uint32) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// send writes one frame under the write lock, with the liveness
// deadline armed: a peer that stops draining its socket fails the write
// in bounded time instead of parking the sender forever.
func (c *Conn) send(f frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.timeout > 0 {
		c.c.SetWriteDeadline(time.Now().Add(c.timeout))
	}
	c.lastWrite.Store(time.Now().UnixNano())
	start := c.obs.Nanos()
	if err := c.fw.write(f); err != nil {
		if isTimeout(err) {
			return &TimeoutError{Op: "write", After: c.timeout}
		}
		return err
	}
	c.obs.Observe(obs.HFrameEncodeNs, c.obs.Nanos()-start)
	c.obs.Add(obs.CFramesEncoded, 1)
	return nil
}

// TraceID returns the session's trace ID: minted at Dial, carried in
// the hello, and tagged onto every telemetry span both processes emit
// for this session.
func (c *Conn) TraceID() uint64 { return c.trace }

// sessionErr reports why the session died.
func (c *Conn) sessionErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.doneErr != nil {
		return c.doneErr
	}
	return fmt.Errorf("transport: session closed")
}

// Verdict asks the host to validate fn's document against its local
// type and waits for the answer.
func (c *Conn) Verdict(ctx context.Context, fn string) (bool, error) {
	id, w := c.register(4)
	defer c.unregister(id)
	start := spanClock(c.obs)
	if err := c.send(frame{typ: frameVerdictReq, id: id, str: fn}); err != nil {
		return false, err
	}
	select {
	case d := <-w.ch:
		f := d.f
		switch f.typ {
		case frameVerdict:
			c.obs.Span(obs.Span{Trace: c.trace, Name: "verdict", Frag: fn, Start: start, End: spanClock(c.obs)})
			return f.flag != 0, nil
		case frameStreamErr:
			return false, fmt.Errorf("transport: verdict %s: %s", fn, f.str)
		default:
			return false, fmt.Errorf("transport: unexpected frame type %d for verdict request", f.typ)
		}
	case <-ctx.Done():
		// Withdraw the request so the host stops validating
		// mid-document — the short-circuit behavior in-process peers
		// get from their shared context.
		c.send(frame{typ: frameVerdictCancel, id: id})
		return false, ctx.Err()
	case <-c.done:
		return false, c.sessionErr()
	}
}

// Open requests fn's fragment stream and waits for the host to announce
// it (a Begin frame carrying the total size).
func (c *Conn) Open(ctx context.Context, fn string) (Fragment, error) {
	id, w := c.register(c.streamSlots())
	start := spanClock(c.obs)
	if err := c.send(frame{typ: frameOpen, id: id, str: fn}); err != nil {
		c.unregister(id)
		return nil, err
	}
	select {
	case d := <-w.ch:
		f := d.f
		switch f.typ {
		case frameBegin:
			// The begin frame echoes the effective window the host will
			// honor; a conforming host never raises the hello grant.
			if f.win < 1 || int(f.win) > c.window {
				c.unregister(id)
				c.send(frame{typ: frameReject, id: id, str: "bad window echo"})
				return nil, fmt.Errorf("transport: open %s: host announced window %d outside granted [1,%d]", fn, f.win, c.window)
			}
			c.obs.Span(obs.Span{Trace: c.trace, Name: "open", Frag: fn, Start: start, End: spanClock(c.obs), Bytes: int64(f.size)})
			return &tcpFragment{conn: c, id: id, w: w, fn: fn, size: int(f.size), opened: spanClock(c.obs)}, nil
		case frameStreamErr:
			c.unregister(id)
			return nil, fmt.Errorf("transport: open %s: %s", fn, f.str)
		default:
			c.unregister(id)
			return nil, fmt.Errorf("transport: unexpected frame type %d opening %s", f.typ, fn)
		}
	case <-ctx.Done():
		c.unregister(id)
		// Halt the transfer the caller no longer wants; the host's
		// stream goroutine would otherwise park on its first ack.
		c.send(frame{typ: frameReject, id: id, str: "open canceled"})
		return nil, ctx.Err()
	case <-c.done:
		c.unregister(id)
		return nil, c.sessionErr()
	}
}

// Subscribe opens a live subscription on fn's edit log and waits for
// the host to announce the snapshot cut.
func (c *Conn) Subscribe(ctx context.Context, fn string) (EditFeed, error) {
	return c.subscribe(ctx, fn, 0, frameSubscribe)
}

// Resubscribe reopens a live subscription after a disconnect: `after`
// is the last edit version this peer applied. When the host's log still
// covers the suffix, the returned feed is Resumed() — no snapshot, the
// first edit carries after+1. Otherwise the host falls back to a fresh
// full snapshot cut (the log was compacted past `after`) and the feed
// behaves exactly like a new subscription.
func (c *Conn) Resubscribe(ctx context.Context, fn string, after uint64) (EditFeed, error) {
	return c.subscribe(ctx, fn, after, frameResume)
}

// subscribe is the shared subscription handshake: send the request
// frame, wait for the subscribed announcement.
func (c *Conn) subscribe(ctx context.Context, fn string, after uint64, typ frameType) (EditFeed, error) {
	id, w := c.register(c.streamSlots())
	if err := c.send(frame{typ: typ, id: id, ver: after, str: fn}); err != nil {
		c.unregister(id)
		return nil, err
	}
	select {
	case d := <-w.ch:
		f := d.f
		switch f.typ {
		case frameSubscribed:
			if f.win < 1 || int(f.win) > c.window {
				c.unregister(id)
				c.send(frame{typ: frameReject, id: id, str: "bad window echo"})
				return nil, fmt.Errorf("transport: subscribe %s: host announced window %d outside granted [1,%d]", fn, f.win, c.window)
			}
			return &tcpEditFeed{conn: c, id: id, w: w, base: f.ver, size: int(f.size), resumed: f.flag != 0}, nil
		case frameStreamErr:
			c.unregister(id)
			return nil, fmt.Errorf("transport: subscribe %s: %s", fn, f.str)
		default:
			c.unregister(id)
			return nil, fmt.Errorf("transport: unexpected frame type %d subscribing to %s", f.typ, fn)
		}
	case <-ctx.Done():
		c.unregister(id)
		c.send(frame{typ: frameReject, id: id, str: "subscribe canceled"})
		return nil, ctx.Err()
	case <-c.done:
		c.unregister(id)
		return nil, c.sessionErr()
	}
}

// tcpEditFeed is the receiver side of one TCP subscription: snapshot
// chunks first (credit-windowed and cumulatively acked like a fragment
// transfer), then edits (stop-and-wait, acked with their version).
type tcpEditFeed struct {
	conn    *Conn
	id      uint32
	w       *waiter
	base    uint64
	size    int
	resumed bool

	received  uint64  // snapshot chunks picked up so far
	lastAcked uint64  // cumulative count in the last ack sent
	prevChunk *[]byte // pooled buffer behind the last returned chunk
	prevEdit  *[]byte // pooled buffer behind the last returned edit

	owesEditAck bool
	lastVer     uint64
	closed      bool
}

func (f *tcpEditFeed) Base() uint64      { return f.base }
func (f *tcpEditFeed) SnapshotSize() int { return f.size }
func (f *tcpEditFeed) Resumed() bool     { return f.resumed }

// release returns a pooled payload buffer once its chunk or edit is no
// longer referenced by the caller.
func (c *Conn) release(bp *[]byte) {
	if bp != nil {
		c.bufPool.Put(bp)
	}
}

func (f *tcpEditFeed) NextChunk() ([]byte, error) {
	if f.closed {
		return nil, fmt.Errorf("transport: read from closed subscription")
	}
	f.conn.release(f.prevChunk)
	f.prevChunk = nil
	if f.received > f.lastAcked {
		// Cumulative ack: every consumed chunk replenishes the sender's
		// credits; duplicates are idempotent by construction.
		f.lastAcked = f.received
		if err := f.conn.send(frame{typ: frameAck, id: f.id, ver: f.lastAcked}); err != nil {
			return nil, err
		}
	}
	select {
	case d := <-f.w.ch:
		fr := d.f
		switch fr.typ {
		case frameChunk:
			f.received++
			f.prevChunk = d.buf
			return fr.data, nil
		case frameEnd:
			// Snapshot complete; the stream stays registered for edits.
			return nil, io.EOF
		case frameStreamErr:
			f.conn.unregister(f.id)
			return nil, fmt.Errorf("transport: subscription failed: %s", fr.str)
		default:
			return nil, fmt.Errorf("transport: unexpected frame type %d in snapshot", fr.typ)
		}
	case <-f.conn.done:
		return nil, f.conn.sessionErr()
	}
}

func (f *tcpEditFeed) NextEdit(ctx context.Context) (EditFrame, error) {
	if f.closed {
		return EditFrame{}, fmt.Errorf("transport: read from closed subscription")
	}
	f.conn.release(f.prevEdit)
	f.prevEdit = nil
	if f.owesEditAck {
		f.owesEditAck = false
		if err := f.conn.send(frame{typ: frameEditAck, id: f.id, ver: f.lastVer}); err != nil {
			return EditFrame{}, err
		}
	}
	select {
	case d := <-f.w.ch:
		fr := d.f
		switch fr.typ {
		case frameEdit:
			f.owesEditAck = true
			f.lastVer = fr.ver
			f.prevEdit = d.buf
			return EditFrame{Version: fr.ver, Op: fr.flag, Addr: fr.addr, Doc: fr.data}, nil
		case frameStreamErr:
			f.conn.unregister(f.id)
			return EditFrame{}, fmt.Errorf("transport: subscription failed: %s", fr.str)
		default:
			return EditFrame{}, fmt.Errorf("transport: unexpected frame type %d in edit stream", fr.typ)
		}
	case <-ctx.Done():
		return EditFrame{}, ctx.Err()
	case <-f.conn.done:
		return EditFrame{}, f.conn.sessionErr()
	}
}

func (f *tcpEditFeed) SendVerdict(version uint64, valid bool) error {
	v := byte(0)
	if valid {
		v = 1
	}
	return f.conn.send(frame{typ: frameVerdictUpdate, id: f.id, ver: version, flag: v})
}

// Close unsubscribes: the reject frame halts the host's edit sender.
func (f *tcpEditFeed) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	f.conn.unregister(f.id)
	return f.conn.send(frame{typ: frameReject, id: f.id, str: "unsubscribed"})
}

// Close tears the session down; in-flight operations fail.
func (c *Conn) Close() error {
	err := c.c.Close()
	<-c.done // wait for the read loop so no dispatch races the caller
	return err
}

// tcpFragment is the receiver side of one TCP fragment stream.
type tcpFragment struct {
	conn      *Conn
	id        uint32
	w         *waiter
	fn        string
	size      int
	opened    int64   // spanClock at open, for the chunks span
	bytes     int64   // payload bytes received so far
	received  uint64  // chunks picked up so far
	lastAcked uint64  // cumulative count in the last ack sent
	prev      *[]byte // pooled buffer behind the last returned chunk
	aborted   bool
}

func (f *tcpFragment) Size() int { return f.size }

// Next acknowledges every chunk consumed so far — a cumulative count
// that replenishes the sender's credits — and waits for the next one.
// Acking on the *next* call, not on receipt, is what keeps rejection
// prompt: a receiver that rejects after chunk k has never acked it, so
// the sender holds at most window-1 further chunks of credit and
// serializes nothing past that. With a window of 1 this is exactly the
// stop-and-wait wire: one ack per chunk, sender parked in between.
func (f *tcpFragment) Next() ([]byte, error) {
	if f.aborted {
		return nil, fmt.Errorf("transport: read from aborted stream")
	}
	f.conn.release(f.prev)
	f.prev = nil
	if f.received > f.lastAcked {
		f.lastAcked = f.received
		if err := f.conn.send(frame{typ: frameAck, id: f.id, ver: f.lastAcked}); err != nil {
			return nil, err
		}
	}
	select {
	case d := <-f.w.ch:
		fr := d.f
		switch fr.typ {
		case frameChunk:
			f.received++
			f.bytes += int64(len(fr.data))
			f.prev = d.buf
			return fr.data, nil
		case frameEnd:
			f.conn.unregister(f.id)
			f.conn.obs.Span(obs.Span{
				Trace: f.conn.trace, Name: "chunks", Frag: f.fn,
				Start: f.opened, End: spanClock(f.conn.obs),
				Bytes: f.bytes, N: int64(f.received),
			})
			return nil, io.EOF
		case frameStreamErr:
			f.conn.unregister(f.id)
			return nil, fmt.Errorf("transport: stream failed: %s", fr.str)
		default:
			return nil, fmt.Errorf("transport: unexpected frame type %d mid-stream", fr.typ)
		}
	case <-f.conn.done:
		return nil, f.conn.sessionErr()
	}
}

// DuplicateAck re-sends the last cumulative ack, verbatim. It exists
// for fault injection: a duplicated ack must never grant the sender
// extra credit, and re-sending the same cumulative count is the exact
// wire event a retransmitting network would produce.
func (f *tcpFragment) DuplicateAck() error {
	if f.aborted {
		return fmt.Errorf("transport: ack on aborted stream")
	}
	return f.conn.send(frame{typ: frameAck, id: f.id, ver: f.lastAcked})
}

// Abort rejects the transfer: the reject frame halts the sender, and
// the stream's remaining frames (at most an in-flight End) are dropped.
func (f *tcpFragment) Abort() {
	if f.aborted {
		return
	}
	f.aborted = true
	f.conn.unregister(f.id)
	f.conn.obs.Span(obs.Span{
		Trace: f.conn.trace, Name: "chunks", Frag: f.fn,
		Start: f.opened, End: spanClock(f.conn.obs),
		Bytes: f.bytes, N: int64(f.received), Err: "aborted",
	})
	f.conn.send(frame{typ: frameReject, id: f.id, str: "rejected by receiver"})
}
