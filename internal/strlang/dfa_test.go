package strlang

import (
	"math/rand"
	"testing"
)

func TestDFABasics(t *testing.T) {
	d := NewDFA()
	q1 := d.AddState(true)
	d.SetTransition(0, "a", q1)
	d.SetTransition(q1, "b", 0)
	if d.NumStates() != 2 || d.Start() != 0 {
		t.Fatal("construction wrong")
	}
	cases := []struct {
		w    string
		want bool
	}{{"a", true}, {"", false}, {"ab", false}, {"aba", true}, {"b", false}}
	for _, c := range cases {
		if got := d.Accepts(str(c.w)); got != c.want {
			t.Errorf("Accepts(%q) = %v", c.w, got)
		}
	}
	if _, ok := d.Next(0, "z"); ok {
		t.Error("missing transition should be undefined")
	}
	alpha := d.Alphabet()
	if len(alpha) != 2 {
		t.Errorf("Alphabet = %v", alpha)
	}
}

func TestDFACloneIndependent(t *testing.T) {
	d := NewDFA()
	q1 := d.AddState(true)
	d.SetTransition(0, "a", q1)
	c := d.Clone()
	c.SetTransition(0, "b", q1)
	if _, ok := d.Next(0, "b"); ok {
		t.Error("Clone is shallow")
	}
}

func TestDFATrim(t *testing.T) {
	d := NewDFA()
	q1 := d.AddState(true)
	dead := d.AddState(false) // reachable but not co-reachable
	unreach := d.AddState(true)
	d.SetTransition(0, "a", q1)
	d.SetTransition(0, "x", dead)
	d.SetTransition(unreach, "a", q1)
	trimmed := d.Trim()
	if trimmed.NumStates() != 2 {
		t.Errorf("Trim kept %d states, want 2", trimmed.NumStates())
	}
	if !trimmed.Accepts(str("a")) || trimmed.Accepts(str("x")) {
		t.Error("Trim changed language")
	}
}

func TestDFACompleteTotal(t *testing.T) {
	d := NewDFA()
	q1 := d.AddState(true)
	d.SetTransition(0, "a", q1)
	total := d.Complete([]Symbol{"a", "b"})
	for q := 0; q < total.NumStates(); q++ {
		for _, s := range []Symbol{"a", "b"} {
			if _, ok := total.Next(q, s); !ok {
				t.Fatalf("Complete left δ(%d,%s) undefined", q, s)
			}
		}
	}
	if ok, w := Equivalent(d.NFA(), total.NFA()); !ok {
		t.Errorf("Complete changed language on %v", w)
	}
}

func TestMinimizeKnownSizes(t *testing.T) {
	// Classic: the NFA for (a|b)*a(a|b)^k needs 2^(k+1) DFA states.
	for k := 1; k <= 3; k++ {
		re := "(a|b)* a"
		for i := 0; i < k; i++ {
			re += " (a|b)"
		}
		m := RegexNFA(MustParseRegex(re)).Determinize().Minimize()
		want := 1 << (k + 1)
		if m.NumStates() != want {
			t.Errorf("k=%d: minimal DFA has %d states, want %d", k, m.NumStates(), want)
		}
	}
}

func TestMinimizeStability(t *testing.T) {
	// Minimization of equivalent regexes yields the same automaton size.
	pairs := [][2]string{
		{"a a* b", "a+ b"},
		{"(a|b)*", "(b* a*)*"},
		{"a (b a)*", "(a b)* a"},
	}
	for _, p := range pairs {
		m1 := RegexNFA(MustParseRegex(p[0])).Determinize().Minimize()
		m2 := RegexNFA(MustParseRegex(p[1])).Determinize().Minimize()
		if m1.NumStates() != m2.NumStates() {
			t.Errorf("%q vs %q: %d vs %d states", p[0], p[1], m1.NumStates(), m2.NumStates())
		}
	}
}

func TestDFAMembershipAgreesWithNFA(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 150; trial++ {
		re := randomRegex(r, 3)
		nfa := RegexNFA(re)
		dfa := nfa.Determinize().Minimize()
		for k := 0; k < 10; k++ {
			n := r.Intn(5)
			w := make([]Symbol, n)
			for i := range w {
				w[i] = string(rune('a' + r.Intn(3)))
			}
			if nfa.Accepts(w) != dfa.Accepts(w) {
				t.Fatalf("%s on %v: NFA and DFA disagree", RegexString(re), w)
			}
		}
	}
}

func TestComplementTwiceIsIdentity(t *testing.T) {
	alpha := []Symbol{"a", "b"}
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		re := randomRegexOver(r, 2, alpha)
		a := RegexNFA(re)
		cc := Complement(Complement(a, alpha), alpha)
		if ok, w := Equivalent(a, cc); !ok {
			t.Fatalf("double complement of %s wrong on %v", RegexString(re), w)
		}
	}
}

func randomRegexOver(r *rand.Rand, depth int, alpha []Symbol) Regex {
	if depth <= 0 {
		if r.Intn(4) == 0 {
			return REps{}
		}
		return Sym(alpha[r.Intn(len(alpha))])
	}
	switch r.Intn(5) {
	case 0:
		return Cat(randomRegexOver(r, depth-1, alpha), randomRegexOver(r, depth-1, alpha))
	case 1:
		return Alt(randomRegexOver(r, depth-1, alpha), randomRegexOver(r, depth-1, alpha))
	case 2:
		return StarR(randomRegexOver(r, depth-1, alpha))
	case 3:
		return OptR(randomRegexOver(r, depth-1, alpha))
	default:
		return randomRegexOver(r, depth-1, alpha)
	}
}

func TestIntSet(t *testing.T) {
	s := NewIntSet(3, 1, 2)
	if s.Len() != 3 || !s.Has(2) || s.Has(5) {
		t.Fatal("basic ops wrong")
	}
	u := NewIntSet(2, 4)
	if !s.Intersects(u) || s.Intersect(u).Len() != 1 {
		t.Error("intersection wrong")
	}
	if s.SubsetOf(u) || !NewIntSet(1).SubsetOf(s) {
		t.Error("subset wrong")
	}
	if s.Key() != NewIntSet(1, 2, 3).Key() || s.Key() == u.Key() {
		t.Errorf("Key not canonical: %q vs %q", s.Key(), u.Key())
	}
	c := s.Copy()
	c.Add(9)
	if s.Has(9) {
		t.Error("Copy is shallow")
	}
	if !s.Equal(NewIntSet(1, 2, 3)) || s.Equal(u) {
		t.Error("Equal wrong")
	}
	s.AddAll(u)
	if s.Len() != 4 {
		t.Error("AddAll wrong")
	}
}

func TestDisplayRegex(t *testing.T) {
	// One-unambiguous language → deterministic rendering.
	a := RegexNFA(MustParseRegex("a | a b")) // = a b?
	out := DisplayRegex(a)
	re := MustParseRegex(out)
	if det, _ := RegexDeterministic(re); !det {
		t.Errorf("DisplayRegex(%q) is not deterministic", out)
	}
	if ok, _ := Equivalent(RegexNFA(re), a); !ok {
		t.Errorf("DisplayRegex changed language: %q", out)
	}
	// Non-one-unambiguous language → falls back to state elimination.
	b := RegexNFA(MustParseRegex("(a|b)* a (a|b)"))
	out = DisplayRegex(b)
	if ok, _ := Equivalent(RegexNFA(MustParseRegex(out)), b); !ok {
		t.Errorf("fallback rendering wrong: %q", out)
	}
}
