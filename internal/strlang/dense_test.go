package strlang

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// This file differentially tests the dense, interned automaton kernel
// against a deliberately naive "legacy" implementation: string-keyed
// transition maps, map[int]struct{} state sets with comma-joined keys, and
// string-signature Moore refinement — the representation the kernel
// replaced. On randomly generated NFAs (in the style of the generators in
// internal/core/fuzz_test.go) both pipelines must define exactly the same
// language and the same minimal-DFA size.

// legacyDFA is a partial DFA in the old map representation.
type legacyDFA struct {
	start int
	final []bool
	trans []map[Symbol]int
}

func (d *legacyDFA) accepts(w []Symbol) bool {
	q := d.start
	for _, s := range w {
		t, ok := d.trans[q][s]
		if !ok {
			return false
		}
		q = t
	}
	return d.final[q]
}

// legacyClosure is the ε-closure computed with map sets.
func legacyClosure(a *NFA, states map[int]struct{}) map[int]struct{} {
	out := map[int]struct{}{}
	var stack []int
	for q := range states {
		out[q] = struct{}{}
		stack = append(stack, q)
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range a.EpsSucc(q) {
			if _, ok := out[int(t)]; !ok {
				out[int(t)] = struct{}{}
				stack = append(stack, int(t))
			}
		}
	}
	return out
}

func legacyKey(s map[int]struct{}) string {
	elems := make([]int, 0, len(s))
	for e := range s {
		elems = append(elems, e)
	}
	sort.Ints(elems)
	var b strings.Builder
	for i, e := range elems {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(e))
	}
	return b.String()
}

// legacyDeterminize is the subset construction in the old representation,
// driven entirely through the NFA's public readers.
func legacyDeterminize(a *NFA) *legacyDFA {
	alphabet := a.Alphabet()
	step := func(cur map[int]struct{}, sym Symbol) map[int]struct{} {
		next := map[int]struct{}{}
		for q := range cur {
			for _, t := range a.Succ(q, sym) {
				next[int(t)] = struct{}{}
			}
		}
		return legacyClosure(a, next)
	}
	isFinal := func(s map[int]struct{}) bool {
		for q := range s {
			if a.IsFinal(q) {
				return true
			}
		}
		return false
	}
	d := &legacyDFA{}
	ids := map[string]int{}
	var sets []map[int]struct{}
	newState := func(s map[int]struct{}) int {
		id := len(sets)
		sets = append(sets, s)
		ids[legacyKey(s)] = id
		d.final = append(d.final, isFinal(s))
		d.trans = append(d.trans, map[Symbol]int{})
		return id
	}
	d.start = newState(legacyClosure(a, map[int]struct{}{a.Start(): {}}))
	for i := 0; i < len(sets); i++ {
		for _, sym := range alphabet {
			next := step(sets[i], sym)
			if len(next) == 0 {
				continue
			}
			id, ok := ids[legacyKey(next)]
			if !ok {
				id = newState(next)
			}
			d.trans[i][sym] = id
		}
	}
	return d
}

// legacyMinimizedSize runs string-signature Moore refinement on the legacy
// DFA and returns the number of distinct classes among reachable, useful
// states — the minimal partial DFA size to compare against Minimize().
func legacyMinimizedSize(d *legacyDFA, alphabet []Symbol) int {
	n := len(d.final)
	// Usefulness: reachable ∧ co-reachable (the legacy subset construction
	// only creates reachable states; co-reachability needs a backward pass).
	rev := make([][]int, n)
	for q, m := range d.trans {
		for _, t := range m {
			rev[t] = append(rev[t], q)
		}
	}
	useful := map[int]bool{}
	var stack []int
	for q := 0; q < n; q++ {
		if d.final[q] {
			useful[q] = true
			stack = append(stack, q)
		}
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[q] {
			if !useful[p] {
				useful[p] = true
				stack = append(stack, p)
			}
		}
	}
	if len(useful) == 0 {
		// Empty language: the minimal trimmed partial DFA is the bare
		// start state.
		return 1
	}
	class := make(map[int]string, n)
	for q := range useful {
		if d.final[q] {
			class[q] = "F"
		} else {
			class[q] = "N"
		}
	}
	for {
		next := make(map[int]string, n)
		for q := range useful {
			var b strings.Builder
			b.WriteString(class[q])
			for _, sym := range alphabet {
				b.WriteByte('|')
				if t, ok := d.trans[q][sym]; ok && useful[t] {
					b.WriteString(class[t])
				} else {
					b.WriteByte('-')
				}
			}
			next[q] = b.String()
		}
		if eq := func() bool {
			part := map[string]string{}
			for q := range useful {
				if prev, ok := part[next[q]]; ok {
					if prev != class[q] {
						return false
					}
				} else {
					part[next[q]] = class[q]
				}
			}
			back := map[string]string{}
			for q := range useful {
				if prev, ok := back[class[q]]; ok {
					if prev != next[q] {
						return false
					}
				} else {
					back[class[q]] = next[q]
				}
			}
			return true
		}(); eq {
			break
		}
		class = next
	}
	distinct := map[string]bool{}
	for q := range useful {
		distinct[class[q]] = true
	}
	return len(distinct)
}

// randomNFA generates a random NFA over a small alphabet with ε-edges,
// mirroring the random-design generators of internal/core/fuzz_test.go at
// the automaton level.
func randomNFA(r *rand.Rand) *NFA {
	alphabet := []Symbol{"a", "b", "c"}
	a := NewNFA()
	n := 1 + r.Intn(7)
	for i := 1; i < n; i++ {
		a.AddState()
	}
	edges := r.Intn(3 * n)
	for i := 0; i < edges; i++ {
		a.AddTransition(r.Intn(n), alphabet[r.Intn(len(alphabet))], r.Intn(n))
	}
	epsEdges := r.Intn(n)
	for i := 0; i < epsEdges; i++ {
		from, to := r.Intn(n), r.Intn(n)
		if from != to {
			a.AddEps(from, to)
		}
	}
	finals := 1 + r.Intn(n)
	for i := 0; i < finals; i++ {
		a.MarkFinal(r.Intn(n))
	}
	return a
}

// randomWord draws a word of length ≤ 6 over {a,b,c}.
func randomWord(r *rand.Rand) []Symbol {
	alphabet := []Symbol{"a", "b", "c"}
	w := make([]Symbol, r.Intn(7))
	for i := range w {
		w[i] = alphabet[r.Intn(len(alphabet))]
	}
	return w
}

func TestDenseDeterminizeMatchesLegacy(t *testing.T) {
	r := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 300; trial++ {
		a := randomNFA(r)
		label := fmt.Sprintf("trial %d:\n%s", trial, a)

		legacy := legacyDeterminize(a)
		dense := a.Determinize()
		minimal := dense.Minimize()

		// The three DFAs and the NFA must define the same language.
		for i := 0; i < 60; i++ {
			w := randomWord(r)
			want := a.Accepts(w)
			if got := legacy.accepts(w); got != want {
				t.Fatalf("%s\nlegacy accepts %v = %v, NFA says %v", label, w, got, want)
			}
			if got := dense.Accepts(w); got != want {
				t.Fatalf("%s\ndense accepts %v = %v, NFA says %v", label, w, got, want)
			}
			if got := minimal.Accepts(w); got != want {
				t.Fatalf("%s\nminimal accepts %v = %v, NFA says %v", label, w, got, want)
			}
		}
		// Exhaustive equivalence via the decision procedure.
		if ok, w := Equivalent(minimal.NFA(), a); !ok {
			t.Fatalf("%s\nMinimize changed the language, witness %v", label, w)
		}
		// Both minimization pipelines must land on the same state count.
		wantStates := legacyMinimizedSize(legacy, a.Alphabet())
		if minimal.NumStates() != wantStates {
			t.Fatalf("%s\nMinimize has %d states, legacy Moore says %d",
				label, minimal.NumStates(), wantStates)
		}
		// Subset-construction state counts agree too (same reachable
		// subsets, both omitting the empty set).
		if dense.NumStates() != len(legacy.final) {
			t.Fatalf("%s\ndense Determinize has %d states, legacy %d",
				label, dense.NumStates(), len(legacy.final))
		}
	}
}
