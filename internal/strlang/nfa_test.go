package strlang

import (
	"strings"
	"testing"
)

// mustLang parses a regex and returns its Glushkov NFA.
func mustLang(t testing.TB, src string) *NFA {
	t.Helper()
	r, err := ParseRegex(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return RegexNFA(r)
}

func str(w string) []Symbol {
	if w == "" {
		return nil
	}
	parts := strings.Split(w, "")
	return parts
}

func TestNFABasics(t *testing.T) {
	a := NewNFA()
	q1 := a.AddState()
	q2 := a.AddState()
	a.AddTransition(a.Start(), "a", q1)
	a.AddTransition(q1, "b", q2)
	a.AddEps(q1, q2)
	a.MarkFinal(q2)

	cases := []struct {
		w    string
		want bool
	}{
		{"", false},
		{"a", true}, // via ε after a
		{"ab", true},
		{"b", false},
		{"abb", false},
	}
	for _, c := range cases {
		if got := a.Accepts(str(c.w)); got != c.want {
			t.Errorf("Accepts(%q) = %v, want %v", c.w, got, c.want)
		}
	}
	if got := a.NumStates(); got != 3 {
		t.Errorf("NumStates = %d, want 3", got)
	}
	alpha := a.Alphabet()
	if len(alpha) != 2 || alpha[0] != "a" || alpha[1] != "b" {
		t.Errorf("Alphabet = %v", alpha)
	}
}

func TestNFAEmptyAndEps(t *testing.T) {
	if !EmptyLang().IsEmpty() {
		t.Error("EmptyLang not empty")
	}
	if EpsLang().IsEmpty() {
		t.Error("EpsLang empty")
	}
	if !EpsLang().AcceptsEps() {
		t.Error("EpsLang rejects ε")
	}
	if EpsLang().Accepts(str("a")) {
		t.Error("EpsLang accepts a")
	}
}

func TestTrimKeepsLanguage(t *testing.T) {
	a := mustLang(t, "a b* | c")
	// Add junk states.
	junk := a.AddState()
	a.AddTransition(junk, "z", junk)
	trimmed, _ := a.Trim()
	if ok, w := Equivalent(a, trimmed); !ok {
		t.Fatalf("trim changed language, witness %v", w)
	}
	if trimmed.NumStates() >= a.NumStates() {
		t.Errorf("trim did not remove junk: %d >= %d", trimmed.NumStates(), a.NumStates())
	}
}

func TestWithoutEps(t *testing.T) {
	a := NewNFA()
	q1 := a.AddState()
	q2 := a.AddState()
	a.AddEps(a.Start(), q1)
	a.AddTransition(q1, "a", q2)
	a.AddEps(q2, q1)
	a.MarkFinal(q2)
	b := a.WithoutEps()
	for q := 0; q < b.NumStates(); q++ {
		if len(b.eps[q]) != 0 {
			t.Fatalf("state %d still has ε-transitions", q)
		}
	}
	if ok, w := Equivalent(a, b); !ok {
		t.Fatalf("WithoutEps changed language, witness %v", w)
	}
}

func TestDeterminizeAndMinimize(t *testing.T) {
	cases := []struct {
		re      string
		minSize int // states of the minimal DFA
	}{
		{"a*", 1},
		{"(a b)*", 2},
		{"a | b", 2},
		{"(a|b)* a (a|b)", 4},
		{"a b c", 4},
	}
	for _, c := range cases {
		a := mustLang(t, c.re)
		d := a.Determinize()
		if ok, w := Equivalent(a, d.NFA()); !ok {
			t.Errorf("%s: determinize changed language, witness %v", c.re, w)
		}
		m := d.Minimize()
		if ok, w := Equivalent(a, m.NFA()); !ok {
			t.Errorf("%s: minimize changed language, witness %v", c.re, w)
		}
		if m.NumStates() != c.minSize {
			t.Errorf("%s: minimal DFA has %d states, want %d", c.re, m.NumStates(), c.minSize)
		}
	}
}

func TestMinimizeEmpty(t *testing.T) {
	m := EmptyLang().Determinize().Minimize()
	if !m.NFA().IsEmpty() {
		t.Error("minimized empty language is nonempty")
	}
}

func TestDFAComplement(t *testing.T) {
	a := mustLang(t, "a (a|b)*") // strings starting with a
	alpha := []Symbol{"a", "b"}
	c := Complement(a, alpha)
	for _, w := range [][]Symbol{nil, str("a"), str("b"), str("ab"), str("ba"), str("bb")} {
		inA := a.Accepts(w)
		inC := c.Accepts(w)
		if inA == inC {
			t.Errorf("complement wrong on %v: a=%v c=%v", w, inA, inC)
		}
	}
}

func TestEnumerate(t *testing.T) {
	a := mustLang(t, "a b* c")
	got := Enumerate(a, 4, 10)
	want := []string{"ac", "abc", "abbc"}
	if len(got) != len(want) {
		t.Fatalf("Enumerate returned %d strings, want %d: %v", len(got), len(want), got)
	}
	for i, w := range want {
		if strings.Join(got[i], "") != w {
			t.Errorf("Enumerate[%d] = %v, want %s", i, got[i], w)
		}
	}
}

func TestSize(t *testing.T) {
	a := mustLang(t, "a b")
	if a.Size() <= a.NumStates() {
		t.Errorf("Size = %d should exceed state count %d", a.Size(), a.NumStates())
	}
}
