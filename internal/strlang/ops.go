package strlang

// EmptyLang returns an NFA for the empty language ∅.
func EmptyLang() *NFA { return NewNFA() }

// EpsLang returns an NFA for {ε}.
func EpsLang() *NFA {
	a := NewNFA()
	a.MarkFinal(a.Start())
	return a
}

// SymbolLang returns an NFA for the single-symbol language {s}.
func SymbolLang(s Symbol) *NFA {
	a := NewNFA()
	f := a.AddState()
	a.AddTransition(a.Start(), s, f)
	a.MarkFinal(f)
	return a
}

// WordLang returns an NFA accepting exactly the string w.
func WordLang(w []Symbol) *NFA {
	a := NewNFA()
	cur := a.Start()
	for _, s := range w {
		next := a.AddState()
		a.AddTransition(cur, s, next)
		cur = next
	}
	a.MarkFinal(cur)
	return a
}

// SetLang returns an NFA for the length-1 language consisting of the given
// symbols (a width-1 box, §2.1.2).
func SetLang(symbols []Symbol) *NFA {
	a := NewNFA()
	f := a.AddState()
	for _, s := range symbols {
		a.AddTransition(a.Start(), s, f)
	}
	a.MarkFinal(f)
	return a
}

// UniversalLang returns an NFA for Σ* over the given alphabet.
func UniversalLang(alphabet []Symbol) *NFA {
	a := NewNFA()
	a.MarkFinal(a.Start())
	for _, s := range alphabet {
		a.AddTransition(a.Start(), s, a.Start())
	}
	return a
}

// Union returns an NFA for [a] ∪ [b].
func Union(a, b *NFA) *NFA {
	out := NewNFA()
	oa := out.Graft(a)
	ob := out.Graft(b)
	out.AddEps(out.Start(), oa+a.Start())
	out.AddEps(out.Start(), ob+b.Start())
	for q := range a.final.All() {
		out.MarkFinal(oa + q)
	}
	for q := range b.final.All() {
		out.MarkFinal(ob + q)
	}
	return out
}

// UnionAll returns an NFA for the union of all the given languages
// (∅ for an empty list).
func UnionAll(as ...*NFA) *NFA {
	out := NewNFA()
	for _, a := range as {
		off := out.Graft(a)
		out.AddEps(out.Start(), off+a.Start())
		for q := range a.final.All() {
			out.MarkFinal(off + q)
		}
	}
	return out
}

// Concat returns an NFA for [a] ◦ [b].
func Concat(a, b *NFA) *NFA {
	out := NewNFA()
	oa := out.Graft(a)
	ob := out.Graft(b)
	out.AddEps(out.Start(), oa+a.Start())
	for q := range a.final.All() {
		out.AddEps(oa+q, ob+b.Start())
	}
	for q := range b.final.All() {
		out.MarkFinal(ob + q)
	}
	return out
}

// ConcatAll returns an NFA for the concatenation of all given languages in
// order ({ε} for an empty list).
func ConcatAll(as ...*NFA) *NFA {
	if len(as) == 0 {
		return EpsLang()
	}
	out := as[0]
	for _, a := range as[1:] {
		out = Concat(out, a)
	}
	return out
}

// Star returns an NFA for [a]*.
func Star(a *NFA) *NFA {
	out := NewNFA()
	oa := out.Graft(a)
	out.MarkFinal(out.Start())
	out.AddEps(out.Start(), oa+a.Start())
	for q := range a.final.All() {
		out.AddEps(oa+q, out.Start())
	}
	return out
}

// Plus returns an NFA for [a]+.
func Plus(a *NFA) *NFA { return Concat(a, Star(a)) }

// Opt returns an NFA for [a] ∪ {ε}.
func Opt(a *NFA) *NFA {
	out := a.Clone()
	// A fresh final start state with ε to the old start preserves [a] and
	// adds ε.
	s := out.AddState()
	out.AddEps(s, out.Start())
	out.SetStart(s)
	out.MarkFinal(s)
	return out
}

// Intersect returns an NFA for [a] ∩ [b] (lazy product construction over
// interned symbol ids).
func Intersect(a, b *NFA) *NFA {
	ea, eb := a.WithoutEps(), b.WithoutEps()
	out := NewNFA()
	type pair struct{ p, q int }
	ids := map[pair]int{}
	var order []pair
	getID := func(pq pair) int {
		if id, ok := ids[pq]; ok {
			return id
		}
		var id int
		if len(ids) == 0 {
			id = out.Start()
		} else {
			id = out.AddState()
		}
		ids[pq] = id
		order = append(order, pq)
		if ea.IsFinal(pq.p) && eb.IsFinal(pq.q) {
			out.MarkFinal(id)
		}
		return id
	}
	getID(pair{ea.Start(), eb.Start()})
	for i := 0; i < len(order); i++ {
		pq := order[i]
		from := ids[pq]
		row := &ea.trans[pq.p]
		for si, sid := range row.syms {
			ts := row.ts[si]
			us := eb.SuccID(pq.q, sid)
			if len(us) == 0 {
				continue
			}
			for _, t := range ts {
				for _, u := range us {
					out.AddTransitionID(from, sid, getID(pair{int(t), int(u)}))
				}
			}
		}
	}
	return out
}

// IntersectAll returns the intersection of all given languages; it panics
// on an empty list (no universal alphabet is available).
func IntersectAll(as ...*NFA) *NFA {
	if len(as) == 0 {
		panic("strlang: IntersectAll of no languages")
	}
	out := as[0]
	for _, a := range as[1:] {
		out = Intersect(out, a)
	}
	return out
}

// Complement returns an NFA for Σ* − [a] where Σ is the given alphabet
// (which must contain a's symbols).
func Complement(a *NFA, alphabet []Symbol) *NFA {
	return a.Determinize().Complement(alphabet).NFA()
}

// Difference returns an NFA for [a] − [b]. The complement of b is taken
// over the union of both alphabets.
func Difference(a, b *NFA) *NFA {
	alpha := unionAlphabet(a, b)
	return Intersect(a, Complement(b, alpha))
}

func unionAlphabet(as ...*NFA) []Symbol {
	ids := collectAlphabet(func(yield func(int32)) {
		for _, a := range as {
			for _, sid := range a.AlphabetIDs() {
				yield(sid)
			}
		}
	})
	out := make([]Symbol, len(ids))
	for i, id := range ids {
		out[i] = SymbolName(id)
	}
	return out
}

// UnionAlphabet returns the sorted union of the alphabets of the given
// automata.
func UnionAlphabet(as ...*NFA) []Symbol { return unionAlphabet(as...) }

// UnionAlphabetIDs returns the union of the given automata's alphabets as
// interned symbol ids, sorted by symbol name.
func UnionAlphabetIDs(as ...*NFA) []int32 {
	return collectAlphabet(func(yield func(int32)) {
		for _, a := range as {
			for _, sid := range a.AlphabetIDs() {
				yield(sid)
			}
		}
	})
}
