package strlang

import "sort"

// EmptyLang returns an NFA for the empty language ∅.
func EmptyLang() *NFA { return NewNFA() }

// EpsLang returns an NFA for {ε}.
func EpsLang() *NFA {
	a := NewNFA()
	a.MarkFinal(a.Start())
	return a
}

// SymbolLang returns an NFA for the single-symbol language {s}.
func SymbolLang(s Symbol) *NFA {
	a := NewNFA()
	f := a.AddState()
	a.AddTransition(a.Start(), s, f)
	a.MarkFinal(f)
	return a
}

// WordLang returns an NFA accepting exactly the string w.
func WordLang(w []Symbol) *NFA {
	a := NewNFA()
	cur := a.Start()
	for _, s := range w {
		next := a.AddState()
		a.AddTransition(cur, s, next)
		cur = next
	}
	a.MarkFinal(cur)
	return a
}

// SetLang returns an NFA for the length-1 language consisting of the given
// symbols (a width-1 box, §2.1.2).
func SetLang(symbols []Symbol) *NFA {
	a := NewNFA()
	f := a.AddState()
	for _, s := range symbols {
		a.AddTransition(a.Start(), s, f)
	}
	a.MarkFinal(f)
	return a
}

// UniversalLang returns an NFA for Σ* over the given alphabet.
func UniversalLang(alphabet []Symbol) *NFA {
	a := NewNFA()
	a.MarkFinal(a.Start())
	for _, s := range alphabet {
		a.AddTransition(a.Start(), s, a.Start())
	}
	return a
}

// copyInto copies src's states into dst, returning the state offset.
func copyInto(dst, src *NFA) int {
	off := dst.NumStates()
	for q := 0; q < src.NumStates(); q++ {
		dst.AddState()
	}
	for q := 0; q < src.NumStates(); q++ {
		for s, ts := range src.trans[q] {
			for _, t := range ts {
				dst.AddTransition(off+q, s, off+t)
			}
		}
		for _, t := range src.eps[q] {
			dst.AddEps(off+q, off+t)
		}
	}
	return off
}

// Union returns an NFA for [a] ∪ [b].
func Union(a, b *NFA) *NFA {
	out := NewNFA()
	oa := copyInto(out, a)
	ob := copyInto(out, b)
	out.AddEps(out.Start(), oa+a.Start())
	out.AddEps(out.Start(), ob+b.Start())
	for q := range a.final {
		out.MarkFinal(oa + q)
	}
	for q := range b.final {
		out.MarkFinal(ob + q)
	}
	return out
}

// UnionAll returns an NFA for the union of all the given languages
// (∅ for an empty list).
func UnionAll(as ...*NFA) *NFA {
	out := NewNFA()
	for _, a := range as {
		off := copyInto(out, a)
		out.AddEps(out.Start(), off+a.Start())
		for q := range a.final {
			out.MarkFinal(off + q)
		}
	}
	return out
}

// Concat returns an NFA for [a] ◦ [b].
func Concat(a, b *NFA) *NFA {
	out := NewNFA()
	oa := copyInto(out, a)
	ob := copyInto(out, b)
	out.AddEps(out.Start(), oa+a.Start())
	for q := range a.final {
		out.AddEps(oa+q, ob+b.Start())
	}
	for q := range b.final {
		out.MarkFinal(ob + q)
	}
	return out
}

// ConcatAll returns an NFA for the concatenation of all given languages in
// order ({ε} for an empty list).
func ConcatAll(as ...*NFA) *NFA {
	if len(as) == 0 {
		return EpsLang()
	}
	out := as[0]
	for _, a := range as[1:] {
		out = Concat(out, a)
	}
	return out
}

// Star returns an NFA for [a]*.
func Star(a *NFA) *NFA {
	out := NewNFA()
	oa := copyInto(out, a)
	out.MarkFinal(out.Start())
	out.AddEps(out.Start(), oa+a.Start())
	for q := range a.final {
		out.AddEps(oa+q, out.Start())
	}
	return out
}

// Plus returns an NFA for [a]+.
func Plus(a *NFA) *NFA { return Concat(a, Star(a)) }

// Opt returns an NFA for [a] ∪ {ε}.
func Opt(a *NFA) *NFA {
	out := a.Clone()
	// A fresh final start state with ε to the old start preserves [a] and
	// adds ε.
	s := out.AddState()
	out.AddEps(s, out.Start())
	out.SetStart(s)
	out.MarkFinal(s)
	return out
}

// Intersect returns an NFA for [a] ∩ [b] (lazy product construction).
func Intersect(a, b *NFA) *NFA {
	ea, eb := a.WithoutEps(), b.WithoutEps()
	out := NewNFA()
	type pair struct{ p, q int }
	ids := map[pair]int{}
	var order []pair
	getID := func(pq pair) int {
		if id, ok := ids[pq]; ok {
			return id
		}
		var id int
		if len(ids) == 0 {
			id = out.Start()
		} else {
			id = out.AddState()
		}
		ids[pq] = id
		order = append(order, pq)
		if ea.IsFinal(pq.p) && eb.IsFinal(pq.q) {
			out.MarkFinal(id)
		}
		return id
	}
	getID(pair{ea.Start(), eb.Start()})
	for i := 0; i < len(order); i++ {
		pq := order[i]
		from := ids[pq]
		for s, ts := range ea.trans[pq.p] {
			us := eb.Succ(pq.q, s)
			if len(us) == 0 {
				continue
			}
			for _, t := range ts {
				for _, u := range us {
					out.AddTransition(from, s, getID(pair{t, u}))
				}
			}
		}
	}
	return out
}

// IntersectAll returns the intersection of all given languages; it panics
// on an empty list (no universal alphabet is available).
func IntersectAll(as ...*NFA) *NFA {
	if len(as) == 0 {
		panic("strlang: IntersectAll of no languages")
	}
	out := as[0]
	for _, a := range as[1:] {
		out = Intersect(out, a)
	}
	return out
}

// Complement returns an NFA for Σ* − [a] where Σ is the given alphabet
// (which must contain a's symbols).
func Complement(a *NFA, alphabet []Symbol) *NFA {
	return a.Determinize().Complement(alphabet).NFA()
}

// Difference returns an NFA for [a] − [b]. The complement of b is taken
// over the union of both alphabets.
func Difference(a, b *NFA) *NFA {
	alpha := unionAlphabet(a, b)
	return Intersect(a, Complement(b, alpha))
}

func unionAlphabet(as ...*NFA) []Symbol {
	set := map[Symbol]struct{}{}
	for _, a := range as {
		for _, s := range a.Alphabet() {
			set[s] = struct{}{}
		}
	}
	out := make([]Symbol, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// UnionAlphabet returns the sorted union of the alphabets of the given
// automata.
func UnionAlphabet(as ...*NFA) []Symbol { return unionAlphabet(as...) }
