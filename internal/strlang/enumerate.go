package strlang

// Enumerate returns up to max strings of [a] in shortlex order (length
// first, then lexicographic), considering only strings of length ≤ maxLen.
// It is used by tests, examples and the language-sampling utilities.
func Enumerate(a *NFA, maxLen, max int) [][]Symbol {
	var out [][]Symbol
	if max == 0 {
		return out
	}
	alphabet := a.AlphabetIDs()
	names := make([]Symbol, len(alphabet))
	for i, sid := range alphabet {
		names[i] = SymbolName(sid)
	}
	type node struct {
		set IntSet
		w   []Symbol
	}
	start := a.Closure(NewIntSet(a.Start()))
	queue := []node{{start, nil}}
	if start.Intersects(a.Finals()) {
		out = append(out, []Symbol{})
		if len(out) >= max {
			return out
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if len(cur.w) >= maxLen {
			continue
		}
		for si, sid := range alphabet {
			s := names[si]
			next := a.StepID(cur.set, sid)
			if next.Len() == 0 {
				continue
			}
			w := make([]Symbol, len(cur.w)+1)
			copy(w, cur.w)
			w[len(cur.w)] = s
			if next.Intersects(a.Finals()) {
				out = append(out, w)
				if len(out) >= max {
					return out
				}
			}
			queue = append(queue, node{next, w})
		}
	}
	return out
}

// SameUpTo reports whether a and b accept exactly the same strings of
// length ≤ maxLen. It is a testing aid (bounded equivalence), not a
// decision procedure.
func SameUpTo(a, b *NFA, maxLen int) bool {
	return boundedIncluded(a, b, maxLen) && boundedIncluded(b, a, maxLen)
}

func boundedIncluded(a, b *NFA, maxLen int) bool {
	for _, w := range Enumerate(a, maxLen, 1<<20) {
		if !b.Accepts(w) {
			return false
		}
	}
	return true
}
