package strlang

import "sync"

// Interner maps Symbols to dense int32 ids and back. Ids index the dense
// transition tables of NFA and DFA, so every automaton of one design
// problem must agree on them; the package therefore routes all automata
// through a single process-wide interner (ids are append-only and never
// reused, which keeps sharing trivially safe). The string Symbol stays the
// public currency at the dxml facade; ids are a representation detail of
// the automaton kernel and of the packages that thread through it.
type Interner struct {
	mu   sync.RWMutex
	ids  map[string]int32
	syms []string
}

// NewInterner returns an empty interner. Most code should use the
// package-level Intern/LookupSymID/SymbolName functions, which share the
// default interner; a private interner is only for isolated measurements.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]int32)}
}

// Intern returns the id of s, assigning the next dense id on first use.
func (in *Interner) Intern(s Symbol) int32 {
	in.mu.RLock()
	id, ok := in.ids[s]
	in.mu.RUnlock()
	if ok {
		return id
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.ids[s]; ok {
		return id
	}
	id = int32(len(in.syms))
	in.ids[s] = id
	in.syms = append(in.syms, s)
	return id
}

// Lookup returns the id of s without assigning one.
func (in *Interner) Lookup(s Symbol) (int32, bool) {
	in.mu.RLock()
	id, ok := in.ids[s]
	in.mu.RUnlock()
	return id, ok
}

// Name returns the symbol with the given id.
func (in *Interner) Name(id int32) Symbol {
	in.mu.RLock()
	s := in.syms[id]
	in.mu.RUnlock()
	return s
}

var defaultInterner = NewInterner()

// Intern returns the dense id of s in the shared interner, assigning one
// on first use.
func Intern(s Symbol) int32 { return defaultInterner.Intern(s) }

// LookupSymID returns the id of s if it has ever been interned.
func LookupSymID(s Symbol) (int32, bool) { return defaultInterner.Lookup(s) }

// SymbolName returns the Symbol for an interned id.
func SymbolName(id int32) Symbol { return defaultInterner.Name(id) }
