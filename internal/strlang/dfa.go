package strlang

import (
	"sort"
)

// DFA is a partial deterministic finite automaton: a missing transition
// rejects. States are 0..NumStates()-1.
type DFA struct {
	start int
	final []bool
	trans []map[Symbol]int
}

// NewDFA returns a DFA with a single non-final start state.
func NewDFA() *DFA {
	d := &DFA{}
	d.AddState(false)
	return d
}

// AddState adds a state and returns its id.
func (d *DFA) AddState(final bool) int {
	d.final = append(d.final, final)
	d.trans = append(d.trans, nil)
	return len(d.final) - 1
}

// NumStates returns the number of states.
func (d *DFA) NumStates() int { return len(d.final) }

// Start returns the start state.
func (d *DFA) Start() int { return d.start }

// SetStart makes q the start state.
func (d *DFA) SetStart(q int) { d.start = q }

// IsFinal reports whether q is final.
func (d *DFA) IsFinal(q int) bool { return d.final[q] }

// SetFinal sets the finality of q.
func (d *DFA) SetFinal(q int, f bool) { d.final[q] = f }

// SetTransition sets δ(from, sym) = to, overwriting any previous target.
func (d *DFA) SetTransition(from int, sym Symbol, to int) {
	if sym == "" {
		panic("strlang: empty symbol in DFA transition")
	}
	if d.trans[from] == nil {
		d.trans[from] = make(map[Symbol]int)
	}
	d.trans[from][sym] = to
}

// Next returns δ(q, sym) and whether it is defined.
func (d *DFA) Next(q int, sym Symbol) (int, bool) {
	if d.trans[q] == nil {
		return 0, false
	}
	t, ok := d.trans[q][sym]
	return t, ok
}

// Alphabet returns the sorted symbols appearing on transitions.
func (d *DFA) Alphabet() []Symbol {
	set := map[Symbol]struct{}{}
	for _, m := range d.trans {
		for s := range m {
			set[s] = struct{}{}
		}
	}
	out := make([]Symbol, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Accepts reports whether d accepts w.
func (d *DFA) Accepts(w []Symbol) bool {
	q := d.start
	for _, s := range w {
		t, ok := d.Next(q, s)
		if !ok {
			return false
		}
		q = t
	}
	return d.final[q]
}

// Clone returns a deep copy of d.
func (d *DFA) Clone() *DFA {
	b := &DFA{start: d.start}
	b.final = append([]bool(nil), d.final...)
	b.trans = make([]map[Symbol]int, len(d.trans))
	for q, m := range d.trans {
		if m == nil {
			continue
		}
		mm := make(map[Symbol]int, len(m))
		for s, t := range m {
			mm[s] = t
		}
		b.trans[q] = mm
	}
	return b
}

// NFA converts d to an equivalent NFA.
func (d *DFA) NFA() *NFA {
	a := &NFA{start: d.start, final: NewIntSet()}
	for q := 0; q < d.NumStates(); q++ {
		a.AddState()
		if d.final[q] {
			a.MarkFinal(q)
		}
	}
	for q, m := range d.trans {
		for s, t := range m {
			a.AddTransition(q, s, t)
		}
	}
	return a
}

// Determinize converts a to an equivalent partial DFA by the subset
// construction (the empty subset is not materialized).
func (a *NFA) Determinize() *DFA {
	d := &DFA{}
	alphabet := a.Alphabet()
	startSet := a.Closure(NewIntSet(a.start))
	ids := map[string]int{}
	var sets []IntSet
	newState := func(s IntSet) int {
		id := len(sets)
		sets = append(sets, s)
		ids[s.Key()] = id
		d.final = append(d.final, s.Intersects(a.final))
		d.trans = append(d.trans, nil)
		return id
	}
	d.start = newState(startSet)
	for i := 0; i < len(sets); i++ {
		cur := sets[i]
		for _, sym := range alphabet {
			next := a.Step(cur, sym)
			if next.Len() == 0 {
				continue
			}
			id, ok := ids[next.Key()]
			if !ok {
				id = newState(next)
			}
			d.SetTransition(i, sym, id)
		}
	}
	return d
}

// Trim returns an equivalent DFA with only useful states (reachable and
// co-reachable); the start state is always kept.
func (d *DFA) Trim() *DFA {
	n := d.NumStates()
	// Forward reachability.
	fwd := NewIntSet(d.start)
	stack := []int{d.start}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range d.trans[q] {
			if !fwd.Has(t) {
				fwd.Add(t)
				stack = append(stack, t)
			}
		}
	}
	// Backward from finals.
	rev := make([][]int, n)
	for q, m := range d.trans {
		for _, t := range m {
			rev[t] = append(rev[t], q)
		}
	}
	bwd := NewIntSet()
	for q := 0; q < n; q++ {
		if d.final[q] {
			bwd.Add(q)
			stack = append(stack, q)
		}
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[q] {
			if !bwd.Has(p) {
				bwd.Add(p)
				stack = append(stack, p)
			}
		}
	}
	keep := fwd.Intersect(bwd)
	keep.Add(d.start)
	old2new := make([]int, n)
	for i := range old2new {
		old2new[i] = -1
	}
	b := &DFA{}
	for _, q := range keep.Sorted() {
		old2new[q] = b.AddState(d.final[q])
	}
	b.start = old2new[d.start]
	for q := range keep {
		for s, t := range d.trans[q] {
			if nt := old2new[t]; nt >= 0 {
				b.SetTransition(old2new[q], s, nt)
			}
		}
	}
	return b
}

// Minimize returns the minimal trimmed partial DFA equivalent to d, via
// Moore partition refinement over the completed automaton.
func (d *DFA) Minimize() *DFA {
	t := d.Trim()
	n := t.NumStates()
	alphabet := t.Alphabet()
	// class[q] for states; the implicit sink has class -1 initially merged
	// with... we track it as class index 0 below by shifting: classes are
	// over states only; the sink is handled with the sentinel targetClass -1.
	class := make([]int, n)
	for q := 0; q < n; q++ {
		if t.final[q] {
			class[q] = 1
		}
	}
	for {
		sigs := make([]string, n)
		for q := 0; q < n; q++ {
			key := make([]byte, 0, 16)
			key = appendInt(key, class[q])
			for _, sym := range alphabet {
				key = append(key, '|')
				key = append(key, sym...)
				key = append(key, ':')
				if to, ok := t.Next(q, sym); ok {
					key = appendInt(key, class[to])
				} else {
					key = append(key, '-')
				}
			}
			sigs[q] = string(key)
		}
		next := make(map[string]int)
		newClass := make([]int, n)
		for q := 0; q < n; q++ {
			id, ok := next[sigs[q]]
			if !ok {
				id = len(next)
				next[sigs[q]] = id
			}
			newClass[q] = id
		}
		changed := false
		for q := 0; q < n; q++ {
			if newClass[q] != class[q] {
				changed = true
			}
		}
		class = newClass
		if !changed {
			break
		}
	}
	// Rebuild.
	numClasses := 0
	for _, c := range class {
		if c+1 > numClasses {
			numClasses = c + 1
		}
	}
	b := &DFA{}
	rep := make([]int, numClasses)
	for i := range rep {
		rep[i] = -1
	}
	for q := 0; q < n; q++ {
		if rep[class[q]] == -1 {
			rep[class[q]] = q
		}
	}
	for c := 0; c < numClasses; c++ {
		b.AddState(t.final[rep[c]])
	}
	b.start = class[t.start]
	for c := 0; c < numClasses; c++ {
		q := rep[c]
		for _, sym := range alphabet {
			if to, ok := t.Next(q, sym); ok {
				b.SetTransition(c, sym, class[to])
			}
		}
	}
	return b.Trim()
}

func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// Complete returns a total DFA over the given alphabet, adding an explicit
// rejecting sink if needed.
func (d *DFA) Complete(alphabet []Symbol) *DFA {
	b := d.Clone()
	sink := -1
	need := func() int {
		if sink == -1 {
			sink = b.AddState(false)
			for _, s := range alphabet {
				b.SetTransition(sink, s, sink)
			}
		}
		return sink
	}
	for q := 0; q < d.NumStates(); q++ {
		for _, s := range alphabet {
			if _, ok := b.Next(q, s); !ok {
				b.SetTransition(q, s, need())
			}
		}
	}
	return b
}

// Complement returns a DFA for Σ* − [d], where Σ is the given alphabet
// (which must contain every symbol of d).
func (d *DFA) Complement(alphabet []Symbol) *DFA {
	b := d.Complete(alphabet)
	for q := range b.final {
		b.final[q] = !b.final[q]
	}
	return b
}

// Size returns states plus transitions.
func (d *DFA) Size() int {
	n := d.NumStates()
	for _, m := range d.trans {
		n += len(m)
	}
	return n
}
