package strlang

import (
	"slices"
	"sort"
)

// dfaRow is a state's transition table: parallel slices sorted by interned
// symbol id. An absent entry means δ is undefined there.
type dfaRow struct {
	syms []int32 // sorted distinct symbol ids
	to   []int32 // parallel targets
}

// get returns the target for sid and whether it is defined.
func (r *dfaRow) get(sid int32) (int32, bool) {
	if i, ok := slices.BinarySearch(r.syms, sid); ok {
		return r.to[i], true
	}
	return 0, false
}

// set defines δ for sid, reporting whether sid is new to this row.
func (r *dfaRow) set(sid, to int32) (newSym bool) {
	i, ok := slices.BinarySearch(r.syms, sid)
	if !ok {
		r.syms = slices.Insert(r.syms, i, sid)
		r.to = slices.Insert(r.to, i, to)
		return true
	}
	r.to[i] = to
	return false
}

// remove undefines δ for sid.
func (r *dfaRow) remove(sid int32) {
	if i, ok := slices.BinarySearch(r.syms, sid); ok {
		r.syms = slices.Delete(r.syms, i, i+1)
		r.to = slices.Delete(r.to, i, i+1)
	}
}

func (r *dfaRow) clone() dfaRow {
	return dfaRow{syms: slices.Clone(r.syms), to: slices.Clone(r.to)}
}

// DFA is a partial deterministic finite automaton: a missing transition
// rejects. States are 0..NumStates()-1. Transitions are keyed by interned
// symbol id in compact sorted rows; the alphabet is cached until the next
// mutation.
type DFA struct {
	start int
	final []bool
	trans []dfaRow

	// alpha caches the symbol ids with at least one defined transition,
	// sorted by symbol name; nil means dirty.
	alpha []int32
}

// NewDFA returns a DFA with a single non-final start state.
func NewDFA() *DFA {
	d := &DFA{}
	d.AddState(false)
	return d
}

// AddState adds a state and returns its id.
func (d *DFA) AddState(final bool) int {
	d.final = append(d.final, final)
	d.trans = append(d.trans, dfaRow{})
	return len(d.final) - 1
}

// NumStates returns the number of states.
func (d *DFA) NumStates() int { return len(d.final) }

// Start returns the start state.
func (d *DFA) Start() int { return d.start }

// SetStart makes q the start state.
func (d *DFA) SetStart(q int) { d.start = q }

// IsFinal reports whether q is final.
func (d *DFA) IsFinal(q int) bool { return d.final[q] }

// SetFinal sets the finality of q.
func (d *DFA) SetFinal(q int, f bool) { d.final[q] = f }

// SetTransition sets δ(from, sym) = to, overwriting any previous target.
func (d *DFA) SetTransition(from int, sym Symbol, to int) {
	if sym == "" {
		panic("strlang: empty symbol in DFA transition")
	}
	d.SetTransitionID(from, Intern(sym), to)
}

// SetTransitionID sets δ(from, sid) = to by interned symbol id.
func (d *DFA) SetTransitionID(from int, sid int32, to int) {
	if d.trans[from].set(sid, int32(to)) {
		d.alpha = nil
	}
}

// removeTransition makes δ(from, sid) undefined.
func (d *DFA) removeTransition(from int, sid int32) {
	d.trans[from].remove(sid)
	d.alpha = nil
}

// Next returns δ(q, sym) and whether it is defined.
func (d *DFA) Next(q int, sym Symbol) (int, bool) {
	sid, ok := LookupSymID(sym)
	if !ok {
		return 0, false
	}
	return d.NextID(q, sid)
}

// NextID is Next by interned symbol id.
func (d *DFA) NextID(q int, sid int32) (int, bool) {
	t, ok := d.trans[q].get(sid)
	return int(t), ok
}

// AlphabetIDs returns the interned ids of symbols with a defined
// transition, sorted by symbol name (shared slice; do not mutate).
func (d *DFA) AlphabetIDs() []int32 {
	if d.alpha == nil {
		d.alpha = collectAlphabet(func(yield func(int32)) {
			for q := range d.trans {
				for _, sid := range d.trans[q].syms {
					yield(sid)
				}
			}
		})
	}
	return d.alpha
}

// Alphabet returns the sorted symbols appearing on transitions.
func (d *DFA) Alphabet() []Symbol {
	ids := d.AlphabetIDs()
	out := make([]Symbol, len(ids))
	for i, id := range ids {
		out[i] = SymbolName(id)
	}
	return out
}

// Accepts reports whether d accepts w.
func (d *DFA) Accepts(w []Symbol) bool {
	q := d.start
	for _, s := range w {
		t, ok := d.Next(q, s)
		if !ok {
			return false
		}
		q = t
	}
	return d.final[q]
}

// Clone returns a deep copy of d.
func (d *DFA) Clone() *DFA {
	b := &DFA{start: d.start, alpha: d.alpha}
	b.final = slices.Clone(d.final)
	b.trans = make([]dfaRow, len(d.trans))
	for q := range d.trans {
		b.trans[q] = d.trans[q].clone()
	}
	return b
}

// NFA converts d to an equivalent NFA.
func (d *DFA) NFA() *NFA {
	a := &NFA{start: d.start, final: NewIntSet()}
	for q := 0; q < d.NumStates(); q++ {
		a.AddState()
		if d.final[q] {
			a.MarkFinal(q)
		}
	}
	for q := range d.trans {
		row := &d.trans[q]
		for i, sid := range row.syms {
			a.AddTransitionID(q, sid, int(row.to[i]))
		}
	}
	return a
}

// Determinize converts a to an equivalent partial DFA by the subset
// construction (the empty subset is not materialized). Subsets are
// bitsets keyed by their packed word encoding, and each symbol is stepped
// by interned id over the precomputed ε-closures.
func (a *NFA) Determinize() *DFA {
	d := &DFA{}
	alphabet := a.AlphabetIDs()
	startSet := a.Closure(NewIntSet(a.start))
	ids := map[string]int{}
	var sets []IntSet
	newState := func(s IntSet) int {
		id := len(sets)
		sets = append(sets, s)
		ids[s.Key()] = id
		d.final = append(d.final, s.Intersects(a.final))
		d.trans = append(d.trans, dfaRow{})
		return id
	}
	d.start = newState(startSet)
	for i := 0; i < len(sets); i++ {
		cur := sets[i]
		for _, sid := range alphabet {
			next := a.StepID(cur, sid)
			if next.Len() == 0 {
				continue
			}
			id, ok := ids[next.Key()]
			if !ok {
				id = newState(next)
			}
			d.SetTransitionID(i, sid, id)
		}
	}
	return d
}

// Trim returns an equivalent DFA with only useful states (reachable and
// co-reachable); the start state is always kept.
func (d *DFA) Trim() *DFA {
	n := d.NumStates()
	// Forward reachability.
	fwd := NewIntSet(d.start)
	stack := []int32{int32(d.start)}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range d.trans[q].to {
			if !fwd.Has(int(t)) {
				fwd.Add(int(t))
				stack = append(stack, t)
			}
		}
	}
	// Backward from finals.
	rev := make([][]int32, n)
	for q := range d.trans {
		for _, t := range d.trans[q].to {
			rev[t] = append(rev[t], int32(q))
		}
	}
	bwd := NewIntSet()
	for q := 0; q < n; q++ {
		if d.final[q] {
			bwd.Add(q)
			stack = append(stack, int32(q))
		}
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[q] {
			if !bwd.Has(int(p)) {
				bwd.Add(int(p))
				stack = append(stack, p)
			}
		}
	}
	keep := fwd.Intersect(bwd)
	keep.Add(d.start)
	old2new := make([]int32, n)
	for i := range old2new {
		old2new[i] = -1
	}
	b := &DFA{}
	for q := range keep.All() {
		old2new[q] = int32(b.AddState(d.final[q]))
	}
	b.start = int(old2new[d.start])
	for q := range keep.All() {
		row := &d.trans[q]
		for i, sid := range row.syms {
			if nt := old2new[row.to[i]]; nt >= 0 {
				b.SetTransitionID(int(old2new[q]), sid, int(nt))
			}
		}
	}
	return b
}

// Minimize returns the minimal trimmed partial DFA equivalent to d, via
// Moore partition refinement over the completed automaton. Round
// signatures are packed little-endian int32 class vectors — no symbol
// names are rendered — so each refinement round is a single map pass over
// byte strings.
func (d *DFA) Minimize() *DFA {
	t := d.Trim()
	n := t.NumStates()
	alphabet := t.AlphabetIDs()
	// class[q] for states; the implicit rejecting sink keeps the sentinel
	// class -1 throughout.
	class := make([]int32, n)
	for q := 0; q < n; q++ {
		if t.final[q] {
			class[q] = 1
		}
	}
	buf := make([]byte, 0, 4*(len(alphabet)+1))
	for {
		next := make(map[string]int32, n)
		newClass := make([]int32, n)
		changed := false
		for q := 0; q < n; q++ {
			buf = buf[:0]
			buf = appendInt32(buf, class[q])
			for _, sid := range alphabet {
				c := int32(-1)
				if to, ok := t.trans[q].get(sid); ok {
					c = class[to]
				}
				buf = appendInt32(buf, c)
			}
			id, ok := next[string(buf)]
			if !ok {
				id = int32(len(next))
				next[string(buf)] = id
			}
			newClass[q] = id
			if id != class[q] {
				changed = true
			}
		}
		class = newClass
		if !changed {
			break
		}
	}
	// Rebuild.
	numClasses := 0
	for _, c := range class {
		if int(c)+1 > numClasses {
			numClasses = int(c) + 1
		}
	}
	b := &DFA{}
	rep := make([]int, numClasses)
	for i := range rep {
		rep[i] = -1
	}
	for q := 0; q < n; q++ {
		if rep[class[q]] == -1 {
			rep[class[q]] = q
		}
	}
	for c := 0; c < numClasses; c++ {
		b.AddState(t.final[rep[c]])
	}
	b.start = int(class[t.start])
	for c := 0; c < numClasses; c++ {
		q := rep[c]
		row := &t.trans[q]
		for i, sid := range row.syms {
			b.SetTransitionID(c, sid, int(class[row.to[i]]))
		}
	}
	return b.Trim()
}

func appendInt32(b []byte, v int32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// Complete returns a total DFA over the given alphabet, adding an explicit
// rejecting sink if needed.
func (d *DFA) Complete(alphabet []Symbol) *DFA {
	ids := make([]int32, len(alphabet))
	for i, s := range alphabet {
		ids[i] = Intern(s)
	}
	b := d.Clone()
	sink := -1
	need := func() int {
		if sink == -1 {
			sink = b.AddState(false)
			for _, sid := range ids {
				b.SetTransitionID(sink, sid, sink)
			}
		}
		return sink
	}
	for q := 0; q < d.NumStates(); q++ {
		for _, sid := range ids {
			if _, ok := b.NextID(q, sid); !ok {
				b.SetTransitionID(q, sid, need())
			}
		}
	}
	return b
}

// Complement returns a DFA for Σ* − [d], where Σ is the given alphabet
// (which must contain every symbol of d).
func (d *DFA) Complement(alphabet []Symbol) *DFA {
	b := d.Complete(alphabet)
	for q := range b.final {
		b.final[q] = !b.final[q]
	}
	return b
}

// EachTransition calls f for every defined transition (from, sym, to),
// with from ascending and symbols in name order per state.
func (d *DFA) EachTransition(f func(from int, sym Symbol, to int)) {
	ids := d.AlphabetIDs()
	for q := range d.trans {
		for _, sid := range ids {
			if to, ok := d.trans[q].get(sid); ok {
				f(q, SymbolName(sid), int(to))
			}
		}
	}
}

// Size returns states plus transitions.
func (d *DFA) Size() int {
	n := d.NumStates()
	for q := range d.trans {
		n += len(d.trans[q].syms)
	}
	return n
}

// sortSymbols sorts a small symbol slice in place.
func sortSymbols(s []Symbol) {
	sort.Strings(s)
}
