// Package strlang implements the regular string-language toolkit used by the
// distributed XML design algorithms of Abiteboul, Gottlob and Manna
// (“Distributed XML Design”, PODS 2009): nondeterministic finite automata
// with ε-transitions (nFAs), deterministic finite automata (dFAs), regular
// expressions (nREs), deterministic regular expressions (dREs,
// one-unambiguous languages in the sense of Brüggemann-Klein and Wood), and
// the delimited-state analysis (Ini/Fin sets and local automata A(q,q′)) of
// Section 6 of the paper.
//
// Conventions:
//
//   - States are dense integers 0..n-1 local to each automaton.
//   - Symbols are non-empty strings; the empty string is reserved for ε.
//   - DFAs are partial: a missing transition rejects.
//   - All constructions are exact; several (complement, inclusion,
//     minimization) are worst-case exponential, matching the PSPACE/EXPTIME
//     lower bounds the paper proves for the problems built on top of them.
//
// # Representation: interned alphabet, compact rows, bitset state sets
//
// Every decision procedure in the repository bottoms out in this package,
// so the automaton kernel is built for speed:
//
//   - Symbols are interned once into dense int32 ids by a process-wide
//     Interner (see Intern, LookupSymID, SymbolName). The string Symbol
//     remains the public currency — AddTransition, Succ, Step and friends
//     still take strings — but every hot loop can use the parallel *ID
//     methods (AddTransitionID, SuccID, StepID, AlphabetIDs) and never
//     hash a string. Because the interner is shared and append-only, the
//     automata of one design problem automatically agree on ids, which is
//     what makes cross-automaton constructions (products, inclusion,
//     grafting) pure integer work.
//
//   - Per-state transitions are compact rows: parallel slices of sorted
//     symbol ids and sorted duplicate-free target lists. Lookup is a
//     binary search over a handful of int32s; insertion keeps the sorted
//     invariant with an O(log k) search (duplicate suppression no longer
//     scans the whole out-degree). Rows cost memory proportional to the
//     state's actual out-degree even when the global id space is large.
//
//   - State sets (IntSet) are []uint64 bitsets with word-wise
//     Union/Intersect/SubsetOf and a collision-free packed Key() for
//     subset constructions — no per-element string formatting.
//
//   - The per-state ε-closures and the name-sorted alphabet are computed
//     once and cached on the automaton until the next mutation, so
//     Determinize, Step chains and the UTA product constructions never
//     re-traverse ε-edges or rebuild symbol sets.
package strlang
