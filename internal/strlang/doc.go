// Package strlang implements the regular string-language toolkit used by the
// distributed XML design algorithms of Abiteboul, Gottlob and Manna
// (“Distributed XML Design”, PODS 2009): nondeterministic finite automata
// with ε-transitions (nFAs), deterministic finite automata (dFAs), regular
// expressions (nREs), deterministic regular expressions (dREs,
// one-unambiguous languages in the sense of Brüggemann-Klein and Wood), and
// the delimited-state analysis (Ini/Fin sets and local automata A(q,q′)) of
// Section 6 of the paper.
//
// Conventions:
//
//   - States are dense integers 0..n-1 local to each automaton.
//   - Symbols are non-empty strings; the empty string is reserved for ε.
//   - DFAs are partial: a missing transition rejects.
//   - All constructions are exact; several (complement, inclusion,
//     minimization) are worst-case exponential, matching the PSPACE/EXPTIME
//     lower bounds the paper proves for the problems built on top of them.
package strlang
