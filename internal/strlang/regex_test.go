package strlang

import (
	"testing"
)

func TestParseRegex(t *testing.T) {
	cases := []struct {
		src  string
		want string // canonical re-print
	}{
		{"a", "a"},
		{"a b", "a b"},
		{"a,b", "a b"},
		{"a | b c", "a | b c"},
		{"(a | b) c", "(a | b) c"},
		{"a* b+ c?", "a* b+ c?"},
		{"country, Good, (index | value, year)", "country Good (index | value year)"},
		{"ε", "ε"},
		{"EPSILON", "ε"},
		{"∅", "∅"},
		{"EMPTYSET", "∅"},
		{"(a b)*", "(a b)*"},
		{"nationalIndex*", "nationalIndex*"},
		{"a~1 (b~2)*", "a~1 b~2*"},
	}
	for _, c := range cases {
		r, err := ParseRegex(c.src)
		if err != nil {
			t.Errorf("ParseRegex(%q): %v", c.src, err)
			continue
		}
		if got := RegexString(r); got != c.want {
			t.Errorf("ParseRegex(%q) prints %q, want %q", c.src, got, c.want)
		}
	}
}

func TestParseRegexErrors(t *testing.T) {
	for _, src := range []string{"", "(", "(a", "a)", "|", "a |", "*"} {
		if _, err := ParseRegex(src); err == nil {
			t.Errorf("ParseRegex(%q) should fail", src)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, src := range []string{
		"a* b c*",
		"(a b)+",
		"averages (natIndA | natIndB)*",
		"a | b | c d e",
		"((a b)? c)*",
	} {
		r1 := MustParseRegex(src)
		r2 := MustParseRegex(RegexString(r1))
		if ok, w := Equivalent(RegexNFA(r1), RegexNFA(r2)); !ok {
			t.Errorf("round trip of %q changed language, witness %v", src, w)
		}
	}
}

func TestGlushkovBasic(t *testing.T) {
	a := RegexNFA(MustParseRegex("a* b c*"))
	cases := []struct {
		w    string
		want bool
	}{
		{"b", true}, {"ab", true}, {"abc", true}, {"aabcc", true},
		{"", false}, {"a", false}, {"c", false}, {"ba", false}, {"cb", false},
	}
	for _, c := range cases {
		if got := a.Accepts(str(c.w)); got != c.want {
			t.Errorf("a*bc* on %q = %v, want %v", c.w, got, c.want)
		}
	}
	// Glushkov automata are ε-free.
	for q := 0; q < a.NumStates(); q++ {
		if len(a.eps[q]) != 0 {
			t.Fatal("Glushkov automaton has ε-transitions")
		}
	}
}

func TestRegexDeterministic(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"a* b c*", true},
		{"(a b)*", true},
		{"(a b?)*", true},
		{"(a|b)* a", false},   // Glushkov-nondeterministic (language IS 1-unambiguous)
		{"(b* a)+ | ε", true}, // equivalent deterministic form of (a|b)*a... not exactly; still a dRE syntactically
		{"(a|b)* a (a|b)", false},
		{"a a* | ε", true},
		{"a* a", false},
		{"country Good (index | value year)", true},
		{"averages (natIndA natIndB)+", true},
	}
	for _, c := range cases {
		r := MustParseRegex(c.src)
		got, _ := RegexDeterministic(r)
		if got != c.want {
			t.Errorf("RegexDeterministic(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestRegexSymbolsAndSize(t *testing.T) {
	r := MustParseRegex("a (b | a c)*")
	syms := RegexSymbols(r)
	if len(syms) != 3 || syms[0] != "a" || syms[1] != "b" || syms[2] != "c" {
		t.Errorf("RegexSymbols = %v", syms)
	}
	if RegexSize(r) < 5 {
		t.Errorf("RegexSize = %d too small", RegexSize(r))
	}
}

func TestMapRegexSymbols(t *testing.T) {
	r := MustParseRegex("a (b | a)*")
	m := MapRegexSymbols(r, func(s Symbol) Symbol { return s + "~1" })
	if got := RegexString(m); got != "a~1 (b~1 | a~1)*" {
		t.Errorf("MapRegexSymbols = %q", got)
	}
}

func TestRegexFromNFA(t *testing.T) {
	for _, src := range []string{
		"a* b c*",
		"(a b)+",
		"a | b c | ε",
		"(a (b a)*)?",
		"∅",
	} {
		a := RegexNFA(MustParseRegex(src))
		back := RegexFromNFA(a)
		if ok, w := Equivalent(a, RegexNFA(back)); !ok {
			t.Errorf("RegexFromNFA(%q) = %q wrong, witness %v", src, RegexString(back), w)
		}
	}
}
