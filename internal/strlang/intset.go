package strlang

import (
	"iter"
	"math/bits"
)

// Bits is a set of non-negative integers (automaton states) backed by a
// []uint64 bitset. State sets are the innermost currency of every subset
// construction in the design pipeline, so the representation is optimized
// for word-wise Union/Intersects/SubsetOf and for a compact, collision-free
// map key (Key). Use it through the IntSet alias.
type Bits struct {
	words []uint64
	n     int // cardinality, maintained incrementally
}

// IntSet is a finite set of non-negative integers. It has pointer
// semantics, like the map type it replaces: copies share the same storage
// unless made with Copy.
type IntSet = *Bits

// NewIntSet returns a set containing the given elements.
func NewIntSet(elems ...int) IntSet {
	s := &Bits{}
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

func (s *Bits) grow(word int) {
	for len(s.words) <= word {
		s.words = append(s.words, 0)
	}
}

// Add inserts e into s.
func (s *Bits) Add(e int) {
	w, b := e>>6, uint(e&63)
	s.grow(w)
	if s.words[w]&(1<<b) == 0 {
		s.words[w] |= 1 << b
		s.n++
	}
}

// Remove deletes e from s.
func (s *Bits) Remove(e int) {
	w, b := e>>6, uint(e&63)
	if w < len(s.words) && s.words[w]&(1<<b) != 0 {
		s.words[w] &^= 1 << b
		s.n--
	}
}

// Has reports whether e is in s.
func (s *Bits) Has(e int) bool {
	w := e >> 6
	return w < len(s.words) && s.words[w]&(1<<uint(e&63)) != 0
}

// Len returns the cardinality of s.
func (s *Bits) Len() int { return s.n }

// Copy returns an independent copy of s.
func (s *Bits) Copy() IntSet {
	t := &Bits{n: s.n}
	t.words = append([]uint64(nil), s.words...)
	return t
}

// Clear removes every element, retaining the allocated capacity so the
// set can be refilled without reallocating. Scratch-arena code (the
// streaming validator's subset tracker) depends on this being
// allocation-free.
func (s *Bits) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
	s.n = 0
}

// SetTo makes s an exact copy of t, reusing s's storage when it is large
// enough. Allocation-free once s has grown to t's word count.
func (s *Bits) SetTo(t IntSet) {
	s.words = append(s.words[:0], t.words...)
	s.n = t.n
}

// AddAll inserts every element of t into s (word-wise union). The
// cardinality is maintained by per-word deltas, so the cost is bounded by
// |t|'s words, not the receiver's.
func (s *Bits) AddAll(t IntSet) {
	if len(t.words) > len(s.words) {
		s.grow(len(t.words) - 1)
	}
	for i, w := range t.words {
		old := s.words[i]
		merged := old | w
		if merged != old {
			s.n += bits.OnesCount64(merged) - bits.OnesCount64(old)
			s.words[i] = merged
		}
	}
}

// All returns an iterator over the elements of s in increasing order.
func (s *Bits) All() iter.Seq[int] {
	return func(yield func(int) bool) {
		for i, w := range s.words {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				if !yield(i<<6 | b) {
					return
				}
				w &= w - 1
			}
		}
	}
}

// Sorted returns the elements of s in increasing order.
func (s *Bits) Sorted() []int {
	out := make([]int, 0, s.n)
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, i<<6|b)
			w &= w - 1
		}
	}
	return out
}

// Equal reports whether s and t contain the same elements.
func (s *Bits) Equal(t IntSet) bool {
	if s.n != t.n {
		return false
	}
	a, b := s.words, t.words
	if len(a) > len(b) {
		a, b = b, a
	}
	for i, w := range a {
		if w != b[i] {
			return false
		}
	}
	for _, w := range b[len(a):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and t share an element.
func (s *Bits) Intersects(t IntSet) bool {
	m := min(len(s.words), len(t.words))
	for i := 0; i < m; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Intersect returns s ∩ t.
func (s *Bits) Intersect(t IntSet) IntSet {
	m := min(len(s.words), len(t.words))
	out := &Bits{words: make([]uint64, m)}
	for i := 0; i < m; i++ {
		w := s.words[i] & t.words[i]
		out.words[i] = w
		out.n += bits.OnesCount64(w)
	}
	return out
}

// SubsetOf reports whether every element of s is in t.
func (s *Bits) SubsetOf(t IntSet) bool {
	for i, w := range s.words {
		if i >= len(t.words) {
			if w != 0 {
				return false
			}
			continue
		}
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Key returns a canonical string key for s, usable as a map key in subset
// constructions. Keys are collision-free: two sets share a key iff they are
// equal. The encoding is the raw little-endian bitset words with trailing
// zero words trimmed, so building it is a single allocation with no
// per-element formatting.
func (s *Bits) Key() string {
	nw := len(s.words)
	for nw > 0 && s.words[nw-1] == 0 {
		nw--
	}
	b := make([]byte, nw*8)
	for i := 0; i < nw; i++ {
		w := s.words[i]
		o := i * 8
		b[o] = byte(w)
		b[o+1] = byte(w >> 8)
		b[o+2] = byte(w >> 16)
		b[o+3] = byte(w >> 24)
		b[o+4] = byte(w >> 32)
		b[o+5] = byte(w >> 40)
		b[o+6] = byte(w >> 48)
		b[o+7] = byte(w >> 56)
	}
	return string(b)
}
