package strlang

import (
	"sort"
	"strconv"
	"strings"
)

// IntSet is a finite set of non-negative integers (automaton states).
type IntSet map[int]struct{}

// NewIntSet returns a set containing the given elements.
func NewIntSet(elems ...int) IntSet {
	s := make(IntSet, len(elems))
	for _, e := range elems {
		s[e] = struct{}{}
	}
	return s
}

// Add inserts e into s.
func (s IntSet) Add(e int) { s[e] = struct{}{} }

// Has reports whether e is in s.
func (s IntSet) Has(e int) bool { _, ok := s[e]; return ok }

// Len returns the cardinality of s.
func (s IntSet) Len() int { return len(s) }

// Copy returns an independent copy of s.
func (s IntSet) Copy() IntSet {
	t := make(IntSet, len(s))
	for e := range s {
		t[e] = struct{}{}
	}
	return t
}

// AddAll inserts every element of t into s.
func (s IntSet) AddAll(t IntSet) {
	for e := range t {
		s[e] = struct{}{}
	}
}

// Sorted returns the elements of s in increasing order.
func (s IntSet) Sorted() []int {
	out := make([]int, 0, len(s))
	for e := range s {
		out = append(out, e)
	}
	sort.Ints(out)
	return out
}

// Equal reports whether s and t contain the same elements.
func (s IntSet) Equal(t IntSet) bool {
	if len(s) != len(t) {
		return false
	}
	for e := range s {
		if !t.Has(e) {
			return false
		}
	}
	return true
}

// Intersects reports whether s and t share an element.
func (s IntSet) Intersects(t IntSet) bool {
	if len(t) < len(s) {
		s, t = t, s
	}
	for e := range s {
		if t.Has(e) {
			return true
		}
	}
	return false
}

// Intersect returns s ∩ t.
func (s IntSet) Intersect(t IntSet) IntSet {
	out := NewIntSet()
	if len(t) < len(s) {
		s, t = t, s
	}
	for e := range s {
		if t.Has(e) {
			out.Add(e)
		}
	}
	return out
}

// SubsetOf reports whether every element of s is in t.
func (s IntSet) SubsetOf(t IntSet) bool {
	for e := range s {
		if !t.Has(e) {
			return false
		}
	}
	return true
}

// Key returns a canonical string key for s, usable as a map key in
// subset constructions.
func (s IntSet) Key() string {
	elems := s.Sorted()
	var b strings.Builder
	for i, e := range elems {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(e))
	}
	return b.String()
}
