package strlang

// DisplayRegex renders the language of a as a regex for human output,
// preferring a deterministic expression when the language is
// one-unambiguous and small enough to construct one.
func DisplayRegex(a *NFA) string {
	if a.NumStates() <= 64 {
		if re, ok := BuildDRE(a); ok {
			return RegexString(re)
		}
	}
	return RegexString(RegexFromNFA(a))
}

// RegexFromNFA converts an automaton to a regular expression by state
// elimination (GNFA construction). The result is a possibly
// nondeterministic nRE defining exactly [a]; it is used to render computed
// typings in the concrete grammar syntax. For deterministic output use
// BuildDRE instead.
func RegexFromNFA(a *NFA) Regex {
	t, _ := a.Trim()
	if t.final.Len() == 0 {
		return REmpty{}
	}
	n := t.NumStates()
	// Virtual start = n, virtual final = n+1.
	start, final := n, n+1
	type edge struct{ from, to int }
	edges := map[edge]Regex{}
	addEdge := func(i, j int, r Regex) {
		if _, isEmpty := r.(REmpty); isEmpty {
			return
		}
		if prev, ok := edges[edge{i, j}]; ok {
			edges[edge{i, j}] = Alt(prev, r)
		} else {
			edges[edge{i, j}] = r
		}
	}
	for q := 0; q < n; q++ {
		row := &t.trans[q]
		for si, sid := range row.syms {
			s := SymbolName(sid)
			for _, to := range row.ts[si] {
				addEdge(q, int(to), Sym(s))
			}
		}
		for _, to := range t.eps[q] {
			addEdge(q, int(to), REps{})
		}
		if t.IsFinal(q) {
			addEdge(q, final, REps{})
		}
	}
	addEdge(start, t.Start(), REps{})
	// Eliminate the original states in order.
	for k := 0; k < n; k++ {
		self, hasSelf := edges[edge{k, k}]
		var loop Regex = REps{}
		if hasSelf {
			loop = StarR(self)
		}
		var ins, outs []struct {
			other int
			r     Regex
		}
		for e, r := range edges {
			if e.to == k && e.from != k {
				ins = append(ins, struct {
					other int
					r     Regex
				}{e.from, r})
			}
			if e.from == k && e.to != k {
				outs = append(outs, struct {
					other int
					r     Regex
				}{e.to, r})
			}
		}
		for _, in := range ins {
			for _, out := range outs {
				addEdge(in.other, out.other, Cat(in.r, loop, out.r))
			}
		}
		for e := range edges {
			if e.from == k || e.to == k {
				delete(edges, e)
			}
		}
	}
	if r, ok := edges[edge{start, final}]; ok {
		return r
	}
	return REmpty{}
}
