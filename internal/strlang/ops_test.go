package strlang

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBooleanOps(t *testing.T) {
	a := mustLang(t, "a* b")
	b := mustLang(t, "a b | b b | b")
	u := Union(a, b)
	i := Intersect(a, b)
	d := Difference(a, b)
	words := [][]Symbol{nil, str("b"), str("ab"), str("bb"), str("aab"), str("ba")}
	for _, w := range words {
		inA, inB := a.Accepts(w), b.Accepts(w)
		if got := u.Accepts(w); got != (inA || inB) {
			t.Errorf("union wrong on %v", w)
		}
		if got := i.Accepts(w); got != (inA && inB) {
			t.Errorf("intersect wrong on %v", w)
		}
		if got := d.Accepts(w); got != (inA && !inB) {
			t.Errorf("difference wrong on %v", w)
		}
	}
}

func TestConcatStarPlusOpt(t *testing.T) {
	a := SymbolLang("a")
	b := SymbolLang("b")
	ab := Concat(a, b)
	if !ab.Accepts(str("ab")) || ab.Accepts(str("a")) || ab.Accepts(str("ba")) {
		t.Error("concat wrong")
	}
	s := Star(ab)
	for _, c := range []struct {
		w    string
		want bool
	}{{"", true}, {"ab", true}, {"abab", true}, {"aba", false}} {
		if got := s.Accepts(str(c.w)); got != c.want {
			t.Errorf("(ab)* on %q = %v want %v", c.w, got, c.want)
		}
	}
	p := Plus(ab)
	if p.AcceptsEps() {
		t.Error("(ab)+ accepts ε")
	}
	if !p.Accepts(str("abab")) {
		t.Error("(ab)+ rejects abab")
	}
	o := Opt(a)
	if !o.AcceptsEps() || !o.Accepts(str("a")) || o.Accepts(str("aa")) {
		t.Error("a? wrong")
	}
}

func TestIncludedWitness(t *testing.T) {
	a := mustLang(t, "a* b")
	b := mustLang(t, "a a* b")
	ok, w := Included(a, b)
	if ok {
		t.Fatal("a*b ⊆ a+b should fail")
	}
	if strings.Join(w, "") != "b" {
		t.Errorf("witness = %v, want shortest witness b", w)
	}
	if ok, _ := Included(b, a); !ok {
		t.Error("a a* b ⊆ a* b should hold")
	}
}

func TestEquivalent(t *testing.T) {
	cases := []struct {
		x, y string
		want bool
	}{
		{"a* b c* c*", "a* a* b c*", true},  // Example 2's identity
		{"(a b)* a", "a (b a)* | ε", false}, // differ on ε
		{"(a b)* a", "a (b a)*", true},
		{"(a|b)*", "(a* b*)*", true},
		{"a?", "a | ε", true},
		{"(a b)+", "a b (a b)*", true},
	}
	for _, c := range cases {
		x, y := mustLang(t, c.x), mustLang(t, c.y)
		got, w := Equivalent(x, y)
		if got != c.want {
			t.Errorf("Equivalent(%q, %q) = %v (witness %v), want %v", c.x, c.y, got, w, c.want)
		}
	}
}

func TestProper(t *testing.T) {
	a := mustLang(t, "a b")
	b := mustLang(t, "a b | c")
	if !Proper(a, b) {
		t.Error("ab ⊂ ab|c should hold")
	}
	if Proper(b, a) || Proper(a, a) {
		t.Error("Proper should be strict")
	}
}

// randomRegex builds a random regex over {a,b} with the given node budget.
func randomRegex(r *rand.Rand, depth int) Regex {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return Sym("a")
		case 1:
			return Sym("b")
		case 2:
			return Sym("c")
		default:
			return REps{}
		}
	}
	switch r.Intn(6) {
	case 0:
		return Cat(randomRegex(r, depth-1), randomRegex(r, depth-1))
	case 1:
		return Alt(randomRegex(r, depth-1), randomRegex(r, depth-1))
	case 2:
		return StarR(randomRegex(r, depth-1))
	case 3:
		return PlusR(randomRegex(r, depth-1))
	case 4:
		return OptR(randomRegex(r, depth-1))
	default:
		return randomRegex(r, depth-1)
	}
}

// regexMatch is an independent regex matcher (by structural recursion on
// substrings) used as an oracle against the Glushkov automaton.
func regexMatch(re Regex, w []Symbol) bool {
	return matchTop(re, 0, len(w), w)
}

func matchTop(re Regex, i, j int, w []Symbol) bool {
	switch t := re.(type) {
	case REmpty:
		return false
	case REps:
		return i == j
	case RSym:
		return j == i+1 && w[i] == t.Sym
	case RAlt:
		for _, a := range t.Args {
			if matchTop(a, i, j, w) {
				return true
			}
		}
		return false
	case RConcat:
		return matchSeq(t.Args, i, j, w)
	case RStar:
		return matchStar(t.Arg, i, j, w)
	case RPlus:
		for k := i + 1; k <= j; k++ {
			if matchTop(t.Arg, i, k, w) && matchStar(t.Arg, k, j, w) {
				return true
			}
		}
		// A single iteration may also be empty-matching.
		return matchTop(t.Arg, i, j, w)
	case ROpt:
		return i == j || matchTop(t.Arg, i, j, w)
	}
	return false
}

func matchSeq(args []Regex, i, j int, w []Symbol) bool {
	if len(args) == 0 {
		return i == j
	}
	for k := i; k <= j; k++ {
		if matchTop(args[0], i, k, w) && matchSeq(args[1:], k, j, w) {
			return true
		}
	}
	return false
}

func matchStar(arg Regex, i, j int, w []Symbol) bool {
	if i == j {
		return true
	}
	for k := i + 1; k <= j; k++ {
		if matchTop(arg, i, k, w) && matchStar(arg, k, j, w) {
			return true
		}
	}
	return false
}

// TestGlushkovMatchesOracle cross-checks the Glushkov automaton against the
// independent structural matcher on random regexes and random words.
func TestGlushkovMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		re := randomRegex(r, 3)
		a := RegexNFA(re)
		for k := 0; k < 12; k++ {
			n := r.Intn(5)
			w := make([]Symbol, n)
			for i := range w {
				w[i] = string(rune('a' + r.Intn(3)))
			}
			got := a.Accepts(w)
			want := regexMatch(re, w)
			if got != want {
				t.Fatalf("regex %s on %v: glushkov=%v oracle=%v", RegexString(re), w, got, want)
			}
		}
	}
}

// TestOpsPreserveSemantics is a quick-check style property: for random
// regexes x, y, the language operations agree with pointwise membership.
func TestOpsPreserveSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		x := RegexNFA(randomRegex(rr, 2))
		y := RegexNFA(randomRegex(rr, 2))
		u, i, c := Union(x, y), Intersect(x, y), Concat(x, y)
		for k := 0; k < 10; k++ {
			n := rr.Intn(4)
			w := make([]Symbol, n)
			for j := range w {
				w[j] = string(rune('a' + rr.Intn(3)))
			}
			if u.Accepts(w) != (x.Accepts(w) || y.Accepts(w)) {
				return false
			}
			if i.Accepts(w) != (x.Accepts(w) && y.Accepts(w)) {
				return false
			}
			// Concatenation: check by splitting.
			inConcat := false
			for cut := 0; cut <= n; cut++ {
				if x.Accepts(w[:cut]) && y.Accepts(w[cut:]) {
					inConcat = true
					break
				}
			}
			if c.Accepts(w) != inConcat {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestDeterminizeIdempotent checks [A] = [det(A)] = [min(det(A))] on random
// regexes, via full equivalence.
func TestDeterminizeIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 120; trial++ {
		re := randomRegex(r, 3)
		a := RegexNFA(re)
		d := a.Determinize()
		m := d.Minimize()
		if ok, w := Equivalent(a, d.NFA()); !ok {
			t.Fatalf("determinize broke %s, witness %v", RegexString(re), w)
		}
		if ok, w := Equivalent(a, m.NFA()); !ok {
			t.Fatalf("minimize broke %s, witness %v", RegexString(re), w)
		}
		if m2 := m.NFA().Determinize().Minimize(); m2.NumStates() != m.NumStates() {
			t.Fatalf("minimize not idempotent for %s: %d vs %d states", RegexString(re), m.NumStates(), m2.NumStates())
		}
	}
}
