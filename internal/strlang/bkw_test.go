package strlang

import (
	"math/rand"
	"testing"
)

func TestOneUnambiguousKnownPositive(t *testing.T) {
	// All of these are definable by deterministic regular expressions.
	for _, src := range []string{
		"a*",
		"(a b)*",
		"(a b)+",
		"(a b?)*",
		"(a|b)* a", // ≡ (b* a)+, deterministic
		"a* b a*",
		"a* b c*",
		"ε",
		"∅",
		"a | b | c",
		"(a a)*",
		"((a | b) (a | b))*",
		"a (b a)*",
		"b? a*",
		"(a+ b)* a*",
	} {
		a := RegexNFA(MustParseRegex(src))
		if !OneUnambiguous(a) {
			t.Errorf("OneUnambiguous(%q) = false, want true", src)
		}
		r, ok := BuildDRE(a)
		if !ok {
			t.Errorf("BuildDRE(%q) failed", src)
			continue
		}
		if det, sym := RegexDeterministic(r); !det {
			t.Errorf("BuildDRE(%q) = %q is not deterministic (symbol %s)", src, RegexString(r), sym)
		}
		if ok, w := Equivalent(a, RegexNFA(r)); !ok {
			t.Errorf("BuildDRE(%q) = %q defines a different language, witness %v", src, RegexString(r), w)
		}
	}
}

func TestOneUnambiguousKnownNegative(t *testing.T) {
	// Canonical non-one-unambiguous languages (Brüggemann-Klein & Wood):
	// “the k-th symbol from the end is a”, plus continuation-uncertainty
	// languages whose final states disagree on the restart symbol (the
	// prefixes of (ab)^ω, and a cycle with an optional half-cycle tail).
	for _, src := range []string{
		"(a|b)* a (a|b)",
		"(a|b)* a (a|b) (a|b)",
		"(a b)* a?",
		"(a b c d e)* (a b c)?",
	} {
		a := RegexNFA(MustParseRegex(src))
		if OneUnambiguous(a) {
			t.Errorf("OneUnambiguous(%q) = true, want false", src)
		}
		if _, ok := BuildDRE(a); ok {
			t.Errorf("BuildDRE(%q) should fail", src)
		}
	}
}

// TestOneUnambiguousIsLanguageProperty feeds different regexes for the same
// language and checks the decision agrees.
func TestOneUnambiguousIsLanguageProperty(t *testing.T) {
	groups := [][]string{
		{"(a b)* a", "a (b a)*"},
		{"(a|b)* a", "(b* a)+"},
		{"a? b*", "b* | a b*"},
		{"(a|b)* a (a|b)", "(a|b)* (a a | a b)"},
	}
	for _, g := range groups {
		first := OneUnambiguous(RegexNFA(MustParseRegex(g[0])))
		for _, src := range g[1:] {
			if got := OneUnambiguous(RegexNFA(MustParseRegex(src))); got != first {
				t.Errorf("OneUnambiguous disagrees within language group %v: %q gives %v", g, src, got)
			}
		}
	}
}

// TestSyntacticDREImpliesLanguageDRE: if a regex is syntactically
// deterministic, its language must be one-unambiguous.
func TestSyntacticDREImpliesLanguageDRE(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	checked := 0
	for trial := 0; trial < 400 && checked < 150; trial++ {
		re := randomRegex(r, 3)
		if det, _ := RegexDeterministic(re); !det {
			continue
		}
		checked++
		a := RegexNFA(re)
		if !OneUnambiguous(a) {
			t.Fatalf("syntactic dRE %q judged not one-unambiguous", RegexString(re))
		}
		built, ok := BuildDRE(a)
		if !ok {
			t.Fatalf("BuildDRE failed on dRE language %q", RegexString(re))
		}
		if ok, w := Equivalent(a, RegexNFA(built)); !ok {
			t.Fatalf("BuildDRE(%q) = %q wrong, witness %v", RegexString(re), RegexString(built), w)
		}
	}
	if checked < 30 {
		t.Fatalf("too few deterministic random regexes: %d", checked)
	}
}

// TestBuildDRERandom: on arbitrary random regexes, whenever BuildDRE
// succeeds the result must be a deterministic regex for the same language.
func TestBuildDRERandom(t *testing.T) {
	r := rand.New(rand.NewSource(555))
	yes := 0
	for trial := 0; trial < 250; trial++ {
		re := randomRegex(r, 3)
		a := RegexNFA(re)
		built, ok := BuildDRE(a)
		if !ok {
			continue
		}
		yes++
		if det, _ := RegexDeterministic(built); !det {
			t.Fatalf("BuildDRE(%q) = %q not deterministic", RegexString(re), RegexString(built))
		}
		if ok, w := Equivalent(a, RegexNFA(built)); !ok {
			t.Fatalf("BuildDRE(%q) = %q wrong, witness %v", RegexString(re), RegexString(built), w)
		}
	}
	if yes == 0 {
		t.Fatal("BuildDRE never succeeded on random regexes")
	}
}

// TestProposition36Item4 reproduces the succinctness language of
// Proposition 3.6(4): {(a+b)^m b (a+b)^n : m ≤ n} for small m, n — the
// language of w b w' with |w| ≤ |w'|... the concrete instance used by the
// paper is one-unambiguous; here we check our decision on its small
// members m=1, n=1: (a|b) b (a|b).
func TestProposition36Item4(t *testing.T) {
	// (a|b) b (a|b): fixed-length; one-unambiguous? Fixed-length languages
	// over a 2-symbol alphabet with a forced middle b: the minimal DFA is a
	// DAG. The BKW test must at least terminate and BuildDRE must verify.
	a := RegexNFA(MustParseRegex("(a|b) b (a|b)"))
	if OneUnambiguous(a) {
		if re, ok := BuildDRE(a); ok {
			if okEq, w := Equivalent(a, RegexNFA(re)); !okEq {
				t.Fatalf("BuildDRE wrong, witness %v", w)
			}
		}
	}
}

func TestConcatCanLoseOneUnambiguity(t *testing.T) {
	// Proposition 3.6(5): one-unambiguous languages are not closed under
	// concatenation. (a|b)* and a(a|b) are both one-unambiguous
	// ((a|b)* a (a|b) restricted appropriately)… the classical witness:
	// L1 = (a|b)*, L2 = a (a|b): L1·L2 = (a|b)* a (a|b) is NOT
	// one-unambiguous although L2 is fixed-length and L1 is universal.
	l1 := RegexNFA(MustParseRegex("(a|b)*"))
	l2 := RegexNFA(MustParseRegex("a (a|b)"))
	if !OneUnambiguous(l1) {
		t.Fatal("(a|b)* should be one-unambiguous")
	}
	if !OneUnambiguous(l2) {
		t.Fatal("a(a|b) should be one-unambiguous")
	}
	if OneUnambiguous(Concat(l1, l2)) {
		t.Fatal("(a|b)* a (a|b) should not be one-unambiguous")
	}
}

func TestSCC(t *testing.T) {
	d := NewDFA()
	q1 := d.AddState(false)
	q2 := d.AddState(true)
	d.SetTransition(0, "a", q1)
	d.SetTransition(q1, "b", 0)
	d.SetTransition(q1, "c", q2)
	d.SetTransition(q2, "d", q2)
	comp := sccOf(d)
	if comp[0] != comp[q1] {
		t.Error("0 and q1 should share an SCC")
	}
	if comp[0] == comp[q2] {
		t.Error("q2 should be its own SCC")
	}
}
