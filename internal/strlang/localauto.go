package strlang

// This file implements the delimited-state analysis of Section 6 of the
// paper: the sets Ini(A, w) and Fin(A, w) of states that delimit a string w
// in A, their generalization to boxes (Section 7), and the local automata
// A(qi, qf) induced from A by a pair of states.

// stepAll advances the ε-closed set cur by sym and re-closes.
func stepAllClosed(a *NFA, cur IntSet, sym Symbol) IntSet {
	return a.Step(cur, sym)
}

// allStatesClosed returns the set of all states (which is trivially
// ε-closed).
func allStatesClosed(a *NFA) IntSet {
	s := NewIntSet()
	for q := 0; q < a.NumStates(); q++ {
		s.Add(q)
	}
	return s
}

// Fin returns Fin(A, w) = {qf : ∃qi, (qi, w, qf) ∈ Δ*}: the states in which
// a run over w, started anywhere, may end (with ε-moves allowed before,
// between and after the symbols of w). For w = ε it is the set of all
// states, as in the paper.
func Fin(a *NFA, w []Symbol) IntSet {
	if len(w) == 0 {
		return allStatesClosed(a)
	}
	cur := a.Closure(allStatesClosed(a))
	for _, s := range w {
		cur = stepAllClosed(a, cur, s)
	}
	return cur
}

// Ini returns Ini(A, w) = {qi : ∃qf, (qi, w, qf) ∈ Δ*}: the states from
// which w can be read. For w = ε it is the set of all states.
func Ini(a *NFA, w []Symbol) IntSet {
	if len(w) == 0 {
		return allStatesClosed(a)
	}
	r := a.Reverse()
	cur := r.Closure(allStatesClosed(r))
	for i := len(w) - 1; i >= 0; i-- {
		cur = stepAllClosed(r, cur, w[i])
	}
	return cur
}

// Box is a cartesian product of symbol sets Σ1…Σk (a “box”, §2.1.2): the
// finite language of all strings s1…sk with si ∈ Σi. An empty Box (width 0)
// denotes {ε}.
type Box [][]Symbol

// BoxNFA returns an NFA for the box language.
func BoxNFA(b Box) *NFA {
	a := NewNFA()
	cur := a.Start()
	for _, set := range b {
		next := a.AddState()
		for _, s := range set {
			a.AddTransition(cur, s, next)
		}
		cur = next
	}
	a.MarkFinal(cur)
	return a
}

// FinBox returns Fin(A, B) = {qf : ∃qi, ∃w ∈ [B], (qi, w, qf) ∈ Δ*}.
func FinBox(a *NFA, b Box) IntSet {
	if len(b) == 0 {
		return allStatesClosed(a)
	}
	cur := a.Closure(allStatesClosed(a))
	for _, set := range b {
		next := NewIntSet()
		for _, s := range set {
			next.AddAll(stepAllClosed(a, cur, s))
		}
		cur = next
	}
	return cur
}

// IniBox returns Ini(A, B) = {qi : ∃qf, ∃w ∈ [B], (qi, w, qf) ∈ Δ*}.
func IniBox(a *NFA, b Box) IntSet {
	if len(b) == 0 {
		return allStatesClosed(a)
	}
	r := a.Reverse()
	cur := r.Closure(allStatesClosed(r))
	for i := len(b) - 1; i >= 0; i-- {
		next := NewIntSet()
		for _, s := range b[i] {
			next.AddAll(stepAllClosed(r, cur, s))
		}
		cur = next
	}
	return cur
}

// LocalAutomaton returns the local automaton A(qi, qf) induced from A by qi
// and qf (Section 6): the portion of A on paths from qi to qf, with initial
// state qi and single final state qf. The boolean result is false when qf
// is not reachable from qi, in which case the local automaton is “illegal”
// (its language is empty) and a nil automaton is returned.
//
// When qi = qf the automaton accepts at least ε.
func LocalAutomaton(a *NFA, qi, qf int) (*NFA, bool) {
	fwd := a.Reach(qi)
	if !fwd.Has(qf) {
		return nil, false
	}
	bwd := a.coReachable(NewIntSet(qf))
	keep := fwd.Intersect(bwd)
	// Build the sub-automaton on keep, remapping states.
	old2new := make(map[int]int, keep.Len())
	out := &NFA{final: NewIntSet()}
	for _, q := range keep.Sorted() {
		old2new[q] = out.AddState()
	}
	out.SetStart(old2new[qi])
	out.MarkFinal(old2new[qf])
	for q := range keep.All() {
		nq := old2new[q]
		row := &a.trans[q]
		for si, sid := range row.syms {
			for _, t := range row.ts[si] {
				if nt, ok := old2new[int(t)]; ok {
					out.AddTransitionID(nq, sid, nt)
				}
			}
		}
		for _, t := range a.eps[q] {
			if nt, ok := old2new[int(t)]; ok {
				out.AddEps(nq, nt)
			}
		}
	}
	return out, true
}
