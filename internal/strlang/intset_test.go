package strlang

import (
	"math/rand"
	"slices"
	"testing"
)

// randomSet draws a set whose elements span [0, span); density controls
// how full it is, exercising the empty/sparse/dense regimes of the bitset.
func randomSet(r *rand.Rand, span int, density float64) IntSet {
	s := NewIntSet()
	for e := 0; e < span; e++ {
		if r.Float64() < density {
			s.Add(e)
		}
	}
	return s
}

func setConfigs() []struct {
	span    int
	density float64
} {
	return []struct {
		span    int
		density float64
	}{
		{0, 0},      // empty
		{5, 0.5},    // single word
		{64, 0.02},  // sparse, word boundary
		{65, 0.9},   // dense, crosses a word boundary
		{300, 0.01}, // sparse, many words
		{300, 0.7},  // dense, many words
		{1000, 0.5},
	}
}

func TestIntSetBasics(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, cfg := range setConfigs() {
		s := randomSet(r, cfg.span, cfg.density)
		elems := s.Sorted()
		if len(elems) != s.Len() {
			t.Fatalf("span=%d: Len=%d but %d sorted elems", cfg.span, s.Len(), len(elems))
		}
		if !slices.IsSorted(elems) {
			t.Fatalf("span=%d: Sorted not sorted: %v", cfg.span, elems)
		}
		for _, e := range elems {
			if !s.Has(e) {
				t.Fatalf("span=%d: Sorted element %d not in set", cfg.span, e)
			}
		}
		// All() agrees with Sorted().
		var iterated []int
		for e := range s.All() {
			iterated = append(iterated, e)
		}
		if !slices.Equal(iterated, elems) {
			t.Fatalf("span=%d: All()=%v != Sorted()=%v", cfg.span, iterated, elems)
		}
		// Remove every element; the set must end empty.
		c := s.Copy()
		for _, e := range elems {
			c.Remove(e)
		}
		if c.Len() != 0 || len(c.Sorted()) != 0 {
			t.Fatalf("span=%d: Remove left %v", cfg.span, c.Sorted())
		}
		if s.Len() != len(elems) {
			t.Fatalf("span=%d: Copy is shallow", cfg.span)
		}
		// Membership beyond the allocated words is simply false.
		if s.Has(cfg.span + 100000) {
			t.Fatalf("span=%d: Has far beyond range", cfg.span)
		}
	}
}

// TestIntSetLaws checks the algebraic laws of union, intersection and
// subset against a reference map implementation.
func TestIntSetLaws(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		cfgs := setConfigs()
		a := randomSet(r, cfgs[r.Intn(len(cfgs))].span, r.Float64())
		b := randomSet(r, cfgs[r.Intn(len(cfgs))].span, r.Float64())

		ref := map[int]bool{}
		for _, e := range a.Sorted() {
			ref[e] = true
		}
		for _, e := range b.Sorted() {
			ref[e] = true
		}
		u := a.Copy()
		u.AddAll(b)
		if u.Len() != len(ref) {
			t.Fatalf("union size %d, want %d", u.Len(), len(ref))
		}
		for e := range ref {
			if !u.Has(e) {
				t.Fatalf("union missing %d", e)
			}
		}

		inter := a.Intersect(b)
		for _, e := range inter.Sorted() {
			if !a.Has(e) || !b.Has(e) {
				t.Fatalf("intersect has stray %d", e)
			}
		}
		wantInter := 0
		for _, e := range a.Sorted() {
			if b.Has(e) {
				wantInter++
			}
		}
		if inter.Len() != wantInter {
			t.Fatalf("intersect size %d, want %d", inter.Len(), wantInter)
		}
		if a.Intersects(b) != (wantInter > 0) {
			t.Fatalf("Intersects=%v but |a∩b|=%d", a.Intersects(b), wantInter)
		}

		// Subset laws: a∩b ⊆ a ⊆ a∪b; equal sets are mutual subsets.
		if !inter.SubsetOf(a) || !inter.SubsetOf(b) {
			t.Fatal("a∩b not a subset of a and b")
		}
		if !a.SubsetOf(u) || !b.SubsetOf(u) {
			t.Fatal("a,b not subsets of a∪b")
		}
		if a.SubsetOf(b) && b.SubsetOf(a) && !a.Equal(b) {
			t.Fatal("mutual subsets must be equal")
		}
		if !a.Equal(a.Copy()) {
			t.Fatal("a != Copy(a)")
		}
	}
}

// TestIntSetKeyCollisionFree checks that Key() is canonical: equal keys
// iff equal sets, regardless of the internal word-slice length (e.g. after
// removals shrink the populated range).
func TestIntSetKeyCollisionFree(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	byKey := map[string]IntSet{}
	for trial := 0; trial < 500; trial++ {
		cfgs := setConfigs()
		cfg := cfgs[r.Intn(len(cfgs))]
		s := randomSet(r, cfg.span, r.Float64()*0.2)
		if prev, ok := byKey[s.Key()]; ok {
			if !prev.Equal(s) {
				t.Fatalf("key collision: %v vs %v", prev.Sorted(), s.Sorted())
			}
		} else {
			byKey[s.Key()] = s
		}
	}
	// Trailing-zero canonicalization: growing then removing high elements
	// must restore the original key.
	s := NewIntSet(1, 2, 3)
	k := s.Key()
	s.Add(900)
	if s.Key() == k {
		t.Fatal("key ignores element 900")
	}
	s.Remove(900)
	if s.Key() != k {
		t.Fatalf("key not canonical after high-element removal")
	}
	if NewIntSet().Key() != "" {
		t.Fatalf("empty set key = %q, want empty", NewIntSet().Key())
	}
}

// TestClearAndSetTo pins the laws of the scratch-arena primitives: Clear
// empties in place, SetTo makes the receiver equal to its argument, and
// neither mutates the argument or allocates once capacity is grown.
func TestClearAndSetTo(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for _, cfg := range setConfigs() {
		s := randomSet(r, cfg.span, cfg.density)
		u := randomSet(r, cfg.span, cfg.density)
		uBefore := u.Copy()

		dst := s.Copy()
		dst.Clear()
		if dst.Len() != 0 {
			t.Fatalf("span=%d: Clear left %d elements", cfg.span, dst.Len())
		}
		if !dst.Equal(NewIntSet()) {
			t.Fatalf("span=%d: cleared set not equal to empty", cfg.span)
		}
		// Refilling a cleared set behaves like a fresh one.
		dst.AddAll(u)
		if !dst.Equal(u) {
			t.Fatalf("span=%d: refill after Clear diverges", cfg.span)
		}

		dst = s.Copy()
		dst.SetTo(u)
		if !dst.Equal(u) || dst.Len() != u.Len() {
			t.Fatalf("span=%d: SetTo result differs from argument", cfg.span)
		}
		if !u.Equal(uBefore) {
			t.Fatalf("span=%d: SetTo mutated its argument", cfg.span)
		}
		// Mutating the copy must not leak into the source.
		dst.Add(cfg.span + 1)
		if u.Has(cfg.span + 1) {
			t.Fatalf("span=%d: SetTo shares storage with its argument", cfg.span)
		}
	}
}

// TestStepIDIntoAgreesWithStepID pins the in-place step against the
// allocating one, including accumulation over several symbols.
func TestStepIDIntoAgreesWithStepID(t *testing.T) {
	a := RegexNFA(MustParseRegex("(a, b)* , (a | c)"))
	syms := []Symbol{"a", "b", "c"}
	cur := a.Closure(NewIntSet(a.Start()))
	dst := NewIntSet()
	for round := 0; round < 4; round++ {
		for _, lone := range syms {
			want := a.Step(cur, lone)
			dst.Clear()
			a.StepIDInto(dst, cur, Intern(lone))
			if !dst.Equal(want) {
				t.Fatalf("round %d: StepIDInto(%s) = %v, StepID = %v",
					round, lone, dst.Sorted(), want.Sorted())
			}
		}
		// Accumulated union over the whole alphabet.
		want := NewIntSet()
		dst.Clear()
		for _, s := range syms {
			want.AddAll(a.Step(cur, s))
			a.StepIDInto(dst, cur, Intern(s))
		}
		if !dst.Equal(want) {
			t.Fatalf("round %d: accumulated StepIDInto diverges", round)
		}
		cur = a.Step(cur, syms[round%len(syms)])
	}
}
