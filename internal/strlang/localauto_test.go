package strlang

import "testing"

// lineNFA builds the automaton q0 -a-> q1 -b-> q2 (final q2).
func lineNFA() *NFA {
	a := NewNFA()
	q1 := a.AddState()
	q2 := a.AddState()
	a.AddTransition(0, "a", q1)
	a.AddTransition(q1, "b", q2)
	a.MarkFinal(q2)
	return a
}

func TestIniFin(t *testing.T) {
	a := lineNFA()
	// Fin(A, a) = {q1}; Ini(A, a) = {q0}.
	if got := Fin(a, str("a")); !got.Equal(NewIntSet(1)) {
		t.Errorf("Fin(A,a) = %v", got.Sorted())
	}
	if got := Ini(a, str("a")); !got.Equal(NewIntSet(0)) {
		t.Errorf("Ini(A,a) = %v", got.Sorted())
	}
	// For ε both are all states (paper convention).
	if got := Fin(a, nil); got.Len() != a.NumStates() {
		t.Errorf("Fin(A,ε) = %v", got.Sorted())
	}
	if got := Ini(a, nil); got.Len() != a.NumStates() {
		t.Errorf("Ini(A,ε) = %v", got.Sorted())
	}
	// Fin(A, ab) = {q2}, Ini(A, ab) = {q0}; Fin(A, ba) = ∅.
	if got := Fin(a, str("ab")); !got.Equal(NewIntSet(2)) {
		t.Errorf("Fin(A,ab) = %v", got.Sorted())
	}
	if got := Fin(a, str("ba")); got.Len() != 0 {
		t.Errorf("Fin(A,ba) = %v", got.Sorted())
	}
}

func TestIniFinWithEps(t *testing.T) {
	// q0 -ε-> q1 -a-> q2 -ε-> q3(final): reading "a" from q0 must work.
	a := NewNFA()
	q1, q2, q3 := a.AddState(), a.AddState(), a.AddState()
	a.AddEps(0, q1)
	a.AddTransition(q1, "a", q2)
	a.AddEps(q2, q3)
	a.MarkFinal(q3)
	ini := Ini(a, str("a"))
	if !ini.Has(0) || !ini.Has(q1) {
		t.Errorf("Ini(A,a) = %v, want ⊇ {0,1}", ini.Sorted())
	}
	fin := Fin(a, str("a"))
	if !fin.Has(q2) || !fin.Has(q3) {
		t.Errorf("Fin(A,a) = %v, want ⊇ {2,3}", fin.Sorted())
	}
}

func TestLocalAutomaton(t *testing.T) {
	// Automaton for a*bc*: 0 -a-> 0, 0 -b-> 1, 1 -c-> 1, final 1.
	a := NewNFA()
	q1 := a.AddState()
	a.AddTransition(0, "a", 0)
	a.AddTransition(0, "b", q1)
	a.AddTransition(q1, "c", q1)
	a.MarkFinal(q1)

	la, ok := LocalAutomaton(a, 0, 0)
	if !ok {
		t.Fatal("A(0,0) should exist")
	}
	// A(0,0) = a*.
	if okEq, w := Equivalent(la, RegexNFA(MustParseRegex("a*"))); !okEq {
		t.Errorf("A(0,0) wrong, witness %v", w)
	}
	la, ok = LocalAutomaton(a, 0, q1)
	if !ok {
		t.Fatal("A(0,1) should exist")
	}
	if okEq, w := Equivalent(la, RegexNFA(MustParseRegex("a* b c*"))); !okEq {
		t.Errorf("A(0,1) wrong, witness %v", w)
	}
	if _, ok := LocalAutomaton(a, q1, 0); ok {
		t.Error("A(1,0) should be illegal (no path)")
	}
	// A(q,q) accepts at least ε.
	la, _ = LocalAutomaton(a, q1, q1)
	if !la.AcceptsEps() {
		t.Error("A(1,1) should accept ε")
	}
}

func TestBoxNFAAndIniFinBox(t *testing.T) {
	b := Box{{"a", "b"}, {"c"}}
	nfa := BoxNFA(b)
	for _, c := range []struct {
		w    string
		want bool
	}{{"ac", true}, {"bc", true}, {"ab", false}, {"c", false}, {"", false}} {
		if got := nfa.Accepts(str(c.w)); got != c.want {
			t.Errorf("box on %q = %v want %v", c.w, got, c.want)
		}
	}
	a := lineNFA()
	// Box {a}{b} behaves like the string ab.
	finBox := FinBox(a, Box{{"a"}, {"b"}})
	if !finBox.Equal(Fin(a, str("ab"))) {
		t.Errorf("FinBox mismatch: %v", finBox.Sorted())
	}
	iniBox := IniBox(a, Box{{"a"}, {"b"}})
	if !iniBox.Equal(Ini(a, str("ab"))) {
		t.Errorf("IniBox mismatch: %v", iniBox.Sorted())
	}
	// Box {a,b} from line automaton: Fin = {q1} ∪ ∅ (b undefined at 0).
	finSet := FinBox(a, Box{{"a", "b"}})
	if !finSet.Has(1) || !finSet.Has(2) {
		// b can be read from q1 → q2, a from q0 → q1.
		t.Errorf("FinBox({a,b}) = %v, want {1,2}", finSet.Sorted())
	}
}
