package strlang

import (
	"strings"
	"testing"
)

// Substrate benchmarks: the automata operations underlying every decision
// procedure of the paper.

func benchNFA(expr string) *NFA { return RegexNFA(MustParseRegex(expr)) }

func BenchmarkDeterminize(b *testing.B) {
	a := benchNFA("(a|b)* a (a|b) (a|b) (a|b)")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Determinize()
	}
}

func BenchmarkMinimize(b *testing.B) {
	d := benchNFA("(a|b)* a (a|b) (a|b) (a|b)").Determinize()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Minimize()
	}
}

func BenchmarkEquivalence(b *testing.B) {
	x := benchNFA("(a b)* (a b)* a?")
	y := benchNFA("(a b)* a | (a b)*")
	for i := 0; i < b.N; i++ {
		if ok, _ := Equivalent(x, y); !ok {
			b.Fatal("should be equivalent")
		}
	}
}

func BenchmarkOneUnambiguous(b *testing.B) {
	a := benchNFA("(a|b)* a")
	for i := 0; i < b.N; i++ {
		if !OneUnambiguous(a) {
			b.Fatal("should be one-unambiguous")
		}
	}
}

func BenchmarkBuildDRELarge(b *testing.B) {
	// A one-unambiguous language with a bigger minimal DFA. Note that
	// (abcde)*(abc)? would NOT qualify: at one final state the
	// continuation starts with a, at the other with d, so no uniform
	// restart symbol exists and no dRE does either.
	a := benchNFA("(a b c d e)+ (x | y z)")
	for i := 0; i < b.N; i++ {
		if _, ok := BuildDRE(a); !ok {
			b.Fatal("should succeed")
		}
	}
}

func BenchmarkGlushkov(b *testing.B) {
	src := strings.Repeat("(a|b) ", 20) + "c*"
	re := MustParseRegex(src)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RegexNFA(re)
	}
}

func BenchmarkMembership(b *testing.B) {
	a := benchNFA("((a|b)* c)+")
	w := make([]Symbol, 0, 300)
	for i := 0; i < 100; i++ {
		w = append(w, "a", "b", "c")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !a.Accepts(w) {
			b.Fatal("should accept")
		}
	}
}

func BenchmarkIniFin(b *testing.B) {
	a := benchNFA("(a b c d)* (a b)?")
	w := []Symbol{"a", "b"}
	for i := 0; i < b.N; i++ {
		Ini(a, w)
		Fin(a, w)
	}
}
