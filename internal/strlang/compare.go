package strlang

import "slices"

// IsEmpty reports whether [a] = ∅.
func (a *NFA) IsEmpty() bool {
	return !a.reachableFrom(a.start).Intersects(a.final)
}

// Included reports whether [a] ⊆ [b]. When it does not hold, it returns a
// shortest witness string in [a] − [b] (found by BFS over the product of a
// with the on-the-fly determinization of b).
func Included(a, b *NFA) (bool, []Symbol) {
	ea := a.WithoutEps()
	// Rank symbols by name once, so each BFS node can visit just its own
	// row's symbols while keeping deterministic (lexicographically
	// smallest among shortest) witnesses.
	rank := map[int32]int{}
	for i, sid := range ea.AlphabetIDs() {
		rank[sid] = i
	}
	type node struct {
		p   int    // state of ea
		key string // determinized subset of b
	}
	subsets := map[string]IntSet{}
	intern := func(s IntSet) string {
		k := s.Key()
		if _, ok := subsets[k]; !ok {
			subsets[k] = s
		}
		return k
	}
	start := node{ea.Start(), intern(b.Closure(NewIntSet(b.Start())))}
	type parentEdge struct {
		prev node
		sym  int32
	}
	parents := map[node]parentEdge{}
	seen := map[node]bool{start: true}
	queue := []node{start}
	witness := func(n node) []Symbol {
		var rev []Symbol
		for n != start {
			pe := parents[n]
			rev = append(rev, SymbolName(pe.sym))
			n = pe.prev
		}
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		return rev
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		bs := subsets[cur.key]
		if ea.IsFinal(cur.p) && !bs.Intersects(b.Finals()) {
			return false, witness(cur)
		}
		row := &ea.trans[cur.p]
		edges := make([]int, len(row.syms))
		for i := range row.syms {
			edges[i] = i
		}
		slices.SortFunc(edges, func(x, y int) int {
			return rank[row.syms[x]] - rank[row.syms[y]]
		})
		for _, i := range edges {
			sid := row.syms[i]
			nextB := intern(b.StepID(bs, sid))
			for _, t := range row.ts[i] {
				n := node{int(t), nextB}
				if !seen[n] {
					seen[n] = true
					parents[n] = parentEdge{cur, sid}
					queue = append(queue, n)
				}
			}
		}
	}
	return true, nil
}

// Equivalent reports whether [a] = [b]. When it does not hold it returns a
// witness in the symmetric difference.
func Equivalent(a, b *NFA) (bool, []Symbol) {
	if ok, w := Included(a, b); !ok {
		return false, w
	}
	if ok, w := Included(b, a); !ok {
		return false, w
	}
	return true, nil
}

// Proper reports whether [a] ⊂ [b] (strict inclusion).
func Proper(a, b *NFA) bool {
	if ok, _ := Included(a, b); !ok {
		return false
	}
	ok, _ := Included(b, a)
	return !ok
}
