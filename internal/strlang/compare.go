package strlang

// IsEmpty reports whether [a] = ∅.
func (a *NFA) IsEmpty() bool {
	return !a.reachableFrom(a.start).Intersects(a.final)
}

// Included reports whether [a] ⊆ [b]. When it does not hold, it returns a
// shortest witness string in [a] − [b] (found by BFS over the product of a
// with the on-the-fly determinization of b).
func Included(a, b *NFA) (bool, []Symbol) {
	ea := a.WithoutEps()
	type node struct {
		p   int    // state of ea
		key string // determinized subset of b
	}
	subsets := map[string]IntSet{}
	intern := func(s IntSet) string {
		k := s.Key()
		if _, ok := subsets[k]; !ok {
			subsets[k] = s
		}
		return k
	}
	start := node{ea.Start(), intern(b.Closure(NewIntSet(b.Start())))}
	type parentEdge struct {
		prev node
		sym  Symbol
	}
	parents := map[node]parentEdge{}
	seen := map[node]bool{start: true}
	queue := []node{start}
	witness := func(n node) []Symbol {
		var rev []Symbol
		for n != start {
			pe := parents[n]
			rev = append(rev, pe.sym)
			n = pe.prev
		}
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		return rev
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		bs := subsets[cur.key]
		if ea.IsFinal(cur.p) && !bs.Intersects(b.Finals()) {
			return false, witness(cur)
		}
		m := ea.trans[cur.p]
		syms := make([]Symbol, 0, len(m))
		for s := range m {
			syms = append(syms, s)
		}
		// Sorted for deterministic witnesses.
		sortSymbols(syms)
		for _, s := range syms {
			nextB := intern(b.Step(bs, s))
			for _, t := range m[s] {
				n := node{t, nextB}
				if !seen[n] {
					seen[n] = true
					parents[n] = parentEdge{cur, s}
					queue = append(queue, n)
				}
			}
		}
	}
	return true, nil
}

func sortSymbols(s []Symbol) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Equivalent reports whether [a] = [b]. When it does not hold it returns a
// witness in the symmetric difference.
func Equivalent(a, b *NFA) (bool, []Symbol) {
	if ok, w := Included(a, b); !ok {
		return false, w
	}
	if ok, w := Included(b, a); !ok {
		return false, w
	}
	return true, nil
}

// Proper reports whether [a] ⊂ [b] (strict inclusion).
func Proper(a, b *NFA) bool {
	if ok, _ := Included(a, b); !ok {
		return false
	}
	ok, _ := Included(b, a)
	return !ok
}
