package strlang

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

// Symbol is an element of a finite alphabet. The empty string is reserved
// for ε and is never a valid symbol.
type Symbol = string

// nfaRow is a state's transition table: parallel slices sorted by interned
// symbol id. Rows cost memory proportional to the state's actual
// out-degree (global interner ids can be sparse within one automaton), and
// lookups are a binary search over a handful of int32s — no string
// hashing.
type nfaRow struct {
	syms []int32   // sorted distinct symbol ids
	ts   [][]int32 // parallel sorted target lists
}

// get returns the target list for sid, or nil.
func (r *nfaRow) get(sid int32) []int32 {
	if i, ok := slices.BinarySearch(r.syms, sid); ok {
		return r.ts[i]
	}
	return nil
}

// add inserts the edge (sid, to), reporting whether sid is new to this row.
func (r *nfaRow) add(sid, to int32) (newSym bool) {
	i, ok := slices.BinarySearch(r.syms, sid)
	if !ok {
		r.syms = slices.Insert(r.syms, i, sid)
		r.ts = slices.Insert(r.ts, i, []int32{to})
		return true
	}
	r.ts[i], _ = insertSorted(r.ts[i], to)
	return false
}

// clone returns a deep copy of r with targets shifted by off.
func (r *nfaRow) clone(off int32) nfaRow {
	out := nfaRow{syms: slices.Clone(r.syms), ts: make([][]int32, len(r.ts))}
	for i, ts := range r.ts {
		shifted := make([]int32, len(ts))
		for j, t := range ts {
			shifted[j] = t + off
		}
		out.ts[i] = shifted
	}
	return out
}

// NFA is a nondeterministic finite automaton with ε-transitions
// A = ⟨K, Σ, Δ, qs, F⟩ (Section 2.1.2 of the paper). States are the
// integers 0..NumStates()-1; the alphabet is implicit (the set of symbols
// appearing on transitions).
//
// Transitions are keyed by interned symbol ids (see Interner) in compact
// per-state rows; target lists are kept sorted and duplicate-free by
// binary-search insertion. The per-state ε-closures and the sorted
// alphabet are computed once and cached until the next mutation.
type NFA struct {
	start int
	final IntSet
	// trans[q] holds the symbol successors of q.
	trans []nfaRow
	// eps[q] lists the ε-successors of q, sorted ascending.
	eps [][]int32

	// alpha caches the symbol ids present on transitions, sorted by
	// symbol name; nil means dirty.
	alpha []int32
	// clos caches the per-state ε-closures; nil means dirty.
	clos []IntSet
}

// NewNFA returns an automaton with a single non-final start state and no
// transitions; it recognizes the empty language.
func NewNFA() *NFA {
	a := &NFA{final: NewIntSet()}
	a.AddState()
	return a
}

// AddState adds a fresh state and returns its id.
func (a *NFA) AddState() int {
	a.trans = append(a.trans, nfaRow{})
	a.eps = append(a.eps, nil)
	if a.clos != nil {
		// A fresh state has no ε-edges: its closure is itself.
		a.clos = append(a.clos, NewIntSet(len(a.trans)-1))
	}
	return len(a.trans) - 1
}

// NumStates returns the number of states of a.
func (a *NFA) NumStates() int { return len(a.trans) }

// Start returns the start state of a.
func (a *NFA) Start() int { return a.start }

// SetStart makes q the start state.
func (a *NFA) SetStart(q int) { a.start = q }

// MarkFinal makes q a final state.
func (a *NFA) MarkFinal(q int) { a.final.Add(q) }

// ClearFinal makes q non-final.
func (a *NFA) ClearFinal(q int) { a.final.Remove(q) }

// IsFinal reports whether q is final.
func (a *NFA) IsFinal(q int) bool { return a.final.Has(q) }

// Finals returns the set of final states (shared; do not mutate).
func (a *NFA) Finals() IntSet { return a.final }

// insertSorted inserts v into the sorted list if absent, reporting whether
// it was inserted. Constructions mostly add targets in increasing order,
// so the common case is an O(log n) search plus an append at the tail.
func insertSorted(list []int32, v int32) ([]int32, bool) {
	i, found := slices.BinarySearch(list, v)
	if found {
		return list, false
	}
	return slices.Insert(list, i, v), true
}

// AddTransition adds the transition (from, sym, to). sym must be non-empty;
// use AddEps for ε-transitions.
func (a *NFA) AddTransition(from int, sym Symbol, to int) {
	if sym == "" {
		panic("strlang: empty symbol in AddTransition; use AddEps")
	}
	a.AddTransitionID(from, Intern(sym), to)
}

// AddTransitionID adds the transition (from, sid, to) by interned symbol id.
func (a *NFA) AddTransitionID(from int, sid int32, to int) {
	if a.trans[from].add(sid, int32(to)) {
		a.alpha = nil // a symbol may have appeared for the first time
	}
}

// AddEps adds the ε-transition (from, ε, to).
func (a *NFA) AddEps(from, to int) {
	list, inserted := insertSorted(a.eps[from], int32(to))
	if inserted {
		a.clos = nil
	}
	a.eps[from] = list
}

// EpsSucc returns the ε-successors of q (shared slice; do not mutate).
func (a *NFA) EpsSucc(q int) []int32 { return a.eps[q] }

// Succ returns the sym-successors of q (shared slice; do not mutate).
func (a *NFA) Succ(q int, sym Symbol) []int32 {
	sid, ok := LookupSymID(sym)
	if !ok {
		return nil
	}
	return a.trans[q].get(sid)
}

// SuccID returns the successors of q by interned symbol id (shared slice;
// do not mutate).
func (a *NFA) SuccID(q int, sid int32) []int32 {
	return a.trans[q].get(sid)
}

// AlphabetIDs returns the interned ids of the symbols appearing on
// transitions, sorted by symbol name (shared slice; do not mutate).
func (a *NFA) AlphabetIDs() []int32 {
	if a.alpha == nil {
		a.alpha = collectAlphabet(func(yield func(int32)) {
			for q := range a.trans {
				for _, sid := range a.trans[q].syms {
					yield(sid)
				}
			}
		})
	}
	return a.alpha
}

// collectAlphabet gathers distinct symbol ids from the given enumerator
// and sorts them by symbol name, so iteration orders (and therefore
// deterministic outputs like witnesses and renderings) match the old
// string-sorted behavior.
func collectAlphabet(enum func(yield func(int32))) []int32 {
	var seen Bits
	var ids []int32
	enum(func(sid int32) {
		if !seen.Has(int(sid)) {
			seen.Add(int(sid))
			ids = append(ids, sid)
		}
	})
	sort.Slice(ids, func(i, j int) bool {
		return SymbolName(ids[i]) < SymbolName(ids[j])
	})
	if ids == nil {
		ids = []int32{}
	}
	return ids
}

// Alphabet returns the sorted set of symbols that appear on transitions.
func (a *NFA) Alphabet() []Symbol {
	ids := a.AlphabetIDs()
	out := make([]Symbol, len(ids))
	for i, id := range ids {
		out[i] = SymbolName(id)
	}
	return out
}

// Clone returns a deep copy of a.
func (a *NFA) Clone() *NFA {
	b := &NFA{
		start: a.start,
		final: a.final.Copy(),
		trans: make([]nfaRow, len(a.trans)),
		eps:   make([][]int32, len(a.eps)),
		alpha: a.alpha,
		clos:  slices.Clone(a.clos),
	}
	for q := range a.trans {
		b.trans[q] = a.trans[q].clone(0)
	}
	for q, ts := range a.eps {
		b.eps[q] = slices.Clone(ts)
	}
	return b
}

// Graft copies src's states, transitions and ε-edges into a, returning the
// state offset of the copy. Finality and start state of src are not
// copied. It is the fast path for the many glue constructions that stitch
// automata together (union, concatenation, Ω-gluing, relabelings).
func (a *NFA) Graft(src *NFA) int {
	off := len(a.trans)
	for q := range src.trans {
		a.trans = append(a.trans, src.trans[q].clone(int32(off)))
		var eps []int32
		if ts := src.eps[q]; len(ts) > 0 {
			eps = make([]int32, len(ts))
			for i, t := range ts {
				eps[i] = t + int32(off)
			}
		}
		a.eps = append(a.eps, eps)
	}
	a.alpha = nil
	a.clos = nil
	return off
}

// ensureClosures computes the per-state ε-closures once; every Step and
// Closure afterwards is pure bitset unions.
func (a *NFA) ensureClosures() {
	if a.clos != nil {
		return
	}
	n := len(a.trans)
	clos := make([]IntSet, n)
	var stack []int32
	for q := 0; q < n; q++ {
		c := NewIntSet(q)
		if len(a.eps[q]) > 0 {
			stack = append(stack[:0], int32(q))
			for len(stack) > 0 {
				p := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, t := range a.eps[p] {
					if !c.Has(int(t)) {
						c.Add(int(t))
						stack = append(stack, t)
					}
				}
			}
		}
		clos[q] = c
	}
	a.clos = clos
}

// Closure returns the ε-closure of the given set of states.
func (a *NFA) Closure(states IntSet) IntSet {
	a.ensureClosures()
	out := NewIntSet()
	for q := range states.All() {
		out.AddAll(a.clos[q])
	}
	return out
}

// ClosureOf returns the cached ε-closure of a single state (shared; do not
// mutate).
func (a *NFA) ClosureOf(q int) IntSet {
	a.ensureClosures()
	return a.clos[q]
}

// Step returns the ε-closed set reached from the ε-closed set cur by
// reading sym.
func (a *NFA) Step(cur IntSet, sym Symbol) IntSet {
	sid, ok := LookupSymID(sym)
	if !ok {
		return NewIntSet()
	}
	return a.StepID(cur, sid)
}

// StepID is Step by interned symbol id.
func (a *NFA) StepID(cur IntSet, sid int32) IntSet {
	next := NewIntSet()
	a.StepIDInto(next, cur, sid)
	return next
}

// StepIDInto unions into dst the ε-closed set reached from the ε-closed
// set cur by reading the symbol with interned id sid. dst is not cleared
// first, so callers can accumulate the steps of several symbols into one
// set; dst and cur must not alias. This is the allocation-free core of
// StepID: reusing dst across steps keeps the general-EDTD streaming slow
// path off the heap.
func (a *NFA) StepIDInto(dst, cur IntSet, sid int32) {
	a.ensureClosures()
	for q := range cur.All() {
		for _, t := range a.trans[q].get(sid) {
			dst.AddAll(a.clos[t])
		}
	}
}

// Run returns the ε-closed set of states reachable from the start state by
// reading w.
func (a *NFA) Run(w []Symbol) IntSet {
	cur := a.Closure(NewIntSet(a.start))
	for _, s := range w {
		cur = a.Step(cur, s)
		if cur.Len() == 0 {
			return cur
		}
	}
	return cur
}

// Accepts reports whether a accepts w.
func (a *NFA) Accepts(w []Symbol) bool {
	return a.Run(w).Intersects(a.final)
}

// AcceptsEps reports whether a accepts the empty string.
func (a *NFA) AcceptsEps() bool { return a.Accepts(nil) }

// reachableFrom returns the states reachable from the given seeds
// (following both symbol and ε edges, reflexively).
func (a *NFA) reachableFrom(seeds ...int) IntSet {
	seen := NewIntSet(seeds...)
	stack := make([]int32, 0, len(seeds))
	for _, s := range seeds {
		stack = append(stack, int32(s))
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		visit := func(t int32) {
			if !seen.Has(int(t)) {
				seen.Add(int(t))
				stack = append(stack, t)
			}
		}
		for _, t := range a.eps[q] {
			visit(t)
		}
		for _, ts := range a.trans[q].ts {
			for _, t := range ts {
				visit(t)
			}
		}
	}
	return seen
}

// Reach returns the set of states reachable from q (reflexively), following
// both symbol and ε edges.
func (a *NFA) Reach(q int) IntSet { return a.reachableFrom(q) }

// Reverse returns the automaton with all edges reversed. The start/final
// designations of the result are not meaningful; it is a helper for
// co-reachability computations.
func (a *NFA) Reverse() *NFA {
	b := &NFA{final: NewIntSet()}
	b.trans = make([]nfaRow, len(a.trans))
	b.eps = make([][]int32, len(a.eps))
	for q := range a.trans {
		row := &a.trans[q]
		for i, sid := range row.syms {
			for _, t := range row.ts[i] {
				b.trans[t].add(sid, int32(q))
			}
		}
	}
	for q, ts := range a.eps {
		for _, t := range ts {
			b.eps[t] = append(b.eps[t], int32(q))
		}
	}
	return b
}

// coReachable returns the states from which some state in targets is
// reachable (reflexively).
func (a *NFA) coReachable(targets IntSet) IntSet {
	return a.Reverse().reachableFrom(targets.Sorted()...)
}

// Trim returns an equivalent automaton containing only useful states
// (reachable from the start and co-reachable to a final state). The start
// state is always kept, so the result of trimming an empty-language
// automaton is a single-state automaton with no finals. The second result
// maps old state ids to new ones (-1 for dropped states).
func (a *NFA) Trim() (*NFA, []int) {
	fwd := a.reachableFrom(a.start)
	bwd := a.coReachable(a.final)
	keep := fwd.Intersect(bwd)
	keep.Add(a.start)
	old2new := make([]int, a.NumStates())
	for i := range old2new {
		old2new[i] = -1
	}
	b := &NFA{final: NewIntSet()}
	for q := range keep.All() {
		old2new[q] = b.AddState()
	}
	b.start = old2new[a.start]
	for q := range keep.All() {
		nq := old2new[q]
		if a.final.Has(q) {
			b.MarkFinal(nq)
		}
		row := &a.trans[q]
		for i, sid := range row.syms {
			for _, t := range row.ts[i] {
				if nt := old2new[t]; nt >= 0 {
					b.AddTransitionID(nq, sid, nt)
				}
			}
		}
		for _, t := range a.eps[q] {
			if nt := old2new[t]; nt >= 0 {
				b.AddEps(nq, nt)
			}
		}
	}
	return b, old2new
}

// WithoutEps returns an equivalent automaton with no ε-transitions and the
// same state ids: each state gains the symbol transitions of its ε-closure,
// and is final if its ε-closure meets a final state.
func (a *NFA) WithoutEps() *NFA {
	a.ensureClosures()
	b := &NFA{start: a.start, final: NewIntSet()}
	b.trans = make([]nfaRow, len(a.trans))
	b.eps = make([][]int32, len(a.eps))
	for q := range a.trans {
		cl := a.clos[q]
		if cl.Intersects(a.final) {
			b.MarkFinal(q)
		}
		for p := range cl.All() {
			row := &a.trans[p]
			for i, sid := range row.syms {
				for _, t := range row.ts[i] {
					b.AddTransitionID(q, sid, int(t))
				}
			}
		}
	}
	return b
}

// UsefulSymbols returns the sorted symbols that occur in some accepted
// string ("the alphabet of the language", used by dual(τ) in Def. 4).
func (a *NFA) UsefulSymbols() []Symbol {
	t, _ := a.Trim()
	return t.Alphabet()
}

// EachTransition calls f for every transition (from, sym, to), with from
// ascending, symbols in name order per state, and targets ascending.
func (a *NFA) EachTransition(f func(from int, sym Symbol, to int)) {
	ids := a.AlphabetIDs()
	for q := range a.trans {
		for _, sid := range ids {
			ts := a.trans[q].get(sid)
			if len(ts) == 0 {
				continue
			}
			name := SymbolName(sid)
			for _, t := range ts {
				f(q, name, int(t))
			}
		}
	}
}

// String renders the automaton in a compact human-readable form for
// debugging and golden tests.
func (a *NFA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "start=%d final=%v\n", a.start, a.final.Sorted())
	ids := a.AlphabetIDs()
	for q := range a.trans {
		for _, sid := range ids {
			ts := a.trans[q].get(sid)
			if len(ts) == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %d -%s-> %v\n", q, SymbolName(sid), ts)
		}
		if len(a.eps[q]) > 0 {
			fmt.Fprintf(&b, "  %d -ε-> %v\n", q, a.eps[q])
		}
	}
	return b.String()
}

// Size returns a size measure for the automaton: states plus transitions.
// It is the ‖·‖ measure used in the paper's Table 2 size rows.
func (a *NFA) Size() int {
	n := a.NumStates()
	for q := range a.trans {
		for _, ts := range a.trans[q].ts {
			n += len(ts)
		}
		n += len(a.eps[q])
	}
	return n
}
