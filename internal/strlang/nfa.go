package strlang

import (
	"fmt"
	"sort"
	"strings"
)

// Symbol is an element of a finite alphabet. The empty string is reserved
// for ε and is never a valid symbol.
type Symbol = string

// NFA is a nondeterministic finite automaton with ε-transitions
// A = ⟨K, Σ, Δ, qs, F⟩ (Section 2.1.2 of the paper). States are the
// integers 0..NumStates()-1; the alphabet is implicit (the set of symbols
// appearing on transitions).
type NFA struct {
	start int
	final IntSet
	// trans[q][a] lists the a-successors of q, for a ≠ ε.
	trans []map[Symbol][]int
	// eps[q] lists the ε-successors of q.
	eps [][]int
}

// NewNFA returns an automaton with a single non-final start state and no
// transitions; it recognizes the empty language.
func NewNFA() *NFA {
	a := &NFA{final: NewIntSet()}
	a.AddState()
	return a
}

// AddState adds a fresh state and returns its id.
func (a *NFA) AddState() int {
	a.trans = append(a.trans, nil)
	a.eps = append(a.eps, nil)
	return len(a.trans) - 1
}

// NumStates returns the number of states of a.
func (a *NFA) NumStates() int { return len(a.trans) }

// Start returns the start state of a.
func (a *NFA) Start() int { return a.start }

// SetStart makes q the start state.
func (a *NFA) SetStart(q int) { a.start = q }

// MarkFinal makes q a final state.
func (a *NFA) MarkFinal(q int) { a.final.Add(q) }

// ClearFinal makes q non-final.
func (a *NFA) ClearFinal(q int) { delete(a.final, q) }

// IsFinal reports whether q is final.
func (a *NFA) IsFinal(q int) bool { return a.final.Has(q) }

// Finals returns the set of final states (shared; do not mutate).
func (a *NFA) Finals() IntSet { return a.final }

// AddTransition adds the transition (from, sym, to). sym must be non-empty;
// use AddEps for ε-transitions.
func (a *NFA) AddTransition(from int, sym Symbol, to int) {
	if sym == "" {
		panic("strlang: empty symbol in AddTransition; use AddEps")
	}
	if a.trans[from] == nil {
		a.trans[from] = make(map[Symbol][]int)
	}
	for _, t := range a.trans[from][sym] {
		if t == to {
			return
		}
	}
	a.trans[from][sym] = append(a.trans[from][sym], to)
}

// AddEps adds the ε-transition (from, ε, to).
func (a *NFA) AddEps(from, to int) {
	for _, t := range a.eps[from] {
		if t == to {
			return
		}
	}
	a.eps[from] = append(a.eps[from], to)
}

// EpsSucc returns the ε-successors of q (shared slice; do not mutate).
func (a *NFA) EpsSucc(q int) []int { return a.eps[q] }

// Succ returns the sym-successors of q (shared slice; do not mutate).
func (a *NFA) Succ(q int, sym Symbol) []int {
	if a.trans[q] == nil {
		return nil
	}
	return a.trans[q][sym]
}

// Alphabet returns the sorted set of symbols that appear on transitions.
func (a *NFA) Alphabet() []Symbol {
	set := map[Symbol]struct{}{}
	for _, m := range a.trans {
		for s := range m {
			set[s] = struct{}{}
		}
	}
	out := make([]Symbol, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of a.
func (a *NFA) Clone() *NFA {
	b := &NFA{
		start: a.start,
		final: a.final.Copy(),
		trans: make([]map[Symbol][]int, len(a.trans)),
		eps:   make([][]int, len(a.eps)),
	}
	for q, m := range a.trans {
		if m == nil {
			continue
		}
		mm := make(map[Symbol][]int, len(m))
		for s, ts := range m {
			mm[s] = append([]int(nil), ts...)
		}
		b.trans[q] = mm
	}
	for q, ts := range a.eps {
		b.eps[q] = append([]int(nil), ts...)
	}
	return b
}

// Closure returns the ε-closure of the given set of states.
func (a *NFA) Closure(states IntSet) IntSet {
	out := states.Copy()
	stack := states.Sorted()
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range a.eps[q] {
			if !out.Has(t) {
				out.Add(t)
				stack = append(stack, t)
			}
		}
	}
	return out
}

// Step returns the ε-closed set reached from the ε-closed set cur by
// reading sym.
func (a *NFA) Step(cur IntSet, sym Symbol) IntSet {
	next := NewIntSet()
	for q := range cur {
		for _, t := range a.Succ(q, sym) {
			next.Add(t)
		}
	}
	return a.Closure(next)
}

// Run returns the ε-closed set of states reachable from the start state by
// reading w.
func (a *NFA) Run(w []Symbol) IntSet {
	cur := a.Closure(NewIntSet(a.start))
	for _, s := range w {
		cur = a.Step(cur, s)
		if cur.Len() == 0 {
			return cur
		}
	}
	return cur
}

// Accepts reports whether a accepts w.
func (a *NFA) Accepts(w []Symbol) bool {
	return a.Run(w).Intersects(a.final)
}

// AcceptsEps reports whether a accepts the empty string.
func (a *NFA) AcceptsEps() bool { return a.Accepts(nil) }

// reachableFrom returns the states reachable from the given seeds
// (following both symbol and ε edges, reflexively).
func (a *NFA) reachableFrom(seeds ...int) IntSet {
	seen := NewIntSet(seeds...)
	stack := append([]int(nil), seeds...)
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		visit := func(t int) {
			if !seen.Has(t) {
				seen.Add(t)
				stack = append(stack, t)
			}
		}
		for _, t := range a.eps[q] {
			visit(t)
		}
		for _, ts := range a.trans[q] {
			for _, t := range ts {
				visit(t)
			}
		}
	}
	return seen
}

// Reach returns the set of states reachable from q (reflexively), following
// both symbol and ε edges.
func (a *NFA) Reach(q int) IntSet { return a.reachableFrom(q) }

// Reverse returns the automaton with all edges reversed. The start/final
// designations of the result are not meaningful; it is a helper for
// co-reachability computations.
func (a *NFA) Reverse() *NFA {
	b := &NFA{final: NewIntSet()}
	b.trans = make([]map[Symbol][]int, len(a.trans))
	b.eps = make([][]int, len(a.eps))
	for q, m := range a.trans {
		for s, ts := range m {
			for _, t := range ts {
				if b.trans[t] == nil {
					b.trans[t] = make(map[Symbol][]int)
				}
				b.trans[t][s] = append(b.trans[t][s], q)
			}
		}
	}
	for q, ts := range a.eps {
		for _, t := range ts {
			b.eps[t] = append(b.eps[t], q)
		}
	}
	return b
}

// coReachable returns the states from which some state in targets is
// reachable (reflexively).
func (a *NFA) coReachable(targets IntSet) IntSet {
	return a.Reverse().reachableFrom(targets.Sorted()...)
}

// Trim returns an equivalent automaton containing only useful states
// (reachable from the start and co-reachable to a final state). The start
// state is always kept, so the result of trimming an empty-language
// automaton is a single-state automaton with no finals. The second result
// maps old state ids to new ones (-1 for dropped states).
func (a *NFA) Trim() (*NFA, []int) {
	fwd := a.reachableFrom(a.start)
	bwd := a.coReachable(a.final)
	keep := fwd.Intersect(bwd)
	keep.Add(a.start)
	old2new := make([]int, a.NumStates())
	for i := range old2new {
		old2new[i] = -1
	}
	b := &NFA{final: NewIntSet()}
	for _, q := range keep.Sorted() {
		old2new[q] = b.AddState()
	}
	b.start = old2new[a.start]
	for q := range keep {
		nq := old2new[q]
		if a.final.Has(q) {
			b.MarkFinal(nq)
		}
		for s, ts := range a.trans[q] {
			for _, t := range ts {
				if nt := old2new[t]; nt >= 0 {
					b.AddTransition(nq, s, nt)
				}
			}
		}
		for _, t := range a.eps[q] {
			if nt := old2new[t]; nt >= 0 {
				b.AddEps(nq, nt)
			}
		}
	}
	return b, old2new
}

// WithoutEps returns an equivalent automaton with no ε-transitions and the
// same state ids: each state gains the symbol transitions of its ε-closure,
// and is final if its ε-closure meets a final state.
func (a *NFA) WithoutEps() *NFA {
	b := &NFA{start: a.start, final: NewIntSet()}
	b.trans = make([]map[Symbol][]int, len(a.trans))
	b.eps = make([][]int, len(a.eps))
	for q := range a.trans {
		cl := a.Closure(NewIntSet(q))
		if cl.Intersects(a.final) {
			b.MarkFinal(q)
		}
		for p := range cl {
			for s, ts := range a.trans[p] {
				for _, t := range ts {
					b.AddTransition(q, s, t)
				}
			}
		}
	}
	return b
}

// UsefulSymbols returns the sorted symbols that occur in some accepted
// string ("the alphabet of the language", used by dual(τ) in Def. 4).
func (a *NFA) UsefulSymbols() []Symbol {
	t, _ := a.Trim()
	return t.Alphabet()
}

// String renders the automaton in a compact human-readable form for
// debugging and golden tests.
func (a *NFA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "start=%d final=%v\n", a.start, a.final.Sorted())
	for q := range a.trans {
		syms := make([]string, 0, len(a.trans[q]))
		for s := range a.trans[q] {
			syms = append(syms, s)
		}
		sort.Strings(syms)
		for _, s := range syms {
			ts := append([]int(nil), a.trans[q][s]...)
			sort.Ints(ts)
			fmt.Fprintf(&b, "  %d -%s-> %v\n", q, s, ts)
		}
		if len(a.eps[q]) > 0 {
			ts := append([]int(nil), a.eps[q]...)
			sort.Ints(ts)
			fmt.Fprintf(&b, "  %d -ε-> %v\n", q, ts)
		}
	}
	return b.String()
}

// Size returns a size measure for the automaton: states plus transitions.
// It is the ‖·‖ measure used in the paper's Table 2 size rows.
func (a *NFA) Size() int {
	n := a.NumStates()
	for q := range a.trans {
		for _, ts := range a.trans[q] {
			n += len(ts)
		}
		n += len(a.eps[q])
	}
	return n
}
