package strlang

import (
	"fmt"
	"sort"
	"strings"
	"unicode"
)

// Regex is the abstract syntax of a (possibly nondeterministic) regular
// expression (nRE, §2.1.2):
//
//	r ::= ε | ∅ | a | (r·r) | (r+r) | r? | r+ | r*
//
// In the concrete syntax accepted by ParseRegex, alternation is written
// “|”, concatenation is juxtaposition (whitespace) or “,”, and the postfix
// operators are “*”, “+”, “?”. The paper's binary “+” is written “|” to
// avoid ambiguity with postfix “+”. ε and ∅ may be written “ε”/“EPSILON”
// and “∅”/“EMPTYSET”.
type Regex interface {
	isRegex()
}

// REmpty denotes the empty language ∅.
type REmpty struct{}

// REps denotes the language {ε}.
type REps struct{}

// RSym denotes the single-symbol language {Sym}.
type RSym struct{ Sym Symbol }

// RConcat denotes the concatenation of Args (≥ 2 of them in parsed trees).
type RConcat struct{ Args []Regex }

// RAlt denotes the union of Args (≥ 2 of them in parsed trees).
type RAlt struct{ Args []Regex }

// RStar denotes Arg*.
type RStar struct{ Arg Regex }

// RPlus denotes Arg+.
type RPlus struct{ Arg Regex }

// ROpt denotes Arg?.
type ROpt struct{ Arg Regex }

func (REmpty) isRegex()  {}
func (REps) isRegex()    {}
func (RSym) isRegex()    {}
func (RConcat) isRegex() {}
func (RAlt) isRegex()    {}
func (RStar) isRegex()   {}
func (RPlus) isRegex()   {}
func (ROpt) isRegex()    {}

// Convenience constructors.

// Sym returns the regex for a single symbol.
func Sym(s Symbol) Regex { return RSym{s} }

// Cat returns the concatenation of the given regexes, flattening nested
// concatenations and simplifying ε and ∅.
func Cat(rs ...Regex) Regex {
	var args []Regex
	for _, r := range rs {
		switch t := r.(type) {
		case REps:
			// identity
		case REmpty:
			return REmpty{}
		case RConcat:
			args = append(args, t.Args...)
		default:
			args = append(args, r)
		}
	}
	switch len(args) {
	case 0:
		return REps{}
	case 1:
		return args[0]
	}
	return RConcat{args}
}

// Alt returns the union of the given regexes, flattening nested unions and
// dropping ∅.
func Alt(rs ...Regex) Regex {
	var args []Regex
	for _, r := range rs {
		switch t := r.(type) {
		case REmpty:
			// identity
		case RAlt:
			args = append(args, t.Args...)
		default:
			args = append(args, r)
		}
	}
	switch len(args) {
	case 0:
		return REmpty{}
	case 1:
		return args[0]
	}
	return RAlt{args}
}

// StarR returns Arg*. Star of ε or ∅ is ε.
func StarR(r Regex) Regex {
	switch r.(type) {
	case REps, REmpty:
		return REps{}
	}
	return RStar{r}
}

// PlusR returns Arg+.
func PlusR(r Regex) Regex {
	switch r.(type) {
	case REps:
		return REps{}
	case REmpty:
		return REmpty{}
	}
	return RPlus{r}
}

// OptR returns Arg?.
func OptR(r Regex) Regex {
	switch r.(type) {
	case REps:
		return REps{}
	case REmpty:
		return REps{}
	}
	return ROpt{r}
}

// String renders r in the concrete syntax of ParseRegex.
func RegexString(r Regex) string {
	var b strings.Builder
	writeRegex(&b, r, 0)
	return b.String()
}

// precedence levels: 0 alt, 1 concat, 2 postfix/atom
func writeRegex(b *strings.Builder, r Regex, prec int) {
	paren := func(need int, f func()) {
		if prec > need {
			b.WriteByte('(')
			f()
			b.WriteByte(')')
		} else {
			f()
		}
	}
	switch t := r.(type) {
	case REmpty:
		b.WriteString("∅")
	case REps:
		b.WriteString("ε")
	case RSym:
		b.WriteString(t.Sym)
	case RAlt:
		paren(0, func() {
			for i, a := range t.Args {
				if i > 0 {
					b.WriteString(" | ")
				}
				writeRegex(b, a, 1)
			}
		})
	case RConcat:
		paren(1, func() {
			for i, a := range t.Args {
				if i > 0 {
					b.WriteByte(' ')
				}
				writeRegex(b, a, 2)
			}
		})
	case RStar:
		writeRegex(b, t.Arg, 3)
		b.WriteByte('*')
	case RPlus:
		writeRegex(b, t.Arg, 3)
		b.WriteByte('+')
	case ROpt:
		writeRegex(b, t.Arg, 3)
		b.WriteByte('?')
	default:
		panic(fmt.Sprintf("strlang: unknown regex node %T", r))
	}
}

// --- parser ---

type regexParser struct {
	src []rune
	pos int
}

// ParseRegex parses the concrete regex syntax described on Regex.
func ParseRegex(src string) (Regex, error) {
	p := &regexParser{src: []rune(src)}
	r, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("regex %q: unexpected %q at offset %d", src, string(p.src[p.pos]), p.pos)
	}
	return r, nil
}

// MustParseRegex is ParseRegex that panics on error; for tests and tables.
func MustParseRegex(src string) Regex {
	r, err := ParseRegex(src)
	if err != nil {
		panic(err)
	}
	return r
}

func (p *regexParser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(p.src[p.pos]) {
		p.pos++
	}
}

func (p *regexParser) peek() rune {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *regexParser) parseAlt() (Regex, error) {
	first, err := p.parseCat()
	if err != nil {
		return nil, err
	}
	args := []Regex{first}
	for {
		p.skipSpace()
		if p.peek() != '|' {
			break
		}
		p.pos++
		next, err := p.parseCat()
		if err != nil {
			return nil, err
		}
		args = append(args, next)
	}
	return Alt(args...), nil
}

func (p *regexParser) parseCat() (Regex, error) {
	var args []Regex
	for {
		p.skipSpace()
		c := p.peek()
		if c == ',' {
			p.pos++
			continue
		}
		if c == 0 || c == ')' || c == '|' {
			break
		}
		atom, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		args = append(args, atom)
	}
	if len(args) == 0 {
		return nil, fmt.Errorf("regex: empty expression at offset %d", p.pos)
	}
	return Cat(args...), nil
}

func (p *regexParser) parsePostfix() (Regex, error) {
	atom, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case '*':
			p.pos++
			atom = StarR(atom)
		case '+':
			p.pos++
			atom = PlusR(atom)
		case '?':
			p.pos++
			atom = OptR(atom)
		default:
			return atom, nil
		}
	}
}

func isSymRune(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) ||
		c == '_' || c == '~' || c == '^' || c == '.' || c == '#' || c == '\''
}

func (p *regexParser) parseAtom() (Regex, error) {
	p.skipSpace()
	c := p.peek()
	switch {
	case c == '(':
		p.pos++
		r, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, fmt.Errorf("regex: missing ')' at offset %d", p.pos)
		}
		p.pos++
		return r, nil
	case c == 'ε':
		p.pos++
		return REps{}, nil
	case c == '∅':
		p.pos++
		return REmpty{}, nil
	case isSymRune(c):
		start := p.pos
		for p.pos < len(p.src) && isSymRune(p.src[p.pos]) {
			p.pos++
		}
		name := string(p.src[start:p.pos])
		switch name {
		case "EPSILON":
			return REps{}, nil
		case "EMPTYSET":
			return REmpty{}, nil
		}
		return RSym{name}, nil
	default:
		return nil, fmt.Errorf("regex: unexpected %q at offset %d", string(c), p.pos)
	}
}

// --- Glushkov construction ---

// glushkov holds first/last/follow position sets for a regex; position 0 is
// reserved for the initial state.
type glushkov struct {
	syms     []Symbol // syms[p] is the symbol at position p ≥ 1
	nullable bool
	first    IntSet
	last     IntSet
	follow   []IntSet // indexed by position
}

func buildGlushkov(r Regex) *glushkov {
	g := &glushkov{syms: []Symbol{""}}
	g.follow = append(g.follow, NewIntSet()) // position 0 unused
	n, f, l := g.build(r)
	g.nullable, g.first, g.last = n, f, l
	return g
}

func (g *glushkov) newPos(s Symbol) int {
	g.syms = append(g.syms, s)
	g.follow = append(g.follow, NewIntSet())
	return len(g.syms) - 1
}

func (g *glushkov) build(r Regex) (nullable bool, first, last IntSet) {
	switch t := r.(type) {
	case REmpty:
		return false, NewIntSet(), NewIntSet()
	case REps:
		return true, NewIntSet(), NewIntSet()
	case RSym:
		p := g.newPos(t.Sym)
		return false, NewIntSet(p), NewIntSet(p)
	case RAlt:
		nullable = false
		first, last = NewIntSet(), NewIntSet()
		for _, a := range t.Args {
			an, af, al := g.build(a)
			nullable = nullable || an
			first.AddAll(af)
			last.AddAll(al)
		}
		return nullable, first, last
	case RConcat:
		nullable = true
		first, last = NewIntSet(), NewIntSet()
		var prevLast IntSet
		prevNullable := true
		for _, a := range t.Args {
			an, af, al := g.build(a)
			// follow: every last of the prefix feeds every first of a.
			if prevLast != nil {
				for p := range prevLast.All() {
					g.follow[p].AddAll(af)
				}
			}
			if prevNullable {
				first.AddAll(af)
			}
			if an {
				if prevLast == nil {
					prevLast = al.Copy()
				} else {
					prevLast.AddAll(al)
				}
			} else {
				prevLast = al.Copy()
			}
			prevNullable = prevNullable && an
			nullable = nullable && an
			last = prevLast
		}
		return nullable, first, last.Copy()
	case RStar:
		_, af, al := g.build(t.Arg)
		for p := range al.All() {
			g.follow[p].AddAll(af)
		}
		return true, af, al
	case RPlus:
		an, af, al := g.build(t.Arg)
		for p := range al.All() {
			g.follow[p].AddAll(af)
		}
		return an, af, al
	case ROpt:
		_, af, al := g.build(t.Arg)
		return true, af, al
	default:
		panic(fmt.Sprintf("strlang: unknown regex node %T", r))
	}
}

// RegexNFA returns the Glushkov (position) automaton of r: an ε-free NFA
// with one state per symbol occurrence plus an initial state. Any regex of
// size n yields an automaton with O(n²) transitions, matching the paper's
// use of the regex→nFA translations of [20, 23].
func RegexNFA(r Regex) *NFA {
	g := buildGlushkov(r)
	a := NewNFA() // state 0 = initial
	ids := make([]int32, len(g.syms))
	for p := 1; p < len(g.syms); p++ {
		a.AddState()
		ids[p] = Intern(g.syms[p])
	}
	if g.nullable {
		a.MarkFinal(0)
	}
	for p := range g.first.All() {
		a.AddTransitionID(0, ids[p], p)
	}
	for p := 1; p < len(g.syms); p++ {
		for q := range g.follow[p].All() {
			a.AddTransitionID(p, ids[q], q)
		}
		if g.last.Has(p) {
			a.MarkFinal(p)
		}
	}
	return a
}

// RegexDeterministic reports whether r is a deterministic regular
// expression (dRE): its Glushkov automaton is deterministic, i.e. no state
// has two distinct successors on the same symbol (Brüggemann-Klein & Wood;
// this is exactly the marked-expression condition of §2.1.2). When it is
// not, the offending symbol is returned.
func RegexDeterministic(r Regex) (bool, Symbol) {
	g := buildGlushkov(r)
	check := func(set IntSet) (bool, Symbol) {
		bySym := map[Symbol]int{}
		for p := range set.All() {
			s := g.syms[p]
			if prev, ok := bySym[s]; ok && prev != p {
				return false, s
			}
			bySym[s] = p
		}
		return true, ""
	}
	if ok, s := check(g.first); !ok {
		return false, s
	}
	for p := 1; p < len(g.syms); p++ {
		if ok, s := check(g.follow[p]); !ok {
			return false, s
		}
	}
	return true, ""
}

// RegexSymbols returns the sorted set of symbols occurring in r.
func RegexSymbols(r Regex) []Symbol {
	set := map[Symbol]struct{}{}
	var walk func(Regex)
	walk = func(r Regex) {
		switch t := r.(type) {
		case RSym:
			set[t.Sym] = struct{}{}
		case RConcat:
			for _, a := range t.Args {
				walk(a)
			}
		case RAlt:
			for _, a := range t.Args {
				walk(a)
			}
		case RStar:
			walk(t.Arg)
		case RPlus:
			walk(t.Arg)
		case ROpt:
			walk(t.Arg)
		}
	}
	walk(r)
	out := make([]Symbol, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// RegexSize returns the number of AST nodes of r (the |r| measure).
func RegexSize(r Regex) int {
	switch t := r.(type) {
	case REmpty, REps, RSym:
		return 1
	case RConcat:
		n := 1
		for _, a := range t.Args {
			n += RegexSize(a)
		}
		return n
	case RAlt:
		n := 1
		for _, a := range t.Args {
			n += RegexSize(a)
		}
		return n
	case RStar:
		return 1 + RegexSize(t.Arg)
	case RPlus:
		return 1 + RegexSize(t.Arg)
	case ROpt:
		return 1 + RegexSize(t.Arg)
	default:
		panic(fmt.Sprintf("strlang: unknown regex node %T", r))
	}
}

// MapRegexSymbols returns r with every symbol s replaced by f(s).
func MapRegexSymbols(r Regex, f func(Symbol) Symbol) Regex {
	switch t := r.(type) {
	case REmpty, REps:
		return r
	case RSym:
		return RSym{f(t.Sym)}
	case RConcat:
		args := make([]Regex, len(t.Args))
		for i, a := range t.Args {
			args[i] = MapRegexSymbols(a, f)
		}
		return RConcat{args}
	case RAlt:
		args := make([]Regex, len(t.Args))
		for i, a := range t.Args {
			args[i] = MapRegexSymbols(a, f)
		}
		return RAlt{args}
	case RStar:
		return RStar{MapRegexSymbols(t.Arg, f)}
	case RPlus:
		return RPlus{MapRegexSymbols(t.Arg, f)}
	case ROpt:
		return ROpt{MapRegexSymbols(t.Arg, f)}
	default:
		panic(fmt.Sprintf("strlang: unknown regex node %T", r))
	}
}
