package strlang

import "sort"

// This file implements the Brüggemann-Klein & Wood theory of
// one-unambiguous regular languages [11] used by the paper for dREs:
//
//   - OneUnambiguous decides whether a regular language is one-unambiguous
//     (problem one-unamb[R], Definition 2), via the orbit property of the
//     minimal DFA and the consistent-symbol cut for strongly connected
//     automata;
//   - BuildDRE additionally constructs a deterministic regular expression
//     when one exists (Proposition 3.6(1)); the construction mirrors the
//     decision recursion, so its size can be exponential in the minimal
//     DFA, which is worst-case optimal (Proposition 3.6(3)).
//
// Every regex produced by BuildDRE is checked to be syntactically
// deterministic (Glushkov determinism); a violation would indicate an
// implementation bug and panics.

// OneUnambiguous reports whether [a] is one-unambiguous, i.e. definable by
// a deterministic regular expression.
func OneUnambiguous(a *NFA) bool {
	_, ok := bkw(a.Determinize().Minimize(), false)
	return ok
}

// BuildDRE returns a deterministic regular expression for [a] if the
// language is one-unambiguous, and ok=false otherwise.
func BuildDRE(a *NFA) (Regex, bool) {
	r, ok := bkw(a.Determinize().Minimize(), true)
	if !ok {
		return nil, false
	}
	if det, sym := RegexDeterministic(r); !det {
		panic("strlang: BuildDRE produced a non-deterministic regex (symbol " + sym + "): " + RegexString(r))
	}
	return r, true
}

// bkw runs the BKW recursion on a minimal trimmed partial DFA. If build is
// false the returned Regex is nil even on success.
func bkw(d *DFA, build bool) (Regex, bool) {
	anyFinal := false
	for q := 0; q < d.NumStates(); q++ {
		if d.IsFinal(q) {
			anyFinal = true
			break
		}
	}
	if !anyFinal {
		return REmpty{}, true
	}
	b := &bkwRun{d: d, build: build, scc: sccOf(d)}
	b.memo = make(map[int]bkwResult)
	b.orbitMemo = make(map[int]bkwResult)
	return b.from(d.Start())
}

type bkwResult struct {
	r  Regex
	ok bool
}

type bkwRun struct {
	d         *DFA
	build     bool
	scc       []int // scc[q] = component id
	memo      map[int]bkwResult
	orbitMemo map[int]bkwResult
}

// gatesOf returns the sorted gates of the orbit (SCC) containing q: states
// of the orbit that are final or have a transition leaving the orbit.
func (b *bkwRun) gatesOf(q int) []int {
	comp := b.scc[q]
	var gates []int
	for s := 0; s < b.d.NumStates(); s++ {
		if b.scc[s] != comp {
			continue
		}
		isGate := b.d.IsFinal(s)
		if !isGate {
			for _, t := range b.d.trans[s].to {
				if b.scc[t] != comp {
					isGate = true
					break
				}
			}
		}
		if isGate {
			gates = append(gates, s)
		}
	}
	sort.Ints(gates)
	return gates
}

// orbitProperty checks that all gates of q's orbit agree on finality and on
// their out-of-orbit transitions.
func (b *bkwRun) orbitProperty(gates []int, comp int) bool {
	if len(gates) <= 1 {
		return true
	}
	g0 := gates[0]
	for _, g := range gates[1:] {
		if b.d.IsFinal(g) != b.d.IsFinal(g0) {
			return false
		}
	}
	// Collect, per symbol, whether any gate exits the orbit on it; if so,
	// all gates must have the same (defined) target.
	var syms Bits
	for _, g := range gates {
		row := &b.d.trans[g]
		for i, sid := range row.syms {
			if b.scc[row.to[i]] != comp {
				syms.Add(int(sid))
			}
		}
	}
	for sid := range syms.All() {
		t0, ok0 := b.d.NextID(g0, int32(sid))
		if !ok0 {
			return false
		}
		for _, g := range gates[1:] {
			t, ok := b.d.NextID(g, int32(sid))
			if !ok || t != t0 {
				return false
			}
		}
	}
	return true
}

// from computes the (d)RE of the sub-automaton of b.d started at q.
func (b *bkwRun) from(q int) (Regex, bool) {
	if res, ok := b.memo[q]; ok {
		return res.r, res.ok
	}
	// Mark in-progress to catch accidental cycles (cannot happen: exits go
	// strictly forward in the SCC DAG).
	b.memo[q] = bkwResult{nil, false}
	r, ok := b.fromUncached(q)
	b.memo[q] = bkwResult{r, ok}
	return r, ok
}

func (b *bkwRun) fromUncached(q int) (Regex, bool) {
	comp := b.scc[q]
	gates := b.gatesOf(q)
	if !b.orbitProperty(gates, comp) {
		return nil, false
	}
	orbitR, ok := b.orbitRegex(q)
	if !ok {
		return nil, false
	}
	// Continuation after reaching a gate: exit transitions are uniform
	// across gates, so inspect any one gate.
	g0 := gates[0]
	var contTerms []Regex
	exitSyms := make([]Symbol, 0, 4)
	g0row := &b.d.trans[g0]
	for i, sid := range g0row.syms {
		if b.scc[g0row.to[i]] != comp {
			exitSyms = append(exitSyms, SymbolName(sid))
		}
	}
	sortSymbols(exitSyms)
	for _, s := range exitSyms {
		t, _ := b.d.Next(g0, s)
		sub, ok := b.from(t)
		if !ok {
			return nil, false
		}
		if b.build {
			contTerms = append(contTerms, Cat(Sym(s), sub))
		} else {
			contTerms = append(contTerms, REps{})
		}
	}
	if b.d.IsFinal(g0) {
		contTerms = append(contTerms, REps{})
	}
	if !b.build {
		return nil, true
	}
	return Cat(orbitR, Alt(contTerms...)), true
}

// orbitRegex computes a dRE for the orbit automaton M_K(q): the restriction
// of d to q's orbit, with the gates as final states.
func (b *bkwRun) orbitRegex(q int) (Regex, bool) {
	if res, ok := b.orbitMemo[q]; ok {
		return res.r, res.ok
	}
	comp := b.scc[q]
	gates := b.gatesOf(q)
	gateSet := NewIntSet(gates...)
	// Build the orbit automaton and minimize it (it need not be minimal).
	orbit := &DFA{}
	old2new := map[int]int{}
	var members []int
	for s := 0; s < b.d.NumStates(); s++ {
		if b.scc[s] == comp {
			members = append(members, s)
		}
	}
	for _, s := range members {
		old2new[s] = orbit.AddState(gateSet.Has(s))
	}
	orbit.SetStart(old2new[q])
	for _, s := range members {
		row := &b.d.trans[s]
		for i, sid := range row.syms {
			if t := row.to[i]; b.scc[t] == comp {
				orbit.SetTransitionID(old2new[s], sid, old2new[int(t)])
			}
		}
	}
	r, ok := stronglyConnectedDRE(orbit.Minimize(), b.build)
	b.orbitMemo[q] = bkwResult{r, ok}
	return r, ok
}

// stronglyConnectedDRE handles a minimal strongly connected DFA via the
// consistent-symbol cut: a symbol a is consistent when δ(f, a) is defined
// for every final state f with a common target; removing those transitions
// strictly shrinks the automaton and the language factorizes as
// r_cut(start) · (Σ_a a · r_cut(target_a))*.
func stronglyConnectedDRE(d *DFA, build bool) (Regex, bool) {
	var finals []int
	for q := 0; q < d.NumStates(); q++ {
		if d.IsFinal(q) {
			finals = append(finals, q)
		}
	}
	if len(finals) == 0 {
		// Orbit automata always have at least one gate, and minimization
		// preserves it; an empty orbit language cannot arise.
		return REmpty{}, true
	}
	if d.NumStates() == 1 {
		// Single (final) state: the language is C* over the self-loop
		// symbols C (ε when there are none).
		var loops []Regex
		syms := make([]Symbol, 0, len(d.trans[0].syms))
		for _, sid := range d.trans[0].syms {
			syms = append(syms, SymbolName(sid))
		}
		sortSymbols(syms)
		for _, s := range syms {
			loops = append(loops, Sym(s))
		}
		if len(loops) == 0 {
			return REps{}, true
		}
		return StarR(Alt(loops...)), true
	}
	// Consistent symbols.
	var consistent []Symbol
	target := map[Symbol]int{}
	f0row := &d.trans[finals[0]]
	for i, sid := range f0row.syms {
		t := f0row.to[i]
		allAgree := true
		for _, f := range finals[1:] {
			t2, ok := d.NextID(f, sid)
			if !ok || t2 != int(t) {
				allAgree = false
				break
			}
		}
		if allAgree {
			s := SymbolName(sid)
			consistent = append(consistent, s)
			target[s] = int(t)
		}
	}
	sortSymbols(consistent)
	if len(consistent) == 0 {
		// A nontrivial strongly connected minimal DFA with no consistent
		// symbol recognizes a language that is not one-unambiguous.
		return nil, false
	}
	// Cut: remove the consistent transitions out of final states.
	cut := d.Clone()
	for _, f := range finals {
		for _, s := range consistent {
			sid, _ := LookupSymID(s)
			cut.removeTransition(f, sid)
		}
	}
	rStart, ok := bkwSub(cut, cut.Start(), build)
	if !ok {
		return nil, false
	}
	var loopTerms []Regex
	for _, s := range consistent {
		sub, ok := bkwSub(cut, target[s], build)
		if !ok {
			return nil, false
		}
		if build {
			loopTerms = append(loopTerms, Cat(Sym(s), sub))
		}
	}
	if !build {
		return nil, true
	}
	return Cat(rStart, StarR(Alt(loopTerms...))), true
}

// bkwSub runs the full recursion on the sub-automaton of d started at q.
func bkwSub(d *DFA, q int, build bool) (Regex, bool) {
	sub := d.Clone()
	sub.SetStart(q)
	return bkw(sub.Minimize(), build)
}

// sccOf computes strongly connected components of d (Tarjan), returning a
// component id per state. Components are numbered in reverse topological
// order of the condensation (successors get smaller ids than predecessors
// is NOT guaranteed; ids are only used for equality tests).
func sccOf(d *DFA) []int {
	n := d.NumStates()
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = -1
		comp[i] = -1
	}
	var stack []int
	counter := 0
	nComp := 0

	type frame struct {
		v    int
		succ []int
		i    int
	}
	succsOf := func(v int) []int {
		var out []int
		for _, t := range d.trans[v].to {
			out = append(out, int(t))
		}
		sort.Ints(out)
		return out
	}
	var iter []frame
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		iter = append(iter[:0], frame{root, succsOf(root), 0})
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(iter) > 0 {
			f := &iter[len(iter)-1]
			if f.i < len(f.succ) {
				w := f.succ[f.i]
				f.i++
				if index[w] == -1 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					iter = append(iter, frame{w, succsOf(w), 0})
				} else if onStack[w] {
					if index[w] < low[f.v] {
						low[f.v] = index[w]
					}
				}
				continue
			}
			v := f.v
			iter = iter[:len(iter)-1]
			if len(iter) > 0 {
				p := &iter[len(iter)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}
	return comp
}
