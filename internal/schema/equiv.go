package schema

import (
	"fmt"

	"dxml/internal/strlang"
	"dxml/internal/uta"
	"dxml/internal/xmltree"
)

// EquivalentDTD decides equiv[R-DTD] by Proposition 4.1: two reduced
// R-DTDs are equivalent iff they have the same root, the same element
// names, and equivalent content models per name. Inputs are reduced first.
// On inequivalence a short explanation is returned.
func EquivalentDTD(a, b *DTD) (bool, string) {
	ra, errA := a.Reduce()
	rb, errB := b.Reduce()
	if errA != nil || errB != nil {
		// One of the languages is empty (or a dRE reduction failed; fall
		// back to the tree-automaton check in that case).
		if errA != nil && errB != nil && a.IsEmptyLang() && b.IsEmptyLang() {
			return true, ""
		}
		return equivalentViaUTA(a.ToEDTD(), b.ToEDTD())
	}
	if ra.Start != rb.Start {
		return false, fmt.Sprintf("roots differ: %s vs %s", ra.Start, rb.Start)
	}
	alphaA, alphaB := ra.Alphabet(), rb.Alphabet()
	if len(alphaA) != len(alphaB) {
		return false, fmt.Sprintf("element names differ: %v vs %v", alphaA, alphaB)
	}
	for i := range alphaA {
		if alphaA[i] != alphaB[i] {
			return false, fmt.Sprintf("element names differ: %v vs %v", alphaA, alphaB)
		}
	}
	for _, name := range alphaA {
		if ok, w := strlang.Equivalent(ra.Rule(name).Lang(), rb.Rule(name).Lang()); !ok {
			return false, fmt.Sprintf("content models of %s differ on %v", name, w)
		}
	}
	return true, ""
}

// EquivalentSDTD decides equiv[R-SDTD] for reduced single-type EDTDs via
// the product of their duals (Proposition 4.4 / Lemma 3.5): the types are
// equivalent iff the roots share an element name and every reachable pair
// of witnesses with the same ancestor string has µ-equivalent content
// models.
func EquivalentSDTD(a, b *EDTD) (bool, string) {
	if ok, el := a.IsSingleType(); !ok {
		return false, fmt.Sprintf("left type is not single-type (element %s)", el)
	}
	if ok, el := b.IsSingleType(); !ok {
		return false, fmt.Sprintf("right type is not single-type (element %s)", el)
	}
	ra, errA := a.Reduce()
	rb, errB := b.Reduce()
	if errA != nil || errB != nil {
		emptyA, emptyB := a.IsEmptyLang(), b.IsEmptyLang()
		if emptyA && emptyB {
			return true, ""
		}
		if emptyA != emptyB {
			return false, "one language is empty"
		}
		// A dRE reduction failure on a nonempty language: fall back to the
		// tree-automaton decision.
		return equivalentViaUTA(a, b)
	}
	// Compare start element names.
	rootElems := func(e *EDTD) map[string]string {
		m := map[string]string{}
		for _, s := range e.Starts {
			m[e.Elem(s)] = s
		}
		return m
	}
	sa, sb := rootElems(ra), rootElems(rb)
	if len(sa) != len(sb) {
		return false, "root element names differ"
	}
	type pair struct{ na, nb string }
	var queue []pair
	seen := map[pair]bool{}
	push := func(p pair) {
		if !seen[p] {
			seen[p] = true
			queue = append(queue, p)
		}
	}
	for el, na := range sa {
		nb, ok := sb[el]
		if !ok {
			return false, fmt.Sprintf("root element %s only on one side", el)
		}
		push(pair{na, nb})
	}
	waA, wbB := ra.witnessTable(), rb.witnessTable()
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		la := ra.ProjectedRule(p.na)
		lb := rb.ProjectedRule(p.nb)
		if ok, w := strlang.Equivalent(la, lb); !ok {
			return false, fmt.Sprintf("contexts (%s, %s): projected content models differ on %v", p.na, p.nb, w)
		}
		// Same projected alphabets now; pair up the child witnesses.
		for el, ca := range waA[p.na] {
			if cb, ok := wbB[p.nb][el]; ok {
				push(pair{ca, cb})
			}
		}
	}
	return true, ""
}

// EquivalentEDTD decides equiv[R-EDTD] via tree-automata equivalence
// (Theorem 4.7; EXPTIME-complete). On inequivalence it returns a witness
// tree in the symmetric difference.
func EquivalentEDTD(a, b *EDTD) (bool, *xmltree.Tree) {
	na, _ := a.ToNUTA()
	nb, _ := b.ToNUTA()
	return uta.Equivalent(na, nb)
}

// IncludedEDTD reports [a] ⊆ [b] with a witness on failure.
func IncludedEDTD(a, b *EDTD) (bool, *xmltree.Tree) {
	na, _ := a.ToNUTA()
	nb, _ := b.ToNUTA()
	return uta.Included(na, nb)
}

func equivalentViaUTA(a, b *EDTD) (bool, string) {
	ok, w := EquivalentEDTD(a, b)
	if ok {
		return true, ""
	}
	return false, fmt.Sprintf("languages differ on tree %s", w)
}
