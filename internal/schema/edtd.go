package schema

import (
	"fmt"
	"sort"
	"strings"

	"dxml/internal/strlang"
	"dxml/internal/uta"
	"dxml/internal/xmltree"
)

// EDTD is an R-EDTD τ = ⟨Σ, Σ̃, π, s̃, µ⟩ (Definition 7): a grammar over
// specialized element names Σ̃, each mapped by µ to an element name of Σ.
// A tree t (labeled over Σ) is in [τ] iff t = µ(t′) for some witness tree
// t′ of the underlying grammar.
//
// Generalization: Starts may hold several start names. The paper's
// definition has a single s̃; normalization (Section 4.3) naturally
// produces a set of possible root witnesses, so the internal representation
// allows it. All constructors used for paper-level schemas set exactly one.
//
// An R-SDTD (Definition 6) is an EDTD satisfying the single-type
// requirement; see IsSingleType.
type EDTD struct {
	Kind Kind
	// Names maps every specialized name to its element name (µ).
	Names map[string]string
	// Starts are the admissible root witnesses (exactly one for
	// paper-level types).
	Starts []string
	// Rules maps specialized names to content models over Σ̃. Missing
	// rules mean {ε}.
	Rules map[string]*Content
}

// NewEDTD returns an empty EDTD of the given kind with a single start.
func NewEDTD(kind Kind, start, startElem string) *EDTD {
	e := &EDTD{Kind: kind, Names: map[string]string{}, Rules: map[string]*Content{}}
	e.Starts = []string{start}
	e.Names[start] = startElem
	return e
}

// DeclareName declares µ(name) = elem.
func (e *EDTD) DeclareName(name, elem string) { e.Names[name] = elem }

// Elem returns µ(name). Undeclared names map to themselves (the
// no-specialization shorthand used in the paper's examples).
func (e *EDTD) Elem(name string) string {
	if el, ok := e.Names[name]; ok {
		return el
	}
	return name
}

// SetRule sets π(name) = c.
func (e *EDTD) SetRule(name string, c *Content) error {
	if c.Kind() != e.Kind {
		return fmt.Errorf("schema: rule %s has kind %s, EDTD has kind %s", name, c.Kind(), e.Kind)
	}
	e.Rules[name] = c
	if _, ok := e.Names[name]; !ok {
		e.Names[name] = name
	}
	return nil
}

// MustSetRule is SetRule that panics on error.
func (e *EDTD) MustSetRule(name string, c *Content) {
	if err := e.SetRule(name, c); err != nil {
		panic(err)
	}
}

// Rule returns π(name), defaulting to {ε}.
func (e *EDTD) Rule(name string) *Content {
	if c, ok := e.Rules[name]; ok {
		return c
	}
	return EpsContent(e.Kind)
}

// SpecializedNames returns the sorted specialized names Σ̃: declared names,
// starts, rule heads, and names in content models.
func (e *EDTD) SpecializedNames() []string {
	set := map[string]struct{}{}
	for _, s := range e.Starts {
		set[s] = struct{}{}
	}
	for n := range e.Names {
		set[n] = struct{}{}
	}
	for n, c := range e.Rules {
		set[n] = struct{}{}
		for _, s := range c.Lang().Alphabet() {
			set[s] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ElementNames returns the sorted element names Σ (µ images).
func (e *EDTD) ElementNames() []string {
	set := map[string]struct{}{}
	for _, n := range e.SpecializedNames() {
		set[e.Elem(n)] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Specializations returns the sorted specialized names mapping to elem
// (the set Σ̃(a) of Definition 6).
func (e *EDTD) Specializations(elem string) []string {
	var out []string
	for _, n := range e.SpecializedNames() {
		if e.Elem(n) == elem {
			out = append(out, n)
		}
	}
	return out
}

// IsSingleType reports whether e satisfies the single-type requirement of
// Definition 6: no content model's alphabet contains two distinct
// specializations of the same element name, and no two starts share an
// element name. When it fails, the offending element name is returned.
func (e *EDTD) IsSingleType() (bool, string) {
	check := func(names []strlang.Symbol) (bool, string) {
		byElem := map[string]string{}
		for _, n := range names {
			el := e.Elem(n)
			if prev, ok := byElem[el]; ok && prev != n {
				return false, el
			}
			byElem[el] = n
		}
		return true, ""
	}
	if ok, el := check(e.Starts); !ok {
		return false, el
	}
	for _, n := range e.SpecializedNames() {
		if ok, el := check(e.Rule(n).UsefulSymbols()); !ok {
			return false, el
		}
	}
	return true, ""
}

// ToNUTA converts e to an equivalent nondeterministic unranked tree
// automaton: states are specialized names, Δ(ã, µ(ã)) is π(ã) with names
// replaced by state symbols, finals are the starts. The returned index maps
// names to states.
func (e *EDTD) ToNUTA() (*uta.NUTA, map[string]int) {
	names := e.SpecializedNames()
	idx := map[string]int{}
	for i, n := range names {
		idx[n] = i
	}
	a := uta.NewNUTA(len(names))
	for _, n := range names {
		content := relabelToStates(e.Rule(n).Lang(), idx)
		a.SetDelta(idx[n], e.Elem(n), content)
	}
	for _, s := range e.Starts {
		a.MarkFinal(idx[s])
	}
	return a, idx
}

// relabelToStates rewrites an NFA over specialized names into one over
// state symbols.
func relabelToStates(nfa *strlang.NFA, idx map[string]int) *strlang.NFA {
	out := strlang.NewNFA()
	for q := 1; q < nfa.NumStates(); q++ {
		out.AddState()
	}
	out.SetStart(nfa.Start())
	for q := range nfa.Finals().All() {
		out.MarkFinal(q)
	}
	nfa.EachTransition(func(from int, s strlang.Symbol, to int) {
		out.AddTransition(from, uta.StateSym(idx[s]), to)
	})
	for q := 0; q < nfa.NumStates(); q++ {
		for _, t := range nfa.EpsSucc(q) {
			out.AddEps(q, int(t))
		}
	}
	return out
}

// Validate reports whether t ∈ [e]; nil means valid.
func (e *EDTD) Validate(t *xmltree.Tree) error {
	a, _ := e.ToNUTA()
	if !a.Accepts(t) {
		return fmt.Errorf("schema: tree %s is not valid for the EDTD", t)
	}
	return nil
}

// WitnessStates returns the set of specialized names assignable to the
// root of t by the grammar (ignoring the start requirement).
func (e *EDTD) WitnessStates(t *xmltree.Tree) []string {
	a, idx := e.ToNUTA()
	rev := make([]string, len(idx))
	for n, i := range idx {
		rev[i] = n
	}
	var out []string
	for _, q := range a.PossibleStates(t).Sorted() {
		out = append(out, rev[q])
	}
	return out
}

// SubType returns τ(ã) (Lemma 3.4): the same grammar restarted at name.
func (e *EDTD) SubType(name string) *EDTD {
	out := e.Clone()
	out.Starts = []string{name}
	return out
}

// Clone returns a copy sharing the immutable content models.
func (e *EDTD) Clone() *EDTD {
	out := &EDTD{Kind: e.Kind, Names: map[string]string{}, Rules: map[string]*Content{}}
	out.Starts = append([]string(nil), e.Starts...)
	for n, el := range e.Names {
		out.Names[n] = el
	}
	for n, c := range e.Rules {
		out.Rules[n] = c
	}
	return out
}

// IsEmptyLang reports whether [e] = ∅.
func (e *EDTD) IsEmptyLang() bool {
	a, _ := e.ToNUTA()
	return a.IsEmpty()
}

// Reduce returns an equivalent EDTD keeping only useful specialized names
// (assignable to some tree and reachable from a start), restricting content
// models accordingly. Fails on the empty language, or for KindDRE when a
// restricted model loses one-unambiguity.
func (e *EDTD) Reduce() (*EDTD, error) {
	a, idx := e.ToNUTA()
	nonEmpty := a.ReachableStates()
	rev := make([]string, len(idx))
	for n, i := range idx {
		rev[i] = n
	}
	// Reachability from starts through content models, restricted to
	// non-empty names.
	useful := map[string]bool{}
	var stack []string
	for _, s := range e.Starts {
		if nonEmpty.Has(idx[s]) && !useful[s] {
			useful[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, b := range e.Rule(n).UsefulSymbols() {
			if nonEmpty.Has(idx[b]) && !useful[b] {
				useful[b] = true
				stack = append(stack, b)
			}
		}
	}
	if len(useful) == 0 {
		return nil, fmt.Errorf("schema: [τ] is empty, cannot reduce")
	}
	keep := make([]string, 0, len(useful))
	for n := range useful {
		keep = append(keep, n)
	}
	sort.Strings(keep)
	out := &EDTD{Kind: e.Kind, Names: map[string]string{}, Rules: map[string]*Content{}}
	for _, s := range e.Starts {
		if useful[s] {
			out.Starts = append(out.Starts, s)
		}
	}
	universe := strlang.UniversalLang(keep)
	for _, n := range keep {
		out.Names[n] = e.Elem(n)
		c := e.Rule(n)
		if c.AcceptsEps() && len(c.UsefulSymbols()) == 0 {
			continue
		}
		restricted := strlang.Intersect(c.Lang(), universe)
		nc, err := FromNFA(e.Kind, restricted)
		if err != nil {
			return nil, fmt.Errorf("schema: reducing rule %s: %w", n, err)
		}
		out.Rules[n] = nc
	}
	return out, nil
}

// Size returns the representation size (names plus content model sizes).
func (e *EDTD) Size() int {
	n := len(e.SpecializedNames())
	for _, c := range e.Rules {
		n += c.Size()
	}
	return n
}

// String renders the EDTD in arrow-grammar notation; specialized names with
// µ(name) ≠ name show the element name after a colon.
func (e *EDTD) String() string {
	var b strings.Builder
	for _, s := range e.Starts {
		fmt.Fprintf(&b, "root %s\n", s)
	}
	for _, n := range e.SpecializedNames() {
		c, hasRule := e.Rules[n]
		suffix := ""
		if e.Elem(n) != n {
			suffix = " : " + e.Elem(n)
		}
		if hasRule {
			fmt.Fprintf(&b, "%s%s -> %s\n", n, suffix, c)
		} else if suffix != "" {
			fmt.Fprintf(&b, "%s%s -> ε\n", n, suffix)
		}
	}
	return b.String()
}
