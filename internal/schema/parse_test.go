package schema

import (
	"strings"
	"testing"

	"dxml/internal/strlang"
	"dxml/internal/xmltree"
)

func TestParseW3CDTDEdgeCases(t *testing.T) {
	// EMPTY content.
	d, err := ParseW3CDTD(KindNRE, `<!ELEMENT a EMPTY>`)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(xmltree.MustParse("a")); err != nil {
		t.Errorf("EMPTY element rejected: %v", err)
	}
	// Mixed whitespace and newlines inside declarations.
	d, err = ParseW3CDTD(KindNRE, "<!ELEMENT a (b,\n\tc*)>\n<!ELEMENT b (#PCDATA)>")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(xmltree.MustParse("a(b c c)")); err != nil {
		t.Errorf("valid doc rejected: %v", err)
	}
	// Errors.
	for _, src := range []string{
		"",                                  // no declarations
		"<!ELEMENT a (b",                    // unterminated
		"<!ELEMENT a (b)> <!ELEMENT a (c)>", // duplicate
		"<!ELEMENT >",                       // malformed
	} {
		if _, err := ParseW3CDTD(KindNRE, src); err == nil {
			t.Errorf("ParseW3CDTD(%q) should fail", src)
		}
	}
	// W3C proper (dRE): a nondeterministic model is rejected.
	if _, err := ParseW3CDTD(KindDRE, "<!ELEMENT a ((b, c) | (b, d))>"); err == nil {
		t.Error("one-ambiguous model should fail for KindDRE")
	}
	if _, err := ParseW3CDTD(KindNRE, "<!ELEMENT a ((b, c) | (b, d))>"); err != nil {
		t.Errorf("nRE should accept a nondeterministic model: %v", err)
	}
}

func TestParseEDTDErrors(t *testing.T) {
	for _, src := range []string{
		"a -> b",                 // no root
		"root s\ns -> a\ns -> b", // duplicate rule
		"root s\ns => a",         // bad arrow
		"root s\ns -> ((a)",      // bad regex
	} {
		if _, err := ParseEDTD(KindNRE, src); err == nil {
			t.Errorf("ParseEDTD(%q) should fail", src)
		}
	}
}

func TestDTDStringRoundTrip(t *testing.T) {
	src := `
		root eurostat
		eurostat -> averages, nationalIndex*
		averages -> (Good, index+)+
		nationalIndex -> country, Good, (index | value, year)
		index -> value, year
	`
	d1 := MustParseDTD(KindNRE, src)
	d2 := MustParseDTD(KindNRE, d1.String())
	if ok, why := EquivalentDTD(d1, d2); !ok {
		t.Errorf("String/Parse round trip changed language: %s", why)
	}
}

func TestEDTDStringRoundTrip(t *testing.T) {
	src := `
		root eurostat
		eurostat -> averages, (natIndA, natIndB)+
		averages -> (Good, index+)+
		natIndA : nationalIndex -> country, Good, index
		natIndB : nationalIndex -> country, Good, value, year
		index -> value, year
	`
	e1 := MustParseEDTD(KindNRE, src)
	e2 := MustParseEDTD(KindNRE, e1.String())
	if ok, w := EquivalentEDTD(e1, e2); !ok {
		t.Errorf("String/Parse round trip changed language on %s", w)
	}
}

func TestContentSizeMeasures(t *testing.T) {
	re := strlang.MustParseRegex("a b* | c")
	cNRE, _ := NewContentRegex(KindNRE, re)
	cNFA := NewContentNFA(strlang.RegexNFA(re))
	cDFA := NewContentDFA(strlang.RegexNFA(re).Determinize().Minimize())
	if cNRE.Size() <= 0 || cNFA.Size() <= 0 || cDFA.Size() <= 0 {
		t.Error("sizes should be positive")
	}
	if cNRE.Size() >= cNFA.Size() {
		// Regex ASTs are typically smaller than their Glushkov automata.
		t.Logf("note: regex size %d vs NFA size %d", cNRE.Size(), cNFA.Size())
	}
	if got := cNRE.String(); !strings.Contains(got, "|") {
		t.Errorf("String = %q", got)
	}
}

func TestEpsContentAllKinds(t *testing.T) {
	for _, k := range AllKinds {
		c := EpsContent(k)
		if !c.AcceptsEps() || c.Accepts([]strlang.Symbol{"a"}) {
			t.Errorf("EpsContent(%s) wrong", k)
		}
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{KindNFA: "nFA", KindDFA: "dFA", KindNRE: "nRE", KindDRE: "dRE"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %s, want %s", int(k), k, want)
		}
	}
}

func TestValidateErrorMessages(t *testing.T) {
	d := MustParseDTD(KindNRE, "root s\ns -> a b")
	err := d.Validate(xmltree.MustParse("s(a)"))
	if err == nil || !strings.Contains(err.Error(), "s") {
		t.Errorf("error should locate the node: %v", err)
	}
	err = d.Validate(xmltree.MustParse("x(a b)"))
	if err == nil || !strings.Contains(err.Error(), "root") {
		t.Errorf("error should mention the root: %v", err)
	}
}

func TestDualNFAOnNonSingleType(t *testing.T) {
	e := MustParseEDTD(KindNRE, `
		root s
		s -> a1 | a2
		a1 : a -> b
		a2 : a -> c
	`)
	nfa, idx := e.DualNFA()
	if len(idx) != 5 {
		t.Errorf("dual has %d name states, want 5", len(idx))
	}
	// Both a-paths exist.
	if !nfa.Accepts([]string{"s", "a", "b"}) || !nfa.Accepts([]string{"s", "a", "c"}) {
		t.Error("dual should accept both vertical paths")
	}
	if nfa.Accepts([]string{"s", "b"}) {
		t.Error("dual accepts a wrong path")
	}
}

func TestProjectedRule(t *testing.T) {
	e := MustParseEDTD(KindNRE, `
		root s
		s -> a1, a2
		a1 : a -> ε
		a2 : a -> ε
	`)
	proj := e.ProjectedRule("s")
	if !proj.Accepts([]strlang.Symbol{"a", "a"}) {
		t.Error("projection should read element names")
	}
	if proj.Accepts([]strlang.Symbol{"a1", "a2"}) {
		t.Error("projection should not read specialized names")
	}
}
