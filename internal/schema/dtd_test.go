package schema

import (
	"strings"
	"testing"

	"dxml/internal/strlang"
	"dxml/internal/xmltree"
)

// figure3DTD is the paper's Figure 3 Eurostat DTD in W3C syntax.
const figure3DTD = `
<!ELEMENT eurostat (averages, nationalIndex*)>
<!ELEMENT averages (Good, index+)+>
<!ELEMENT nationalIndex (country, Good, (index | value, year))>
<!ELEMENT index (value, year)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT Good (#PCDATA)>
<!ELEMENT value (#PCDATA)>
<!ELEMENT year (#PCDATA)>
`

func TestParseW3CDTDFigure3(t *testing.T) {
	d, err := ParseW3CDTD(KindDRE, figure3DTD)
	if err != nil {
		t.Fatalf("ParseW3CDTD: %v", err)
	}
	if d.Start != "eurostat" {
		t.Errorf("start = %s", d.Start)
	}
	// Figure 2's extension (values omitted) must validate.
	doc := xmltree.MustParse(`eurostat(
		averages(Good index(value year) Good index(value year) index(value year))
		nationalIndex(country Good index(value year))
		nationalIndex(country Good value year))`)
	if err := d.Validate(doc); err != nil {
		t.Errorf("Figure 2 document invalid: %v", err)
	}
	// A nationalIndex with both index and year is invalid.
	bad := xmltree.MustParse("eurostat(averages(Good index(value year)) nationalIndex(country Good index(value year) year))")
	if err := d.Validate(bad); err == nil {
		t.Error("invalid document accepted")
	}
	// Wrong root.
	if err := d.Validate(xmltree.MustParse("averages(Good index(value year))")); err == nil {
		t.Error("wrong root accepted")
	}
}

func TestParseArrowDTD(t *testing.T) {
	d := MustParseDTD(KindNRE, `
		# Figure 4 local type (country resource)
		root rooti
		rooti -> nationalIndex*
		nationalIndex -> country, Good, (index | value, year)
		index -> value, year
	`)
	if d.Start != "rooti" {
		t.Errorf("start = %s", d.Start)
	}
	if err := d.Validate(xmltree.MustParse("rooti(nationalIndex(country Good index(value year)))")); err != nil {
		t.Errorf("valid doc rejected: %v", err)
	}
	if err := d.Validate(xmltree.MustParse("rooti(country)")); err == nil {
		t.Error("invalid doc accepted")
	}
}

func TestParseDTDErrors(t *testing.T) {
	if _, err := ParseDTD(KindNRE, "a => b"); err == nil {
		t.Error("missing arrow should fail")
	}
	if _, err := ParseDTD(KindNRE, "a -> b\na -> c"); err == nil {
		t.Error("duplicate rule should fail")
	}
	if _, err := ParseDTD(KindNRE, ""); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ParseDTD(KindDRE, "a -> b* b"); err == nil {
		t.Error("non-deterministic regex should fail for KindDRE")
	}
}

func TestDTDDual(t *testing.T) {
	d := MustParseDTD(KindNRE, "root s\ns -> a*\na -> b?")
	dual, idx := d.Dual()
	// Paths: s, s/a, s/a/b. Finality: q_a (ε ∈ b?), q_b (leaf), q_s (a*).
	for _, c := range []struct {
		path string
		want bool
	}{
		{"s", true}, {"s a", true}, {"s a b", true},
		{"a", false}, {"s b", false}, {"s a b b", false},
	} {
		w := strings.Fields(c.path)
		if got := dual.Accepts(w); got != c.want {
			t.Errorf("dual on %q = %v, want %v", c.path, got, c.want)
		}
	}
	if len(idx) != 3 {
		t.Errorf("dual has %d name states, want 3", len(idx))
	}
}

func TestDTDReduce(t *testing.T) {
	// c is unbound (requires infinite tree), d is unreachable.
	d := MustParseDTD(KindNRE, `
		root s
		s -> a | c
		c -> c
		d -> a
	`)
	if d.IsReduced() {
		t.Error("unreduced DTD judged reduced")
	}
	r, err := d.Reduce()
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	if !r.IsReduced() {
		t.Error("Reduce result not reduced")
	}
	alpha := r.Alphabet()
	if strings.Join(alpha, " ") != "a s" {
		t.Errorf("reduced alphabet = %v, want [a s]", alpha)
	}
	// Language preserved: s(a) valid, s(c) invalid in both.
	for _, dd := range []*DTD{d, r} {
		if err := dd.Validate(xmltree.MustParse("s(a)")); err != nil {
			t.Errorf("s(a) rejected: %v", err)
		}
		if err := dd.Validate(xmltree.MustParse("s(c)")); err == nil {
			t.Error("s(c) accepted (c is unbound)")
		}
	}
}

func TestDTDReduceEmpty(t *testing.T) {
	d := MustParseDTD(KindNRE, "root s\ns -> a\na -> a")
	if !d.IsEmptyLang() {
		t.Error("language should be empty")
	}
	if _, err := d.Reduce(); err == nil {
		t.Error("reducing the empty language should fail")
	}
}

func TestEquivalentDTD(t *testing.T) {
	a := MustParseDTD(KindNRE, "root s\ns -> a a* b")
	b := MustParseDTD(KindNRE, "root s\ns -> a+ b")
	if ok, why := EquivalentDTD(a, b); !ok {
		t.Errorf("a a* b ≡ a+ b should hold: %s", why)
	}
	c := MustParseDTD(KindNRE, "root s\ns -> a* b")
	if ok, _ := EquivalentDTD(a, c); ok {
		t.Error("a+ b ≢ a* b")
	}
	// Equivalence must ignore useless names.
	d1 := MustParseDTD(KindNRE, "root s\ns -> a\nz -> z")
	d2 := MustParseDTD(KindNRE, "root s\ns -> a")
	if ok, why := EquivalentDTD(d1, d2); !ok {
		t.Errorf("useless names must not affect equivalence: %s", why)
	}
	// Different roots.
	e1 := MustParseDTD(KindNRE, "root s\ns -> a")
	e2 := MustParseDTD(KindNRE, "root t\nt -> a")
	if ok, _ := EquivalentDTD(e1, e2); ok {
		t.Error("different roots should not be equivalent")
	}
}

func TestDTDSizeAndString(t *testing.T) {
	d := MustParseDTD(KindNRE, "root s\ns -> a b*")
	if d.Size() <= 0 {
		t.Error("size should be positive")
	}
	s := d.String()
	if !strings.Contains(s, "root s") || !strings.Contains(s, "s -> a b*") {
		t.Errorf("String() = %q", s)
	}
}

func TestContentKinds(t *testing.T) {
	for _, kind := range AllKinds {
		c := MustContent(kind, "a b* | c")
		if c.Kind() != kind && kind != KindDRE {
			t.Errorf("kind mismatch for %s", kind)
		}
		if !c.Accepts([]strlang.Symbol{"a", "b", "b"}) || c.Accepts([]strlang.Symbol{"b"}) {
			t.Errorf("%s content wrong", kind)
		}
	}
	if _, err := NewContentRegex(KindDRE, strlang.MustParseRegex("a* a")); err == nil {
		t.Error("non-deterministic dRE accepted")
	}
	if _, err := FromNFA(KindDRE, strlang.RegexNFA(strlang.MustParseRegex("(a|b)* a (a|b)"))); err == nil {
		t.Error("FromNFA(dRE) on non-one-unambiguous language should fail")
	}
}
