package schema

import (
	"testing"

	"dxml/internal/xmltree"
)

func TestNormalizePreservesLanguage(t *testing.T) {
	sources := []string{
		// Theorem 4.8-style: two specializations of d with overlapping
		// languages.
		`root s
		 s -> a1 | b1
		 a1 : a -> d1
		 b1 : b -> d2
		 d1 : d -> x?
		 d2 : d -> x*
		 x -> ε`,
		// Example 7's shape: b̃¹ and b̃² overlap on b(g).
		`root s0
		 s0 -> a1 b1* | a2 b2*
		 a1 : a -> c
		 a2 : a -> d
		 b1 : b -> e | g
		 b2 : b -> g | h`,
		figure6EDTD,
	}
	for i, src := range sources {
		e := MustParseEDTD(KindNRE, src)
		n, err := Normalize(e, KindNFA)
		if err != nil {
			t.Fatalf("case %d: Normalize: %v", i, err)
		}
		if ok, w := EquivalentEDTD(e, n); !ok {
			t.Errorf("case %d: normalization changed language, witness %s", i, w)
		}
		if !IsNormalized(n) {
			t.Errorf("case %d: result not normalized", i)
		}
	}
}

func TestIsNormalizedDetectsOverlap(t *testing.T) {
	// b1 and b2 both derive b(g): not normalized.
	e := MustParseEDTD(KindNRE, `
		root s0
		s0 -> b1 | b2
		b1 : b -> e | g
		b2 : b -> g | h
	`)
	if IsNormalized(e) {
		t.Error("overlapping specializations should not be normalized")
	}
	n, err := Normalize(e, KindNFA)
	if err != nil {
		t.Fatal(err)
	}
	// Normalization must produce three disjoint b-specializations
	// ({b1}, {b2}, {b1,b2}).
	specs := n.Specializations("b")
	if len(specs) != 3 {
		t.Errorf("normalized b specializations = %v, want 3", specs)
	}
	for _, tr := range []string{"s0(b(e))", "s0(b(g))", "s0(b(h))"} {
		tree := xmltree.MustParse(tr)
		if (e.Validate(tree) == nil) != (n.Validate(tree) == nil) {
			t.Errorf("normalization disagrees on %s", tr)
		}
	}
}

func TestNormalizeExample8(t *testing.T) {
	// Example 8's normalized design: pi(s0) = (a1 a2)+, pi(a1) = b,
	// pi(a2) = c. Already normalized; normalization must keep two
	// disjoint specializations of a.
	e := MustParseEDTD(KindNRE, `
		root s0
		s0 -> (a1 a2)+
		a1 : a -> b
		a2 : a -> c
	`)
	if !IsNormalized(e) {
		t.Fatal("Example 8's type is normalized")
	}
	n, err := Normalize(e, KindNFA)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(n.Specializations("a")); got != 2 {
		t.Errorf("normalized a specializations = %d, want 2", got)
	}
	if ok, w := EquivalentEDTD(e, n); !ok {
		t.Errorf("language changed, witness %s", w)
	}
}

func TestNormalizeStartSet(t *testing.T) {
	// Root can be derived in two non-equivalent ways that overlap: s with
	// zero or more a-children where a1 requires b and a2 requires b?; the
	// normalized root set may need several subsets. Just check language
	// preservation and normalization.
	e := MustParseEDTD(KindNRE, `
		root s1
		root s2
		s1 : s -> a1
		s2 : s -> a2 a2
		a1 : a -> b?
		a2 : a -> b
	`)
	n, err := Normalize(e, KindNFA)
	if err != nil {
		t.Fatal(err)
	}
	if ok, w := EquivalentEDTD(e, n); !ok {
		t.Errorf("language changed, witness %s", w)
	}
	if !IsNormalized(n) {
		t.Error("not normalized")
	}
}
