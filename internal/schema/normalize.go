package schema

import (
	"fmt"
	"sort"

	"dxml/internal/strlang"
	"dxml/internal/uta"
)

// Normalize returns a normalized R-EDTD equivalent to e (Section 4.3,
// Lemma 4.10): for every element name a and distinct specializations ã, ã′
// of a in the result, [τd(ã)] ∩ [τd(ã′)] = ∅. The construction
// determinizes the tree automaton of e bottom-up; the new specialized
// names are the reachable subsets of old ones.
//
// The result's kind is the given one; for KindDRE the construction can
// fail, since determinization does not preserve one-unambiguity (the paper
// notes this — “If R = dRE the last step could not be always possible”).
// Normalized EDTDs may have several start names; see EDTD.Starts.
func Normalize(e *EDTD, kind Kind) (*EDTD, error) {
	red, err := e.Reduce()
	if err != nil {
		return nil, fmt.Errorf("schema: normalize: %w", err)
	}
	nuta, idx := red.ToNUTA()
	rev := make([]string, len(idx))
	for n, i := range idx {
		rev[i] = n
	}
	d := uta.Determinize(nuta, nil)
	d.Explore()

	// Name each nonempty d-state: element name + "#" + its member list.
	dName := make(map[int]string)
	dElem := make(map[int]string)
	for _, id := range d.ReachableDStates() {
		set := d.StateSet(id)
		if set.Len() == 0 {
			continue
		}
		members := set.Sorted()
		elem := red.Elem(rev[members[0]])
		var name string
		if len(members) == 1 {
			// Singleton subsets keep their original specialized name.
			name = rev[members[0]]
		} else {
			name = elem + "#"
			for i, m := range members {
				if i > 0 {
					name += "+"
				}
				name += rev[m]
			}
		}
		dName[id] = name
		dElem[id] = elem
	}

	out := &EDTD{Kind: kind, Names: map[string]string{}, Rules: map[string]*Content{}}
	var startIDs []int
	for _, id := range d.ReachableDStates() {
		if _, ok := dName[id]; ok && d.IsFinal(id) {
			startIDs = append(startIDs, id)
		}
	}
	sort.Ints(startIDs)
	for _, id := range startIDs {
		out.Starts = append(out.Starts, dName[id])
	}
	if len(out.Starts) == 0 {
		return nil, fmt.Errorf("schema: normalize: empty language")
	}
	for id, name := range dName {
		out.Names[name] = dElem[id]
		// Content: the horizontal language of d-state sequences yielding
		// exactly this d-state, with symbols renamed to the new names and
		// transitions on the empty d-state removed (no tree realizes it).
		dfa := d.ContentDFA(dElem[id], id)
		nfa := renameDStates(dfa, dName)
		content, err := FromNFA(kind, nfa)
		if err != nil {
			return nil, fmt.Errorf("schema: normalize rule %s: %w", name, err)
		}
		out.Rules[name] = content
	}
	reduced, err := out.Reduce()
	if err != nil {
		return nil, fmt.Errorf("schema: normalize: %w", err)
	}
	return reduced, nil
}

// renameDStates converts a DFA over d-state symbols into an NFA over the
// fresh specialized names, dropping symbols with no name (the empty
// d-state and other labels' states cannot appear in realizable content).
func renameDStates(dfa *strlang.DFA, dName map[int]string) *strlang.NFA {
	nfa := strlang.NewNFA()
	for q := 1; q < dfa.NumStates(); q++ {
		nfa.AddState()
	}
	nfa.SetStart(dfa.Start())
	for q := 0; q < dfa.NumStates(); q++ {
		if dfa.IsFinal(q) {
			nfa.MarkFinal(q)
		}
		for _, sym := range dfa.Alphabet() {
			t, ok := dfa.Next(q, sym)
			if !ok {
				continue
			}
			name, named := dName[uta.SymState(sym)]
			if !named {
				continue
			}
			nfa.AddTransition(q, name, t)
		}
	}
	return nfa
}

// IsNormalized reports whether distinct same-element specializations of e
// have disjoint tree languages (the defining property of Lemma 4.10). It
// decides disjointness exactly via tree-automata intersection emptiness.
func IsNormalized(e *EDTD) bool {
	for _, elem := range e.ElementNames() {
		specs := e.Specializations(elem)
		for i := 0; i < len(specs); i++ {
			for j := i + 1; j < len(specs); j++ {
				na, _ := e.SubType(specs[i]).ToNUTA()
				nb, _ := e.SubType(specs[j]).ToNUTA()
				if !uta.Intersect(na, nb).IsEmpty() {
					return false
				}
			}
		}
	}
	return true
}
