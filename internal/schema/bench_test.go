package schema

import (
	"testing"

	"dxml/internal/xmltree"
)

func benchEurostatDTD(b *testing.B) *DTD {
	b.Helper()
	d, err := ParseW3CDTD(KindNRE, `
		<!ELEMENT eurostat (averages, nationalIndex*)>
		<!ELEMENT averages (Good, index+)+>
		<!ELEMENT nationalIndex (country, Good, (index | value, year))>
		<!ELEMENT index (value, year)>
		<!ELEMENT country (#PCDATA)>
		<!ELEMENT Good (#PCDATA)>
		<!ELEMENT value (#PCDATA)>
		<!ELEMENT year (#PCDATA)>`)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func benchDoc(n int) *xmltree.Tree {
	doc := xmltree.MustParse("eurostat(averages(Good index(value year)))")
	for i := 0; i < n; i++ {
		doc.Children = append(doc.Children,
			xmltree.MustParse("nationalIndex(country Good index(value year))"))
	}
	return doc
}

func BenchmarkValidateDTD200(b *testing.B) {
	d := benchEurostatDTD(b)
	doc := benchDoc(200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := d.Validate(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidateSingleType(b *testing.B) {
	e := benchEurostatDTD(b).ToEDTD()
	doc := benchDoc(200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.ValidateSingleType(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidateEDTDViaUTA(b *testing.B) {
	e := benchEurostatDTD(b).ToEDTD()
	doc := benchDoc(200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Validate(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEquivalentSDTDvsEDTD(b *testing.B) {
	x := MustParseEDTD(KindNRE, "root s\ns -> a1*\na1 : a -> b1?\nb1 : b -> ε")
	y := MustParseEDTD(KindNRE, "root s\ns -> a1*\na1 : a -> b1 | ε\nb1 : b -> ε")
	b.Run("SDTD", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ok, _ := EquivalentSDTD(x, y); !ok {
				b.Fatal("should be equivalent")
			}
		}
	})
	b.Run("EDTD", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ok, _ := EquivalentEDTD(x, y); !ok {
				b.Fatal("should be equivalent")
			}
		}
	})
}

func BenchmarkNormalize(b *testing.B) {
	e := MustParseEDTD(KindNRE, `
		root s0
		s0 -> a1 b1* | a2 b2*
		a1 : a -> c
		a2 : a -> d
		b1 : b -> e | g
		b2 : b -> g | h`)
	for i := 0; i < b.N; i++ {
		if _, err := Normalize(e, KindNFA); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReduce(b *testing.B) {
	d := benchEurostatDTD(b)
	for i := 0; i < b.N; i++ {
		if _, err := d.Reduce(); err != nil {
			b.Fatal(err)
		}
	}
}
