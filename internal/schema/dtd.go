package schema

import (
	"fmt"
	"sort"
	"strings"

	"dxml/internal/strlang"
	"dxml/internal/xmltree"
)

// DTD is an R-DTD τ = ⟨Σ, π, s⟩ (Definition 3): π maps element names to
// content models over Σ, s is the start symbol. A tree t is in [τ] iff its
// root is labeled s and child-str(x) ∈ [π(lab(x))] for every node x.
// Element names without a rule are leaves (π(a) = {ε}), following the
// paper's shorthand.
type DTD struct {
	Kind  Kind
	Start string
	Rules map[string]*Content
}

// NewDTD returns an empty DTD of the given kind with the given start
// symbol.
func NewDTD(kind Kind, start string) *DTD {
	return &DTD{Kind: kind, Start: start, Rules: map[string]*Content{}}
}

// SetRule sets π(name) = c; c's kind must match the DTD's.
func (d *DTD) SetRule(name string, c *Content) error {
	if c.Kind() != d.Kind {
		return fmt.Errorf("schema: rule %s has kind %s, DTD has kind %s", name, c.Kind(), d.Kind)
	}
	d.Rules[name] = c
	return nil
}

// MustSetRule is SetRule that panics on error.
func (d *DTD) MustSetRule(name string, c *Content) {
	if err := d.SetRule(name, c); err != nil {
		panic(err)
	}
}

// Rule returns π(name), defaulting to {ε} for names without a rule.
func (d *DTD) Rule(name string) *Content {
	if c, ok := d.Rules[name]; ok {
		return c
	}
	return EpsContent(d.Kind)
}

// Alphabet returns the sorted element names Σ: the start symbol, every
// name with a rule and every name occurring in a content model.
func (d *DTD) Alphabet() []string {
	set := map[string]struct{}{d.Start: {}}
	for name, c := range d.Rules {
		set[name] = struct{}{}
		for _, s := range c.Lang().Alphabet() {
			set[s] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Validate reports whether t ∈ [d]; a non-nil error explains the first
// violation found in document order.
func (d *DTD) Validate(t *xmltree.Tree) error {
	if t.Label != d.Start {
		return fmt.Errorf("schema: root is %s, want %s", t.Label, d.Start)
	}
	var firstErr error
	t.Walk(func(n *xmltree.Tree, anc []string) bool {
		c := d.Rule(n.Label)
		if !c.Accepts(n.ChildStr()) {
			firstErr = fmt.Errorf("schema: node %s at %s has children %v ∉ [%s]",
				n.Label, strings.Join(anc, "/"), n.ChildStr(), c)
			return false
		}
		return true
	})
	return firstErr
}

// Dual returns dual(τ) (Definition 4): the dFA of root-to-node label paths
// of trees in [τ], with states {q0} ∪ {q_a : a ∈ Σ}. State ids: 0 for q0,
// 1+i for the i-th name of Alphabet(). Finality of q_a means ε ∈ [π(a)]
// (the node may be a leaf).
func (d *DTD) Dual() (*strlang.DFA, map[string]int) {
	alpha := d.Alphabet()
	idx := map[string]int{}
	dfa := strlang.NewDFA() // state 0 = q0
	for _, a := range alpha {
		idx[a] = dfa.AddState(d.Rule(a).AcceptsEps())
	}
	dfa.SetTransition(0, d.Start, idx[d.Start])
	for _, a := range alpha {
		for _, b := range d.Rule(a).UsefulSymbols() {
			dfa.SetTransition(idx[a], b, idx[b])
		}
	}
	return dfa, idx
}

// boundNames computes the bound marking of Definition 5: a name is bound
// when some finite tree can hang below it.
func (d *DTD) boundNames() map[string]bool {
	bound := map[string]bool{}
	alpha := d.Alphabet()
	for {
		changed := false
		for _, a := range alpha {
			if bound[a] {
				continue
			}
			c := d.Rule(a)
			if c.AcceptsEps() {
				bound[a] = true
				changed = true
				continue
			}
			// Is [π(a)] ∩ Σb⁺ nonempty, Σb the bound successors?
			var boundSyms []strlang.Symbol
			for _, b := range c.UsefulSymbols() {
				if bound[b] {
					boundSyms = append(boundSyms, b)
				}
			}
			if len(boundSyms) == 0 {
				continue
			}
			restricted := strlang.Intersect(c.Lang(), strlang.Plus(strlang.SetLang(boundSyms)))
			if !restricted.IsEmpty() {
				bound[a] = true
				changed = true
			}
		}
		if !changed {
			return bound
		}
	}
}

// usefulNames returns the names that are reachable from the start in the
// dual and bound (i.e. appear in some tree of [τ]).
func (d *DTD) usefulNames() map[string]bool {
	bound := d.boundNames()
	useful := map[string]bool{}
	if !bound[d.Start] {
		return useful
	}
	stack := []string{d.Start}
	useful[d.Start] = true
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, b := range d.Rule(a).UsefulSymbols() {
			if bound[b] && !useful[b] {
				useful[b] = true
				stack = append(stack, b)
			}
		}
	}
	return useful
}

// IsReduced reports whether τ is reduced (Definition 5): every dual state
// is useful and bound, and [τ] ≠ ∅.
func (d *DTD) IsReduced() bool {
	useful := d.usefulNames()
	if !useful[d.Start] {
		return false
	}
	for _, a := range d.Alphabet() {
		if !useful[a] {
			return false
		}
	}
	return true
}

// Reduce returns an equivalent reduced DTD, dropping unprofitable names and
// restricting content models (the procedure sketched after Definition 5).
// It fails if [τ] = ∅, or — for KindDRE only — if a restricted content
// model is no longer one-unambiguous.
func (d *DTD) Reduce() (*DTD, error) {
	useful := d.usefulNames()
	if !useful[d.Start] {
		return nil, fmt.Errorf("schema: [τ] is empty, cannot reduce")
	}
	keep := make([]strlang.Symbol, 0, len(useful))
	for a := range useful {
		keep = append(keep, a)
	}
	sort.Strings(keep)
	universe := strlang.UniversalLang(keep)
	out := NewDTD(d.Kind, d.Start)
	for a := range useful {
		c := d.Rule(a)
		if c.AcceptsEps() && len(c.UsefulSymbols()) == 0 {
			continue // leaf rule, omit (the default)
		}
		restricted := strlang.Intersect(c.Lang(), universe)
		nc, err := FromNFA(d.Kind, restricted)
		if err != nil {
			return nil, fmt.Errorf("schema: reducing rule %s: %w", a, err)
		}
		out.Rules[a] = nc
	}
	return out, nil
}

// IsEmptyLang reports whether [τ] = ∅.
func (d *DTD) IsEmptyLang() bool { return !d.usefulNames()[d.Start] }

// Size returns the representation size of the DTD (names plus content
// model sizes).
func (d *DTD) Size() int {
	n := len(d.Alphabet())
	for _, c := range d.Rules {
		n += c.Size()
	}
	return n
}

// String renders the DTD in the paper's arrow-grammar notation.
func (d *DTD) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "root %s\n", d.Start)
	names := make([]string, 0, len(d.Rules))
	for a := range d.Rules {
		names = append(names, a)
	}
	sort.Strings(names)
	for _, a := range names {
		fmt.Fprintf(&b, "%s -> %s\n", a, d.Rules[a])
	}
	return b.String()
}

// Clone returns a deep-enough copy of d (content models are immutable and
// shared).
func (d *DTD) Clone() *DTD {
	out := NewDTD(d.Kind, d.Start)
	for a, c := range d.Rules {
		out.Rules[a] = c
	}
	return out
}
