package schema

import (
	"testing"

	"dxml/internal/strlang"
	"dxml/internal/xmltree"
)

func TestSetRuleKindMismatch(t *testing.T) {
	d := NewDTD(KindNRE, "s")
	if err := d.SetRule("s", MustContent(KindNFA, "a")); err == nil {
		t.Error("kind mismatch accepted by DTD")
	}
	if err := d.SetRule("s", MustContent(KindNRE, "a")); err != nil {
		t.Errorf("matching kind rejected: %v", err)
	}
	e := NewEDTD(KindNRE, "s", "s")
	if err := e.SetRule("s", MustContent(KindNFA, "a")); err == nil {
		t.Error("kind mismatch accepted by EDTD")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSetRule should panic on mismatch")
		}
	}()
	e.MustSetRule("s", MustContent(KindDFA, "a"))
}

func TestCloneIndependence(t *testing.T) {
	d := MustParseDTD(KindNRE, "root s\ns -> a")
	c := d.Clone()
	c.Rules["s"] = MustContent(KindNRE, "b")
	if d.Rule("s").Accepts([]strlang.Symbol{"b"}) {
		t.Error("DTD Clone is shallow")
	}
	e := MustParseEDTD(KindNRE, "root s\ns -> a1\na1 : a -> b")
	ce := e.Clone()
	ce.Names["a1"] = "zzz"
	ce.Starts[0] = "other"
	if e.Elem("a1") == "zzz" || e.Starts[0] == "other" {
		t.Error("EDTD Clone is shallow")
	}
}

func TestEDTDSizeAndEmptyLang(t *testing.T) {
	e := MustParseEDTD(KindNRE, "root s\ns -> a1\na1 : a -> ε")
	if e.Size() <= 0 {
		t.Error("size should be positive")
	}
	if e.IsEmptyLang() {
		t.Error("nonempty language judged empty")
	}
	empty := MustParseEDTD(KindNRE, "root s\ns -> a1\na1 : a -> a1")
	if !empty.IsEmptyLang() {
		t.Error("empty language not detected")
	}
	if _, err := empty.Reduce(); err == nil {
		t.Error("reducing the empty EDTD should fail")
	}
	if _, err := Normalize(empty, KindNFA); err == nil {
		t.Error("normalizing the empty EDTD should fail")
	}
}

func TestIncludedEDTD(t *testing.T) {
	small := MustParseEDTD(KindNRE, "root s\ns -> a")
	big := MustParseEDTD(KindNRE, "root s\ns -> a | b")
	if ok, _ := IncludedEDTD(small, big); !ok {
		t.Error("inclusion should hold")
	}
	ok, w := IncludedEDTD(big, small)
	if ok {
		t.Fatal("inclusion should fail")
	}
	if w == nil || big.Validate(w) != nil || small.Validate(w) == nil {
		t.Errorf("bad witness %v", w)
	}
}

func TestMustParseW3CDTDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseW3CDTD should panic on bad input")
		}
	}()
	MustParseW3CDTD(KindNRE, "<!ELEMENT broken")
}

func TestContentAccessors(t *testing.T) {
	cRE, _ := NewContentRegex(KindNRE, strlang.MustParseRegex("a b"))
	if cRE.Regex() == nil {
		t.Error("Regex() should be set for regex kinds")
	}
	if cRE.DFA() != nil {
		t.Error("DFA() should be nil for regex kinds")
	}
	cDFA := NewContentDFA(strlang.RegexNFA(strlang.MustParseRegex("a b")).Determinize())
	if cDFA.DFA() == nil {
		t.Error("DFA() should be set for KindDFA")
	}
	if cDFA.Regex() != nil {
		t.Error("Regex() should be nil for KindDFA")
	}
}

func TestEquivalentDTDEmptyCases(t *testing.T) {
	empty1 := MustParseDTD(KindNRE, "root s\ns -> a\na -> a")
	empty2 := MustParseDTD(KindNRE, "root s\ns -> b\nb -> b")
	if ok, why := EquivalentDTD(empty1, empty2); !ok {
		t.Errorf("two empty languages should be equivalent: %s", why)
	}
	nonEmpty := MustParseDTD(KindNRE, "root s\ns -> a")
	if ok, _ := EquivalentDTD(empty1, nonEmpty); ok {
		t.Error("empty ≠ nonempty")
	}
}

func TestWitnessOfInvalid(t *testing.T) {
	e := MustParseEDTD(KindNRE, "root s\ns -> a1\na1 : a -> ε")
	if _, err := e.WitnessOf(xmltree.MustParse("s(b)")); err == nil {
		t.Error("WitnessOf should fail on invalid trees")
	}
}

func TestNormalizeDREFailure(t *testing.T) {
	// A type whose normalized content models are not one-unambiguous: the
	// union of overlapping b-specializations yields (roughly)
	// (b1|b12)*-style contents… use a content model that loses
	// one-unambiguity under determinization of the union.
	e := MustParseEDTD(KindNRE, `
		root s
		s -> x1 | x2
		x1 : x -> b1 b1* c1
		x2 : x -> b1* d1
		b1 : b -> ε
		c1 : c -> ε
		d1 : d -> ε
	`)
	// Whether this particular instance fails for dRE is
	// construction-specific; the requirement is: Normalize either
	// succeeds with a language-preserving dRE type or reports an error —
	// never silently changes the language.
	n, err := Normalize(e, KindDRE)
	if err != nil {
		t.Logf("Normalize(dRE) reported: %v", err)
		return
	}
	if ok, w := EquivalentEDTD(e, n); !ok {
		t.Errorf("normalization changed language on %s", w)
	}
}
