package schema

import (
	"fmt"
	"strings"

	"dxml/internal/strlang"
	"dxml/internal/xmltree"
)

// This file implements the single-type (R-SDTD, Definition 6) view of an
// EDTD: the deterministic top-down witness assignment, the dual automaton
// over element names, and conversions between DTDs and (S/E)DTDs.

// ToEDTD lifts a DTD into the trivially specialized EDTD of Section 3.3:
// each element name is its own specialization.
func (d *DTD) ToEDTD() *EDTD {
	e := NewEDTD(d.Kind, d.Start, d.Start)
	for a, c := range d.Rules {
		e.Names[a] = a
		e.Rules[a] = c
	}
	for _, a := range d.Alphabet() {
		if _, ok := e.Names[a]; !ok {
			e.Names[a] = a
		}
	}
	return e
}

// AsDTD converts an EDTD whose every element name has exactly one
// specialization back into a DTD. It fails otherwise.
func (e *EDTD) AsDTD() (*DTD, error) {
	if len(e.Starts) != 1 {
		return nil, fmt.Errorf("schema: EDTD has %d starts, want 1", len(e.Starts))
	}
	byElem := map[string]string{}
	for _, n := range e.SpecializedNames() {
		el := e.Elem(n)
		if prev, ok := byElem[el]; ok && prev != n {
			return nil, fmt.Errorf("schema: element %s has several specializations (%s, %s)", el, prev, n)
		}
		byElem[el] = n
	}
	d := NewDTD(e.Kind, e.Elem(e.Starts[0]))
	for _, n := range e.SpecializedNames() {
		c, ok := e.Rules[n]
		if !ok {
			continue
		}
		projected, err := FromNFA(e.Kind, projectNFA(c.Lang(), e.Elem))
		if err != nil {
			return nil, fmt.Errorf("schema: projecting rule %s: %w", n, err)
		}
		d.Rules[e.Elem(n)] = projected
	}
	return d, nil
}

// projectNFA relabels an NFA over specialized names by f (typically µ).
func projectNFA(nfa *strlang.NFA, f func(string) string) *strlang.NFA {
	out := strlang.NewNFA()
	for q := 1; q < nfa.NumStates(); q++ {
		out.AddState()
	}
	out.SetStart(nfa.Start())
	for q := range nfa.Finals().All() {
		out.MarkFinal(q)
	}
	nfa.EachTransition(func(from int, s strlang.Symbol, to int) {
		out.AddTransition(from, f(s), to)
	})
	for q := 0; q < nfa.NumStates(); q++ {
		for _, t := range nfa.EpsSucc(q) {
			out.AddEps(q, int(t))
		}
	}
	return out
}

// ProjectedRule returns µ(π(name)): the content model language with
// specialized names projected to element names.
func (e *EDTD) ProjectedRule(name string) *strlang.NFA {
	return projectNFA(e.Rule(name).Lang(), e.Elem)
}

// ChildWitnesses returns, for each specialized name ã, the map from
// element name b to the unique specialization b̃ occurring usefully in
// π(ã)'s alphabet — the precomputed specialized-name resolution that makes
// single-type EDTDs streamable top-down (each child's witness is forced by
// its label and its parent's witness). Only meaningful for single-type
// EDTDs; for general EDTDs an element name may have several
// specializations per rule and the table keeps an arbitrary one.
func (e *EDTD) ChildWitnesses() map[string]map[string]string {
	return e.witnessTable()
}

// SpecializationMap returns the full Σ̃(·) map: element name → sorted
// specialized names mapping to it. It is the batch form of
// Specializations, for consumers that need the whole table at once (the
// streaming validator's general-EDTD subset tracking).
func (e *EDTD) SpecializationMap() map[string][]string {
	out := map[string][]string{}
	for _, n := range e.SpecializedNames() {
		el := e.Elem(n)
		out[el] = append(out[el], n)
	}
	return out
}

// witnessTable returns, for each specialized name ã, the map from element
// name b to the unique specialization b̃ occurring in π(ã)'s alphabet.
// Only meaningful for single-type EDTDs.
func (e *EDTD) witnessTable() map[string]map[string]string {
	out := map[string]map[string]string{}
	for _, n := range e.SpecializedNames() {
		m := map[string]string{}
		for _, b := range e.Rule(n).UsefulSymbols() {
			m[e.Elem(b)] = b
		}
		out[n] = m
	}
	return out
}

// ValidateSingleType validates t against a single-type EDTD with the
// deterministic top-down witness assignment (linear in ‖t‖ modulo content
// membership tests). It fails if e is not single-type.
func (e *EDTD) ValidateSingleType(t *xmltree.Tree) error {
	if ok, el := e.IsSingleType(); !ok {
		return fmt.Errorf("schema: not single-type (element %s)", el)
	}
	var start string
	found := false
	for _, s := range e.Starts {
		if e.Elem(s) == t.Label {
			start, found = s, true
			break
		}
	}
	if !found {
		return fmt.Errorf("schema: root %s matches no start", t.Label)
	}
	wt := e.witnessTable()
	var rec func(n *xmltree.Tree, witness string, path []string) error
	rec = func(n *xmltree.Tree, witness string, path []string) error {
		table := wt[witness]
		mapped := make([]strlang.Symbol, len(n.Children))
		for i, c := range n.Children {
			w, ok := table[c.Label]
			if !ok {
				return fmt.Errorf("schema: at %s: child %s not allowed under witness %s",
					strings.Join(path, "/"), c.Label, witness)
			}
			mapped[i] = w
		}
		if !e.Rule(witness).Accepts(mapped) {
			return fmt.Errorf("schema: at %s: children %v ∉ [π(%s)]",
				strings.Join(path, "/"), n.ChildStr(), witness)
		}
		for i, c := range n.Children {
			if err := rec(c, mapped[i], append(path, c.Label)); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(t, start, []string{t.Label})
}

// WitnessOf returns the witness tree assigned to t by a single-type EDTD:
// t with each label replaced by its specialized name. It fails when t is
// invalid.
func (e *EDTD) WitnessOf(t *xmltree.Tree) (*xmltree.Tree, error) {
	if err := e.ValidateSingleType(t); err != nil {
		return nil, err
	}
	wt := e.witnessTable()
	var start string
	for _, s := range e.Starts {
		if e.Elem(s) == t.Label {
			start = s
			break
		}
	}
	var rec func(n *xmltree.Tree, witness string) *xmltree.Tree
	rec = func(n *xmltree.Tree, witness string) *xmltree.Tree {
		out := &xmltree.Tree{Label: witness}
		for _, c := range n.Children {
			out.Children = append(out.Children, rec(c, wt[witness][c.Label]))
		}
		return out
	}
	return rec(t, start), nil
}

// Dual returns dual(τ) for the EDTD (Definitions 4 and 6): the automaton of
// root-to-node element-name paths whose states are {q0} ∪ {q_ã}. For
// single-type EDTDs it is deterministic and is returned as a DFA along with
// the state index; for general EDTDs use DualNFA.
func (e *EDTD) Dual() (*strlang.DFA, map[string]int, error) {
	if ok, el := e.IsSingleType(); !ok {
		return nil, nil, fmt.Errorf("schema: dual is nondeterministic (element %s); not single-type", el)
	}
	names := e.SpecializedNames()
	idx := map[string]int{}
	dfa := strlang.NewDFA()
	for _, n := range names {
		idx[n] = dfa.AddState(e.Rule(n).AcceptsEps())
	}
	for _, s := range e.Starts {
		dfa.SetTransition(0, e.Elem(s), idx[s])
	}
	for _, n := range names {
		for _, b := range e.Rule(n).UsefulSymbols() {
			dfa.SetTransition(idx[n], e.Elem(b), idx[b])
		}
	}
	return dfa, idx, nil
}

// DualNFA returns the (possibly nondeterministic) dual of the EDTD over
// element names.
func (e *EDTD) DualNFA() (*strlang.NFA, map[string]int) {
	names := e.SpecializedNames()
	idx := map[string]int{}
	nfa := strlang.NewNFA() // state 0 = q0
	for _, n := range names {
		q := nfa.AddState()
		idx[n] = q
		if e.Rule(n).AcceptsEps() {
			nfa.MarkFinal(q)
		}
	}
	for _, s := range e.Starts {
		nfa.AddTransition(0, e.Elem(s), idx[s])
	}
	for _, n := range names {
		for _, b := range e.Rule(n).UsefulSymbols() {
			nfa.AddTransition(idx[n], e.Elem(b), idx[b])
		}
	}
	return nfa, idx
}
