package schema

import (
	"fmt"
	"strings"

	"dxml/internal/strlang"
)

// ParseDTD parses the arrow-grammar notation used throughout the paper:
//
//	root eurostat
//	eurostat -> averages, nationalIndex*
//	nationalIndex -> country, Good, (index | value, year)
//	index -> value, year
//
// Lines are rules "name -> regex" or the root declaration "root name"
// (the first rule's head is the root when no declaration is given). Blank
// lines and lines starting with '#' are ignored. Element names without a
// rule are leaves.
func ParseDTD(kind Kind, src string) (*DTD, error) {
	d := NewDTD(kind, "")
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "root "); ok {
			d.Start = strings.TrimSpace(rest)
			continue
		}
		head, re, err := splitRule(line)
		if err != nil {
			return nil, fmt.Errorf("schema: line %d: %w", lineNo+1, err)
		}
		if strings.Contains(head, ":") {
			return nil, fmt.Errorf("schema: line %d: specialized rule in a DTD", lineNo+1)
		}
		c, err := contentFromSource(kind, re)
		if err != nil {
			return nil, fmt.Errorf("schema: line %d: %w", lineNo+1, err)
		}
		if _, dup := d.Rules[head]; dup {
			return nil, fmt.Errorf("schema: line %d: duplicate rule for %s", lineNo+1, head)
		}
		d.Rules[head] = c
		if d.Start == "" {
			d.Start = head
		}
	}
	if d.Start == "" {
		return nil, fmt.Errorf("schema: no rules and no root declaration")
	}
	return d, nil
}

// MustParseDTD is ParseDTD panicking on error.
func MustParseDTD(kind Kind, src string) *DTD {
	d, err := ParseDTD(kind, src)
	if err != nil {
		panic(err)
	}
	return d
}

// ParseEDTD parses the arrow-grammar notation extended with specialized
// names:
//
//	root eurostat
//	eurostat -> averages, (natIndA, natIndB)+
//	natIndA : nationalIndex -> country, Good, index
//	natIndB : nationalIndex -> country, Good, value, year
//
// "name : element -> regex" declares µ(name) = element; without the colon,
// µ(name) = name. Multiple "root" lines declare a start set (normalized
// types). Leaf declarations without content may be written
// "name : element -> ε".
func ParseEDTD(kind Kind, src string) (*EDTD, error) {
	e := &EDTD{Kind: kind, Names: map[string]string{}, Rules: map[string]*Content{}}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "root "); ok {
			e.Starts = append(e.Starts, strings.TrimSpace(rest))
			continue
		}
		head, re, err := splitRule(line)
		if err != nil {
			return nil, fmt.Errorf("schema: line %d: %w", lineNo+1, err)
		}
		name, elem := head, head
		if before, after, ok := strings.Cut(head, ":"); ok {
			name = strings.TrimSpace(before)
			elem = strings.TrimSpace(after)
		}
		c, err := contentFromSource(kind, re)
		if err != nil {
			return nil, fmt.Errorf("schema: line %d: %w", lineNo+1, err)
		}
		if _, dup := e.Rules[name]; dup {
			return nil, fmt.Errorf("schema: line %d: duplicate rule for %s", lineNo+1, name)
		}
		e.Names[name] = elem
		e.Rules[name] = c
	}
	if len(e.Starts) == 0 {
		return nil, fmt.Errorf("schema: missing root declaration")
	}
	for _, s := range e.Starts {
		if _, ok := e.Names[s]; !ok {
			e.Names[s] = s
		}
	}
	return e, nil
}

// MustParseEDTD is ParseEDTD panicking on error.
func MustParseEDTD(kind Kind, src string) *EDTD {
	e, err := ParseEDTD(kind, src)
	if err != nil {
		panic(err)
	}
	return e
}

func splitRule(line string) (head, re string, err error) {
	before, after, ok := strings.Cut(line, "->")
	if !ok {
		before, after, ok = strings.Cut(line, "→")
	}
	if !ok {
		return "", "", fmt.Errorf("rule %q has no arrow", line)
	}
	return strings.TrimSpace(before), strings.TrimSpace(after), nil
}

func contentFromSource(kind Kind, src string) (*Content, error) {
	re, err := strlang.ParseRegex(src)
	if err != nil {
		return nil, err
	}
	switch kind {
	case KindNRE, KindDRE:
		return NewContentRegex(kind, re)
	case KindNFA:
		return NewContentNFA(strlang.RegexNFA(re)), nil
	case KindDFA:
		return NewContentDFA(strlang.RegexNFA(re).Determinize().Minimize()), nil
	}
	return nil, fmt.Errorf("unknown kind %d", int(kind))
}

// ParseW3CDTD parses W3C <!ELEMENT …> declarations, e.g. the paper's
// Figure 3:
//
//	<!ELEMENT eurostat (averages, nationalIndex*)>
//	<!ELEMENT averages (Good, index+)+>
//	<!ELEMENT country (#PCDATA)>
//
// #PCDATA and EMPTY content become leaves (ε). The root is the first
// declared element. The resulting DTD has the given kind; W3C proper is
// KindDRE, and a non-deterministic content model is rejected for that kind.
func ParseW3CDTD(kind Kind, src string) (*DTD, error) {
	d := NewDTD(kind, "")
	rest := src
	for {
		start := strings.Index(rest, "<!ELEMENT")
		if start < 0 {
			break
		}
		end := strings.Index(rest[start:], ">")
		if end < 0 {
			return nil, fmt.Errorf("schema: unterminated <!ELEMENT in W3C DTD")
		}
		decl := rest[start+len("<!ELEMENT") : start+end]
		rest = rest[start+end+1:]
		fields := strings.Fields(decl)
		if len(fields) < 2 {
			return nil, fmt.Errorf("schema: malformed declaration %q", decl)
		}
		name := fields[0]
		model := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(decl), name))
		re, err := parseW3CModel(model)
		if err != nil {
			return nil, fmt.Errorf("schema: element %s: %w", name, err)
		}
		var c *Content
		switch kind {
		case KindNRE, KindDRE:
			c, err = NewContentRegex(kind, re)
		case KindNFA:
			c, err = NewContentNFA(strlang.RegexNFA(re)), nil
		case KindDFA:
			c, err = NewContentDFA(strlang.RegexNFA(re).Determinize().Minimize()), nil
		}
		if err != nil {
			return nil, fmt.Errorf("schema: element %s: %w", name, err)
		}
		if _, dup := d.Rules[name]; dup {
			return nil, fmt.Errorf("schema: duplicate declaration of %s", name)
		}
		d.Rules[name] = c
		if d.Start == "" {
			d.Start = name
		}
	}
	if d.Start == "" {
		return nil, fmt.Errorf("schema: no <!ELEMENT declarations found")
	}
	return d, nil
}

// MustParseW3CDTD is ParseW3CDTD panicking on error.
func MustParseW3CDTD(kind Kind, src string) *DTD {
	d, err := ParseW3CDTD(kind, src)
	if err != nil {
		panic(err)
	}
	return d
}

// parseW3CModel parses a W3C content model into a regex: “EMPTY”,
// “(#PCDATA)” and “(#PCDATA)*” become ε; otherwise the model is regex
// syntax already (commas, |, *, +, ?).
func parseW3CModel(model string) (strlang.Regex, error) {
	trimmed := strings.TrimSpace(model)
	if trimmed == "EMPTY" {
		return strlang.REps{}, nil
	}
	re, err := strlang.ParseRegex(trimmed)
	if err != nil {
		return nil, err
	}
	return dropPCDATA(re), nil
}

// dropPCDATA replaces #PCDATA atoms by ε (our abstraction ignores text).
func dropPCDATA(re strlang.Regex) strlang.Regex {
	switch t := re.(type) {
	case strlang.RSym:
		if t.Sym == "#PCDATA" {
			return strlang.REps{}
		}
		return t
	case strlang.RConcat:
		args := make([]strlang.Regex, len(t.Args))
		for i, a := range t.Args {
			args[i] = dropPCDATA(a)
		}
		return strlang.Cat(args...)
	case strlang.RAlt:
		args := make([]strlang.Regex, len(t.Args))
		for i, a := range t.Args {
			args[i] = dropPCDATA(a)
		}
		return strlang.Alt(args...)
	case strlang.RStar:
		return strlang.StarR(dropPCDATA(t.Arg))
	case strlang.RPlus:
		return strlang.PlusR(dropPCDATA(t.Arg))
	case strlang.ROpt:
		return strlang.OptR(dropPCDATA(t.Arg))
	default:
		return re
	}
}
