package schema

import (
	"strings"
	"testing"

	"dxml/internal/xmltree"
)

// figure6EDTD is the paper's Figure 6 type τ″: natIndA/natIndB specialize
// nationalIndex.
const figure6EDTD = `
root eurostat
eurostat -> averages, (natIndA, natIndB)+
averages -> (Good, index+)+
natIndA : nationalIndex -> country, Good, index
natIndB : nationalIndex -> country, Good, value, year
index -> value, year
`

func TestParseEDTDFigure6(t *testing.T) {
	e := MustParseEDTD(KindNRE, figure6EDTD)
	if e.Elem("natIndA") != "nationalIndex" || e.Elem("natIndB") != "nationalIndex" {
		t.Fatal("µ not parsed")
	}
	specs := e.Specializations("nationalIndex")
	if strings.Join(specs, " ") != "natIndA natIndB" {
		t.Errorf("Specializations = %v", specs)
	}
	// τ″ is not single-type (natIndA and natIndB share a content model).
	if ok, el := e.IsSingleType(); ok || el != "nationalIndex" {
		t.Errorf("IsSingleType = %v, %s", ok, el)
	}
	good := xmltree.MustParse(`eurostat(
		averages(Good index(value year))
		nationalIndex(country Good index(value year))
		nationalIndex(country Good value year))`)
	if err := e.Validate(good); err != nil {
		t.Errorf("valid doc rejected: %v", err)
	}
	// Two A-format national indexes in a row violate (natIndA, natIndB)+.
	bad := xmltree.MustParse(`eurostat(
		averages(Good index(value year))
		nationalIndex(country Good index(value year))
		nationalIndex(country Good index(value year)))`)
	if err := e.Validate(bad); err == nil {
		t.Error("invalid doc accepted")
	}
}

func TestSingleTypeValidation(t *testing.T) {
	// Example 6's τ1: s1 → b d+ a(b+)* with specializations of a, b, d.
	e := MustParseEDTD(KindNRE, `
		root s1
		s1 -> b1, d1+, a1*
		a1 : a -> b1+
		b1 : b -> ε
		d1 : d -> ε
	`)
	if ok, el := e.IsSingleType(); !ok {
		t.Fatalf("should be single-type, conflict on %s", el)
	}
	good := xmltree.MustParse("s1(b d d a(b b b))")
	if err := e.ValidateSingleType(good); err != nil {
		t.Errorf("valid doc rejected: %v", err)
	}
	if err := e.Validate(good); err != nil {
		t.Errorf("NUTA validation disagrees: %v", err)
	}
	bad := xmltree.MustParse("s1(b a(b))")
	if err := e.ValidateSingleType(bad); err == nil {
		t.Error("invalid doc accepted (missing d+)")
	}
	w, err := e.WitnessOf(good)
	if err != nil {
		t.Fatalf("WitnessOf: %v", err)
	}
	if w.String() != "s1(b1 d1 d1 a1(b1 b1 b1))" {
		t.Errorf("witness = %s", w)
	}
}

// TestSingleTypeAgreesWithNUTA cross-validates the deterministic top-down
// validator against the tree-automaton semantics on many trees.
func TestSingleTypeAgreesWithNUTA(t *testing.T) {
	e := MustParseEDTD(KindNRE, `
		root s
		s -> a1, b1*
		a1 : a -> c1?
		b1 : b -> a1*
		c1 : c -> ε
	`)
	trees := []string{
		"s(a)", "s(a(c))", "s(a b)", "s(a b(a a))", "s(a b(a(c)))",
		"s(b)", "s(a a)", "s(a(c c))", "s(a b(c))", "s", "a", "s(a(c) b b)",
	}
	for _, src := range trees {
		tr := xmltree.MustParse(src)
		viaST := e.ValidateSingleType(tr) == nil
		viaUTA := e.Validate(tr) == nil
		if viaST != viaUTA {
			t.Errorf("%s: single-type=%v, NUTA=%v", src, viaST, viaUTA)
		}
	}
}

func TestEDTDDual(t *testing.T) {
	e := MustParseEDTD(KindNRE, `
		root s
		s -> a1, b1*
		a1 : a -> c1?
		b1 : b -> a2*
		a2 : a -> ε
		c1 : c -> ε
	`)
	dfa, _, err := e.Dual()
	if err != nil {
		t.Fatalf("Dual: %v", err)
	}
	for _, c := range []struct {
		path string
		want bool
	}{
		{"s a", true}, {"s a c", true}, {"s b a", true},
		{"s b a c", false}, // a under b is a2, a leaf
		{"a", false},
	} {
		if got := dfa.Accepts(strings.Fields(c.path)); got != c.want {
			t.Errorf("dual on %q = %v, want %v", c.path, got, c.want)
		}
	}
	// A non-single-type EDTD has no deterministic dual.
	e2 := MustParseEDTD(KindNRE, "root s\ns -> a1 | a2\na1 : a -> b\na2 : a -> c")
	if _, _, err := e2.Dual(); err == nil {
		t.Error("Dual should fail on non-single-type")
	}
	if nfa, _ := e2.DualNFA(); !nfa.Accepts([]string{"s", "a", "b"}) {
		t.Error("DualNFA should accept s a b")
	}
}

func TestEDTDReduce(t *testing.T) {
	e := MustParseEDTD(KindNRE, `
		root s
		s -> a1 | z1
		a1 : a -> ε
		z1 : z -> z1
	`)
	r, err := e.Reduce()
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	for _, n := range r.SpecializedNames() {
		if n == "z1" {
			t.Error("unbound name z1 survived reduction")
		}
	}
	if ok, tr := EquivalentEDTD(e, r); !ok {
		t.Errorf("reduction changed language, witness %s", tr)
	}
}

func TestEquivalentEDTD(t *testing.T) {
	a := MustParseEDTD(KindNRE, "root s\ns -> x1 | x2\nx1 : a -> b\nx2 : a -> c")
	b := MustParseEDTD(KindNRE, "root s\ns -> y1\ny1 : a -> b | c")
	if ok, w := EquivalentEDTD(a, b); !ok {
		t.Errorf("equivalent EDTDs judged different, witness %s", w)
	}
	c := MustParseEDTD(KindNRE, "root s\ns -> y1\ny1 : a -> b")
	ok, w := EquivalentEDTD(a, c)
	if ok {
		t.Fatal("different EDTDs judged equivalent")
	}
	if w == nil || (a.Validate(w) == nil) == (c.Validate(w) == nil) {
		t.Errorf("invalid witness %v", w)
	}
}

func TestEquivalentSDTDAgainstEDTDOracle(t *testing.T) {
	pairs := []struct {
		x, y string
		want bool
	}{
		{
			"root s\ns -> a1*\na1 : a -> b1?\nb1 : b -> ε",
			"root s\ns -> a1*\na1 : a -> b1 | ε\nb1 : b -> ε",
			true,
		},
		{
			"root s\ns -> a1*\na1 : a -> b1?\nb1 : b -> ε",
			"root s\ns -> a1*\na1 : a -> b1\nb1 : b -> ε",
			false,
		},
		{
			// Same language, differently named specializations.
			"root s\ns -> x1 y1\nx1 : a -> b\ny1 : c -> ε",
			"root s\ns -> p c\np : a -> b",
			true,
		},
		{
			// Deep difference.
			"root s\ns -> a1\na1 : a -> b1\nb1 : b -> c*",
			"root s\ns -> a1\na1 : a -> b1\nb1 : b -> c?",
			false,
		},
	}
	for i, p := range pairs {
		x := MustParseEDTD(KindNRE, p.x)
		y := MustParseEDTD(KindNRE, p.y)
		got, why := EquivalentSDTD(x, y)
		if got != p.want {
			t.Errorf("case %d: EquivalentSDTD = %v (%s), want %v", i, got, why, p.want)
		}
		oracle, _ := EquivalentEDTD(x, y)
		if got != oracle {
			t.Errorf("case %d: SDTD(%v) and EDTD(%v) deciders disagree", i, got, oracle)
		}
	}
}

func TestSubTypeAndWitnessStates(t *testing.T) {
	e := MustParseEDTD(KindNRE, figure6EDTD)
	sub := e.SubType("natIndA")
	if err := sub.Validate(xmltree.MustParse("nationalIndex(country Good index(value year))")); err != nil {
		t.Errorf("subtype rejects its tree: %v", err)
	}
	if err := sub.Validate(xmltree.MustParse("nationalIndex(country Good value year)")); err == nil {
		t.Error("subtype accepts the B format")
	}
	ws := e.WitnessStates(xmltree.MustParse("nationalIndex(country Good value year)"))
	if strings.Join(ws, " ") != "natIndB" {
		t.Errorf("WitnessStates = %v", ws)
	}
}

func TestAsDTDAndToEDTD(t *testing.T) {
	d := MustParseDTD(KindNRE, "root s\ns -> a b*\na -> c?")
	e := d.ToEDTD()
	if ok, _ := e.IsSingleType(); !ok {
		t.Error("trivially specialized EDTD should be single-type")
	}
	back, err := e.AsDTD()
	if err != nil {
		t.Fatalf("AsDTD: %v", err)
	}
	if ok, why := EquivalentDTD(d, back); !ok {
		t.Errorf("round trip changed language: %s", why)
	}
	e2 := MustParseEDTD(KindNRE, "root s\ns -> a1 a2\na1 : a -> b\na2 : a -> c")
	if _, err := e2.AsDTD(); err == nil {
		t.Error("AsDTD should fail with two specializations of a")
	}
}
