// Package schema implements the paper's abstractions of XML schema
// languages (Section 2.2): R-DTDs (Definition 3), R-SDTDs (Definition 6)
// and R-EDTDs (Definition 7), where the content-model formalism R varies
// over nFAs, dFAs, nREs and dREs. It provides validation, reducedness
// (Definition 5), the dual vertical automata (Definition 4), the
// single-type requirement, equivalence for each class, normalization of
// EDTDs (Lemma 4.10), and concrete syntaxes (the arrow-grammar notation of
// the paper's figures and W3C <!ELEMENT …> declarations).
package schema

import (
	"fmt"
	"sync"

	"dxml/internal/strlang"
)

// Kind identifies the formalism R used for content models.
type Kind int

// The four content-model formalisms of the paper.
const (
	KindNFA Kind = iota // nondeterministic finite automata
	KindDFA             // deterministic finite automata
	KindNRE             // (possibly nondeterministic) regular expressions
	KindDRE             // deterministic (one-unambiguous) regular expressions
)

// String returns the paper's name for the kind.
func (k Kind) String() string {
	switch k {
	case KindNFA:
		return "nFA"
	case KindDFA:
		return "dFA"
	case KindNRE:
		return "nRE"
	case KindDRE:
		return "dRE"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// AllKinds lists the four formalisms, in the paper's Table 2 order.
var AllKinds = []Kind{KindNFA, KindNRE, KindDFA, KindDRE}

// Content is a content model: a regular language in one of the four
// formalisms. The language is always available as an NFA; regex kinds also
// carry their expression, and KindDFA carries the deterministic automaton.
type Content struct {
	kind Kind
	re   strlang.Regex // non-nil for KindNRE/KindDRE
	nfa  *strlang.NFA  // always non-nil
	dfa  *strlang.DFA  // non-nil for KindDFA

	// compiled caches the minimal DFA of the language, computed on first
	// use. Content models are immutable and shared (EDTD.Clone and SubType
	// alias them), so one compilation serves every consumer — in particular
	// the streaming validation machines, which step content DFAs per event.
	compileOnce sync.Once
	compiled    *strlang.DFA
}

// NewContentRegex builds a content model of a regex kind. For KindDRE the
// expression must be syntactically deterministic.
func NewContentRegex(kind Kind, re strlang.Regex) (*Content, error) {
	switch kind {
	case KindNRE:
	case KindDRE:
		if ok, sym := strlang.RegexDeterministic(re); !ok {
			return nil, fmt.Errorf("schema: regex %s is not deterministic (symbol %s)", strlang.RegexString(re), sym)
		}
	default:
		return nil, fmt.Errorf("schema: NewContentRegex with automaton kind %s", kind)
	}
	return &Content{kind: kind, re: re, nfa: strlang.RegexNFA(re)}, nil
}

// NewContentNFA builds a KindNFA content model.
func NewContentNFA(nfa *strlang.NFA) *Content {
	return &Content{kind: KindNFA, nfa: nfa}
}

// NewContentDFA builds a KindDFA content model.
func NewContentDFA(dfa *strlang.DFA) *Content {
	return &Content{kind: KindDFA, dfa: dfa, nfa: dfa.NFA()}
}

// FromNFA represents the language of nfa in the given kind. For KindDFA it
// determinizes; for the regex kinds it converts via state elimination
// (KindNRE) or the Brüggemann-Klein/Wood construction (KindDRE, which fails
// when the language is not one-unambiguous).
func FromNFA(kind Kind, nfa *strlang.NFA) (*Content, error) {
	switch kind {
	case KindNFA:
		return NewContentNFA(nfa), nil
	case KindDFA:
		return NewContentDFA(nfa.Determinize().Minimize()), nil
	case KindNRE:
		return &Content{kind: KindNRE, re: strlang.RegexFromNFA(nfa), nfa: nfa}, nil
	case KindDRE:
		re, ok := strlang.BuildDRE(nfa)
		if !ok {
			return nil, fmt.Errorf("schema: language is not one-unambiguous, no dRE exists")
		}
		return &Content{kind: KindDRE, re: re, nfa: strlang.RegexNFA(re)}, nil
	}
	return nil, fmt.Errorf("schema: unknown kind %d", int(kind))
}

// MustContent parses a regex in the concrete syntax and wraps it as a
// content model of the given kind (panicking on error; for tests and fixed
// tables). Automaton kinds are built from the parsed regex.
func MustContent(kind Kind, src string) *Content {
	re := strlang.MustParseRegex(src)
	switch kind {
	case KindNRE, KindDRE:
		c, err := NewContentRegex(kind, re)
		if err != nil {
			panic(err)
		}
		return c
	case KindNFA:
		return NewContentNFA(strlang.RegexNFA(re))
	case KindDFA:
		return NewContentDFA(strlang.RegexNFA(re).Determinize().Minimize())
	}
	panic("schema: unknown kind")
}

// Kind returns the formalism of c.
func (c *Content) Kind() Kind { return c.kind }

// Lang returns the content language as an NFA (shared; treat as
// read-only).
func (c *Content) Lang() *strlang.NFA { return c.nfa }

// Regex returns the expression for regex kinds (nil otherwise).
func (c *Content) Regex() strlang.Regex { return c.re }

// DFA returns the automaton for KindDFA (nil otherwise).
func (c *Content) DFA() *strlang.DFA { return c.dfa }

// CompiledDFA returns the minimal trimmed DFA of the content language,
// compiling it on first use and caching it on the (immutable, shared)
// content model. The result's alphabet is exactly the language's useful
// symbols, and its internal caches are primed, so it is safe for
// concurrent read-only stepping.
func (c *Content) CompiledDFA() *strlang.DFA {
	c.compileOnce.Do(func() {
		c.compiled = c.nfa.Determinize().Minimize()
		c.compiled.AlphabetIDs() // prime the cache for lock-free reads
	})
	return c.compiled
}

// Size returns the representation size of c in its own formalism: regex
// AST nodes for regex kinds, states+transitions for automaton kinds. This
// is the measure behind the paper's Table 2 size rows.
func (c *Content) Size() int {
	switch c.kind {
	case KindNRE, KindDRE:
		return strlang.RegexSize(c.re)
	case KindDFA:
		return c.dfa.Size()
	default:
		return c.nfa.Size()
	}
}

// Accepts reports whether the content language contains w.
func (c *Content) Accepts(w []strlang.Symbol) bool { return c.nfa.Accepts(w) }

// AcceptsEps reports whether ε is in the content language.
func (c *Content) AcceptsEps() bool { return c.nfa.AcceptsEps() }

// UsefulSymbols returns the symbols occurring in the content language (its
// “alphabet” in the sense of Definition 4).
func (c *Content) UsefulSymbols() []strlang.Symbol { return c.nfa.UsefulSymbols() }

// String renders the content model: the regex when available, otherwise a
// regex recovered from the automaton.
func (c *Content) String() string {
	if c.re != nil {
		return strlang.RegexString(c.re)
	}
	return strlang.RegexString(strlang.RegexFromNFA(c.nfa))
}

// EpsContent returns a content model for {ε} in the given kind.
func EpsContent(kind Kind) *Content {
	c, err := FromNFA(kind, strlang.EpsLang())
	if err != nil {
		panic(err) // {ε} is representable in every kind
	}
	return c
}
