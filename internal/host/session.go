package host

import (
	"context"
	"io"
	"sync"

	"dxml/internal/transport"
)

// Session opens an in-process session against the registry: the same
// admission control, routing, and accounting as a TCP hello, without
// the socket. An unknown digest refuses with transport.ErrUnknownDesign
// and an over-budget hello with transport.ErrOverCapacity — typed
// exactly like the wire's refuse frame — so both transports share one
// error contract. Close the session to release its admission slot.
func (r *Registry) Session(digest []byte, chunk int) (transport.Session, error) {
	route, err := r.Route(digest)
	if err != nil {
		return nil, err
	}
	return &gatedSession{
		inner: &transport.InProc{Sources: route.Sources, Chunk: chunk},
		gate:  route.Gate,
		close: route.Close,
	}, nil
}

// gatedSession threads the in-process transport's traffic through the
// registry's gate, mirroring what the TCP host's serving loop does on
// the wire: verdicts and delivered fragments cost their envelope,
// chunks and edits their payload, and every open transfer holds one
// admission slot until it ends.
type gatedSession struct {
	inner     *transport.InProc
	gate      transport.Gate
	close     func()
	closeOnce sync.Once
}

func (s *gatedSession) Verdict(ctx context.Context, fn string) (bool, error) {
	v, err := s.inner.Verdict(ctx, fn)
	if err == nil {
		s.gate.VerdictServed(fn)
	}
	return v, err
}

func (s *gatedSession) Open(ctx context.Context, fn string) (transport.Fragment, error) {
	if err := s.gate.OpenStream(fn); err != nil {
		return nil, err
	}
	frag, err := s.inner.Open(ctx, fn)
	if err != nil {
		s.gate.CloseStream(fn)
		return nil, err
	}
	return &gatedFragment{inner: frag, gate: s.gate, fn: fn}, nil
}

func (s *gatedSession) Close() error {
	s.closeOnce.Do(s.close)
	return s.inner.Close()
}

// Subscribe opens a gated live subscription; the feed's chunks and
// edits are accounted as they are consumed.
func (s *gatedSession) Subscribe(ctx context.Context, fn string) (transport.EditFeed, error) {
	if err := s.gate.OpenStream(fn); err != nil {
		return nil, err
	}
	feed, err := s.inner.Subscribe(ctx, fn)
	if err != nil {
		s.gate.CloseStream(fn)
		return nil, err
	}
	return &gatedFeed{inner: feed, gate: s.gate, fn: fn}, nil
}

// Resubscribe reopens a subscription through the gate; a suffix resume
// is recorded against the tenant's reconnect counter.
func (s *gatedSession) Resubscribe(ctx context.Context, fn string, after uint64) (transport.EditFeed, error) {
	if err := s.gate.OpenStream(fn); err != nil {
		return nil, err
	}
	feed, err := s.inner.Resubscribe(ctx, fn, after)
	if err != nil {
		s.gate.CloseStream(fn)
		return nil, err
	}
	if feed.Resumed() {
		s.gate.Resumed(fn)
	}
	return &gatedFeed{inner: feed, gate: s.gate, fn: fn}, nil
}

// gatedFragment accounts one fragment transfer: each consumed chunk is
// a frame, a clean EOF is the delivered envelope, and the stream slot
// is released exactly once however the transfer ends.
type gatedFragment struct {
	inner   transport.Fragment
	gate    transport.Gate
	fn      string
	release sync.Once
}

func (f *gatedFragment) Size() int { return f.inner.Size() }

func (f *gatedFragment) Next() ([]byte, error) {
	chunk, err := f.inner.Next()
	switch {
	case err == io.EOF:
		f.gate.FragmentDelivered(f.fn)
		f.release.Do(func() { f.gate.CloseStream(f.fn) })
	case err == nil:
		f.gate.ChunkShipped(len(chunk))
	}
	return chunk, err
}

func (f *gatedFragment) Abort() {
	f.inner.Abort()
	f.release.Do(func() { f.gate.CloseStream(f.fn) })
}

// gatedFeed accounts one live subscription: snapshot chunks and edits
// as frames, the slot released at Close.
type gatedFeed struct {
	inner   transport.EditFeed
	gate    transport.Gate
	fn      string
	release sync.Once
}

func (f *gatedFeed) Base() uint64      { return f.inner.Base() }
func (f *gatedFeed) SnapshotSize() int { return f.inner.SnapshotSize() }
func (f *gatedFeed) Resumed() bool     { return f.inner.Resumed() }

func (f *gatedFeed) NextChunk() ([]byte, error) {
	chunk, err := f.inner.NextChunk()
	if err == nil {
		f.gate.ChunkShipped(len(chunk))
	}
	return chunk, err
}

func (f *gatedFeed) NextEdit(ctx context.Context) (transport.EditFrame, error) {
	e, err := f.inner.NextEdit(ctx)
	if err == nil {
		f.gate.EditShipped(e.WireSize())
	}
	return e, err
}

func (f *gatedFeed) SendVerdict(version uint64, valid bool) error {
	return f.inner.SendVerdict(version, valid)
}

func (f *gatedFeed) Close() error {
	f.release.Do(func() { f.gate.CloseStream(f.fn) })
	return f.inner.Close()
}
