package host

import (
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"testing"

	"dxml/internal/obs"
	"dxml/internal/transport"
)

// newTestServer boots a full Server (federation + HTTP listener) over
// one registered mini design and returns it with its HTTP base URL.
func newTestServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	reg := NewRegistry(cfg)
	if err := reg.Register(miniDesign(1, 5000)); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ln.Close()
		t.Fatal(err)
	}
	srv := NewServer(reg, ln, httpLn)
	t.Cleanup(func() { srv.Close() })
	return srv, "http://" + srv.HTTPAddr().String()
}

func httpGet(t *testing.T, url string, accept string) (int, string, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	var buf [4096]byte
	for {
		n, err := resp.Body.Read(buf[:])
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), sb.String()
}

// TestHealthzUptimeVersion pins the /healthz additions: the build
// version string and a nonnegative uptime ride along with the load
// numbers, without disturbing the existing fields.
func TestHealthzUptimeVersion(t *testing.T) {
	_, base := newTestServer(t, Config{})
	code, ct, body := httpGet(t, base+"/healthz", "")
	if code != http.StatusOK || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("healthz: %d %s", code, ct)
	}
	var h struct {
		Status        string  `json:"status"`
		Version       string  `json:"version"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		Designs       int     `json:"designs"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz body: %v\n%s", err, body)
	}
	if h.Status != "ok" || h.Designs != 1 {
		t.Fatalf("healthz = %+v", h)
	}
	if h.Version != obs.Version {
		t.Fatalf("version %q, want the stamped %q", h.Version, obs.Version)
	}
	if h.UptimeSeconds < 0 {
		t.Fatalf("negative uptime %g", h.UptimeSeconds)
	}
}

// TestMetricsContentNegotiation is the scrape contract: a Prometheus
// scraper (Accept: text/plain) gets the 0.0.4 text exposition with the
// wire's chunk-RTT and admission-latency histograms populated by real
// traffic, plus per-tenant rollups; everyone else gets the original
// JSON body unchanged.
func TestMetricsContentNegotiation(t *testing.T) {
	srv, base := newTestServer(t, Config{Obs: obs.New()})

	// Drive one real session so the histograms have samples: the hello
	// times admission, and a transfer of many more 64-byte chunks than
	// the credit window forces acks (and so RTT samples) mid-stream.
	d := miniDesign(1, 5000)
	c, err := transport.Dial(srv.Addr().String(), transport.Config{Digest: d.Digest, Chunk: 64})
	if err != nil {
		t.Fatal(err)
	}
	frag, err := c.Open(t.Context(), "f1")
	if err != nil {
		t.Fatal(err)
	}
	drain(t, frag)
	c.Close()

	code, ct, prom := httpGet(t, base+"/metrics", "text/plain")
	if code != http.StatusOK || !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("prom scrape: %d %s", code, ct)
	}
	for _, want := range []string{
		"# TYPE dxml_chunk_rtt_seconds histogram",
		`dxml_chunk_rtt_seconds_bucket{le="+Inf"}`,
		"# TYPE dxml_admission_latency_seconds histogram",
		"dxml_chunks_sent_total",
		"dxml_uptime_seconds",
		`dxml_tenant_admission_latency_seconds_bucket{tenant="design-1",le="+Inf"}`,
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("exposition missing %q:\n%s", want, prom)
		}
	}
	for _, counted := range []string{"dxml_chunk_rtt_seconds_count ", "dxml_admission_latency_seconds_count "} {
		i := strings.Index(prom, counted)
		if i < 0 {
			t.Fatalf("exposition missing %q", counted)
		}
		rest := prom[i+len(counted):]
		if strings.HasPrefix(rest, "0\n") {
			t.Fatalf("%s has no samples after real traffic:\n%s", strings.TrimSpace(counted), prom)
		}
	}

	// Default (no Accept, or JSON-first Accept): the JSON body.
	for _, accept := range []string{"", "application/json", "application/json, text/plain"} {
		code, ct, body := httpGet(t, base+"/metrics", accept)
		if code != http.StatusOK || !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("accept %q: %d %s", accept, code, ct)
		}
		var m Metrics
		if err := json.Unmarshal([]byte(body), &m); err != nil {
			t.Fatalf("accept %q: %v", accept, err)
		}
		if m.Designs != 1 {
			t.Fatalf("accept %q: %+v", accept, m)
		}
	}
}

// TestHandleShadowGuard pins the reserved-path contract: an extension
// handler cannot shadow /healthz, /metrics, /debug/..., nor a path
// already mounted through Handle (the CLI's /register).
func TestHandleShadowGuard(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	nop := http.HandlerFunc(func(http.ResponseWriter, *http.Request) {})

	srv.Handle("/register", nop) // the CLI's mount: allowed, then reserved
	srv.Handle("/custom", nop)   // unrelated extensions stay allowed

	for _, pattern := range []string{
		"/healthz", "/metrics", "/debug/", "/debug/pprof/", "/debug/vars",
		"/register", "/register/v2",
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Handle(%q) did not panic", pattern)
				}
			}()
			srv.Handle(pattern, nop)
		}()
	}
}

// TestEnableDebug pins the -debug-http surface: pprof and expvar answer
// under /debug/ on the host's own mux.
func TestEnableDebug(t *testing.T) {
	srv, base := newTestServer(t, Config{Obs: obs.New()})
	srv.EnableDebug()
	for _, path := range []string{"/debug/pprof/", "/debug/vars"} {
		code, _, body := httpGet(t, base+path, "")
		if code != http.StatusOK {
			t.Fatalf("%s: %d", path, code)
		}
		if path == "/debug/vars" && !strings.Contains(body, `"cmdline"`) {
			t.Fatalf("/debug/vars is not the expvar dump:\n%.200s", body)
		}
	}
}
