package host

import (
	"encoding/json"
	"net"
	"net/http"

	"dxml/internal/transport"
)

// Server is the process-level host: the registry served over one TCP
// federation listener (every registered design behind one port), plus
// an optional HTTP listener exposing health and metrics. Extend the
// HTTP surface with Handle before traffic arrives.
type Server struct {
	reg    *Registry
	host   *transport.Host
	mux    *http.ServeMux
	hsrv   *http.Server
	httpLn net.Listener
}

// NewServer starts serving the registry's designs on ln; httpLn, when
// non-nil, serves /healthz and /metrics. Both listeners may be bound to
// port 0 — Addr and HTTPAddr report what the OS picked.
func NewServer(reg *Registry, ln, httpLn net.Listener) *Server {
	s := &Server{reg: reg, httpLn: httpLn}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.healthz)
	s.mux.HandleFunc("/metrics", s.metrics)
	s.host = transport.NewHost(ln, transport.HostConfig{Router: reg, Timeout: reg.cfg.Timeout, Window: reg.cfg.Window})
	if httpLn != nil {
		s.hsrv = &http.Server{Handler: s.mux}
		go s.hsrv.Serve(httpLn)
	}
	return s
}

// Registry is the server's design registry.
func (s *Server) Registry() *Registry { return s.reg }

// Addr is the federation listener's address (the port kernel peers
// join).
func (s *Server) Addr() net.Addr { return s.host.Addr() }

// HTTPAddr is the HTTP listener's address, nil when metrics are off.
func (s *Server) HTTPAddr() net.Addr {
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

// Handle mounts an extra HTTP handler on the server's mux (the CLI
// mounts /register here). Mount before the first request; ServeMux is
// not safe for concurrent registration and serving.
func (s *Server) Handle(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// Close stops both listeners and tears down every session.
func (s *Server) Close() error {
	err := s.host.Close()
	if s.hsrv != nil {
		s.hsrv.Close()
	}
	return err
}

// health is the /healthz body: liveness plus the load numbers a
// balancer wants.
type health struct {
	Status         string `json:"status"`
	Designs        int    `json:"designs"`
	Resident       int    `json:"resident"`
	ActiveSessions int    `json:"activeSessions"`
}

func (s *Server) healthz(w http.ResponseWriter, req *http.Request) {
	m := s.reg.Metrics()
	writeJSON(w, health{Status: "ok", Designs: m.Designs, Resident: m.Resident, ActiveSessions: m.ActiveSessions})
}

func (s *Server) metrics(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, s.reg.Metrics())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
