package host

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"dxml/internal/obs"
	"dxml/internal/transport"
)

// Server is the process-level host: the registry served over one TCP
// federation listener (every registered design behind one port), plus
// an optional HTTP listener exposing health and metrics. Extend the
// HTTP surface with Handle before traffic arrives.
type Server struct {
	reg      *Registry
	host     *transport.Host
	mux      *http.ServeMux
	hsrv     *http.Server
	httpLn   net.Listener
	start    time.Time
	debug    bool
	reserved []string
}

// NewServer starts serving the registry's designs on ln; httpLn, when
// non-nil, serves /healthz and /metrics. Both listeners may be bound to
// port 0 — Addr and HTTPAddr report what the OS picked. The registry's
// Obs collector, when set, backs the Prometheus exposition on /metrics
// and receives the transport host's wire-level telemetry.
func NewServer(reg *Registry, ln, httpLn net.Listener) *Server {
	s := &Server{reg: reg, httpLn: httpLn, start: time.Now(),
		reserved: []string{"/healthz", "/metrics", "/debug/"}}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.healthz)
	s.mux.HandleFunc("/metrics", s.metrics)
	hcfg := transport.HostConfig{Router: reg, Timeout: reg.cfg.Timeout, Window: reg.cfg.Window, Obs: reg.cfg.Obs,
		OnError: reg.cfg.OnWireError}
	if reg.cfg.Flight != nil {
		// Assign only a non-nil recorder: a typed-nil *Recorder in the
		// Tap interface would defeat the transport's tap == nil check.
		hcfg.Tap = reg.cfg.Flight
		s.mux.HandleFunc("/debug/flight", s.debugFlight)
	}
	s.host = transport.NewHost(ln, hcfg)
	if httpLn != nil {
		s.hsrv = &http.Server{Handler: s.mux}
		go s.hsrv.Serve(httpLn)
	}
	return s
}

// Registry is the server's design registry.
func (s *Server) Registry() *Registry { return s.reg }

// Addr is the federation listener's address (the port kernel peers
// join).
func (s *Server) Addr() net.Addr { return s.host.Addr() }

// HTTPAddr is the HTTP listener's address, nil when metrics are off.
func (s *Server) HTTPAddr() net.Addr {
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

// Handle mounts an extra HTTP handler on the server's mux (the CLI
// mounts /register here). It panics if pattern would shadow one of the
// server's own endpoints (/healthz, /metrics, /debug/...) or a pattern
// already mounted through Handle, so a later extension cannot silently
// capture health, telemetry, or registration traffic. Mount before the
// first request; ServeMux is not safe for concurrent registration and
// serving.
func (s *Server) Handle(pattern string, h http.Handler) {
	for _, r := range s.reserved {
		if pattern == r || strings.HasPrefix(pattern, strings.TrimSuffix(r, "/")+"/") {
			panic(fmt.Sprintf("host: pattern %q would shadow reserved endpoint %s", pattern, r))
		}
	}
	s.reserved = append(s.reserved, pattern)
	s.mux.Handle(pattern, h)
}

// EnableDebug mounts net/http/pprof and expvar under /debug/ on the
// server's HTTP mux and publishes the registry's collector to expvar.
// Call at most once, before traffic; the endpoints expose internals and
// should stay behind the operator's -debug-http flag.
func (s *Server) EnableDebug() {
	if s.debug {
		return
	}
	s.debug = true
	obs.MountDebug(s.mux)
	obs.PublishExpvar(s.reg.cfg.Obs)
}

// Close stops both listeners and tears down every session.
func (s *Server) Close() error {
	err := s.host.Close()
	if s.hsrv != nil {
		s.hsrv.Close()
	}
	return err
}

// health is the /healthz body: liveness plus the load numbers a
// balancer wants.
type health struct {
	Status         string  `json:"status"`
	Version        string  `json:"version"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	Designs        int     `json:"designs"`
	Resident       int     `json:"resident"`
	ActiveSessions int     `json:"activeSessions"`
}

func (s *Server) healthz(w http.ResponseWriter, req *http.Request) {
	m := s.reg.Metrics()
	writeJSON(w, health{
		Status:         "ok",
		Version:        obs.Version,
		UptimeSeconds:  time.Since(s.start).Seconds(),
		Designs:        m.Designs,
		Resident:       m.Resident,
		ActiveSessions: m.ActiveSessions,
	})
}

// metrics content-negotiates: Accept: text/plain (Prometheus scrapers)
// gets the 0.0.4 text exposition from the registry's collector plus
// per-tenant admission rollups; everything else gets the original JSON
// body, byte-compatible with earlier releases.
func (s *Server) metrics(w http.ResponseWriter, req *http.Request) {
	if c := s.reg.cfg.Obs; c != nil && wantsProm(req) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WritePrometheus(w, c)
		fmt.Fprintf(w, "# HELP dxml_uptime_seconds Seconds since the host started.\n# TYPE dxml_uptime_seconds gauge\ndxml_uptime_seconds %g\n", time.Since(s.start).Seconds())
		for name, snap := range s.reg.TenantAdmissionHists() {
			// Label values use the exposition format's own escaper, not
			// Go's %q: %q would emit \xNN/\uXXXX escapes the 0.0.4
			// grammar forbids for non-ASCII or control-laden names.
			obs.WriteHistProm(w, "dxml_tenant_admission_latency_seconds",
				"Per-tenant admission (routing) latency.",
				`tenant="`+obs.EscapeLabelValue(name)+`"`, snap, true)
		}
		return
	}
	writeJSON(w, s.reg.Metrics())
}

// flightFrame is one ring entry in the /debug/flight body: the frame
// decoded just far enough to read the timeline without shipping raw
// payloads over HTTP.
type flightFrame struct {
	WallNs    int64  `json:"wall_unix_ns"`
	Dir       string `json:"dir"`
	Sess      string `json:"sess"` // session trace ID, hex
	Type      string `json:"type"`
	Stream    uint32 `json:"stream,omitempty"`
	Len       int    `json:"len"`
	Truncated bool   `json:"truncated,omitempty"`
}

// debugFlight serves the flight recorder's live ring as JSON: the most
// recent frames across every session, oldest first.
func (s *Server) debugFlight(w http.ResponseWriter, req *http.Request) {
	rec := s.reg.cfg.Flight
	frames := rec.Frames()
	out := struct {
		Total  uint64        `json:"total"`
		Frames []flightFrame `json:"frames"`
	}{Total: rec.Total(), Frames: make([]flightFrame, 0, len(frames))}
	for _, f := range frames {
		ff := flightFrame{WallNs: f.WallNs, Dir: f.Dir.String(),
			Sess: fmt.Sprintf("%016x", f.Sess), Len: f.Orig}
		if info, err := transport.DecodeFrame(f.Wire); err != nil {
			ff.Type = "undecodable"
		} else {
			ff.Type, ff.Stream, ff.Truncated = info.Type, info.Stream, info.Truncated
		}
		out.Frames = append(out.Frames, ff)
	}
	writeJSON(w, out)
}

// wantsProm reports whether the request prefers Prometheus text
// exposition: an Accept header naming text/plain (and not naming
// application/json earlier in the list).
func wantsProm(req *http.Request) bool {
	for _, part := range strings.Split(req.Header.Get("Accept"), ",") {
		mt := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		switch mt {
		case "text/plain":
			return true
		case "application/json":
			return false
		}
	}
	return false
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
