package host

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"

	"dxml/internal/axml"
	"dxml/internal/p2p"
	"dxml/internal/schema"
	"dxml/internal/transport"
	"dxml/internal/xmltree"
)

// miniNetwork builds a one-docking-point federation whose digest is
// distinguished by id (the docking point's name enters the kernel tree,
// which enters the digest) and whose fragment holds `items` leaves.
func miniNetwork(id, items int) *p2p.Network {
	global := schema.MustParseDTD(schema.KindNRE, "root s\ns -> a*")
	kernel := axml.MustParseKernel(fmt.Sprintf("s(f%d)", id))
	local := schema.MustParseDTD(schema.KindNRE, "root r\nr -> a*").ToEDTD()
	doc := xmltree.New("r")
	for i := 0; i < items; i++ {
		doc.Children = append(doc.Children, xmltree.Leaf("a"))
	}
	n := p2p.NewNetwork(kernel, global.ToEDTD())
	if err := n.AddPeer(fmt.Sprintf("f%d", id), doc, local); err != nil {
		panic(err)
	}
	return n
}

// miniDesign wraps miniNetwork as a registrable Design. Build
// materializes a fresh network each residency, exactly as a host
// rebuilding an evicted design would.
func miniDesign(id, items int) Design {
	return Design{
		Name:   fmt.Sprintf("design-%d", id),
		Digest: miniNetwork(id, items).Digest(),
		Build: func() (map[string]transport.Source, int64, error) {
			n := miniNetwork(id, items)
			return n.HostSources(), n.ResidentEstimate(), nil
		},
	}
}

func drain(t testing.TB, frag transport.Fragment) []byte {
	t.Helper()
	var got []byte
	for {
		chunk, err := frag.Next()
		if err == io.EOF {
			return got
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, chunk...)
	}
}

// TestTypedRefusalsBothTransports pins the shared error contract: an
// unknown digest refuses with ErrUnknownDesign and an over-cap hello
// with ErrOverCapacity, identically over the in-process session and a
// TCP dial — and always immediately, never a hang.
func TestTypedRefusalsBothTransports(t *testing.T) {
	d := miniDesign(1, 4)
	unknown := transport.Digest("nobody registered this")

	open := map[string]func(r *Registry, digest []byte) (transport.Session, func(), error){
		"inproc": func(r *Registry, digest []byte) (transport.Session, func(), error) {
			s, err := r.Session(digest, 64)
			if err != nil {
				return nil, nil, err
			}
			return s, func() { s.Close() }, nil
		},
		"tcp": func(r *Registry, digest []byte) (transport.Session, func(), error) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			srv := NewServer(r, ln, nil)
			c, err := transport.Dial(srv.Addr().String(), transport.Config{Digest: digest, Chunk: 64})
			if err != nil {
				srv.Close()
				return nil, nil, err
			}
			return c, func() { c.Close(); srv.Close() }, nil
		},
	}
	for name, dial := range open {
		t.Run(name, func(t *testing.T) {
			reg := NewRegistry(Config{MaxSessions: 1})
			if err := reg.Register(d); err != nil {
				t.Fatal(err)
			}
			if _, _, err := dial(reg, unknown); !errors.Is(err, transport.ErrUnknownDesign) {
				t.Fatalf("unknown digest: want ErrUnknownDesign, got %v", err)
			}
			sess, done, err := dial(reg, d.Digest)
			if err != nil {
				t.Fatalf("registered digest refused: %v", err)
			}
			if v, err := sess.Verdict(context.Background(), "f1"); err != nil || !v {
				t.Fatalf("verdict over %s: v=%v err=%v", name, v, err)
			}
			if _, _, err := dial(reg, d.Digest); !errors.Is(err, transport.ErrOverCapacity) {
				t.Fatalf("second session under cap 1: want ErrOverCapacity, got %v", err)
			}
			done()
			m := reg.Metrics()
			if m.Global.Rejections != 2 {
				t.Errorf("rejections = %d, want 2", m.Global.Rejections)
			}
			if m.Global.Sessions != 1 {
				t.Errorf("sessions = %d, want 1", m.Global.Sessions)
			}
		})
	}
}

// TestEvictionLRU: with room for two resident designs, touching a third
// evicts the least recently used idle one, and the evicted design is
// rebuilt transparently on its next session.
func TestEvictionLRU(t *testing.T) {
	reg := NewRegistry(Config{MaxResidentDesigns: 2})
	designs := []Design{miniDesign(1, 2), miniDesign(2, 2), miniDesign(3, 2)}
	for _, d := range designs {
		if err := reg.Register(d); err != nil {
			t.Fatal(err)
		}
	}
	use := func(id int, d Design) {
		t.Helper()
		s, err := reg.Session(d.Digest, 64)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if v, err := s.Verdict(context.Background(), fmt.Sprintf("f%d", id)); err != nil || !v {
			t.Fatalf("%s: v=%v err=%v", d.Name, v, err)
		}
		s.Close()
	}
	use(1, designs[0])
	use(2, designs[1])
	use(3, designs[2]) // evicts design-1 (least recently closed)
	m := reg.Metrics()
	if m.Tenants["design-1"].Resident || !m.Tenants["design-2"].Resident || !m.Tenants["design-3"].Resident {
		t.Fatalf("after third use, residency should be {2,3}: %+v", m.Tenants)
	}
	if m.Tenants["design-1"].Counters.Evictions != 1 || m.Global.Evictions != 1 {
		t.Errorf("eviction counters: tenant=%d global=%d, want 1/1",
			m.Tenants["design-1"].Counters.Evictions, m.Global.Evictions)
	}
	use(1, designs[0]) // rebuild: evicts design-2, the new LRU
	m = reg.Metrics()
	if !m.Tenants["design-1"].Resident || m.Tenants["design-2"].Resident {
		t.Fatalf("after rebuild, residency should be {1,3}: %+v", m.Tenants)
	}
	if m.Global.Evictions != 2 {
		t.Errorf("global evictions = %d, want 2", m.Global.Evictions)
	}
}

// TestEvictionSparesActiveSessions: a design with a session open is
// never evicted; when every resident design is busy, the incoming hello
// is refused over capacity instead.
func TestEvictionSparesActiveSessions(t *testing.T) {
	reg := NewRegistry(Config{MaxResidentDesigns: 1})
	d1, d2 := miniDesign(1, 2), miniDesign(2, 2)
	for _, d := range []Design{d1, d2} {
		if err := reg.Register(d); err != nil {
			t.Fatal(err)
		}
	}
	s1, err := reg.Session(d1.Digest, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Session(d2.Digest, 64); !errors.Is(err, transport.ErrOverCapacity) {
		t.Fatalf("design cap with no idle victim: want ErrOverCapacity, got %v", err)
	}
	s1.Close()
	s2, err := reg.Session(d2.Digest, 64)
	if err != nil {
		t.Fatalf("idle design should have been evicted to admit: %v", err)
	}
	s2.Close()
	m := reg.Metrics()
	if m.Tenants["design-1"].Resident {
		t.Error("design-1 should have been evicted once idle")
	}
}

// TestResidentByteBudget: the memory budget evicts idle designs to fit
// a new one and refuses a design that cannot fit even into an empty
// host.
func TestResidentByteBudget(t *testing.T) {
	small := miniDesign(1, 2)
	smallBytes := func() int64 { return miniNetwork(1, 2).ResidentEstimate() }()
	big := miniDesign(2, 10000)
	reg := NewRegistry(Config{MaxResidentBytes: smallBytes + 16})
	for _, d := range []Design{small, big} {
		if err := reg.Register(d); err != nil {
			t.Fatal(err)
		}
	}
	s, err := reg.Session(small.Digest, 64)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := reg.Session(big.Digest, 64); !errors.Is(err, transport.ErrOverCapacity) {
		t.Fatalf("over-budget design: want ErrOverCapacity, got %v", err)
	}
	// The refusal did not corrupt the accounting: the small design still
	// serves.
	s, err = reg.Session(small.Digest, 64)
	if err != nil {
		t.Fatalf("small design refused after big one's rejection: %v", err)
	}
	s.Close()
	if m := reg.Metrics(); m.ResidentBytes != smallBytes {
		t.Errorf("residentBytes = %d, want %d", m.ResidentBytes, smallBytes)
	}
}

// TestStreamCaps: the open-transfer cap refuses a second concurrent
// stream with a typed error and releases the slot when the first ends.
func TestStreamCaps(t *testing.T) {
	reg := NewRegistry(Config{MaxTenantStreams: 1})
	d := miniDesign(1, 300)
	if err := reg.Register(d); err != nil {
		t.Fatal(err)
	}
	s, err := reg.Session(d.Digest, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	frag, err := s.Open(context.Background(), "f1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open(context.Background(), "f1"); !errors.Is(err, transport.ErrOverCapacity) {
		t.Fatalf("second concurrent stream under cap 1: want ErrOverCapacity, got %v", err)
	}
	frag.Abort()
	frag2, err := s.Open(context.Background(), "f1")
	if err != nil {
		t.Fatalf("slot not released by abort: %v", err)
	}
	drain(t, frag2)
	frag3, err := s.Open(context.Background(), "f1")
	if err != nil {
		t.Fatalf("slot not released by EOF: %v", err)
	}
	frag3.Abort()
}

// TestMetricsMatchClientStats is the accounting acceptance check: after
// a fully valid distributed + centralized run over TCP, the tenant's
// counters equal the kernel peer's protocol-level Stats — messages,
// frames, and bytes.
func TestMetricsMatchClientStats(t *testing.T) {
	reg := NewRegistry(Config{})
	d := miniDesign(7, 50)
	if err := reg.Register(d); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg, ln, httpLn)
	defer srv.Close()

	n := miniNetwork(7, 50)
	sess, err := n.DialTCP(map[string]string{"f7": srv.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	n.Transport = sess
	if v, err := n.ValidateDistributed(); err != nil || !v {
		t.Fatalf("distributed: v=%v err=%v", v, err)
	}
	if v, err := n.ValidateCentralized(); err != nil || !v {
		t.Fatalf("centralized: v=%v err=%v", v, err)
	}
	stats := n.Stats.Totals()

	// Metrics go through the HTTP endpoint, as an operator would see them.
	resp, err := http.Get("http://" + srv.HTTPAddr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	tm, ok := m.Tenants["design-7"]
	if !ok {
		t.Fatalf("tenant missing from metrics: %+v", m)
	}
	if int(tm.Counters.Messages) != stats.Messages ||
		int(tm.Counters.Frames) != stats.Frames ||
		int(tm.Counters.Bytes) != stats.Bytes {
		t.Errorf("tenant counters (msg=%d frames=%d bytes=%d) != client stats (msg=%d frames=%d bytes=%d)",
			tm.Counters.Messages, tm.Counters.Frames, tm.Counters.Bytes,
			stats.Messages, stats.Frames, stats.Bytes)
	}
	if tm.Counters.Verdicts != 1 || tm.Counters.Delivered != 1 {
		t.Errorf("verdicts=%d delivered=%d, want 1/1", tm.Counters.Verdicts, tm.Counters.Delivered)
	}

	// And the health endpoint answers.
	hr, err := http.Get("http://" + srv.HTTPAddr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var h struct {
		Status  string `json:"status"`
		Designs int    `json:"designs"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Designs != 1 {
		t.Errorf("healthz: %+v", h)
	}
}

// TestSharedMachineManySessions hammers one design with concurrent
// sessions: all of them share the tenant's compiled validator, which
// the race detector checks for unsynchronized state.
func TestSharedMachineManySessions(t *testing.T) {
	reg := NewRegistry(Config{})
	d := miniDesign(1, 40)
	if err := reg.Register(d); err != nil {
		t.Fatal(err)
	}
	const workers = 32
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := reg.Session(d.Digest, 16)
			if err != nil {
				errs <- err
				return
			}
			defer s.Close()
			v, err := s.Verdict(context.Background(), "f1")
			if err != nil || !v {
				errs <- fmt.Errorf("verdict v=%v err=%v", v, err)
				return
			}
			frag, err := s.Open(context.Background(), "f1")
			if err != nil {
				errs <- err
				return
			}
			var got []byte
			for {
				chunk, err := frag.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					errs <- err
					return
				}
				got = append(got, chunk...)
			}
			if !strings.Contains(string(got), "<a/>") {
				errs <- fmt.Errorf("fragment bytes wrong: %q", got)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	m := reg.Metrics()
	if m.Global.Sessions != workers || m.Global.Verdicts != workers || m.Global.Delivered != workers {
		t.Errorf("counters after %d workers: %+v", workers, m.Global)
	}
	if m.ActiveSessions != 0 || m.ActiveStreams != 0 {
		t.Errorf("slots leaked: sessions=%d streams=%d", m.ActiveSessions, m.ActiveStreams)
	}
}

// TestManyDesignsFanIn registers well over a hundred designs on one
// registry and runs concurrent sessions against every one of them.
func TestManyDesignsFanIn(t *testing.T) {
	const designs, perDesign = 120, 3
	reg := NewRegistry(Config{})
	specs := make([]Design, designs)
	for i := range specs {
		specs[i] = miniDesign(i, 5)
		if err := reg.Register(specs[i]); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, designs*perDesign)
	for i, d := range specs {
		for k := 0; k < perDesign; k++ {
			wg.Add(1)
			go func(i int, d Design) {
				defer wg.Done()
				s, err := reg.Session(d.Digest, 32)
				if err != nil {
					errs <- fmt.Errorf("%s: %v", d.Name, err)
					return
				}
				defer s.Close()
				if v, err := s.Verdict(context.Background(), fmt.Sprintf("f%d", i)); err != nil || !v {
					errs <- fmt.Errorf("%s: v=%v err=%v", d.Name, v, err)
				}
			}(i, d)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	m := reg.Metrics()
	if m.Designs != designs {
		t.Errorf("designs = %d, want %d", m.Designs, designs)
	}
	if m.Global.Sessions != designs*perDesign {
		t.Errorf("sessions = %d, want %d", m.Global.Sessions, designs*perDesign)
	}
	if m.Global.Rejections != 0 {
		t.Errorf("unexpected rejections: %d", m.Global.Rejections)
	}
}

// TestRegisterValidation: duplicate digests and names are refused at
// registration, not discovered at routing.
func TestRegisterValidation(t *testing.T) {
	reg := NewRegistry(Config{})
	d := miniDesign(1, 2)
	if err := reg.Register(d); err != nil {
		t.Fatal(err)
	}
	dup := miniDesign(1, 2)
	if err := reg.Register(dup); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate digest: %v", err)
	}
	renamed := miniDesign(2, 2)
	renamed.Name = d.Name
	if err := reg.Register(renamed); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate name: %v", err)
	}
	if err := reg.Register(Design{Name: "x", Digest: []byte{1}}); err == nil {
		t.Error("builderless design accepted")
	}
	if reg.Len() != 1 {
		t.Errorf("Len = %d, want 1", reg.Len())
	}
}
