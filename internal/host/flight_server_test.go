package host

import (
	"encoding/json"
	"net"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"dxml/internal/flight"
	"dxml/internal/obs"
	"dxml/internal/transport"
)

// TestDebugFlightEndpoint drives a real session through a server with a
// flight recorder and reads the live ring back over /debug/flight: the
// frames of the session just run are there, decoded, newest ones last.
func TestDebugFlightEndpoint(t *testing.T) {
	rec := flight.NewRecorder(flight.Options{RingFrames: 1024})
	srv, base := newTestServer(t, Config{Obs: obs.New(), Flight: rec})

	d := miniDesign(1, 200)
	c, err := transport.Dial(srv.Addr().String(), transport.Config{Digest: d.Digest, Chunk: 4096})
	if err != nil {
		t.Fatal(err)
	}
	frag, err := c.Open(t.Context(), "f1")
	if err != nil {
		t.Fatal(err)
	}
	drain(t, frag)
	c.Close()

	code, ct, body := httpGet(t, base+"/debug/flight", "")
	if code != http.StatusOK || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/debug/flight: %d %s", code, ct)
	}
	var out struct {
		Total  uint64 `json:"total"`
		Frames []struct {
			WallNs int64  `json:"wall_unix_ns"`
			Dir    string `json:"dir"`
			Sess   string `json:"sess"`
			Type   string `json:"type"`
			Len    int    `json:"len"`
		} `json:"frames"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("/debug/flight body: %v\n%s", err, body)
	}
	if out.Total == 0 || len(out.Frames) == 0 {
		t.Fatalf("ring empty after a real session: %s", body)
	}
	types := map[string]bool{}
	sessHex := regexp.MustCompile(`^[0-9a-f]{16}$`)
	for _, f := range out.Frames {
		types[f.Type] = true
		if f.Type == "undecodable" {
			t.Fatalf("ring holds an undecodable frame: %+v", f)
		}
		if !sessHex.MatchString(f.Sess) {
			t.Fatalf("sess %q is not 16 hex digits", f.Sess)
		}
		if f.Dir != "in" && f.Dir != "out" {
			t.Fatalf("dir %q", f.Dir)
		}
		if f.Len <= 0 || f.WallNs <= 0 {
			t.Fatalf("implausible frame %+v", f)
		}
	}
	for _, want := range []string{"hello", "welcome", "open", "begin", "chunk", "end"} {
		if !types[want] {
			t.Fatalf("ring missing %q frames; saw %v", want, types)
		}
	}

	// Without a recorder the endpoint is not mounted at all.
	srv2, base2 := newTestServer(t, Config{Obs: obs.New()})
	_ = srv2
	code, _, _ = httpGet(t, base2+"/debug/flight", "")
	if code != http.StatusNotFound {
		t.Fatalf("/debug/flight without a recorder: %d, want 404", code)
	}
}

// TestTenantLabelEscaping registers designs whose names carry quotes,
// newlines, backslashes, and non-ASCII, then scrapes /metrics: the
// exposition must escape exactly per the 0.0.4 grammar (raw UTF-8
// passes through; %q-style \xNN escapes must NOT appear).
func TestTenantLabelEscaping(t *testing.T) {
	reg := NewRegistry(Config{Obs: obs.New()})
	hostile := []struct{ name, escaped string }{
		{`quote"y`, `quote\"y`},
		{"line\nbreak", `line\nbreak`},
		{`back\slash`, `back\\slash`},
		{"日本語テナント", "日本語テナント"},
	}
	for i, h := range hostile {
		d := miniDesign(i+1, 4)
		d.Name = h.name
		if err := reg.Register(d); err != nil {
			t.Fatal(err)
		}
	}
	srv, base := newServerForRegistry(t, reg)
	_ = srv
	_, _, prom := httpGet(t, base+"/metrics", "text/plain")
	for _, h := range hostile {
		want := `tenant="` + h.escaped + `"`
		if !strings.Contains(prom, want) {
			t.Fatalf("exposition missing escaped label %q:\n%s", want, prom)
		}
	}
	if strings.Contains(prom, `\x`) || strings.Contains(prom, `\u`) {
		t.Fatalf("exposition contains Go-quoting escapes the 0.0.4 grammar forbids:\n%s", prom)
	}
}

// promLine matches every legal line of a 0.0.4 text exposition: a HELP
// or TYPE comment, or a sample `name{labels} value`. Label values may
// contain anything except a raw quote/backslash/newline (escaped forms
// \\ \" \n allowed).
var promLine = regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\\\|\\"|\\n|[^"\\\n])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\\\|\\"|\\n|[^"\\\n])*")*\})? (NaN|[-+]?[0-9.eE+\-Inf]+))$`)

// TestMetricsGrammar lints the whole exposition line by line against
// the 0.0.4 grammar, with real traffic populating the histograms and a
// hostile tenant name in the label set — the test that would have
// caught the %q label bug.
func TestMetricsGrammar(t *testing.T) {
	reg := NewRegistry(Config{Obs: obs.New()})
	d := miniDesign(1, 2000)
	d.Name = "hostile \"tenant\"\nname"
	if err := reg.Register(d); err != nil {
		t.Fatal(err)
	}
	srv, base := newServerForRegistry(t, reg)
	c, err := transport.Dial(srv.Addr().String(), transport.Config{Digest: d.Digest, Chunk: 64})
	if err != nil {
		t.Fatal(err)
	}
	frag, err := c.Open(t.Context(), "f1")
	if err != nil {
		t.Fatal(err)
	}
	drain(t, frag)
	c.Close()

	code, _, prom := httpGet(t, base+"/metrics", "text/plain")
	if code != http.StatusOK {
		t.Fatalf("scrape: %d", code)
	}
	for i, line := range strings.Split(prom, "\n") {
		if line == "" {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("line %d violates the 0.0.4 grammar: %q", i+1, line)
		}
	}
}

// newServerForRegistry boots a Server over an already-populated
// registry (newTestServer always registers its own design-1).
func newServerForRegistry(t *testing.T, reg *Registry) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ln.Close()
		t.Fatal(err)
	}
	srv := NewServer(reg, ln, httpLn)
	t.Cleanup(func() { srv.Close() })
	return srv, "http://" + srv.HTTPAddr().String()
}
