package host

import (
	"context"
	"fmt"
	"testing"

	"dxml/internal/transport"
)

// BenchmarkHostAdmission measures the steady-state admission path: one
// Route against a materialized tenant, session slot in and out. This is
// the latency every hello pays on a warm host.
func BenchmarkHostAdmission(b *testing.B) {
	reg := NewRegistry(Config{MaxSessions: 1 << 20})
	d := miniDesign(1, 4)
	if err := reg.Register(d); err != nil {
		b.Fatal(err)
	}
	// Materialize once so the loop measures admission, not compilation.
	warm, err := reg.Route(d.Digest)
	if err != nil {
		b.Fatal(err)
	}
	warm.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		route, err := reg.Route(d.Digest)
		if err != nil {
			b.Fatal(err)
		}
		route.Close()
	}
}

// BenchmarkHostAdmissionRefused measures the refusal path: an unknown
// digest answered with a typed error. Rejection must stay cheap — it is
// the host's defense under misdirected load.
func BenchmarkHostAdmissionRefused(b *testing.B) {
	reg := NewRegistry(Config{})
	if err := reg.Register(miniDesign(1, 4)); err != nil {
		b.Fatal(err)
	}
	unknown := transport.Digest("not registered")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Route(unknown); err == nil {
			b.Fatal("unknown digest admitted")
		}
	}
}

// BenchmarkHostFanIn measures multi-tenant validation throughput: 8
// designs resident on one registry, parallel clients each opening a
// session, taking a verdict, and closing — the contended path through
// the registry lock and the shared per-design machines.
func BenchmarkHostFanIn(b *testing.B) {
	const tenants = 8
	reg := NewRegistry(Config{})
	digests := make([][]byte, tenants)
	for i := 0; i < tenants; i++ {
		d := miniDesign(i, 16)
		if err := reg.Register(d); err != nil {
			b.Fatal(err)
		}
		digests[i] = d.Digest
		route, err := reg.Route(d.Digest) // materialize outside the loop
		if err != nil {
			b.Fatal(err)
		}
		route.Close()
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			id := i % tenants
			i++
			s, err := reg.Session(digests[id], 64)
			if err != nil {
				b.Fatal(err)
			}
			v, err := s.Verdict(context.Background(), fmt.Sprintf("f%d", id))
			if err != nil || !v {
				b.Fatalf("verdict: v=%v err=%v", v, err)
			}
			s.Close()
		}
	})
}
