// Package host turns the single-design transport host into a
// multi-tenant federation host: one server process keeps a registry of
// compiled designs keyed by the design digest every session hello
// already carries, routes each incoming session — validation, live,
// reconnect/resume alike — to its tenant, and shares one immutable
// compiled validator per design across all of that design's sessions.
//
// The registry is the admission controller: caps on concurrent
// sessions, open transfers, and estimated resident memory (per tenant
// and global) refuse an over-budget hello with a typed error on the
// wire — transport.ErrOverCapacity, never a hang — and idle compiled
// designs are evicted least-recently-used when the resident budget
// needs room, then rebuilt on the next hello. Per-tenant and global
// counters mirror the protocol-level accounting the kernel peer's
// p2p.Stats keeps (verdicts and fragment envelopes cost len(fn)+1
// bytes, chunks their payload), so a tenant's metrics and its clients'
// stats agree on fully delivered traffic.
package host

import (
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dxml/internal/flight"
	"dxml/internal/obs"
	"dxml/internal/transport"
)

// Registration errors, matchable with errors.Is so the HTTP register
// endpoint can map them to precise status codes.
var (
	// ErrDuplicateDesign: the digest is already registered (409 on the
	// register endpoint).
	ErrDuplicateDesign = errors.New("design digest already registered")
	// ErrDuplicateName: the metrics name is already taken.
	ErrDuplicateName = errors.New("design name already registered")
)

// Config is the host's admission-control and budget policy. Every cap
// is optional: zero means unlimited.
type Config struct {
	// MaxSessions caps concurrent sessions across all tenants.
	MaxSessions int
	// MaxTenantSessions caps concurrent sessions per tenant.
	MaxTenantSessions int
	// MaxStreams caps concurrent open transfers (fragment streams and
	// live subscriptions) across all tenants. Each admitted transfer is
	// credit-windowed: it can hold up to Window×chunk-budget bytes in
	// flight toward its client, so MaxStreams×Window×chunk bounds the
	// host's aggregate in-flight exposure.
	MaxStreams int
	// MaxTenantStreams caps concurrent open transfers per tenant.
	MaxTenantStreams int
	// MaxResidentBytes caps the summed resident estimate of
	// materialized designs; idle designs are evicted LRU to fit a new
	// one, and a hello that cannot fit even after eviction is refused.
	MaxResidentBytes int64
	// MaxResidentDesigns caps how many designs are materialized at
	// once, independent of their byte estimates.
	MaxResidentDesigns int
	// Timeout is the per-session liveness window handed to the
	// transport host (zero: transport.DefaultTimeout).
	Timeout time.Duration
	// Window caps the per-stream credit window this host honors,
	// whatever a client's hello grants (zero: no cap beyond the
	// transport-wide maximum). Lowering it trades throughput for a
	// tighter per-transfer memory bound — see MaxStreams.
	Window int
	// Obs, when non-nil, receives the registry's telemetry — eviction
	// counts and per-tenant admission-latency rollups — and is handed to
	// the transport host so wire-level metrics land in the same
	// collector. Nil (the default) is the no-op sink.
	Obs *obs.Collector
	// Flight, when non-nil, is the host's flight recorder: it taps every
	// session's wire frames into its ring (and capture file, when one is
	// attached), the HTTP server exposes the live ring at /debug/flight,
	// and abnormal session deaths dump postmortem bundles through
	// OnWireError. Nil (the default) records nothing.
	Flight *flight.Recorder
	// OnWireError, when non-nil, is called whenever a session dies
	// abnormally (refused hello, liveness timeout, codec error, injected
	// fault) — the postmortem-dump trigger. Called from session
	// goroutines; must be safe for concurrent use.
	OnWireError func(error)
}

// Design is one registered tenant: a name for metrics, the digest its
// sessions present at hello, and a builder that materializes the
// serving state on first use. Build is called at most once per
// residency (again after an eviction); it returns the docking-point
// sources and an estimate of the resident bytes they pin (documents
// plus compiled validators).
type Design struct {
	Name   string
	Digest []byte
	Build  func() (sources map[string]transport.Source, residentBytes int64, err error)
}

// counters is one scope's (tenant or global) monotonic traffic
// counters. Fields are atomics so the hot per-chunk path never takes
// the registry lock.
type counters struct {
	sessions   atomic.Int64 // admitted sessions, lifetime
	verdicts   atomic.Int64 // answered verdict requests
	messages   atomic.Int64 // protocol messages (verdicts + delivered fragments)
	frames     atomic.Int64 // wire frames (envelopes + chunks + edits)
	bytes      atomic.Int64 // payload bytes shipped
	delivered  atomic.Int64 // fully delivered fragments/snapshots
	edits      atomic.Int64 // live edits shipped
	rejections atomic.Int64 // refused hellos and refused streams
	reconnects atomic.Int64 // admitted resume subscriptions
	evictions  atomic.Int64 // residency evictions
}

// addMessage mirrors p2p.Stats.addMessage: one envelope frame plus its
// payload bytes.
func (c *counters) addMessage(bytes int) {
	c.messages.Add(1)
	c.frames.Add(1)
	c.bytes.Add(int64(bytes))
}

// addFrame mirrors p2p.Stats.addFrame: one payload frame.
func (c *counters) addFrame(bytes int) {
	c.frames.Add(1)
	c.bytes.Add(int64(bytes))
}

// CounterSnapshot is a consistent-enough copy of one scope's counters
// (each field is read atomically; the set is not a single atomic cut,
// which metrics polling does not need).
type CounterSnapshot struct {
	Sessions   int64 `json:"sessions"`
	Verdicts   int64 `json:"verdicts"`
	Messages   int64 `json:"messages"`
	Frames     int64 `json:"frames"`
	Bytes      int64 `json:"bytes"`
	Delivered  int64 `json:"delivered"`
	Edits      int64 `json:"edits"`
	Rejections int64 `json:"rejections"`
	Reconnects int64 `json:"reconnects"`
	Evictions  int64 `json:"evictions"`
}

func (c *counters) snapshot() CounterSnapshot {
	return CounterSnapshot{
		Sessions:   c.sessions.Load(),
		Verdicts:   c.verdicts.Load(),
		Messages:   c.messages.Load(),
		Frames:     c.frames.Load(),
		Bytes:      c.bytes.Load(),
		Delivered:  c.delivered.Load(),
		Edits:      c.edits.Load(),
		Rejections: c.rejections.Load(),
		Reconnects: c.reconnects.Load(),
		Evictions:  c.evictions.Load(),
	}
}

// tenant is one registered design's serving state.
type tenant struct {
	spec     Design
	counters counters
	adm      obs.Histogram // admission (routing) latency rollup, nanoseconds

	// Guarded by the registry lock:
	sources       map[string]transport.Source // nil until materialized
	resident      int64                       // Build's estimate while materialized
	active        int                         // concurrent sessions
	activeStreams int                         // concurrent open transfers
	lastUse       uint64                      // registry LRU clock at last session close
}

// Registry is the multi-tenant core: designs keyed by digest, admission
// control, LRU residency, and counters. It implements transport.Router,
// so a transport.Host with Router set serves every registered design on
// one listener. The zero Config means no caps.
type Registry struct {
	cfg    Config
	global counters

	mu             sync.Mutex
	tenants        map[string]*tenant // keyed by string(digest)
	byName         map[string]*tenant
	seq            uint64 // LRU clock, bumped at each session close
	resident       int    // materialized designs
	residentBytes  int64  // summed Build estimates
	activeSessions int
	activeStreams  int
}

// NewRegistry builds an empty registry under cfg's caps.
func NewRegistry(cfg Config) *Registry {
	return &Registry{cfg: cfg, tenants: map[string]*tenant{}, byName: map[string]*tenant{}}
}

// Config returns the registry's admission policy.
func (r *Registry) Config() Config { return r.cfg }

// Register adds a design. Names and digests must both be unique: the
// digest is the routing key, the name the metrics key.
func (r *Registry) Register(d Design) error {
	if d.Name == "" {
		return fmt.Errorf("host: design needs a name")
	}
	if len(d.Digest) == 0 {
		return fmt.Errorf("host: design %s needs a digest", d.Name)
	}
	if d.Build == nil {
		return fmt.Errorf("host: design %s needs a builder", d.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.tenants[string(d.Digest)]; ok {
		return fmt.Errorf("host: digest %s already registered as %s: %w", hex.EncodeToString(d.Digest), t.spec.Name, ErrDuplicateDesign)
	}
	if _, ok := r.byName[d.Name]; ok {
		return fmt.Errorf("host: %w: %s", ErrDuplicateName, d.Name)
	}
	t := &tenant{spec: d}
	r.tenants[string(d.Digest)] = t
	r.byName[d.Name] = t
	return nil
}

// Len is the number of registered designs.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.tenants)
}

// refuse records a rejection against the global (and, when known, the
// tenant) counters and builds the typed refusal.
func (r *Registry) refuse(t *tenant, code transport.RefuseCode, reason string) error {
	r.global.rejections.Add(1)
	if t != nil {
		t.counters.rejections.Add(1)
	}
	return &transport.RefusedError{Code: code, Reason: reason}
}

// Route implements transport.Router: it resolves a session hello to its
// tenant, enforcing the session caps and the residency budget. The
// refusal is always immediate — admission control answers the hello, it
// never parks it.
func (r *Registry) Route(digest []byte) (transport.Route, error) {
	start := r.cfg.Obs.Nanos()
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[string(digest)]
	if !ok {
		return transport.Route{}, r.refuse(nil, transport.RefuseUnknownDesign,
			"no design registered under this digest")
	}
	if r.cfg.Obs != nil {
		// Per-tenant rollup: lock wait plus digest lookup is the part a
		// tenant's sessions actually contend on. The registry observes
		// only the tenant-labelled rollup — the transport host already
		// feeds the global admission histogram for the same hello, so
		// observing both here would double-count it.
		defer func() { t.adm.Observe(r.cfg.Obs.Nanos() - start) }()
	}
	if r.cfg.MaxSessions > 0 && r.activeSessions >= r.cfg.MaxSessions {
		return transport.Route{}, r.refuse(t, transport.RefuseOverCapacity,
			fmt.Sprintf("host session cap reached (%d concurrent)", r.cfg.MaxSessions))
	}
	if r.cfg.MaxTenantSessions > 0 && t.active >= r.cfg.MaxTenantSessions {
		return transport.Route{}, r.refuse(t, transport.RefuseOverCapacity,
			fmt.Sprintf("tenant %s session cap reached (%d concurrent)", t.spec.Name, r.cfg.MaxTenantSessions))
	}
	if err := r.materializeLocked(t); err != nil {
		return transport.Route{}, err
	}
	t.active++
	r.activeSessions++
	t.counters.sessions.Add(1)
	r.global.sessions.Add(1)
	var once sync.Once
	return transport.Route{
		Sources: t.sources,
		Gate:    &gate{reg: r, t: t},
		Close:   func() { once.Do(func() { r.sessionClosed(t) }) },
	}, nil
}

// sessionClosed releases a session's slot and stamps the tenant's LRU
// clock: eviction order is "least recently finished a session".
func (r *Registry) sessionClosed(t *tenant) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t.active--
	r.activeSessions--
	r.seq++
	t.lastUse = r.seq
}

// materializeLocked ensures t's sources are built, evicting idle
// tenants LRU to make room under the residency caps. Called with the
// registry lock held; Build runs under it too, which serializes design
// compilation — first-session latency, never steady-state.
func (r *Registry) materializeLocked(t *tenant) error {
	if t.sources != nil {
		return nil
	}
	srcs, resident, err := t.spec.Build()
	if err != nil {
		r.global.rejections.Add(1)
		t.counters.rejections.Add(1)
		return fmt.Errorf("host: building design %s: %w", t.spec.Name, err)
	}
	if r.cfg.MaxResidentDesigns > 0 {
		r.evictLocked(func() bool { return r.resident >= r.cfg.MaxResidentDesigns })
		if r.resident >= r.cfg.MaxResidentDesigns {
			return r.refuse(t, transport.RefuseOverCapacity,
				fmt.Sprintf("resident design cap reached (%d, none idle to evict)", r.cfg.MaxResidentDesigns))
		}
	}
	if r.cfg.MaxResidentBytes > 0 {
		r.evictLocked(func() bool { return r.residentBytes+resident > r.cfg.MaxResidentBytes })
		if r.residentBytes+resident > r.cfg.MaxResidentBytes {
			return r.refuse(t, transport.RefuseOverCapacity,
				fmt.Sprintf("resident memory budget exhausted (%d of %d bytes in use, design needs %d)",
					r.residentBytes, r.cfg.MaxResidentBytes, resident))
		}
	}
	t.sources, t.resident = srcs, resident
	r.resident++
	r.residentBytes += resident
	return nil
}

// evictLocked drops idle materialized tenants in LRU order while the
// pressure predicate holds and an idle candidate exists. Tenants with
// active sessions are never evicted; their sessions hold the source map
// by reference, so an eviction only releases the registry's copy.
func (r *Registry) evictLocked(pressure func() bool) {
	for pressure() {
		var victim *tenant
		for _, t := range r.tenants {
			if t.sources == nil || t.active > 0 {
				continue
			}
			if victim == nil || t.lastUse < victim.lastUse {
				victim = t
			}
		}
		if victim == nil {
			return
		}
		victim.sources = nil
		r.residentBytes -= victim.resident
		victim.resident = 0
		r.resident--
		victim.counters.evictions.Add(1)
		r.global.evictions.Add(1)
		r.cfg.Obs.Add(obs.CEvictions, 1)
	}
}

// gate is one session's transport.Gate: stream admission under the
// transfer caps, and traffic accounting into both scopes.
type gate struct {
	reg *Registry
	t   *tenant
}

func (g *gate) OpenStream(fn string) error {
	r := g.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cfg.MaxStreams > 0 && r.activeStreams >= r.cfg.MaxStreams {
		return r.refuse(g.t, transport.RefuseOverCapacity,
			fmt.Sprintf("host open-transfer cap reached (%d concurrent)", r.cfg.MaxStreams))
	}
	if r.cfg.MaxTenantStreams > 0 && g.t.activeStreams >= r.cfg.MaxTenantStreams {
		return r.refuse(g.t, transport.RefuseOverCapacity,
			fmt.Sprintf("tenant %s open-transfer cap reached (%d concurrent)", g.t.spec.Name, r.cfg.MaxTenantStreams))
	}
	r.activeStreams++
	g.t.activeStreams++
	return nil
}

func (g *gate) CloseStream(fn string) {
	r := g.reg
	r.mu.Lock()
	r.activeStreams--
	g.t.activeStreams--
	r.mu.Unlock()
}

func (g *gate) VerdictServed(fn string) {
	g.t.counters.verdicts.Add(1)
	g.reg.global.verdicts.Add(1)
	g.t.counters.addMessage(len(fn) + 1)
	g.reg.global.addMessage(len(fn) + 1)
}

func (g *gate) ChunkShipped(bytes int) {
	g.t.counters.addFrame(bytes)
	g.reg.global.addFrame(bytes)
}

func (g *gate) FragmentDelivered(fn string) {
	g.t.counters.delivered.Add(1)
	g.reg.global.delivered.Add(1)
	g.t.counters.addMessage(len(fn) + 1)
	g.reg.global.addMessage(len(fn) + 1)
}

func (g *gate) EditShipped(bytes int) {
	g.t.counters.edits.Add(1)
	g.reg.global.edits.Add(1)
	g.t.counters.addFrame(bytes)
	g.reg.global.addFrame(bytes)
}

func (g *gate) Resumed(fn string) {
	g.t.counters.reconnects.Add(1)
	g.reg.global.reconnects.Add(1)
}

// TenantAdmissionHists snapshots every tenant's admission-latency
// rollup histogram, keyed by design name — the per-tenant series the
// Prometheus exposition renders with a tenant label.
func (r *Registry) TenantAdmissionHists() map[string]obs.HistSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]obs.HistSnapshot, len(r.tenants))
	for _, t := range r.tenants {
		out[t.spec.Name] = t.adm.Snapshot()
	}
	return out
}

// TenantMetrics is one design's externally visible state.
type TenantMetrics struct {
	Name           string          `json:"name"`
	Digest         string          `json:"digest"` // hex
	Resident       bool            `json:"resident"`
	ResidentBytes  int64           `json:"residentBytes"`
	ActiveSessions int             `json:"activeSessions"`
	ActiveStreams  int             `json:"activeStreams"`
	Counters       CounterSnapshot `json:"counters"`
}

// Metrics is the host-wide snapshot the /metrics endpoint serves.
type Metrics struct {
	Designs        int                      `json:"designs"`
	Resident       int                      `json:"resident"`
	ResidentBytes  int64                    `json:"residentBytes"`
	ActiveSessions int                      `json:"activeSessions"`
	ActiveStreams  int                      `json:"activeStreams"`
	Global         CounterSnapshot          `json:"global"`
	Tenants        map[string]TenantMetrics `json:"tenants"` // keyed by design name
}

// Metrics snapshots the registry: registration, residency, admission
// state, and both counter scopes.
func (r *Registry) Metrics() Metrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := Metrics{
		Designs:        len(r.tenants),
		Resident:       r.resident,
		ResidentBytes:  r.residentBytes,
		ActiveSessions: r.activeSessions,
		ActiveStreams:  r.activeStreams,
		Global:         r.global.snapshot(),
		Tenants:        make(map[string]TenantMetrics, len(r.tenants)),
	}
	for _, t := range r.tenants {
		m.Tenants[t.spec.Name] = TenantMetrics{
			Name:           t.spec.Name,
			Digest:         hex.EncodeToString(t.spec.Digest),
			Resident:       t.sources != nil,
			ResidentBytes:  t.resident,
			ActiveSessions: t.active,
			ActiveStreams:  t.activeStreams,
			Counters:       t.counters.snapshot(),
		}
	}
	return m
}
