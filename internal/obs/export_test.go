package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestOpenTraceAppends pins the crash-forensics property: reopening a
// trace file extends it. Before the fix OpenTrace used os.Create, so a
// restarted process erased exactly the spans that explained the crash
// it was restarting from.
func TestOpenTraceAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	for run := 0; run < 2; run++ {
		tl, err := OpenTrace(path)
		if err != nil {
			t.Fatal(err)
		}
		tl.Emit(Span{Trace: uint64(run + 1), Name: "hello"})
		tl.Emit(Span{Trace: uint64(run + 1), Name: "verdict"})
		if err := tl.Close(); err != nil {
			t.Fatal(err)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var spans []Span
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var s Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("line %d does not parse: %v", len(spans)+1, err)
		}
		spans = append(spans, s)
	}
	if len(spans) != 4 {
		t.Fatalf("got %d spans after two runs, want 4 (second run truncated the first?)", len(spans))
	}
	if spans[0].Trace != 1 || spans[3].Trace != 2 {
		t.Fatalf("runs out of order: %+v", spans)
	}
}

// TestTraceLogEmitConcurrent hammers Emit from many goroutines; run
// under -race this is the data-race gate on the span ring and the
// shared bufio writer.
func TestTraceLogEmitConcurrent(t *testing.T) {
	var sink strings.Builder
	var mu sync.Mutex
	lockedSink := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sink.Write(p)
	})
	tl := NewTraceLog(lockedSink)
	const goroutines, per = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tl.Emit(Span{Trace: uint64(g + 1), Name: "span", N: int64(i)})
			}
		}(g)
	}
	wg.Wait()
	if err := tl.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := tl.Total(); got != goroutines*per {
		t.Fatalf("Total = %d, want %d", got, goroutines*per)
	}
	mu.Lock()
	lines := strings.Count(sink.String(), "\n")
	mu.Unlock()
	if lines != goroutines*per {
		t.Fatalf("JSONL sink has %d lines, want %d", lines, goroutines*per)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestEscapeLabelValue pins the 0.0.4 label escaping rules: exactly
// backslash, quote, and newline are escaped; everything else — UTF-8
// included — passes through raw.
func TestEscapeLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{"eurostat", "eurostat"},
		{"", ""},
		{`back\slash`, `back\\slash`},
		{`say "hi"`, `say \"hi\"`},
		{"two\nlines", `two\nlines`},
		{`all "three"` + "\n" + `at\once`, `all \"three\"\nat\\once`},
		{"ütf-8 日本語 🎯", "ütf-8 日本語 🎯"}, // raw UTF-8 is legal in label values
		{"tab\tstays", "tab\tstays"},   // only \n is special, not other controls
	}
	for _, c := range cases {
		if got := EscapeLabelValue(c.in); got != c.want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestExport covers the metrics half of a postmortem bundle: every
// counter appears under its exposition name, touched histograms export
// count/sum/quantiles, untouched histograms are skipped, and a nil
// collector exports nil.
func TestExport(t *testing.T) {
	if (*Collector)(nil).Export() != nil {
		t.Fatal("nil collector must export nil")
	}
	c := New()
	c.Add(CFramesEncoded, 3)
	c.Add(CChunksSent, 7)
	for i := 1; i <= 100; i++ {
		c.Observe(HChunkBytes, int64(i))
	}
	m := c.Export()
	if got := m.Counters["dxml_frames_encoded_total"]; got != 3 {
		t.Fatalf("frames_encoded = %d, want 3", got)
	}
	if got := m.Counters["dxml_chunks_sent_total"]; got != 7 {
		t.Fatalf("chunks_sent = %d, want 7", got)
	}
	if got := len(m.Counters); got != int(numCounters) {
		t.Fatalf("exported %d counters, want all %d", got, numCounters)
	}
	h, ok := m.Hists["dxml_chunk_bytes"]
	if !ok {
		t.Fatalf("touched histogram missing from export: %v", m.Hists)
	}
	if h.Count != 100 || h.Sum != 5050 {
		t.Fatalf("chunk_bytes count/sum = %d/%d, want 100/5050", h.Count, h.Sum)
	}
	if h.P50 <= 0 || h.P99 < h.P50 {
		t.Fatalf("quantiles implausible: p50=%d p99=%d", h.P50, h.P99)
	}
	if _, ok := m.Hists["dxml_frame_encode_seconds"]; ok {
		t.Fatal("untouched histogram must be skipped")
	}
	// The export round-trips through JSON — it is the bundle's storage
	// format.
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back MetricsSnapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["dxml_chunks_sent_total"] != 7 || back.Hists["dxml_chunk_bytes"].Sum != 5050 {
		t.Fatalf("JSON round trip drifted: %+v", back)
	}
}
