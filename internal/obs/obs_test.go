package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilCollectorIsNoop(t *testing.T) {
	var c *Collector
	c.Add(CChunksSent, 1)
	c.Observe(HChunkRTTNs, 100)
	c.Span(Span{Name: "x"})
	c.SetTrace(NewTraceLog(nil))
	if got := c.Nanos(); got != 0 {
		t.Fatalf("nil Nanos = %d, want 0", got)
	}
	if got := c.Counter(CChunksSent); got != 0 {
		t.Fatalf("nil Counter = %d, want 0", got)
	}
	if s := c.Snapshot(HChunkRTTNs); s.Count != 0 {
		t.Fatalf("nil Snapshot count = %d, want 0", s.Count)
	}
	if tr := c.Trace(); tr != nil {
		t.Fatalf("nil Trace = %v, want nil", tr)
	}
}

func TestCountersAndNanos(t *testing.T) {
	c := New()
	c.Add(CFramesEncoded, 3)
	c.Add(CFramesEncoded, 2)
	if got := c.Counter(CFramesEncoded); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	a := c.Nanos()
	time.Sleep(time.Millisecond)
	if b := c.Nanos(); b <= a {
		t.Fatalf("Nanos not monotonic: %d then %d", a, b)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 1023, 1024, -7} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	// -7 clamps to 0; sum = 0+1+2+3+4+1023+1024+0 = 2057.
	if s.Sum != 2057 {
		t.Fatalf("sum = %d, want 2057", s.Sum)
	}
	// 0 and -7 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 4 → bucket 3;
	// 1023 → bucket 10; 1024 → bucket 11.
	want := map[int]int64{0: 2, 1: 1, 2: 2, 3: 1, 10: 1, 11: 1}
	for i, n := range s.Buckets {
		if n != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
	if q := s.Quantile(0.5); q != BucketBound(2) {
		t.Fatalf("p50 = %d, want %d", q, BucketBound(2))
	}
	if q := s.Quantile(1); q != BucketBound(11) {
		t.Fatalf("p100 = %d, want %d", q, BucketBound(11))
	}
	if m := s.Mean(); m != 2057.0/8 {
		t.Fatalf("mean = %g", m)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				h.Observe(i)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
}

func TestTraceLogRingAndJSONL(t *testing.T) {
	var buf bytes.Buffer
	tl := NewTraceLog(&buf)
	id := NewTraceID()
	tl.Emit(Span{Trace: id, Name: "open", Frag: "f1", Start: 10, End: 20, Bytes: 64})
	tl.Emit(Span{Trace: id, Name: "verdict", Start: 20, End: 30})
	if err := tl.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2: %q", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], `"name":"open"`) || !strings.Contains(lines[0], `"frag":"f1"`) {
		t.Fatalf("bad span line: %s", lines[0])
	}
	spans := tl.Spans()
	if len(spans) != 2 || spans[0].Name != "open" || spans[1].Name != "verdict" {
		t.Fatalf("ring spans = %+v", spans)
	}
	if tl.Total() != 2 {
		t.Fatalf("total = %d", tl.Total())
	}
}

func TestTraceRingRotation(t *testing.T) {
	tl := NewTraceLog(nil)
	for i := 0; i < traceRing+10; i++ {
		tl.Emit(Span{Start: int64(i)})
	}
	spans := tl.Spans()
	if len(spans) != traceRing {
		t.Fatalf("ring len = %d, want %d", len(spans), traceRing)
	}
	if spans[0].Start != 10 || spans[len(spans)-1].Start != int64(traceRing+9) {
		t.Fatalf("ring window = [%d, %d]", spans[0].Start, spans[len(spans)-1].Start)
	}
	if tl.Total() != traceRing+10 {
		t.Fatalf("total = %d", tl.Total())
	}
}

func TestCollectorSpanRouting(t *testing.T) {
	c := New()
	c.Span(Span{Name: "dropped"}) // no sink attached: must not panic
	tl := NewTraceLog(nil)
	c.SetTrace(tl)
	c.Span(Span{Name: "kept"})
	if got := tl.Spans(); len(got) != 1 || got[0].Name != "kept" {
		t.Fatalf("spans = %+v", got)
	}
	c.SetTrace(nil)
	c.Span(Span{Name: "dropped2"})
	if tl.Total() != 1 {
		t.Fatalf("span emitted after detach")
	}
}

func TestNewTraceIDNonzeroAndDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("zero trace ID")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %x", id)
		}
		seen[id] = true
	}
}

func TestWritePrometheus(t *testing.T) {
	c := New()
	c.Add(CAdmissions, 4)
	c.Observe(HChunkRTTNs, 1500)      // ~1.5µs
	c.Observe(HChunkRTTNs, 2_000_000) // 2ms
	c.Observe(HAdmissionNs, 10_000)   // 10µs
	c.Observe(HChunkBytes, 4096)      // raw unit, no seconds scaling
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE dxml_admissions_total counter",
		"dxml_admissions_total 4",
		"# TYPE dxml_chunk_rtt_seconds histogram",
		`dxml_chunk_rtt_seconds_bucket{le="+Inf"} 2`,
		"dxml_chunk_rtt_seconds_count 2",
		"# TYPE dxml_admission_latency_seconds histogram",
		"dxml_admission_latency_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Nanosecond histograms scale sum into seconds.
	if !strings.Contains(out, "dxml_chunk_rtt_seconds_sum 0.0020015") {
		t.Fatalf("rtt sum not scaled to seconds:\n%s", out)
	}
	// 4096 lands in bucket le="8191" (bits.Len64(4096)=13, bound 2^13-1).
	if !strings.Contains(out, `dxml_chunk_bytes_bucket{le="8191"} 1`) {
		t.Fatalf("chunk bytes bucket missing:\n%s", out)
	}
	if err := WritePrometheus(&buf, nil); err != nil {
		t.Fatal("nil collector should write nothing and return nil")
	}
}

func TestWriteHistPromLabels(t *testing.T) {
	var h Histogram
	h.Observe(1000)
	var buf bytes.Buffer
	if err := WriteHistProm(&buf, "dxml_tenant_admission_seconds", "", `tenant="euro"`, h.Snapshot(), true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `dxml_tenant_admission_seconds_bucket{tenant="euro",le=`) {
		t.Fatalf("labelled bucket missing:\n%s", out)
	}
	if !strings.Contains(out, `dxml_tenant_admission_seconds_count{tenant="euro"} 1`) {
		t.Fatalf("labelled count missing:\n%s", out)
	}
}

func BenchmarkCollectorObserve(b *testing.B) {
	c := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Observe(HChunkRTTNs, int64(i))
	}
}

func BenchmarkNilCollectorObserve(b *testing.B) {
	var c *Collector
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Observe(HChunkRTTNs, int64(i))
	}
}
