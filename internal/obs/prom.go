package obs

import (
	"fmt"
	"io"
	"strconv"
)

// counterMeta names each counter at the Prometheus edge.
var counterMeta = [numCounters]struct{ name, help string }{
	CFramesEncoded:    {"dxml_frames_encoded_total", "Frames written to a wire."},
	CFramesDecoded:    {"dxml_frames_decoded_total", "Frames read off a wire."},
	CChunksSent:       {"dxml_chunks_sent_total", "Serialization chunks shipped."},
	CChunksAcked:      {"dxml_chunks_acked_total", "Chunk acknowledgements received."},
	CReconnects:       {"dxml_reconnects_total", "Sessions re-dialed after a drop."},
	CHealthUp:         {"dxml_health_up_total", "Health transitions into Live or Recovered."},
	CHealthDown:       {"dxml_health_down_total", "Health transitions into Stale or Down."},
	CEvictions:        {"dxml_evictions_total", "Designs evicted to fit the resident budget."},
	CAdmissions:       {"dxml_admissions_total", "Sessions admitted by the router."},
	CRefusals:         {"dxml_refusals_total", "Sessions refused (unknown design or over capacity)."},
	CEditsApplied:     {"dxml_edits_applied_total", "Live edits applied to a replica."},
	CDocsValidated:    {"dxml_docs_validated_total", "Full-document validations completed."},
	CStreamEvents:     {"dxml_stream_events_total", "Parse events fed through validation runners."},
	CNodesRevalidated: {"dxml_nodes_revalidated_total", "Nodes rechecked by incremental validation."},
	CNodesSkipped:     {"dxml_nodes_skipped_total", "Nodes skipped by incremental validation."},
	CBytesSavedObs:    {"dxml_bytes_saved_total", "Serialization bytes saved by accepted-prefix aborts."},
}

// histMeta names each histogram; seconds-flagged histograms observe
// nanoseconds internally and are scaled to seconds on exposition, per
// Prometheus convention.
var histMeta = [numHists]struct {
	name, help string
	seconds    bool
}{
	HFrameEncodeNs:      {"dxml_frame_encode_seconds", "Frame serialize+write time.", true},
	HFrameDecodeNs:      {"dxml_frame_decode_seconds", "Frame read+decode time.", true},
	HChunkRTTNs:         {"dxml_chunk_rtt_seconds", "Chunk send to covering cumulative ack.", true},
	HWindowOccupancy:    {"dxml_window_occupancy_chunks", "Unacked chunks in flight at send time.", false},
	HReconnectBackoffNs: {"dxml_reconnect_backoff_seconds", "Delay slept before a re-dial attempt.", true},
	HFragmentOpenNs:     {"dxml_fragment_open_seconds", "Fragment open to first use.", true},
	HFragmentTransferNs: {"dxml_fragment_transfer_seconds", "Fragment open to transfer settled.", true},
	HValidateDocNs:      {"dxml_validate_doc_seconds", "One document's validation wall time.", true},
	HEditApplyNs:        {"dxml_edit_apply_seconds", "Edit apply plus incremental revalidation.", true},
	HAdmissionNs:        {"dxml_admission_latency_seconds", "Session admission (routing) latency.", true},
	HChunkBytes:         {"dxml_chunk_bytes", "Shipped chunk payload sizes.", false},
}

// WritePrometheus renders the collector's counters and histograms in
// Prometheus text exposition format (version 0.0.4). A nil collector
// writes nothing and returns nil.
func WritePrometheus(w io.Writer, c *Collector) error {
	if c == nil {
		return nil
	}
	for id := Counter(0); id < numCounters; id++ {
		m := counterMeta[id]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			m.name, m.help, m.name, m.name, c.Counter(id)); err != nil {
			return err
		}
	}
	for id := Hist(0); id < numHists; id++ {
		m := histMeta[id]
		if err := WriteHistProm(w, m.name, m.help, "", c.Snapshot(id), m.seconds); err != nil {
			return err
		}
	}
	return nil
}

// WriteHistProm renders one histogram snapshot as a Prometheus
// histogram family. labels, when nonempty, is an already-formatted
// label set without braces (e.g. `tenant="eurostat"`) applied to every
// sample line; callers use it for per-tenant rollups. seconds scales
// nanosecond-valued buckets and sum into seconds.
func WriteHistProm(w io.Writer, name, help, labels string, s HistSnapshot, seconds bool) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
			return err
		}
	}
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	// The last bucket's bound is +Inf; its mass is folded into the
	// explicit +Inf line below, and empty buckets are skipped — the
	// cumulative series stays monotone either way and the exposition
	// stays small.
	for i := 0; i < numBuckets-1; i++ {
		cum += s.Buckets[i]
		if s.Buckets[i] == 0 {
			continue
		}
		le := promBound(i, seconds)
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, s.Count); err != nil {
		return err
	}
	sum := float64(s.Sum)
	if seconds {
		sum /= 1e9
	}
	lb := ""
	if labels != "" {
		lb = "{" + labels + "}"
	}
	_, err := fmt.Fprintf(w, "%s_sum%s %g\n%s_count%s %d\n", name, lb, sum, name, lb, s.Count)
	return err
}

// EscapeLabelValue escapes s for use inside a quoted Prometheus label
// value. The 0.0.4 text exposition format recognizes exactly three
// escapes — backslash, double quote, and line feed — and label values
// are otherwise raw UTF-8. (Go's %q is NOT a substitute: it emits
// \xNN/\uXXXX escapes for non-printables and non-ASCII, which the
// exposition grammar forbids.)
func EscapeLabelValue(s string) string {
	// Fast path: nothing to escape (the common case for tenant names).
	i := 0
	for ; i < len(s); i++ {
		if c := s[i]; c == '\\' || c == '"' || c == '\n' {
			break
		}
	}
	if i == len(s) {
		return s
	}
	b := make([]byte, 0, len(s)+8)
	b = append(b, s[:i]...)
	for ; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b = append(b, '\\', '\\')
		case '"':
			b = append(b, '\\', '"')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, c)
		}
	}
	return string(b)
}

// promBound formats bucket i's upper bound for the `le` label.
func promBound(i int, seconds bool) string {
	if i >= numBuckets-1 {
		return "+Inf"
	}
	b := float64(BucketBound(i))
	if seconds {
		b /= 1e9
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}
