package obs

// MetricsSnapshot is a point-in-time export of a collector's counters
// and histogram summaries, keyed by their Prometheus exposition names —
// the metrics half of a flight-recorder postmortem bundle, and stable
// JSON for offline tooling.
type MetricsSnapshot struct {
	Counters map[string]int64      `json:"counters"`
	Hists    map[string]HistExport `json:"hists"`
}

// HistExport summarizes one histogram: totals plus the quantiles a
// postmortem reader actually looks at. Latency histograms export their
// raw nanosecond values (the name's _seconds suffix reflects only the
// Prometheus exposition scaling).
type HistExport struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P99   int64   `json:"p99"`
}

// Export snapshots every counter and histogram. Zero-count histograms
// are skipped; a nil collector exports nil.
func (c *Collector) Export() *MetricsSnapshot {
	if c == nil {
		return nil
	}
	m := &MetricsSnapshot{Counters: map[string]int64{}, Hists: map[string]HistExport{}}
	for id := Counter(0); id < numCounters; id++ {
		m.Counters[counterMeta[id].name] = c.Counter(id)
	}
	for id := Hist(0); id < numHists; id++ {
		s := c.Snapshot(id)
		if s.Count == 0 {
			continue
		}
		m.Hists[histMeta[id].name] = HistExport{
			Count: s.Count, Sum: s.Sum, Mean: s.Mean(),
			P50: s.Quantile(0.5), P99: s.Quantile(0.99),
		}
	}
	return m
}
