package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
)

var publishOnce sync.Once

// PublishExpvar publishes the collector under the expvar name "dxml"
// (alongside the standard memstats/cmdline vars on /debug/vars). The
// first collector passed wins for the process lifetime — expvar names
// are global and re-publishing panics, so this is sync.Once-guarded.
func PublishExpvar(c *Collector) {
	if c == nil {
		return
	}
	publishOnce.Do(func() {
		expvar.Publish("dxml", expvar.Func(func() any {
			out := map[string]any{"version": Version}
			for id := Counter(0); id < numCounters; id++ {
				out[counterMeta[id].name] = c.Counter(id)
			}
			for id := Hist(0); id < numHists; id++ {
				s := c.Snapshot(id)
				out[histMeta[id].name] = map[string]any{
					"count": s.Count,
					"sum":   s.Sum,
					"p50":   s.Quantile(0.50),
					"p99":   s.Quantile(0.99),
				}
			}
			return out
		}))
	})
}

// MountDebug mounts the net/http/pprof handlers and the expvar JSON
// dump on mux under their conventional /debug/ paths. It exists
// because pprof's init only registers on http.DefaultServeMux, which
// the federation's servers do not use.
func MountDebug(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
}

// DebugServer starts a standalone debug HTTP server on addr serving
// pprof and expvar, for processes (serve/join) that have no HTTP mux
// of their own. It returns the server so callers can Close it; the
// listen error, if any, surfaces from ListenAndServe on the returned
// channel.
func DebugServer(addr string, c *Collector) (*http.Server, <-chan error) {
	PublishExpvar(c)
	mux := http.NewServeMux()
	MountDebug(mux)
	srv := &http.Server{Addr: addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	return srv, errc
}
