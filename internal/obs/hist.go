package obs

import (
	"math/bits"
	"sync/atomic"
)

// numBuckets is one bucket per possible bits.Len64 result (0..64):
// bucket k holds samples v with bits.Len64(uint64(v)) == k, i.e.
// v in [2^(k-1), 2^k). Power-of-two buckets trade resolution for a
// bucketing function that is one instruction and needs no search.
const numBuckets = 65

// Histogram is a fixed-bucket, lock-free histogram. Buckets are
// powers of two over the observed unit (nanoseconds for latencies,
// bytes for sizes, chunks for occupancy). The zero value is ready.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// Observe records one sample. Negative samples clamp to zero (they
// land in bucket 0) so a clock hiccup cannot corrupt bucket indexing.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Snapshot copies the histogram's current state. Loads are not
// mutually atomic — under concurrent writes the snapshot may be off by
// in-flight samples, which is fine for monitoring output.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram.
type HistSnapshot struct {
	Count   int64
	Sum     int64
	Buckets [numBuckets]int64
}

// BucketBound returns the inclusive upper bound of bucket i in the
// observed unit: 0 for bucket 0, 2^i - 1 for the rest, and the
// maximum int64 for the final catch-all bucket.
func BucketBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return int64(1)<<i - 1
}

// Quantile returns an upper-bound estimate of quantile q in [0,1]
// from bucket boundaries: the bound of the bucket where the q-th
// sample falls. Returns 0 for an empty snapshot.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen int64
	for i, n := range s.Buckets {
		seen += n
		if seen > rank {
			return BucketBound(i)
		}
	}
	return BucketBound(numBuckets - 1)
}

// Mean returns the arithmetic mean of observed samples, 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
