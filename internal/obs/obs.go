// Package obs is the federation's allocation-free telemetry substrate:
// atomic counters, fixed-bucket latency/size histograms, and a
// ring-buffered structured trace log. Every layer of the stack
// (transport, p2p, stream, live, host) takes an optional *Collector;
// a nil collector is the no-op sink — every method begins with a nil
// check and returns immediately, so uninstrumented hot paths pay one
// predicted branch and zero allocations.
//
// Identifiers are enumerated, not stringly-typed: a counter increment
// is one atomic add into a fixed array, a histogram observation is two
// atomic adds plus one bucket increment. Names only exist at the
// exposition edge (Prometheus text, expvar JSON, JSONL trace spans).
package obs

import (
	"crypto/rand"
	"encoding/binary"
	"sync/atomic"
	"time"
)

// Version is the build identifier reported by /healthz and the debug
// endpoints. Release builds stamp it with
//
//	go build -ldflags "-X dxml/internal/obs.Version=v1.2.3"
var Version = "dev"

// Counter identifies one monotonic event counter.
type Counter uint8

// Counter IDs, one per instrumented event across the stack.
const (
	CFramesEncoded    Counter = iota // transport: frames written to a wire
	CFramesDecoded                   // transport: frames read off a wire
	CChunksSent                      // transport: serialization chunks shipped
	CChunksAcked                     // transport: cumulative chunk acks received
	CReconnects                      // live: sessions re-dialed after a drop
	CHealthUp                        // live: health transitions into Live/Recovered
	CHealthDown                      // live: health transitions into Stale/Down
	CEvictions                       // host: designs evicted to fit the resident budget
	CAdmissions                      // host: sessions admitted by the router
	CRefusals                        // host: sessions refused (unknown design, over capacity)
	CEditsApplied                    // live: edits applied to a replica
	CDocsValidated                   // stream: full-document validations completed
	CStreamEvents                    // stream: parse events fed through runners
	CNodesRevalidated                // stream: nodes recheck-ed by incremental validation
	CNodesSkipped                    // stream: nodes skipped by incremental validation
	CBytesSavedObs                   // p2p: serialization bytes saved by accepted-prefix aborts
	numCounters
)

// Hist identifies one fixed-bucket histogram.
type Hist uint8

// Histogram IDs. Units are encoded in the name: *Ns histograms observe
// nanoseconds, the rest observe raw magnitudes (bytes, chunks).
const (
	HFrameEncodeNs      Hist = iota // transport: frame serialize+write time
	HFrameDecodeNs                  // transport: frame read+decode time
	HChunkRTTNs                     // transport: chunk send → cumulative ack covering it
	HWindowOccupancy                // transport: unacked chunks in flight at send time
	HReconnectBackoffNs             // live: delay slept before a re-dial attempt
	HFragmentOpenNs                 // p2p: fragment open → first use
	HFragmentTransferNs             // p2p: fragment open → transfer settled
	HValidateDocNs                  // stream: one document's validation wall time
	HEditApplyNs                    // live: edit apply + incremental revalidation
	HAdmissionNs                    // host: session admission (routing) latency
	HChunkBytes                     // transport: shipped chunk payload sizes
	numHists
)

// Collector aggregates counters and histograms for one process (or one
// test). The zero value is NOT ready; use New. A nil *Collector is the
// documented no-op sink: all methods are safe to call on nil.
type Collector struct {
	epoch    time.Time
	counters [numCounters]atomic.Int64
	hists    [numHists]Histogram
	trace    atomic.Pointer[TraceLog]
}

// New returns an empty collector whose monotonic clock starts now.
func New() *Collector {
	return &Collector{epoch: time.Now()}
}

// Add increments a counter by n. No-op on a nil collector.
func (c *Collector) Add(id Counter, n int64) {
	if c == nil {
		return
	}
	c.counters[id].Add(n)
}

// Observe records one histogram sample. No-op on a nil collector.
func (c *Collector) Observe(id Hist, v int64) {
	if c == nil {
		return
	}
	c.hists[id].Observe(v)
}

// Nanos returns monotonic nanoseconds since the collector was created,
// the timebase for every latency observation and span timestamp. It
// returns 0 on a nil collector so `start := c.Nanos()` in instrumented
// code stays branch-cheap and allocation-free when telemetry is off.
func (c *Collector) Nanos() int64 {
	if c == nil {
		return 0
	}
	return int64(time.Since(c.epoch))
}

// Counter returns a counter's current value (0 on a nil collector).
func (c *Collector) Counter(id Counter) int64 {
	if c == nil {
		return 0
	}
	return c.counters[id].Load()
}

// Snapshot returns a point-in-time copy of one histogram.
func (c *Collector) Snapshot(id Hist) HistSnapshot {
	if c == nil {
		return HistSnapshot{}
	}
	return c.hists[id].Snapshot()
}

// SetTrace attaches a span sink; Span calls forward to it. A nil log
// detaches. Safe for concurrent use with Span.
func (c *Collector) SetTrace(t *TraceLog) {
	if c == nil {
		return
	}
	c.trace.Store(t)
}

// Trace returns the attached span sink, or nil.
func (c *Collector) Trace() *TraceLog {
	if c == nil {
		return nil
	}
	return c.trace.Load()
}

// Span emits one completed span to the attached trace log. No-op when
// the collector is nil or no trace sink is attached, so span emission
// can stay inline in transfer paths.
func (c *Collector) Span(s Span) {
	if c == nil {
		return
	}
	t := c.trace.Load()
	if t == nil {
		return
	}
	t.Emit(s)
}

// NewTraceID mints a random nonzero 64-bit trace ID. Trace IDs are
// minted by the dialing side at session hello and carried on the wire,
// so the same ID tags both processes' spans for one session.
func NewTraceID() uint64 {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			// crypto/rand never fails on supported platforms; fall back
			// to a time-derived ID rather than panicking in a hot path.
			return uint64(time.Now().UnixNano()) | 1
		}
		if id := binary.BigEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
}
