package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
)

// Span is one completed trace span: a named interval within a session,
// tagged with the trace ID minted at that session's hello so the two
// processes' span streams can be stitched into one timeline.
//
// Start/End are wall-clock Unix nanoseconds (comparable across
// processes on one machine, approximately across NTP-synced ones).
type Span struct {
	Trace uint64 `json:"trace"`
	Name  string `json:"name"`           // e.g. "hello", "open", "chunks", "verdict"
	Frag  string `json:"frag,omitempty"` // fragment / docking-point name, when per-fragment
	Start int64  `json:"start_unix_ns"`
	End   int64  `json:"end_unix_ns"`
	Bytes int64  `json:"bytes,omitempty"` // payload bytes the span covers, when meaningful
	N     int64  `json:"n,omitempty"`     // item count (chunks, edits, events), when meaningful
	Err   string `json:"err,omitempty"`
}

// traceRing bounds in-memory span retention; the JSONL sink keeps the
// full stream.
const traceRing = 512

// TraceLog collects completed spans into a fixed ring and, when
// constructed over a writer, appends each span as one JSON line.
// Emit is safe for concurrent use; it holds a mutex, so trace-logging
// is for lifecycle events (per fragment, per session), never per chunk.
type TraceLog struct {
	mu     sync.Mutex
	w      *bufio.Writer
	closer io.Closer
	ring   [traceRing]Span
	total  int
}

// NewTraceLog returns a trace log writing JSONL spans to w (nil w:
// ring only). The caller owns w's lifetime; use OpenTrace for files.
func NewTraceLog(w io.Writer) *TraceLog {
	t := &TraceLog{}
	if w != nil {
		t.w = bufio.NewWriter(w)
	}
	return t
}

// OpenTrace opens a JSONL span log at path, creating it if absent and
// appending if present — a restarted process extends its trace file
// rather than erasing the history that led up to the restart.
func OpenTrace(path string) (*TraceLog, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	t := NewTraceLog(f)
	t.closer = f
	return t, nil
}

// Emit records one completed span.
func (t *TraceLog) Emit(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring[t.total%traceRing] = s
	t.total++
	if t.w != nil {
		b, err := json.Marshal(s)
		if err != nil {
			return
		}
		t.w.Write(b)
		t.w.WriteByte('\n')
	}
}

// Spans returns the retained spans, oldest first.
func (t *TraceLog) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.total
	if n > traceRing {
		n = traceRing
	}
	out := make([]Span, 0, n)
	start := t.total - n
	for i := start; i < t.total; i++ {
		out = append(out, t.ring[i%traceRing])
	}
	return out
}

// Total returns how many spans were emitted over the log's lifetime
// (including any that have rotated out of the ring).
func (t *TraceLog) Total() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Flush forces buffered JSONL output to the underlying writer.
func (t *TraceLog) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.w == nil {
		return nil
	}
	return t.w.Flush()
}

// Close flushes and, when the log owns its file (OpenTrace), closes it.
func (t *TraceLog) Close() error {
	err := t.Flush()
	if t != nil && t.closer != nil {
		if cerr := t.closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
