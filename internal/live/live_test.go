package live

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"dxml/internal/xmltree"
)

func TestDocApplyBasics(t *testing.T) {
	ed := NewEditor(xmltree.MustParse("root(a(x y) b c)"))
	replica := NewDoc(xmltree.MustParse("root(a(x y) b c)"))

	step := func(e Edit, err error) Edit {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if _, aerr := replica.Apply(e); aerr != nil {
			t.Fatalf("replica apply %v: %v", e, aerr)
		}
		return e
	}

	step(ed.ReplaceSubtree([]int{0}, xmltree.MustParse("a(z)")))
	step(ed.InsertChild(nil, 1, xmltree.MustParse("w(v)")))
	step(ed.DeleteSubtree([]int{3}))
	step(ed.InsertChild([]int{0}, 0, xmltree.MustParse("q")))

	want := "root(a(q z) w(v) b)"
	if got := ed.Tree().String(); got != want {
		t.Fatalf("editor doc = %s, want %s", got, want)
	}
	if got := replica.Tree().String(); got != want {
		t.Fatalf("replica doc = %s, want %s", got, want)
	}
	if replica.Version() != 4 || ed.Version() != 4 {
		t.Fatalf("versions: editor %d, replica %d, want 4", ed.Version(), replica.Version())
	}
}

// TestAddressStability is the point of prefix labels: an address minted
// before unrelated sibling edits still resolves to the same node after
// them.
func TestAddressStability(t *testing.T) {
	ed := NewEditor(xmltree.MustParse("root(a b(x) c)"))
	addrB, err := addrOf(ed, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	// Edits around b: insert before, delete after, insert at front.
	if _, err := ed.InsertChild(nil, 0, xmltree.MustParse("p")); err != nil {
		t.Fatal(err)
	}
	if _, err := ed.DeleteSubtree([]int{3}); err != nil { // c
		t.Fatal(err)
	}
	if _, err := ed.InsertChild(nil, 1, xmltree.MustParse("q")); err != nil {
		t.Fatal(err)
	}
	ed.mu.Lock()
	path, rerr := ed.doc.PathOf(addrB)
	ed.mu.Unlock()
	if rerr != nil {
		t.Fatalf("address broke: %v", rerr)
	}
	if ed.Tree().Children[path[0]].Label != "b" {
		t.Fatalf("address resolved to %v, want b", path)
	}
}

func addrOf(ed *Editor, path []int) ([]uint64, error) {
	ed.mu.Lock()
	defer ed.mu.Unlock()
	return ed.doc.AddrOf(path)
}

// TestInsertKeyExhaustion drives midpoint insertion until the gap is
// exhausted; the editor must fall back to a parent re-key (a replace
// edit) and replicas applying the log must converge anyway.
func TestInsertKeyExhaustion(t *testing.T) {
	ed := NewEditor(xmltree.MustParse("root(a b)"))
	replica := NewDoc(xmltree.MustParse("root(a b)"))
	sawReplace := false
	for i := 0; i < 64; i++ {
		e, err := ed.InsertChild(nil, 1, xmltree.Leaf("m"))
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if e.Op == OpReplace {
			sawReplace = true
		}
		if _, err := replica.Apply(e); err != nil {
			t.Fatalf("replica apply %d: %v", i, err)
		}
	}
	if !sawReplace {
		t.Fatal("64 same-gap inserts never exhausted the key gap (keyGap shrank?)")
	}
	if !ed.Tree().Equal(replica.Tree()) {
		t.Fatal("editor and replica diverged after re-key fallback")
	}
	if got := len(ed.Tree().Children); got != 66 {
		t.Fatalf("child count = %d, want 66", got)
	}
}

func TestEditValidation(t *testing.T) {
	d := NewDoc(xmltree.MustParse("root(a)"))
	cases := []Edit{
		{Version: 1, Op: OpDelete},                                                 // root delete
		{Version: 1, Op: OpInsert, Addr: nil, Doc: xmltree.Leaf("x")},              // insert without key
		{Version: 1, Op: OpReplace, Addr: nil},                                     // replace without payload
		{Version: 2, Op: OpReplace, Addr: nil, Doc: xmltree.Leaf("x")},             // version gap
		{Version: 1, Op: OpReplace, Addr: []uint64{999}, Doc: xmltree.Leaf("x")},   // bad address
		{Version: 1, Op: OpInsert, Addr: []uint64{keyGap}, Doc: xmltree.Leaf("x")}, // taken key
		{Version: 1, Op: Op(9), Addr: nil},                                         // unknown op
	}
	for i, e := range cases {
		if _, err := d.Apply(e); err == nil {
			t.Errorf("case %d (%+v): expected an error", i, e)
		}
	}
	if d.Version() != 0 {
		t.Fatalf("failed edits bumped the version to %d", d.Version())
	}
}

// randomTree builds a random labeled tree with ~n nodes.
func randomTree(r *rand.Rand, n int) *xmltree.Tree {
	labels := []string{"a", "b", "c", "d", "e"}
	var build func(budget int) *xmltree.Tree
	build = func(budget int) *xmltree.Tree {
		t := &xmltree.Tree{Label: labels[r.Intn(len(labels))]}
		budget--
		for budget > 0 && r.Intn(3) > 0 {
			size := 1 + r.Intn(budget)
			t.Children = append(t.Children, build(size))
			budget -= size
		}
		return t
	}
	return build(n)
}

// TestSetTreeDiff: for random tree pairs, SetTree must publish an edit
// sequence that transforms one into the other exactly, and a replica
// applying the published log must converge to the same tree.
func TestSetTreeDiff(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for round := 0; round < 200; round++ {
		from := randomTree(r, 1+r.Intn(30))
		to := randomTree(r, 1+r.Intn(30))
		if round%3 == 0 {
			to.Label = from.Label // exercise the child-diff path, not just root replace
		}
		ed := NewEditor(from)
		replica := NewDoc(from)
		edits, err := ed.SetTree(to)
		if err != nil {
			t.Fatalf("round %d: SetTree: %v", round, err)
		}
		if !ed.Tree().Equal(to) {
			t.Fatalf("round %d: editor tree %s != target %s", round, ed.Tree(), to)
		}
		for _, e := range edits {
			if _, err := replica.Apply(e); err != nil {
				t.Fatalf("round %d: replica apply: %v", round, err)
			}
		}
		if !replica.Tree().Equal(to) {
			t.Fatalf("round %d: replica tree %s != target %s", round, replica.Tree(), to)
		}
		// Re-diffing an equal pair publishes nothing.
		if again, _ := ed.SetTree(to); len(again) != 0 {
			t.Fatalf("round %d: idempotent SetTree published %d edits", round, len(again))
		}
	}
}

func TestNextEditBlocksAndWakes(t *testing.T) {
	ed := NewEditor(xmltree.MustParse("root(a)"))
	got := make(chan Edit, 1)
	go func() {
		e, err := ed.NextEdit(context.Background(), 0)
		if err != nil {
			t.Error(err)
		}
		got <- e
	}()
	time.Sleep(10 * time.Millisecond) // let the subscriber block
	if _, err := ed.ReplaceSubtree([]int{0}, xmltree.Leaf("b")); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-got:
		if e.Version != 1 || e.Op != OpReplace {
			t.Fatalf("subscriber got %+v", e)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("subscriber never woke")
	}
	// Context cancellation unblocks a waiting subscriber.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := ed.NextEdit(ctx, 5)
		errc <- err
	}()
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("canceled NextEdit returned %v", err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for round := 0; round < 100; round++ {
		ed := NewEditor(randomTree(r, 1+r.Intn(40)))
		// Age the doc so non-default keys appear in the snapshot.
		for i := 0; i < r.Intn(10); i++ {
			kids := len(ed.Tree().Children)
			if _, err := ed.InsertChild(nil, r.Intn(kids+1), randomTree(r, 3)); err != nil {
				t.Fatal(err)
			}
		}
		buf, version := ed.EncodeSnapshot()
		if len(buf) != SnapshotSize(snapDoc(ed)) {
			t.Fatalf("round %d: SnapshotSize %d != encoded %d", round, SnapshotSize(snapDoc(ed)), len(buf))
		}
		d, err := DecodeSnapshot(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("round %d: decode: %v", round, err)
		}
		if d.Version() != version {
			t.Fatalf("round %d: version %d != %d", round, d.Version(), version)
		}
		if !d.Tree().Equal(ed.Tree()) {
			t.Fatalf("round %d: snapshot tree differs", round)
		}
		// The decoded replica must accept the editor's next edit (keys
		// survived the trip).
		e, err := ed.InsertChild(nil, 0, xmltree.Leaf("z"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Apply(e); err != nil {
			t.Fatalf("round %d: post-snapshot edit: %v", round, err)
		}
		if !d.Tree().Equal(ed.Tree()) {
			t.Fatalf("round %d: post-snapshot divergence", round)
		}
	}
}

func snapDoc(ed *Editor) *Doc {
	ed.mu.Lock()
	defer ed.mu.Unlock()
	return ed.doc
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	good, _ := NewEditor(xmltree.MustParse("root(a b)")).EncodeSnapshot()
	cases := map[string][]byte{
		"empty":         {},
		"bad magic":     []byte("nope!xxxx"),
		"truncated":     good[:len(good)-2],
		"trailing":      append(append([]byte{}, good...), 0),
		"huge label":    append([]byte(snapMagic), 0x00, 0xFF, 0xFF, 0xFF, 0x7F),
		"unsorted keys": nil, // built below
	}
	// Two siblings with descending keys.
	b := []byte(snapMagic)
	b = append(b, 0)            // version
	b = append(b, 1, 'r', 0, 2) // root, key 0, 2 kids
	b = append(b, 1, 'a', 9, 0) // key 9
	b = append(b, 1, 'b', 3, 0) // key 3 < 9
	cases["unsorted keys"] = b
	for name, wire := range cases {
		if _, err := DecodeSnapshot(bytes.NewReader(wire)); err == nil {
			t.Errorf("%s: expected a decode error", name)
		}
	}
}

func FuzzSnapshotDecode(f *testing.F) {
	seed, _ := NewEditor(xmltree.MustParse("root(a(x) b c(d e))")).EncodeSnapshot()
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte(snapMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeSnapshot(bytes.NewReader(data))
		if err != nil {
			return // any error is fine; panics are not
		}
		// Anything accepted must re-encode and re-decode identically.
		again, aerr := DecodeSnapshot(bytes.NewReader(AppendSnapshot(nil, d)))
		if aerr != nil {
			t.Fatalf("accepted snapshot does not round-trip: %v", aerr)
		}
		if !again.Tree().Equal(d.Tree()) || again.Version() != d.Version() {
			t.Fatal("round trip changed the snapshot")
		}
	})
}
