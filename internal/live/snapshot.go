package live

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// The snapshot format is the live wire's initial state transfer: the
// whole keyed document plus its version, so a subscriber can apply
// every later edit by address. Plain XML would lose the sibling keys
// (midpoint-inserted nodes don't carry their key in their serialization),
// so snapshots use a dedicated binary form:
//
//	magic "dxlS1" | uvarint version | node*
//	node = uvarint len(label) | label | uvarint key | uvarint #children
//
// in preorder. Decoding is iterative and allocates per decoded node
// only, so truncated or hostile input errors out without deep
// recursion or length-proportional allocation.
const snapMagic = "dxlS1"

// maxSnapLabel caps one label's length: garbage claiming a gigabyte
// label must error before allocating it.
const maxSnapLabel = 1 << 20

// AppendSnapshot appends the snapshot encoding of d to buf.
func AppendSnapshot(buf []byte, d *Doc) []byte {
	buf = append(buf, snapMagic...)
	buf = binary.AppendUvarint(buf, d.version)
	var rec func(n *node) // document depth: ours, not hostile
	rec = func(n *node) {
		buf = binary.AppendUvarint(buf, uint64(len(n.label)))
		buf = append(buf, n.label...)
		buf = binary.AppendUvarint(buf, n.key)
		buf = binary.AppendUvarint(buf, uint64(len(n.kids)))
		for _, k := range n.kids {
			rec(k)
		}
	}
	rec(d.root)
	return buf
}

// SnapshotSize returns len(AppendSnapshot(nil, d)) without building it.
func SnapshotSize(d *Doc) int {
	n := len(snapMagic) + uvarintLen(d.version)
	var rec func(nd *node)
	rec = func(nd *node) {
		n += uvarintLen(uint64(len(nd.label))) + len(nd.label) +
			uvarintLen(nd.key) + uvarintLen(uint64(len(nd.kids)))
		for _, k := range nd.kids {
			rec(k)
		}
	}
	rec(d.root)
	return n
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// DecodeSnapshot reads a snapshot back into a Doc. It never panics on
// garbage: truncation, oversized labels and malformed varints all
// error out.
func DecodeSnapshot(r io.Reader) (*Doc, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("live: snapshot magic: %w", err)
	}
	if string(magic) != snapMagic {
		return nil, fmt.Errorf("live: not a live snapshot (magic %q)", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("live: snapshot version: %w", err)
	}
	d := &Doc{version: version}
	// Iterative preorder rebuild: the stack holds parents still owed
	// children. Children are appended one at a time (no count-sized
	// preallocation), so a hostile child count cannot balloon memory.
	type pending struct {
		n    *node
		want uint64
	}
	var stack []pending
	for {
		n, kids, err := readSnapNode(br)
		if err != nil {
			return nil, err
		}
		d.nodes++
		if d.root == nil {
			d.root = n
		} else {
			top := &stack[len(stack)-1]
			if k := top.n.kids; len(k) > 0 && k[len(k)-1].key >= n.key {
				return nil, fmt.Errorf("live: snapshot sibling keys out of order (%d then %d)", k[len(k)-1].key, n.key)
			}
			top.n.kids = append(top.n.kids, n)
			top.want--
		}
		if kids > 0 {
			stack = append(stack, pending{n: n, want: kids})
		} else {
			for len(stack) > 0 && stack[len(stack)-1].want == 0 {
				stack = stack[:len(stack)-1]
			}
			if len(stack) == 0 {
				break
			}
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("live: trailing bytes after snapshot")
	}
	return d, nil
}

func readSnapNode(br *bufio.Reader) (*node, uint64, error) {
	ll, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, 0, fmt.Errorf("live: truncated snapshot: %w", unexpectedEOF(err))
	}
	if ll > maxSnapLabel {
		return nil, 0, fmt.Errorf("live: snapshot label of %d bytes exceeds the %d-byte limit", ll, maxSnapLabel)
	}
	label := make([]byte, ll)
	if _, err := io.ReadFull(br, label); err != nil {
		return nil, 0, fmt.Errorf("live: truncated snapshot: %w", unexpectedEOF(err))
	}
	key, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, 0, fmt.Errorf("live: truncated snapshot: %w", unexpectedEOF(err))
	}
	kids, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, 0, fmt.Errorf("live: truncated snapshot: %w", unexpectedEOF(err))
	}
	return &node{label: string(label), key: key}, kids, nil
}

func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
