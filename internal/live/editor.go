package live

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"dxml/internal/xmltree"
)

// ErrCompacted reports that the edit log no longer reaches back to the
// requested version: Compact dropped the prefix. A subscriber that
// trips it must fall back to a fresh snapshot cut.
var ErrCompacted = errors.New("live: edit log compacted past the requested version")

// Editor is the peer-side publisher of a fragment's edit log: it owns
// the live Doc, applies edits locally, appends them to the log, and
// wakes any number of subscribers (transport feeds) blocked in
// NextEdit. All methods are safe for concurrent use.
//
// The kernel peer's global verdict flows back through NoteVerdict
// (the wire's verdict-update frames), so the editing site always knows
// whether the federation currently accepts its fragment.
type Editor struct {
	mu      sync.Mutex
	doc     *Doc
	log     []Edit
	first   uint64 // versions <= first are compacted away; log[i].Version == first+i+1
	changed chan struct{}

	verdictKnown   bool
	verdictVersion uint64
	verdictValid   bool
	verdictSignal  chan struct{} // closed+re-armed on every NoteVerdict
}

// NewEditor builds an editor over a fresh version-0 document for t.
func NewEditor(t *xmltree.Tree) *Editor {
	return &Editor{doc: NewDoc(t), changed: make(chan struct{}), verdictSignal: make(chan struct{})}
}

// Version returns the current document version (== published edits).
func (ed *Editor) Version() uint64 {
	ed.mu.Lock()
	defer ed.mu.Unlock()
	return ed.doc.version
}

// Tree returns a snapshot of the current document.
func (ed *Editor) Tree() *xmltree.Tree {
	ed.mu.Lock()
	defer ed.mu.Unlock()
	return ed.doc.Tree()
}

// EncodeSnapshot returns the keyed snapshot of the current document
// and its version, atomically — the cut a live subscription starts
// from: every edit with a greater version applies cleanly on top.
func (ed *Editor) EncodeSnapshot() ([]byte, uint64) {
	ed.mu.Lock()
	defer ed.mu.Unlock()
	return AppendSnapshot(nil, ed.doc), ed.doc.version
}

// publish applies an edit built by fn against the current version and
// appends it to the log. fn runs under the lock.
func (ed *Editor) publish(build func(d *Doc) (Edit, error)) (Edit, error) {
	ed.mu.Lock()
	defer ed.mu.Unlock()
	return ed.publishLocked(build)
}

func (ed *Editor) publishLocked(build func(d *Doc) (Edit, error)) (Edit, error) {
	e, err := build(ed.doc)
	if err != nil {
		return Edit{}, err
	}
	if _, err := ed.doc.Apply(e); err != nil {
		return Edit{}, err
	}
	ed.log = append(ed.log, e)
	close(ed.changed)
	ed.changed = make(chan struct{})
	return e, nil
}

// ReplaceSubtree publishes a replace of the subtree at the given index
// path (empty path: the whole fragment) with a copy of t.
func (ed *Editor) ReplaceSubtree(path []int, t *xmltree.Tree) (Edit, error) {
	return ed.publish(func(d *Doc) (Edit, error) {
		addr, err := d.AddrOf(path)
		if err != nil {
			return Edit{}, err
		}
		return Edit{Version: d.version + 1, Op: OpReplace, Addr: addr, Doc: t.Clone()}, nil
	})
}

// InsertChild publishes an insert of a copy of t as the i-th child of
// the node at parentPath (i may equal the current child count: append).
// If the neighboring sibling keys leave no gap, it falls back to
// replacing the parent subtree with the child spliced in — a
// deterministic re-key that keeps replicas convergent.
func (ed *Editor) InsertChild(parentPath []int, i int, t *xmltree.Tree) (Edit, error) {
	ed.mu.Lock()
	defer ed.mu.Unlock()
	return ed.insertAtLocked(parentPath, i, t)
}

// DeleteSubtree publishes a delete of the subtree at the given path.
func (ed *Editor) DeleteSubtree(path []int) (Edit, error) {
	return ed.publish(func(d *Doc) (Edit, error) {
		if len(path) == 0 {
			return Edit{}, fmt.Errorf("live: cannot delete the fragment root")
		}
		addr, err := d.AddrOf(path)
		if err != nil {
			return Edit{}, err
		}
		return Edit{Version: d.version + 1, Op: OpDelete, Addr: addr}, nil
	})
}

// Log returns a copy of the still-retained edit log (everything after
// the compaction horizon).
func (ed *Editor) Log() []Edit {
	ed.mu.Lock()
	defer ed.mu.Unlock()
	return append([]Edit(nil), ed.log...)
}

// Compacted returns the compaction horizon: every edit with a version
// at or below it has been dropped from the log.
func (ed *Editor) Compacted() uint64 {
	ed.mu.Lock()
	defer ed.mu.Unlock()
	return ed.first
}

// Compact drops every log entry with a version at or below `below`,
// bounding the log's memory. Subscribers that later ask to resume from
// a compacted version get ErrCompacted and must re-pull a snapshot;
// CutSince makes that fallback atomic.
func (ed *Editor) Compact(below uint64) {
	ed.mu.Lock()
	defer ed.mu.Unlock()
	if below > ed.doc.version {
		below = ed.doc.version
	}
	if below <= ed.first {
		return
	}
	n := below - ed.first // log entries to drop
	ed.log = append(ed.log[:0:0], ed.log[n:]...)
	ed.first = below
}

// NextEdit blocks until the edit with version after+1 is published and
// returns it (versions are dense, so after-first is its log position).
// If compaction has dropped that edit it returns ErrCompacted — the
// subscriber's cue to fall back to a snapshot.
func (ed *Editor) NextEdit(ctx context.Context, after uint64) (Edit, error) {
	for {
		ed.mu.Lock()
		if after < ed.first {
			ed.mu.Unlock()
			return Edit{}, fmt.Errorf("%w (want edits after %d, log starts after %d)", ErrCompacted, after, ed.first)
		}
		if idx := after - ed.first; idx < uint64(len(ed.log)) {
			e := ed.log[idx]
			ed.mu.Unlock()
			return e, nil
		}
		ch := ed.changed
		ed.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return Edit{}, ctx.Err()
		}
	}
}

// CutSince is the resume decision, taken atomically: if the log still
// covers every edit after `after`, it returns (nil, after, true) — the
// subscriber needs no snapshot, just the suffix replay from NextEdit.
// Otherwise (the log was compacted past it, or `after` is bogus and
// ahead of the document) it returns a fresh full snapshot cut exactly
// like EncodeSnapshot, and resumed=false.
func (ed *Editor) CutSince(after uint64) (snapshot []byte, version uint64, resumed bool) {
	ed.mu.Lock()
	defer ed.mu.Unlock()
	if after >= ed.first && after <= ed.doc.version {
		return nil, after, true
	}
	return AppendSnapshot(nil, ed.doc), ed.doc.version, false
}

// NoteVerdict records the kernel peer's global verdict after it
// applied the edit with the given version (a verdict-update frame).
func (ed *Editor) NoteVerdict(version uint64, valid bool) {
	ed.mu.Lock()
	defer ed.mu.Unlock()
	if ed.verdictKnown && version < ed.verdictVersion {
		return // stale update from a slower subscriber
	}
	ed.verdictKnown, ed.verdictVersion, ed.verdictValid = true, version, valid
	close(ed.verdictSignal)
	ed.verdictSignal = make(chan struct{})
}

// AwaitVerdict blocks until a kernel peer has reported a global verdict
// covering at least the given edit version, and returns it. It is the
// condition-wait replacement for polling KernelVerdict in a loop.
func (ed *Editor) AwaitVerdict(ctx context.Context, version uint64) (bool, error) {
	for {
		ed.mu.Lock()
		if ed.verdictKnown && ed.verdictVersion >= version {
			v := ed.verdictValid
			ed.mu.Unlock()
			return v, nil
		}
		ch := ed.verdictSignal
		ed.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return false, ctx.Err()
		}
	}
}

// KernelVerdict returns the most recent global verdict reported by a
// kernel peer, and the edit version it covers.
func (ed *Editor) KernelVerdict() (version uint64, valid, known bool) {
	ed.mu.Lock()
	defer ed.mu.Unlock()
	return ed.verdictVersion, ed.verdictValid, ed.verdictKnown
}

// SetTree diffs the current document against target and publishes the
// edit sequence transforming one into the other — subtree replaces at
// the deepest differing nodes, child inserts and deletes at matching
// ones. This is how `dxml serve -watch` re-serves a changed document
// file as deltas. It returns the published edits (none when the trees
// already agree).
func (ed *Editor) SetTree(target *xmltree.Tree) ([]Edit, error) {
	ed.mu.Lock()
	defer ed.mu.Unlock()
	start := len(ed.log)
	if err := ed.syncNode(nil, ed.doc.root, target); err != nil {
		return nil, err
	}
	return append([]Edit(nil), ed.log[start:]...), nil
}

// syncNode recursively edits the subtree at path (currently cur) into
// want. Called under the lock.
func (ed *Editor) syncNode(path []int, cur *node, want *xmltree.Tree) error {
	if cur.label != want.Label {
		_, err := ed.publishLocked(func(d *Doc) (Edit, error) {
			addr, err := d.AddrOf(path)
			if err != nil {
				return Edit{}, err
			}
			return Edit{Version: d.version + 1, Op: OpReplace, Addr: addr, Doc: want.Clone()}, nil
		})
		return err
	}
	a, b := cur.kids, want.Children
	// Trim the common prefix and suffix of already-equal children.
	pre := 0
	for pre < len(a) && pre < len(b) && nodeEqualsTree(a[pre], b[pre]) {
		pre++
	}
	suf := 0
	for suf < len(a)-pre && suf < len(b)-pre && nodeEqualsTree(a[len(a)-1-suf], b[len(b)-1-suf]) {
		suf++
	}
	ma, mb := len(a)-pre-suf, len(b)-pre-suf
	// Recurse into positionally paired middle children.
	for k := 0; k < ma && k < mb; k++ {
		if err := ed.syncNode(append(path, pre+k), a[pre+k], b[pre+k]); err != nil {
			return err
		}
	}
	// Delete surplus children (from the end, so indices stay stable),
	// then insert missing ones.
	for k := ma - 1; k >= mb; k-- {
		if _, err := ed.deleteAtLocked(append(path, pre+k)); err != nil {
			return err
		}
	}
	for k := ma; k < mb; k++ {
		if _, err := ed.insertAtLocked(path, pre+k, b[pre+k]); err != nil {
			return err
		}
	}
	return nil
}

func (ed *Editor) deleteAtLocked(path []int) (Edit, error) {
	return ed.publishLocked(func(d *Doc) (Edit, error) {
		addr, err := d.AddrOf(path)
		if err != nil {
			return Edit{}, err
		}
		return Edit{Version: d.version + 1, Op: OpDelete, Addr: addr}, nil
	})
}

// insertAtLocked publishes the insert of a copy of t at position i
// under parentPath, falling back to a parent re-key (a replace with the
// child spliced in) when the sibling key gap is exhausted. Called under
// the lock.
func (ed *Editor) insertAtLocked(parentPath []int, i int, t *xmltree.Tree) (Edit, error) {
	e, err := ed.publishLocked(func(d *Doc) (Edit, error) {
		addr, err := d.AddrOf(parentPath)
		if err != nil {
			return Edit{}, err
		}
		parent, _, _, err := d.resolve(addr)
		if err != nil {
			return Edit{}, err
		}
		if i < 0 || i > len(parent.kids) {
			return Edit{}, fmt.Errorf("live: insert index %d out of range (parent has %d children)", i, len(parent.kids))
		}
		key, err := insertKey(parent, i)
		if err != nil {
			return Edit{}, err
		}
		return Edit{Version: d.version + 1, Op: OpInsert, Addr: append(addr, key), Doc: t.Clone()}, nil
	})
	if err == ErrNoGap {
		// Exhausted gap: re-key the parent by replacing its subtree
		// with the child inserted at position i.
		return ed.publishLocked(func(d *Doc) (Edit, error) {
			addr, err := d.AddrOf(parentPath)
			if err != nil {
				return Edit{}, err
			}
			parent, _, _, err := d.resolve(addr)
			if err != nil {
				return Edit{}, err
			}
			nt := materialize(parent)
			nt.Children = append(nt.Children, nil)
			copy(nt.Children[i+1:], nt.Children[i:])
			nt.Children[i] = t.Clone()
			return Edit{Version: d.version + 1, Op: OpReplace, Addr: addr, Doc: nt}, nil
		})
	}
	return e, err
}

// nodeEqualsTree reports deep equality of a live node and a tree.
func nodeEqualsTree(n *node, t *xmltree.Tree) bool {
	if n.label != t.Label || len(n.kids) != len(t.Children) {
		return false
	}
	for i, k := range n.kids {
		if !nodeEqualsTree(k, t.Children[i]) {
			return false
		}
	}
	return true
}
