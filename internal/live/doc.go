// Package live implements the edit subsystem of the live federation:
// versioned fragments whose nodes carry prefix-based labels — stable
// subtree addresses in the style of Koong et al.'s prefix-based
// labeling annotation, valid under sibling insertion and deletion — an
// ordered log of subtree edits (replace / insert / delete, the
// operation set of Pasquier & Théry's distributed editing environment),
// and the peer-side Editor that applies edits locally and publishes
// them to any number of subscribers.
//
// A node's address is the sequence of sibling keys on the path from the
// fragment root (exclusive) to the node: siblings are ordered by key,
// fresh subtrees get keys spaced keyGap apart, and an insertion between
// two siblings takes the midpoint of their keys — so existing addresses
// survive any number of edits elsewhere in the tree, which is what lets
// an edit log reference nodes across versions without renumbering.
// When a midpoint no longer exists (the gap between two neighbors is
// exhausted), the insert fails with ErrNoGap and the Editor falls back
// to replacing the parent subtree, which re-keys it deterministically.
//
// Both sides of a live session hold a Doc: the editing peer mutates its
// Doc through the Editor, and the kernel peer holds a replica advanced
// by applying the same edit log in the same order. Key assignment for
// edit payloads is deterministic (build order), so the two Docs stay
// structurally identical, key for key — addresses minted by the editor
// always resolve at the replica.
package live

import (
	"fmt"
	"math"
	"sort"

	"dxml/internal/xmltree"
)

// keyGap is the spacing between the sibling keys of a freshly built
// subtree: wide enough that 32 midpoint insertions fit between any two
// fresh siblings before a re-key is needed.
const keyGap = 1 << 32

// ErrNoGap reports that two sibling keys are adjacent, so no key exists
// between them: the inserting editor must re-key by replacing the
// parent subtree instead (Editor.InsertChild does this automatically).
var ErrNoGap = fmt.Errorf("live: no key available between siblings (re-key the parent)")

// node is one node of a live document: its element label, its sibling
// key (the last component of its prefix address), and its children in
// key order.
type node struct {
	label string
	key   uint64
	kids  []*node
}

// Doc is a versioned, prefix-labeled fragment. The zero value is not
// usable; build one with NewDoc (fresh keys) or DecodeSnapshot (keys
// from an editor's snapshot). Doc is not safe for concurrent use; the
// Editor adds the locking.
type Doc struct {
	root    *node
	version uint64
	nodes   int
}

// NewDoc builds a version-0 document from t with fresh keys: the i-th
// child of every node gets key (i+1)·keyGap.
func NewDoc(t *xmltree.Tree) *Doc {
	d := &Doc{}
	d.root = d.build(t)
	return d
}

// build constructs a keyed subtree from t, counting its nodes.
func (d *Doc) build(t *xmltree.Tree) *node {
	n := &node{label: t.Label}
	d.nodes++
	if len(t.Children) > 0 {
		n.kids = make([]*node, len(t.Children))
		for i, c := range t.Children {
			k := d.build(c)
			k.key = uint64(i+1) * keyGap
			n.kids[i] = k
		}
	}
	return n
}

// Version returns the number of edits applied so far.
func (d *Doc) Version() uint64 { return d.version }

// Len returns the number of nodes.
func (d *Doc) Len() int { return d.nodes }

// Tree materializes the current document as a fresh xmltree.
func (d *Doc) Tree() *xmltree.Tree { return materialize(d.root) }

func materialize(n *node) *xmltree.Tree {
	t := &xmltree.Tree{Label: n.label}
	if len(n.kids) > 0 {
		t.Children = make([]*xmltree.Tree, len(n.kids))
		for i, k := range n.kids {
			t.Children[i] = materialize(k)
		}
	}
	return t
}

// findKid locates the child with the given key, or reports where it
// would be inserted (ok=false).
func findKid(n *node, key uint64) (int, bool) {
	i := sort.Search(len(n.kids), func(i int) bool { return n.kids[i].key >= key })
	if i < len(n.kids) && n.kids[i].key == key {
		return i, true
	}
	return i, false
}

// resolve walks addr from the root, returning the addressed node, its
// parent (nil for the root) and its index path.
func (d *Doc) resolve(addr []uint64) (n, parent *node, path []int, err error) {
	n = d.root
	path = make([]int, 0, len(addr))
	for depth, key := range addr {
		i, ok := findKid(n, key)
		if !ok {
			return nil, nil, nil, fmt.Errorf("live: address %v: no child with key %d at depth %d", addr, key, depth)
		}
		parent, n = n, n.kids[i]
		path = append(path, i)
	}
	return n, parent, path, nil
}

// AddrOf returns the prefix address of the node at the given index
// path (the empty path addresses the root).
func (d *Doc) AddrOf(path []int) ([]uint64, error) {
	n := d.root
	addr := make([]uint64, 0, len(path))
	for depth, i := range path {
		if i < 0 || i >= len(n.kids) {
			return nil, fmt.Errorf("live: path %v: index %d out of range at depth %d", path, i, depth)
		}
		n = n.kids[i]
		addr = append(addr, n.key)
	}
	return addr, nil
}

// PathOf resolves a prefix address to the current index path.
func (d *Doc) PathOf(addr []uint64) ([]int, error) {
	_, _, path, err := d.resolve(addr)
	return path, err
}

// insertKey picks the key for a new child of n at position i
// (0 ≤ i ≤ len(kids)): the midpoint of the neighboring keys. It fails
// with ErrNoGap when the neighbors are adjacent.
func insertKey(n *node, i int) (uint64, error) {
	var prev uint64
	if i > 0 {
		prev = n.kids[i-1].key
	}
	if i == len(n.kids) {
		if prev > math.MaxUint64-keyGap {
			return 0, ErrNoGap
		}
		return prev + keyGap, nil
	}
	next := n.kids[i].key
	if next-prev < 2 {
		return 0, ErrNoGap
	}
	return prev + (next-prev)/2, nil
}

// Applied describes the structural effect of one applied edit in index
// coordinates: the edited node's index path at the moment of
// application (for inserts, the path of the new node). The incremental
// revalidator consumes it.
type Applied struct {
	Op   Op
	Path []int
}

// Apply applies one edit. Its version must be exactly Version()+1 —
// the log is ordered and gap-free — and its address must resolve.
// Payload subtrees are keyed deterministically (build order), so every
// replica applying the same log converges to the same keyed tree.
func (d *Doc) Apply(e Edit) (Applied, error) {
	if e.Version != d.version+1 {
		return Applied{}, fmt.Errorf("live: edit version %d applied to document version %d", e.Version, d.version)
	}
	if err := e.check(); err != nil {
		return Applied{}, err
	}
	var ap Applied
	ap.Op = e.Op
	switch e.Op {
	case OpReplace:
		n, parent, path, err := d.resolve(e.Addr)
		if err != nil {
			return Applied{}, err
		}
		d.nodes -= countNodes(n)
		fresh := d.build(e.Doc)
		fresh.key = n.key
		if parent == nil {
			d.root = fresh
		} else {
			parent.kids[path[len(path)-1]] = fresh
		}
		ap.Path = path

	case OpInsert:
		parent, _, path, err := d.resolve(e.Addr[:len(e.Addr)-1])
		if err != nil {
			return Applied{}, err
		}
		key := e.Addr[len(e.Addr)-1]
		i, exists := findKid(parent, key)
		if exists {
			return Applied{}, fmt.Errorf("live: insert at %v: key %d already taken", e.Addr, key)
		}
		fresh := d.build(e.Doc)
		fresh.key = key
		parent.kids = append(parent.kids, nil)
		copy(parent.kids[i+1:], parent.kids[i:])
		parent.kids[i] = fresh
		ap.Path = append(path, i)

	case OpDelete:
		n, parent, path, err := d.resolve(e.Addr)
		if err != nil {
			return Applied{}, err
		}
		if parent == nil {
			return Applied{}, fmt.Errorf("live: cannot delete the fragment root")
		}
		i := path[len(path)-1]
		parent.kids = append(parent.kids[:i], parent.kids[i+1:]...)
		d.nodes -= countNodes(n)
		ap.Path = path

	default:
		return Applied{}, fmt.Errorf("live: unknown edit op %d", e.Op)
	}
	d.version = e.Version
	return ap, nil
}

func countNodes(n *node) int {
	c := 1
	for _, k := range n.kids {
		c += countNodes(k)
	}
	return c
}
