package live

import (
	"fmt"

	"dxml/internal/xmltree"
)

// Op is the kind of a subtree edit.
type Op uint8

const (
	// OpReplace replaces the addressed subtree with the payload tree;
	// the node keeps its sibling key (its address is stable across the
	// replace), descendants are keyed fresh. Replacing the root (empty
	// address) swaps the whole fragment.
	OpReplace Op = iota + 1
	// OpInsert inserts the payload tree as a new child: the address
	// names the new node itself — parent address plus the new sibling
	// key, whose order among the existing keys fixes the position.
	OpInsert
	// OpDelete removes the addressed subtree. The root is not
	// deletable.
	OpDelete
)

func (o Op) String() string {
	switch o {
	case OpReplace:
		return "replace"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Edit is one entry of a fragment's ordered edit log. Version numbers
// are dense and 1-based: applying the log in version order to the
// version-0 document reproduces every intermediate state. Doc is the
// payload subtree (nil for deletes); it is owned by the log once
// published — callers must not mutate it afterwards.
type Edit struct {
	Version uint64
	Op      Op
	Addr    []uint64
	Doc     *xmltree.Tree
}

// check validates the edit's shape (not its address resolution).
func (e Edit) check() error {
	switch e.Op {
	case OpReplace, OpInsert:
		if e.Doc == nil {
			return fmt.Errorf("live: %s edit without a payload tree", e.Op)
		}
		if e.Op == OpInsert && len(e.Addr) == 0 {
			return fmt.Errorf("live: insert edit with an empty address (the address names the new node)")
		}
	case OpDelete:
		if e.Doc != nil {
			return fmt.Errorf("live: delete edit with a payload tree")
		}
		if len(e.Addr) == 0 {
			return fmt.Errorf("live: cannot delete the fragment root")
		}
	default:
		return fmt.Errorf("live: unknown edit op %d", e.Op)
	}
	return nil
}
