package live

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"dxml/internal/xmltree"
)

// edit applies a leaf replace at path and fails the test on error.
func edit(t *testing.T, ed *Editor, path []int, label string) Edit {
	t.Helper()
	e, err := ed.ReplaceSubtree(path, xmltree.Leaf(label))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCompactBoundsLogAndTripsNextEdit(t *testing.T) {
	ed := NewEditor(xmltree.MustParse("root(a b c)"))
	for i := 0; i < 6; i++ {
		edit(t, ed, []int{0}, "x")
	}
	if got := len(ed.Log()); got != 6 {
		t.Fatalf("log holds %d edits, want 6", got)
	}

	ed.Compact(4)
	if ed.Compacted() != 4 {
		t.Fatalf("Compacted = %d, want 4", ed.Compacted())
	}
	if got := len(ed.Log()); got != 2 {
		t.Fatalf("post-compaction log holds %d edits, want 2", got)
	}
	// The surviving suffix is still reachable and correctly versioned.
	e, err := ed.NextEdit(context.Background(), 4)
	if err != nil || e.Version != 5 {
		t.Fatalf("NextEdit(4) = v%d, %v; want v5, nil", e.Version, err)
	}
	// A request below the horizon is the typed compaction error.
	if _, err := ed.NextEdit(context.Background(), 2); !errors.Is(err, ErrCompacted) {
		t.Fatalf("NextEdit below the horizon: got %v, want ErrCompacted", err)
	}

	// Compacting below the horizon or at it is a no-op; past the head
	// clamps to the current version (the log may empty, never corrupt).
	ed.Compact(1)
	if ed.Compacted() != 4 {
		t.Fatalf("backwards compaction moved the horizon to %d", ed.Compacted())
	}
	ed.Compact(100)
	if ed.Compacted() != ed.Version() || len(ed.Log()) != 0 {
		t.Fatalf("over-compaction: horizon %d version %d log %d", ed.Compacted(), ed.Version(), len(ed.Log()))
	}
	// The editor still publishes fine after a full compaction.
	e = edit(t, ed, []int{1}, "y")
	got, err := ed.NextEdit(context.Background(), e.Version-1)
	if err != nil || got.Version != e.Version {
		t.Fatalf("post-compaction publish unreachable: %v %v", got, err)
	}
}

func TestCutSinceResumeDecision(t *testing.T) {
	ed := NewEditor(xmltree.MustParse("root(a b c)"))
	for i := 0; i < 5; i++ {
		edit(t, ed, []int{0}, "x")
	}
	ed.Compact(2)

	// Inside the retained window (first <= after <= version): a suffix
	// resume — no snapshot bytes, base echoed back.
	for _, after := range []uint64{2, 3, 5} {
		snap, version, resumed := ed.CutSince(after)
		if !resumed || snap != nil || version != after {
			t.Fatalf("CutSince(%d) = (%d bytes, v%d, %v), want suffix resume", after, len(snap), version, resumed)
		}
	}
	// Below the horizon or ahead of the document: a fresh full cut,
	// byte-identical to EncodeSnapshot.
	wantSnap, wantVersion := ed.EncodeSnapshot()
	for _, after := range []uint64{0, 1, 6, 99} {
		snap, version, resumed := ed.CutSince(after)
		if resumed || version != wantVersion || string(snap) != string(wantSnap) {
			t.Fatalf("CutSince(%d) = (%d bytes, v%d, %v), want full cut at v%d", after, len(snap), version, resumed, wantVersion)
		}
		// The cut round-trips into the same document at the same version.
		doc, err := DecodeSnapshot(bytes.NewReader(snap))
		if err != nil {
			t.Fatal(err)
		}
		if doc.Version() != version || doc.Tree().String() != ed.Tree().String() {
			t.Fatalf("fallback cut decodes to %s@v%d, want %s@v%d",
				doc.Tree().String(), doc.Version(), ed.Tree().String(), version)
		}
	}
}

func TestAwaitVerdictWakesOnNote(t *testing.T) {
	ed := NewEditor(xmltree.MustParse("root(a)"))
	edit(t, ed, []int{0}, "x")

	// Already-satisfied wait returns immediately.
	ed.NoteVerdict(1, true)
	if v, err := ed.AwaitVerdict(context.Background(), 1); err != nil || !v {
		t.Fatalf("satisfied AwaitVerdict = %v, %v", v, err)
	}

	// A wait for a future version blocks until NoteVerdict covers it —
	// intermediate verdicts below the target must not wake it for good.
	type result struct {
		valid bool
		err   error
	}
	done := make(chan result, 1)
	go func() {
		v, err := ed.AwaitVerdict(context.Background(), 3)
		done <- result{v, err}
	}()
	ed.NoteVerdict(2, true) // below target: the waiter re-blocks
	select {
	case r := <-done:
		t.Fatalf("AwaitVerdict(3) returned %+v on a verdict for version 2", r)
	case <-time.After(50 * time.Millisecond):
	}
	ed.NoteVerdict(3, false)
	select {
	case r := <-done:
		if r.err != nil || r.valid {
			t.Fatalf("AwaitVerdict(3) = %+v, want invalid verdict", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AwaitVerdict never woke on the covering verdict")
	}

	// Stale verdicts (version regressions from slow subscribers) are
	// dropped, not allowed to roll the high-water mark back.
	ed.NoteVerdict(1, true)
	if version, valid, known := ed.KernelVerdict(); !known || version != 3 || valid {
		t.Fatalf("stale NoteVerdict regressed the verdict to v%d valid=%v", version, valid)
	}

	// Cancellation unblocks a hopeless wait with the context's error.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := ed.AwaitVerdict(ctx, 99); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("canceled AwaitVerdict: got %v", err)
	}
}
