package gen

import (
	"testing"

	"dxml/internal/schema"
)

func eurostatType(t testing.TB) *schema.EDTD {
	t.Helper()
	return schema.MustParseW3CDTD(schema.KindNRE, `
		<!ELEMENT eurostat (averages, nationalIndex*)>
		<!ELEMENT averages (Good, index+)+>
		<!ELEMENT nationalIndex (country, Good, (index | value, year))>
		<!ELEMENT index (value, year)>
		<!ELEMENT country (#PCDATA)>
		<!ELEMENT Good (#PCDATA)>
		<!ELEMENT value (#PCDATA)>
		<!ELEMENT year (#PCDATA)>`).ToEDTD()
}

// TestSampledDocumentsValidate is the sampler's defining property: every
// sample validates against its type.
func TestSampledDocumentsValidate(t *testing.T) {
	types := []*schema.EDTD{
		eurostatType(t),
		schema.MustParseEDTD(schema.KindNRE, `
			root s
			s -> a1 b1* | a2
			a1 : a -> c
			a2 : a -> d?
			b1 : b -> a2*`),
		schema.MustParseDTD(schema.KindNRE, "root s\ns -> x+\nx -> s?").ToEDTD(), // recursive
	}
	for ti, e := range types {
		s, err := New(e, int64(ti))
		if err != nil {
			t.Fatalf("type %d: %v", ti, err)
		}
		sizes := map[int]bool{}
		for i := 0; i < 300; i++ {
			doc, err := s.Document()
			if err != nil {
				t.Fatalf("type %d sample %d: %v", ti, i, err)
			}
			if vErr := e.Validate(doc); vErr != nil {
				t.Fatalf("type %d: sampled document invalid: %v\n%s", ti, vErr, doc)
			}
			sizes[doc.Size()] = true
		}
		if len(sizes) < 3 {
			t.Errorf("type %d: sampler shows no variety (%d distinct sizes)", ti, len(sizes))
		}
	}
}

func TestSamplerEmptyLanguage(t *testing.T) {
	empty := schema.MustParseDTD(schema.KindNRE, "root s\ns -> a\na -> a")
	if _, err := New(empty.ToEDTD(), 1); err == nil {
		t.Error("sampler must refuse empty languages")
	}
}

func TestSamplerDeterministicSeed(t *testing.T) {
	e := eurostatType(t)
	s1, _ := New(e, 7)
	s2, _ := New(e, 7)
	for i := 0; i < 20; i++ {
		d1, err1 := s1.Document()
		d2, err2 := s2.Document()
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !d1.Equal(d2) {
			t.Fatal("same seed must give the same sample sequence")
		}
	}
}

func TestSamplerRespectsMinHeight(t *testing.T) {
	// A type whose minimal tree is deep: s → a, a → b, b → ε.
	e := schema.MustParseDTD(schema.KindNRE, "root s\ns -> a\na -> b").ToEDTD()
	s, err := New(e, 3)
	if err != nil {
		t.Fatal(err)
	}
	s.MaxDepth = 1 // below the minimal height; the sampler must stretch
	doc, err := s.Document()
	if err != nil {
		t.Fatalf("sampler should stretch the depth budget: %v", err)
	}
	if vErr := e.Validate(doc); vErr != nil {
		t.Fatalf("invalid: %v", vErr)
	}
}

func BenchmarkSampler(b *testing.B) {
	e := eurostatType(b)
	s, err := New(e, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Document(); err != nil {
			b.Fatal(err)
		}
	}
}
