// Package gen samples random documents from schema types. It powers the
// workload generators of the benchmark harness and the federation
// examples: every sampled document is guaranteed valid for the type it
// was drawn from, so peers can be seeded with realistic, type-conforming
// data of controlled size.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"dxml/internal/schema"
	"dxml/internal/strlang"
	"dxml/internal/xmltree"
)

// Sampler draws random documents from an EDTD (DTDs via ToEDTD).
type Sampler struct {
	e   *schema.EDTD
	rng *rand.Rand
	// MaxDepth bounds the tree height (root counts as depth 1). It must
	// be at least the type's minimal derivation height.
	MaxDepth int
	// WordBudget softly bounds the number of children sampled per node.
	WordBudget int

	minHeight map[string]int
}

// New returns a sampler for e with the given seed and sensible bounds.
func New(e *schema.EDTD, seed int64) (*Sampler, error) {
	s := &Sampler{
		e:          e,
		rng:        rand.New(rand.NewSource(seed)),
		MaxDepth:   12,
		WordBudget: 6,
	}
	s.minHeight = minHeights(e)
	feasible := false
	for _, start := range e.Starts {
		if s.minHeight[start] < math.MaxInt32 {
			feasible = true
		}
	}
	if !feasible {
		return nil, fmt.Errorf("gen: the type's language is empty")
	}
	return s, nil
}

// minHeights computes, for every specialized name, the minimal height of
// a tree derivable from it (math.MaxInt32 when none exists), by the
// stratified fixpoint h(ñ) ≤ k+1 iff π(ñ) accepts a word over names of
// height ≤ k.
func minHeights(e *schema.EDTD) map[string]int {
	h := map[string]int{}
	names := e.SpecializedNames()
	for _, n := range names {
		h[n] = math.MaxInt32
	}
	for {
		changed := false
		for _, n := range names {
			// Current candidate: 1 + max over some accepted word of the
			// members' heights; equivalently the smallest k with a word
			// over {m : h(m) < k}.
			var allowed []strlang.Symbol
			maxH := 0
			for _, m := range e.Rule(n).UsefulSymbols() {
				if h[m] < math.MaxInt32 {
					allowed = append(allowed, m)
					if h[m] > maxH {
						maxH = h[m]
					}
				}
			}
			best := math.MaxInt32
			if e.Rule(n).AcceptsEps() {
				best = 1
			} else if acceptsOver(e.Rule(n).Lang(), allowed) {
				best = 1 + maxH
				// Tighten: try smaller strata.
				for k := 1; k < maxH; k++ {
					var sub []strlang.Symbol
					for _, m := range allowed {
						if h[m] <= k {
							sub = append(sub, m)
						}
					}
					if acceptsOver(e.Rule(n).Lang(), sub) {
						best = 1 + k
						break
					}
				}
			}
			if best < h[n] {
				h[n] = best
				changed = true
			}
		}
		if !changed {
			return h
		}
	}
}

// acceptsOver reports whether the automaton accepts some word using only
// the allowed symbols.
func acceptsOver(a *strlang.NFA, allowed []strlang.Symbol) bool {
	allowedSet := map[strlang.Symbol]bool{}
	for _, s := range allowed {
		allowedSet[s] = true
	}
	cur := a.Closure(strlang.NewIntSet(a.Start()))
	seen := cur.Copy()
	for {
		if cur.Intersects(a.Finals()) {
			return true
		}
		next := strlang.NewIntSet()
		for _, s := range a.Alphabet() {
			if allowedSet[s] {
				next.AddAll(a.Step(cur, s))
			}
		}
		grew := false
		for q := range next.All() {
			if !seen.Has(q) {
				seen.Add(q)
				grew = true
			}
		}
		if !grew {
			return false
		}
		cur = seen.Copy()
	}
}

// Document samples one document. The result always validates against the
// sampler's type.
func (s *Sampler) Document() (*xmltree.Tree, error) {
	var starts []string
	for _, st := range s.e.Starts {
		if s.minHeight[st] <= maxInt(s.MaxDepth, s.minHeight[st]) && s.minHeight[st] < math.MaxInt32 {
			starts = append(starts, st)
		}
	}
	if len(starts) == 0 {
		return nil, fmt.Errorf("gen: no feasible start")
	}
	start := starts[s.rng.Intn(len(starts))]
	depth := s.MaxDepth
	if s.minHeight[start] > depth {
		depth = s.minHeight[start]
	}
	return s.sample(start, depth)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// sample derives a tree from name within the given height budget.
func (s *Sampler) sample(name string, depth int) (*xmltree.Tree, error) {
	node := &xmltree.Tree{Label: s.e.Elem(name)}
	if depth <= 1 {
		// Must stop here: the content model must accept ε (guaranteed by
		// the steering in sampleWord).
		if !s.e.Rule(name).AcceptsEps() {
			return nil, fmt.Errorf("gen: internal: %s cannot be a leaf", name)
		}
		return node, nil
	}
	word, err := s.sampleWord(s.e.Rule(name).Lang(), depth-1)
	if err != nil {
		return nil, fmt.Errorf("gen: at %s: %w", name, err)
	}
	for _, child := range word {
		c, err := s.sample(child, depth-1)
		if err != nil {
			return nil, err
		}
		node.Children = append(node.Children, c)
	}
	return node, nil
}

// sampleWord draws a random accepted word of the content automaton using
// only names derivable within the height budget.
func (s *Sampler) sampleWord(a *strlang.NFA, budget int) ([]strlang.Symbol, error) {
	var allowed []strlang.Symbol
	for _, m := range a.UsefulSymbols() {
		if h, ok := s.minHeight[m]; ok && h <= budget {
			allowed = append(allowed, m)
		}
	}
	// Restrict to the allowed sub-automaton and walk it.
	restricted := strlang.Intersect(a, strlang.UniversalLang(allowed))
	trimmed, _ := restricted.Trim()
	if trimmed.IsEmpty() {
		return nil, fmt.Errorf("no word derivable within height %d", budget)
	}
	dist := distanceToFinal(trimmed)
	var word []strlang.Symbol
	cur := trimmed.Closure(strlang.NewIntSet(trimmed.Start()))
	for steps := 0; ; steps++ {
		isFinal := cur.Intersects(trimmed.Finals())
		wantStop := steps >= s.WordBudget || s.rng.Intn(3) == 0
		if isFinal && wantStop {
			return word, nil
		}
		// Candidate next symbols keeping a path to acceptance.
		type cand struct {
			sym  strlang.Symbol
			next strlang.IntSet
		}
		var cands []cand
		for _, sym := range trimmed.Alphabet() {
			next := trimmed.Step(cur, sym)
			if next.Len() == 0 {
				continue
			}
			if steps >= s.WordBudget && minDist(dist, next) >= minDist(dist, cur) {
				continue // over budget: only moves that approach a final
			}
			cands = append(cands, cand{sym, next})
		}
		if len(cands) == 0 {
			if isFinal {
				return word, nil
			}
			return nil, fmt.Errorf("gen: internal: stuck while sampling")
		}
		pick := cands[s.rng.Intn(len(cands))]
		word = append(word, pick.sym)
		cur = pick.next
	}
}

// distanceToFinal computes, per state, the least number of symbol steps
// to acceptance.
func distanceToFinal(a *strlang.NFA) []int {
	n := a.NumStates()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = math.MaxInt32
	}
	// BFS backwards from finals over symbol edges, with ε-edges treated
	// as zero-cost (we approximate by closing forward: a state has
	// distance 0 if its closure meets a final).
	for q := 0; q < n; q++ {
		if a.Closure(strlang.NewIntSet(q)).Intersects(a.Finals()) {
			dist[q] = 0
		}
	}
	for {
		changed := false
		for q := 0; q < n; q++ {
			cl := a.Closure(strlang.NewIntSet(q))
			for p := range cl.All() {
				for _, sid := range a.AlphabetIDs() {
					for _, t := range a.SuccID(p, sid) {
						if dist[t] < math.MaxInt32 && dist[t]+1 < dist[q] {
							dist[q] = dist[t] + 1
							changed = true
						}
					}
				}
			}
		}
		if !changed {
			return dist
		}
	}
}

func minDist(dist []int, set strlang.IntSet) int {
	best := math.MaxInt32
	for q := range set.All() {
		if dist[q] < best {
			best = dist[q]
		}
	}
	return best
}
