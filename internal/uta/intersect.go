package uta

import (
	"dxml/internal/strlang"
)

// Intersect returns a tree automaton for [a] ∩ [b] by the product
// construction: states are pairs, and the horizontal languages are products
// of the content automata reading pair symbols.
func Intersect(a, b *NUTA) *NUTA {
	na, nb := a.NumStates(), b.NumStates()
	pairID := func(p, q int) int { return p*nb + q }
	out := NewNUTA(na * nb)
	// Only labels known to both sides can carry transitions.
	for _, l := range a.Labels() {
		for p := 0; p < na; p++ {
			ca := a.Delta(p, l)
			if ca == nil {
				continue
			}
			for q := 0; q < nb; q++ {
				cb := b.Delta(q, l)
				if cb == nil {
					continue
				}
				out.SetDelta(pairID(p, q), l, productWordNFA(ca, cb, nb, pairID))
			}
		}
	}
	for p := range a.finals.All() {
		for q := range b.finals.All() {
			out.MarkFinal(pairID(p, q))
		}
	}
	return out
}

// productWordNFA builds the word automaton accepting sequences of pair
// symbols whose projections are accepted by ca (first components) and cb
// (second components) respectively.
func productWordNFA(ca, cb *strlang.NFA, nb int, pairID func(int, int) int) *strlang.NFA {
	ea, eb := ca.WithoutEps(), cb.WithoutEps()
	out := strlang.NewNFA()
	type node struct{ x, y int }
	ids := map[node]int{}
	var order []node
	get := func(n node) int {
		if id, ok := ids[n]; ok {
			return id
		}
		var id int
		if len(ids) == 0 {
			id = out.Start()
		} else {
			id = out.AddState()
		}
		ids[n] = id
		order = append(order, n)
		if ea.IsFinal(n.x) && eb.IsFinal(n.y) {
			out.MarkFinal(id)
		}
		return id
	}
	get(node{ea.Start(), eb.Start()})
	for i := 0; i < len(order); i++ {
		n := order[i]
		from := ids[n]
		for _, sidA := range ea.AlphabetIDs() {
			tsA := ea.SuccID(n.x, sidA)
			if len(tsA) == 0 {
				continue
			}
			p := SymState(strlang.SymbolName(sidA))
			for _, sidB := range eb.AlphabetIDs() {
				tsB := eb.SuccID(n.y, sidB)
				if len(tsB) == 0 {
					continue
				}
				q := SymState(strlang.SymbolName(sidB))
				sym := stateSymID(pairID(p, q))
				for _, ta := range tsA {
					for _, tb := range tsB {
						out.AddTransitionID(from, sym, get(node{int(ta), int(tb)}))
					}
				}
			}
		}
	}
	return out
}
