package uta

import (
	"encoding/binary"

	"dxml/internal/strlang"
	"dxml/internal/xmltree"
)

// DUTA is the bottom-up determinization of an NUTA: every tree is assigned
// exactly one d-state, the set of n-states the original automaton could
// assign to it (possibly the empty set). D-states and the per-label
// horizontal product automata are materialized lazily and interned.
//
// The construction follows the classical subset determinization of
// unranked tree automata [15] as used by the paper in Section 4.3: for a
// node labeled a whose children carry d-states S1…Sk, the node's d-state is
// {q : Δ(q,a) accepts some q1…qk with qi ∈ Si}.
type DUTA struct {
	n      *NUTA
	labels []string
	states []strlang.IntSet
	byKey  map[string]int
	prod   map[string]*labelProduct
}

type labelProduct struct {
	qs      []int          // n-states with Δ(q, label), sorted
	nfas    []*strlang.NFA // ε-free content automata, parallel to qs
	pstates []prodTuple    // product states (one IntSet per q)
	byKey   map[string]int
	trans   map[[2]int]int // (pstate, dstate) → pstate
	sig     []int          // pstate → d-state id of accept signature
	start   int
}

type prodTuple []strlang.IntSet

func (t prodTuple) key() string {
	// Bitset keys are raw bytes, so a separator could collide with data;
	// length-prefix each part instead.
	var b []byte
	for _, s := range t {
		k := s.Key()
		b = binary.AppendUvarint(b, uint64(len(k)))
		b = append(b, k...)
	}
	return string(b)
}

// Determinize returns the DUTA of a over the given label alphabet, which
// must include every label of a (extra labels are allowed and behave as
// “always empty d-state”).
func Determinize(a *NUTA, labels []string) *DUTA {
	all := map[string]struct{}{}
	for _, l := range a.Labels() {
		all[l] = struct{}{}
	}
	for _, l := range labels {
		all[l] = struct{}{}
	}
	sorted := make([]string, 0, len(all))
	for l := range all {
		sorted = append(sorted, l)
	}
	sortStrings(sorted)
	d := &DUTA{
		n:      a,
		labels: sorted,
		byKey:  map[string]int{},
		prod:   map[string]*labelProduct{},
	}
	// Intern the empty d-state first so that unknown labels have id 0.
	d.intern(strlang.NewIntSet())
	return d
}

// intern returns the id of the given d-state set, creating it if needed.
func (d *DUTA) intern(s strlang.IntSet) int {
	k := s.Key()
	if id, ok := d.byKey[k]; ok {
		return id
	}
	id := len(d.states)
	d.states = append(d.states, s)
	d.byKey[k] = id
	return id
}

// EmptyID returns the id of the empty d-state.
func (d *DUTA) EmptyID() int { return 0 }

// NumDStates returns the number of d-states discovered so far (after
// Explore, all of them).
func (d *DUTA) NumDStates() int { return len(d.states) }

// StateSet returns the set of n-states of d-state id.
func (d *DUTA) StateSet(id int) strlang.IntSet { return d.states[id] }

// IsFinal reports whether d-state id is accepting (meets the NUTA finals).
func (d *DUTA) IsFinal(id int) bool { return d.states[id].Intersects(d.n.finals) }

// Labels returns the label alphabet of the determinization.
func (d *DUTA) Labels() []string { return d.labels }

// product returns the per-label product machinery, creating it on demand.
func (d *DUTA) product(label string) *labelProduct {
	if lp, ok := d.prod[label]; ok {
		return lp
	}
	lp := &labelProduct{byKey: map[string]int{}, trans: map[[2]int]int{}}
	lp.qs = d.n.statesFor(label)
	for _, q := range lp.qs {
		lp.nfas = append(lp.nfas, d.n.Delta(q, label).WithoutEps())
	}
	startTuple := make(prodTuple, len(lp.qs))
	for i, nfa := range lp.nfas {
		startTuple[i] = nfa.Closure(strlang.NewIntSet(nfa.Start()))
	}
	lp.start = d.addPState(lp, startTuple)
	d.prod[label] = lp
	return lp
}

func (d *DUTA) addPState(lp *labelProduct, t prodTuple) int {
	k := t.key()
	if id, ok := lp.byKey[k]; ok {
		return id
	}
	id := len(lp.pstates)
	lp.pstates = append(lp.pstates, t)
	lp.byKey[k] = id
	// Accept signature: the d-state of stopping here.
	sig := strlang.NewIntSet()
	for i, nfa := range lp.nfas {
		if t[i].Intersects(nfa.Finals()) {
			sig.Add(lp.qs[i])
		}
	}
	lp.sig = append(lp.sig, d.intern(sig))
	return id
}

// step advances product state p of label by a child d-state, memoized.
func (d *DUTA) step(lp *labelProduct, p int, dstate int) int {
	if t, ok := lp.trans[[2]int{p, dstate}]; ok {
		return t
	}
	cur := lp.pstates[p]
	childSet := d.states[dstate]
	next := make(prodTuple, len(lp.qs))
	for i, nfa := range lp.nfas {
		acc := strlang.NewIntSet()
		for q := range childSet.All() {
			acc.AddAll(nfa.StepID(cur[i], stateSymID(q)))
		}
		next[i] = acc
	}
	t := d.addPState(lp, next)
	lp.trans[[2]int{p, dstate}] = t
	return t
}

// StateOf returns the d-state id assigned to t.
func (d *DUTA) StateOf(t *xmltree.Tree) int {
	lp := d.product(t.Label)
	p := lp.start
	for _, c := range t.Children {
		p = d.step(lp, p, d.StateOf(c))
	}
	return lp.sig[p]
}

// Accepts reports whether the underlying NUTA accepts t (deterministically
// recomputed through the DUTA).
func (d *DUTA) Accepts(t *xmltree.Tree) bool { return d.IsFinal(d.StateOf(t)) }

// Explore materializes all reachable d-states and product transitions by a
// least fixpoint. Worst-case exponential in the NUTA size, as determinization
// must be.
func (d *DUTA) Explore() {
	for _, l := range d.labels {
		d.product(l)
	}
	for {
		changed := false
		for _, l := range d.labels {
			lp := d.prod[l]
			for p := 0; p < len(lp.pstates); p++ {
				for id := 0; id < len(d.states); id++ {
					if _, ok := lp.trans[[2]int{p, id}]; ok {
						continue
					}
					before := len(d.states)
					beforeP := len(lp.pstates)
					d.step(lp, p, id)
					if len(d.states) > before || len(lp.pstates) > beforeP {
						changed = true
					}
					changed = true // a new transition was added
				}
			}
		}
		if !changed {
			break
		}
		// Check whether anything actually grew: if every (p, id) pair of
		// every label has a transition, we are done.
		done := true
		for _, l := range d.labels {
			lp := d.prod[l]
			if len(lp.trans) < len(lp.pstates)*len(d.states) {
				done = false
				break
			}
		}
		if done {
			break
		}
	}
}

// ContentDFA returns, after Explore, the horizontal DFA over d-state
// symbols for the given label whose accepted sequences S1…Sk yield exactly
// the d-state want: states are product states, finals are those with
// signature want. This is the content model of the normalized EDTD
// (Section 4.3).
func (d *DUTA) ContentDFA(label string, want int) *strlang.DFA {
	lp := d.product(label)
	dfa := &strlang.DFA{}
	for p := 0; p < len(lp.pstates); p++ {
		dfa.AddState(lp.sig[p] == want)
	}
	dfa.SetStart(lp.start)
	for key, t := range lp.trans {
		dfa.SetTransition(key[0], StateSym(key[1]), t)
	}
	return dfa
}

// ReachableDStates returns, after Explore, the ids of d-states that are
// actually assigned to some tree (the start signatures and everything
// generated from them), excluding purely synthetic ones. In practice every
// interned d-state is reachable by construction.
func (d *DUTA) ReachableDStates() []int {
	out := make([]int, len(d.states))
	for i := range out {
		out[i] = i
	}
	return out
}
