// Package uta implements unranked tree automata (Section 2.1.3 of the
// paper): nondeterministic unranked tree automata (nUTA), membership,
// emptiness, bottom-up determinization (dUTA), and language inclusion and
// equivalence. These are the engines behind equiv[R-EDTD] (Theorem 4.7) and
// the normalization of R-EDTDs (Lemma 4.10).
package uta

import (
	"fmt"
	"strconv"
	"sync"

	"dxml/internal/strlang"
	"dxml/internal/xmltree"
)

// StateSym encodes a UTA state id as a symbol for the horizontal word
// automata (the content languages Δ(q, a) are word languages over states).
func StateSym(q int) strlang.Symbol { return strconv.Itoa(q) }

// stateSymID returns the interned symbol id of StateSym(q), so the hot
// horizontal-automaton loops can step by dense id instead of formatting
// and hashing a string per state.
func stateSymID(q int) int32 {
	symIDMu.RLock()
	if q < len(symIDCache) {
		id := symIDCache[q]
		symIDMu.RUnlock()
		return id
	}
	symIDMu.RUnlock()
	symIDMu.Lock()
	for len(symIDCache) <= q {
		symIDCache = append(symIDCache, strlang.Intern(StateSym(len(symIDCache))))
	}
	id := symIDCache[q]
	symIDMu.Unlock()
	return id
}

var (
	symIDMu    sync.RWMutex
	symIDCache []int32
)

// SymState decodes a state symbol.
func SymState(s strlang.Symbol) int {
	v, err := strconv.Atoi(s)
	if err != nil {
		panic(fmt.Sprintf("uta: bad state symbol %q", s))
	}
	return v
}

// NUTA is a nondeterministic unranked tree automaton A = ⟨K, Σ, Δ, F⟩:
// Δ maps (state, label) pairs to word automata over state symbols. A tree t
// is accepted if some state assignment µ exists with µ(root) ∈ F and, for
// every node x, µ(children(x)) ∈ [Δ(µ(x), lab(x))] (with the empty word for
// leaves).
type NUTA struct {
	numStates int
	finals    strlang.IntSet
	delta     map[deltaKey]*strlang.NFA
	labels    map[string]struct{}
}

type deltaKey struct {
	state int
	label string
}

// NewNUTA returns an automaton with n states and no transitions.
func NewNUTA(n int) *NUTA {
	return &NUTA{
		numStates: n,
		finals:    strlang.NewIntSet(),
		delta:     map[deltaKey]*strlang.NFA{},
		labels:    map[string]struct{}{},
	}
}

// AddState adds a state and returns its id.
func (a *NUTA) AddState() int {
	a.numStates++
	return a.numStates - 1
}

// NumStates returns the number of states.
func (a *NUTA) NumStates() int { return a.numStates }

// MarkFinal makes q final (a root-accepting state).
func (a *NUTA) MarkFinal(q int) { a.finals.Add(q) }

// Finals returns the final states (shared).
func (a *NUTA) Finals() strlang.IntSet { return a.finals }

// SetDelta sets Δ(q, label) to the given word automaton over state symbols.
func (a *NUTA) SetDelta(q int, label string, content *strlang.NFA) {
	a.delta[deltaKey{q, label}] = content
	a.labels[label] = struct{}{}
}

// Delta returns Δ(q, label), or nil when undefined (empty content
// language).
func (a *NUTA) Delta(q int, label string) *strlang.NFA {
	return a.delta[deltaKey{q, label}]
}

// Labels returns the sorted label alphabet of the automaton.
func (a *NUTA) Labels() []string {
	out := make([]string, 0, len(a.labels))
	for l := range a.labels {
		out = append(out, l)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// statesFor returns the states q with Δ(q, label) defined, sorted.
func (a *NUTA) statesFor(label string) []int {
	var out []int
	for q := 0; q < a.numStates; q++ {
		if a.Delta(q, label) != nil {
			out = append(out, q)
		}
	}
	return out
}

// PossibleStates returns the set of states the automaton may assign to the
// root of t (the standard bottom-up membership computation; polynomial).
func (a *NUTA) PossibleStates(t *xmltree.Tree) strlang.IntSet {
	childSets := make([]strlang.IntSet, len(t.Children))
	for i, c := range t.Children {
		childSets[i] = a.PossibleStates(c)
	}
	out := strlang.NewIntSet()
	for _, q := range a.statesFor(t.Label) {
		nfa := a.Delta(q, t.Label)
		if acceptsSomeSequence(nfa, childSets) {
			out.Add(q)
		}
	}
	return out
}

// acceptsSomeSequence reports whether nfa accepts some word w1…wk with
// wi ∈ {StateSym(q) : q ∈ sets[i]}.
func acceptsSomeSequence(nfa *strlang.NFA, sets []strlang.IntSet) bool {
	cur := nfa.Closure(strlang.NewIntSet(nfa.Start()))
	for _, set := range sets {
		next := strlang.NewIntSet()
		for q := range set.All() {
			next.AddAll(nfa.StepID(cur, stateSymID(q)))
		}
		cur = next
		if cur.Len() == 0 {
			return false
		}
	}
	return cur.Intersects(nfa.Finals())
}

// Accepts reports whether a accepts t.
func (a *NUTA) Accepts(t *xmltree.Tree) bool {
	return a.PossibleStates(t).Intersects(a.finals)
}

// ReachableStates returns the states q for which some tree is assigned q
// (the nonempty states), by a least fixpoint.
func (a *NUTA) ReachableStates() strlang.IntSet {
	reached := strlang.NewIntSet()
	for {
		changed := false
		for key, nfa := range a.delta {
			if reached.Has(key.state) {
				continue
			}
			if acceptsSomeWordOver(nfa, reached) {
				reached.Add(key.state)
				changed = true
			}
		}
		if !changed {
			return reached
		}
	}
}

// acceptsSomeWordOver reports whether nfa accepts some word all of whose
// symbols are state symbols of allowed.
func acceptsSomeWordOver(nfa *strlang.NFA, allowed strlang.IntSet) bool {
	cur := nfa.Closure(strlang.NewIntSet(nfa.Start()))
	seen := cur.Copy()
	for {
		if cur.Intersects(nfa.Finals()) {
			return true
		}
		next := strlang.NewIntSet()
		for q := range allowed.All() {
			next.AddAll(nfa.StepID(cur, stateSymID(q)))
		}
		grew := false
		for s := range next.All() {
			if !seen.Has(s) {
				seen.Add(s)
				grew = true
			}
		}
		if !grew {
			return false
		}
		cur = seen.Copy()
	}
}

// IsEmpty reports whether [a] = ∅.
func (a *NUTA) IsEmpty() bool {
	return !a.ReachableStates().Intersects(a.finals)
}

// SomeTree returns a smallest-effort witness tree in [a], or nil if the
// language is empty. It materializes, for each nonempty state, one tree
// assigned that state.
func (a *NUTA) SomeTree() *xmltree.Tree {
	witness := map[int]*xmltree.Tree{}
	for {
		changed := false
		for key, nfa := range a.delta {
			if _, done := witness[key.state]; done {
				continue
			}
			if seq, ok := someSequence(nfa, witness); ok {
				witness[key.state] = xmltree.New(key.label, seq...)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for q := range a.finals.All() {
		if t, ok := witness[q]; ok {
			return t
		}
	}
	return nil
}

// someSequence finds an accepted word of nfa over the state symbols having
// witnesses, returning the corresponding child trees.
func someSequence(nfa *strlang.NFA, witness map[int]*xmltree.Tree) ([]*xmltree.Tree, bool) {
	start := nfa.Closure(strlang.NewIntSet(nfa.Start()))
	if start.Intersects(nfa.Finals()) {
		return nil, true
	}
	states := make([]int, 0, len(witness))
	for q := range witness {
		states = append(states, q)
	}
	sortInts(states)
	// BFS over subset states, remembering the chosen symbol path.
	type entry struct {
		set  strlang.IntSet
		path []int
	}
	seen := map[string]bool{start.Key(): true}
	queue := []entry{{start, nil}}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		for _, q := range states {
			next := nfa.StepID(e.set, stateSymID(q))
			if next.Len() == 0 || seen[next.Key()] {
				continue
			}
			seen[next.Key()] = true
			path := append(append([]int{}, e.path...), q)
			if next.Intersects(nfa.Finals()) {
				trees := make([]*xmltree.Tree, len(path))
				for i, s := range path {
					trees[i] = witness[s].Clone()
				}
				return trees, true
			}
			queue = append(queue, entry{next, path})
		}
	}
	return nil, false
}
