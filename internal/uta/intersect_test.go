package uta

import (
	"math/rand"
	"testing"

	"dxml/internal/strlang"
	"dxml/internal/xmltree"
)

func TestIntersectBasic(t *testing.T) {
	// L1: s with a* children; L2: s with exactly two children drawn from
	// {a, b}. Intersection: s(a a).
	l1 := dtdNUTA(t, "s", map[string]string{"s": "a*"})
	l2 := dtdNUTA(t, "s", map[string]string{"s": "(a|b) (a|b)"})
	inter := Intersect(l1, l2)
	if inter.IsEmpty() {
		t.Fatal("intersection should be nonempty")
	}
	cases := []struct {
		tree string
		want bool
	}{
		{"s(a a)", true},
		{"s(a)", false},
		{"s(a b)", false},
		{"s(a a a)", false},
	}
	for _, c := range cases {
		if got := inter.Accepts(xmltree.MustParse(c.tree)); got != c.want {
			t.Errorf("Intersect on %s = %v, want %v", c.tree, got, c.want)
		}
	}
}

func TestIntersectEmpty(t *testing.T) {
	l1 := dtdNUTA(t, "s", map[string]string{"s": "a"})
	l2 := dtdNUTA(t, "s", map[string]string{"s": "b"})
	if !Intersect(l1, l2).IsEmpty() {
		t.Error("disjoint languages should intersect to ∅")
	}
	// Different roots.
	l3 := dtdNUTA(t, "t", map[string]string{"t": "a"})
	if !Intersect(l1, l3).IsEmpty() {
		t.Error("different roots should intersect to ∅")
	}
}

func TestIntersectAgreesWithMembership(t *testing.T) {
	l1 := dtdNUTA(t, "s", map[string]string{"s": "a* b?", "a": "c?"})
	l2 := dtdNUTA(t, "s", map[string]string{"s": "a a* | b", "a": "c*"})
	inter := Intersect(l1, l2)
	r := rand.New(rand.NewSource(13))
	labels := []string{"s", "a", "b", "c"}
	var gen func(depth int) *xmltree.Tree
	gen = func(depth int) *xmltree.Tree {
		tr := &xmltree.Tree{Label: labels[r.Intn(len(labels))]}
		if depth > 0 {
			for i := r.Intn(3); i > 0; i-- {
				tr.Children = append(tr.Children, gen(depth-1))
			}
		}
		return tr
	}
	for i := 0; i < 300; i++ {
		tr := gen(2)
		want := l1.Accepts(tr) && l2.Accepts(tr)
		if got := inter.Accepts(tr); got != want {
			t.Fatalf("Intersect disagrees on %s: got %v want %v", tr, got, want)
		}
	}
}

func TestDeterminizeContentDFA(t *testing.T) {
	a := dtdNUTA(t, "s", map[string]string{"s": "a a | b"})
	d := Determinize(a, nil)
	d.Explore()
	// The d-state of leaf a.
	aID := d.StateOf(xmltree.MustParse("a"))
	sID := d.StateOf(xmltree.MustParse("s(a a)"))
	if !d.IsFinal(sID) {
		t.Fatal("s(a a) should be accepting")
	}
	// The content DFA of label s for the accepting d-state accepts the
	// sequence [aID aID] and rejects [aID].
	dfa := d.ContentDFA("s", sID)
	if !dfa.Accepts([]strlang.Symbol{StateSym(aID), StateSym(aID)}) {
		t.Error("content DFA rejects aa")
	}
	if dfa.Accepts([]strlang.Symbol{StateSym(aID)}) {
		t.Error("content DFA accepts a single a")
	}
}

func TestDUTAUnknownLabel(t *testing.T) {
	a := dtdNUTA(t, "s", map[string]string{"s": "a"})
	d := Determinize(a, []string{"zz"})
	if got := d.StateOf(xmltree.MustParse("zz")); got != d.EmptyID() {
		t.Errorf("unknown label should get the empty d-state, got %d", got)
	}
	if d.Accepts(xmltree.MustParse("s(zz)")) {
		t.Error("tree with unknown label accepted")
	}
}

func TestSymStateRoundTrip(t *testing.T) {
	for _, q := range []int{0, 1, 17, 12345} {
		if SymState(StateSym(q)) != q {
			t.Errorf("round trip failed for %d", q)
		}
	}
}
