package uta

import (
	"testing"

	"dxml/internal/xmltree"
)

func benchAutomaton(b *testing.B) *NUTA {
	b.Helper()
	return dtdNUTA(b, "s", map[string]string{
		"s": "a* b c?",
		"a": "c*",
		"b": "(a | c)*",
	})
}

func benchTree(n int) *xmltree.Tree {
	t := xmltree.MustParse("s(b)")
	for i := 0; i < n; i++ {
		t.Children = append([]*xmltree.Tree{xmltree.MustParse("a(c c)")}, t.Children...)
	}
	return t
}

func BenchmarkNUTAMembership(b *testing.B) {
	a := benchAutomaton(b)
	t := benchTree(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !a.Accepts(t) {
			b.Fatal("should accept")
		}
	}
}

func BenchmarkDeterminizeUTA(b *testing.B) {
	a := benchAutomaton(b)
	for i := 0; i < b.N; i++ {
		d := Determinize(a, nil)
		d.Explore()
	}
}

func BenchmarkUTAInclusion(b *testing.B) {
	small := dtdNUTA(b, "s", map[string]string{"s": "a b", "a": "c?"})
	big := dtdNUTA(b, "s", map[string]string{"s": "a* b", "a": "c*"})
	for i := 0; i < b.N; i++ {
		if ok, _ := Included(small, big); !ok {
			b.Fatal("inclusion should hold")
		}
	}
}

func BenchmarkUTAIntersectEmptiness(b *testing.B) {
	l1 := dtdNUTA(b, "s", map[string]string{"s": "a*", "a": "b?"})
	l2 := dtdNUTA(b, "s", map[string]string{"s": "a a", "a": "b"})
	for i := 0; i < b.N; i++ {
		if Intersect(l1, l2).IsEmpty() {
			b.Fatal("intersection should be nonempty")
		}
	}
}
