package uta

import (
	"dxml/internal/strlang"
	"dxml/internal/xmltree"
)

// Included reports whether [a] ⊆ [b]. When inclusion fails it returns a
// witness tree in [a] − [b]. The check runs the classical product of a with
// the (lazily determinized) complement of b; it is EXPTIME in the worst
// case, matching the lower bound for equiv[R-EDTD] (Theorem 4.7).
func Included(a, b *NUTA) (bool, *xmltree.Tree) {
	labels := map[string]struct{}{}
	for _, l := range a.Labels() {
		labels[l] = struct{}{}
	}
	for _, l := range b.Labels() {
		labels[l] = struct{}{}
	}
	var labelList []string
	for l := range labels {
		labelList = append(labelList, l)
	}
	sortStrings(labelList)
	db := Determinize(b, labelList)

	// Discovered pairs (q of a, d-state of b) with a witness tree each.
	witness := map[inclPair]*xmltree.Tree{}
	var order []inclPair

	addPair := func(p inclPair, t *xmltree.Tree) {
		if _, ok := witness[p]; ok {
			return
		}
		witness[p] = t
		order = append(order, p)
	}

	// Iterate to a fixpoint: for every label and every a-state q with a
	// content language, search for accepted child sequences over known
	// pairs, jointly tracking b's product state.
	for {
		grew := false
		for _, label := range labelList {
			lp := db.product(label)
			for _, q := range a.statesFor(label) {
				nfa := a.Delta(q, label).WithoutEps()
				grew = searchPairs(a, db, lp, label, q, nfa, witness, &order, addPair) || grew
			}
		}
		if !grew {
			break
		}
	}

	for p, t := range witness {
		if a.finals.Has(p.q) && !db.IsFinal(p.d) {
			return false, t
		}
	}
	return true, nil
}

// inclPair is a discovered (a-state, b-d-state) pair in the inclusion
// fixpoint.
type inclPair struct{ q, d int }

// searchPairs explores the joint graph of (single NFA state of a's content
// automaton — a is nondeterministic, so single-state tracking suffices) ×
// (b product state), stepping by known pairs, and registers every
// (q, signature) pair reachable at an accepting NFA state. Returns whether
// a new pair was added.
func searchPairs(a *NUTA, db *DUTA, lp *labelProduct, label string, q int,
	nfa *strlang.NFA, witness map[inclPair]*xmltree.Tree,
	order *[]inclPair,
	addPair func(inclPair, *xmltree.Tree)) bool {

	type pair = inclPair
	type node struct {
		x int // NFA state of a's content automaton
		p int // product state of b for this label
	}
	type entry struct {
		n        node
		children []*xmltree.Tree
	}
	startNode := node{nfa.Start(), lp.start}
	seen := map[node]bool{startNode: true}
	queue := []entry{{startNode, nil}}
	before := len(*order)

	emit := func(e entry) {
		if nfa.IsFinal(e.n.x) {
			sig := lp.sig[e.n.p]
			addPair(pair{q, sig}, xmltree.New(label, e.children...))
		}
	}
	emit(queue[0])
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		// Step by every known pair (q', d').
		for i := 0; i < len(*order); i++ {
			cp := (*order)[i]
			targets := nfa.SuccID(e.n.x, stateSymID(cp.q))
			if len(targets) == 0 {
				continue
			}
			np := db.step(lp, e.n.p, cp.d)
			for _, x2 := range targets {
				n2 := node{int(x2), np}
				if seen[n2] {
					continue
				}
				seen[n2] = true
				children := append(append([]*xmltree.Tree{}, e.children...), witness[cp].Clone())
				e2 := entry{n2, children}
				emit(e2)
				queue = append(queue, e2)
			}
		}
	}
	return len(*order) > before
}

// Equivalent reports whether [a] = [b]; on failure it returns a witness
// tree in the symmetric difference.
func Equivalent(a, b *NUTA) (bool, *xmltree.Tree) {
	if ok, t := Included(a, b); !ok {
		return false, t
	}
	if ok, t := Included(b, a); !ok {
		return false, t
	}
	return true, nil
}
