package uta

import (
	"math/rand"
	"testing"

	"dxml/internal/strlang"
	"dxml/internal/xmltree"
)

// dtdNUTA builds an NUTA for a DTD-like language: one state per label,
// rules maps a label to a regex over labels describing its content model
// (missing labels are leaves), root is the accepting label.
func dtdNUTA(t testing.TB, root string, rules map[string]string) *NUTA {
	t.Helper()
	// Collect labels.
	labelSet := map[string]int{}
	addLabel := func(l string) {
		if _, ok := labelSet[l]; !ok {
			labelSet[l] = len(labelSet)
		}
	}
	addLabel(root)
	for l, re := range rules {
		addLabel(l)
		for _, s := range strlang.RegexSymbols(strlang.MustParseRegex(re)) {
			addLabel(s)
		}
	}
	a := NewNUTA(len(labelSet))
	for l, q := range labelSet {
		re, ok := rules[l]
		if !ok {
			re = "ε"
		}
		rx := strlang.MustParseRegex(re)
		mapped := strlang.MapRegexSymbols(rx, func(s strlang.Symbol) strlang.Symbol {
			return StateSym(labelSet[s])
		})
		a.SetDelta(q, l, strlang.RegexNFA(mapped))
	}
	a.MarkFinal(labelSet[root])
	return a
}

func TestNUTAMembership(t *testing.T) {
	// Language: s(a* b) where a is a leaf and b has content c*.
	a := dtdNUTA(t, "s", map[string]string{
		"s": "a* b",
		"b": "c*",
	})
	cases := []struct {
		tree string
		want bool
	}{
		{"s(b)", true},
		{"s(a a b)", true},
		{"s(a b(c c))", true},
		{"s(a)", false},
		{"s(b a)", false},
		{"s(a b(a))", false},
		{"b(c)", false}, // wrong root
		{"s(a b) ", true},
	}
	for _, c := range cases {
		tr := xmltree.MustParse(c.tree)
		if got := a.Accepts(tr); got != c.want {
			t.Errorf("Accepts(%s) = %v, want %v", c.tree, got, c.want)
		}
	}
}

func TestNUTAWithSpecialization(t *testing.T) {
	// EDTD-style: root s has content (a1 | a2), both mapping to label a,
	// where a1 requires a b child and a2 requires a c child.
	a := NewNUTA(4)
	const (
		qs, qa1, qa2, qb = 0, 1, 2, 3
	)
	content := func(re string, mapping map[string]int) *strlang.NFA {
		rx := strlang.MustParseRegex(re)
		return strlang.RegexNFA(strlang.MapRegexSymbols(rx, func(s strlang.Symbol) strlang.Symbol {
			return StateSym(mapping[s])
		}))
	}
	a.SetDelta(qs, "s", content("a1 | a2", map[string]int{"a1": qa1, "a2": qa2}))
	a.SetDelta(qa1, "a", content("b", map[string]int{"b": qb}))
	a.SetDelta(qa2, "a", content("b b", map[string]int{"b": qb}))
	a.SetDelta(qb, "b", content("ε", nil))
	a.MarkFinal(qs)

	if !a.Accepts(xmltree.MustParse("s(a(b))")) {
		t.Error("s(a(b)) should be accepted")
	}
	if !a.Accepts(xmltree.MustParse("s(a(b b))")) {
		t.Error("s(a(b b)) should be accepted")
	}
	if a.Accepts(xmltree.MustParse("s(a(b b b))")) {
		t.Error("s(a(b b b)) should be rejected")
	}
	if a.Accepts(xmltree.MustParse("s(a(b) a(b))")) {
		t.Error("s(a(b) a(b)) should be rejected")
	}
}

func TestEmptinessAndSomeTree(t *testing.T) {
	a := dtdNUTA(t, "s", map[string]string{"s": "a b?"})
	if a.IsEmpty() {
		t.Fatal("nonempty language judged empty")
	}
	w := a.SomeTree()
	if w == nil || !a.Accepts(w) {
		t.Fatalf("SomeTree returned invalid witness %v", w)
	}

	// Empty: the root requires an impossible child chain a → a → …
	b := NewNUTA(1)
	b.SetDelta(0, "s", strlang.RegexNFA(strlang.MapRegexSymbols(
		strlang.MustParseRegex("x"),
		func(strlang.Symbol) strlang.Symbol { return StateSym(0) })))
	b.MarkFinal(0)
	if !b.IsEmpty() {
		t.Error("self-requiring automaton should be empty")
	}
	if b.SomeTree() != nil {
		t.Error("SomeTree on empty language should be nil")
	}
}

func TestDeterminizeAgreesWithNUTA(t *testing.T) {
	a := dtdNUTA(t, "s", map[string]string{
		"s": "a* b c?",
		"b": "(a | c)*",
	})
	d := Determinize(a, nil)
	r := rand.New(rand.NewSource(11))
	labels := []string{"s", "a", "b", "c"}
	var gen func(depth int) *xmltree.Tree
	gen = func(depth int) *xmltree.Tree {
		tr := &xmltree.Tree{Label: labels[r.Intn(len(labels))]}
		if depth > 0 {
			for i := r.Intn(4); i > 0; i-- {
				tr.Children = append(tr.Children, gen(depth-1))
			}
		}
		return tr
	}
	for i := 0; i < 400; i++ {
		tr := gen(3)
		if got, want := d.Accepts(tr), a.Accepts(tr); got != want {
			t.Fatalf("DUTA disagrees on %s: duta=%v nuta=%v", tr, got, want)
		}
	}
}

func TestDeterminizeStateSets(t *testing.T) {
	// Specialization automaton from TestNUTAWithSpecialization: the
	// d-state of a(b) must be exactly {qa1}, of a(b b) exactly {qa2}.
	a := NewNUTA(4)
	content := func(re string, mapping map[string]int) *strlang.NFA {
		rx := strlang.MustParseRegex(re)
		return strlang.RegexNFA(strlang.MapRegexSymbols(rx, func(s strlang.Symbol) strlang.Symbol {
			return StateSym(mapping[s])
		}))
	}
	a.SetDelta(0, "s", content("a1 | a2", map[string]int{"a1": 1, "a2": 2}))
	a.SetDelta(1, "a", content("b", map[string]int{"b": 3}))
	a.SetDelta(2, "a", content("b b", map[string]int{"b": 3}))
	a.SetDelta(3, "b", content("ε", nil))
	a.MarkFinal(0)
	d := Determinize(a, nil)
	s1 := d.StateOf(xmltree.MustParse("a(b)"))
	s2 := d.StateOf(xmltree.MustParse("a(b b)"))
	if !d.StateSet(s1).Equal(strlang.NewIntSet(1)) {
		t.Errorf("d-state of a(b) = %v, want {1}", d.StateSet(s1).Sorted())
	}
	if !d.StateSet(s2).Equal(strlang.NewIntSet(2)) {
		t.Errorf("d-state of a(bb) = %v, want {2}", d.StateSet(s2).Sorted())
	}
	s3 := d.StateOf(xmltree.MustParse("a(b b b)"))
	if d.StateSet(s3).Len() != 0 {
		t.Errorf("d-state of a(bbb) = %v, want ∅", d.StateSet(s3).Sorted())
	}
}

func TestInclusionAndEquivalence(t *testing.T) {
	small := dtdNUTA(t, "s", map[string]string{"s": "a b"})
	big := dtdNUTA(t, "s", map[string]string{"s": "a* b"})
	if ok, _ := Included(small, big); !ok {
		t.Error("s(ab) ⊆ s(a*b) should hold")
	}
	ok, w := Included(big, small)
	if ok {
		t.Fatal("s(a*b) ⊆ s(ab) should fail")
	}
	if w == nil || !big.Accepts(w) || small.Accepts(w) {
		t.Errorf("invalid witness %v", w)
	}
	eq1 := dtdNUTA(t, "s", map[string]string{"s": "a a* b"})
	eq2 := dtdNUTA(t, "s", map[string]string{"s": "a+ b"})
	if ok, w := Equivalent(eq1, eq2); !ok {
		t.Errorf("a a* b ≡ a+ b should hold, witness %v", w)
	}
	if ok, _ := Equivalent(eq1, big); ok {
		t.Error("a+b ≢ a*b")
	}
}

func TestInclusionDeepWitness(t *testing.T) {
	// Difference only two levels down.
	x := dtdNUTA(t, "s", map[string]string{"s": "a", "a": "b*"})
	y := dtdNUTA(t, "s", map[string]string{"s": "a", "a": "b?"})
	ok, w := Included(x, y)
	if ok {
		t.Fatal("inclusion should fail")
	}
	if !x.Accepts(w) || y.Accepts(w) {
		t.Errorf("invalid witness %v", w)
	}
}

func TestEquivalenceWithSpecializations(t *testing.T) {
	// L1: s → (a1 a2)  with [a1] = a(b), [a2] = a(c)
	// L2: the same language written with swapped state numbering.
	build := func(swap bool) *NUTA {
		a := NewNUTA(5)
		content := func(re string, mapping map[string]int) *strlang.NFA {
			rx := strlang.MustParseRegex(re)
			return strlang.RegexNFA(strlang.MapRegexSymbols(rx, func(s strlang.Symbol) strlang.Symbol {
				return StateSym(mapping[s])
			}))
		}
		q1, q2 := 1, 2
		if swap {
			q1, q2 = 2, 1
		}
		a.SetDelta(0, "s", content("x y", map[string]int{"x": q1, "y": q2}))
		a.SetDelta(q1, "a", content("b", map[string]int{"b": 3}))
		a.SetDelta(q2, "a", content("c", map[string]int{"c": 4}))
		a.SetDelta(3, "b", content("ε", nil))
		a.SetDelta(4, "c", content("ε", nil))
		a.MarkFinal(0)
		return a
	}
	if ok, w := Equivalent(build(false), build(true)); !ok {
		t.Errorf("renamed specializations should be equivalent, witness %v", w)
	}
}
