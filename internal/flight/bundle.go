package flight

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"dxml/internal/obs"
	"dxml/internal/transport"
	"dxml/internal/transport/chaos"
)

// BundleVersion stamps the postmortem format.
const BundleVersion = 1

// Bundle is one postmortem: everything a typed failure's debugger
// needs, in one self-contained JSON artifact. Capture is the binary
// half — the frame ring encoded in the capture-file format (base64 in
// the JSON) — so `dxml inspect` and `dxml replay` consume a bundle and
// a live capture file identically.
type Bundle struct {
	Version int                  `json:"version"`
	Build   string               `json:"build"`             // obs.Version at dump time
	TimeNs  int64                `json:"time_unix_ns"`      // when the dump was taken
	Kind    string               `json:"kind"`              // Classify(err)
	Err     string               `json:"err,omitempty"`     // the triggering error's message
	Frames  int                  `json:"frames"`            // records in Capture
	Spans   []obs.Span           `json:"spans,omitempty"`   // obs trace-span ring
	Metrics *obs.MetricsSnapshot `json:"metrics,omitempty"` // counter/hist snapshot
	Capture []byte               `json:"capture,omitempty"` // encoded frame ring
}

// Classify names a typed transport failure for postmortem filenames
// and bundle kinds: "timeout", "refused", "injected" (a chaos fault),
// "codec" (garbage on the wire), or "error" for anything else.
func Classify(err error) string {
	var ref *transport.RefusedError
	switch {
	case err == nil:
		return "none"
	case errors.Is(err, chaos.ErrInjected):
		return "injected"
	case errors.Is(err, transport.ErrTimeout):
		return "timeout"
	case errors.As(err, &ref),
		errors.Is(err, transport.ErrUnknownDesign),
		errors.Is(err, transport.ErrOverCapacity):
		return "refused"
	case errors.Is(err, transport.ErrCodec):
		return "codec"
	}
	return "error"
}

// NewBundle assembles a postmortem for err from the recorder's ring
// and the collector's spans and metrics (either may be nil).
func NewBundle(err error, rec *Recorder, c *obs.Collector) *Bundle {
	b := &Bundle{
		Version: BundleVersion,
		Build:   obs.Version,
		TimeNs:  time.Now().UnixNano(),
		Kind:    Classify(err),
		Metrics: c.Export(),
		Spans:   c.Trace().Spans(),
	}
	if err != nil {
		b.Err = err.Error()
	}
	if rec != nil {
		b.Capture = rec.EncodeRing()
		recs, _ := ReadCapture(bytes.NewReader(b.Capture))
		b.Frames = len(recs)
	}
	return b
}

// Records decodes the bundle's embedded capture.
func (b *Bundle) Records() ([]Record, error) {
	if len(b.Capture) == 0 {
		return nil, nil
	}
	return ReadCapture(bytes.NewReader(b.Capture))
}

// WriteFile writes the bundle as one JSON file.
func (b *Bundle) WriteFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBundle loads a postmortem bundle from disk.
func ReadBundle(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("flight: %s is not a postmortem bundle: %w", path, err)
	}
	if b.Version == 0 {
		return nil, fmt.Errorf("flight: %s is not a postmortem bundle (no version)", path)
	}
	return &b, nil
}

// DefaultDumpLimit bounds how many postmortems one Dumper writes: a
// flapping peer must not fill the disk with identical bundles.
const DefaultDumpLimit = 32

// Dumper turns typed failures into postmortem files. It is handed to
// the host and client error hooks; a nil *Dumper ignores every dump.
// Concurrent dumps are safe — the sequence number is atomic and each
// dump writes its own file.
type Dumper struct {
	Dir   string         // destination directory (created on first dump)
	Rec   *Recorder      // frame ring to embed (nil: no frames)
	Obs   *obs.Collector // spans + metrics source (nil: omitted)
	Limit int64          // max dumps (0: DefaultDumpLimit)

	seq atomic.Int64
}

// Dump writes one postmortem bundle for err and returns its path; past
// the dump limit (or on a nil dumper) it returns "" and does nothing.
func (d *Dumper) Dump(err error) (string, error) {
	if d == nil {
		return "", nil
	}
	limit := d.Limit
	if limit <= 0 {
		limit = DefaultDumpLimit
	}
	seq := d.seq.Add(1)
	if seq > limit {
		return "", nil
	}
	if mkerr := os.MkdirAll(d.Dir, 0o755); mkerr != nil {
		return "", mkerr
	}
	b := NewBundle(err, d.Rec, d.Obs)
	path := filepath.Join(d.Dir, fmt.Sprintf("postmortem-%s-%03d.json", b.Kind, seq))
	if werr := b.WriteFile(path); werr != nil {
		return "", werr
	}
	return path, nil
}
