// Package flight is the federation's black box: a bounded ring of the
// most recent wire frames, fed by the transport's Tap seam, plus an
// optional full binary capture file and a postmortem bundle writer.
//
// The recorder follows the obs package's nil discipline — a nil
// *Recorder is the no-op sink, every method is safe on nil — so the
// transport's hot paths pay one nil check when flight recording is
// off. When it is on, the steady-state cost is bounded: the ring's
// slots reuse their backing arrays, so recording allocates only until
// every slot has grown to the per-frame cap.
//
// On a typed transport failure (timeout, refusal, injected fault,
// codec error) the hosting process dumps a postmortem Bundle: the
// frame ring, the obs trace-span ring, and a metrics snapshot, as one
// self-contained JSON artifact whose binary half `dxml inspect`
// decodes and `dxml replay` re-validates offline.
package flight

import (
	"bufio"
	"io"
	"sync"
	"time"

	"dxml/internal/transport"
)

// Dir is a recorded frame's direction relative to the recording
// process: Out frames left it, In frames arrived.
type Dir uint8

const (
	Out Dir = iota
	In
)

func (d Dir) String() string {
	if d == In {
		return "in"
	}
	return "out"
}

// monoEpoch anchors the recorder's monotonic timestamps: MonoNs values
// order frames reliably within one process even when the wall clock
// steps.
var monoEpoch = time.Now()

// Frame is one recorded wire frame. Wire holds the frame's leading
// bytes up to the recorder's per-frame cap; Orig is the frame's full
// on-wire length, so Orig > len(Wire) marks a payload the ring
// truncated (the capture file, when enabled, keeps frames whole).
type Frame struct {
	Dir    Dir
	Sess   uint64 // session trace ID (0 before the hello established one)
	WallNs int64  // wall-clock Unix nanoseconds at capture
	MonoNs int64  // monotonic nanoseconds at capture (process-local order)
	Wire   []byte
	Orig   int
}

// Defaults and floors for the recorder's bounds. The per-frame floor
// covers the frame header plus every fixed field any frame type
// carries, so even a maximally-truncating ring preserves each frame's
// type, stream id, and protocol fields — only variable tails (chunk
// payloads, digests, reasons) are cut.
const (
	DefaultRingFrames = 1024
	DefaultFrameBytes = 512
	MinFrameBytes     = 64
)

// Options bounds a recorder.
type Options struct {
	// RingFrames is the ring capacity in frames (0: DefaultRingFrames).
	RingFrames int
	// FrameBytes caps the bytes retained per ring frame (0:
	// DefaultFrameBytes; floored at MinFrameBytes).
	FrameBytes int
}

// slot is one ring entry; buf is the reused backing array for f.Wire.
type slot struct {
	used bool
	f    Frame
	buf  []byte
}

// Recorder is a bounded flight recorder: a ring of recent frames plus
// an optional full capture sink. It implements transport.Tap. A nil
// *Recorder is the no-op sink. One recorder may be shared by many
// sessions (a host's); frames carry their session's trace ID.
type Recorder struct {
	mu    sync.Mutex
	ring  []slot
	next  int
	total uint64
	cap   int

	cw     *bufio.Writer // capture sink (nil: ring only)
	closer io.Closer
	cwErr  error // first capture-write failure; capture stops there
}

// NewRecorder returns a recorder bounded by opts.
func NewRecorder(opts Options) *Recorder {
	n := opts.RingFrames
	if n <= 0 {
		n = DefaultRingFrames
	}
	c := opts.FrameBytes
	if c <= 0 {
		c = DefaultFrameBytes
	}
	if c < MinFrameBytes {
		c = MinFrameBytes
	}
	return &Recorder{ring: make([]slot, n), cap: c}
}

// CaptureTo attaches a full binary capture sink: every subsequent
// frame is appended whole (no per-frame cap) as one length-prefixed
// record after the capture header. The recorder owns w if it is an
// io.Closer and closes it on Close. No-op on a nil recorder.
func (r *Recorder) CaptureTo(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	if err := writeCaptureHeader(bw); err != nil {
		return err
	}
	r.cw = bw
	if c, ok := w.(io.Closer); ok {
		r.closer = c
	}
	return nil
}

// TapFrame records one frame; it implements transport.Tap. head and
// tail are the codec's two-part view of the wire bytes and are copied
// before returning, as the Tap contract requires.
func (r *Recorder) TapFrame(dir transport.TapDir, sess uint64, head, tail []byte) {
	if r == nil {
		return
	}
	d := Out
	if dir == transport.TapIn {
		d = In
	}
	orig := len(head) + len(tail)
	wall := time.Now().UnixNano()
	mono := int64(time.Since(monoEpoch))
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cw != nil && r.cwErr == nil {
		r.cwErr = writeRecordParts(r.cw, Record{
			Dir: d, Sess: sess, WallNs: wall, MonoNs: mono, Orig: orig,
		}, head, tail)
	}
	s := &r.ring[r.next]
	keep := orig
	if keep > r.cap {
		keep = r.cap
	}
	b := s.buf[:0]
	if cap(b) < keep {
		b = make([]byte, 0, r.cap)
	}
	if len(head) >= keep {
		b = append(b, head[:keep]...)
	} else {
		b = append(b, head...)
		b = append(b, tail[:keep-len(head)]...)
	}
	s.buf = b
	s.used = true
	s.f = Frame{Dir: d, Sess: sess, WallNs: wall, MonoNs: mono, Wire: b, Orig: orig}
	r.next = (r.next + 1) % len(r.ring)
	r.total++
}

// Frames returns a copy of the retained frames, oldest first. Nil
// recorder: nil.
func (r *Recorder) Frames() []Frame {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Frame, 0, len(r.ring))
	for i := 0; i < len(r.ring); i++ {
		s := &r.ring[(r.next+i)%len(r.ring)]
		if !s.used {
			continue
		}
		f := s.f
		f.Wire = append([]byte(nil), s.f.Wire...)
		out = append(out, f)
	}
	return out
}

// Total returns how many frames were recorded over the recorder's
// lifetime, including any that have rotated out of the ring.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// EncodeRing serializes the retained ring as a capture byte stream
// (header + one record per frame, ring-truncated payloads marked by
// their Orig length) — the binary half of a postmortem bundle.
func (r *Recorder) EncodeRing() []byte {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var buf writerBuf
	writeCaptureHeader(&buf)
	for i := 0; i < len(r.ring); i++ {
		s := &r.ring[(r.next+i)%len(r.ring)]
		if !s.used {
			continue
		}
		writeRecordParts(&buf, Record{
			Dir: s.f.Dir, Sess: s.f.Sess, WallNs: s.f.WallNs,
			MonoNs: s.f.MonoNs, Orig: s.f.Orig,
		}, s.f.Wire, nil)
	}
	return buf.b
}

// Flush drains the capture sink's buffer; it reports the first capture
// write error, if any. No-op on a nil recorder or without a sink.
func (r *Recorder) Flush() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cwErr != nil {
		return r.cwErr
	}
	if r.cw == nil {
		return nil
	}
	return r.cw.Flush()
}

// Close flushes and closes an owned capture sink.
func (r *Recorder) Close() error {
	err := r.Flush()
	if r == nil {
		return err
	}
	r.mu.Lock()
	closer := r.closer
	r.closer, r.cw = nil, nil
	r.mu.Unlock()
	if closer != nil {
		if cerr := closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// writerBuf is a minimal in-memory io.Writer (bytes.Buffer without the
// interface indirection growing the capture encoder's surface).
type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
