package flight

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dxml/internal/obs"
	"dxml/internal/transport"
	"dxml/internal/transport/chaos"
)

// wire fabricates a frame's wire bytes: a length prefix, a type byte,
// and a payload the recorder treats as opaque.
func wire(typ byte, payload []byte) []byte {
	b := make([]byte, 5+len(payload))
	n := uint32(1 + len(payload))
	b[0], b[1], b[2], b[3] = byte(n>>24), byte(n>>16), byte(n>>8), byte(n)
	b[4] = typ
	copy(b[5:], payload)
	return b
}

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	r.TapFrame(transport.TapOut, 1, []byte{1, 2, 3}, nil) // must not panic
	if got := r.Frames(); got != nil {
		t.Fatalf("nil recorder frames = %v", got)
	}
	if r.Total() != 0 {
		t.Fatal("nil recorder total != 0")
	}
	if r.EncodeRing() != nil {
		t.Fatal("nil recorder encodes a ring")
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRecorder(Options{RingFrames: 4})
	for i := 0; i < 10; i++ {
		r.TapFrame(transport.TapOut, 7, wire(8, []byte{byte(i)}), nil)
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d, want 10", r.Total())
	}
	frames := r.Frames()
	if len(frames) != 4 {
		t.Fatalf("ring kept %d frames, want 4", len(frames))
	}
	// Oldest first: frames 6..9 survive.
	for i, f := range frames {
		if want := byte(6 + i); f.Wire[5] != want {
			t.Fatalf("frame %d payload = %d, want %d", i, f.Wire[5], want)
		}
		if f.Dir != Out || f.Sess != 7 {
			t.Fatalf("frame %d = %+v", i, f)
		}
		if f.Orig != len(f.Wire) {
			t.Fatalf("frame %d Orig = %d, want %d", i, f.Orig, len(f.Wire))
		}
	}
}

func TestRingTruncatesLargeFrames(t *testing.T) {
	r := NewRecorder(Options{RingFrames: 2, FrameBytes: MinFrameBytes})
	big := wire(8, bytes.Repeat([]byte{0xaa}, 1000))
	r.TapFrame(transport.TapIn, 1, big[:9], big[9:]) // head/tail split like the reader
	frames := r.Frames()
	if len(frames) != 1 {
		t.Fatalf("frames = %d", len(frames))
	}
	f := frames[0]
	if len(f.Wire) != MinFrameBytes {
		t.Fatalf("kept %d bytes, want the %d cap", len(f.Wire), MinFrameBytes)
	}
	if f.Orig != len(big) {
		t.Fatalf("Orig = %d, want %d", f.Orig, len(big))
	}
	if !bytes.Equal(f.Wire, big[:MinFrameBytes]) {
		t.Fatal("truncated bytes are not the frame's prefix")
	}
}

func TestFramesCopiesOutOfRing(t *testing.T) {
	r := NewRecorder(Options{RingFrames: 2})
	r.TapFrame(transport.TapOut, 1, wire(8, []byte("abc")), nil)
	frames := r.Frames()
	// Overwrite the slot; the returned copy must not change.
	r.TapFrame(transport.TapOut, 1, wire(8, []byte("xyz")), nil)
	r.TapFrame(transport.TapOut, 1, wire(8, []byte("pqr")), nil)
	if string(frames[0].Wire[5:]) != "abc" {
		t.Fatalf("Frames aliases the live ring: %q", frames[0].Wire[5:])
	}
}

func TestCaptureRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(Options{RingFrames: 2, FrameBytes: MinFrameBytes})
	if err := r.CaptureTo(&buf); err != nil {
		t.Fatal(err)
	}
	big := wire(8, bytes.Repeat([]byte{0xbb}, 500))
	small := wire(9, []byte{0, 0, 0, 1})
	r.TapFrame(transport.TapOut, 42, small, nil)
	r.TapFrame(transport.TapIn, 42, big[:9], big[9:])
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadCapture(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("decoded %d records, want 2", len(recs))
	}
	// The capture file holds FULL frames even when the ring truncates.
	if !bytes.Equal(recs[1].Wire, big) {
		t.Fatalf("capture truncated the frame: %d bytes, want %d", len(recs[1].Wire), len(big))
	}
	if recs[0].Sess != 42 || recs[0].Dir != Out || recs[1].Dir != In {
		t.Fatalf("records = %+v", recs)
	}
	if recs[0].WallNs == 0 || recs[1].MonoNs < recs[0].MonoNs {
		t.Fatalf("timestamps not monotone: %+v", recs)
	}
}

func TestEncodeRingRoundTrip(t *testing.T) {
	r := NewRecorder(Options{RingFrames: 4, FrameBytes: MinFrameBytes})
	big := wire(8, bytes.Repeat([]byte{0xcc}, 300))
	r.TapFrame(transport.TapOut, 5, big, nil)
	recs, err := ReadCapture(bytes.NewReader(r.EncodeRing()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	// The ring keeps a truncated prefix; Orig still names the full size.
	if len(recs[0].Wire) != MinFrameBytes || recs[0].Orig != len(big) {
		t.Fatalf("wire %d / orig %d, want %d / %d", len(recs[0].Wire), recs[0].Orig, MinFrameBytes, len(big))
	}
}

func TestCaptureReaderRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("NOPE!\n"),
		"cut header":  []byte("DXF"),
		"cut record":  append([]byte(captureMagic), 0, 0, 0, 40, 1, 2),
		"tiny record": append([]byte(captureMagic), 0, 0, 0, 3, 1, 2, 3),
		"huge record": append([]byte(captureMagic), 0xff, 0xff, 0xff, 0xff),
	}
	for name, b := range cases {
		if _, err := ReadCapture(bytes.NewReader(b)); err == nil {
			t.Fatalf("%s: garbage decoded without error", name)
		}
	}
}

func TestConcurrentTaps(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(Options{RingFrames: 8})
	if err := r.CaptureTo(&buf); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.TapFrame(transport.TapOut, uint64(g), wire(8, []byte{byte(i)}), nil)
			}
		}(g)
	}
	wg.Wait()
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if r.Total() != 800 {
		t.Fatalf("total = %d", r.Total())
	}
	recs, err := ReadCapture(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 800 {
		t.Fatalf("capture has %d records, want 800", len(recs))
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, "none"},
		{fmt.Errorf("wrapped: %w", chaos.ErrInjected), "injected"},
		{transport.ErrTimeout, "timeout"},
		{&transport.RefusedError{Code: transport.RefuseOverCapacity, Reason: "full"}, "refused"},
		{transport.ErrUnknownDesign, "refused"},
		{transport.ErrCodec, "codec"},
		{errors.New("anything else"), "error"},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Fatalf("Classify(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestBundleRoundTrip(t *testing.T) {
	c := obs.New()
	c.Add(obs.CFramesEncoded, 3)
	tl := obs.NewTraceLog(nil)
	c.SetTrace(tl)
	c.Span(obs.Span{Name: "hello", Trace: 9})

	r := NewRecorder(Options{RingFrames: 4})
	r.TapFrame(transport.TapOut, 9, wire(8, []byte("hi")), nil)

	b := NewBundle(transport.ErrTimeout, r, c)
	if b.Kind != "timeout" || b.Frames != 1 {
		t.Fatalf("bundle = kind %q frames %d", b.Kind, b.Frames)
	}
	if len(b.Spans) != 1 || b.Spans[0].Name != "hello" {
		t.Fatalf("spans = %+v", b.Spans)
	}
	if b.Metrics == nil || b.Metrics.Counters["dxml_frames_encoded_total"] != 3 {
		t.Fatalf("metrics = %+v", b.Metrics)
	}

	path := filepath.Join(t.TempDir(), "bundle.json")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := got.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Wire[5:]) != "hi" {
		t.Fatalf("bundle records = %+v", recs)
	}
}

func TestDumperLimitAndNames(t *testing.T) {
	dir := t.TempDir()
	r := NewRecorder(Options{RingFrames: 2})
	r.TapFrame(transport.TapIn, 1, wire(8, nil), nil)
	d := &Dumper{Dir: dir, Rec: r, Limit: 2}

	var nilDumper *Dumper
	if path, err := nilDumper.Dump(transport.ErrTimeout); err != nil || path != "" {
		t.Fatalf("nil dumper dumped: %q, %v", path, err)
	}

	p1, err := d.Dump(transport.ErrTimeout)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := d.Dump(&transport.RefusedError{Code: transport.RefuseUnknownDesign})
	if err != nil {
		t.Fatal(err)
	}
	p3, err := d.Dump(transport.ErrTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if p3 != "" {
		t.Fatalf("dump over the limit wrote %q", p3)
	}
	if !strings.Contains(filepath.Base(p1), "timeout") || !strings.Contains(filepath.Base(p2), "refused") {
		t.Fatalf("bundle names carry no kind: %q, %q", p1, p2)
	}
	for _, p := range []string{p1, p2} {
		if _, err := ReadBundle(p); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("dir has %d entries, want 2", len(ents))
	}
}

// TestCaptureFileOwnership pins the Close contract: CaptureTo adopts an
// io.Closer, so Close seals the file and later taps fail loudly into
// cwErr rather than silently vanishing.
func TestCaptureFileLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cap.dxfr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRecorder(Options{})
	if err := r.CaptureTo(f); err != nil {
		t.Fatal(err)
	}
	r.TapFrame(transport.TapOut, 3, wire(8, []byte("x")), nil)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadCaptureFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
}

// readCaptureAll is a tiny helper for the fuzzer: decode until error.
func readCaptureAll(b []byte) ([]Record, error) {
	cr, err := NewCaptureReader(bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	var recs []Record
	for {
		rec, err := cr.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}
