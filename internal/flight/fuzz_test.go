package flight

import (
	"bytes"
	"testing"

	"dxml/internal/transport"
)

// FuzzCaptureRecords is the capture-decoder robustness gate: whatever
// bytes claim to be a capture file, the reader returns records or an
// error — it never panics, never over-allocates past the record bound,
// and round-trips whatever the recorder itself wrote.
func FuzzCaptureRecords(f *testing.F) {
	// Seed with a real capture so the fuzzer starts from valid shapes.
	var buf bytes.Buffer
	r := NewRecorder(Options{RingFrames: 4})
	if err := r.CaptureTo(&buf); err != nil {
		f.Fatal(err)
	}
	r.TapFrame(transport.TapOut, 1, wire(8, []byte("seed-payload")), nil)
	r.TapFrame(transport.TapIn, 2, wire(9, []byte{0, 0, 0, 1}), nil)
	if err := r.Flush(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                                       // truncated mid-record
	f.Add([]byte(captureMagic))                                       // header only
	f.Add([]byte("DXFR2\nnot the magic at all"))                      // wrong version
	f.Add(append(append([]byte{}, valid...), 0xff, 0xff, 0xff, 0xff)) // huge trailing length

	f.Fuzz(func(t *testing.T, b []byte) {
		recs, err := readCaptureAll(b)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode and decode to the same records.
		var out bytes.Buffer
		if err := writeCaptureHeader(&out); err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if err := WriteRecord(&out, rec); err != nil {
				t.Fatalf("re-encode of decoded record failed: %v", err)
			}
		}
		again, err := readCaptureAll(out.Bytes())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip lost records: %d -> %d", len(recs), len(again))
		}
		for i := range recs {
			if !bytes.Equal(again[i].Wire, recs[i].Wire) || again[i].Sess != recs[i].Sess ||
				again[i].Dir != recs[i].Dir || again[i].Orig != recs[i].Orig {
				t.Fatalf("record %d mutated in round trip", i)
			}
		}
	})
}
