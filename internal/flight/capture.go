package flight

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// The capture file format: a 6-byte magic, then length-prefixed
// records. Each record is
//
//	uint32 big-endian n | dir(1) | sess(8) | wall_ns(8) | mono_ns(8) | orig(4) | wire bytes
//
// where n counts everything after the length prefix, so the wire bytes
// are n−29. orig is the frame's full on-wire length: a record whose
// wire bytes are shorter was truncated by a ring's per-frame cap (a
// live capture file always stores frames whole). Like the frame codec
// this format rides on, the reader validates lengths before allocating
// and errors — never panics — on truncated or garbage input.
const (
	captureMagic     = "DXFR1\n"
	recordFixed      = 1 + 8 + 8 + 8 + 4 // dir + sess + wall + mono + orig
	maxRecordPayload = 64 << 20          // sanity bound; real frames stay far below
)

// Record is one capture-file entry: a Frame plus nothing — the struct
// exists so the codec's surface is independent of the ring's.
type Record struct {
	Dir    Dir
	Sess   uint64
	WallNs int64
	MonoNs int64
	Orig   int    // full on-wire frame length
	Wire   []byte // recorded bytes (== Orig unless ring-truncated)
}

// writeCaptureHeader begins a capture stream.
func writeCaptureHeader(w io.Writer) error {
	_, err := io.WriteString(w, captureMagic)
	return err
}

// writeRecordParts appends one record whose wire bytes arrive in two
// slices (the codec's header+payload split), avoiding a join copy.
func writeRecordParts(w io.Writer, r Record, head, tail []byte) error {
	var hdr [4 + recordFixed]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(recordFixed+len(head)+len(tail)))
	hdr[4] = byte(r.Dir)
	binary.BigEndian.PutUint64(hdr[5:13], r.Sess)
	binary.BigEndian.PutUint64(hdr[13:21], uint64(r.WallNs))
	binary.BigEndian.PutUint64(hdr[21:29], uint64(r.MonoNs))
	binary.BigEndian.PutUint32(hdr[29:33], uint32(r.Orig))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(head); err != nil {
		return err
	}
	if len(tail) > 0 {
		if _, err := w.Write(tail); err != nil {
			return err
		}
	}
	return nil
}

// WriteRecord appends one record to a capture stream.
func WriteRecord(w io.Writer, r Record) error {
	return writeRecordParts(w, r, r.Wire, nil)
}

// CaptureReader decodes a capture stream record by record.
type CaptureReader struct {
	r *bufio.Reader
}

// NewCaptureReader checks the capture magic and returns a reader.
func NewCaptureReader(r io.Reader) (*CaptureReader, error) {
	br := bufio.NewReaderSize(r, 32<<10)
	var magic [len(captureMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("flight: truncated capture header: %w", unexpectedEOF(err))
	}
	if string(magic[:]) != captureMagic {
		return nil, fmt.Errorf("flight: not a capture file (bad magic %q)", magic[:])
	}
	return &CaptureReader{r: br}, nil
}

// Next decodes the next record; io.EOF marks a clean end between
// records, io.ErrUnexpectedEOF a truncated one.
func (cr *CaptureReader) Next() (Record, error) {
	var hdr [4 + recordFixed]byte
	if _, err := io.ReadFull(cr.r, hdr[:4]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Record{}, fmt.Errorf("flight: truncated record length: %w", err)
		}
		return Record{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < recordFixed {
		return Record{}, fmt.Errorf("flight: %d-byte record is too short (need %d fixed bytes)", n, recordFixed)
	}
	if n-recordFixed > maxRecordPayload {
		return Record{}, fmt.Errorf("flight: %d-byte record exceeds the %d-byte limit", n, maxRecordPayload)
	}
	if _, err := io.ReadFull(cr.r, hdr[4:]); err != nil {
		return Record{}, fmt.Errorf("flight: truncated record: %w", unexpectedEOF(err))
	}
	if hdr[4] > uint8(In) {
		return Record{}, fmt.Errorf("flight: invalid record direction %d", hdr[4])
	}
	r := Record{
		Dir:    Dir(hdr[4]),
		Sess:   binary.BigEndian.Uint64(hdr[5:13]),
		WallNs: int64(binary.BigEndian.Uint64(hdr[13:21])),
		MonoNs: int64(binary.BigEndian.Uint64(hdr[21:29])),
		Orig:   int(binary.BigEndian.Uint32(hdr[29:33])),
	}
	wire := make([]byte, n-recordFixed)
	if _, err := io.ReadFull(cr.r, wire); err != nil {
		return Record{}, fmt.Errorf("flight: truncated record payload: %w", unexpectedEOF(err))
	}
	if r.Orig < len(wire) {
		return Record{}, fmt.Errorf("flight: record claims %d original bytes but carries %d", r.Orig, len(wire))
	}
	r.Wire = wire
	return r, nil
}

// ReadCapture decodes a whole capture stream.
func ReadCapture(r io.Reader) ([]Record, error) {
	cr, err := NewCaptureReader(r)
	if err != nil {
		return nil, err
	}
	var recs []Record
	for {
		rec, err := cr.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}

// ReadCaptureFile decodes a capture file from disk.
func ReadCaptureFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCapture(f)
}

// unexpectedEOF maps a clean EOF inside a record to ErrUnexpectedEOF.
func unexpectedEOF(err error) error {
	if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}
