package stream

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
	"testing"

	"dxml/internal/schema"
	"dxml/internal/xmltree"
)

// decodeXMLEvents is the encoding/xml reference front-end, the
// differential oracle for the hand-rolled Feeder tokenizer (chunked and
// byte-at-a-time feeding are pinned against it).
func decodeXMLEvents(r io.Reader, h Handler) error {
	dec := xml.NewDecoder(r)
	depth, roots := 0, 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("stream: %w", err)
		}
		switch el := tok.(type) {
		case xml.StartElement:
			if depth == 0 {
				if roots > 0 {
					return fmt.Errorf("stream: multiple roots")
				}
				roots++
			}
			if err := h.StartElement(el.Name.Local); err != nil {
				return err
			}
			depth++
		case xml.EndElement:
			depth--
			if err := h.EndElement(); err != nil {
				return err
			}
		case xml.CharData:
			if err := h.Text(); err != nil {
				return err
			}
		}
	}
	if roots == 0 {
		return fmt.Errorf("stream: empty document")
	}
	if depth != 0 {
		return fmt.Errorf("stream: unterminated elements")
	}
	return nil
}

// countHandler accepts every event, counting starts and ends, so the
// tokenizer can be tested independently of any schema.
type countHandler struct {
	starts, ends, texts int
	labels              []string
}

func (c *countHandler) StartElement(label string) error {
	c.starts++
	c.labels = append(c.labels, label)
	return nil
}
func (c *countHandler) Text() error       { c.texts++; return nil }
func (c *countHandler) EndElement() error { c.ends++; return nil }

// feedBytes pushes src through a fresh Feeder in chunks of the given
// size and closes it.
func feedBytes(h Handler, src string, chunk int, inner bool) error {
	var f *Feeder
	if inner {
		f = NewInnerFeeder(h)
	} else {
		f = NewFeeder(h)
	}
	b := []byte(src)
	for len(b) > 0 {
		n := min(chunk, len(b))
		if err := f.Feed(b[:n]); err != nil {
			// Sticky: Close must report the same verdict.
			if cerr := f.Close(); cerr == nil {
				return fmt.Errorf("Feed failed (%v) but Close succeeded", err)
			}
			return err
		}
		b = b[n:]
	}
	return f.Close()
}

// malformedCorpus is the error-path corpus of the satellite task:
// truncated documents, mismatched end tags, multiple roots, unterminated
// markup — plus well-formed decorated documents that must pass. Every
// entry is checked for verdict agreement between the encoding/xml
// decoder, the chunked Feeder, and a Feeder fed one byte at a time.
var malformedCorpus = []string{
	// Empty and truncated.
	"",
	"   \n\t ",
	"<eurostat>",
	"<eurostat",
	"<eurostat><averages>",
	"<eurostat><averages></averages>",
	"<a><b/>",
	"<a><b></a>",
	"<!-- only a comment -->",
	"<a/><!-- trailing comment",
	"<a><![CDATA[unterminated",
	"<a>text",
	"<?xml version=\"1.0\"?>",
	// Mismatched end tags.
	"<a></b>",
	"<a><b></a></b>",
	"<a><b></b></c>",
	"</a>",
	"<a/></a>",
	// Multiple roots.
	"<a/><b/>",
	"<a></a><a></a>",
	"<a/><a/>",
	// Malformed markup.
	"<>",
	"< a></a>",
	"<a//>",
	"<a/ >",
	"<1a/>",
	// Well-formed documents that must be accepted structurally.
	"<a/>",
	"<a></a>",
	"<a ></a>",
	"<a></a >",
	"<a attr=\"v>alue\" other='x'/>",
	"<a><!-- c with > inside --><b/></a>",
	"<a><![CDATA[ <not><markup/> ]]></a>",
	"<?xml version=\"1.0\"?><a/>",
	"<!DOCTYPE a [ <!ELEMENT a EMPTY> ]><a/>",
	"<!DOCTYPE a SYSTEM \"x[y\"><a/>",
	"<!DOCTYPE a SYSTEM 'x]y'><a/>",
	"<!DOCTYPE a SYSTEM \"x>y\"><a/>",
	// A stale attribute quote must not leak into a later declaration.
	"<a attr='q'><b/></a><!DOCTYPE x>",
	"<ns:a><ns:b/></ns:a>",
	"  <a>  <b> text </b> </a>  ",
	"<a>&lt;entity&gt;</a>",
}

// TestFeederAgreesWithDecoder pins the hand-rolled push tokenizer against
// the encoding/xml oracle on the malformed corpus: the verdict
// (accepted/rejected) must agree for whole-document, 7-byte-chunk, and
// one-byte-at-a-time feeding.
func TestFeederAgreesWithDecoder(t *testing.T) {
	for _, src := range malformedCorpus {
		var oracleH countHandler
		oracleErr := decodeXMLEvents(strings.NewReader(src), &oracleH)
		for _, chunk := range []int{1, 7, 1 << 20} {
			var h countHandler
			err := feedBytes(&h, src, chunk, false)
			if (err == nil) != (oracleErr == nil) {
				t.Errorf("chunk %d on %q: feeder says %v, decoder says %v",
					chunk, src, err, oracleErr)
				continue
			}
			if err == nil {
				if h.starts != oracleH.starts || h.ends != oracleH.ends {
					t.Errorf("chunk %d on %q: feeder saw %d/%d events, decoder %d/%d",
						chunk, src, h.starts, h.ends, oracleH.starts, oracleH.ends)
				}
				if fmt.Sprint(h.labels) != fmt.Sprint(oracleH.labels) {
					t.Errorf("chunk %d on %q: labels %v vs decoder %v",
						chunk, src, h.labels, oracleH.labels)
				}
			}
		}
	}
}

// TestFeederVerdictsAgainstMachine runs the malformed corpus through a
// Machine-bound feeder and checks that feeding one byte at a time agrees
// with the reader front-end on the *validation* verdict, not just
// well-formedness.
func TestFeederVerdictsAgainstMachine(t *testing.T) {
	m := Compile(eurostatEDTD(t, schema.KindNRE))
	corpus := append([]string{}, malformedCorpus...)
	corpus = append(corpus,
		"<eurostat><averages><Good/><index><value/><year/></index></averages></eurostat>",
		"<eurostat><averages><Good/></averages></eurostat>",
		"<eurostat note='x'><!-- c --><averages><Good>g</Good><index><value>1</value><year>2009</year></index></averages></eurostat>",
	)
	for _, src := range corpus {
		want := m.ValidateReader(strings.NewReader(src)) == nil
		f := m.NewFeeder()
		var err error
		for i := 0; i < len(src) && err == nil; i++ {
			err = f.Feed([]byte{src[i]})
		}
		cerr := f.Close()
		if err == nil {
			err = cerr
		}
		if (err == nil) != want {
			t.Errorf("byte-at-a-time on %q: got %v, reader front-end valid=%v", src, err, want)
		}
		// Close is idempotent and Feed after Close fails.
		if again := f.Close(); (again == nil) != (cerr == nil) {
			t.Errorf("Close not idempotent on %q: %v then %v", src, cerr, again)
		}
		if ferr := f.Feed([]byte("<x/>")); ferr == nil {
			t.Errorf("Feed after Close should fail on %q", src)
		}
	}
}

// TestInnerFeeder checks fragment splicing semantics: the root's events
// are suppressed, its children's are forwarded, and an empty input is a
// distinct error.
func TestInnerFeeder(t *testing.T) {
	var h countHandler
	if err := feedBytes(&h, "<r><a/><b><c/></b></r>", 3, true); err != nil {
		t.Fatalf("inner feed failed: %v", err)
	}
	if h.starts != 3 || h.ends != 3 {
		t.Errorf("inner feeder forwarded %d/%d events, want 3/3", h.starts, h.ends)
	}
	if fmt.Sprint(h.labels) != fmt.Sprint([]string{"a", "b", "c"}) {
		t.Errorf("inner labels = %v", h.labels)
	}
	if err := feedBytes(&countHandler{}, "", 1, true); err == nil ||
		!strings.Contains(err.Error(), "empty fragment") {
		t.Errorf("empty inner document: got %v", err)
	}
	if err := feedBytes(&countHandler{}, "<r><a/>", 1, true); err == nil {
		t.Error("truncated inner document accepted")
	}
}

// TestFeederChunkBoundaryInvariance serializes a real document and checks
// that every chunk size yields the identical event sequence — markup is
// split at arbitrary byte positions, including inside tags, names,
// comments and CDATA terminators.
func TestFeederChunkBoundaryInvariance(t *testing.T) {
	doc := xmltree.MustParse("s(a(b c(d) e) f(g(h i) j) k)")
	src := "<?pi data?><!-- x -->" + doc.XMLString() + "<!-- tail -->"
	var want countHandler
	if err := feedBytes(&want, src, len(src), false); err != nil {
		t.Fatal(err)
	}
	for chunk := 1; chunk <= 13; chunk++ {
		var h countHandler
		if err := feedBytes(&h, src, chunk, false); err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		if fmt.Sprint(h.labels) != fmt.Sprint(want.labels) || h.ends != want.ends {
			t.Fatalf("chunk %d: events diverge: %v vs %v", chunk, h.labels, want.labels)
		}
		if h.texts != want.texts {
			t.Fatalf("chunk %d: text runs not coalesced: %d events vs %d",
				chunk, h.texts, want.texts)
		}
	}
}

// TestFeederPrefixedEndTags pins end-tag matching on raw names (prefix
// included, as encoding/xml matches) while labels reach the handler
// prefix-stripped, and '<' inside a start tag is rejected.
func TestFeederPrefixedEndTags(t *testing.T) {
	var h countHandler
	if err := feedBytes(&h, "<x:a><x:b/></x:a>", 1, false); err != nil {
		t.Fatalf("prefixed document rejected: %v", err)
	}
	if fmt.Sprint(h.labels) != fmt.Sprint([]string{"a", "b"}) {
		t.Errorf("labels = %v, want prefix-stripped [a b]", h.labels)
	}
	for _, src := range []string{
		"<x:a></y:a>",  // mismatched prefixes (encoding/xml rejects)
		"<x:a></a>",    // prefix dropped on close
		"<a></x:a>",    // prefix added on close
		"<a <b/>></a>", // '<' inside a start tag
	} {
		if err := feedBytes(&countHandler{}, src, 1, false); err == nil {
			t.Errorf("feedBytes(%q) should fail", src)
		}
	}
}
