// Package stream implements one-pass, constant-memory streaming
// validation of XML documents against the paper's schema abstractions.
//
// The tree-based validators (schema.EDTD.Validate and friends) first
// materialize a full xmltree.Tree, so their memory footprint scales with
// document *size*. This package compiles a schema.EDTD once into an
// immutable Machine and drives it from a SAX-style event source —
// StartElement / Text / EndElement — so validation memory scales with
// document *depth* only: exactly the property that lets the paper's
// resource peers check million-node fragments locally and cheaply.
//
// # Why single-type EDTDs stream
//
// For a single-type EDTD (the paper's R-SDTD, Definition 6) no content
// model's useful alphabet contains two distinct specializations of the
// same element name, and no two start names share an element name. The
// witness assignment is therefore *forced* top-down: the root's
// specialized name is determined by its label, and each child's by its
// label plus its parent's witness. A single left-to-right pass suffices —
// each open element carries one precompiled content-DFA state, stepped
// O(log k) per child by interned symbol id (k = the state's out-degree),
// and acceptance is checked when the element closes. Peak memory is one
// small frame per open element: O(depth).
//
// # Limits for general EDTDs
//
// General (non-single-type) R-EDTDs admit no deterministic top-down
// assignment: which specialization a node gets may depend on its entire
// subtree, so no streaming algorithm can keep a single witness per open
// element. The Machine still validates them in one pass by on-the-fly
// subset tracking: for each open element it maintains, per candidate
// specialization of its label, the NFA state set of that candidate's
// content automaton run over the *sets* of names assignable to the
// children seen so far (the bottom-up membership computation of
// uta.NUTA.PossibleStates, reorganized along the event stream). Memory is
// still proportional to depth, with a per-frame factor of
// O(specializations × content-NFA states) — constant in the document,
// polynomial in the schema. Verdicts are identical to EDTD.Validate; only
// the early-failure position may differ (the subset tracker detects some
// dead ends only when an element closes).
//
// # Event sources
//
// The primary front-end is the push parser (Feeder): a resumable
// incremental tokenizer that accepts a document's bytes in arbitrary
// chunks as a network delivers them, with Close finalizing the verdict.
// Machine.NewFeeder binds one to a pooled Runner; NewInnerFeeder splices
// a fragment's forest (skipping its root) into an enclosing validation —
// the p2p wire feeds received frames straight into it, which is what
// makes mid-transfer rejection possible. The pull front-ends are thin
// adapters over it: StreamXML/ValidateReader (io.Reader),
// Machine.ValidateTree (an in-memory xmltree.Tree walker,
// differential-testable against EDTD.Validate). StreamKernel walks a
// kernel document, pausing at docking points so the p2p layer validates
// distributed documents as streams without materializing the extension.
// Machines are immutable after Compile and safe for concurrent use;
// Runners are pooled (sync.Pool) so concurrent peers share one compiled
// Machine with near-zero per-validation allocation on the single-type
// path, and the general-EDTD subset tracker steps through per-frame
// scratch arenas, so the slow path is allocation-free at steady state
// too.
package stream

import (
	"sync"

	"dxml/internal/schema"
	"dxml/internal/strlang"
)

// Handler receives SAX-style structural events. Implementations must
// return a non-nil error to stop the source; Runner returns its sticky
// validation error.
type Handler interface {
	// StartElement opens an element with the given label.
	StartElement(label string) error
	// Text reports character data. The paper's structural abstraction
	// ignores it; Runner accepts and discards it.
	Text() error
	// EndElement closes the most recently opened element.
	EndElement() error
}

// childRef resolves an element label inside one content model of a
// single-type EDTD: the forced child witness and the interned symbol id
// to step the parent's content DFA by.
type childRef struct {
	name int32 // machine-local index of the child's specialized name
	sym  int32 // interned id of the specialized-name symbol
}

// stProg is the compiled per-specialized-name program of the single-type
// fast path.
type stProg struct {
	// dfa is the minimal content DFA over specialized-name symbol ids.
	dfa   *strlang.DFA
	start int32
	// child maps interned element-label ids to the forced witness.
	child map[int32]childRef
}

// genProg is the per-specialized-name program of the general-EDTD subset
// tracker.
type genProg struct {
	// nfa is the content automaton over specialized-name symbols, with
	// ε-closures primed so concurrent stepping is read-only.
	nfa *strlang.NFA
	// startClos is the ε-closed initial state set (shared, read-only).
	startClos strlang.IntSet
	finals    strlang.IntSet
	sym       int32 // interned id of this specialized name as a symbol
}

// Machine is a schema.EDTD compiled for streaming validation. It is
// immutable after Compile and safe for concurrent use by any number of
// Runners.
type Machine struct {
	singleType bool
	names      []string // specialized names, machine-local index order

	// Single-type fast path.
	progs       []stProg
	startByElem map[int32]int32 // element-label id → start name index

	// General-EDTD subset tracking.
	gen          []genProg
	specsByElem  map[int32][]int32 // element-label id → candidate name indices
	startsByElem map[int32][]int32 // element-label id → start name indices

	// starts is the set of start name indices, uniform across both
	// paths — the incremental revalidator's root acceptance check.
	starts []int32

	pool sync.Pool
}

// Compile builds the streaming Machine for e. Single-type EDTDs (checked
// with EDTD.IsSingleType) get the deterministic DFA fast path; general
// EDTDs get the subset tracker. The compilation interns every element
// and specialized name and primes all automaton caches, so the returned
// Machine performs no writes to shared state while running.
func Compile(e *schema.EDTD) *Machine {
	names := e.SpecializedNames()
	idx := make(map[string]int32, len(names))
	for i, n := range names {
		idx[n] = int32(i)
	}
	m := &Machine{names: names}
	m.pool.New = func() any { return &Runner{m: m} }
	single, _ := e.IsSingleType()
	m.singleType = single
	if single {
		m.compileSingleType(e, idx)
	} else {
		m.compileGeneral(e, idx)
	}
	// Uniform tables for the incremental revalidator: candidate
	// specializations per element label (the general path builds its
	// own copy already) and the start-name set.
	if m.specsByElem == nil {
		m.specsByElem = map[int32][]int32{}
		for elem, specs := range e.SpecializationMap() {
			elemID := strlang.Intern(elem)
			for _, n := range specs {
				m.specsByElem[elemID] = append(m.specsByElem[elemID], idx[n])
			}
		}
	}
	for _, s := range e.Starts {
		m.starts = append(m.starts, idx[s])
	}
	return m
}

// SingleType reports whether the machine runs the deterministic
// single-type fast path.
func (m *Machine) SingleType() bool { return m.singleType }

func (m *Machine) compileSingleType(e *schema.EDTD, idx map[string]int32) {
	witness := e.ChildWitnesses()
	m.progs = make([]stProg, len(m.names))
	for i, n := range m.names {
		dfa := e.Rule(n).CompiledDFA()
		child := make(map[int32]childRef, len(witness[n]))
		for elem, spec := range witness[n] {
			child[strlang.Intern(elem)] = childRef{name: idx[spec], sym: strlang.Intern(spec)}
		}
		m.progs[i] = stProg{dfa: dfa, start: int32(dfa.Start()), child: child}
	}
	m.startByElem = make(map[int32]int32, len(e.Starts))
	for _, s := range e.Starts {
		m.startByElem[strlang.Intern(e.Elem(s))] = idx[s]
	}
}

func (m *Machine) compileGeneral(e *schema.EDTD, idx map[string]int32) {
	m.gen = make([]genProg, len(m.names))
	for i, n := range m.names {
		nfa := e.Rule(n).Lang()
		startClos := nfa.ClosureOf(nfa.Start()) // primes ε-closures
		nfa.AlphabetIDs()                       // primes the alphabet cache
		m.gen[i] = genProg{
			nfa:       nfa,
			startClos: startClos,
			finals:    nfa.Finals(),
			sym:       strlang.Intern(n),
		}
	}
	m.specsByElem = map[int32][]int32{}
	for elem, specs := range e.SpecializationMap() {
		elemID := strlang.Intern(elem)
		for _, n := range specs {
			m.specsByElem[elemID] = append(m.specsByElem[elemID], idx[n])
		}
	}
	m.startsByElem = map[int32][]int32{}
	for _, s := range e.Starts {
		elemID := strlang.Intern(e.Elem(s))
		m.startsByElem[elemID] = append(m.startsByElem[elemID], idx[s])
	}
}

// NewRunner returns a pooled Runner ready to consume one document's
// events. Release it when done so concurrent validations reuse its
// frames.
func (m *Machine) NewRunner() *Runner {
	r := m.pool.Get().(*Runner)
	r.reset()
	return r
}
