package stream

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"dxml/internal/gen"
	"dxml/internal/schema"
	"dxml/internal/xmltree"
)

// recursiveSDTD is a single-type EDTD with genuine specializations and
// recursion (sections nest), so the differential test covers deep
// documents and non-trivial witness resolution.
func recursiveSDTD(t testing.TB, kind schema.Kind) *schema.EDTD {
	t.Helper()
	e, err := schema.ParseEDTD(kind, `
		root doc
		doc -> front, secA*
		front : part -> p*
		secA : sec -> secB*, p?
		secB : sec -> p*`)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// mutate applies one random structural edit to a copy of doc: drop a
// child, duplicate a child, or relabel a non-root node.
func mutate(r *rand.Rand, doc *xmltree.Tree) *xmltree.Tree {
	out := doc.Clone()
	var nodes []*xmltree.Tree
	out.Walk(func(n *xmltree.Tree, _ []string) bool {
		nodes = append(nodes, n)
		return true
	})
	n := nodes[r.Intn(len(nodes))]
	switch r.Intn(4) {
	case 0: // drop a child
		if len(n.Children) > 0 {
			i := r.Intn(len(n.Children))
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
		}
	case 1: // duplicate a child
		if len(n.Children) > 0 {
			i := r.Intn(len(n.Children))
			n.Children = append(n.Children, n.Children[i].Clone())
		}
	case 2: // relabel a node to another label of the document
		n.Label = nodes[r.Intn(len(nodes))].Label
	default: // relabel to a foreign symbol
		if n != out {
			n.Label = "zz"
		}
	}
	return out
}

// TestDifferentialStreamVsTree pins the streaming verdicts against the
// tree-based EDTD.Validate across all four content-model kinds, on
// sampler-drawn valid documents and on random mutations of them (which
// may or may not stay valid — EDTD.Validate is the oracle either way).
// Fixtures cover the single-type fast path (flat and recursive) and the
// general-EDTD subset tracker. Over 10k documents are checked.
func TestDifferentialStreamVsTree(t *testing.T) {
	type fixture struct {
		name  string
		build func(testing.TB, schema.Kind) *schema.EDTD
	}
	fixtures := []fixture{
		{"eurostat", func(tb testing.TB, k schema.Kind) *schema.EDTD { return eurostatEDTD(tb, k) }},
		{"recursive-sdtd", func(tb testing.TB, k schema.Kind) *schema.EDTD { return recursiveSDTD(tb, k) }},
		{"general-edtd", func(tb testing.TB, k schema.Kind) *schema.EDTD { return generalEDTD(tb, k) }},
	}
	rounds := 420
	if testing.Short() {
		rounds = 40
	}
	total := 0
	for _, fx := range fixtures {
		for _, kind := range schema.AllKinds {
			fx, kind := fx, kind
			t.Run(fx.name+"/"+kind.String(), func(t *testing.T) {
				t.Parallel()
				e := fx.build(t, kind)
				m := Compile(e)
				s, err := gen.New(e, int64(17*len(fx.name))+int64(kind))
				if err != nil {
					t.Fatal(err)
				}
				s.MaxDepth = 8
				r := rand.New(rand.NewSource(int64(kind) + 1))
				for i := 0; i < rounds; i++ {
					doc, err := s.Document()
					if err != nil {
						t.Fatal(err)
					}
					if err := checkAgreement(t, e, m, doc); err != nil {
						t.Fatalf("valid sample %d: %v", i, err)
					}
					if err := checkAgreement(t, e, m, mutate(r, doc)); err != nil {
						t.Fatalf("mutated sample %d: %v", i, err)
					}
				}
			})
			total += 2 * rounds
		}
	}
	if !testing.Short() && total < 10000 {
		t.Fatalf("differential coverage too small: %d documents", total)
	}
	t.Logf("checked %d documents", total)
}

// checkAgreement validates doc with all three stream front-ends (tree
// walker, XML reader, and the push-parser Feeder fed in small chunks)
// and fails unless they all agree with EDTD.Validate.
func checkAgreement(t *testing.T, e *schema.EDTD, m *Machine, doc *xmltree.Tree) error {
	t.Helper()
	want := e.Validate(doc) == nil
	if got := m.ValidateTree(doc); (got == nil) != want {
		return fmt.Errorf("stream disagrees with EDTD.Validate on %s: tree-valid=%v, stream says %v",
			doc, want, got)
	}
	src := doc.XMLString()
	if got := m.ValidateReader(strings.NewReader(src)); (got == nil) != want {
		return fmt.Errorf("XML stream disagrees with EDTD.Validate on %s: tree-valid=%v, stream says %v",
			doc, want, got)
	}
	// Push path: the same bytes in 7-byte network chunks.
	f := m.NewFeeder()
	var ferr error
	for b := []byte(src); len(b) > 0 && ferr == nil; {
		n := min(7, len(b))
		ferr = f.Feed(b[:n])
		b = b[n:]
	}
	if cerr := f.Close(); ferr == nil {
		ferr = cerr
	}
	if (ferr == nil) != want {
		return fmt.Errorf("push feeder disagrees with EDTD.Validate on %s: tree-valid=%v, feeder says %v",
			doc, want, ferr)
	}
	return nil
}
