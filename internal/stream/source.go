package stream

import (
	"fmt"
	"io"
	"sync"

	"dxml/internal/xmltree"
)

// readChunkSize is the read budget of the io.Reader adapters. Buffers are
// pooled, so the pull front-ends stay allocation-light.
const readChunkSize = 32 << 10

var chunkPool = sync.Pool{New: func() any {
	b := make([]byte, readChunkSize)
	return &b
}}

// FeedReader pumps r through f in read chunks of the given size (<= 0
// uses the pooled default budget) and closes f in every case, so
// Machine-bound feeders always release their runner. It returns the
// first feed/verdict error, or the wrapped read error. The pull
// front-ends are exactly this adapter over the push parser.
func FeedReader(f *Feeder, r io.Reader, chunk int) error {
	// Clamp user-supplied budgets: a read chunk above 1 MiB buys nothing
	// and must not turn into an arbitrary-size allocation.
	if chunk > 1<<20 {
		chunk = 1 << 20
	}
	var buf []byte
	if chunk <= 0 || chunk == readChunkSize {
		bp := chunkPool.Get().(*[]byte)
		defer chunkPool.Put(bp)
		buf = *bp
	} else {
		buf = make([]byte, chunk)
	}
	for {
		n, err := r.Read(buf)
		if n > 0 {
			if ferr := f.Feed(buf[:n]); ferr != nil {
				f.Close()
				return ferr
			}
		}
		if err == io.EOF {
			return f.Close()
		}
		if err != nil {
			f.Close()
			return fmt.Errorf("stream: %w", err)
		}
	}
}

// StreamXML feeds the structural events of one XML document from r into
// h, without ever materializing a tree: memory is one read chunk plus
// whatever h keeps per open element. Character data is forwarded as Text
// events; comments, processing instructions and attributes are dropped,
// matching the paper's structural abstraction. It is a thin adapter over
// the push-parser Feeder, which network callers drive directly.
func StreamXML(r io.Reader, h Handler) error {
	return FeedReader(NewFeeder(h), r, 0)
}

// StreamXMLInner feeds the events *inside* the document's root element —
// the forest a docking point contributes under extension semantics
// (Section 2.3) — skipping the root's own start and end events.
func StreamXMLInner(r io.Reader, h Handler) error {
	return FeedReader(NewInnerFeeder(h), r, 0)
}

// StreamTree feeds the events of an in-memory tree into h.
func StreamTree(t *xmltree.Tree, h Handler) error {
	return t.EmitEvents(h.StartElement, h.EndElement)
}

// ValidateReader validates one XML document from r in a single pass,
// with memory proportional to the document's depth.
func (m *Machine) ValidateReader(r io.Reader) error {
	run := m.NewRunner()
	defer run.Release()
	if err := StreamXML(r, run); err != nil {
		return err
	}
	return run.Finish()
}

// ValidateTree validates a materialized tree by streaming its events
// through the machine. Verdicts agree with schema.EDTD.Validate; this
// walker exists so the two engines are differential-testable and so
// tree-holding callers (the p2p peers) reuse the compiled machine.
func (m *Machine) ValidateTree(t *xmltree.Tree) error {
	run := m.NewRunner()
	defer run.Release()
	if err := StreamTree(t, run); err != nil {
		return err
	}
	return run.Finish()
}
