package stream

import (
	"encoding/xml"
	"fmt"
	"io"

	"dxml/internal/xmltree"
)

// StreamXML feeds the structural events of one XML document from r into
// h, without ever materializing a tree: memory is the decoder's buffer
// plus whatever h keeps per open element. Character data is forwarded as
// Text events; comments, processing instructions and attributes are
// dropped, matching the paper's structural abstraction.
func StreamXML(r io.Reader, h Handler) error {
	depth, roots, err := streamXMLEvents(r, h, 0)
	if err != nil {
		return err
	}
	if roots == 0 {
		return fmt.Errorf("stream: empty document")
	}
	if depth != 0 {
		return fmt.Errorf("stream: unterminated elements")
	}
	return nil
}

// StreamXMLInner feeds the events *inside* the document's root element —
// the forest a docking point contributes under extension semantics
// (Section 2.3) — skipping the root's own start and end events.
func StreamXMLInner(r io.Reader, h Handler) error {
	depth, roots, err := streamXMLEvents(r, h, 1)
	if err != nil {
		return err
	}
	if roots == 0 {
		return fmt.Errorf("stream: empty fragment document")
	}
	if depth != 0 {
		return fmt.Errorf("stream: unterminated elements")
	}
	return nil
}

// streamXMLEvents decodes r and forwards events below the given nesting
// level (0 = everything, 1 = inside the root). It returns the final
// depth and the number of top-level elements seen.
func streamXMLEvents(r io.Reader, h Handler, skip int) (depth, roots int, err error) {
	dec := xml.NewDecoder(r)
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return depth, roots, nil
		}
		if err != nil {
			return depth, roots, fmt.Errorf("stream: %w", err)
		}
		switch el := tok.(type) {
		case xml.StartElement:
			if depth == 0 {
				if roots > 0 {
					return depth, roots, fmt.Errorf("stream: multiple roots")
				}
				roots++
			}
			if depth >= skip {
				if err := h.StartElement(el.Name.Local); err != nil {
					return depth, roots, err
				}
			}
			depth++
		case xml.EndElement:
			depth--
			if depth >= skip {
				if err := h.EndElement(); err != nil {
					return depth, roots, err
				}
			}
		case xml.CharData:
			if depth >= skip {
				if err := h.Text(); err != nil {
					return depth, roots, err
				}
			}
		}
	}
}

// StreamTree feeds the events of an in-memory tree into h.
func StreamTree(t *xmltree.Tree, h Handler) error {
	return t.EmitEvents(h.StartElement, h.EndElement)
}

// ValidateReader validates one XML document from r in a single pass,
// with memory proportional to the document's depth.
func (m *Machine) ValidateReader(r io.Reader) error {
	run := m.NewRunner()
	defer run.Release()
	if err := StreamXML(r, run); err != nil {
		return err
	}
	return run.Finish()
}

// ValidateTree validates a materialized tree by streaming its events
// through the machine. Verdicts agree with schema.EDTD.Validate; this
// walker exists so the two engines are differential-testable and so
// tree-holding callers (the p2p peers) reuse the compiled machine.
func (m *Machine) ValidateTree(t *xmltree.Tree) error {
	run := m.NewRunner()
	defer run.Release()
	if err := StreamTree(t, run); err != nil {
		return err
	}
	return run.Finish()
}
