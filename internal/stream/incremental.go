package stream

import (
	"fmt"

	"dxml/internal/axml"
	"dxml/internal/strlang"
	"dxml/internal/xmltree"
)

// Incremental is a checkpointed result tree: a shadow of a document (or
// of a kernel document's extension) that stores, per node, the node's
// *witness set* — the specializations of its label whose content model
// admits the subtree — plus subtree aggregates. The root is accepted
// iff its witness set meets the machine's start names, which makes the
// stored verdict exactly the machine's from-scratch verdict at every
// version (pinned by the differential mutation corpus in the tests).
//
// The point is the update rule. Applying a subtree edit recomputes
// witness sets bottom-up inside the edited subtree only, then walks the
// ancestor chain re-running each ancestor's content automaton over its
// (cached) child summaries — and stops as soon as an ancestor's witness
// set comes out unchanged, because a node's contribution to its
// parent's content word is exactly its label and witness set. Subtree
// aggregates ride the same walk. The cost is O(‖edit‖ + Σ fan-out along
// the recomputed chain) ≤ O(‖edit‖ + depth·width) instead of
// O(‖document‖); on real documents the chain almost always stops at the
// edited node's parent, which is what makes a single-leaf edit on a
// 10⁵-node fragment orders of magnitude cheaper than revalidating from
// scratch (see the incremental benchmarks and EXPERIMENTS.md).
//
// In kernel mode each docking point is a *slot*: a transparent node
// holding the fragment's forest. A slot contributes no symbol of its
// own — its children splice into the kernel parent's content word,
// matching extension semantics (Section 2.3) — so fragment edits
// propagate through the kernel part exactly as far as they change
// witness sets, and no further.
//
// An Incremental is not safe for concurrent use; the live federation
// serializes edits from all its feeds through one lock.
type Incremental struct {
	m     *Machine
	root  *incNode
	slots map[string]*incNode // kernel mode: docking point → slot

	valid bool

	// Per-edit recheck accounting, in flat serialized bytes
	// (len(label)+4 per node — the node's own tag cost, indentation
	// excluded, so the measure is depth-free and edit-local).
	lastReval   int
	lastSkipped int

	// Scratch for witness-set computation (general path state sets and
	// the set under comparison), reused across edits.
	witScratch []int32
	setA, setB strlang.IntSet
	tmp        strlang.IntSet
}

// incNode is one node of the result tree.
type incNode struct {
	parent *incNode
	idx    int  // index in parent.kids
	slot   bool // docking-point slot: contributes its children, not itself

	label string
	lid   int32 // interned label id, -1 when the label is foreign

	kids []*incNode
	wits []int32 // admissible specializations, in machine candidate order

	nodes int // subtree node count (slots: children only)
	bytes int // subtree flat bytes  (slots: children only)
}

func ownBytes(label string) int { return len(label) + 4 } // <x/>\n

// NewIncremental builds the result tree of a single document: the
// validation surface a resource peer keeps for its own fragment.
func (m *Machine) NewIncremental(doc *xmltree.Tree) *Incremental {
	inc := &Incremental{m: m, slots: map[string]*incNode{}}
	inc.root = inc.build(doc, nil)
	inc.valid = inc.rootValid()
	inc.lastSkipped = 0
	return inc
}

// NewKernelIncremental builds the result tree of a kernel document's
// extension: kernel element nodes shadowed as themselves and each
// docking point as a slot holding frags[fn]'s forest. This is the
// kernel peer's live state — the verdict it maintains across edits.
func (m *Machine) NewKernelIncremental(k *axml.Kernel, frags map[string]*xmltree.Tree) (*Incremental, error) {
	for _, fn := range k.Funcs() {
		if frags[fn] == nil {
			return nil, fmt.Errorf("stream: no fragment for docking point %s", fn)
		}
	}
	inc := &Incremental{m: m, slots: map[string]*incNode{}}
	var rec func(t *xmltree.Tree, parent *incNode) *incNode
	rec = func(t *xmltree.Tree, parent *incNode) *incNode {
		if k.IsFunc(t.Label) {
			frag := frags[t.Label]
			slot := &incNode{parent: parent, slot: true, label: frag.Label, lid: -1}
			for i, c := range frag.Children {
				kid := inc.build(c, slot)
				kid.idx = i
				slot.kids = append(slot.kids, kid)
				slot.nodes += kid.nodes
				slot.bytes += kid.bytes
			}
			inc.slots[t.Label] = slot
			return slot
		}
		n := &incNode{parent: parent, label: t.Label, lid: lookupLabel(t.Label), nodes: 1, bytes: ownBytes(t.Label)}
		for i, c := range t.Children {
			kid := rec(c, n)
			kid.idx = i
			n.kids = append(n.kids, kid)
			n.nodes += kid.nodes
			n.bytes += kid.bytes
		}
		n.wits = append([]int32(nil), inc.computeWits(n)...)
		return n
	}
	inc.root = rec(k.Tree(), nil)
	inc.valid = inc.rootValid()
	inc.lastReval, inc.lastSkipped = 0, 0
	return inc, nil
}

func lookupLabel(label string) int32 {
	if lid, ok := strlang.LookupSymID(label); ok {
		return lid
	}
	return -1
}

// build constructs the shadow of t bottom-up, computing witness sets as
// it goes and charging every built node to the edit's recheck cost.
func (inc *Incremental) build(t *xmltree.Tree, parent *incNode) *incNode {
	n := &incNode{parent: parent, label: t.Label, lid: lookupLabel(t.Label), nodes: 1, bytes: ownBytes(t.Label)}
	for i, c := range t.Children {
		kid := inc.build(c, n)
		kid.idx = i
		n.kids = append(n.kids, kid)
		n.nodes += kid.nodes
		n.bytes += kid.bytes
	}
	n.wits = append([]int32(nil), inc.computeWits(n)...)
	inc.lastReval += ownBytes(t.Label)
	return n
}

// computeWits returns the witness set of n from its children's cached
// summaries, in inc.witScratch (valid until the next call). Slots are
// expanded transparently: their children participate in n's content
// word in place.
func (inc *Incremental) computeWits(n *incNode) []int32 {
	out := inc.witScratch[:0]
	if n.lid >= 0 {
		if inc.m.singleType {
			out = inc.witsSingle(out, n)
		} else {
			out = inc.witsGeneral(out, n)
		}
	}
	inc.witScratch = out
	return out
}

// eachContentChild visits n's content word: element children as
// themselves, slot children expanded to their forests.
func eachContentChild(n *incNode, f func(c *incNode) bool) bool {
	for _, c := range n.kids {
		if c.slot {
			for _, g := range c.kids {
				if !f(g) {
					return false
				}
			}
			continue
		}
		if !f(c) {
			return false
		}
	}
	return true
}

// witsSingle runs each candidate's content DFA over the child
// summaries. Single-type schemas force each child's specialization
// inside a given content model, so a candidate survives iff every
// forced child witness is admissible for that child's subtree and the
// forced word is accepted.
func (inc *Incremental) witsSingle(out []int32, n *incNode) []int32 {
	m := inc.m
	for _, w := range m.specsByElem[n.lid] {
		prog := &m.progs[w]
		state := prog.start
		ok := true
		eachContentChild(n, func(c *incNode) bool {
			ref, exists := prog.child[c.lid]
			if !exists || !containsInt32(c.wits, ref.name) {
				ok = false
				return false
			}
			next, stepped := prog.dfa.NextID(int(state), ref.sym)
			if !stepped {
				ok = false
				return false
			}
			state = int32(next)
			return true
		})
		if ok && prog.dfa.IsFinal(int(state)) {
			out = append(out, w)
		}
	}
	return out
}

// witsGeneral runs each candidate's content NFA over the *sets* of
// names admissible for each child — the bottom-up membership
// computation, one node at a time.
func (inc *Incremental) witsGeneral(out []int32, n *incNode) []int32 {
	m := inc.m
	if inc.tmp == nil {
		inc.tmp, inc.setA, inc.setB = strlang.NewIntSet(), strlang.NewIntSet(), strlang.NewIntSet()
	}
	for _, w := range m.specsByElem[n.lid] {
		g := &m.gen[w]
		cur := g.startClos // shared, read-only
		own := inc.setA
		spare := inc.setB
		alive := true
		eachContentChild(n, func(c *incNode) bool {
			inc.tmp.Clear()
			for _, cw := range c.wits {
				g.nfa.StepIDInto(inc.tmp, cur, m.gen[cw].sym)
			}
			if inc.tmp.Len() == 0 {
				alive = false
				return false
			}
			own.SetTo(inc.tmp)
			cur = own
			own, spare = spare, own
			return true
		})
		if alive && cur.Intersects(g.finals) {
			out = append(out, w)
		}
	}
	return out
}

func containsInt32(s []int32, v int32) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func int32sEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// rootValid reports whether the root's witness set meets the starts.
func (inc *Incremental) rootValid() bool {
	for _, s := range inc.m.starts {
		if containsInt32(inc.root.wits, s) {
			return true
		}
	}
	return false
}

// Valid returns the maintained verdict: exactly what a from-scratch
// validation of the current document (or extension) would report.
func (inc *Incremental) Valid() bool { return inc.valid }

// LastRecheck returns the byte accounting of the most recent edit:
// how much of the document was revalidated (rebuilt subtree plus the
// ancestor re-checks) and how much was skipped (everything else).
func (inc *Incremental) LastRecheck() (revalidated, skipped int) {
	return inc.lastReval, inc.lastSkipped
}

// TotalBytes is the document's total flat byte measure.
func (inc *Incremental) TotalBytes() int { return inc.root.bytes }

// NodeCount is the current number of document nodes.
func (inc *Incremental) NodeCount() int { return inc.root.nodes }

// base resolves the edit surface: the slot for a docking point, the
// root for the plain-document mode (fn == "").
func (inc *Incremental) base(fn string) (*incNode, error) {
	if fn == "" {
		if len(inc.slots) != 0 {
			return nil, fmt.Errorf("stream: kernel incremental needs a docking point for every edit")
		}
		return inc.root, nil
	}
	slot, ok := inc.slots[fn]
	if !ok {
		return nil, fmt.Errorf("stream: no docking point %s", fn)
	}
	return slot, nil
}

// nodeAt walks an index path below base.
func nodeAt(base *incNode, path []int) (*incNode, error) {
	n := base
	for depth, i := range path {
		if i < 0 || i >= len(n.kids) {
			return nil, fmt.Errorf("stream: path %v: index %d out of range at depth %d", path, i, depth)
		}
		n = n.kids[i]
	}
	return n, nil
}

// beginEdit resets the per-edit accounting.
func (inc *Incremental) beginEdit() { inc.lastReval, inc.lastSkipped = 0, 0 }

// finishEdit settles the skipped-byte accounting and the verdict.
func (inc *Incremental) finishEdit() {
	inc.valid = inc.rootValid()
	if inc.lastSkipped = inc.root.bytes - inc.lastReval; inc.lastSkipped < 0 {
		inc.lastSkipped = 0
	}
}

// refreshUp propagates a structural change at n (whose children just
// changed) to the root: aggregates are adjusted all the way up, witness
// sets are recomputed until one comes out unchanged. Slots are
// transparent (no witness set of their own). witsLive=false skips the
// automaton re-checks entirely — the caller proved n's content word
// unchanged (a replace whose fresh subtree has the old label and
// witness set), so only aggregates move.
func (inc *Incremental) refreshUp(n *incNode, dNodes, dBytes int, witsLive bool) {
	for cur := n; cur != nil; cur = cur.parent {
		cur.nodes += dNodes
		cur.bytes += dBytes
		if cur.slot || !witsLive {
			continue
		}
		// Charge the re-check: this node's own tag plus the child
		// summaries its automaton re-reads.
		inc.lastReval += ownBytes(cur.label)
		eachContentChild(cur, func(c *incNode) bool {
			inc.lastReval += ownBytes(c.label)
			return true
		})
		fresh := inc.computeWits(cur)
		if int32sEqual(fresh, cur.wits) {
			witsLive = false
			continue
		}
		cur.wits = append(cur.wits[:0], fresh...)
	}
}

// reindex refreshes kids' idx fields from position i on.
func reindex(n *incNode, i int) {
	for ; i < len(n.kids); i++ {
		n.kids[i].idx = i
	}
}

// Replace replaces the subtree at path below fn's surface with t. An
// empty path replaces the whole fragment (kernel mode: t's children
// become the slot's forest, mirroring extension semantics) or the whole
// document (plain mode).
func (inc *Incremental) Replace(fn string, path []int, t *xmltree.Tree) error {
	base, err := inc.base(fn)
	if err != nil {
		return err
	}
	inc.beginEdit()
	if len(path) == 0 {
		if base.slot {
			oldNodes, oldBytes := base.nodes, base.bytes
			base.label = t.Label
			base.kids = base.kids[:0]
			base.nodes, base.bytes = 0, 0
			for i, c := range t.Children {
				kid := inc.build(c, base)
				kid.idx = i
				base.kids = append(base.kids, kid)
				base.nodes += kid.nodes
				base.bytes += kid.bytes
			}
			// The slot's own aggregates were just rebuilt; the delta
			// applies from its kernel parent up (a slot is never the
			// root — kernel roots are element nodes).
			inc.refreshUp(base.parent, base.nodes-oldNodes, base.bytes-oldBytes, true)
		} else {
			inc.root = inc.build(t, nil)
		}
		inc.finishEdit()
		return nil
	}
	v, err := nodeAt(base, path)
	if err != nil {
		return err
	}
	parent := v.parent
	fresh := inc.build(t, parent)
	fresh.idx = v.idx
	parent.kids[v.idx] = fresh
	// If the replacement contributes the same symbol and witness set as
	// the node it replaced, no ancestor's content word changed: the
	// chain is pure aggregate arithmetic.
	same := fresh.lid == v.lid && int32sEqual(fresh.wits, v.wits)
	inc.refreshUp(parent, fresh.nodes-v.nodes, fresh.bytes-v.bytes, !same)
	inc.finishEdit()
	return nil
}

// Insert inserts t below fn's surface: path names the new node — its
// parent's path plus the insertion index (0..len(children)).
func (inc *Incremental) Insert(fn string, path []int, t *xmltree.Tree) error {
	if len(path) == 0 {
		return fmt.Errorf("stream: insert path must name the new node")
	}
	base, err := inc.base(fn)
	if err != nil {
		return err
	}
	parent, err := nodeAt(base, path[:len(path)-1])
	if err != nil {
		return err
	}
	i := path[len(path)-1]
	if i < 0 || i > len(parent.kids) {
		return fmt.Errorf("stream: insert index %d out of range (parent has %d children)", i, len(parent.kids))
	}
	inc.beginEdit()
	fresh := inc.build(t, parent)
	parent.kids = append(parent.kids, nil)
	copy(parent.kids[i+1:], parent.kids[i:])
	parent.kids[i] = fresh
	reindex(parent, i)
	inc.refreshUp(parent, fresh.nodes, fresh.bytes, true)
	inc.finishEdit()
	return nil
}

// Delete removes the subtree at path below fn's surface.
func (inc *Incremental) Delete(fn string, path []int) error {
	if len(path) == 0 {
		return fmt.Errorf("stream: cannot delete the edit surface itself")
	}
	base, err := inc.base(fn)
	if err != nil {
		return err
	}
	v, err := nodeAt(base, path)
	if err != nil {
		return err
	}
	inc.beginEdit()
	parent := v.parent
	parent.kids = append(parent.kids[:v.idx], parent.kids[v.idx+1:]...)
	reindex(parent, v.idx)
	inc.refreshUp(parent, -v.nodes, -v.bytes, true)
	inc.finishEdit()
	return nil
}

// Tree materializes the current document — in kernel mode, the
// extension with every slot's forest spliced in place.
func (inc *Incremental) Tree() *xmltree.Tree {
	var rec func(n *incNode) []*xmltree.Tree
	rec = func(n *incNode) []*xmltree.Tree {
		if n.slot {
			var forest []*xmltree.Tree
			for _, c := range n.kids {
				forest = append(forest, rec(c)...)
			}
			return forest
		}
		t := &xmltree.Tree{Label: n.label}
		for _, c := range n.kids {
			t.Children = append(t.Children, rec(c)...)
		}
		return []*xmltree.Tree{t}
	}
	return rec(inc.root)[0]
}

// Fragment materializes one docking point's fragment document (the
// slot's forest under its remembered root label).
func (inc *Incremental) Fragment(fn string) (*xmltree.Tree, error) {
	slot, ok := inc.slots[fn]
	if !ok {
		return nil, fmt.Errorf("stream: no docking point %s", fn)
	}
	t := &xmltree.Tree{Label: slot.label}
	for _, c := range slot.kids {
		var rec func(n *incNode) *xmltree.Tree
		rec = func(n *incNode) *xmltree.Tree {
			out := &xmltree.Tree{Label: n.label}
			for _, k := range n.kids {
				out.Children = append(out.Children, rec(k))
			}
			return out
		}
		t.Children = append(t.Children, rec(c))
	}
	return t, nil
}
