package stream

import (
	"bytes"
	"fmt"
)

// feedState is the tokenizer position of a Feeder. A Feeder must be
// resumable at *any* byte boundary — network chunks do not align with
// markup — so every multi-byte construct ("-->", "]]>", "?>", tag names,
// the "<![CDATA[" discriminator) carries its progress in the Feeder
// rather than on the stack.
type feedState uint8

const (
	fsText          feedState = iota // between markup
	fsLT                             // '<' seen, kind undecided
	fsStartName                      // inside a start-tag name
	fsStartTag                       // inside a start tag, past the name
	fsStartTagQuote                  // inside a quoted attribute value
	fsStartTagSlash                  // '/' seen, expecting '>' (self-closing)
	fsEndName                        // inside an end-tag name
	fsEndTag                         // past an end-tag name, expecting '>'
	fsBang                           // "<!" seen: comment, CDATA or DOCTYPE
	fsComment                        // inside <!-- ... -->
	fsCDATA                          // inside <![CDATA[ ... ]]>
	fsDoctype                        // inside <!DOCTYPE ... > (bracket-aware)
	fsPI                             // inside <? ... ?>
)

// Feeder is the push-parser front-end of the streaming engine: it accepts
// the bytes of one XML document in arbitrary chunks, as they arrive from
// a network or pipe, and forwards the structural events to a Handler.
// Unlike the io.Reader front-ends it never blocks waiting for input — the
// caller is in control of when bytes exist — which is what lets the p2p
// wire deliver fragments frame by frame and reject them mid-transfer.
//
// Memory is O(chunk + depth): the tokenizer holds one partial tag name
// (plus the open-element stack for end-tag matching); chunks are never
// retained across Feed calls. Character data, attributes, comments,
// CDATA sections, processing instructions and DOCTYPE declarations are
// scanned and dropped, matching the paper's structural abstraction and
// the encoding/xml front-end's event stream on everything structural:
// element labels (namespace prefixes stripped), end-tag matching (raw
// names, prefix included), root-count and balance errors. Lexical
// strictness is the one deliberate divergence — attribute syntax and
// comment/name minutiae are tolerated rather than validated, since the
// validator's verdict never depends on them.
//
// Feed returns a non-nil error as soon as the prefix consumed so far is
// malformed or the handler rejects an event; the error is sticky. Close
// finalizes the verdict (truncation, unterminated elements, empty input)
// and, for feeders bound to a Machine, the validation verdict itself.
type Feeder struct {
	h    Handler
	skip int // nesting levels whose events are suppressed (1 = fragment root)

	err      error
	closed   bool
	closeErr error
	onClose  func(error) error

	state       feedState
	pendingText bool                 // a text run continues past a chunk boundary
	name        []byte               // partial tag name / "<!" discriminator
	mark        int                  // terminator progress in comment/CDATA/PI states
	brackets    int                  // DOCTYPE internal-subset depth
	quote       byte                 // active attribute-value quote
	depth       int                  // open elements
	roots       int                  // top-level elements seen
	stack       []string             // open-element raw names, for end-tag matching
	labels      map[string]nameEntry // tag-name cache (zero-alloc lookups)
}

// NewFeeder returns a Feeder that pushes one document's events into h.
func NewFeeder(h Handler) *Feeder {
	return &Feeder{h: h}
}

// NewInnerFeeder returns a Feeder that pushes the events *inside* the
// document's root element — the forest a docking point contributes under
// extension semantics (Section 2.3) — suppressing the root's own start
// and end events. This is how the kernel peer splices a fragment arriving
// chunk by chunk into its own validation run.
func NewInnerFeeder(h Handler) *Feeder {
	return &Feeder{h: h, skip: 1}
}

// NewFeeder returns a push-validation session: feed one document's bytes
// in arbitrary chunks, then Close for the verdict. The underlying Runner
// is pooled and released by Close.
func (m *Machine) NewFeeder() *Feeder {
	r := m.NewRunner()
	f := NewFeeder(r)
	f.onClose = func(err error) error {
		defer r.Release()
		if err != nil {
			return err
		}
		return r.Finish()
	}
	return f
}

// fatal records a sticky tokenizer error.
func (f *Feeder) fatal(format string, args ...any) error {
	if f.err == nil {
		f.err = fmt.Errorf("stream: "+format, args...)
	}
	return f.err
}

// Err returns the sticky error, if any.
func (f *Feeder) Err() error { return f.err }

// Depth returns the number of currently open elements.
func (f *Feeder) Depth() int { return f.depth }

// nameEntry is the cached form of one tag name: the raw spelling (used
// for end-tag matching, prefix included, exactly as encoding/xml matches
// full names) and the label forwarded to the handler (the part after a
// namespace prefix, encoding/xml's Name.Local).
type nameEntry struct {
	raw   string
	label string
}

// lookup resolves a raw tag name, allocation-free after the first
// occurrence of each distinct spelling.
func (f *Feeder) lookup(raw []byte) nameEntry {
	if e, ok := f.labels[string(raw)]; ok {
		return e
	}
	if f.labels == nil {
		f.labels = make(map[string]nameEntry, 8)
	}
	r := string(raw)
	e := nameEntry{raw: r, label: r}
	if i := bytes.IndexByte(raw, ':'); i >= 0 {
		e.label = r[i+1:]
	}
	f.labels[r] = e
	return e
}

func (f *Feeder) open(e nameEntry) error {
	if f.depth == 0 {
		if f.roots > 0 {
			return f.fatal("multiple roots")
		}
		f.roots++
	}
	if f.depth >= f.skip {
		if err := f.h.StartElement(e.label); err != nil {
			f.err = err
			return err
		}
	}
	f.stack = append(f.stack, e.raw)
	f.depth++
	return nil
}

func (f *Feeder) close(e nameEntry) error {
	if f.depth == 0 {
		return f.fatal("unbalanced end tag </%s>", e.raw)
	}
	top := f.stack[len(f.stack)-1]
	if e.raw != top {
		return f.fatal("mismatched end tag: </%s> closes <%s>", e.raw, top)
	}
	f.stack = f.stack[:len(f.stack)-1]
	f.depth--
	if f.depth >= f.skip {
		if err := f.h.EndElement(); err != nil {
			f.err = err
			return err
		}
	}
	return nil
}

func (f *Feeder) text() error {
	if f.depth >= f.skip {
		if err := f.h.Text(); err != nil {
			f.err = err
			return err
		}
	}
	return nil
}

// nameStart reports whether c can begin a tag name. Liberal by design
// (any non-ASCII byte is accepted, as the middle of a UTF-8 rune): the
// validator cares about structure, not lexical niceties, and unknown
// labels are rejected by the schema anyway.
func nameStart(c byte) bool {
	return c == '_' || c >= 0x80 ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

// nameByte reports whether c can continue a tag name.
func nameByte(c byte) bool {
	return nameStart(c) || c == ':' || c == '-' || c == '.' ||
		('0' <= c && c <= '9')
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

// cdataOpen is the "<![CDATA[" discriminator past the "<!".
const cdataOpen = "[CDATA["

// Feed consumes the next chunk of the document. It may be called with
// chunks of any size, down to a single byte; tokenizer state carries
// across calls. The chunk is fully processed before Feed returns and is
// never retained.
func (f *Feeder) Feed(p []byte) error {
	if f.err != nil {
		return f.err
	}
	if f.closed {
		return f.fatal("Feed after Close")
	}
	i, n := 0, len(p)
	for i < n {
		switch f.state {
		case fsText:
			j := bytes.IndexByte(p[i:], '<')
			if j < 0 {
				// The run may continue in the next chunk: defer the
				// event so a contiguous text run is one Text call no
				// matter how the chunks split it.
				f.pendingText = true
				i = n
				break
			}
			if j > 0 || f.pendingText {
				f.pendingText = false
				if err := f.text(); err != nil {
					return err
				}
			}
			i += j + 1
			f.state = fsLT

		case fsLT:
			c := p[i]
			i++
			switch {
			case c == '/':
				f.state = fsEndName
				f.name = f.name[:0]
			case c == '!':
				f.state = fsBang
				f.name = f.name[:0]
			case c == '?':
				f.state = fsPI
				f.mark = 0
			case nameStart(c):
				f.state = fsStartName
				f.name = append(f.name[:0], c)
			default:
				return f.fatal("malformed markup: '<' followed by %q", c)
			}

		case fsStartName:
			for i < n && nameByte(p[i]) {
				f.name = append(f.name, p[i])
				i++
			}
			if i == n {
				break
			}
			c := p[i]
			i++
			switch {
			case c == '>':
				if err := f.open(f.lookup(f.name)); err != nil {
					return err
				}
				f.state = fsText
			case c == '/':
				f.state = fsStartTagSlash
			case isSpace(c):
				f.state = fsStartTag
			default:
				return f.fatal("malformed start tag <%s%c", f.name, c)
			}

		case fsStartTag:
			// Scanning attributes for '>', '/' or a quote. Attribute
			// syntax is deliberately not validated (the structural
			// abstraction drops attributes entirely; unquoted values
			// are tolerated where encoding/xml rejects them) — but a
			// '<' here is always a missing-'>' typo, and swallowing it
			// would silently eat the next tag.
			c := p[i]
			i++
			switch c {
			case '>':
				if err := f.open(f.lookup(f.name)); err != nil {
					return err
				}
				f.state = fsText
			case '/':
				f.state = fsStartTagSlash
			case '"', '\'':
				f.quote = c
				f.state = fsStartTagQuote
			case '<':
				return f.fatal("'<' inside start tag <%s", f.name)
			}

		case fsStartTagQuote:
			j := bytes.IndexByte(p[i:], f.quote)
			if j < 0 {
				i = n
				break
			}
			i += j + 1
			f.state = fsStartTag

		case fsStartTagSlash:
			c := p[i]
			i++
			if c != '>' {
				return f.fatal("malformed self-closing tag <%s/%c", f.name, c)
			}
			e := f.lookup(f.name)
			if err := f.open(e); err != nil {
				return err
			}
			if err := f.close(e); err != nil {
				return err
			}
			f.state = fsText

		case fsEndName:
			for i < n && nameByte(p[i]) {
				f.name = append(f.name, p[i])
				i++
			}
			if i == n {
				break
			}
			c := p[i]
			i++
			switch {
			case c == '>':
				if err := f.close(f.lookup(f.name)); err != nil {
					return err
				}
				f.state = fsText
			case isSpace(c) && len(f.name) > 0:
				f.state = fsEndTag
			default:
				return f.fatal("malformed end tag </%s%c", f.name, c)
			}

		case fsEndTag: // whitespace before '>' in an end tag
			c := p[i]
			i++
			switch {
			case c == '>':
				if err := f.close(f.lookup(f.name)); err != nil {
					return err
				}
				f.state = fsText
			case isSpace(c):
			default:
				return f.fatal("malformed end tag </%s %c", f.name, c)
			}

		case fsBang: // decide comment vs CDATA vs DOCTYPE-like
			c := p[i]
			i++
			f.name = append(f.name, c)
			switch {
			case len(f.name) <= 2 && f.name[0] == '-':
				if len(f.name) == 2 {
					if f.name[1] != '-' {
						return f.fatal("malformed comment open <!-%c", f.name[1])
					}
					f.state = fsComment
					f.mark = 0
				}
			case len(f.name) <= len(cdataOpen) &&
				string(f.name) == cdataOpen[:len(f.name)]:
				if len(f.name) == len(cdataOpen) {
					f.state = fsCDATA
					f.mark = 0
				}
			default:
				// A declaration (DOCTYPE and friends): scan to its '>',
				// honouring an internal subset's [...] brackets and
				// quoted literals. Replay the few bytes already
				// buffered through the same rule.
				f.state = fsDoctype
				f.brackets = 0
				f.quote = 0
				for _, b := range f.name {
					if done := f.doctypeByte(b); done {
						break
					}
				}
			}

		case fsDoctype:
			c := p[i]
			i++
			f.doctypeByte(c)

		case fsComment:
			// Terminator "-->"; mark counts matched terminator bytes.
			c := p[i]
			i++
			switch {
			case f.mark == 2 && c == '>':
				f.state = fsText
			case c == '-':
				if f.mark < 2 {
					f.mark++
				}
			default:
				f.mark = 0
			}

		case fsCDATA:
			// Terminator "]]>"; the section's bytes are character data.
			c := p[i]
			i++
			switch {
			case f.mark == 2 && c == '>':
				if err := f.text(); err != nil {
					return err
				}
				f.state = fsText
			case c == ']':
				if f.mark < 2 {
					f.mark++
				}
			default:
				f.mark = 0
			}

		case fsPI:
			// Terminator "?>".
			c := p[i]
			i++
			switch {
			case f.mark == 1 && c == '>':
				f.state = fsText
			case c == '?':
				f.mark = 1
			default:
				f.mark = 0
			}
		}
	}
	return f.err
}

// doctypeByte advances the declaration scanner by one byte, reporting
// whether the declaration ended. Quoted literals (system/public IDs,
// entity values) are opaque: brackets and '>' inside them do not count.
func (f *Feeder) doctypeByte(c byte) (done bool) {
	if f.quote != 0 {
		if c == f.quote {
			f.quote = 0
		}
		return false
	}
	switch c {
	case '"', '\'':
		f.quote = c
	case '[':
		f.brackets++
	case ']':
		if f.brackets > 0 {
			f.brackets--
		}
	case '>':
		if f.brackets == 0 {
			f.state = fsText
			return true
		}
	}
	return false
}

// Close declares end of input and returns the final verdict: the sticky
// error if any, a well-formedness error if the document is truncated,
// unterminated or empty, and otherwise — for feeders bound to a Machine —
// the validation verdict. Close is idempotent.
func (f *Feeder) Close() error {
	if f.closed {
		return f.closeErr
	}
	f.closed = true
	if f.err == nil && f.pendingText {
		// A text run ending at EOF still owes its event.
		f.pendingText = false
		f.text()
	}
	err := f.err
	switch {
	case err != nil:
	case f.state != fsText:
		err = fmt.Errorf("stream: truncated document (unterminated markup)")
	case f.depth != 0:
		err = fmt.Errorf("stream: unterminated elements (%d open)", f.depth)
	case f.roots == 0 && f.skip > 0:
		err = fmt.Errorf("stream: empty fragment document")
	case f.roots == 0:
		err = fmt.Errorf("stream: empty document")
	}
	if f.onClose != nil {
		err = f.onClose(err)
	}
	f.closeErr = err
	return err
}
