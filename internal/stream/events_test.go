package stream

import (
	"testing"

	"dxml/internal/schema"
)

// TestRunnerEvents pins the telemetry event counter: one count per
// parse event, reset when the runner returns to the pool.
func TestRunnerEvents(t *testing.T) {
	d, err := schema.ParseDTD(schema.KindNRE, `
		root r
		r -> a*`)
	if err != nil {
		t.Fatal(err)
	}
	m := Compile(d.ToEDTD())
	r := m.NewRunner()
	defer r.Release()
	// <r><a/><a/></r> = 3 opens + 3 closes.
	for _, ev := range []string{"r", "a", "", "a", ""} {
		var err error
		if ev != "" {
			err = r.StartElement(ev)
		} else {
			err = r.EndElement()
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := r.EndElement(); err != nil {
		t.Fatal(err)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	if got := r.Events(); got != 6 {
		t.Fatalf("Events() = %d, want 6", got)
	}
	r.Release()
	r2 := m.NewRunner()
	if got := r2.Events(); got != 0 {
		t.Fatalf("pooled runner did not reset events: %d", got)
	}
	r2.Release()
}
