package stream

import (
	"fmt"

	"dxml/internal/axml"
	"dxml/internal/xmltree"
)

// StreamKernel feeds h the events of the kernel document's extension
// extT(t1,…,tn) without materializing it: element nodes of the kernel
// stream as themselves, and at each docking point fi the walk pauses and
// hands control to fragment, which must inject the events of the forest
// replacing fi (typically via StreamXMLInner over a received fragment, or
// xmltree.Tree.EmitChildEvents over a local one). This is how the kernel
// peer validates the whole distributed document in one pass, with memory
// proportional to its depth, never calling Kernel.Extend.
func StreamKernel(k *axml.Kernel, h Handler, fragment func(fn string, h Handler) error) error {
	var rec func(n *xmltree.Tree) error
	rec = func(n *xmltree.Tree) error {
		if k.IsFunc(n.Label) {
			if err := fragment(n.Label, h); err != nil {
				return fmt.Errorf("at docking point %s: %w", n.Label, err)
			}
			return nil
		}
		if err := h.StartElement(n.Label); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := rec(c); err != nil {
				return err
			}
		}
		return h.EndElement()
	}
	return rec(k.Tree())
}
