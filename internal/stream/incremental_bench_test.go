package stream

import (
	"fmt"
	"testing"

	"dxml/internal/schema"
	"dxml/internal/xmltree"
)

// The incremental-revalidation bench family (published as BENCH_pr5):
// on a ~10⁵-node single-type document, replace subtrees of growing size
// and compare the maintained-verdict update against from-scratch
// streaming validation. The crossover (if any) is recorded in
// EXPERIMENTS.md.

// flatSec builds a secB-shaped replacement (sec over p leaves) with
// the requested node count.
func flatSec(nodes int) *xmltree.Tree {
	sec := &xmltree.Tree{Label: "sec"}
	for sec.Size() < nodes {
		sec.Children = append(sec.Children, xmltree.Leaf("p"))
	}
	return sec
}

// nestedSec builds a secA-shaped replacement (sec over secB sections)
// with roughly the requested node count.
func nestedSec(nodes int) *xmltree.Tree {
	sec := &xmltree.Tree{Label: "sec"}
	for sec.Size() < nodes {
		sec.Children = append(sec.Children, flatSec(min(100, nodes-sec.Size())))
	}
	return sec
}

func BenchmarkIncrementalEdit(b *testing.B) {
	m := Compile(recursiveSDTD(b, schema.KindNRE))
	doc := bigSingleTypeDoc(100_000)
	inc := m.NewIncremental(doc)
	if !inc.Valid() {
		b.Fatal("fixture invalid")
	}
	last := len(doc.Children) - 1
	cases := []struct {
		name    string
		path    []int
		payload *xmltree.Tree
	}{
		{"edit=1", []int{last, 0, 3}, xmltree.Leaf("p")},
		{"edit=100", []int{last, 0}, flatSec(100)},
		{"edit=1000", []int{last}, nestedSec(1000)},
		{"edit=10000", []int{last}, nestedSec(10_000)},
	}
	for _, c := range cases {
		b.Run(fmt.Sprintf("n=100000/%s", c.name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := inc.Replace("", c.path, c.payload); err != nil {
					b.Fatal(err)
				}
			}
			if !inc.Valid() {
				b.Fatal("bench edit flipped the verdict")
			}
			reval, skipped := inc.LastRecheck()
			b.ReportMetric(float64(reval), "revalB/op")
			b.ReportMetric(float64(skipped), "skipB/op")
		})
	}
}

// BenchmarkFullRevalidate is the from-scratch baseline the incremental
// path is measured against: one streaming pass over the same document.
func BenchmarkFullRevalidate(b *testing.B) {
	m := Compile(recursiveSDTD(b, schema.KindNRE))
	doc := bigSingleTypeDoc(100_000)
	b.Run("n=100000", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := m.ValidateTree(doc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIncrementalBuild prices the one-time cost of building the
// checkpointed result tree (paid once per live session, amortized over
// every subsequent edit).
func BenchmarkIncrementalBuild(b *testing.B) {
	m := Compile(recursiveSDTD(b, schema.KindNRE))
	doc := bigSingleTypeDoc(100_000)
	b.Run("n=100000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			inc := m.NewIncremental(doc)
			if !inc.Valid() {
				b.Fatal("fixture invalid")
			}
		}
	})
}
