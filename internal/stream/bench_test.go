package stream

import (
	"fmt"
	"testing"

	"dxml/internal/schema"
	"dxml/internal/xmltree"
)

// BenchmarkGeneralEDTDPath exercises the subset-tracking slow path (the
// single-type fast path is covered by the root-level scaling benchmarks).
func BenchmarkGeneralEDTDPath(b *testing.B) {
	e, err := schema.ParseEDTD(schema.KindNRE, `
		root s
		s -> a1+ | a2+
		a1 : a -> b*
		a2 : a -> c*`)
	if err != nil {
		b.Fatal(err)
	}
	m := Compile(e)
	if m.SingleType() {
		b.Fatal("fixture should be general")
	}
	doc := xmltree.MustParse("s")
	for i := 0; i < 200; i++ {
		doc.Children = append(doc.Children, xmltree.MustParse("a(b b b)"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.ValidateTree(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// eurostatDocBytes serializes a valid eurostat document of roughly the
// requested node count (each nationalIndex subtree adds 6 nodes).
func eurostatDocBytes(nodes int) []byte {
	doc := xmltree.MustParse("eurostat(averages(Good index(value year)))")
	ni := xmltree.MustParse("nationalIndex(country Good index(value year))")
	for n := doc.Size(); n < nodes; n += 6 {
		doc.Children = append(doc.Children, ni)
	}
	return []byte(doc.XMLString())
}

// BenchmarkFeederChunkSize sweeps the frame budget over a fixed ~10^5
// node document: the allocation profile must not depend on the chunk
// size, and throughput should be flat once chunks amortize the per-call
// overhead (the memory/throughput trade-off documented in the ROADMAP).
func BenchmarkFeederChunkSize(b *testing.B) {
	m := Compile(eurostatEDTD(b, schema.KindNRE))
	src := eurostatDocBytes(100_000)
	for _, chunk := range []int{16, 256, 4096, 65536, len(src)} {
		b.Run(fmt.Sprintf("chunk=%d", chunk), func(b *testing.B) {
			b.SetBytes(int64(len(src)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f := m.NewFeeder()
				for off := 0; off < len(src); off += chunk {
					end := min(off+chunk, len(src))
					if err := f.Feed(src[off:end]); err != nil {
						b.Fatal(err)
					}
				}
				if err := f.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFeederScaling feeds documents of 10^4–10^6 nodes at a fixed
// 4 KiB budget: B/op staying flat as the document grows 100× is the
// O(chunk + depth) peer-memory bound of the acceptance criterion —
// nothing about the validator's footprint scales with fragment size.
func BenchmarkFeederScaling(b *testing.B) {
	m := Compile(eurostatEDTD(b, schema.KindNRE))
	for _, nodes := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("n=%d", nodes), func(b *testing.B) {
			src := eurostatDocBytes(nodes)
			b.SetBytes(int64(len(src)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f := m.NewFeeder()
				for off := 0; off < len(src); off += 4096 {
					end := min(off+4096, len(src))
					if err := f.Feed(src[off:end]); err != nil {
						b.Fatal(err)
					}
				}
				if err := f.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
