package stream

import (
	"testing"

	"dxml/internal/schema"
	"dxml/internal/xmltree"
)

// BenchmarkGeneralEDTDPath exercises the subset-tracking slow path (the
// single-type fast path is covered by the root-level scaling benchmarks).
func BenchmarkGeneralEDTDPath(b *testing.B) {
	e, err := schema.ParseEDTD(schema.KindNRE, `
		root s
		s -> a1+ | a2+
		a1 : a -> b*
		a2 : a -> c*`)
	if err != nil {
		b.Fatal(err)
	}
	m := Compile(e)
	if m.SingleType() {
		b.Fatal("fixture should be general")
	}
	doc := xmltree.MustParse("s")
	for i := 0; i < 200; i++ {
		doc.Children = append(doc.Children, xmltree.MustParse("a(b b b)"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.ValidateTree(doc); err != nil {
			b.Fatal(err)
		}
	}
}
