package stream

import (
	"math/rand"
	"testing"

	"dxml/internal/axml"
	"dxml/internal/gen"
	"dxml/internal/schema"
	"dxml/internal/xmltree"
)

// --- reference-side edit application (the from-scratch oracle's tree) ---

func refNodeAt(t *xmltree.Tree, path []int) *xmltree.Tree {
	for _, i := range path {
		t = t.Children[i]
	}
	return t
}

// refReplace returns the tree with the subtree at path replaced.
func refReplace(root *xmltree.Tree, path []int, payload *xmltree.Tree) *xmltree.Tree {
	if len(path) == 0 {
		return payload.Clone()
	}
	parent := refNodeAt(root, path[:len(path)-1])
	parent.Children[path[len(path)-1]] = payload.Clone()
	return root
}

func refInsert(root *xmltree.Tree, path []int, payload *xmltree.Tree) {
	parent := refNodeAt(root, path[:len(path)-1])
	i := path[len(path)-1]
	parent.Children = append(parent.Children, nil)
	copy(parent.Children[i+1:], parent.Children[i:])
	parent.Children[i] = payload.Clone()
}

func refDelete(root *xmltree.Tree, path []int) {
	parent := refNodeAt(root, path[:len(path)-1])
	i := path[len(path)-1]
	parent.Children = append(parent.Children[:i], parent.Children[i+1:]...)
}

// allPaths collects the index path of every node of t.
func allPaths(t *xmltree.Tree) [][]int {
	var out [][]int
	var rec func(n *xmltree.Tree, path []int)
	rec = func(n *xmltree.Tree, path []int) {
		out = append(out, append([]int(nil), path...))
		for i, c := range n.Children {
			rec(c, append(path, i))
		}
	}
	rec(t, nil)
	return out
}

// randomPayload draws an edit payload: a subtree of a fresh sampler
// document, a structural mutation of one, or a foreign leaf — so edit
// sequences cross the valid/invalid boundary in both directions.
func randomPayload(t *testing.T, r *rand.Rand, s *gen.Sampler) *xmltree.Tree {
	t.Helper()
	doc, err := s.Document()
	if err != nil {
		t.Fatal(err)
	}
	switch r.Intn(4) {
	case 0:
		paths := allPaths(doc)
		return refNodeAt(doc, paths[r.Intn(len(paths))])
	case 1:
		return mutate(r, doc)
	case 2:
		return xmltree.Leaf("zz")
	default:
		return doc
	}
}

// randomEdit applies one random edit to both the incremental result
// tree (below fn's surface) and the reference tree, returning the
// updated reference root.
func randomEdit(t *testing.T, r *rand.Rand, inc *Incremental, fn string, ref *xmltree.Tree, s *gen.Sampler) *xmltree.Tree {
	t.Helper()
	paths := allPaths(ref)
	path := paths[r.Intn(len(paths))]
	switch op := r.Intn(3); {
	case op == 1 && len(ref.Children) >= 0: // insert under a random node
		parent := refNodeAt(ref, path)
		ipath := append(append([]int(nil), path...), r.Intn(len(parent.Children)+1))
		payload := randomPayload(t, r, s)
		if err := inc.Insert(fn, ipath, payload); err != nil {
			t.Fatalf("insert %v: %v", ipath, err)
		}
		refInsert(ref, ipath, payload)
	case op == 2 && len(path) > 0: // delete a non-root node
		if err := inc.Delete(fn, path); err != nil {
			t.Fatalf("delete %v: %v", path, err)
		}
		refDelete(ref, path)
	default:
		payload := randomPayload(t, r, s)
		if err := inc.Replace(fn, path, payload); err != nil {
			t.Fatalf("replace %v: %v", path, err)
		}
		ref = refReplace(ref, path, payload)
	}
	return ref
}

// TestIncrementalPlainDifferential is the mutation-corpus pin for the
// plain-document mode: random edit sequences on sampler documents of
// the PR 2 fixtures, asserting after every edit that the maintained
// verdict equals the from-scratch Machine verdict and that the shadow
// tree tracks the reference exactly.
func TestIncrementalPlainDifferential(t *testing.T) {
	fixtures := []struct {
		name  string
		build func(testing.TB, schema.Kind) *schema.EDTD
	}{
		{"eurostat", func(tb testing.TB, k schema.Kind) *schema.EDTD { return eurostatEDTD(tb, k) }},
		{"recursive-sdtd", func(tb testing.TB, k schema.Kind) *schema.EDTD { return recursiveSDTD(tb, k) }},
		{"general-edtd", func(tb testing.TB, k schema.Kind) *schema.EDTD { return generalEDTD(tb, k) }},
	}
	rounds, editsPerRound := 12, 30
	if testing.Short() {
		rounds = 3
	}
	for _, fx := range fixtures {
		for _, kind := range schema.AllKinds {
			fx, kind := fx, kind
			t.Run(fx.name+"/"+kind.String(), func(t *testing.T) {
				t.Parallel()
				e := fx.build(t, kind)
				m := Compile(e)
				s, err := gen.New(e, int64(31*len(fx.name))+int64(kind))
				if err != nil {
					t.Fatal(err)
				}
				s.MaxDepth = 6
				r := rand.New(rand.NewSource(int64(kind)*100 + int64(len(fx.name))))
				for round := 0; round < rounds; round++ {
					ref, err := s.Document()
					if err != nil {
						t.Fatal(err)
					}
					inc := m.NewIncremental(ref)
					ref = ref.Clone()
					for step := 0; step < editsPerRound; step++ {
						ref = randomEdit(t, r, inc, "", ref, s)
						want := m.ValidateTree(ref) == nil
						if inc.Valid() != want {
							t.Fatalf("round %d step %d: incremental verdict %v, from-scratch %v, doc %s",
								round, step, inc.Valid(), want, ref)
						}
						if !inc.Tree().Equal(ref) {
							t.Fatalf("round %d step %d: shadow tree diverged:\n%s\nvs\n%s",
								round, step, inc.Tree(), ref)
						}
						if inc.NodeCount() != ref.Size() {
							t.Fatalf("round %d step %d: node count %d, want %d",
								round, step, inc.NodeCount(), ref.Size())
						}
					}
				}
			})
		}
	}
}

// kernelFixture is a two-docking-point federation over the eurostat
// global type: f0 contributes the averages block, f1 the national
// indexes.
func kernelFixture(t *testing.T, kind schema.Kind) (*axml.Kernel, *Machine, map[string]*xmltree.Tree) {
	t.Helper()
	k, err := axml.ParseKernel("eurostat(f0 f1)")
	if err != nil {
		t.Fatal(err)
	}
	m := Compile(eurostatEDTD(t, kind))
	frags := map[string]*xmltree.Tree{
		"f0": xmltree.MustParse("r0(averages(Good index(value year)))"),
		"f1": xmltree.MustParse("r1(nationalIndex(country Good value year) nationalIndex(country Good index(value year)))"),
	}
	return k, m, frags
}

// TestIncrementalKernelDifferential runs the mutation corpus through
// the kernel mode: edits land inside docking-point fragments and the
// maintained verdict must match from-scratch validation of the
// materialized extension after every edit.
func TestIncrementalKernelDifferential(t *testing.T) {
	for _, kind := range schema.AllKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			k, m, frags := kernelFixture(t, kind)
			inc, err := m.NewKernelIncremental(k, frags)
			if err != nil {
				t.Fatal(err)
			}
			if !inc.Valid() {
				t.Fatal("fixture extension should be valid")
			}
			e := eurostatEDTD(t, kind)
			s, err := gen.New(e.SubType("nationalIndex"), int64(kind)+5)
			if err != nil {
				t.Fatal(err)
			}
			s.MaxDepth = 6
			refs := map[string]*xmltree.Tree{"f0": frags["f0"].Clone(), "f1": frags["f1"].Clone()}
			r := rand.New(rand.NewSource(int64(kind) * 7))
			funcs := k.Funcs()
			for step := 0; step < 120; step++ {
				fn := funcs[r.Intn(len(funcs))]
				refs[fn] = randomEdit(t, r, inc, fn, refs[fn], s)
				ext, err := k.Extend(refs)
				if err != nil {
					t.Fatal(err)
				}
				want := m.ValidateTree(ext) == nil
				if inc.Valid() != want {
					t.Fatalf("step %d (%s): incremental verdict %v, from-scratch %v\nextension %s",
						step, fn, inc.Valid(), want, ext)
				}
				if !inc.Tree().Equal(ext) {
					t.Fatalf("step %d: shadow extension diverged:\n%s\nvs\n%s", step, inc.Tree(), ext)
				}
				frag, err := inc.Fragment(fn)
				if err != nil {
					t.Fatal(err)
				}
				if !frag.Equal(refs[fn]) {
					t.Fatalf("step %d: fragment %s diverged", step, fn)
				}
				if inc.NodeCount() != ext.Size() {
					t.Fatalf("step %d: node count %d, extension has %d", step, inc.NodeCount(), ext.Size())
				}
			}
		})
	}
}

// bigSingleTypeDoc builds a valid recursive-sdtd document with about
// n nodes: doc(front(p…) secA(secB(p…)…)…).
func bigSingleTypeDoc(n int) *xmltree.Tree {
	front := &xmltree.Tree{Label: "part"}
	for i := 0; i < 20; i++ {
		front.Children = append(front.Children, xmltree.Leaf("p"))
	}
	doc := xmltree.New("doc", front)
	nodes := front.Size() + 1
	for nodes < n {
		secA := &xmltree.Tree{Label: "sec"}
		for b := 0; b < 10 && nodes+secA.Size() < n; b++ {
			secB := &xmltree.Tree{Label: "sec"}
			for p := 0; p < 100; p++ {
				secB.Children = append(secB.Children, xmltree.Leaf("p"))
			}
			secA.Children = append(secA.Children, secB)
		}
		doc.Children = append(doc.Children, secA)
		nodes += secA.Size()
	}
	return doc
}

// TestIncrementalLocality is the deterministic half of the acceptance
// criterion: on a ~10⁵-node fragment, a single-leaf edit must recheck
// at most 1% of the document (measured in the revalidator's own byte
// accounting, which upper-bounds the work it did).
func TestIncrementalLocality(t *testing.T) {
	e := recursiveSDTD(t, schema.KindNRE)
	m := Compile(e)
	doc := bigSingleTypeDoc(100_000)
	if err := m.ValidateTree(doc); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	inc := m.NewIncremental(doc)
	if !inc.Valid() {
		t.Fatal("incremental disagrees on the fixture")
	}
	total := inc.TotalBytes()
	// A leaf replace deep in the last section.
	last := len(doc.Children) - 1
	if err := inc.Replace("", []int{last, 0, 3}, xmltree.Leaf("p")); err != nil {
		t.Fatal(err)
	}
	reval, skipped := inc.LastRecheck()
	if !inc.Valid() {
		t.Fatal("leaf replace flipped the verdict")
	}
	if reval*100 > total {
		t.Fatalf("leaf edit rechecked %d of %d bytes (> 1%%)", reval, total)
	}
	if reval+skipped != total {
		t.Fatalf("accounting mismatch: %d + %d != %d", reval, skipped, total)
	}
	// An invalidating edit is detected with the same locality…
	if err := inc.Replace("", []int{last, 0, 3}, xmltree.Leaf("zz")); err != nil {
		t.Fatal(err)
	}
	if inc.Valid() {
		t.Fatal("foreign leaf not detected")
	}
	if reval, _ := inc.LastRecheck(); reval*100 > inc.TotalBytes() {
		t.Fatalf("invalidating edit rechecked %d bytes (> 1%%)", reval)
	}
	// …and repairing it restores the verdict.
	if err := inc.Replace("", []int{last, 0, 3}, xmltree.Leaf("p")); err != nil {
		t.Fatal(err)
	}
	if !inc.Valid() {
		t.Fatal("repair not detected")
	}
}

// TestIncrementalWholeFragmentReplaceAggregates pins the slot-replace
// aggregate accounting: replacing a whole fragment (empty path) with a
// bigger one and back must restore the exact node and byte totals — an
// earlier version applied the delta twice at the slot, corrupting
// every later Revalidated/Skipped split.
func TestIncrementalWholeFragmentReplaceAggregates(t *testing.T) {
	k, m, frags := kernelFixture(t, schema.KindNRE)
	inc, err := m.NewKernelIncremental(k, frags)
	if err != nil {
		t.Fatal(err)
	}
	wantNodes, wantBytes := inc.NodeCount(), inc.TotalBytes()
	bigger := xmltree.MustParse("r0(averages(Good index(value year) Good index(value year)) nationalIndex(country Good value year))")
	if err := inc.Replace("f0", nil, bigger); err != nil {
		t.Fatal(err)
	}
	if err := inc.Replace("f0", nil, frags["f0"]); err != nil {
		t.Fatal(err)
	}
	if inc.NodeCount() != wantNodes || inc.TotalBytes() != wantBytes {
		t.Fatalf("round-trip whole-fragment replace: %d nodes / %d bytes, want %d / %d",
			inc.NodeCount(), inc.TotalBytes(), wantNodes, wantBytes)
	}
	if !inc.Valid() {
		t.Fatal("verdict lost across whole-fragment replaces")
	}
	fresh, err := m.NewKernelIncremental(k, frags)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.NodeCount() != inc.NodeCount() || fresh.TotalBytes() != inc.TotalBytes() {
		t.Fatalf("aggregates diverge from a fresh build: %d/%d vs %d/%d",
			inc.NodeCount(), inc.TotalBytes(), fresh.NodeCount(), fresh.TotalBytes())
	}
}

func TestIncrementalErrors(t *testing.T) {
	m := Compile(eurostatEDTD(t, schema.KindNRE))
	inc := m.NewIncremental(xmltree.MustParse("eurostat(averages(Good index(value year)))"))
	for name, err := range map[string]error{
		"bad path":        inc.Replace("", []int{9}, xmltree.Leaf("x")),
		"bad fn":          inc.Replace("f9", nil, xmltree.Leaf("x")),
		"root delete":     inc.Delete("", nil),
		"empty insert":    inc.Insert("", nil, xmltree.Leaf("x")),
		"bad insert idx":  inc.Insert("", []int{0, 99}, xmltree.Leaf("x")),
		"bad delete path": inc.Delete("", []int{3}),
	} {
		if err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
	// Failed edits must not corrupt the verdict.
	if !inc.Valid() {
		t.Fatal("failed edits flipped the verdict")
	}
	k := axml.MustParseKernel("eurostat(f0 f1)")
	kinc, err := m.NewKernelIncremental(k, map[string]*xmltree.Tree{
		"f0": xmltree.MustParse("r0(averages(Good index(value year)))"),
		"f1": xmltree.MustParse("r1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := kinc.Replace("", nil, xmltree.Leaf("x")); err == nil {
		t.Error("kernel incremental accepted an edit without a docking point")
	}
	if _, err := m.NewKernelIncremental(k, map[string]*xmltree.Tree{"f0": xmltree.MustParse("r0")}); err == nil {
		t.Error("missing fragment not rejected")
	}
}
