package stream

import (
	"fmt"
	"strings"

	"dxml/internal/strlang"
)

// stFrame is one open element on the single-type fast path: its forced
// witness and the running state of its content DFA.
type stFrame struct {
	name  int32 // machine-local index of the witness
	lid   int32 // interned element-label id (for error paths)
	state int32 // current content-DFA state
}

// genFrame is one open element of the general-EDTD subset tracker: per
// candidate specialization, the NFA state set of its content run over the
// children consumed so far. runs[i] == nil marks a dead candidate.
//
// A run set is either the machine's shared (read-only) start closure —
// before the element's first child closes — or the frame-owned scratch
// set of its slot. The scratch sets form a per-frame arena: they are
// cleared and refilled in place as children close and survive frame
// reuse, so the slow path performs no per-child heap allocation once the
// runner has warmed to the document's depth and candidate width.
type genFrame struct {
	lid     int32
	cands   []int32
	runs    []strlang.IntSet
	scratch []strlang.IntSet
}

// Runner consumes one document's events and accumulates a verdict. The
// zero value is not usable; obtain Runners from Machine.NewRunner and
// return them with Release. A Runner is not safe for concurrent use; the
// point of pooling is that many goroutines each hold their own Runner
// over one shared Machine.
type Runner struct {
	m      *Machine
	err    error
	done   bool  // the root element has closed
	events int64 // parse events consumed since the last reset

	st   []stFrame
	gst  []genFrame
	surv []int32        // scratch: surviving child names at EndElement
	tmp  strlang.IntSet // scratch: stepped state set under construction
}

func (r *Runner) reset() {
	r.err = nil
	r.done = false
	r.events = 0
	r.st = r.st[:0]
	r.gst = r.gst[:0]
}

// Release resets the runner and returns it to its machine's pool.
func (r *Runner) Release() {
	r.reset()
	r.m.pool.Put(r)
}

// Depth returns the number of currently open elements.
func (r *Runner) Depth() int {
	if r.m.singleType {
		return len(r.st)
	}
	return len(r.gst)
}

// path renders the open-element path for error messages, ending with
// extra (when non-empty).
func (r *Runner) path(extra string) string {
	var b strings.Builder
	write := func(lid int32) {
		b.WriteByte('/')
		b.WriteString(strlang.SymbolName(lid))
	}
	if r.m.singleType {
		for _, f := range r.st {
			write(f.lid)
		}
	} else {
		for _, f := range r.gst {
			write(f.lid)
		}
	}
	if extra != "" {
		b.WriteByte('/')
		b.WriteString(extra)
	}
	if b.Len() == 0 {
		return "/"
	}
	return b.String()
}

// fail records the first validation error; it stays sticky so sources can
// stop on it and Finish reports it.
func (r *Runner) fail(format string, args ...any) error {
	if r.err == nil {
		r.err = fmt.Errorf("stream: "+format, args...)
	}
	return r.err
}

// Err returns the sticky validation error, if any.
func (r *Runner) Err() error { return r.err }

// Events returns how many parse events (element opens, closes, text)
// this runner has consumed since it was obtained or last reset — the
// denominator for events/sec telemetry.
func (r *Runner) Events() int64 { return r.events }

// StartElement consumes an element-open event.
func (r *Runner) StartElement(label string) error {
	r.events++
	if r.err != nil {
		return r.err
	}
	if r.done {
		return r.fail("unexpected second root <%s>", label)
	}
	lid, known := strlang.LookupSymID(label)
	if r.m.singleType {
		return r.startSingle(label, lid, known)
	}
	return r.startGeneral(label, lid, known)
}

func (r *Runner) startSingle(label string, lid int32, known bool) error {
	if len(r.st) == 0 {
		if !known {
			return r.fail("root <%s> matches no start", label)
		}
		name, ok := r.m.startByElem[lid]
		if !ok {
			return r.fail("root <%s> matches no start", label)
		}
		r.st = append(r.st, stFrame{name: name, lid: lid, state: r.m.progs[name].start})
		return nil
	}
	top := &r.st[len(r.st)-1]
	prog := &r.m.progs[top.name]
	if !known {
		return r.fail("at %s: child <%s> not allowed under witness %s",
			r.path(""), label, r.m.names[top.name])
	}
	ref, ok := prog.child[lid]
	if !ok {
		return r.fail("at %s: child <%s> not allowed under witness %s",
			r.path(""), label, r.m.names[top.name])
	}
	next, ok := prog.dfa.NextID(int(top.state), ref.sym)
	if !ok {
		return r.fail("at %s: child <%s> violates π(%s)",
			r.path(""), label, r.m.names[top.name])
	}
	top.state = int32(next)
	r.st = append(r.st, stFrame{name: ref.name, lid: lid, state: r.m.progs[ref.name].start})
	return nil
}

func (r *Runner) startGeneral(label string, lid int32, known bool) error {
	var cands []int32
	if len(r.gst) == 0 {
		if known {
			cands = r.m.startsByElem[lid]
		}
		if len(cands) == 0 {
			return r.fail("root <%s> matches no start", label)
		}
	} else {
		if known {
			cands = r.m.specsByElem[lid]
		}
		if len(cands) == 0 {
			return r.fail("at %s: element <%s> has no specialization", r.path(""), label)
		}
	}
	// Reuse the popped frame's slices when the stack has spare capacity.
	if len(r.gst) < cap(r.gst) {
		r.gst = r.gst[:len(r.gst)+1]
	} else {
		r.gst = append(r.gst, genFrame{})
	}
	f := &r.gst[len(r.gst)-1]
	f.lid = lid
	f.cands = append(f.cands[:0], cands...)
	f.runs = f.runs[:0]
	for _, n := range cands {
		f.runs = append(f.runs, r.m.gen[n].startClos)
	}
	return nil
}

// Text consumes character data. The structural abstraction of the paper
// drops it, so it only checks well-formedness of the event order.
func (r *Runner) Text() error { r.events++; return r.err }

// EndElement consumes an element-close event.
func (r *Runner) EndElement() error {
	r.events++
	if r.err != nil {
		return r.err
	}
	if r.m.singleType {
		return r.endSingle()
	}
	return r.endGeneral()
}

func (r *Runner) endSingle() error {
	if len(r.st) == 0 {
		return r.fail("unbalanced end element")
	}
	f := r.st[len(r.st)-1]
	r.st = r.st[:len(r.st)-1]
	if !r.m.progs[f.name].dfa.IsFinal(int(f.state)) {
		return r.fail("at %s: children of <%s> form no word of π(%s)",
			r.path(strlang.SymbolName(f.lid)), strlang.SymbolName(f.lid), r.m.names[f.name])
	}
	if len(r.st) == 0 {
		r.done = true
	}
	return nil
}

func (r *Runner) endGeneral() error {
	if len(r.gst) == 0 {
		return r.fail("unbalanced end element")
	}
	f := &r.gst[len(r.gst)-1]
	// Which candidate specializations survive their content run?
	r.surv = r.surv[:0]
	for i, n := range f.cands {
		if f.runs[i] != nil && f.runs[i].Intersects(r.m.gen[n].finals) {
			r.surv = append(r.surv, n)
		}
	}
	label := strlang.SymbolName(f.lid)
	r.gst = r.gst[:len(r.gst)-1]
	if len(r.surv) == 0 {
		return r.fail("at %s: subtree of <%s> admits no witness",
			r.path(label), label)
	}
	if len(r.gst) == 0 {
		r.done = true
		return nil
	}
	// Step every live parent candidate by the set of surviving names.
	// The stepped set is built in the runner's scratch set and then
	// copied into the frame-owned slot, so no step allocates once the
	// arena has warmed up (ROADMAP's allocation-free slow path).
	parent := &r.gst[len(r.gst)-1]
	alive := false
	if r.tmp == nil {
		r.tmp = strlang.NewIntSet()
	}
	for j, pn := range parent.cands {
		if parent.runs[j] == nil {
			continue
		}
		r.tmp.Clear()
		for _, cn := range r.surv {
			r.m.gen[pn].nfa.StepIDInto(r.tmp, parent.runs[j], r.m.gen[cn].sym)
		}
		if r.tmp.Len() == 0 {
			parent.runs[j] = nil // dead candidate
			continue
		}
		for len(parent.scratch) <= j {
			parent.scratch = append(parent.scratch, strlang.NewIntSet())
		}
		parent.scratch[j].SetTo(r.tmp)
		parent.runs[j] = parent.scratch[j]
		alive = true
	}
	if !alive {
		return r.fail("at %s: child <%s> kills every candidate witness",
			r.path(""), label)
	}
	return nil
}

// Finish reports the final verdict: nil iff exactly one root element was
// seen, every element closed, and the document is in the machine's
// language.
func (r *Runner) Finish() error {
	if r.err != nil {
		return r.err
	}
	if !r.done {
		// Not sticky: the document may legitimately continue after an
		// intermediate Finish probe.
		if r.Depth() > 0 {
			return fmt.Errorf("stream: unterminated elements at %s", r.path(""))
		}
		return fmt.Errorf("stream: empty document")
	}
	return nil
}
