package stream

import (
	"strings"
	"sync"
	"testing"

	"dxml/internal/axml"
	"dxml/internal/schema"
	"dxml/internal/xmltree"
)

func eurostatEDTD(t testing.TB, kind schema.Kind) *schema.EDTD {
	t.Helper()
	d, err := schema.ParseDTD(kind, `
		root eurostat
		eurostat -> averages, nationalIndex*
		averages -> (Good, index+)+
		nationalIndex -> country, Good, (index | value, year)
		index -> value, year`)
	if err != nil {
		t.Fatal(err)
	}
	return d.ToEDTD()
}

// generalEDTD is the classic non-single-type language
// {a(b) a(b), a(c) a(c)} under root s.
func generalEDTD(t testing.TB, kind schema.Kind) *schema.EDTD {
	t.Helper()
	e, err := schema.ParseEDTD(kind, `
		root s
		s -> a1, a1 | a2, a2
		a1 : a -> b
		a2 : a -> c`)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSingleTypeVerdicts(t *testing.T) {
	m := Compile(eurostatEDTD(t, schema.KindNRE))
	if !m.SingleType() {
		t.Fatal("eurostat DTD should take the single-type fast path")
	}
	cases := []struct {
		doc   string
		valid bool
	}{
		{"eurostat(averages(Good index(value year)))", true},
		{"eurostat(averages(Good index(value year)) nationalIndex(country Good value year))", true},
		{"eurostat(averages(Good index(value year)) nationalIndex(country Good index(value year)))", true},
		{"eurostat(nationalIndex(country Good value year))", false}, // missing averages
		{"eurostat(averages(Good))", false},                         // index+ unsatisfied
		{"eurostat(averages(Good index(value)))", false},            // index missing year
		{"averages(Good index(value year))", false},                 // wrong root
		{"eurostat(averages(Good index(value year)) zz)", false},    // unknown child
	}
	for _, c := range cases {
		tree := xmltree.MustParse(c.doc)
		err := m.ValidateTree(tree)
		if (err == nil) != c.valid {
			t.Errorf("ValidateTree(%s): got %v, want valid=%v", c.doc, err, c.valid)
		}
		xerr := m.ValidateReader(strings.NewReader(tree.XMLString()))
		if (xerr == nil) != c.valid {
			t.Errorf("ValidateReader(%s): got %v, want valid=%v", c.doc, xerr, c.valid)
		}
	}
}

func TestGeneralEDTDVerdicts(t *testing.T) {
	m := Compile(generalEDTD(t, schema.KindNRE))
	if m.SingleType() {
		t.Fatal("the a1/a2 EDTD is not single-type")
	}
	cases := []struct {
		doc   string
		valid bool
	}{
		{"s(a(b) a(b))", true},
		{"s(a(c) a(c))", true},
		{"s(a(b) a(c))", false},
		{"s(a(b))", false},
		{"s(a(b) a(b) a(b))", false},
		{"s(a(d) a(d))", false},
		{"s", false},
	}
	for _, c := range cases {
		tree := xmltree.MustParse(c.doc)
		err := m.ValidateTree(tree)
		if (err == nil) != c.valid {
			t.Errorf("ValidateTree(%s): got %v, want valid=%v", c.doc, err, c.valid)
		}
		if want := generalEDTD(t, schema.KindNRE).Validate(tree) == nil; want != c.valid {
			t.Fatalf("fixture disagrees with EDTD.Validate on %s", c.doc)
		}
	}
}

func TestRunnerEventDiscipline(t *testing.T) {
	m := Compile(eurostatEDTD(t, schema.KindNRE))
	r := m.NewRunner()
	defer r.Release()
	if err := r.Finish(); err == nil {
		t.Error("empty document should fail Finish")
	}

	r2 := m.NewRunner()
	defer r2.Release()
	if err := r2.EndElement(); err == nil {
		t.Error("unbalanced end element should fail")
	}

	r3 := m.NewRunner()
	defer r3.Release()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(r3.StartElement("eurostat"))
	must(r3.Text())
	must(r3.StartElement("averages"))
	must(r3.StartElement("Good"))
	must(r3.EndElement())
	must(r3.StartElement("index"))
	must(r3.StartElement("value"))
	must(r3.EndElement())
	must(r3.StartElement("year"))
	must(r3.EndElement())
	must(r3.EndElement())
	must(r3.EndElement())
	if r3.Depth() != 1 {
		t.Errorf("Depth = %d, want 1", r3.Depth())
	}
	if err := r3.Finish(); err == nil {
		t.Error("unterminated document should fail Finish")
	}
	must(r3.EndElement())
	if err := r3.Finish(); err != nil {
		t.Errorf("complete valid document rejected: %v", err)
	}
	if err := r3.StartElement("eurostat"); err == nil {
		t.Error("second root should fail")
	}
}

func TestStreamXMLErrors(t *testing.T) {
	m := Compile(eurostatEDTD(t, schema.KindNRE))
	for _, src := range []string{
		"",
		"<eurostat>",
		"<a></b>",
		"<a/><b/>",
	} {
		if err := m.ValidateReader(strings.NewReader(src)); err == nil {
			t.Errorf("ValidateReader(%q) should fail", src)
		}
	}
	// Text, attributes, comments and PIs are structurally irrelevant.
	src := `<?xml version="1.0"?>
	<eurostat note="x"><!-- c --><averages><Good>g</Good><index><value>1</value><year>2009</year></index></averages></eurostat>`
	if err := m.ValidateReader(strings.NewReader(src)); err != nil {
		t.Errorf("decorated document rejected: %v", err)
	}
}

func TestStreamKernelMatchesExtend(t *testing.T) {
	e := eurostatEDTD(t, schema.KindNRE)
	m := Compile(e)
	kernel := axml.MustParseKernel("eurostat(f1 f2)")
	frags := map[string]*xmltree.Tree{
		"f1": xmltree.MustParse("r1(averages(Good index(value year)))"),
		"f2": xmltree.MustParse("r2(nationalIndex(country Good value year) nationalIndex(country Good index(value year)))"),
	}
	bad := map[string]*xmltree.Tree{
		"f1": frags["f1"],
		"f2": xmltree.MustParse("r2(nationalIndex(country))"),
	}
	for _, ext := range []map[string]*xmltree.Tree{frags, bad} {
		r := m.NewRunner()
		err := StreamKernel(kernel, r, func(fn string, h Handler) error {
			return ext[fn].EmitChildEvents(h.StartElement, h.EndElement)
		})
		if err == nil {
			err = r.Finish()
		}
		r.Release()
		doc := kernel.MustExtend(ext)
		want := e.Validate(doc)
		if (err == nil) != (want == nil) {
			t.Errorf("stream kernel verdict %v, Extend+Validate %v", err, want)
		}
	}
}

func TestStreamXMLInner(t *testing.T) {
	m := Compile(eurostatEDTD(t, schema.KindNRE))
	kernel := axml.MustParseKernel("eurostat(f1)")
	frag := xmltree.MustParse("r1(averages(Good index(value year)))").XMLString()
	r := m.NewRunner()
	defer r.Release()
	err := StreamKernel(kernel, r, func(fn string, h Handler) error {
		return StreamXMLInner(strings.NewReader(frag), h)
	})
	if err == nil {
		err = r.Finish()
	}
	if err != nil {
		t.Errorf("streamed fragment federation rejected: %v", err)
	}
}

// TestConcurrentRunners exercises the sync.Pool path under the race
// detector: many goroutines validate through one shared machine.
func TestConcurrentRunners(t *testing.T) {
	for _, e := range []*schema.EDTD{eurostatEDTD(t, schema.KindNRE), generalEDTD(t, schema.KindNRE)} {
		m := Compile(e)
		valid := xmltree.MustParse("eurostat(averages(Good index(value year)))")
		invalid := xmltree.MustParse("eurostat(zz)")
		if !m.SingleType() {
			valid = xmltree.MustParse("s(a(b) a(b))")
			invalid = xmltree.MustParse("s(a(b) a(c))")
		}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					if err := m.ValidateTree(valid); err != nil {
						t.Errorf("valid doc rejected: %v", err)
						return
					}
					if err := m.ValidateTree(invalid); err == nil {
						t.Error("invalid doc accepted")
						return
					}
				}
			}()
		}
		wg.Wait()
	}
}
