package p2p

import (
	"context"
	"fmt"
	"testing"
	"time"

	"dxml/internal/xmltree"
)

// BenchmarkLiveEditRoundTrip prices one end-to-end live edit on the
// in-process wire: publish at the editor, ship the delta, apply it to
// the replica, revalidate incrementally, emit the update. The wire
// metric is the acceptance criterion's O(edit + depth) byte bound;
// compare against re-shipping the fragment (frag B) to see the delta
// win grow with fragment size.
func BenchmarkLiveEditRoundTrip(b *testing.B) {
	for _, entries := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("entries=%d", entries), func(b *testing.B) {
			n, typing := eurostatSetup(b)
			attachValidDocs(b, n, typing, []int{entries, 2, 1})
			for _, fn := range n.Kernel.Funcs() {
				if _, err := n.AttachEditor(fn); err != nil {
					b.Fatal(err)
				}
			}
			lv, err := n.OpenLive(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			defer lv.Close()
			ed := n.Peers["f1"].Live
			fragBytes := ed.Tree().XMLSize()
			payload := xmltree.MustParse("nationalIndex(country Good index(value year))")
			b.ResetTimer()
			var wire int
			for i := 0; i < b.N; i++ {
				if _, err := ed.ReplaceSubtree([]int{entries / 2}, payload); err != nil {
					b.Fatal(err)
				}
				up := <-lv.Updates()
				if up.Err != nil || !up.Valid {
					b.Fatalf("edit rejected: %+v", up)
				}
				wire = up.WireBytes
			}
			b.ReportMetric(float64(wire), "wireB/op")
			b.ReportMetric(float64(fragBytes), "fragB")
		})
	}
}

// BenchmarkReconnectCatchUp prices one live-session outage over real TCP
// loopback, end to end: the socket serving f1 dies, the kernel peer
// backs off, redials, and catches up — by log-suffix replay (mode
// suffix) or, when the editor compacted past the replica during the
// outage, by a full snapshot rebuild (mode snapshot). Time per op is
// the recovery latency under a 1ms-base backoff policy; snapB reports
// the snapshot size the suffix path avoids shipping, which is the gap
// between the two modes' costs as fragments grow.
func BenchmarkReconnectCatchUp(b *testing.B) {
	payload := xmltree.MustParse("nationalIndex(country Good index(value year))")
	for _, mode := range []string{"suffix", "snapshot"} {
		for _, entries := range []int{1000, 10000} {
			b.Run(fmt.Sprintf("%s/entries=%d", mode, entries), func(b *testing.B) {
				served, typing := eurostatSetup(b)
				served.ChunkSize = 4096
				attachValidDocs(b, served, typing, []int{entries, 2, 1})
				for _, fn := range served.Kernel.Funcs() {
					if _, err := served.AttachEditor(fn); err != nil {
						b.Fatal(err)
					}
				}
				joined, shutdown := serveFederation(b, served)
				defer shutdown()
				joined.Reconnect = ReconnectPolicy{
					MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Seed: 1,
				}
				lv, err := joined.OpenLive(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				defer lv.Close()
				ed := served.Peers["f1"].Live
				snap, _ := ed.EncodeSnapshot()

				// awaitRecoveries blocks until want feeds report recovered;
				// in suffix mode it then also waits for the outage edit to
				// flow, so an iteration ends fully caught up.
				awaitRecoveries := func(want int, thenVersion uint64) {
					deadline := time.After(30 * time.Second)
					for recovered := 0; ; {
						select {
						case up := <-lv.Updates():
							if up.Err != nil {
								b.Fatalf("outage became terminal: %+v", up)
							}
							if up.Health == HealthRecovered {
								recovered++
							}
							if recovered >= want && (thenVersion == 0 ||
								(up.Health == HealthLive && up.Version >= thenVersion)) {
								return
							}
						case <-deadline:
							b.Fatal("recovery never completed")
						}
					}
				}

				// Warmup outage: the first kill takes down the shared dialed
				// session, so every feed recovers onto its own redialed
				// session — after this, killing f1's session is a single-feed
				// outage, which is what the timed iterations measure.
				lv.sessionFor("f1").Close()
				awaitRecoveries(len(served.Kernel.Funcs()), 0)

				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					lv.sessionFor("f1").Close()
					if mode == "snapshot" {
						// An edit the dead replica never saw, then compaction
						// past it: resume must fall back to a full cut.
						if _, err := ed.ReplaceSubtree([]int{entries / 2}, payload); err != nil {
							b.Fatal(err)
						}
						ed.Compact(ed.Version())
						awaitRecoveries(1, 0)
					} else {
						// The same outage edit stays in the log: resume
						// replays just the suffix.
						e, err := ed.ReplaceSubtree([]int{entries / 2}, payload)
						if err != nil {
							b.Fatal(err)
						}
						awaitRecoveries(1, e.Version)
					}
				}
				b.ReportMetric(float64(len(snap)), "snapB")
			})
		}
	}
}
