package p2p

import (
	"context"
	"fmt"
	"testing"

	"dxml/internal/xmltree"
)

// BenchmarkLiveEditRoundTrip prices one end-to-end live edit on the
// in-process wire: publish at the editor, ship the delta, apply it to
// the replica, revalidate incrementally, emit the update. The wire
// metric is the acceptance criterion's O(edit + depth) byte bound;
// compare against re-shipping the fragment (frag B) to see the delta
// win grow with fragment size.
func BenchmarkLiveEditRoundTrip(b *testing.B) {
	for _, entries := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("entries=%d", entries), func(b *testing.B) {
			n, typing := eurostatSetup(b)
			attachValidDocs(b, n, typing, []int{entries, 2, 1})
			for _, fn := range n.Kernel.Funcs() {
				if _, err := n.AttachEditor(fn); err != nil {
					b.Fatal(err)
				}
			}
			lv, err := n.OpenLive(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			defer lv.Close()
			ed := n.Peers["f1"].Live
			fragBytes := ed.Tree().XMLSize()
			payload := xmltree.MustParse("nationalIndex(country Good index(value year))")
			b.ResetTimer()
			var wire int
			for i := 0; i < b.N; i++ {
				if _, err := ed.ReplaceSubtree([]int{entries / 2}, payload); err != nil {
					b.Fatal(err)
				}
				up := <-lv.Updates()
				if up.Err != nil || !up.Valid {
					b.Fatalf("edit rejected: %+v", up)
				}
				wire = up.WireBytes
			}
			b.ReportMetric(float64(wire), "wireB/op")
			b.ReportMetric(float64(fragBytes), "fragB")
		})
	}
}
